// Energymodel demonstrates the paper's "other responses" extension
// (Section 2.2: "models can also be built for other metrics such as power
// consumption or code size"): the identical design-measure-fit pipeline
// models the simulator's activity-based energy estimate instead of cycles,
// and the fitted model reveals which parameters drive energy rather than
// time — they are not the same set.
package main

import (
	"fmt"
	"log"
	"os"

	core "repro/internal/core"
	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/workloads"
)

func main() {
	benchName := "181.mcf"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	scale := core.Scale{Name: "example", TrainPoints: 70, TestPoints: 15}
	h := core.NewHarness(scale)
	h.Log = os.Stderr
	w, err := core.Workload(benchName, core.Train)
	if err != nil {
		log.Fatal(err)
	}

	space := h.Space()
	train := h.TrainDesign()
	test := h.TestDesign()

	build := func(points []doe.Point, measure func(workloads.Workload, doe.Point) (float64, error)) *core.Dataset {
		xs := make([][]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			y, err := measure(w, p)
			if err != nil {
				log.Fatal(err)
			}
			xs[i] = space.Code(p)
			ys[i] = y
		}
		d, err := model.NewDataset(xs, ys)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	fmt.Printf("measuring %d+%d points of %s for cycles and energy...\n",
		len(train), len(test), w.Key())

	for _, resp := range []struct {
		name    string
		measure func(workloads.Workload, doe.Point) (float64, error)
	}{
		{"cycles", h.MeasureCycles},
		{"energy", h.MeasureEnergy},
	} {
		trainDS := build(train, resp.measure)
		testDS := build(test, resp.measure)
		m, err := exp.FitRBF(trainDS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== response: %s ===\n", resp.name)
		fmt.Printf("RBF-RT test error: %.2f%%\n", model.TestError(m, testDS))

		mars, err := model.FitMARS(trainDS, model.MARSOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("top 8 effects:")
		for _, e := range model.TopEffects(mars, space, trainDS.X, 8) {
			fmt.Printf("  %-40s %12.3g\n", e.Label(), e.Value)
		}
	}
	fmt.Println("\nNote how memory-system parameters dominate both responses, but the")
	fmt.Println("energy ranking weights DRAM traffic (cache sizes) more heavily, while")
	fmt.Println("cycles also reward issue width and latency parameters.")
}
