// Crossarch demonstrates why the models must be microarchitecture
// *sensitive*: flags tuned on one machine can misfire on another. It unrolls
// aggressively — great for a wide machine with a big instruction cache,
// counterproductive on a narrow one — and shows the cross product of
// {binary tuned for A, binary tuned for B} × {machine A, machine B}.
package main

import (
	"fmt"
	"log"

	core "repro/internal/core"
)

func main() {
	art, err := core.Workload("179.art", core.Train)
	if err != nil {
		log.Fatal(err)
	}

	narrow := core.ConstrainedConfig()
	wide := core.AggressiveConfig()

	// Hand-tuned option sets standing in for "tuned on machine X":
	// conservative codegen for the narrow machine, aggressive unrolling
	// and inlining for the wide one.
	forNarrow := core.O2()
	forNarrow.TargetIssueWidth = narrow.IssueWidth

	forWide := core.O3()
	forWide.UnrollLoops = true
	forWide.MaxUnrollTimes = 12
	forWide.MaxUnrolledInsns = 300
	forWide.TargetIssueWidth = wide.IssueWidth

	type binary struct {
		name string
		prog *core.Program
	}
	var binaries []binary
	for _, b := range []struct {
		name string
		opts core.Options
	}{
		{"tuned-for-narrow", forNarrow},
		{"tuned-for-wide", forWide},
	} {
		prog, _, err := core.Compile(art.Source, b.opts)
		if err != nil {
			log.Fatal(err)
		}
		binaries = append(binaries, binary{b.name, prog})
	}

	machines := []struct {
		name string
		cfg  core.Config
	}{
		{"narrow machine", narrow},
		{"wide machine", wide},
	}

	fmt.Printf("%s on two machines (cycles; lower is better)\n\n", art.Key())
	fmt.Printf("%-18s", "")
	for _, m := range machines {
		fmt.Printf("  %16s", m.name)
	}
	fmt.Println()
	best := map[string]int64{}
	for _, b := range binaries {
		fmt.Printf("%-18s", b.name)
		for _, m := range machines {
			st, err := core.Simulate(b.prog, m.cfg, 500_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %16d", st.Cycles)
			if cur, ok := best[m.name]; !ok || st.Cycles < cur {
				best[m.name] = st.Cycles
			}
		}
		fmt.Println()
	}
	fmt.Println("\nEach machine prefers a different binary — compiler settings are not")
	fmt.Println("portable across microarchitectures, which is why the paper models the")
	fmt.Println("joint compiler x microarchitecture space instead of tuning per machine.")
}
