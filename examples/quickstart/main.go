// Quickstart: compile a MiniC program at two optimization levels and
// simulate it on the paper's three reference microarchitectures — the
// minimal end-to-end loop of the library (compile → simulate → compare).
package main

import (
	"fmt"
	"log"

	core "repro/internal/core"
)

const src = `
int data[4096];

int sum3(int a, int b, int c) {
	return a + b + c;
}

int main() {
	for (int i = 0; i < 4096; i = i + 1) {
		data[i] = i * 7 % 1000;
	}
	int acc = 0;
	for (int r = 0; r < 24; r = r + 1) {
		for (int i = 2; i < 4096; i = i + 1) {
			acc = acc + sum3(data[i], data[i - 1], data[i - 2]) * 3;
		}
	}
	return acc;
}
`

func main() {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"constrained", core.ConstrainedConfig()},
		{"typical", core.TypicalConfig()},
		{"aggressive", core.AggressiveConfig()},
	}
	levels := []struct {
		name string
		opts core.Options
	}{
		{"-O0", core.O0()},
		{"-O2", core.O2()},
		{"-O3", core.O3()},
	}

	fmt.Printf("%-12s", "config")
	for _, l := range levels {
		fmt.Printf("  %12s", l.name+" cycles")
	}
	fmt.Printf("  %10s\n", "O3 speedup")

	for _, c := range configs {
		fmt.Printf("%-12s", c.name)
		var first, last int64
		for _, l := range levels {
			opts := l.opts
			opts.TargetIssueWidth = c.cfg.IssueWidth
			prog, _, err := core.Compile(src, opts)
			if err != nil {
				log.Fatal(err)
			}
			st, err := core.Simulate(prog, c.cfg, 500_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12d", st.Cycles)
			if l.name == "-O0" {
				first = st.Cycles
			}
			last = st.Cycles
		}
		fmt.Printf("  %9.2fx\n", float64(first)/float64(last))
	}
}
