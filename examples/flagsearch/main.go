// Flagsearch demonstrates the paper's headline use case (Section 6.3): an
// empirical model shipped with an application is parameterized with the
// machine it is being installed on, and a genetic algorithm searches the
// model for the best compiler flags and heuristics for that machine — no
// simulation or recompilation in the loop. The chosen settings are then
// validated against the simulator and compared with -O2 and -O3.
package main

import (
	"fmt"
	"log"
	"os"

	core "repro/internal/core"
	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/workloads"
)

func main() {
	benchName := "255.vortex"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}

	// Small-but-useful scale so the example runs in a couple of minutes;
	// use exp.Default or exp.Paper for tighter models.
	scale := core.Scale{
		Name: "example", TrainPoints: 60, TestPoints: 15,
		GAPopulation: 40, GAGenerations: 25,
	}
	h := core.NewHarness(scale)
	h.Log = os.Stderr

	fmt.Printf("building empirical model for %s (%d training simulations)...\n",
		benchName, scale.TrainPoints)
	study, err := h.RunStudy([]string{benchName}, core.Train)
	if err != nil {
		log.Fatal(err)
	}

	// "Install" on each reference machine: freeze its parameters in the
	// model and let the GA explore the compiler subspace.
	results, err := study.SearchSettings(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(exp.Table6(results, h.Space()))

	// Validate: measure the prescribed settings against -O2 and -O3.
	txt, rows, err := study.Fig7(results, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(txt)
	for _, r := range rows {
		verdict := "matches -O3"
		switch {
		case r.ActualGA > r.ActualO3*1.01:
			verdict = "beats -O3"
		case r.ActualGA < r.ActualO3*0.99:
			verdict = "behind -O3"
		}
		fmt.Printf("%s on %s: %.1f%% over -O2 (%s)\n",
			r.Program, r.Config, 100*(r.ActualGA-1), verdict)
	}

	// Show what the search actually chose for the typical machine.
	w := workloads.MustGet(benchName, core.Train)
	_ = w
	for _, r := range results {
		if r.Config != "typical" {
			continue
		}
		opts := doe.ToOptions(r.Point, int(r.Point[doe.NumCompilerVars]))
		fmt.Printf("\nprescribed settings (typical): %s\n", opts)
	}
}
