// Interactions demonstrates the interpretive use of the models (the paper's
// Section 6.2 and Table 4): fit a MARS model to a program and read off which
// parameters and parameter interactions drive its performance — the
// information a compiler writer would use to design better heuristics.
package main

import (
	"fmt"
	"log"
	"os"

	core "repro/internal/core"
	"repro/internal/model"
)

func main() {
	benchName := "181.mcf"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}

	scale := core.Scale{Name: "example", TrainPoints: 80, TestPoints: 15}
	h := core.NewHarness(scale)
	h.Log = os.Stderr

	study, err := h.RunStudy([]string{benchName}, core.Train)
	if err != nil {
		log.Fatal(err)
	}
	pd := study.Programs[0]
	mars := study.Models[pd.Workload.Key()]["mars-raw"]

	fmt.Printf("\nTop effects for %s (coefficients in cycles; the paper's\n", pd.Workload.Key())
	fmt.Println("convention: half the response change from a variable's low to high value)")
	fmt.Printf("%-44s %15s\n", "parameter / interaction", "coefficient")
	for _, e := range model.TopEffects(mars, h.Space(), pd.Train.X, 15) {
		kind := "main"
		if len(e.Vars) == 2 {
			kind = "2-factor"
		}
		fmt.Printf("%-44s %15.0f  (%s)\n", e.Label(), e.Value, kind)
	}

	fmt.Println("\nReading the table: negative coefficients improve performance when the")
	fmt.Println("parameter moves low -> high (e.g. bigger caches); positive ones hurt")
	fmt.Println("(e.g. higher memory latency). Interactions whose sign opposes a main")
	fmt.Println("effect mark the configurations where a flag stops paying off —")
	fmt.Println("exactly what a hand-written heuristic would need to know.")
}
