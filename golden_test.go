package repro_test

// Golden determinism test: the exact Stats of the detailed simulator and the
// exact estimates of the SMARTS sampler, recorded from the reference
// implementation, asserted bit-for-bit. Any hot-path optimization (pre-decode,
// cache fast paths, trace replay) must leave every value below unchanged —
// this is the safety net performance work lands behind. CI runs it under
// -race along with the rest of the suite.
//
// To regenerate after an *intentional* model change (which invalidates all
// fitted models and cached measurements — think twice):
//
//	GOLDEN_UPDATE=1 go test -run TestGolden -v .

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/compiler"
	"repro/internal/sim"
	"repro/internal/smarts"
	"repro/internal/workloads"
)

var goldenConfigs = []struct {
	name string
	cfg  func() sim.Config
}{
	{"constrained", sim.Constrained},
	{"typical", sim.DefaultConfig},
	{"aggressive", sim.Aggressive},
}

var goldenWorkloads = []string{"164.gzip", "179.art", "256.bzip2"}

type goldenSim struct {
	workload, config string
	stats            sim.Stats
}

type goldenSmarts struct {
	workload string
	offset   int64
	est      float64
	windows  int
	meanCPI  float64
	stdCPI   float64
	instrs   int64
	exit     int64
}

// goldenSimTable was recorded from the pre-predecode reference implementation
// (commit f5c1127) and must never drift.
var goldenSimTable = []goldenSim{
	{"164.gzip", "constrained", sim.Stats{Cycles: 2382754, Instructions: 2519506, Branches: 204983, Mispredicts: 16372, IL1Accesses: 1322128, IL1Misses: 139, DL1Accesses: 778230, DL1Misses: 38431, L2Accesses: 38570, L2Misses: 3801, Energy: 3.0754111999635114e+06, ExitValue: 1527069}},
	{"164.gzip", "typical", sim.Stats{Cycles: 1906974, Instructions: 2519506, Branches: 204983, Mispredicts: 16168, IL1Accesses: 1322128, IL1Misses: 138, DL1Accesses: 778230, DL1Misses: 32507, L2Accesses: 32645, L2Misses: 3504, Energy: 3.0493951999641377e+06, ExitValue: 1527069}},
	{"164.gzip", "aggressive", sim.Stats{Cycles: 1912961, Instructions: 2519506, Branches: 204983, Mispredicts: 15767, IL1Accesses: 1322128, IL1Misses: 138, DL1Accesses: 778230, DL1Misses: 8402, L2Accesses: 8540, L2Misses: 3504, Energy: 2.9754761999669364e+06, ExitValue: 1527069}},
	{"179.art", "constrained", sim.Stats{Cycles: 1527714, Instructions: 2217653, Branches: 129650, Mispredicts: 1013, IL1Accesses: 1176248, IL1Misses: 190, DL1Accesses: 431033, DL1Misses: 43056, L2Accesses: 43246, L2Misses: 715, Energy: 2.4333166999771306e+06, ExitValue: 375881}},
	{"179.art", "typical", sim.Stats{Cycles: 1295890, Instructions: 2217653, Branches: 129650, Mispredicts: 1013, IL1Accesses: 1176248, IL1Misses: 174, DL1Accesses: 431033, DL1Misses: 8857, L2Accesses: 9031, L2Misses: 715, Energy: 2.3306716999814566e+06, ExitValue: 375881}},
	{"179.art", "aggressive", sim.Stats{Cycles: 1391025, Instructions: 2217653, Branches: 129650, Mispredicts: 1013, IL1Accesses: 1176248, IL1Misses: 174, DL1Accesses: 431033, DL1Misses: 541, L2Accesses: 715, L2Misses: 715, Energy: 2.3057236999827125e+06, ExitValue: 375881}},
	{"256.bzip2", "constrained", sim.Stats{Cycles: 2367110, Instructions: 2258668, Branches: 169265, Mispredicts: 13775, IL1Accesses: 1241403, IL1Misses: 159, DL1Accesses: 620849, DL1Misses: 22310, L2Accesses: 22469, L2Misses: 452, Energy: 2.7123869999797917e+06, ExitValue: 701849781}},
	{"256.bzip2", "typical", sim.Stats{Cycles: 1729588, Instructions: 2258668, Branches: 169265, Mispredicts: 13639, IL1Accesses: 1241403, IL1Misses: 158, DL1Accesses: 620849, DL1Misses: 294, L2Accesses: 452, L2Misses: 452, Energy: 2.645791999983202e+06, ExitValue: 701849781}},
	{"256.bzip2", "aggressive", sim.Stats{Cycles: 1781848, Instructions: 2258668, Branches: 169265, Mispredicts: 13615, IL1Accesses: 1241403, IL1Misses: 158, DL1Accesses: 620849, DL1Misses: 294, L2Accesses: 452, L2Misses: 452, Energy: 2.6456959999832083e+06, ExitValue: 701849781}},
}

var goldenSmartsTable = []goldenSmarts{
	{"179.art", 0, 1.359221500441441e+06, 222, 0.6129099099099098, 0.5720262239554968, 2217653, 375881},
	{"179.art", 7, 1.2754501578378384e+06, 222, 0.5751351351351354, 0.1264670655761103, 2217653, 375881},
	{"179.art", 13, 1.2770684451621622e+06, 222, 0.5758648648648649, 0.12775116483568205, 2217653, 375881},
	{"181.mcf", 0, 2.967757716561492e+06, 431, 0.6899257540603265, 0.5747724206630193, 4301561, 7630048},
	{"181.mcf", 7, 2.8574369396279105e+06, 430, 0.6642790697674427, 0.2558393687163513, 4301561, 7630048},
	{"181.mcf", 13, 2.855976409613955e+06, 430, 0.6639395348837213, 0.2556064672722728, 4301561, 7630048},
}

func goldenKey(w, c string) string { return w + "/" + c }

// TestGoldenSimulate locks the detailed simulator's Stats bit-for-bit.
func TestGoldenSimulate(t *testing.T) {
	update := os.Getenv("GOLDEN_UPDATE") != ""
	for _, wname := range goldenWorkloads {
		w := workloads.MustGet(wname, workloads.Train)
		prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
		if err != nil {
			t.Fatal(err)
		}
		for _, gc := range goldenConfigs {
			st, err := sim.Simulate(prog, gc.cfg(), 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if update {
				fmt.Printf("{%q, %q, sim.Stats{Cycles: %d, Instructions: %d, Branches: %d, Mispredicts: %d, IL1Accesses: %d, IL1Misses: %d, DL1Accesses: %d, DL1Misses: %d, L2Accesses: %d, L2Misses: %d, Energy: %v, ExitValue: %d}},\n",
					wname, gc.name, st.Cycles, st.Instructions, st.Branches, st.Mispredicts,
					st.IL1Accesses, st.IL1Misses, st.DL1Accesses, st.DL1Misses,
					st.L2Accesses, st.L2Misses, st.Energy, st.ExitValue)
				continue
			}
			found := false
			for _, g := range goldenSimTable {
				if g.workload == wname && g.config == gc.name {
					found = true
					if st != g.stats {
						t.Errorf("%s: Stats drifted:\n got %+v\nwant %+v", goldenKey(wname, gc.name), st, g.stats)
					}
				}
			}
			if !found {
				t.Errorf("%s: no golden entry", goldenKey(wname, gc.name))
			}
		}
	}
}

// TestTranslatedMatchesFused pins the basic-block translated engine
// bit-for-bit against the fused loop over the full golden workload/config
// grid, and checks the translation actually ran (no silent slow-path
// takeover).
func TestTranslatedMatchesFused(t *testing.T) {
	for _, wname := range goldenWorkloads {
		w := workloads.MustGet(wname, workloads.Train)
		prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
		if err != nil {
			t.Fatal(err)
		}
		for _, gc := range goldenConfigs {
			fused, _, err := sim.SimulateEngine(prog, gc.cfg(), 500_000_000, sim.EngineFused)
			if err != nil {
				t.Fatal(err)
			}
			bb, es, err := sim.SimulateEngine(prog, gc.cfg(), 500_000_000, sim.EngineBB)
			if err != nil {
				t.Fatal(err)
			}
			if bb != fused {
				t.Errorf("%s: bb engine diverged:\n got %+v\nwant %+v", goldenKey(wname, gc.name), bb, fused)
			}
			if es.BlocksTranslated == 0 {
				t.Errorf("%s: no blocks translated", goldenKey(wname, gc.name))
			}
			if es.TranslatedInstrs != fused.Instructions {
				t.Errorf("%s: translated %d of %d instructions (slow-path entries: %d)",
					goldenKey(wname, gc.name), es.TranslatedInstrs, fused.Instructions, es.SlowPathEntries)
			}
			if es.SlowPathEntries != 0 {
				t.Errorf("%s: unexpected slow-path entries: %d", goldenKey(wname, gc.name), es.SlowPathEntries)
			}
		}
	}
}

// TestWarmCheckpointRestoreEqualsRewarm pins checkpoint replay bit-for-bit
// against full rewarming: a checkpoint set built under one configuration
// must reproduce, for any configuration sharing its warm geometry, exactly
// the Result a full functional-warming Run computes — while doing a small
// fraction of the work (FunctionalInstrs is the only field allowed to
// differ, and it must shrink).
func TestWarmCheckpointRestoreEqualsRewarm(t *testing.T) {
	s := smarts.Sampler{WindowSize: 500, Interval: 20, Warmup: 200}
	build := sim.DefaultConfig()
	// Same warm geometry as build, different everything else: the
	// cross-configuration reuse the checkpoint key promises.
	nearby := build
	nearby.IssueWidth = 2
	nearby.RUUSize = 16
	nearby.DCacheLat = 3
	nearby.L2Lat = 16
	nearby.MemLat = 150

	for _, wname := range []string{"179.art", "181.mcf"} {
		w := workloads.MustGet(wname, workloads.Train)
		prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int64{0, 7} {
			sk := s
			sk.Offset = off
			store := smarts.NewStore(0)

			// Miss: the build run must equal a plain Run in every field.
			got, hit, err := smarts.RunCheckpointed(store, prog, build, sk, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Errorf("%s offset %d: first run reported a checkpoint hit", wname, off)
			}
			want, err := smarts.Run(prog, build, sk, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if *got != *want {
				t.Errorf("%s offset %d: build run diverged from Run:\n got %+v\nwant %+v", wname, off, got, want)
			}

			// Hit under a nearby configuration: equal to full rewarming in
			// every field except the work done.
			rewarm, err := smarts.Run(prog, nearby, sk, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			replay, hit, err := smarts.RunCheckpointed(store, prog, nearby, sk, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Errorf("%s offset %d: nearby run missed the checkpoint", wname, off)
			}
			cmp := *replay
			cmp.FunctionalInstrs = rewarm.FunctionalInstrs
			if cmp != *rewarm {
				t.Errorf("%s offset %d: replay diverged from rewarm:\n got %+v\nwant %+v", wname, off, replay, rewarm)
			}
			if replay.FunctionalInstrs*2 >= rewarm.FunctionalInstrs {
				t.Errorf("%s offset %d: replay did not skip warming: %d of %d functional instrs",
					wname, off, replay.FunctionalInstrs, rewarm.FunctionalInstrs)
			}
			st := store.Stats()
			if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
				t.Errorf("%s offset %d: store stats = %+v, want 1 hit / 1 miss / 1 entry", wname, off, st)
			}
		}
	}
}

// TestGoldenSMARTS locks the sampled estimate bit-for-bit across offsets.
func TestGoldenSMARTS(t *testing.T) {
	update := os.Getenv("GOLDEN_UPDATE") != ""
	s := smarts.Sampler{WindowSize: 500, Interval: 20, Warmup: 200}
	for _, wname := range []string{"179.art", "181.mcf"} {
		w := workloads.MustGet(wname, workloads.Train)
		prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int64{0, 7, 13} {
			sk := s
			sk.Offset = off
			res, err := smarts.Run(prog, sim.DefaultConfig(), sk, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if update {
				fmt.Printf("{%q, %d, %v, %d, %v, %v, %d, %d},\n",
					wname, off, res.EstimatedCycles, res.Windows, res.MeanCPI, res.StdCPI,
					res.Instructions, res.ExitValue)
				continue
			}
			found := false
			for _, g := range goldenSmartsTable {
				if g.workload == wname && g.offset == off {
					found = true
					if res.EstimatedCycles != g.est || res.Windows != g.windows ||
						res.MeanCPI != g.meanCPI || res.StdCPI != g.stdCPI ||
						res.Instructions != g.instrs || res.ExitValue != g.exit {
						t.Errorf("%s offset %d: estimate drifted:\n got %+v\nwant %+v", wname, off, res, g)
					}
				}
			}
			if !found {
				t.Errorf("%s offset %d: no golden entry", wname, off)
			}
		}
	}
}
