// Package repro_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation section, plus ablation
// benchmarks for the design decisions called out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment scale defaults to "quick" so the full suite finishes in
// minutes on one core; set EMPIRICO_SCALE=default or =paper for tighter
// models (the paper's 400-simulation scale takes hours). Measured tables are
// printed once per run; benchmark iterations after the first reuse the
// measurement cache, so reported times reflect modeling/search cost rather
// than simulation.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/dist"
	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/farm"
	"repro/internal/features"
	"repro/internal/model"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/smarts"
	"repro/internal/workloads"
)

var (
	studyOnce    sync.Once
	sharedStudy  *exp.Study
	sharedSearch []exp.SearchResult
	studyErr     error
	printOnce    sync.Once
)

func benchScale() exp.Scale {
	name := os.Getenv("EMPIRICO_SCALE")
	if name == "" {
		name = "quick"
	}
	sc, err := exp.ScaleByName(name)
	if err != nil {
		panic(err)
	}
	return sc
}

// study builds (once) the shared measurement study all table/figure
// benchmarks reuse — mirroring the paper, where one 400-point design per
// program feeds every analysis.
func study(b *testing.B) *exp.Study {
	b.Helper()
	studyOnce.Do(func() {
		h := exp.NewHarness(benchScale())
		h.CacheDir = ".empirico-cache"
		h.Log = os.Stderr
		fmt.Fprintf(os.Stderr, "[bench] building shared study at scale %q\n", h.Scale.Name)
		sharedStudy, studyErr = h.RunStudy(nil, workloads.Train)
		if studyErr != nil {
			return
		}
		sharedSearch, studyErr = sharedStudy.SearchSettings(nil)
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return sharedStudy
}

func printTable(name, txt string) {
	fmt.Fprintf(os.Stderr, "\n===== %s =====\n%s\n", name, txt)
}

func BenchmarkTable3(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt, rows := s.Table3()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		if i == 0 {
			printTable("Table 3", txt)
			avg := 0.0
			for _, r := range rows {
				avg += r.RBF
			}
			b.ReportMetric(avg/float64(len(rows)), "rbf-err-%")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt, cells := s.Table4(0)
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
		if i == 0 {
			printTable("Table 4", txt)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt := exp.Table6(sharedSearch, s.Harness.Space())
		if txt == "" {
			b.Fatal("empty table")
		}
		if i == 0 {
			printTable("Table 6", txt)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt, rows, err := s.Fig7(sharedSearch, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("Figure 7", txt)
			avg := 0.0
			for _, r := range rows {
				avg += 100 * (r.ActualGA - 1)
			}
			b.ReportMetric(avg/float64(len(rows)), "ga-speedup-%")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt, rows, err := s.Table7(sharedSearch, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("Table 7", txt)
			avg := 0.0
			for _, r := range rows {
				avg += r.Typical
			}
			b.ReportMetric(avg/float64(len(rows)), "ref-speedup-%")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt, series := s.Fig5()
		if len(series) == 0 {
			b.Fatal("no series")
		}
		if i == 0 {
			printTable("Figure 5", txt)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		txt, pairs := s.Fig6(nil)
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
		if i == 0 {
			printTable("Figure 6", txt)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	h := exp.NewHarness(benchScale())
	h.CacheDir = ".empirico-cache"
	for i := 0; i < b.N; i++ {
		txt, res, err := h.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 {
			b.Fatal("no cells")
		}
		if i == 0 {
			printTable("Figure 3", txt)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw detailed-simulation speed
// (instructions simulated per second, reported as instrs/op).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := workloads.MustGet("179.art", workloads.Train)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	// One untimed pass keeps first-iteration warm-up costs (page faults,
	// heap growth) out of a -benchtime=1x measurement.
	if _, err := sim.Simulate(prog, cfg, 500_000_000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		st, err := sim.Simulate(prog, cfg, 500_000_000)
		if err != nil {
			b.Fatal(err)
		}
		instrs = st.Instructions
	}
	b.ReportMetric(float64(instrs), "instrs/op")
}

// BenchmarkTranslatedThroughput compares the basic-block translated engine
// against the fused interpreter on the same program and configuration,
// checking bit-exactness and reporting both the translated engine's raw
// throughput and the same-run fused/bb wall-clock ratio. The ratio is the
// gated number (`benchcheck -set sim`): raw throughput swings with host
// noise, but bb and fused executing back-to-back in one process see the
// same machine, so "bb at least as fast as fused" holds everywhere. Each
// engine is timed best-of-3 to keep a single scheduling hiccup from
// deciding the ratio.
func BenchmarkTranslatedThroughput(b *testing.B) {
	w := workloads.MustGet("179.art", workloads.Train)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	const reps = 3
	run1 := func(engine string) (sim.Stats, sim.EngineStats, time.Duration) {
		start := time.Now()
		st, es, err := sim.SimulateEngine(prog, cfg, 500_000_000, engine)
		if err != nil {
			b.Fatal(err)
		}
		return st, es, time.Since(start)
	}
	var bbRate, ratio float64
	for i := 0; i < b.N; i++ {
		// One untimed pass per engine warms the heap and code paths, then
		// the engines alternate so clock drift penalizes both equally.
		fst, _, _ := run1(sim.EngineFused)
		bst, es, _ := run1(sim.EngineBB)
		if bst != fst {
			b.Fatalf("translated engine diverged from fused:\n bb    %+v\n fused %+v", bst, fst)
		}
		if es.TranslatedInstrs == 0 || es.BlocksTranslated == 0 {
			b.Fatalf("translated engine did no translated work: %+v", es)
		}
		fusedT := time.Duration(math.MaxInt64)
		bbT := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			if _, _, d := run1(sim.EngineFused); d < fusedT {
				fusedT = d
			}
			if _, _, d := run1(sim.EngineBB); d < bbT {
				bbT = d
			}
		}
		bbRate = float64(bst.Instructions) / bbT.Seconds()
		ratio = fusedT.Seconds() / bbT.Seconds()
	}
	b.ReportMetric(bbRate, "bb-instrs-per-sec")
	b.ReportMetric(ratio, "bb-vs-fused-x")
}

// BenchmarkWarmCheckpointSpeedup measures what a warm-state checkpoint hit
// is worth: the same sampled measurement once as a full build run
// (functional warming end to end) and once as a replay of the stored
// detailed regions under a nearby configuration. Both run in one process,
// so the ratio is machine-stable; it is the number the SMARTS checkpoint
// layer exists for, gated at a hard floor by `benchcheck -set sim`.
func BenchmarkWarmCheckpointSpeedup(b *testing.B) {
	w := workloads.MustGet("181.mcf", workloads.Ref)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		b.Fatal(err)
	}
	build := sim.DefaultConfig()
	nearby := build
	nearby.MemLat = 150 // pure timing change: same binary, same warm geometry
	s := smarts.Sampler{WindowSize: 1000, Interval: 50, Warmup: 200}
	var speedup float64
	for i := 0; i < b.N; i++ {
		store := smarts.NewStore(0)
		start := time.Now()
		res, hit, err := smarts.RunCheckpointed(store, prog, build, s, 2_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		buildT := time.Since(start)
		if hit || res.Windows == 0 {
			b.Fatalf("build run: hit=%v windows=%d", hit, res.Windows)
		}
		start = time.Now()
		res, hit, err = smarts.RunCheckpointed(store, prog, nearby, s, 2_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		replayT := time.Since(start)
		if !hit {
			b.Fatal("nearby run missed the checkpoint")
		}
		if res.Windows == 0 {
			b.Fatal("replay produced no windows")
		}
		speedup = buildT.Seconds() / replayT.Seconds()
	}
	b.ReportMetric(speedup, "ckpt-hit-speedup-x")
}

// BenchmarkFarmSpeedup builds the same cold-cache dataset serially and on
// the full worker pool and reports the wall-clock ratio — the measurement
// farm's headline number. On a single-core host the ratio is ~1; it should
// approach min(GOMAXPROCS, dataset size) on multicore.
func BenchmarkFarmSpeedup(b *testing.B) {
	w := workloads.MustGet("179.art", workloads.Train)
	scale := exp.Scale{Name: "farmbench", TrainPoints: 16, TestPoints: 4}
	build := func(workers int) time.Duration {
		h := exp.NewHarness(scale) // no CacheDir: every build is cold
		h.Workers = workers
		defer h.Close()
		start := time.Now()
		if _, err := h.BuildDataset(w, h.TrainDesign()); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial = build(1)
		parallel = build(runtime.GOMAXPROCS(0))
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
}

// BenchmarkCompile measures full-pipeline compilation speed on the largest
// workload.
func BenchmarkCompile(b *testing.B) {
	w := workloads.MustGet("255.vortex", workloads.Train)
	opts := compiler.O3()
	opts.UnrollLoops = true
	for i := 0; i < b.N; i++ {
		if _, _, err := compiler.Compile(w.Parse(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design decisions from DESIGN.md) ---

func measureCycles(b *testing.B, w workloads.Workload, opts compiler.Options, cfg sim.Config) float64 {
	b.Helper()
	opts.TargetIssueWidth = cfg.IssueWidth
	prog, _, err := compiler.Compile(w.Parse(), opts)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sim.Simulate(prog, cfg, 500_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return float64(st.Cycles)
}

// BenchmarkAblationFramePointer quantifies the -fomit-frame-pointer effect
// the paper singles out: one extra allocatable register plus shorter
// prologues.
func BenchmarkAblationFramePointer(b *testing.B) {
	w := workloads.MustGet("255.vortex", workloads.Train)
	cfg := sim.DefaultConfig()
	var gain float64
	for i := 0; i < b.N; i++ {
		with := compiler.O2()
		without := compiler.O2()
		without.OmitFramePointer = false
		gain = 100 * (measureCycles(b, w, without, cfg)/measureCycles(b, w, with, cfg) - 1)
	}
	b.ReportMetric(gain, "omitfp-gain-%")
}

// BenchmarkAblationInlineICache shows the inlining ↔ instruction-cache
// interaction: inlining's benefit at a large icache versus a tiny one.
func BenchmarkAblationInlineICache(b *testing.B) {
	w := workloads.MustGet("255.vortex", workloads.Train)
	var small, large float64
	for i := 0; i < b.N; i++ {
		inline := compiler.O2()
		inline.InlineFunctions = true
		inline.MaxInlineInsnsAuto = 150
		inline.InlineUnitGrowth = 75
		noinline := compiler.O2()

		cfgSmall := sim.DefaultConfig()
		cfgSmall.ICacheKB = 8
		cfgLarge := sim.DefaultConfig()
		cfgLarge.ICacheKB = 128

		small = 100 * (measureCycles(b, w, noinline, cfgSmall)/measureCycles(b, w, inline, cfgSmall) - 1)
		large = 100 * (measureCycles(b, w, noinline, cfgLarge)/measureCycles(b, w, inline, cfgLarge) - 1)
	}
	b.ReportMetric(small, "inline-gain-8KB-%")
	b.ReportMetric(large, "inline-gain-128KB-%")
}

// BenchmarkAblationUnroll sweeps the unroll factor on art and reports the
// best factor and its gain — Figure 3's non-monotone response in one number.
func BenchmarkAblationUnroll(b *testing.B) {
	w := workloads.MustGet("179.art", workloads.Train)
	cfg := sim.DefaultConfig()
	var bestFactor float64
	var bestGain float64
	for i := 0; i < b.N; i++ {
		base := measureCycles(b, w, compiler.O2(), cfg)
		bestFactor, bestGain = 1, 0
		for _, f := range []int{2, 4, 8, 12} {
			opts := compiler.O2()
			opts.UnrollLoops = true
			opts.MaxUnrollTimes = f
			gain := 100 * (base/measureCycles(b, w, opts, cfg) - 1)
			if gain > bestGain {
				bestGain, bestFactor = gain, float64(f)
			}
		}
	}
	b.ReportMetric(bestFactor, "best-unroll-factor")
	b.ReportMetric(bestGain, "best-unroll-gain-%")
}

// BenchmarkAblationDesign compares model error from a D-optimal training
// design against uniform-random designs of the same size.
func BenchmarkAblationDesign(b *testing.B) {
	h := exp.NewHarness(exp.Scale{Name: "ablation", TrainPoints: 30, TestPoints: 12})
	h.CacheDir = ".empirico-cache"
	w := workloads.MustGet("179.art", workloads.Train)
	space := h.Space()
	testPts := h.TestDesign()

	buildErr := func(train []doe.Point) float64 {
		trainDS, err := h.BuildDataset(w, train)
		if err != nil {
			b.Fatal(err)
		}
		testDS, err := h.BuildDataset(w, testPts)
		if err != nil {
			b.Fatal(err)
		}
		m, err := exp.FitRBF(trainDS)
		if err != nil {
			b.Fatal(err)
		}
		return model.TestError(m, testDS)
	}

	var dopt, random float64
	for i := 0; i < b.N; i++ {
		dopt = buildErr(h.TrainDesign())
		rng := rand.New(rand.NewSource(99))
		var pts []doe.Point
		for j := 0; j < 30; j++ {
			pts = append(pts, space.RandomPoint(rng))
		}
		random = buildErr(pts)
	}
	b.ReportMetric(dopt, "doptimal-err-%")
	b.ReportMetric(random, "random-err-%")
}

// BenchmarkAblationRBFCenters compares regression-tree center selection
// against the naive all-training-points choice at small sample size.
func BenchmarkAblationRBFCenters(b *testing.B) {
	h := exp.NewHarness(exp.Scale{Name: "ablation", TrainPoints: 40, TestPoints: 12})
	h.CacheDir = ".empirico-cache"
	w := workloads.MustGet("256.bzip2", workloads.Train)
	trainDS, err := h.BuildDataset(w, h.TrainDesign())
	if err != nil {
		b.Fatal(err)
	}
	testDS, err := h.BuildDataset(w, h.TestDesign())
	if err != nil {
		b.Fatal(err)
	}
	ltrain := model.LogDataset(trainDS)

	var tree, allPts float64
	for i := 0; i < b.N; i++ {
		mt, err := model.FitRBF(ltrain, model.RBFOptions{Kernel: model.Multiquadric})
		if err != nil {
			b.Fatal(err)
		}
		tree = model.TestError(model.LogModel{Inner: mt}, testDS)
		// All-points centers: minLeaf 1 makes every training point a leaf.
		ma, err := model.FitRBF(ltrain, model.RBFOptions{Kernel: model.Multiquadric, LeafSizes: []int{1}})
		if err != nil {
			b.Fatal(err)
		}
		allPts = model.TestError(model.LogModel{Inner: ma}, testDS)
	}
	b.ReportMetric(tree, "tree-centers-err-%")
	b.ReportMetric(allPts, "allpoint-centers-err-%")
}

// BenchmarkAblationSearch compares the GA against random search and hill
// climbing at an equal model-evaluation budget, on a real fitted model.
func BenchmarkAblationSearch(b *testing.B) {
	s := study(b)
	pd := s.Programs[0]
	m := s.Models[pd.Workload.Key()]["rbf"]
	space := s.Harness.Space()
	march := doe.FromConfig(sim.DefaultConfig())
	frozen := map[int]int64{}
	for i, v := range march {
		frozen[doe.NumCompilerVars+i] = v
	}
	prob := search.Problem{Space: space, Model: m, Frozen: frozen}

	var ga, rs, hc float64
	for i := 0; i < b.N; i++ {
		g := search.Optimize(prob, search.GAOptions{Population: 40, Generations: 24}, rand.New(rand.NewSource(1)))
		r := search.RandomSearch(prob, g.Evals, rand.New(rand.NewSource(1)))
		h := search.HillClimb(prob, g.Evals, rand.New(rand.NewSource(1)))
		ga, rs, hc = g.Predicted, r.Predicted, h.Predicted
	}
	base := ga
	b.ReportMetric(rs/base, "random-vs-ga")
	b.ReportMetric(hc/base, "hillclimb-vs-ga")
}

// --- Analytics benchmarks (model fitting / design / search hot paths) ---
//
// These are self-contained: they run on synthetic data over the joint space
// so they need no simulation and no shared study, and CI can gate them at
// -benchtime=1x (see cmd/benchcheck -set model).

// analyticsData builds a synthetic coded dataset over the 25-variable joint
// space with a hinge-shaped, interacting response in the spirit of Figure 3.
func analyticsData(n int, seed int64) *model.Dataset {
	space := doe.JointSpace()
	rng := rand.New(rand.NewSource(seed))
	pts := space.LatinHypercube(n, rng)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i, p := range pts {
		x := space.Code(p)
		xs[i] = x
		v := 1000 - 200*x[0] + 100*x[1] + 50*x[0]*x[1] + 80*x[14]*x[14] - 40*x[20]
		if x[2] > 0.3 {
			v += 600 * (x[2] - 0.3)
		}
		ys[i] = v + 5*rng.NormFloat64()
	}
	d, err := model.NewDataset(xs, ys)
	if err != nil {
		panic(err)
	}
	return d
}

// BenchmarkFitMARS times a full MARS fit (parallel forward pass +
// Cholesky drop-one backward pruning) on a 200-point joint-space dataset.
func BenchmarkFitMARS(b *testing.B) {
	data := analyticsData(200, 61)
	var terms int
	for i := 0; i < b.N; i++ {
		m, err := model.FitMARS(data, model.MARSOptions{})
		if err != nil {
			b.Fatal(err)
		}
		terms = m.NumParams()
	}
	b.ReportMetric(float64(terms), "terms")
}

// BenchmarkFeatureExtract times cold feature extraction (parse → check →
// optimize → link → functional profile) across the full seed suite — the
// per-program cost /v1/predict-program pays on a fingerprint-cache miss.
func BenchmarkFeatureExtract(b *testing.B) {
	var coldT time.Duration
	for i := 0; i < b.N; i++ {
		features.ClearCache()
		start := time.Now()
		for _, name := range workloads.Names() {
			if _, err := features.Extract(workloads.MustGet(name, workloads.Train)); err != nil {
				b.Fatal(err)
			}
		}
		coldT = time.Since(start)
	}
	b.ReportMetric(coldT.Seconds()*1e3, "extract-ms")
	b.ReportMetric(coldT.Seconds()*1e3/float64(len(workloads.Names())), "per-program-ms")
}

// BenchmarkDOptimal times the incremental Fedorov exchange at the paper's
// hardest setting — the 25-variable interaction expansion (326 terms) — and
// reports its speedup over the retained reference loop (DOptimalRef), which
// recomputes every candidate variance with a full O(k²) quadratic form.
func BenchmarkDOptimal(b *testing.B) {
	space := doe.JointSpace()
	opt := doe.DOptions{Expansion: doe.ExpandInteractions, Candidates: 120, MaxSweeps: 2}
	var refT, fastT time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		ref := doe.DOptimalRef(space, 40, rand.New(rand.NewSource(71)), opt)
		refT = time.Since(start)
		start = time.Now()
		fast := doe.DOptimal(space, 40, rand.New(rand.NewSource(71)), opt)
		fastT = time.Since(start)
		if len(ref.Points) != 40 || len(fast.Points) != 40 {
			b.Fatal("wrong design size")
		}
	}
	b.ReportMetric(refT.Seconds()/fastT.Seconds(), "speedup-x")
	b.ReportMetric(fastT.Seconds()*1e3, "fast-ms")
}

// BenchmarkCrossValidate times 5-fold CV of a MARS fitter serially and on
// the full worker pool; the two estimates must agree bit-for-bit.
func BenchmarkCrossValidate(b *testing.B) {
	data := analyticsData(150, 67)
	fit := func(d *model.Dataset) (model.Model, error) {
		return model.FitMARS(d, model.MARSOptions{Workers: 1})
	}
	var serialT, parT time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		serial, err := model.CrossValidateParallel(data, 5, 1, 1, fit)
		if err != nil {
			b.Fatal(err)
		}
		serialT = time.Since(start)
		start = time.Now()
		parallel, err := model.CrossValidateParallel(data, 5, 1, 0, fit)
		if err != nil {
			b.Fatal(err)
		}
		parT = time.Since(start)
		if serial != parallel {
			b.Fatalf("parallel CV %v diverged from serial %v", parallel, serial)
		}
	}
	b.ReportMetric(serialT.Seconds()/parT.Seconds(), "speedup-x")
	b.ReportMetric(parT.Seconds()*1e3, "par-ms")
}

// BenchmarkGASearch times the GA with batched parallel fitness against the
// serial path on an RBF surrogate; the search trajectory is identical, so
// the best point must match exactly.
func BenchmarkGASearch(b *testing.B) {
	data := analyticsData(150, 73)
	m, err := model.FitRBF(data, model.RBFOptions{Kernel: model.Multiquadric})
	if err != nil {
		b.Fatal(err)
	}
	prob := search.Problem{Space: doe.JointSpace(), Model: m}
	opts := search.GAOptions{Population: 60, Generations: 30}
	run := func(w int) (*search.Result, time.Duration) {
		o := opts
		o.Workers = w
		start := time.Now()
		res := search.Optimize(prob, o, rand.New(rand.NewSource(7)))
		return res, time.Since(start)
	}
	var serialT, parT time.Duration
	for i := 0; i < b.N; i++ {
		serial, st := run(1)
		parallel, pt := run(0)
		serialT, parT = st, pt
		if serial.Predicted != parallel.Predicted {
			b.Fatalf("parallel GA %v diverged from serial %v", parallel.Predicted, serial.Predicted)
		}
		for j := range serial.Point {
			if serial.Point[j] != parallel.Point[j] {
				b.Fatal("parallel GA selected a different point")
			}
		}
	}
	b.ReportMetric(serialT.Seconds()/parT.Seconds(), "speedup-x")
	b.ReportMetric(parT.Seconds()*1e3, "par-ms")
}

// BenchmarkSMARTSSpeedup reports the wall-clock ratio of detailed vs sampled
// simulation on the largest ref workload, along with the sampled estimate's
// relative error against the detailed cycle count — the two numbers that
// justify SMARTS in the first place.
func BenchmarkSMARTSSpeedup(b *testing.B) {
	w := workloads.MustGet("181.mcf", workloads.Ref)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	s := smarts.Sampler{WindowSize: 1000, Interval: 50}
	var speedup, relErr float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		full, err := sim.Simulate(prog, cfg, 2_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		detailed := time.Since(start)
		start = time.Now()
		res, err := smarts.Run(prog, cfg, s, 2_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		sampled := time.Since(start)
		if res.Windows == 0 {
			b.Fatal("sampler fell back to detailed simulation")
		}
		speedup = detailed.Seconds() / sampled.Seconds()
		relErr = 100 * math.Abs(res.EstimatedCycles-float64(full.Cycles)) / float64(full.Cycles)
	}
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(relErr, "est-relerr-%")
}

// BenchmarkSMARTSParallel measures the shared-trace parallel sampler: one
// functional pass broadcast to 4 offset workers, against one sequential
// Run. The ratio should exceed 1 on any multicore host because the workers'
// warming/detail work overlaps, and the single functional pass keeps total
// CPU close to Run's.
func BenchmarkSMARTSParallel(b *testing.B) {
	w := workloads.MustGet("181.mcf", workloads.Ref)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	s := smarts.Sampler{WindowSize: 1000, Interval: 50}
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := smarts.Run(prog, cfg, s, 2_000_000_000); err != nil {
			b.Fatal(err)
		}
		seq = time.Since(start)
		start = time.Now()
		if _, err := smarts.RunParallel(prog, cfg, s, 2_000_000_000, 4); err != nil {
			b.Fatal(err)
		}
		par = time.Since(start)
	}
	b.ReportMetric(seq.Seconds()/par.Seconds(), "vs-single-run-x")
}

// distSweepPoints builds the distributed benchmark batch: nFlags distinct
// compiler vectors crossed with perFlag microarchitecture variants, so the
// coordinator plans it into exactly nFlags shared-binary groups.
func distSweepPoints(nFlags, perFlag int) []doe.Point {
	var pts []doe.Point
	for f := 0; f < nFlags; f++ {
		opts := compiler.O2()
		if f&1 != 0 {
			opts.InlineFunctions = true
		}
		if f&2 != 0 {
			opts.UnrollLoops = true
			opts.MaxUnrollTimes = 4
		}
		if f&4 != 0 {
			opts.OmitFramePointer = false
		}
		for m := 0; m < perFlag; m++ {
			cfg := sim.DefaultConfig()
			cfg.MemLat = 60 + 30*m
			pts = append(pts, doe.JoinPoint(doe.FromOptions(opts), doe.FromConfig(cfg)))
		}
	}
	return pts
}

// BenchmarkDistributedSweep runs one Table-7-shaped sweep through a
// coordinator over one worker and then over two, and reports the wall-clock
// ratio — the distributed plane's headline number, gated by `benchcheck -set
// dist`. Each worker is a fixed-service-time measurement service (a stub
// executor with a deterministic per-point latency and a single-slot farm), so
// the ratio measures what the coordinator actually adds — overlapping whole
// groups across worker processes — and holds on any core count; two real
// simulator processes on one localhost would just contend for the same cores
// and say nothing about the scheduler.
func BenchmarkDistributedSweep(b *testing.B) {
	const (
		nGroups  = 8
		perGroup = 2
		perPoint = 10 * time.Millisecond
	)
	w := workloads.MustGet("179.art", workloads.Train)
	points := distSweepPoints(nGroups, perGroup)
	measure := func(ctx context.Context, job farm.Job) (farm.Result, error) {
		select {
		case <-time.After(perPoint):
		case <-ctx.Done():
			return farm.Result{}, ctx.Err()
		}
		return farm.Result{Cycles: 1, Energy: 1, Instructions: 1}, nil
	}
	run := func(nWorkers int) time.Duration {
		var addrs []string
		var workers []*dist.Worker
		var servers []*httptest.Server
		for i := 0; i < nWorkers; i++ {
			wk := dist.NewWorker(dist.WorkerOptions{Workers: 1, Measure: measure, Heartbeat: 5 * time.Millisecond})
			ts := httptest.NewServer(wk.Handler())
			workers = append(workers, wk)
			servers = append(servers, ts)
			addrs = append(addrs, ts.URL)
		}
		co, err := dist.New(dist.Options{Addrs: addrs, HedgeMin: -1})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if _, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		if st := co.Stats(); st.BinaryGroups != nGroups {
			b.Fatalf("planned %d groups, want %d", st.BinaryGroups, nGroups)
		}
		co.Close()
		for i := range servers {
			servers[i].Close()
			workers[i].Close()
		}
		return elapsed
	}
	var single, double time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single += run(1)
		double += run(2)
	}
	b.ReportMetric(double.Seconds()*1e3/float64(b.N), "two-worker-ms")
	b.ReportMetric(single.Seconds()/double.Seconds(), "dist-speedup-x")
	b.ReportMetric(float64(nGroups), "groups")
}

// heteroSweepPoints builds n single-point shared-binary groups by varying
// the unroll factor: every point compiles differently, so the coordinator
// plans exactly n groups of one point each and placement granularity equals
// group granularity — the shape that isolates the dispatcher's slot
// accounting from farm-side batching effects.
func heteroSweepPoints(n int) []doe.Point {
	var pts []doe.Point
	for f := 0; f < n; f++ {
		opts := compiler.O2()
		opts.UnrollLoops = true
		opts.MaxUnrollTimes = f + 2
		pts = append(pts, doe.JoinPoint(doe.FromOptions(opts), doe.FromConfig(sim.DefaultConfig())))
	}
	return pts
}

// BenchmarkHeterogeneousSweep runs the same sweep over a deliberately
// lopsided fleet — one single-slot worker and one worker advertising three
// slots — first under the pre-elastic uniform MaxInFlight cap, then with
// capacity-weighted dispatch driven by registration-time slot counts. Both
// workers have the same fixed per-point service time, so the ratio isolates
// what slot-aware placement buys: the uniform cap over-subscribes the small
// worker (its extra lease just queues behind a one-thread farm) while
// starving the big one (capped below its parallelism). Gated by `benchcheck
// -set dist` with a hard 1.3x floor.
func BenchmarkHeterogeneousSweep(b *testing.B) {
	const (
		nGroups  = 16
		perPoint = 20 * time.Millisecond
	)
	w := workloads.MustGet("179.art", workloads.Train)
	points := heteroSweepPoints(nGroups)
	measure := func(ctx context.Context, job farm.Job) (farm.Result, error) {
		select {
		case <-time.After(perPoint):
		case <-ctx.Done():
			return farm.Result{}, ctx.Err()
		}
		return farm.Result{Cycles: 1, Energy: 1, Instructions: 1}, nil
	}
	run := func(weighted bool) time.Duration {
		// Fresh workers per run: each keeps a worker-local store, and a
		// warm cache would turn the second leg into a zero-sim replay.
		small := dist.NewWorker(dist.WorkerOptions{Workers: 1, Measure: measure, Heartbeat: 5 * time.Millisecond})
		big := dist.NewWorker(dist.WorkerOptions{Workers: 3, Measure: measure, Heartbeat: 5 * time.Millisecond})
		tsSmall := httptest.NewServer(small.Handler())
		tsBig := httptest.NewServer(big.Handler())
		var co *dist.Coordinator
		var err error
		if weighted {
			co, err = dist.New(dist.Options{Dynamic: true, HedgeMin: -1})
			if err == nil {
				if _, err = co.Register(tsSmall.URL, 1); err == nil {
					_, err = co.Register(tsBig.URL, 3)
				}
			}
		} else {
			co, err = dist.New(dist.Options{Addrs: []string{tsSmall.URL, tsBig.URL}, HedgeMin: -1})
		}
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if _, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		if st := co.Stats(); st.BinaryGroups != nGroups {
			b.Fatalf("planned %d groups, want %d", st.BinaryGroups, nGroups)
		}
		co.Close()
		tsSmall.Close()
		tsBig.Close()
		small.Close()
		big.Close()
		return elapsed
	}
	var uniform, capacity time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uniform += run(false)
		capacity += run(true)
	}
	b.ReportMetric(capacity.Seconds()*1e3/float64(b.N), "hetero-ms")
	b.ReportMetric(uniform.Seconds()/capacity.Seconds(), "hetero-speedup-x")
}

// batchWorkloadSource generates the shared-trace benchmark workload: many
// mid-sized functions so O3 inlining and unrolling make compilation the
// dominant cost, with a short dynamic run (~110k committed instructions).
// That is the shape the batch planner exploits — a Table-7 sweep recompiles
// this program once per microarch point on the old path and exactly once on
// the grouped path.
func batchWorkloadSource() string {
	var sb strings.Builder
	sb.WriteString("int seed = 4242;\nint data[512];\n")
	for fn := 0; fn < 24; fn++ {
		fmt.Fprintf(&sb, "int stage%d(int x) {\n\tint acc = x + %d;\n", fn, fn*17)
		for s := 0; s < 12; s++ {
			fmt.Fprintf(&sb, "\tacc = (acc * %d + data[(acc + %d) & 511]) ^ %d;\n", 3+s, s*31+fn, fn*s+7)
		}
		sb.WriteString("\treturn acc;\n}\n")
	}
	sb.WriteString("int main() {\n\tfor (int i = 0; i < 512; i = i + 1) {\n")
	sb.WriteString("\t\tseed = (seed * 1103515245 + 12345) & 2147483647;\n\t\tdata[i] = (seed >> 7) % 1024;\n\t}\n\tint sum = 0;\n")
	sb.WriteString("\tfor (int r = 0; r < 20; r = r + 1) {\n")
	for fn := 0; fn < 24; fn++ {
		fmt.Fprintf(&sb, "\t\tsum = sum + stage%d(sum + r);\n", fn)
	}
	sb.WriteString("\t}\n\treturn sum & 1073741823;\n}\n")
	return sb.String()
}

// batchSweep builds a Table-7-shaped batch: one fixed O3 flag vector crossed
// with twelve microarchitecture variants, all at issue width 4 so every
// point shares one binary.
func batchSweep() []doe.Point {
	o3 := compiler.O3()
	variant := func(mut func(*sim.Config)) doe.Point {
		c := sim.DefaultConfig()
		mut(&c)
		return doe.JoinPoint(doe.FromOptions(o3), doe.FromConfig(c))
	}
	return []doe.Point{
		variant(func(c *sim.Config) {}),
		variant(func(c *sim.Config) { c.MemLat = 150 }),
		variant(func(c *sim.Config) { c.MemLat = 60 }),
		variant(func(c *sim.Config) { c.BPredSize = 512 }),
		variant(func(c *sim.Config) { c.BPredSize = 8192 }),
		variant(func(c *sim.Config) { c.RUUSize = 32 }),
		variant(func(c *sim.Config) { c.ICacheKB = 16 }),
		variant(func(c *sim.Config) { c.DCacheKB = 64 }),
		variant(func(c *sim.Config) { c.DCacheLat = 3 }),
		variant(func(c *sim.Config) { c.L2KB = 256; c.L2Lat = 6 }),
		variant(func(c *sim.Config) { c.L2Lat = 16 }),
		variant(func(c *sim.Config) { c.L2Assoc = 16 }),
	}
}

// BenchmarkMeasureBatchShared compares a fixed-flags/varying-microarch batch
// (the Table 7 shape) on the grouped farm — compile once, interpret once,
// one timing consumer per config — against the pre-grouping path that
// compiles and fully simulates every point independently. Both farms run
// cold (no store, empty binary cache) with four workers; the ratio is the
// headline number gated by `benchcheck -set farm`. On one core the entire
// win is eliminated CPU work, so the ratio is machine-stable.
func BenchmarkMeasureBatchShared(b *testing.B) {
	w := workloads.Workload{Name: "910.batch", Input: "bench", Class: workloads.Train, Source: batchWorkloadSource()}
	w.Parse() // warm the memoized AST so neither path pays the one-time parse
	points := batchSweep()
	run := func(opts farm.Options) time.Duration {
		f := farm.New(opts)
		defer f.Close()
		start := time.Now()
		if _, err := f.MeasureBatch(context.Background(), w, points, farm.Cycles); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		if st := f.Stats(); opts.Measure == nil && st.BinaryGroups == 0 {
			b.Fatal("grouped farm formed no shared-trace groups")
		}
		return elapsed
	}
	var grouped, ungrouped time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ungrouped += run(farm.Options{Workers: 4, Measure: farm.Executor(0)})
		grouped += run(farm.Options{Workers: 4})
	}
	b.ReportMetric(grouped.Seconds()*1e3/float64(b.N), "grouped-ms")
	b.ReportMetric(ungrouped.Seconds()/grouped.Seconds(), "shared-x")
	b.ReportMetric(float64(len(points)), "points")
}
