// Package ir defines the compiler's mid-level intermediate representation: a
// three-address, virtual-register code organized into basic blocks with an
// explicit control-flow graph. Optimization passes in internal/compiler
// operate on this form; codegen lowers it to the synthetic ISA.
//
// The IR is not SSA: a virtual register may be defined more than once (loop
// induction variables typically are). Passes that need SSA-like reasoning
// restrict themselves to single-definition registers, which the Func tracks.
package ir

import (
	"fmt"
	"strings"
)

// Value identifies a virtual register.
type Value int32

// NoValue marks an absent operand.
const NoValue Value = -1

// Op enumerates IR operations.
type Op uint8

const (
	OpNop Op = iota

	// dst = Imm
	OpConst

	// dst = X op Y (pure arithmetic).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt // set 1 if X < Y else 0
	OpLe
	OpEq
	OpNe

	// dst = X
	OpCopy

	// dst = &Sym (base address of a global)
	OpAddr

	// dst = mem[X]
	OpLoad
	// mem[X] = Y
	OpStore
	// non-binding prefetch of mem[X]
	OpPrefetch

	// dst = call Sym(Args...)
	OpCall

	// Terminators.
	OpBr  // if X != 0 goto Blocks[0] else Blocks[1]
	OpJmp // goto Blocks[0]
	OpRet // return X (NoValue means return 0)

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpLt: "lt", OpLe: "le",
	OpEq: "eq", OpNe: "ne", OpCopy: "copy", OpAddr: "addr", OpLoad: "load",
	OpStore: "store", OpPrefetch: "prefetch", OpCall: "call", OpBr: "br",
	OpJmp: "jmp", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("irop(%d)", uint8(o))
}

// IsPure reports whether the op has no side effects and its result depends
// only on its operands (candidates for CSE, LICM, folding).
func (o Op) IsPure() bool {
	switch o {
	case OpConst, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpLt, OpLe, OpEq, OpNe, OpCopy, OpAddr:
		return true
	}
	return false
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpJmp || o == OpRet }

// HasDst reports whether the op defines Instr.Dst.
func (o Op) HasDst() bool {
	switch o {
	case OpNop, OpStore, OpPrefetch, OpBr, OpJmp, OpRet:
		return false
	}
	return true
}

// IsCommutative reports whether X and Y may be swapped.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// Instr is one IR instruction. Field use by op:
//
//	Const:        Dst, Imm
//	arith:        Dst, X, Y
//	Copy:         Dst, X
//	Addr:         Dst, Sym
//	Load:         Dst, X(addr)
//	Store:        X(addr), Y(value)
//	Prefetch:     X(addr)
//	Call:         Dst, Sym, Args
//	Br:           X(cond); successors carried by the Block
//	Jmp, Ret:     (Ret: X, may be NoValue)
type Instr struct {
	Op   Op
	Dst  Value
	X, Y Value
	Imm  int64
	Sym  string
	Args []Value
}

// Uses appends the values read by the instruction to buf and returns it.
func (in *Instr) Uses(buf []Value) []Value {
	switch in.Op {
	case OpConst, OpAddr, OpNop, OpJmp:
	case OpCopy, OpLoad, OpPrefetch, OpBr:
		buf = append(buf, in.X)
	case OpRet:
		if in.X != NoValue {
			buf = append(buf, in.X)
		}
	case OpStore:
		buf = append(buf, in.X, in.Y)
	case OpCall:
		buf = append(buf, in.Args...)
	default: // binary arithmetic
		buf = append(buf, in.X, in.Y)
	}
	return buf
}

// Def returns the value defined by the instruction, or NoValue.
func (in *Instr) Def() Value {
	if in.Op.HasDst() {
		return in.Dst
	}
	return NoValue
}

func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("v%d = const %d", in.Dst, in.Imm)
	case OpCopy:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.X)
	case OpAddr:
		return fmt.Sprintf("v%d = addr %s", in.Dst, in.Sym)
	case OpLoad:
		return fmt.Sprintf("v%d = load [v%d]", in.Dst, in.X)
	case OpStore:
		return fmt.Sprintf("store [v%d] = v%d", in.X, in.Y)
	case OpPrefetch:
		return fmt.Sprintf("prefetch [v%d]", in.X)
	case OpCall:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = fmt.Sprintf("v%d", a)
		}
		return fmt.Sprintf("v%d = call %s(%s)", in.Dst, in.Sym, strings.Join(parts, ", "))
	case OpBr:
		return fmt.Sprintf("br v%d", in.X)
	case OpJmp:
		return "jmp"
	case OpRet:
		if in.X == NoValue {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", in.X)
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("v%d = %s v%d, v%d", in.Dst, in.Op, in.X, in.Y)
	}
}

// Block is a basic block: straight-line instructions ending in a terminator.
// Succs order matters for Br: Succs[0] is the taken (true) target, Succs[1]
// the fall-through (false) target.
type Block struct {
	ID     int
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block

	// Freq is an estimated execution frequency, set by static profile
	// estimation; used by block reordering and inlining heuristics.
	Freq float64
}

// Term returns a pointer to the block's terminator instruction.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	in := &b.Instrs[len(b.Instrs)-1]
	if !in.Op.IsTerminator() {
		return nil
	}
	return in
}

// Body returns the instructions excluding the terminator.
func (b *Block) Body() []Instr {
	if b.Term() != nil {
		return b.Instrs[:len(b.Instrs)-1]
	}
	return b.Instrs
}

// Func is an IR function.
type Func struct {
	Name   string
	Params []Value // one virtual register per parameter
	Blocks []*Block
	Entry  *Block

	nextVal   Value
	nextBlock int
}

// NewFunc creates an empty function with an entry block and one virtual
// register per parameter.
func NewFunc(name string, nparams int) *Func {
	f := &Func{Name: name}
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, f.NewValue())
	}
	f.Entry = f.NewBlock()
	return f
}

// NewValue allocates a fresh virtual register.
func (f *Func) NewValue() Value {
	v := f.nextVal
	f.nextVal++
	return v
}

// NumValues returns the number of virtual registers allocated so far.
func (f *Func) NumValues() int { return int(f.nextVal) }

// NewBlock allocates a new empty basic block appended to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlock, Freq: 1}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Connect adds a CFG edge from a to b.
func Connect(a, b *Block) {
	a.Succs = append(a.Succs, b)
	b.Preds = append(b.Preds, a)
}

// RecomputePreds rebuilds all Preds lists from Succs.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry and rebuilds
// predecessor lists.
func (f *Func) RemoveUnreachable() {
	reach := map[*Block]bool{}
	var stack []*Block
	stack = append(stack, f.Entry)
	reach[f.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	f.RecomputePreds()
}

// InstrCount returns the number of non-nop instructions in the function;
// this is the "size" used by the inlining and unrolling heuristics
// (mirroring gcc's insn counts over its IR).
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op != OpNop {
				n++
			}
		}
	}
	return n
}

// DefCounts returns, for every virtual register, how many instructions
// define it (parameters count as one definition).
func (f *Func) DefCounts() []int {
	counts := make([]int, f.NumValues())
	for _, p := range f.Params {
		counts[p]++
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != NoValue {
				counts[d]++
			}
		}
	}
	return counts
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("v%d", p)
	}
	fmt.Fprintf(&sb, "func %s(%s):\n", f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Succs) > 0 {
			ids := make([]string, len(b.Succs))
			for i, s := range b.Succs {
				ids[i] = fmt.Sprintf("b%d", s.ID)
			}
			fmt.Fprintf(&sb, "  ; succs=%s", strings.Join(ids, ","))
		}
		sb.WriteByte('\n')
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

// Program is a compilation unit: a set of functions plus global data layout.
type Program struct {
	Funcs   []*Func
	Globals []Global
}

// Global describes one global symbol's storage.
type Global struct {
	Name  string
	Words int64 // number of 8-byte words (1 for scalars)
	Init  int64 // initial value for scalars
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalOffset returns the word offset of each global in declaration order
// as a map from name to byte offset, plus the total size in bytes.
func (p *Program) GlobalOffsets() (map[string]int64, int64) {
	offs := make(map[string]int64, len(p.Globals))
	var cur int64
	for _, g := range p.Globals {
		offs[g.Name] = cur
		cur += g.Words * 8
	}
	return offs, cur
}

// InstrCount returns the total instruction count over all functions.
func (p *Program) InstrCount() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.InstrCount()
	}
	return n
}
