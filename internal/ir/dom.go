package ir

// Dominator analysis using the Cooper–Harvey–Kennedy iterative algorithm.

// DomTree holds immediate-dominator information for a function.
type DomTree struct {
	fn    *Func
	idom  map[*Block]*Block // entry maps to nil
	order map[*Block]int    // reverse-postorder index
	post  []*Block          // blocks in reverse postorder
}

// ComputeDominators builds the dominator tree of f. Unreachable blocks are
// ignored (callers typically run RemoveUnreachable first).
func ComputeDominators(f *Func) *DomTree {
	// Reverse postorder over the CFG.
	seen := map[*Block]bool{}
	var postorder []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		postorder = append(postorder, b)
	}
	dfs(f.Entry)

	rpo := make([]*Block, len(postorder))
	order := make(map[*Block]int, len(postorder))
	for i := range postorder {
		rpo[i] = postorder[len(postorder)-1-i]
		order[rpo[i]] = i
	}

	idom := map[*Block]*Block{f.Entry: f.Entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[f.Entry] = nil
	return &DomTree{fn: f, idom: idom, order: order, post: rpo}
}

// IDom returns the immediate dominator of b (nil for the entry block).
func (d *DomTree) IDom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (every block dominates itself).
func (d *DomTree) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = d.idom[b]
	}
	return false
}

// ReversePostorder returns the blocks in reverse postorder.
func (d *DomTree) ReversePostorder() []*Block { return d.post }

// Loop describes one natural loop.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool // includes Header
	Latch  *Block          // one back-edge source (loops may have several; we keep the first)
	Depth  int             // nesting depth, 1 = outermost
	Parent *Loop
}

// Contains reports whether b is inside the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// Exits returns the blocks outside the loop that are successors of loop
// blocks, in deterministic (block-ID) order.
func (l *Loop) Exits() []*Block {
	seen := map[*Block]bool{}
	var exits []*Block
	for b := range l.Blocks {
		for _, s := range b.Succs {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	sortBlocksByID(exits)
	return exits
}

func sortBlocksByID(bs []*Block) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j-1].ID > bs[j].ID; j-- {
			bs[j-1], bs[j] = bs[j], bs[j-1]
		}
	}
}

// FindLoops discovers all natural loops of f via back edges in the dominator
// tree, and computes nesting. Returned loops are ordered innermost-first
// (deeper loops before their parents), deterministically.
func FindLoops(f *Func, dom *DomTree) []*Loop {
	var loops []*Loop
	byHeader := map[*Block]*Loop{}
	// Deterministic iteration: reverse postorder.
	for _, b := range dom.ReversePostorder() {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}, Latch: b}
				byHeader[s] = l
				loops = append(loops, l)
			}
			// Collect the natural loop body: all blocks that can reach
			// the latch without passing through the header.
			var stack []*Block
			if !l.Blocks[b] {
				l.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !l.Blocks[p] {
						l.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Nesting: loop A is nested in B if B contains A's header and A != B.
	for _, a := range loops {
		for _, b := range loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			// Choose the smallest enclosing loop as parent.
			if a.Parent == nil || len(b.Blocks) < len(a.Parent.Blocks) {
				a.Parent = b
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost-first, stable by header ID.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0; j-- {
			a, b := loops[j-1], loops[j]
			if a.Depth > b.Depth || (a.Depth == b.Depth && a.Header.ID <= b.Header.ID) {
				break
			}
			loops[j-1], loops[j] = b, a
		}
	}
	return loops
}

// BlockLoopDepths returns the loop-nesting depth of every block of f: 0 for
// blocks outside any loop, otherwise the depth of the innermost containing
// loop (1 = outermost). Static profile estimation and the program-feature
// extractor (internal/features) share it.
func BlockLoopDepths(f *Func, loops []*Loop) map[*Block]int {
	depth := make(map[*Block]int, len(f.Blocks))
	for _, l := range loops {
		for b := range l.Blocks {
			if l.Depth > depth[b] {
				depth[b] = l.Depth
			}
		}
	}
	return depth
}

// EstimateFrequencies sets Block.Freq with a simple static profile: entry
// frequency 1, loops multiply inner frequency by loopWeight, branch
// successors split frequency evenly.
func EstimateFrequencies(f *Func, loops []*Loop) {
	const loopWeight = 10.0
	depth := BlockLoopDepths(f, loops)
	for _, b := range f.Blocks {
		b.Freq = 1
		for i := 0; i < depth[b]; i++ {
			b.Freq *= loopWeight
		}
	}
}
