package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond returns a function with the CFG:
//
//	entry -> then -> join
//	entry -> else -> join
func buildDiamond(t *testing.T) (*Func, *Block, *Block, *Block, *Block) {
	t.Helper()
	f := NewFunc("diamond", 1)
	entry := f.Entry
	thenB := f.NewBlock()
	elseB := f.NewBlock()
	join := f.NewBlock()

	cond := f.NewValue()
	entry.Instrs = append(entry.Instrs,
		Instr{Op: OpConst, Dst: cond, Imm: 1},
		Instr{Op: OpBr, X: cond},
	)
	Connect(entry, thenB)
	Connect(entry, elseB)

	v := f.NewValue()
	thenB.Instrs = append(thenB.Instrs,
		Instr{Op: OpConst, Dst: v, Imm: 2},
		Instr{Op: OpJmp},
	)
	Connect(thenB, join)

	elseB.Instrs = append(elseB.Instrs,
		Instr{Op: OpConst, Dst: v, Imm: 3},
		Instr{Op: OpJmp},
	)
	Connect(elseB, join)

	join.Instrs = append(join.Instrs, Instr{Op: OpRet, X: v})
	if err := Verify(f); err != nil {
		t.Fatalf("diamond should verify: %v", err)
	}
	return f, entry, thenB, elseB, join
}

// buildLoop returns: entry -> header; header -> body|exit; body -> header.
func buildLoop(t *testing.T) (*Func, *Block, *Block, *Block) {
	t.Helper()
	f := NewFunc("loop", 0)
	entry := f.Entry
	header := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	i := f.NewValue()
	n := f.NewValue()
	cond := f.NewValue()
	entry.Instrs = append(entry.Instrs,
		Instr{Op: OpConst, Dst: i, Imm: 0},
		Instr{Op: OpConst, Dst: n, Imm: 10},
		Instr{Op: OpJmp},
	)
	Connect(entry, header)

	header.Instrs = append(header.Instrs,
		Instr{Op: OpLt, Dst: cond, X: i, Y: n},
		Instr{Op: OpBr, X: cond},
	)
	Connect(header, body)
	Connect(header, exit)

	one := f.NewValue()
	body.Instrs = append(body.Instrs,
		Instr{Op: OpConst, Dst: one, Imm: 1},
		Instr{Op: OpAdd, Dst: i, X: i, Y: one},
		Instr{Op: OpJmp},
	)
	Connect(body, header)

	exit.Instrs = append(exit.Instrs, Instr{Op: OpRet, X: i})
	if err := Verify(f); err != nil {
		t.Fatalf("loop should verify: %v", err)
	}
	return f, header, body, exit
}

func TestInstrUsesAndDef(t *testing.T) {
	add := Instr{Op: OpAdd, Dst: 2, X: 0, Y: 1}
	uses := add.Uses(nil)
	if len(uses) != 2 || uses[0] != 0 || uses[1] != 1 {
		t.Errorf("add uses = %v", uses)
	}
	if add.Def() != 2 {
		t.Error("add def")
	}
	st := Instr{Op: OpStore, X: 3, Y: 4}
	if st.Def() != NoValue {
		t.Error("store should not define")
	}
	if u := st.Uses(nil); len(u) != 2 {
		t.Errorf("store uses = %v", u)
	}
	ret := Instr{Op: OpRet, X: NoValue}
	if len(ret.Uses(nil)) != 0 {
		t.Error("void ret uses nothing")
	}
	call := Instr{Op: OpCall, Dst: 9, Sym: "f", Args: []Value{1, 2, 3}}
	if len(call.Uses(nil)) != 3 || call.Def() != 9 {
		t.Error("call uses/def")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpAdd.IsPure() || OpLoad.IsPure() || OpCall.IsPure() || OpStore.IsPure() {
		t.Error("IsPure")
	}
	if !OpBr.IsTerminator() || !OpRet.IsTerminator() || OpAdd.IsTerminator() {
		t.Error("IsTerminator")
	}
	if !OpAdd.IsCommutative() || OpSub.IsCommutative() || !OpMul.IsCommutative() {
		t.Error("IsCommutative")
	}
	if !OpCall.HasDst() || OpStore.HasDst() || OpPrefetch.HasDst() {
		t.Error("HasDst")
	}
	for op := Op(0); op < numOps; op++ {
		if strings.HasPrefix(op.String(), "irop(") {
			t.Errorf("op %d unnamed", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 1, Imm: 5}, "v1 = const 5"},
		{Instr{Op: OpAdd, Dst: 3, X: 1, Y: 2}, "v3 = add v1, v2"},
		{Instr{Op: OpLoad, Dst: 4, X: 3}, "v4 = load [v3]"},
		{Instr{Op: OpStore, X: 3, Y: 4}, "store [v3] = v4"},
		{Instr{Op: OpCall, Dst: 5, Sym: "g", Args: []Value{1}}, "v5 = call g(v1)"},
		{Instr{Op: OpRet, X: NoValue}, "ret"},
		{Instr{Op: OpAddr, Dst: 2, Sym: "arr"}, "v2 = addr arr"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	// Missing terminator.
	f := NewFunc("bad", 0)
	v := f.NewValue()
	f.Entry.Instrs = []Instr{{Op: OpConst, Dst: v, Imm: 1}}
	if Verify(f) == nil {
		t.Error("expected missing-terminator error")
	}
	// Br with wrong successor count.
	f2 := NewFunc("bad2", 0)
	v2 := f2.NewValue()
	f2.Entry.Instrs = []Instr{{Op: OpConst, Dst: v2, Imm: 1}, {Op: OpBr, X: v2}}
	if Verify(f2) == nil {
		t.Error("expected successor-count error")
	}
	// Operand out of range.
	f3 := NewFunc("bad3", 0)
	f3.Entry.Instrs = []Instr{{Op: OpRet, X: 99}}
	if Verify(f3) == nil {
		t.Error("expected bad-operand error")
	}
	// Terminator mid-block.
	f4 := NewFunc("bad4", 0)
	v4 := f4.NewValue()
	f4.Entry.Instrs = []Instr{{Op: OpRet, X: NoValue}, {Op: OpConst, Dst: v4, Imm: 1}}
	if Verify(f4) == nil {
		t.Error("expected mid-block-terminator error")
	}
	// Inconsistent preds.
	f5, _, _, _, join := buildDiamond(&testing.T{})
	join.Preds = join.Preds[:1]
	if Verify(f5) == nil {
		t.Error("expected preds-inconsistency error")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f, entry, thenB, elseB, join := buildDiamond(t)
	dom := ComputeDominators(f)
	if dom.IDom(entry) != nil {
		t.Error("entry idom should be nil")
	}
	if dom.IDom(thenB) != entry || dom.IDom(elseB) != entry {
		t.Error("branch idoms should be entry")
	}
	if dom.IDom(join) != entry {
		t.Error("join idom should be entry (not then/else)")
	}
	if !dom.Dominates(entry, join) || dom.Dominates(thenB, join) {
		t.Error("Dominates wrong")
	}
	if !dom.Dominates(join, join) {
		t.Error("blocks dominate themselves")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f, header, body, exit := buildLoop(t)
	dom := ComputeDominators(f)
	if dom.IDom(header) != f.Entry {
		t.Error("header idom")
	}
	if dom.IDom(body) != header || dom.IDom(exit) != header {
		t.Error("body/exit idom should be header")
	}
}

func TestFindLoops(t *testing.T) {
	f, header, body, exit := buildLoop(t)
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != header || !l.Contains(body) || l.Contains(exit) || l.Contains(f.Entry) {
		t.Error("loop membership wrong")
	}
	if l.Latch != body {
		t.Error("latch should be body")
	}
	if l.Depth != 1 {
		t.Error("depth should be 1")
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0] != exit {
		t.Errorf("exits = %v", exits)
	}
}

func TestNestedLoops(t *testing.T) {
	// entry -> h1; h1 -> h2|exit; h2 -> b2|l1latch; b2 -> h2; l1latch -> h1
	f := NewFunc("nest", 0)
	h1 := f.NewBlock()
	h2 := f.NewBlock()
	b2 := f.NewBlock()
	latch1 := f.NewBlock()
	exit := f.NewBlock()
	c := f.NewValue()
	f.Entry.Instrs = []Instr{{Op: OpConst, Dst: c, Imm: 1}, {Op: OpJmp}}
	Connect(f.Entry, h1)
	h1.Instrs = []Instr{{Op: OpBr, X: c}}
	Connect(h1, h2)
	Connect(h1, exit)
	h2.Instrs = []Instr{{Op: OpBr, X: c}}
	Connect(h2, b2)
	Connect(h2, latch1)
	b2.Instrs = []Instr{{Op: OpJmp}}
	Connect(b2, h2)
	latch1.Instrs = []Instr{{Op: OpJmp}}
	Connect(latch1, h1)
	exit.Instrs = []Instr{{Op: OpRet, X: NoValue}}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}

	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// Innermost first.
	if loops[0].Header != h2 || loops[0].Depth != 2 {
		t.Errorf("inner loop wrong: header=b%d depth=%d", loops[0].Header.ID, loops[0].Depth)
	}
	if loops[1].Header != h1 || loops[1].Depth != 1 {
		t.Error("outer loop wrong")
	}
	if loops[0].Parent != loops[1] {
		t.Error("nesting parent wrong")
	}

	EstimateFrequencies(f, loops)
	if !(b2.Freq > h1.Freq && h1.Freq > exit.Freq) {
		t.Errorf("frequency ordering wrong: b2=%v h1=%v exit=%v", b2.Freq, h1.Freq, exit.Freq)
	}
}

func TestLiveness(t *testing.T) {
	f, header, body, exit := buildLoop(t)
	lv := ComputeLiveness(f)
	// i (value 0) is live into the header (used by the compare and the add).
	var iVal Value = 0
	if !lv.In[header].Has(iVal) {
		t.Error("i should be live into header")
	}
	if !lv.In[body].Has(iVal) {
		t.Error("i should be live into body")
	}
	if !lv.In[exit].Has(iVal) {
		t.Error("i is returned, live into exit")
	}
	// n (value 1) is live into header but dead in exit.
	var nVal Value = 1
	if !lv.In[header].Has(nVal) {
		t.Error("n live into header")
	}
	if lv.In[exit].Has(nVal) {
		t.Error("n should be dead in exit")
	}

	across := lv.LiveAcross(body)
	if len(across) != len(body.Instrs) {
		t.Fatal("LiveAcross length")
	}
	// After the add, i is live (flows back to header).
	if !across[1].Has(iVal) {
		t.Error("i live after add")
	}
}

func TestBitSet(t *testing.T) {
	s := NewBitSet(130)
	if !s.Add(0) || !s.Add(64) || !s.Add(129) {
		t.Error("Add new should return true")
	}
	if s.Add(64) {
		t.Error("Add existing should return false")
	}
	if !s.Has(129) || s.Has(1) {
		t.Error("Has")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove")
	}
	other := NewBitSet(130)
	other.Add(5)
	if !s.UnionWith(other) || !s.Has(5) {
		t.Error("UnionWith")
	}
	if s.UnionWith(other) {
		t.Error("UnionWith no-change should return false")
	}
	c := s.Clone()
	c.Add(7)
	if s.Has(7) {
		t.Error("Clone shares storage")
	}
}

func TestPropertyBitSetAddHas(t *testing.T) {
	f := func(xs []uint16) bool {
		s := NewBitSet(1 << 16)
		seen := map[uint16]bool{}
		for _, x := range xs {
			s.Add(Value(x))
			seen[x] = true
		}
		for _, x := range xs {
			if !s.Has(Value(x)) {
				return false
			}
		}
		count := 0
		for range seen {
			count++
		}
		return s.Count() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f, _, _, _, _ := buildDiamond(t)
	orphan := f.NewBlock()
	orphan.Instrs = []Instr{{Op: OpRet, X: NoValue}}
	if len(f.Blocks) != 5 {
		t.Fatal("setup")
	}
	f.RemoveUnreachable()
	if len(f.Blocks) != 4 {
		t.Errorf("blocks = %d, want 4", len(f.Blocks))
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestDefCountsAndInstrCount(t *testing.T) {
	f, _, _, _ := buildLoop(t)
	counts := f.DefCounts()
	if counts[0] != 2 { // i defined in entry and body
		t.Errorf("i def count = %d, want 2", counts[0])
	}
	if counts[1] != 1 { // n defined once
		t.Errorf("n def count = %d, want 1", counts[1])
	}
	if f.InstrCount() != 9 {
		t.Errorf("InstrCount = %d, want 9", f.InstrCount())
	}
}

func TestProgramHelpers(t *testing.T) {
	p := &Program{
		Globals: []Global{{Name: "a", Words: 4}, {Name: "b", Words: 1}},
	}
	offs, total := p.GlobalOffsets()
	if offs["a"] != 0 || offs["b"] != 32 || total != 40 {
		t.Errorf("offsets = %v total = %d", offs, total)
	}
	if err := VerifyProgram(p); err != nil {
		t.Fatal(err)
	}
	p.Globals = append(p.Globals, Global{Name: "a"})
	if VerifyProgram(p) == nil {
		t.Error("expected duplicate global error")
	}
}

func TestFuncString(t *testing.T) {
	f, _, _, _ := buildLoop(t)
	s := f.String()
	for _, want := range []string{"func loop()", "b0:", "jmp", "ret v0", "lt"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}
