package ir

import "fmt"

// Verify checks structural invariants of the function's IR:
//   - every block ends in exactly one terminator, with no terminator mid-block
//   - successor counts match the terminator kind (Br:2, Jmp:1, Ret:0)
//   - Preds lists are consistent with Succs lists
//   - all operands reference allocated virtual registers
//   - the entry block is in the block list
//
// It returns the first violation found, or nil.
func Verify(f *Func) error {
	inList := false
	for _, b := range f.Blocks {
		if b == f.Entry {
			inList = true
		}
	}
	if !inList {
		return fmt.Errorf("ir: %s: entry block not in block list", f.Name)
	}
	edges := map[[2]int]int{}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s: b%d is empty", f.Name, b.ID)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("ir: %s: b%d instr %d (%s): terminator placement", f.Name, b.ID, i, in)
			}
			if err := checkOperands(f, b, in); err != nil {
				return err
			}
		}
		term := b.Term()
		wantSuccs := 0
		switch term.Op {
		case OpBr:
			wantSuccs = 2
		case OpJmp:
			wantSuccs = 1
		case OpRet:
			wantSuccs = 0
		}
		if len(b.Succs) != wantSuccs {
			return fmt.Errorf("ir: %s: b%d: %s has %d successors, want %d",
				f.Name, b.ID, term.Op, len(b.Succs), wantSuccs)
		}
		for _, s := range b.Succs {
			edges[[2]int{b.ID, s.ID}]++
		}
	}
	// Preds consistency.
	predEdges := map[[2]int]int{}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			predEdges[[2]int{p.ID, b.ID}]++
		}
	}
	for e, n := range edges {
		if predEdges[e] != n {
			return fmt.Errorf("ir: %s: edge b%d->b%d: %d succ entries but %d pred entries",
				f.Name, e[0], e[1], n, predEdges[e])
		}
	}
	for e, n := range predEdges {
		if edges[e] != n {
			return fmt.Errorf("ir: %s: edge b%d->b%d in preds but not succs", f.Name, e[0], e[1])
		}
	}
	return nil
}

func checkOperands(f *Func, b *Block, in *Instr) error {
	check := func(v Value, what string) error {
		if v == NoValue && in.Op == OpRet {
			return nil
		}
		if v < 0 || int(v) >= f.NumValues() {
			return fmt.Errorf("ir: %s: b%d: %s: bad %s v%d", f.Name, b.ID, in, what, v)
		}
		return nil
	}
	var buf []Value
	for _, u := range in.Uses(buf) {
		if err := check(u, "use"); err != nil {
			return err
		}
	}
	if d := in.Def(); d != NoValue {
		if err := check(d, "def"); err != nil {
			return err
		}
	}
	return nil
}

// VerifyProgram verifies every function in the program.
func VerifyProgram(p *Program) error {
	names := map[string]bool{}
	for _, g := range p.Globals {
		if names[g.Name] {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		names[g.Name] = true
	}
	fnames := map[string]bool{}
	for _, f := range p.Funcs {
		if fnames[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		fnames[f.Name] = true
		if err := Verify(f); err != nil {
			return err
		}
	}
	return nil
}
