package ir

// Liveness holds per-block live-in/live-out sets as bitsets over virtual
// registers.
type Liveness struct {
	In  map[*Block]*BitSet
	Out map[*Block]*BitSet
}

// BitSet is a fixed-capacity bitset over Value ids.
type BitSet struct {
	words []uint64
}

// NewBitSet returns a bitset with capacity for n values.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64)}
}

// Has reports whether v is in the set.
func (s *BitSet) Has(v Value) bool {
	i := int(v)
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Add inserts v and reports whether the set changed.
func (s *BitSet) Add(v Value) bool {
	i := int(v)
	w := &s.words[i/64]
	bit := uint64(1) << (uint(i) % 64)
	if *w&bit != 0 {
		return false
	}
	*w |= bit
	return true
}

// Remove deletes v from the set.
func (s *BitSet) Remove(v Value) {
	i := int(v)
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// UnionWith adds all of t's members and reports whether s changed.
func (s *BitSet) UnionWith(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Clone returns a copy of the set.
func (s *BitSet) Clone() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Count returns the number of members.
func (s *BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ComputeLiveness performs backward dataflow liveness analysis over f.
func ComputeLiveness(f *Func) *Liveness {
	n := f.NumValues()
	lv := &Liveness{In: map[*Block]*BitSet{}, Out: map[*Block]*BitSet{}}
	use := map[*Block]*BitSet{}
	def := map[*Block]*BitSet{}
	var buf []Value
	for _, b := range f.Blocks {
		u, d := NewBitSet(n), NewBitSet(n)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			buf = in.Uses(buf[:0])
			for _, v := range buf {
				if !d.Has(v) {
					u.Add(v)
				}
			}
			if dv := in.Def(); dv != NoValue {
				d.Add(dv)
			}
		}
		use[b], def[b] = u, d
		lv.In[b] = NewBitSet(n)
		lv.Out[b] = NewBitSet(n)
	}
	for changed := true; changed; {
		changed = false
		// Iterate blocks in reverse order for faster convergence.
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b]
			for _, s := range b.Succs {
				if out.UnionWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			newIn := out.Clone()
			for w := range newIn.words {
				newIn.words[w] &^= def[b].words[w]
				newIn.words[w] |= use[b].words[w]
			}
			if lv.In[b].UnionWith(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAcross returns, for each instruction index in block b, the set of
// values live immediately after that instruction. Used by the register
// allocator and the unrolling pressure heuristic.
func (lv *Liveness) LiveAcross(b *Block) []*BitSet {
	res := make([]*BitSet, len(b.Instrs))
	cur := lv.Out[b].Clone()
	var buf []Value
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		res[i] = cur.Clone()
		in := &b.Instrs[i]
		if d := in.Def(); d != NoValue {
			cur.Remove(d)
		}
		buf = in.Uses(buf[:0])
		for _, v := range buf {
			cur.Add(v)
		}
	}
	return res
}
