package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// NamedConfig is one of the paper's three reference microarchitectures
// (Table 5).
type NamedConfig struct {
	Name   string
	Config sim.Config
}

// NamedConfigs returns the constrained, typical and aggressive
// configurations of Table 5.
func NamedConfigs() []NamedConfig {
	return []NamedConfig{
		{"constrained", sim.Constrained()},
		{"typical", sim.DefaultConfig()},
		{"aggressive", sim.Aggressive()},
	}
}

// Table5 renders the reference configurations.
func Table5() string {
	t := newTable("Table 5: micro-architectural configurations used for model-based search")
	t.row("Parameter", "Constrained", "Typical", "Aggressive")
	cs := NamedConfigs()
	get := func(f func(sim.Config) int) []string {
		var out []string
		for _, c := range cs {
			out = append(out, fmt.Sprint(f(c.Config)))
		}
		return out
	}
	rows := []struct {
		name string
		f    func(sim.Config) int
	}{
		{"Issue width", func(c sim.Config) int { return c.IssueWidth }},
		{"Branch predictor size", func(c sim.Config) int { return c.BPredSize }},
		{"Register update unit size", func(c sim.Config) int { return c.RUUSize }},
		{"Instruction cache size (KB)", func(c sim.Config) int { return c.ICacheKB }},
		{"Data cache size (KB)", func(c sim.Config) int { return c.DCacheKB }},
		{"Data cache associativity", func(c sim.Config) int { return c.DCacheAssoc }},
		{"Data cache latency", func(c sim.Config) int { return c.DCacheLat }},
		{"Unified L2 cache size (KB)", func(c sim.Config) int { return c.L2KB }},
		{"Unified L2 cache associativity", func(c sim.Config) int { return c.L2Assoc }},
		{"Unified L2 cache latency", func(c sim.Config) int { return c.L2Lat }},
		{"Memory latency", func(c sim.Config) int { return c.MemLat }},
	}
	for _, r := range rows {
		vals := get(r.f)
		t.row(r.name, vals[0], vals[1], vals[2])
	}
	return t.String()
}

// SearchResult is the GA outcome for one program on one configuration.
type SearchResult struct {
	Program   string
	Config    string
	Point     doe.Point // joint point: GA compiler block + frozen microarch
	Predicted float64   // model-predicted cycles at Point
}

// SearchSettings runs the model-based GA search (paper Section 6.3) for
// every program in the study on each named configuration, using the RBF
// models as the search surrogate (as the paper does for Table 6).
func (s *Study) SearchSettings(configs []NamedConfig) ([]SearchResult, error) {
	return s.SearchSettingsCtx(context.Background(), configs)
}

// SearchSettingsCtx is SearchSettings with cancellation: the GA checks ctx
// between generations, so Ctrl-C (or a disconnected service client) stops
// the search promptly instead of finishing every remaining generation.
func (s *Study) SearchSettingsCtx(ctx context.Context, configs []NamedConfig) ([]SearchResult, error) {
	if configs == nil {
		configs = NamedConfigs()
	}
	var out []SearchResult
	for _, pd := range s.Programs {
		m := s.Models[pd.Workload.Key()]["rbf"]
		for _, nc := range configs {
			rng := s.Harness.rngFor("ga-" + pd.Workload.Key() + "-" + nc.Name)
			res, err := search.FindCompilerSettingsCtx(
				ctx, s.Harness.Space(), m, doe.FromConfig(nc.Config),
				search.GAOptions{
					Population:  s.Harness.Scale.GAPopulation,
					Generations: s.Harness.Scale.GAGenerations,
					Workers:     s.Harness.Workers,
				}, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, SearchResult{
				Program:   pd.Workload.Key(),
				Config:    nc.Name,
				Point:     res.Point,
				Predicted: res.Predicted,
			})
		}
	}
	return out, nil
}

// Table6 renders the GA-prescribed flag and heuristic settings in the
// paper's constrained/typical/aggressive format, one column per parameter.
func Table6(results []SearchResult, space *doe.Space) string {
	t := newTable("Table 6: optimization settings prescribed by model-based search\n" +
		"(constrained/typical/aggressive)")
	hdr := []string{"Program-Input"}
	for i := 0; i < doe.NumCompilerVars; i++ {
		hdr = append(hdr, fmt.Sprint(i+1))
	}
	t.row(hdr...)

	byProgram := map[string]map[string]doe.Point{}
	var progOrder []string
	for _, r := range results {
		if byProgram[r.Program] == nil {
			byProgram[r.Program] = map[string]doe.Point{}
			progOrder = append(progOrder, r.Program)
		}
		byProgram[r.Program][r.Config] = r.Point
	}
	order := []string{"constrained", "typical", "aggressive"}
	for _, prog := range progOrder {
		cells := []string{prog}
		for v := 0; v < doe.NumCompilerVars; v++ {
			var parts []string
			for _, cfg := range order {
				p, ok := byProgram[prog][cfg]
				if !ok {
					continue
				}
				parts = append(parts, fmt.Sprint(p[v]))
			}
			cells = append(cells, strings.Join(parts, "/"))
		}
		t.row(cells...)
	}
	// Reference row: the paper's default O3.
	o3 := doe.FromOptions(compiler.O3())
	cells := []string{"default O3"}
	for v := 0; v < doe.NumCompilerVars; v++ {
		cells = append(cells, fmt.Sprintf("%d/%d/%d", o3[v], o3[v], o3[v]))
	}
	t.row(cells...)
	return t.String()
}

// SpeedupRow is one program × configuration speedup measurement (Figure 7).
type SpeedupRow struct {
	Program string
	Config  string
	// Speedups over the -O2 baseline (1.10 = 10% faster).
	PredictedGA float64 // model-predicted speedup at the GA point
	ActualGA    float64 // measured speedup at the GA point
	ActualO3    float64 // measured speedup of default -O3
}

// Fig7 reproduces Figure 7: predicted and actual speedup over -O2 at the
// GA-prescribed settings, with default -O3 for comparison, per program and
// configuration. It reuses the search results and performs the three
// measurements per cell.
func (s *Study) Fig7(results []SearchResult, configs []NamedConfig) (string, []SpeedupRow, error) {
	if configs == nil {
		configs = NamedConfigs()
	}
	cfgByName := map[string]sim.Config{}
	for _, nc := range configs {
		cfgByName[nc.Name] = nc.Config
	}
	wlByKey := map[string]workloads.Workload{}
	for _, pd := range s.Programs {
		wlByKey[pd.Workload.Key()] = pd.Workload
	}

	// Warm the farm in parallel; the loop below then reads the store and
	// keeps its deterministic row order and error selection.
	var jobs []farm.Job
	for _, r := range results {
		w, ok := wlByKey[r.Program]
		if !ok {
			continue
		}
		march := doe.FromConfig(cfgByName[r.Config])
		jobs = append(jobs,
			farm.Job{Workload: w, Point: doe.JoinPoint(doe.FromOptions(compiler.O2()), march)},
			farm.Job{Workload: w, Point: doe.JoinPoint(doe.FromOptions(compiler.O3()), march)},
			farm.Job{Workload: w, Point: r.Point},
		)
	}
	s.Harness.Prefetch(jobs)

	var rows []SpeedupRow
	t := newTable("Figure 7: speedup over -O2 at model-prescribed settings")
	t.row("Benchmark-Input", "Config", "Predicted", "Actual", "O3 actual")
	for _, r := range results {
		w, ok := wlByKey[r.Program]
		if !ok {
			continue
		}
		cfg := cfgByName[r.Config]
		march := doe.FromConfig(cfg)
		o2Point := doe.JoinPoint(doe.FromOptions(compiler.O2()), march)
		o3Point := doe.JoinPoint(doe.FromOptions(compiler.O3()), march)

		o2Cycles, err := s.Harness.MeasureCycles(w, o2Point)
		if err != nil {
			return "", nil, err
		}
		o3Cycles, err := s.Harness.MeasureCycles(w, o3Point)
		if err != nil {
			return "", nil, err
		}
		gaCycles, err := s.Harness.MeasureCycles(w, r.Point)
		if err != nil {
			return "", nil, err
		}
		m := s.Models[r.Program]["rbf"]
		predO2 := m.Predict(s.Harness.Space().Code(o2Point))
		row := SpeedupRow{
			Program:     r.Program,
			Config:      r.Config,
			PredictedGA: predO2 / r.Predicted,
			ActualGA:    o2Cycles / gaCycles,
			ActualO3:    o2Cycles / o3Cycles,
		}
		rows = append(rows, row)
		t.row(row.Program, row.Config, f2(row.PredictedGA), f2(row.ActualGA), f2(row.ActualO3))
	}
	if err := s.Harness.SaveCache(); err != nil {
		s.Harness.logf("cache save failed: %v", err)
	}
	return t.String(), rows, nil
}

// Table7Row is one profile-guided speedup result.
type Table7Row struct {
	Program     string
	Constrained float64 // % speedup over -O2 on the ref input
	Typical     float64
	Aggressive  float64
}

// Table7 reproduces the paper's Table 7: the profile-guided scenario. The
// models (and GA settings) come from the train input; the speedup is
// measured on the ref input — testing whether train-input models transfer.
func (s *Study) Table7(results []SearchResult, configs []NamedConfig) (string, []Table7Row, error) {
	if configs == nil {
		configs = NamedConfigs()
	}
	cfgByName := map[string]sim.Config{}
	for _, nc := range configs {
		cfgByName[nc.Name] = nc.Config
	}

	var jobs []farm.Job
	for _, r := range results {
		w, err := workloads.Get(strings.SplitN(r.Program, "-", 2)[0], workloads.Ref)
		if err != nil {
			continue
		}
		march := doe.FromConfig(cfgByName[r.Config])
		jobs = append(jobs,
			farm.Job{Workload: w, Point: doe.JoinPoint(doe.FromOptions(compiler.O2()), march)},
			farm.Job{Workload: w, Point: doe.JoinPoint(r.Point[:doe.NumCompilerVars], march)},
		)
	}
	s.Harness.Prefetch(jobs)

	speedups := map[string]map[string]float64{}
	var progOrder []string
	for _, r := range results {
		w, err := workloads.Get(strings.SplitN(r.Program, "-", 2)[0], workloads.Ref)
		if err != nil {
			return "", nil, err
		}
		cfg := cfgByName[r.Config]
		march := doe.FromConfig(cfg)
		o2Point := doe.JoinPoint(doe.FromOptions(compiler.O2()), march)
		gaPoint := doe.JoinPoint(r.Point[:doe.NumCompilerVars], march)

		o2Cycles, err := s.Harness.MeasureCycles(w, o2Point)
		if err != nil {
			return "", nil, err
		}
		gaCycles, err := s.Harness.MeasureCycles(w, gaPoint)
		if err != nil {
			return "", nil, err
		}
		if speedups[r.Program] == nil {
			speedups[r.Program] = map[string]float64{}
			progOrder = append(progOrder, r.Program)
		}
		speedups[r.Program][r.Config] = 100 * (o2Cycles/gaCycles - 1)
	}

	t := newTable("Table 7: actual speedup over -O2 (%) in the profile-guided scenario\n" +
		"(models built on train inputs, speedups measured on ref inputs)")
	t.row("Program", "Constrained", "Typical", "Aggressive")
	var rows []Table7Row
	var sums Table7Row
	for _, prog := range progOrder {
		sp := speedups[prog]
		row := Table7Row{
			Program:     prog,
			Constrained: sp["constrained"],
			Typical:     sp["typical"],
			Aggressive:  sp["aggressive"],
		}
		rows = append(rows, row)
		sums.Constrained += row.Constrained
		sums.Typical += row.Typical
		sums.Aggressive += row.Aggressive
		t.row(prog, f2(row.Constrained), f2(row.Typical), f2(row.Aggressive))
	}
	if n := float64(len(rows)); n > 0 {
		t.row("Average", f2(sums.Constrained/n), f2(sums.Typical/n), f2(sums.Aggressive/n))
	}
	if err := s.Harness.SaveCache(); err != nil {
		s.Harness.logf("cache save failed: %v", err)
	}
	return t.String(), rows, nil
}
