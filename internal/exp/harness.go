// Package exp is the experiment harness: it drives the full pipeline of the
// paper — D-optimal design over the joint compiler/microarchitecture space,
// compile-and-simulate measurement of each design point, empirical model
// fitting, and model-based search — and regenerates every table and figure
// of the evaluation section at configurable scale.
package exp

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"path/filepath"
	"sync"

	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Scale sets the experiment sizes. The paper's full scale (400 training +
// 100 test simulations per program) is hours of single-core simulation; the
// default scale preserves the methodology at a fraction of the cost.
type Scale struct {
	Name        string
	TrainPoints int
	TestPoints  int
	// DesignExpansion is the model the D-optimality criterion targets.
	// All predefined scales use the main-effects criterion: the
	// interaction expansion has 326 terms in the 25-variable space, which
	// makes Fedorov exchange infeasibly slow and needs ≥ 326 points for a
	// nonsingular information matrix. (The paper used R's AlgDesign at
	// n=400; our designs are D-optimal for main effects and random-ish in
	// the interaction subspace, which Table 3 shows is sufficient.)
	DesignExpansion doe.Expansion
	GAPopulation    int
	GAGenerations   int
}

// Predefined scales.
var (
	Quick   = Scale{Name: "quick", TrainPoints: 40, TestPoints: 12, DesignExpansion: doe.ExpandLinear, GAPopulation: 24, GAGenerations: 12}
	Default = Scale{Name: "default", TrainPoints: 120, TestPoints: 40, DesignExpansion: doe.ExpandLinear, GAPopulation: 60, GAGenerations: 40}
	Paper   = Scale{Name: "paper", TrainPoints: 400, TestPoints: 100, DesignExpansion: doe.ExpandLinear, GAPopulation: 80, GAGenerations: 60}
)

// ScaleByName resolves "quick", "default" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("exp: unknown scale %q (quick|default|paper)", name)
}

// Harness runs measurements with caching and deterministic seeding. All
// measurement flows through an internal farm.Farm: a bounded worker pool
// with single-flight deduplication and a durable, journaled result store,
// so concurrent callers never duplicate a compile+simulate and parallel
// runs are bit-for-bit identical to serial ones (results are keyed by
// point, which is order-independent).
type Harness struct {
	Scale Scale
	Seed  int64
	// CacheDir, when non-empty, persists measurements to
	// <CacheDir>/measurements-<scale>.json (plus a crash-recovery journal
	// alongside it) across runs.
	CacheDir string
	// Log receives progress lines; nil silences them.
	Log io.Writer

	// MaxInstrs bounds each simulation (guards miscompiled infinite
	// loops). Zero means the default of 500M.
	MaxInstrs int64

	// Workers bounds the measurement farm's concurrency AND the analytics
	// side (model fitting, cross-validation folds, Fedorov exchange scans,
	// GA fitness batches). Zero means runtime.GOMAXPROCS(0); one
	// reproduces the serial path. Every analytics result is bit-for-bit
	// identical for any value.
	Workers int

	// Measure, when non-nil, replaces the farm's compile+simulate executor
	// — the injection point for stub pipelines in tests and instrumented
	// ones in services. Like the other configuration fields it must be set
	// before the first measurement.
	Measure farm.MeasureFunc

	// MakeBackend, when non-nil, builds the measurement backend instead of
	// the in-process farm.New — the hook the distributed coordinator
	// (internal/dist) plugs into. It receives the fully populated options,
	// durable store included, so backends inherit the harness's cache
	// exactly as the local farm would.
	MakeBackend func(opts farm.Options) farm.Backend

	mu    sync.Mutex
	farm  farm.Backend
	space *doe.Space
}

// NewHarness returns a harness at the given scale with seed 1.
func NewHarness(scale Scale) *Harness {
	return &Harness{Scale: scale, Seed: 1, space: doe.JointSpace()}
}

// Space returns the joint 25-variable space the harness experiments on.
func (h *Harness) Space() *doe.Space {
	if h.space == nil {
		h.space = doe.JointSpace()
	}
	return h.space
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format+"\n", args...)
	}
}

func (h *Harness) cachePath() string {
	return filepath.Join(h.CacheDir, "measurements-"+h.Scale.Name+".json")
}

// Farm returns the harness's measurement backend — the in-process farm, or
// whatever MakeBackend builds (the distributed coordinator) — creating it
// (and loading the durable store when CacheDir is set) on first use.
// Configuration fields (CacheDir, Workers, MaxInstrs, Log, MakeBackend)
// must be set before the first measurement.
func (h *Harness) Farm() farm.Backend {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.farm != nil {
		return h.farm
	}
	store := farm.MemStore()
	if h.CacheDir != "" {
		s, err := farm.Open(h.cachePath(), h.Log)
		if err != nil {
			// A cache is an optimization; run without durability rather
			// than fail the experiment.
			h.logf("cache open failed (running without persistence): %v", err)
		} else {
			store = s
		}
	}
	opts := farm.Options{
		Workers:   h.Workers,
		Store:     store,
		Measure:   h.Measure,
		MaxInstrs: h.MaxInstrs,
		Log:       h.Log,
	}
	if h.MakeBackend != nil {
		h.farm = h.MakeBackend(opts)
	} else {
		h.farm = farm.New(opts)
	}
	return h.farm
}

// Drain asks the backend to stop admitting work to executors and to finish
// (or requeue) in-flight work within ctx. Only backends with remote leases
// implement it — the in-process farm drains in Close — so for local farms
// this is a no-op.
func (h *Harness) Drain(ctx context.Context) error {
	h.mu.Lock()
	f := h.farm
	h.mu.Unlock()
	if d, ok := f.(farm.Drainer); ok {
		return d.Drain(ctx)
	}
	return nil
}

// FarmStats snapshots the measurement farm's instrumentation counters. A
// zero Stats (Workers == 0) means no measurement has run yet.
func (h *Harness) FarmStats() farm.Stats {
	h.mu.Lock()
	f := h.farm
	h.mu.Unlock()
	if f == nil {
		return farm.Stats{}
	}
	return f.Stats()
}

// SaveCache checkpoints the measurement store if CacheDir is set: the full
// map is written to a temp file and atomically renamed over the checkpoint,
// then the journal is truncated, so a crash never loses or corrupts it.
func (h *Harness) SaveCache() error {
	if h.CacheDir == "" {
		h.mu.Lock()
		created := h.farm != nil
		h.mu.Unlock()
		if !created {
			return nil
		}
	}
	return h.Farm().Checkpoint()
}

// Close drains the farm's workers and flushes the store. The harness
// rejects new measurements afterwards.
func (h *Harness) Close() error {
	h.mu.Lock()
	f := h.farm
	h.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// MeasureCycles compiles workload w at the compiler settings in joint-space
// point p and simulates it on the microarchitecture in p, returning the
// execution time in cycles. Results are memoized in the farm's store and
// concurrent requests for the same point coalesce into one execution.
func (h *Harness) MeasureCycles(w workloads.Workload, p doe.Point) (float64, error) {
	return h.Farm().Measure(context.Background(), w, p, farm.Cycles)
}

// MeasureEnergy is MeasureCycles for the activity-based energy estimate —
// the paper notes the methodology applies unchanged to responses such as
// power consumption.
func (h *Harness) MeasureEnergy(w workloads.Workload, p doe.Point) (float64, error) {
	return h.Farm().Measure(context.Background(), w, p, farm.Energy)
}

// rngFor derives a deterministic sub-generator for a named purpose.
func (h *Harness) rngFor(purpose string) *rand.Rand {
	hash := fnv.New64a()
	fmt.Fprintf(hash, "%d|%s", h.Seed, purpose)
	return rand.New(rand.NewSource(int64(hash.Sum64())))
}

// TrainDesign returns the D-optimal training design for one program (shared
// across programs in the paper; we also share it, keyed only by the scale
// and seed, so measurements amortize).
func (h *Harness) TrainDesign() []doe.Point {
	des := doe.DOptimal(h.Space(), h.Scale.TrainPoints, h.rngFor("train-design"),
		doe.DOptions{Expansion: h.Scale.DesignExpansion, MaxSweeps: 8, Workers: h.Workers})
	return des.Points
}

// TestDesign returns the independently generated test set.
func (h *Harness) TestDesign() []doe.Point {
	return h.Space().LatinHypercube(h.Scale.TestPoints, h.rngFor("test-design"))
}

// BuildDataset measures the workload at every point — in parallel, on the
// farm's worker pool — and returns the coded dataset. The dataset is
// bit-identical regardless of worker count: values are keyed by point and
// assembled in input order.
func (h *Harness) BuildDataset(w workloads.Workload, points []doe.Point) (*model.Dataset, error) {
	before := h.Farm().Stats()
	ys, err := h.Farm().MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	xs := make([][]float64, len(points))
	for i, p := range points {
		xs[i] = h.Space().Code(p)
	}
	after := h.Farm().Stats()
	h.logf("  %s: %d points measured (%d simulated, %d cached, %d coalesced)",
		w.Key(), len(points),
		after.SimsExecuted-before.SimsExecuted,
		after.CacheHits-before.CacheHits,
		after.Coalesced-before.Coalesced)
	return model.NewDataset(xs, ys)
}

// Prefetch submits measurement jobs to the farm and waits for all of them,
// warming the result store so a subsequent serial pass is pure cache hits.
// The jobs go through the farm's batch planner, so points sharing a binary
// (Table 7's per-march sweeps at fixed flags) are compiled and interpreted
// once. Errors are deliberately dropped: the serial pass re-requests every
// point and reports failures in its own deterministic (input) order.
func (h *Harness) Prefetch(jobs []farm.Job) {
	_, _ = h.Farm().DoJobs(context.Background(), jobs)
}

// FitModels measures the training design for w (warm-started from the
// durable store when CacheDir is set — points already measured by a previous
// run or process cost nothing) and fits all model kinds on it. It returns
// the fitted models keyed by kind ("linear", "mars", "rbf", "mars-raw")
// plus the coded training matrix, which effect ranking uses as background
// points. This is the model registry's training hook (internal/serve).
func (h *Harness) FitModels(w workloads.Workload) (map[string]model.Model, [][]float64, error) {
	ds, err := h.BuildDataset(w, h.TrainDesign())
	if err != nil {
		return nil, nil, err
	}
	models, err := FitAllParallel(ds, h.Workers)
	if err != nil {
		return nil, nil, err
	}
	return models, ds.X, nil
}

// ProgramData bundles the train/test measurements for one program.
type ProgramData struct {
	Workload    workloads.Workload
	TrainPoints []doe.Point
	TestPoints  []doe.Point
	Train       *model.Dataset
	Test        *model.Dataset
}

// Collect measures train and test sets for a workload.
func (h *Harness) Collect(w workloads.Workload) (*ProgramData, error) {
	h.logf("%s: measuring %d train + %d test points",
		w.Key(), h.Scale.TrainPoints, h.Scale.TestPoints)
	trainPts := h.TrainDesign()
	testPts := h.TestDesign()
	train, err := h.BuildDataset(w, trainPts)
	if err != nil {
		return nil, err
	}
	test, err := h.BuildDataset(w, testPts)
	if err != nil {
		return nil, err
	}
	return &ProgramData{
		Workload:    w,
		TrainPoints: trainPts,
		TestPoints:  testPts,
		Train:       train,
		Test:        test,
	}, nil
}

// FitRBF fits the harness's reference "RBF-RT" model: the spline-detrended
// regression-tree RBF network on the log response (see model.HybridRBFModel
// for why the hybrid replaces a pure kernel expansion).
func FitRBF(data *model.Dataset) (model.Model, error) {
	hy, err := model.FitHybridRBF(model.LogDataset(data),
		model.MARSOptions{}, model.RBFOptions{Kernel: model.Multiquadric})
	if err != nil {
		return nil, err
	}
	return model.LogModel{Inner: hy}, nil
}

// FitAll fits the three modeling techniques of the paper on one dataset:
// linear regression with two-factor interactions on the raw response, MARS
// on the log response, and the hybrid RBF-RT network on the log response.
// It is FitAllParallel at the default worker count.
func FitAll(data *model.Dataset) (map[string]model.Model, error) {
	return FitAllParallel(data, 0)
}

// FitAllParallel is FitAll with the four independent model fits run
// concurrently on up to workers goroutines (0 = GOMAXPROCS). Each fit only
// reads the shared dataset, so the fitted models are identical to a serial
// run; errors are reported with the serial path's priority (linear first).
func FitAllParallel(data *model.Dataset, workers int) (map[string]model.Model, error) {
	var (
		lin, mars, rbf, marsRaw model.Model
		errs                    [4]error
	)
	par.Do(workers,
		func() {
			m, err := model.FitLinear(data, doe.ExpandInteractions)
			lin, errs[0] = m, err
		},
		func() {
			m, err := model.FitMARS(model.LogDataset(data), model.MARSOptions{Workers: workers})
			if err == nil {
				mars = model.LogModel{Inner: m}
			}
			errs[1] = err
		},
		func() { rbf, errs[2] = FitRBF(data) },
		func() {
			// Raw-scale MARS for coefficient interpretation (Table 4
			// reports effects in cycles).
			marsRaw, errs[3] = model.FitMARS(data, model.MARSOptions{Workers: workers})
		},
	)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return map[string]model.Model{
		"linear": lin, "mars": mars, "rbf": rbf, "mars-raw": marsRaw,
	}, nil
}
