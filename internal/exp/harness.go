// Package exp is the experiment harness: it drives the full pipeline of the
// paper — D-optimal design over the joint compiler/microarchitecture space,
// compile-and-simulate measurement of each design point, empirical model
// fitting, and model-based search — and regenerates every table and figure
// of the evaluation section at configurable scale.
package exp

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Scale sets the experiment sizes. The paper's full scale (400 training +
// 100 test simulations per program) is hours of single-core simulation; the
// default scale preserves the methodology at a fraction of the cost.
type Scale struct {
	Name        string
	TrainPoints int
	TestPoints  int
	// DesignExpansion is the model the D-optimality criterion targets.
	// All predefined scales use the main-effects criterion: the
	// interaction expansion has 326 terms in the 25-variable space, which
	// makes Fedorov exchange infeasibly slow and needs ≥ 326 points for a
	// nonsingular information matrix. (The paper used R's AlgDesign at
	// n=400; our designs are D-optimal for main effects and random-ish in
	// the interaction subspace, which Table 3 shows is sufficient.)
	DesignExpansion doe.Expansion
	GAPopulation    int
	GAGenerations   int
}

// Predefined scales.
var (
	Quick   = Scale{Name: "quick", TrainPoints: 40, TestPoints: 12, DesignExpansion: doe.ExpandLinear, GAPopulation: 24, GAGenerations: 12}
	Default = Scale{Name: "default", TrainPoints: 120, TestPoints: 40, DesignExpansion: doe.ExpandLinear, GAPopulation: 60, GAGenerations: 40}
	Paper   = Scale{Name: "paper", TrainPoints: 400, TestPoints: 100, DesignExpansion: doe.ExpandLinear, GAPopulation: 80, GAGenerations: 60}
)

// ScaleByName resolves "quick", "default" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("exp: unknown scale %q (quick|default|paper)", name)
}

// Harness runs measurements with caching and deterministic seeding.
type Harness struct {
	Scale Scale
	Seed  int64
	// CacheDir, when non-empty, persists measurements to
	// <CacheDir>/measurements-<scale>.json across runs.
	CacheDir string
	// Log receives progress lines; nil silences them.
	Log io.Writer

	// MaxInstrs bounds each simulation (guards miscompiled infinite
	// loops). Zero means the default of 500M.
	MaxInstrs int64

	mu     sync.Mutex
	cache  map[string]float64
	loaded bool
	space  *doe.Space
}

// NewHarness returns a harness at the given scale with seed 1.
func NewHarness(scale Scale) *Harness {
	return &Harness{Scale: scale, Seed: 1, space: doe.JointSpace()}
}

// Space returns the joint 25-variable space the harness experiments on.
func (h *Harness) Space() *doe.Space {
	if h.space == nil {
		h.space = doe.JointSpace()
	}
	return h.space
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format+"\n", args...)
	}
}

func (h *Harness) cachePath() string {
	return filepath.Join(h.CacheDir, "measurements-"+h.Scale.Name+".json")
}

func (h *Harness) loadCache() {
	if h.loaded {
		return
	}
	h.loaded = true
	if h.cache == nil {
		h.cache = map[string]float64{}
	}
	if h.CacheDir == "" {
		return
	}
	data, err := os.ReadFile(h.cachePath())
	if err != nil {
		return
	}
	var m map[string]float64
	if json.Unmarshal(data, &m) == nil {
		for k, v := range m {
			h.cache[k] = v
		}
	}
}

// SaveCache persists the measurement cache if CacheDir is set.
func (h *Harness) SaveCache() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.CacheDir == "" || h.cache == nil {
		return nil
	}
	if err := os.MkdirAll(h.CacheDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(h.cache)
	if err != nil {
		return err
	}
	return os.WriteFile(h.cachePath(), data, 0o644)
}

func pointKey(w workloads.Workload, p doe.Point) string {
	h := fnv.New64a()
	// The source text participates in the key so workload edits (and the
	// version tag so compiler/simulator semantic changes) invalidate stale
	// cached measurements.
	fmt.Fprintf(h, "v3|%s|%s|", w.Key(), w.Source)
	for _, v := range p {
		fmt.Fprintf(h, "%d,", v)
	}
	return fmt.Sprintf("%s|%x", w.Key(), h.Sum64())
}

// MeasureCycles compiles workload w at the compiler settings in joint-space
// point p and simulates it on the microarchitecture in p, returning the
// execution time in cycles. Results are memoized.
func (h *Harness) MeasureCycles(w workloads.Workload, p doe.Point) (float64, error) {
	return h.measure(w, p, "")
}

// MeasureEnergy is MeasureCycles for the activity-based energy estimate —
// the paper notes the methodology applies unchanged to responses such as
// power consumption.
func (h *Harness) MeasureEnergy(w workloads.Workload, p doe.Point) (float64, error) {
	return h.measure(w, p, "|energy")
}

func (h *Harness) measure(w workloads.Workload, p doe.Point, suffix string) (float64, error) {
	h.mu.Lock()
	h.loadCache()
	key := pointKey(w, p)
	if v, ok := h.cache[key+suffix]; ok {
		h.mu.Unlock()
		return v, nil
	}
	h.mu.Unlock()

	cfg := doe.ToConfig(p)
	opts := doe.ToOptions(p, cfg.IssueWidth)
	prog, _, err := compiler.Compile(w.Parse(), opts)
	if err != nil {
		return 0, fmt.Errorf("exp: %s: %w", w.Key(), err)
	}
	budget := h.MaxInstrs
	if budget == 0 {
		budget = 500_000_000
	}
	st, err := sim.Simulate(prog, cfg, budget)
	if err != nil {
		return 0, fmt.Errorf("exp: %s: %w", w.Key(), err)
	}

	h.mu.Lock()
	h.cache[key] = float64(st.Cycles)
	h.cache[key+"|energy"] = st.Energy
	v := h.cache[key+suffix]
	h.mu.Unlock()
	return v, nil
}

// rngFor derives a deterministic sub-generator for a named purpose.
func (h *Harness) rngFor(purpose string) *rand.Rand {
	hash := fnv.New64a()
	fmt.Fprintf(hash, "%d|%s", h.Seed, purpose)
	return rand.New(rand.NewSource(int64(hash.Sum64())))
}

// TrainDesign returns the D-optimal training design for one program (shared
// across programs in the paper; we also share it, keyed only by the scale
// and seed, so measurements amortize).
func (h *Harness) TrainDesign() []doe.Point {
	des := doe.DOptimal(h.Space(), h.Scale.TrainPoints, h.rngFor("train-design"),
		doe.DOptions{Expansion: h.Scale.DesignExpansion, MaxSweeps: 8})
	return des.Points
}

// TestDesign returns the independently generated test set.
func (h *Harness) TestDesign() []doe.Point {
	return h.Space().LatinHypercube(h.Scale.TestPoints, h.rngFor("test-design"))
}

// BuildDataset measures the workload at every point and returns the coded
// dataset.
func (h *Harness) BuildDataset(w workloads.Workload, points []doe.Point) (*model.Dataset, error) {
	xs := make([][]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		y, err := h.MeasureCycles(w, p)
		if err != nil {
			return nil, err
		}
		xs[i] = h.Space().Code(p)
		ys[i] = y
		if (i+1)%25 == 0 {
			h.logf("  %s: %d/%d points measured", w.Key(), i+1, len(points))
		}
	}
	return model.NewDataset(xs, ys)
}

// ProgramData bundles the train/test measurements for one program.
type ProgramData struct {
	Workload    workloads.Workload
	TrainPoints []doe.Point
	TestPoints  []doe.Point
	Train       *model.Dataset
	Test        *model.Dataset
}

// Collect measures train and test sets for a workload.
func (h *Harness) Collect(w workloads.Workload) (*ProgramData, error) {
	h.logf("%s: measuring %d train + %d test points",
		w.Key(), h.Scale.TrainPoints, h.Scale.TestPoints)
	trainPts := h.TrainDesign()
	testPts := h.TestDesign()
	train, err := h.BuildDataset(w, trainPts)
	if err != nil {
		return nil, err
	}
	test, err := h.BuildDataset(w, testPts)
	if err != nil {
		return nil, err
	}
	return &ProgramData{
		Workload:    w,
		TrainPoints: trainPts,
		TestPoints:  testPts,
		Train:       train,
		Test:        test,
	}, nil
}

// FitRBF fits the harness's reference "RBF-RT" model: the spline-detrended
// regression-tree RBF network on the log response (see model.HybridRBFModel
// for why the hybrid replaces a pure kernel expansion).
func FitRBF(data *model.Dataset) (model.Model, error) {
	hy, err := model.FitHybridRBF(model.LogDataset(data),
		model.MARSOptions{}, model.RBFOptions{Kernel: model.Multiquadric})
	if err != nil {
		return nil, err
	}
	return model.LogModel{Inner: hy}, nil
}

// FitAll fits the three modeling techniques of the paper on one dataset:
// linear regression with two-factor interactions on the raw response, MARS
// on the log response, and the hybrid RBF-RT network on the log response.
func FitAll(data *model.Dataset) (map[string]model.Model, error) {
	out := map[string]model.Model{}
	lin, err := model.FitLinear(data, doe.ExpandInteractions)
	if err != nil {
		return nil, err
	}
	out["linear"] = lin
	mars, err := model.FitMARS(model.LogDataset(data), model.MARSOptions{})
	if err != nil {
		return nil, err
	}
	out["mars"] = model.LogModel{Inner: mars}
	rbf, err := FitRBF(data)
	if err != nil {
		return nil, err
	}
	out["rbf"] = rbf
	// Raw-scale MARS for coefficient interpretation (Table 4 reports
	// effects in cycles).
	marsRaw, err := model.FitMARS(data, model.MARSOptions{})
	if err != nil {
		return nil, err
	}
	out["mars-raw"] = marsRaw
	return out, nil
}
