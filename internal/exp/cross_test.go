package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/farm"
	"repro/internal/features"
	"repro/internal/model"
	"repro/internal/wlgen"
	"repro/internal/workloads"
)

// crossStub is a deterministic synthetic measurement: cycles depend on both
// the program (through its source size) and the design point, so pooled
// models have genuine cross-program structure to learn, while each
// measurement costs nothing.
func crossStub(ctx context.Context, job farm.Job) (farm.Result, error) {
	c := 1000.0 + 2.0*float64(len(job.Workload.Source))
	for i, v := range job.Point {
		c += float64(i%7+1) * math.Abs(float64(v)) * 0.05
	}
	return farm.Result{Cycles: c, Energy: c / 2, Instructions: 1000}, nil
}

// crossCorpus builds the seven seed workloads plus n generated programs.
func crossCorpus(n int) []workloads.Workload {
	var ws []workloads.Workload
	for _, name := range workloads.Names() {
		ws = append(ws, workloads.MustGet(name, workloads.Train))
	}
	for _, p := range wlgen.Corpus(11, n) {
		ws = append(ws, p.Workload())
	}
	return ws
}

func TestBuildCrossDatasetShapeAndWorkerDeterminism(t *testing.T) {
	ws := crossCorpus(5)
	const pointsPer = 3

	build := func(workers int) *CrossDataset {
		h := NewHarness(Quick)
		h.Workers = workers
		h.Measure = crossStub
		defer h.Close()
		cd, err := h.BuildCrossDataset(ws, pointsPer)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return cd
	}
	a := build(1)
	b := build(8)

	if a.Data.Len() != len(ws)*pointsPer {
		t.Fatalf("rows = %d, want %d", a.Data.Len(), len(ws)*pointsPer)
	}
	if a.Data.Dim() != CrossDim() {
		t.Fatalf("dim = %d, want %d", a.Data.Dim(), CrossDim())
	}
	for i := range ws {
		if got := a.Spans[i]; got[1]-got[0] != pointsPer {
			t.Errorf("program %d span %v, want %d rows", i, got, pointsPer)
		}
	}
	for i := range a.Data.Y {
		if a.Data.Y[i] != b.Data.Y[i] {
			t.Fatalf("row %d response differs across worker counts", i)
		}
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatalf("row %d col %d differs across worker counts", i, j)
			}
		}
	}
}

// TestLOPOEndToEndOnGeneratedCorpus is the acceptance path: a
// wlgen-augmented corpus of 100 generated programs plus the seed suite,
// pooled through BuildCrossDataset (stub measurements), evaluated
// leave-one-program-out with held-out error reported per model kind.
func TestLOPOEndToEndOnGeneratedCorpus(t *testing.T) {
	ws := crossCorpus(100)
	h := NewHarness(Quick)
	h.Measure = crossStub
	defer h.Close()

	cd, err := h.BuildCrossDataset(ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Programs) < 100 {
		t.Fatalf("corpus has %d programs, want >= 100", len(cd.Programs))
	}
	if cd.Data.Len() != len(ws)*4 {
		t.Fatalf("pooled rows = %d, want %d", cd.Data.Len(), len(ws)*4)
	}

	res, err := h.RunLOPO(cd, LOPOOptions{
		MaxFolds: 3,
		MARS:     model.MARSOptions{MaxTerms: 10, MaxKnots: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("folds = %d, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		for kind, e := range map[string]float64{"linear": r.Linear, "mars": r.MARS, "rbf": r.RBF} {
			if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
				t.Errorf("%s: %s held-out error %v not a finite percentage", r.Program, kind, e)
			}
		}
		if !math.IsNaN(r.Baseline) {
			t.Errorf("%s: baseline computed without being requested", r.Program)
		}
	}
	table := res.LOPOTable()
	if !strings.Contains(table, "Leave-one-program-out") || !strings.Contains(table, res.Rows[0].Program) {
		t.Errorf("table missing content:\n%s", table)
	}
}

func TestLOPOBaselineFitsWithEnoughRows(t *testing.T) {
	ws := crossCorpus(0) // just the seven seeds
	h := NewHarness(Quick)
	h.Measure = crossStub
	defer h.Close()

	cd, err := h.BuildCrossDataset(ws, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunLOPO(cd, LOPOOptions{
		MaxFolds: 1,
		Baseline: true,
		MARS:     model.MARSOptions{MaxTerms: 8, MaxKnots: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if math.IsNaN(r.Baseline) || math.IsInf(r.Baseline, 0) {
		t.Fatalf("baseline should be fittable on 40 own rows, got %v", r.Baseline)
	}
	if !strings.Contains(res.LOPOTable(), "Own-fit baseline") {
		t.Error("table missing baseline column")
	}
}

// TestCrossRowLayout pins the pooled row layout: coded features first,
// coded joint point after — the contract the serving path depends on.
func TestCrossRowLayout(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	f, err := features.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(Quick)
	pts := h.CrossDesign(w, 1)
	coded := h.Space().Code(pts[0])
	row := CrossRow(f, coded)
	if len(row) != CrossDim() {
		t.Fatalf("row dim = %d, want %d", len(row), CrossDim())
	}
	for i, c := range f.Code() {
		if row[i] != c {
			t.Fatalf("feature block mismatch at %d", i)
		}
	}
	for i, c := range coded {
		if row[features.NumFeatures()+i] != c {
			t.Fatalf("point block mismatch at %d", i)
		}
	}
}
