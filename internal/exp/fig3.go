package exp

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/linalg"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig3Cell is one (unroll factor, icache size) measurement of art.
type Fig3Cell struct {
	UnrollTimes int // 1 means unrolling disabled
	ICacheKB    int
	Cycles      float64
}

// Fig3Result carries the sweep and the linear-model fit the paper uses to
// show that a global linear approximation mispredicts the non-monotone
// unrolling response.
type Fig3Result struct {
	Cells []Fig3Cell
	// LinearPred8KB maps unroll factor to the linear model's prediction
	// at the 8KB instruction cache, fitted on the whole sweep.
	LinearPred8KB map[int]float64
}

// Fig3 reproduces Figure 3: execution time of art for different maximum
// unroll factors and instruction cache sizes, plus a linear approximation
// for the 8KB icache. Unroll factor 1 denotes -funroll-loops off.
func (h *Harness) Fig3() (string, *Fig3Result, error) {
	w := workloads.MustGet("179.art", workloads.Train)
	factors := []int{1, 2, 4, 6, 8, 10, 12}
	icaches := []int{8, 16, 32, 64, 128}

	base := sim.DefaultConfig()
	sweepPoint := func(uf, ic int) doe.Point {
		cfg := base
		cfg.ICacheKB = ic
		opts := compiler.O2()
		if uf > 1 {
			opts.UnrollLoops = true
			opts.MaxUnrollTimes = uf
		}
		// Clamp heuristics into the modeled space (O2 defaults are
		// in range already; unroll factor is the swept variable).
		return doe.JoinPoint(doe.FromOptions(opts), doe.FromConfig(cfg))
	}

	// Run the whole sweep through the farm in parallel, then assemble the
	// grid from the store in sweep order.
	var jobs []farm.Job
	for _, ic := range icaches {
		for _, uf := range factors {
			jobs = append(jobs, farm.Job{Workload: w, Point: sweepPoint(uf, ic)})
		}
	}
	h.Prefetch(jobs)

	res := &Fig3Result{LinearPred8KB: map[int]float64{}}
	for _, ic := range icaches {
		for _, uf := range factors {
			cycles, err := h.MeasureCycles(w, sweepPoint(uf, ic))
			if err != nil {
				return "", nil, err
			}
			res.Cells = append(res.Cells, Fig3Cell{UnrollTimes: uf, ICacheKB: ic, Cycles: cycles})
		}
	}

	// Fit a simple linear model cycles ~ b0 + b1*uf + b2*log2(icache) on
	// the sweep, and report its 8KB predictions.
	rows := make([][]float64, len(res.Cells))
	ys := make([]float64, len(res.Cells))
	for i, c := range res.Cells {
		rows[i] = []float64{1, float64(c.UnrollTimes), log2f(c.ICacheKB)}
		ys[i] = c.Cycles
	}
	coef, err := linalg.LeastSquares(linalg.FromRows(rows), ys)
	if err != nil {
		return "", nil, err
	}
	for _, uf := range factors {
		res.LinearPred8KB[uf] = coef[0] + coef[1]*float64(uf) + coef[2]*log2f(8)
	}

	t := newTable("Figure 3: art execution time (Mcycles) vs max unroll factor and icache size")
	hdr := []string{"unroll \\ icache"}
	for _, ic := range icaches {
		hdr = append(hdr, fmt.Sprintf("%dKB", ic))
	}
	hdr = append(hdr, "linear@8KB")
	t.row(hdr...)
	for _, uf := range factors {
		cells := []string{fmt.Sprint(uf)}
		for _, ic := range icaches {
			for _, c := range res.Cells {
				if c.UnrollTimes == uf && c.ICacheKB == ic {
					cells = append(cells, f2(c.Cycles/1e6))
				}
			}
		}
		cells = append(cells, f2(res.LinearPred8KB[uf]/1e6))
		t.row(cells...)
	}
	if err := h.SaveCache(); err != nil {
		h.logf("cache save failed: %v", err)
	}
	return t.String(), res, nil
}

func log2f(v int) float64 {
	f := 0.0
	for x := v; x > 1; x >>= 1 {
		f++
	}
	return f
}
