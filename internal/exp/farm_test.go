package exp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestParallelBuildDatasetBitIdentical is the farm's determinism guarantee
// (DESIGN.md decision 7): a parallel BuildDataset must produce a dataset
// bit-for-bit identical to the serial path, because results are keyed by
// point and assembly is in input order. Run under -race this also exercises
// the farm's synchronization on real measurement work.
func TestParallelBuildDatasetBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("Quick-scale dataset rebuild in -short mode")
	}
	w := workloads.MustGet("179.art", workloads.Train)
	build := func(workers int) ([][]float64, []float64) {
		h := NewHarness(Quick)
		h.Workers = workers
		defer h.Close()
		ds, err := h.BuildDataset(w, h.TrainDesign())
		if err != nil {
			t.Fatal(err)
		}
		return ds.X, ds.Y
	}
	xs1, ys1 := build(1)
	xs8, ys8 := build(8)
	if len(ys1) != Quick.TrainPoints || len(ys8) != len(ys1) {
		t.Fatalf("dataset sizes: %d vs %d", len(ys1), len(ys8))
	}
	for i := range ys1 {
		if ys1[i] != ys8[i] {
			t.Fatalf("response %d differs: serial %v vs parallel %v", i, ys1[i], ys8[i])
		}
		for j := range xs1[i] {
			if xs1[i][j] != xs8[i][j] {
				t.Fatalf("predictor [%d][%d] differs: %v vs %v", i, j, xs1[i][j], xs8[i][j])
			}
		}
	}
}

// TestConcurrentMeasureSingleExecution verifies the duplicate-measurement
// race fix: hammering the same point from many goroutines performs exactly
// one simulation.
func TestConcurrentMeasureSingleExecution(t *testing.T) {
	h := NewHarness(tinyScale)
	defer h.Close()
	w := workloads.MustGet("179.art", workloads.Train)
	p := doe.JoinPoint(doe.FromOptions(compiler.O2()), doe.FromConfig(sim.DefaultConfig()))
	const callers = 12
	vals := make(chan float64, callers)
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			v, err := h.MeasureCycles(w, p)
			vals <- v
			errs <- err
		}()
	}
	var first float64
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		v := <-vals
		if i == 0 {
			first = v
		} else if v != first {
			t.Fatalf("caller %d saw %v, first saw %v", i, v, first)
		}
	}
	if st := h.FarmStats(); st.SimsExecuted != 1 {
		t.Fatalf("%d concurrent callers caused %d simulations, want 1", callers, st.SimsExecuted)
	}
}

// TestCorruptCacheRecovers asserts the harness starts fresh (rather than
// failing or silently mixing in garbage) when the cache checkpoint is
// corrupt, and that the subsequent SaveCache repairs the file.
func TestCorruptCacheRecovers(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale
	path := filepath.Join(dir, "measurements-"+sc.Name+".json")
	if err := os.WriteFile(path, []byte(`{"truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(sc)
	h.CacheDir = dir
	defer h.Close()
	w := workloads.MustGet("256.bzip2", workloads.Train)
	p := doe.JoinPoint(doe.FromOptions(compiler.O0()), doe.FromConfig(sim.Constrained()))
	v, err := h.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SaveCache(); err != nil {
		t.Fatal(err)
	}
	h2 := NewHarness(sc)
	h2.CacheDir = dir
	defer h2.Close()
	v2, err := h2.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if v != v2 {
		t.Fatalf("repaired cache disagrees: %v vs %v", v, v2)
	}
	if st := h2.FarmStats(); st.SimsExecuted != 0 {
		t.Fatalf("repaired cache missed: %d simulations", st.SimsExecuted)
	}
}

// TestJournalSurvivesWithoutSaveCache asserts crash-safety of the result
// store: a measurement is durable the moment it completes (via the journal),
// even if the process dies before any SaveCache checkpoint.
func TestJournalSurvivesWithoutSaveCache(t *testing.T) {
	dir := t.TempDir()
	h := NewHarness(tinyScale)
	h.CacheDir = dir
	w := workloads.MustGet("256.bzip2", workloads.Train)
	p := doe.JoinPoint(doe.FromOptions(compiler.O2()), doe.FromConfig(sim.Aggressive()))
	v, err := h.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	// No SaveCache, no Close: simulate a crash here.
	h2 := NewHarness(tinyScale)
	h2.CacheDir = dir
	defer h2.Close()
	v2, err := h2.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if v != v2 {
		t.Fatalf("journal lost measurement: %v vs %v", v, v2)
	}
	if st := h2.FarmStats(); st.SimsExecuted != 0 {
		t.Fatalf("journal replay missed: %d simulations re-ran", st.SimsExecuted)
	}
}

// TestPrefetchFailureDoesNotPoisonKey asserts the error path of Prefetch: a
// job that fails during the prefetch pass must not leave its dedup key in a
// state where a later Measure for the same point gets the stale error (or,
// worse, hangs). Failures are not persisted to the store and the in-flight
// entry is removed on completion, so the retry must re-execute and succeed.
func TestPrefetchFailureDoesNotPoisonKey(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var executions atomic.Int64
	h := NewHarness(tinyScale)
	h.Measure = func(ctx context.Context, job farm.Job) (farm.Result, error) {
		executions.Add(1)
		if fail.Load() {
			return farm.Result{}, &farm.CompileError{Workload: job.Workload.Key(), Err: errors.New("injected")}
		}
		return farm.Result{Cycles: 42, Energy: 7, Instructions: 1}, nil
	}
	defer h.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	p := doe.JoinPoint(doe.FromOptions(compiler.O2()), doe.FromConfig(sim.DefaultConfig()))
	jobs := []farm.Job{{Workload: w, Point: p}}

	h.Prefetch(jobs) // errors deliberately dropped
	if n := executions.Load(); n != 1 {
		t.Fatalf("prefetch ran %d executions, want 1", n)
	}
	if st := h.FarmStats(); st.Failures != 1 {
		t.Fatalf("prefetch failure not counted: %+v", st)
	}

	fail.Store(false)
	v, err := h.MeasureCycles(w, p)
	if err != nil {
		t.Fatalf("measure after failed prefetch: %v", err)
	}
	if v != 42 {
		t.Fatalf("measure got %v, want 42", v)
	}
	if n := executions.Load(); n != 2 {
		t.Fatalf("retry after failure ran %d total executions, want 2", n)
	}

	// And the success is now cached: no third execution.
	if _, err := h.MeasureCycles(w, p); err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 2 {
		t.Fatalf("cached remeasure re-executed: %d executions", n)
	}
}
