package exp

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// table accumulates rows and renders an aligned text table.
type table struct {
	sb strings.Builder
	tw *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	if title != "" {
		t.sb.WriteString(title + "\n")
	}
	t.tw = tabwriter.NewWriter(&t.sb, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

func (t *table) String() string {
	t.tw.Flush()
	return t.sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
