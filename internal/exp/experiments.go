package exp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/workloads"
)

// Study holds measured datasets and fitted models for a set of programs —
// the shared substrate for Tables 3, 4, 6, 7 and Figures 5, 6, 7.
type Study struct {
	Harness  *Harness
	Class    workloads.InputClass
	Programs []*ProgramData
	// Models maps program key -> technique ("linear"/"mars"/"rbf") -> model.
	Models map[string]map[string]model.Model
}

// RunStudy measures train/test data and fits all three model families for
// the named programs (nil means the full seven-benchmark suite).
func (h *Harness) RunStudy(names []string, class workloads.InputClass) (*Study, error) {
	if names == nil {
		names = workloads.Names()
	}
	st := &Study{Harness: h, Class: class, Models: map[string]map[string]model.Model{}}
	for _, name := range names {
		w, err := workloads.Get(name, class)
		if err != nil {
			return nil, err
		}
		pd, err := h.Collect(w)
		if err != nil {
			return nil, err
		}
		ms, err := FitAllParallel(pd.Train, h.Workers)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", w.Key(), err)
		}
		st.Programs = append(st.Programs, pd)
		st.Models[w.Key()] = ms
		h.logf("%s: fitted linear/mars/rbf", w.Key())
	}
	if err := h.SaveCache(); err != nil {
		h.logf("cache save failed: %v", err)
	}
	return st, nil
}

// Table3Row is one program's prediction errors (percent) per technique.
type Table3Row struct {
	Program string
	Linear  float64
	MARS    float64
	RBF     float64
}

// Table3 reproduces the paper's Table 3: average percentage test-set
// prediction error of the three modeling techniques per program.
func (s *Study) Table3() (string, []Table3Row) {
	var rows []Table3Row
	var sumL, sumM, sumR float64
	for _, pd := range s.Programs {
		ms := s.Models[pd.Workload.Key()]
		r := Table3Row{
			Program: pd.Workload.Key(),
			Linear:  model.TestError(ms["linear"], pd.Test),
			MARS:    model.TestError(ms["mars"], pd.Test),
			RBF:     model.TestError(ms["rbf"], pd.Test),
		}
		rows = append(rows, r)
		sumL += r.Linear
		sumM += r.MARS
		sumR += r.RBF
	}
	n := float64(len(rows))

	t := newTable("Table 3: average prediction error (%) on the independent test set")
	t.row("Benchmark-Input", "Linear model", "MARS", "RBF-RT")
	for _, r := range rows {
		t.row(r.Program, f2(r.Linear), f2(r.MARS), f2(r.RBF))
	}
	if n > 0 {
		t.row("Average", f2(sumL/n), f2(sumM/n), f2(sumR/n))
	}
	return t.String(), rows
}

// Fig5Point is one (training size, error) sample of the learning curve.
type Fig5Point struct {
	Size    int
	MeanErr float64
	StdErr  float64
}

// Fig5 reproduces Figure 5: RBF test error (mean ± sigma over resampled
// training subsets) as a function of training set size, per program.
func (s *Study) Fig5() (string, map[string][]Fig5Point) {
	const repeats = 4
	out := map[string][]Fig5Point{}
	t := newTable("Figure 5: RBF model error vs training set size (mean ± sigma)")
	t.row("Benchmark-Input", "Size", "Mean err %", "Sigma")
	for _, pd := range s.Programs {
		pool := pd.Train
		rng := s.Harness.rngFor("fig5-" + pd.Workload.Key())
		var sizes []int
		for f := 1; f <= 4; f++ {
			sizes = append(sizes, pool.Len()*f/4)
		}
		for _, size := range sizes {
			if size < 10 {
				continue
			}
			var errs []float64
			for r := 0; r < repeats; r++ {
				sub := subsample(pool, size, rng)
				m, err := FitRBF(sub)
				if err != nil {
					continue
				}
				errs = append(errs, model.TestError(m, pd.Test))
			}
			if len(errs) == 0 {
				continue
			}
			p := Fig5Point{
				Size:    size,
				MeanErr: linalg.Mean(errs),
				StdErr:  linalg.StdDev(errs),
			}
			out[pd.Workload.Key()] = append(out[pd.Workload.Key()], p)
			t.row(pd.Workload.Key(), fmt.Sprint(size), f2(p.MeanErr), f2(p.StdErr))
		}
	}
	return t.String(), out
}

func subsample(d *model.Dataset, size int, rng interface{ Perm(int) []int }) *model.Dataset {
	if size >= d.Len() {
		return d
	}
	idx := rng.Perm(d.Len())[:size]
	xs := make([][]float64, size)
	ys := make([]float64, size)
	for i, j := range idx {
		xs[i] = d.X[j]
		ys[i] = d.Y[j]
	}
	sub, _ := model.NewDataset(xs, ys)
	return sub
}

// Fig6Pair is one (actual, predicted) test point.
type Fig6Pair struct {
	Actual    float64
	Predicted float64
}

// Fig6 reproduces Figure 6: actual vs RBF-predicted execution times on the
// test set for the programs with the highest errors (the paper shows art,
// vortex and mcf). Returns per-program scatter pairs plus the correlation.
func (s *Study) Fig6(programs []string) (string, map[string][]Fig6Pair) {
	if programs == nil {
		programs = []string{"179.art", "255.vortex", "181.mcf"}
	}
	want := map[string]bool{}
	for _, p := range programs {
		want[p] = true
	}
	out := map[string][]Fig6Pair{}
	t := newTable("Figure 6: actual vs predicted execution time (RBF models, test set)")
	t.row("Benchmark-Input", "Points", "Correlation", "Max |err| %")
	for _, pd := range s.Programs {
		if !want[pd.Workload.Name] {
			continue
		}
		m := s.Models[pd.Workload.Key()]["rbf"]
		pred := model.PredictAll(m, pd.Test.X)
		var pairs []Fig6Pair
		maxErr := 0.0
		for i := range pred {
			pairs = append(pairs, Fig6Pair{Actual: pd.Test.Y[i], Predicted: pred[i]})
			if e := 100 * math.Abs(pred[i]-pd.Test.Y[i]) / pd.Test.Y[i]; e > maxErr {
				maxErr = e
			}
		}
		out[pd.Workload.Key()] = pairs
		t.row(pd.Workload.Key(), fmt.Sprint(len(pairs)),
			f2(correlation(pd.Test.Y, pred)), f2(maxErr))
	}
	return t.String(), out
}

func correlation(a, b []float64) float64 {
	ma, mb := linalg.Mean(a), linalg.Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// Table4Cell is one effect coefficient for one program.
type Table4Cell struct {
	Label string
	Value float64
}

// Table4 reproduces the paper's Table 4: coefficients of the key parameters
// and interactions inferred from the MARS models, per program. Rows are the
// union of each program's top effects; values are in cycles (half the
// predicted low-to-high change, the paper's convention).
func (s *Study) Table4(topPerProgram int) (string, map[string][]Table4Cell) {
	if topPerProgram == 0 {
		topPerProgram = 10
	}
	space := s.Harness.Space()
	perProg := map[string]map[string]float64{}
	rowOrder := []string{}
	rowMax := map[string]float64{}
	for _, pd := range s.Programs {
		m := s.Models[pd.Workload.Key()]["mars-raw"]
		effects := model.TopEffects(m, space, pd.Train.X, topPerProgram)
		cells := map[string]float64{}
		for _, e := range effects {
			cells[e.Label()] = e.Value
			if a := math.Abs(e.Value); a > rowMax[e.Label()] {
				if rowMax[e.Label()] == 0 {
					rowOrder = append(rowOrder, e.Label())
				}
				rowMax[e.Label()] = a
			}
		}
		perProg[pd.Workload.Key()] = cells
	}
	sort.SliceStable(rowOrder, func(i, j int) bool {
		return rowMax[rowOrder[i]] > rowMax[rowOrder[j]]
	})

	t := newTable("Table 4: key parameter/interaction coefficients from MARS models (cycles)")
	hdr := []string{"Parameter/interaction"}
	for _, pd := range s.Programs {
		hdr = append(hdr, pd.Workload.Name)
	}
	t.row(hdr...)
	out := map[string][]Table4Cell{}
	for _, label := range rowOrder {
		cells := []string{label}
		for _, pd := range s.Programs {
			v, ok := perProg[pd.Workload.Key()][label]
			if !ok {
				cells = append(cells, "0")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3g", v))
			out[pd.Workload.Key()] = append(out[pd.Workload.Key()],
				Table4Cell{Label: label, Value: v})
		}
		t.row(cells...)
	}
	return t.String(), out
}

// EffectDirections summarizes, for the named variable, the per-program main
// effect from the MARS model — used by tests to check qualitative structure
// (e.g. microarchitectural parameters dominate compiler flags).
func (s *Study) EffectDirections(varName string) map[string]float64 {
	space := s.Harness.Space()
	vi := space.Index(varName)
	out := map[string]float64{}
	if vi < 0 {
		return out
	}
	for _, pd := range s.Programs {
		m := s.Models[pd.Workload.Key()]["mars-raw"]
		out[pd.Workload.Key()] = model.MainEffect(m, pd.Train.X, vi)
	}
	return out
}
