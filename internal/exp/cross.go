package exp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/features"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Cross-program modeling (ROADMAP item 3): instead of one model per
// program, pool measurements from many programs into a single dataset whose
// predictor rows concatenate the program's coded feature vector
// (internal/features) with the coded joint compiler/microarchitecture
// point, and fit one model over the pool. A model that generalizes across
// programs predicts execution time for programs it never measured — the
// serving path behind /v1/predict-program — and leave-one-program-out
// evaluation (RunLOPO) quantifies exactly that generalization.

// CrossDim is the pooled predictor dimensionality: the feature block
// followed by the 25 joint design variables.
func CrossDim() int { return features.NumFeatures() + doe.JointSpace().NumVars() }

// CrossRow builds one pooled predictor row from a program's raw feature
// vector and a coded joint point.
func CrossRow(f features.Vector, codedPoint []float64) []float64 {
	row := make([]float64, 0, len(f)+len(codedPoint))
	row = append(row, f.Code()...)
	return append(row, codedPoint...)
}

// CrossDataset is the pooled (features ⊕ flags ⊕ microarch) → cycles
// dataset over a program corpus, with per-program row spans retained for
// leave-one-program-out splits.
type CrossDataset struct {
	Programs []workloads.Workload
	Features []features.Vector // raw (uncoded) vector per program
	Points   [][]doe.Point     // measured joint points per program
	Spans    [][2]int          // per program: [start, end) rows in Data
	Data     *model.Dataset
}

// Rows returns the row-index slice of program i (for Dataset.Subset).
func (cd *CrossDataset) Rows(i int) []int {
	span := cd.Spans[i]
	idx := make([]int, 0, span[1]-span[0])
	for r := span[0]; r < span[1]; r++ {
		idx = append(idx, r)
	}
	return idx
}

// RowsExcept returns every row index outside program i, in order.
func (cd *CrossDataset) RowsExcept(i int) []int {
	span := cd.Spans[i]
	idx := make([]int, 0, cd.Data.Len()-(span[1]-span[0]))
	for r := 0; r < cd.Data.Len(); r++ {
		if r < span[0] || r >= span[1] {
			idx = append(idx, r)
		}
	}
	return idx
}

// CrossDesign returns program w's measurement design for the pooled
// dataset: a Latin hypercube over the joint space, seeded per program so
// the pool covers the space differently for every program while remaining
// deterministic and — through the farm's durable store — resumable.
func (h *Harness) CrossDesign(w workloads.Workload, n int) []doe.Point {
	return h.Space().LatinHypercube(n, h.rngFor("cross-design|"+w.Key()))
}

// BuildCrossDataset extracts features for every workload and measures its
// per-program design, pooling everything into one dataset. All jobs are
// prefetched through the farm in a single batch first, so the measurement
// plane's batch planner groups points sharing a binary and the worker pool
// stays saturated across programs; the per-program assembly pass then reads
// pure cache hits. Interrupted builds resume from the durable store when
// the harness has a CacheDir.
func (h *Harness) BuildCrossDataset(ws []workloads.Workload, pointsPer int) (*CrossDataset, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("exp: cross dataset needs at least one workload")
	}
	if pointsPer <= 0 {
		return nil, fmt.Errorf("exp: cross dataset needs pointsPer > 0, got %d", pointsPer)
	}
	cd := &CrossDataset{Programs: ws}

	var jobs []farm.Job
	for _, w := range ws {
		f, err := features.Extract(w)
		if err != nil {
			return nil, fmt.Errorf("exp: features for %s: %w", w.Key(), err)
		}
		pts := h.CrossDesign(w, pointsPer)
		cd.Features = append(cd.Features, f)
		cd.Points = append(cd.Points, pts)
		for _, p := range pts {
			jobs = append(jobs, farm.Job{Workload: w, Point: p})
		}
	}
	h.logf("cross dataset: %d programs x %d points, prefetching %d jobs",
		len(ws), pointsPer, len(jobs))
	h.Prefetch(jobs)

	var xs [][]float64
	var ys []float64
	for i, w := range ws {
		vals, err := h.Farm().MeasureBatch(context.Background(), w, cd.Points[i], farm.Cycles)
		if err != nil {
			return nil, fmt.Errorf("exp: measuring %s: %w", w.Key(), err)
		}
		start := len(xs)
		for j, p := range cd.Points[i] {
			xs = append(xs, CrossRow(cd.Features[i], h.Space().Code(p)))
			ys = append(ys, vals[j])
		}
		cd.Spans = append(cd.Spans, [2]int{start, len(xs)})
	}
	data, err := model.NewDataset(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("exp: cross dataset: %w", err)
	}
	cd.Data = data
	if err := h.SaveCache(); err != nil {
		h.logf("cache save failed: %v", err)
	}
	return cd, nil
}

// FitCrossModels fits the three techniques on a pooled cross-program
// dataset. Unlike the per-program fits, the linear model uses the
// main-effects expansion: the pooled space has CrossDim() (= 49) variables,
// and the two-factor interaction expansion's 1200+ terms would need more
// rows than realistic corpora provide. MARS and RBF-RT discover
// feature x flag interactions natively, which is precisely what
// cross-program generalization needs them for. mo tunes both the standalone
// MARS fit and the RBF-RT detrending pass (zero value = package defaults);
// LOPO sweeps cap the term budget through it to keep folds affordable.
func FitCrossModels(train *model.Dataset, workers int, mo model.MARSOptions) (map[string]model.Model, error) {
	if mo.Workers == 0 {
		mo.Workers = workers
	}
	var (
		lin, mars, rbf model.Model
		errs           [3]error
	)
	par.Do(workers,
		func() {
			m, err := model.FitLinear(train, doe.ExpandLinear)
			lin, errs[0] = m, err
		},
		func() {
			m, err := model.FitMARS(model.LogDataset(train), mo)
			if err == nil {
				mars = model.LogModel{Inner: m}
			}
			errs[1] = err
		},
		func() {
			hy, err := model.FitHybridRBF(model.LogDataset(train),
				mo, model.RBFOptions{Kernel: model.Multiquadric})
			if err == nil {
				rbf = model.LogModel{Inner: hy}
			}
			errs[2] = err
		},
	)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return map[string]model.Model{"linear": lin, "mars": mars, "rbf": rbf}, nil
}

// LOPOOptions configures the leave-one-program-out run.
type LOPOOptions struct {
	// MaxFolds bounds the number of held-out programs (0 = every program).
	// Bounding folds evaluates a corpus sample at a fraction of the fitting
	// cost; folds are taken in corpus order, so the bound is deterministic.
	MaxFolds int
	// Baseline additionally fits a per-program linear model on the held-out
	// program's own rows (75/25 split, feature block dropped) — the
	// "what if we had measured it" reference the cross model competes with.
	Baseline bool
	// MARS tunes the MARS fits inside each fold (see FitCrossModels).
	MARS model.MARSOptions
}

// LOPORow is one held-out program's evaluation: prediction error (mean
// absolute percent) of each cross model on the program's rows, plus the
// per-program baseline where requested and fittable.
type LOPORow struct {
	Program  string
	Rows     int
	Linear   float64
	MARS     float64
	RBF      float64
	Baseline float64 // NaN when not computed (disabled or too few rows)
}

// LOPOResult is the full leave-one-program-out evaluation.
type LOPOResult struct {
	Rows []LOPORow
	// Mean errors across folds, keyed like the per-row fields.
	MeanLinear, MeanMARS, MeanRBF float64
}

// RunLOPO evaluates cross-program generalization: for each held-out
// program, fit all cross models on every other program's rows and score
// them on the held-out rows the models never saw. This is the experiment
// behind the EXPERIMENTS.md LOPO table.
func (h *Harness) RunLOPO(cd *CrossDataset, opts LOPOOptions) (*LOPOResult, error) {
	folds := len(cd.Programs)
	if opts.MaxFolds > 0 && opts.MaxFolds < folds {
		folds = opts.MaxFolds
	}
	res := &LOPOResult{}
	for i := 0; i < folds; i++ {
		w := cd.Programs[i]
		train, err := cd.Data.Subset(cd.RowsExcept(i))
		if err != nil {
			return nil, err
		}
		test, err := cd.Data.Subset(cd.Rows(i))
		if err != nil {
			return nil, err
		}
		ms, err := FitCrossModels(train, h.Workers, opts.MARS)
		if err != nil {
			return nil, fmt.Errorf("exp: lopo fold %s: %w", w.Key(), err)
		}
		row := LOPORow{
			Program:  w.Key(),
			Rows:     test.Len(),
			Linear:   model.TestError(ms["linear"], test),
			MARS:     model.TestError(ms["mars"], test),
			RBF:      model.TestError(ms["rbf"], test),
			Baseline: math.NaN(),
		}
		if opts.Baseline {
			row.Baseline = h.lopoBaseline(test)
		}
		res.Rows = append(res.Rows, row)
		h.logf("lopo %s: linear=%.2f%% mars=%.2f%% rbf=%.2f%%",
			w.Key(), row.Linear, row.MARS, row.RBF)
	}
	n := float64(len(res.Rows))
	for _, r := range res.Rows {
		res.MeanLinear += r.Linear / n
		res.MeanMARS += r.MARS / n
		res.MeanRBF += r.RBF / n
	}
	return res, nil
}

// lopoBaseline fits a per-program linear model on the held-out program's
// own rows — 75% train, 25% test, feature columns dropped (they are
// constant within one program and would make the Gram matrix singular) —
// and returns its test error. NaN when the split leaves fewer rows than
// main-effects coefficients.
func (h *Harness) lopoBaseline(own *model.Dataset) float64 {
	nvars := h.Space().NumVars()
	cols := make([]int, nvars)
	for i := range cols {
		cols[i] = features.NumFeatures() + i
	}
	pointOnly, err := own.Columns(cols)
	if err != nil {
		return math.NaN()
	}
	split := pointOnly.Len() * 3 / 4
	if split < nvars+1 || pointOnly.Len()-split < 1 {
		return math.NaN()
	}
	idx := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	train, err := pointOnly.Subset(idx(0, split))
	if err != nil {
		return math.NaN()
	}
	test, err := pointOnly.Subset(idx(split, pointOnly.Len()))
	if err != nil {
		return math.NaN()
	}
	m, err := model.FitLinear(train, doe.ExpandLinear)
	if err != nil {
		return math.NaN()
	}
	return model.TestError(m, test)
}

// LOPOTable formats the result as the repo's standard fixed-width table.
func (res *LOPOResult) LOPOTable() string {
	t := newTable("Leave-one-program-out: held-out prediction error (%) per cross model")
	t.row("Held-out program", "Rows", "Linear", "MARS", "RBF-RT", "Own-fit baseline")
	fmtBase := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return f2(v)
	}
	for _, r := range res.Rows {
		t.row(r.Program, fmt.Sprint(r.Rows), f2(r.Linear), f2(r.MARS), f2(r.RBF), fmtBase(r.Baseline))
	}
	t.row("Mean", "", f2(res.MeanLinear), f2(res.MeanMARS), f2(res.MeanRBF), "")
	return t.String()
}
