package exp

import (
	"testing"

	"repro/internal/workloads"
)

func TestRefineToAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("refinement loop in -short mode")
	}
	h := NewHarness(tinyScale)
	w := workloads.MustGet("256.bzip2", workloads.Train)
	m, points, history, err := h.RefineToAccuracy(w, 8.0, 20, 15, 65)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || len(points) < 20 {
		t.Fatal("refinement returned nothing")
	}
	if len(history) < 1 {
		t.Fatal("no history")
	}
	// The design must only grow, and each iteration is recorded.
	for i := 1; i < len(history); i++ {
		if history[i].Points <= history[i-1].Points {
			t.Fatal("design should grow monotonically")
		}
	}
	last := history[len(history)-1]
	if last.CVError > 8.0 && last.Points+15 <= 65 {
		t.Fatalf("loop stopped early: %+v", history)
	}
	t.Logf("history: %+v", history)

	if _, _, _, err := h.RefineToAccuracy(w, 5, 2, 1, 1); err == nil {
		t.Fatal("invalid sizes should error")
	}
}
