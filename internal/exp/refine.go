package exp

import (
	"fmt"

	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/workloads"
)

// RefineResult records one iteration of the model refinement loop.
type RefineResult struct {
	Points  int     // design size after this iteration
	CVError float64 // k-fold cross-validation error of the RBF model (%)
}

// RefineToAccuracy implements the paper's Figure 1 loop: build a model from
// an initial D-optimal design, estimate its error, and augment the design
// with additional D-optimal points until the error target is met or the
// budget is exhausted. Error is estimated by cross-validation on the
// measured data, so the loop needs no independent test simulations.
//
// Returns the final model, the full design, and the per-iteration history.
func (h *Harness) RefineToAccuracy(w workloads.Workload, targetErrPct float64,
	initial, step, maxPoints int) (model.Model, []doe.Point, []RefineResult, error) {
	if initial < 10 || step < 1 || maxPoints < initial {
		return nil, nil, nil, fmt.Errorf("exp: invalid refinement sizes %d/%d/%d", initial, step, maxPoints)
	}
	rng := h.rngFor("refine-" + w.Key())
	design := doe.DOptimal(h.Space(), initial, rng,
		doe.DOptions{Expansion: h.Scale.DesignExpansion, MaxSweeps: 6, Workers: h.Workers})
	points := design.Points

	fitter := func(d *model.Dataset) (model.Model, error) { return FitRBF(d) }

	var history []RefineResult
	for {
		data, err := h.BuildDataset(w, points)
		if err != nil {
			return nil, nil, nil, err
		}
		folds := 5
		if data.Len() < 25 {
			folds = 3
		}
		cv, err := model.CrossValidateParallel(data, folds, h.Seed, h.Workers, fitter)
		if err != nil {
			return nil, nil, nil, err
		}
		history = append(history, RefineResult{Points: len(points), CVError: cv})
		h.logf("%s: refine: %d points, CV error %.2f%%", w.Key(), len(points), cv)

		if cv <= targetErrPct || len(points)+step > maxPoints {
			m, err := FitRBF(data)
			if err != nil {
				return nil, nil, nil, err
			}
			return m, points, history, nil
		}
		aug := doe.AugmentDOptimal(h.Space(), points, step, rng,
			doe.DOptions{Expansion: h.Scale.DesignExpansion, MaxSweeps: 4, Workers: h.Workers})
		points = aug.Points
	}
}
