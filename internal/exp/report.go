package exp

import (
	"encoding/json"
	"os"
)

// Report is the machine-readable form of a full experiment run, written by
// `empirico -json`; downstream plotting needs no access to the Go API.
type Report struct {
	Scale    string                  `json:"scale"`
	Seed     int64                   `json:"seed"`
	Programs []string                `json:"programs"`
	Table3   []Table3Row             `json:"table3,omitempty"`
	Fig5     map[string][]Fig5Point  `json:"fig5,omitempty"`
	Fig6     map[string][]Fig6Pair   `json:"fig6,omitempty"`
	Table4   map[string][]Table4Cell `json:"table4,omitempty"`
	Search   []SearchJSON            `json:"table6,omitempty"`
	Fig7     []SpeedupRow            `json:"fig7,omitempty"`
	Table7   []Table7Row             `json:"table7,omitempty"`
	Fig3     *Fig3Result             `json:"fig3,omitempty"`
}

// SearchJSON is a JSON-friendly SearchResult (points as plain int64s).
type SearchJSON struct {
	Program   string  `json:"program"`
	Config    string  `json:"config"`
	Settings  []int64 `json:"settings"` // the 14 compiler values
	Predicted float64 `json:"predictedCycles"`
}

// NewReport initializes a report for a study.
func NewReport(s *Study) *Report {
	r := &Report{Scale: s.Harness.Scale.Name, Seed: s.Harness.Seed}
	for _, pd := range s.Programs {
		r.Programs = append(r.Programs, pd.Workload.Key())
	}
	return r
}

// AddSearch records GA results in JSON form.
func (r *Report) AddSearch(results []SearchResult) {
	for _, res := range results {
		r.Search = append(r.Search, SearchJSON{
			Program:   res.Program,
			Config:    res.Config,
			Settings:  append([]int64{}, res.Point[:14]...),
			Predicted: res.Predicted,
		})
	}
}

// Write marshals the report to path with indentation.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
