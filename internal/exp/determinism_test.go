package exp

import (
	"testing"

	"repro/internal/workloads"
)

// TestStudyFullyDeterministic rebuilds a small study from scratch twice and
// requires bit-identical tables — the reproducibility guarantee the README
// advertises.
func TestStudyFullyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism rebuild in -short mode")
	}
	small := Scale{Name: "det", TrainPoints: 25, TestPoints: 8,
		GAPopulation: 12, GAGenerations: 5}
	build := func() (string, string) {
		h := NewHarness(small)
		st, err := h.RunStudy([]string{"256.bzip2"}, workloads.Train)
		if err != nil {
			t.Fatal(err)
		}
		t3, _ := st.Table3()
		results, err := st.SearchSettings(nil)
		if err != nil {
			t.Fatal(err)
		}
		return t3, Table6(results, h.Space())
	}
	t3a, t6a := build()
	t3b, t6b := build()
	if t3a != t3b {
		t.Errorf("Table 3 not reproducible:\n%s\nvs\n%s", t3a, t3b)
	}
	if t6a != t6b {
		t.Errorf("Table 6 not reproducible:\n%s\nvs\n%s", t6a, t6b)
	}
}
