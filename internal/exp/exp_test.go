package exp

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// tinyScale keeps pipeline tests fast; statistical quality is covered by the
// benchmark harness at larger scales.
var tinyScale = Scale{
	Name: "tiny", TrainPoints: 30, TestPoints: 10,
	GAPopulation: 16, GAGenerations: 6,
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestMeasureCyclesCachesAndIsDeterministic(t *testing.T) {
	h := NewHarness(tinyScale)
	w := workloads.MustGet("179.art", workloads.Train)
	p := doe.JoinPoint(doe.FromOptions(compiler.O2()), doe.FromConfig(sim.DefaultConfig()))
	a, err := h.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 {
		t.Fatalf("measurements: %v, %v", a, b)
	}

	h2 := NewHarness(tinyScale)
	c, err := h2.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("fresh harness disagrees: %v vs %v", c, a)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := NewHarness(tinyScale)
	h.CacheDir = dir
	w := workloads.MustGet("256.bzip2", workloads.Train)
	p := doe.JoinPoint(doe.FromOptions(compiler.O0()), doe.FromConfig(sim.Constrained()))
	a, err := h.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SaveCache(); err != nil {
		t.Fatal(err)
	}
	// A new harness must hit the disk cache (we can't observe the skip
	// directly, but the value must round-trip).
	h2 := NewHarness(tinyScale)
	h2.CacheDir = dir
	b, err := h2.MeasureCycles(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("disk cache mismatch: %v vs %v", a, b)
	}
}

func TestDesignsAreDeterministic(t *testing.T) {
	h1 := NewHarness(tinyScale)
	h2 := NewHarness(tinyScale)
	a, b := h1.TrainDesign(), h2.TrainDesign()
	if len(a) != tinyScale.TrainPoints {
		t.Fatalf("train design size %d", len(a))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("train designs differ across harnesses with same seed")
			}
		}
	}
	if len(h1.TestDesign()) != tinyScale.TestPoints {
		t.Fatal("test design size")
	}
}

// TestFullPipelineTiny runs the entire reproduction pipeline end to end at a
// tiny scale: study → Table 3 → Table 4 → GA search → Table 6 → Figure 7 →
// Table 7, checking structural properties rather than statistical quality.
func TestFullPipelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	h := NewHarness(tinyScale)
	st, err := h.RunStudy([]string{"179.art", "255.vortex"}, workloads.Train)
	if err != nil {
		t.Fatal(err)
	}

	txt, rows := st.Table3()
	if len(rows) != 2 || !strings.Contains(txt, "RBF-RT") {
		t.Fatalf("table3 malformed:\n%s", txt)
	}
	for _, r := range rows {
		if r.Linear <= 0 || r.MARS <= 0 || r.RBF <= 0 {
			t.Errorf("%s: non-positive errors: %+v", r.Program, r)
		}
	}

	t4, cells := st.Table4(6)
	if len(cells) == 0 || !strings.Contains(t4, "Parameter/interaction") {
		t.Fatalf("table4 malformed:\n%s", t4)
	}

	f6, pairs := st.Fig6(nil)
	if len(pairs["179.art-train"]) != tinyScale.TestPoints {
		t.Fatalf("fig6 pairs: %d", len(pairs["179.art-train"]))
	}
	if !strings.Contains(f6, "Correlation") {
		t.Fatal("fig6 format")
	}

	results, err := st.SearchSettings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*3 {
		t.Fatalf("expected 6 search results, got %d", len(results))
	}
	for _, r := range results {
		// Microarch block must equal the named config.
		var cfg sim.Config
		for _, nc := range NamedConfigs() {
			if nc.Name == r.Config {
				cfg = nc.Config
			}
		}
		march := doe.FromConfig(cfg)
		for i, v := range march {
			if r.Point[doe.NumCompilerVars+i] != v {
				t.Fatalf("%s/%s: microarch not frozen", r.Program, r.Config)
			}
		}
	}
	t6 := Table6(results, h.Space())
	if !strings.Contains(t6, "default O3") {
		t.Fatalf("table6 missing O3 row:\n%s", t6)
	}

	f7, srows, err := st.Fig7(results, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(srows) != 6 || !strings.Contains(f7, "speedup") {
		t.Fatalf("fig7 malformed:\n%s", f7)
	}
	for _, r := range srows {
		if r.ActualGA <= 0 || r.PredictedGA <= 0 || r.ActualO3 <= 0 {
			t.Errorf("non-positive speedups: %+v", r)
		}
	}

	t7, trows, err := st.Table7(results, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trows) != 2 || !strings.Contains(t7, "profile-guided") {
		t.Fatalf("table7 malformed:\n%s", t7)
	}
}

func TestTable5Static(t *testing.T) {
	txt := Table5()
	for _, want := range []string{"Constrained", "Typical", "Aggressive", "Issue width", "Memory latency"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table5 missing %q", want)
		}
	}
}

func TestFig3SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 sweep in -short mode")
	}
	h := NewHarness(tinyScale)
	txt, res, err := h.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 7*5 {
		t.Fatalf("fig3 cells: %d", len(res.Cells))
	}
	if !strings.Contains(txt, "linear@8KB") {
		t.Fatal("fig3 format")
	}
	// The unrolling response must be non-monotone at some icache size:
	// moderate unrolling beats none, extreme unrolling is worse than the
	// minimum (the paper's headline shape).
	byIC := map[int]map[int]float64{}
	for _, c := range res.Cells {
		if byIC[c.ICacheKB] == nil {
			byIC[c.ICacheKB] = map[int]float64{}
		}
		byIC[c.ICacheKB][c.UnrollTimes] = c.Cycles
	}
	shapeOK := false
	for _, m := range byIC {
		base := m[1]
		best, worst := base, base
		for _, v := range m {
			if v < best {
				best = v
			}
			if v > worst {
				worst = v
			}
		}
		if best < base && m[12] > best {
			shapeOK = true
		}
	}
	if !shapeOK {
		t.Log(txt)
		t.Error("expected non-monotone unrolling response at some icache size")
	}
}
