package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestReportWriteAndReadBack(t *testing.T) {
	r := &Report{
		Scale:    "quick",
		Seed:     1,
		Programs: []string{"179.art-train"},
		Table3:   []Table3Row{{Program: "179.art-train", Linear: 30, MARS: 10, RBF: 8}},
		Fig5:     map[string][]Fig5Point{"179.art-train": {{Size: 20, MeanErr: 12, StdErr: 2}}},
		Fig7:     []SpeedupRow{{Program: "179.art-train", Config: "typical", PredictedGA: 1.2, ActualGA: 1.1, ActualO3: 1.0}},
		Fig3: &Fig3Result{
			Cells:         []Fig3Cell{{UnrollTimes: 1, ICacheKB: 8, Cycles: 1e6}},
			LinearPred8KB: map[int]float64{1: 9e5},
		},
	}
	r.AddSearch([]SearchResult{{
		Program: "179.art-train", Config: "typical",
		Point:     make([]int64, 25),
		Predicted: 123,
	}})

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scale != "quick" || len(back.Table3) != 1 || back.Table3[0].RBF != 8 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back.Search) != 1 || len(back.Search[0].Settings) != 14 {
		t.Fatalf("search block wrong: %+v", back.Search)
	}
	if back.Fig3 == nil || back.Fig3.LinearPred8KB[1] != 9e5 {
		t.Fatalf("fig3 block wrong: %+v", back.Fig3)
	}
}
