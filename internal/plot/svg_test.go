package plot

import (
	"strings"
	"testing"
)

func TestChartSVGBasics(t *testing.T) {
	c := &Chart{
		Title:  "Test & Chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 30, 20}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}, Dashed: true},
		},
	}
	svg := c.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Test &amp; Chart",
		`stroke-dasharray="6 4"`, ">a</text>", ">b</text>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 6 {
		t.Errorf("expected 6 point markers, got %d", strings.Count(svg, "<circle"))
	}
}

func TestScatterAndDiagonal(t *testing.T) {
	c := &Chart{
		Scatter:  true,
		Diagonal: true,
		Series:   []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1.1, 1.9}}},
	}
	svg := c.SVG()
	if strings.Contains(svg, "polyline") {
		t.Error("scatter should not draw lines")
	}
	if !strings.Contains(svg, `stroke-dasharray="4 3"`) {
		t.Error("diagonal missing")
	}
}

func TestEmptyChartDoesNotPanic(t *testing.T) {
	c := &Chart{Title: "empty"}
	if svg := c.SVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("invalid SVG for empty chart")
	}
}

func TestDegenerateRanges(t *testing.T) {
	// Single point, identical values: still a valid document.
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{5}}}}
	if svg := c.SVG(); !strings.Contains(svg, "<circle") {
		t.Fatal("point not drawn")
	}
}

func TestTicksAreRound(t *testing.T) {
	ts := ticks(0, 100, 6)
	if len(ts) < 3 {
		t.Fatalf("too few ticks: %v", ts)
	}
	for _, v := range ts {
		if v < 0 || v > 100.0001 {
			t.Fatalf("tick out of range: %v", ts)
		}
	}
	// Small fractional range.
	ts2 := ticks(0.9, 1.4, 5)
	if len(ts2) == 0 {
		t.Fatal("no ticks for fractional range")
	}
	if len(ticks(5, 5, 4)) != 1 {
		t.Fatal("degenerate range should give one tick")
	}
}

func TestSortSeries(t *testing.T) {
	ss := []Series{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	SortSeries(ss)
	if ss[0].Name != "a" || ss[2].Name != "z" {
		t.Fatalf("not sorted: %v", []string{ss[0].Name, ss[1].Name, ss[2].Name})
	}
}
