// Package plot renders the reproduction's figures as standalone SVG files
// using nothing but the standard library. It provides the small set of chart
// forms the paper's figures need: multi-series line charts (Figures 3 and 5)
// and scatter plots with a reference diagonal (Figure 6) or grouped points
// (Figure 7).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line or point set.
type Series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// Chart describes one plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Scatter draws points without connecting lines.
	Scatter bool
	// Diagonal draws the y=x reference line (actual-vs-predicted plots).
	Diagonal bool
	// YZero forces the y axis to start at zero.
	YZero bool
}

const (
	width   = 640
	height  = 420
	marginL = 70
	marginR = 150
	marginT = 40
	marginB = 55
)

var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// SVG renders the chart to an SVG document.
func (c *Chart) SVG() string {
	xmin, xmax, ymin, ymax := c.bounds()

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	sx := func(x float64) float64 {
		if xmax == xmin {
			return marginL + plotW/2
		}
		return marginL + plotW*(x-xmin)/(xmax-xmin)
	}
	sy := func(y float64) float64 {
		if ymax == ymin {
			return marginT + plotH/2
		}
		return marginT + plotH*(1-(y-ymin)/(ymax-ymin))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)

	// Ticks.
	for _, t := range ticks(xmin, xmax, 6) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginB, x, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+20, fmtTick(t))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dy="4">%s</text>`+"\n",
			marginL-8, y, fmtTick(t))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, y, width-marginR, y)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, height-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(c.YLabel))

	if c.Diagonal {
		lo := math.Max(xmin, ymin)
		hi := math.Min(xmax, ymax)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999999" stroke-dasharray="4 3"/>`+"\n",
			sx(lo), sy(lo), sx(hi), sy(hi))
	}

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		if !c.Scatter && len(s.X) > 1 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
			}
			dash := ""
			if s.Dashed {
				dash = ` stroke-dasharray="6 4"`
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8"%s points="%s"/>`+"\n",
				color, dash, strings.Join(pts, " "))
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				sx(s.X[i]), sy(s.Y[i]), color)
		}
		// Legend.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-marginR+12, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			width-marginR+27, ly+9, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	if c.YZero && ymin > 0 {
		ymin = 0
	}
	if c.Diagonal {
		lo := math.Min(xmin, ymin)
		hi := math.Max(xmax, ymax)
		xmin, ymin, xmax, ymax = lo, lo, hi, hi
	}
	// Pad the y range slightly.
	if ymax > ymin {
		pad := (ymax - ymin) * 0.05
		ymax += pad
		if !c.YZero || ymin > 0 {
			ymin -= pad
		}
	} else {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax
}

// ticks picks ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if step >= rawStep {
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case a >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortSeries orders the series by name for deterministic output.
func SortSeries(ss []Series) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Name < ss[j].Name })
}
