// Package features extracts a deterministic, fixed-order numeric feature
// vector from a MiniC workload — the program half of the cross-program
// empirical models (ROADMAP item 3, following the static-feature approach
// of the HackMan exemplar and the program-embedding cost models in
// PAPERS.md).
//
// Two ingredient classes feed the vector:
//
//   - static features from the post-optimization IR and the linked binary
//     of one fixed reference compilation (-O3, issue width 4): operation
//     class mix, loop-nest depth histogram, branch/call density, basic
//     block size statistics, code footprint and global-data working set;
//   - cheap dynamic features from one functional-only interpretation of
//     the same binary, bounded by DynamicBudget instructions: dynamic
//     instruction mix, taken-branch rate, load/store balance and the
//     number of distinct data pages touched.
//
// The reference compilation is deliberately independent of the flag
// settings being modeled: features describe the program, the flag and
// microarchitecture blocks describe the configuration, and the cross model
// (exp.BuildCrossDataset) learns over their concatenation.
//
// Extraction is bit-deterministic — compilation and functional
// interpretation are sequential and seed-free — and cached process-wide by
// program fingerprint, so a corpus pass or a serving hot path pays the
// compile+interpret cost once per distinct source.
package features

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// SchemaVersion tags the feature definition. It participates in the
// fingerprint, so changing the vector's layout or any extraction detail
// invalidates cached vectors and every persisted cross-model keyed on them.
const SchemaVersion = 1

// DynamicBudget bounds the functional profiling run. A fixed budget keeps
// extraction cheap for arbitrarily large programs while staying
// deterministic: the profiled prefix of a deterministic execution is itself
// deterministic.
const DynamicBudget = 2_000_000

// Vector is a fixed-order raw feature vector; index i holds the feature
// named Names()[i].
type Vector []float64

// def is one feature: its name and the raw range used for coding onto
// [-1, 1] (the scale every other model input uses, paper Section 2.2).
type def struct {
	name   string
	lo, hi float64
}

// defs fixes the vector layout. Fractions and rates live on [0, 1]; counts
// are log2-transformed first (like the paper's LogInt variables) with
// ranges wide enough for the seed suite and generated corpora.
var defs = []def{
	{"static.log2-machine-instrs", 5, 14},
	{"static.log2-ir-instrs", 5, 14},
	{"static.frac-alu", 0, 1},
	{"static.frac-muldiv", 0, 1},
	{"static.frac-mem", 0, 1},
	{"static.frac-branch", 0, 1},
	{"static.frac-call", 0, 1},
	{"static.mean-bb-instrs", 2, 16},
	{"static.log2-max-bb-instrs", 1, 8},
	{"static.log2-num-loops", 0, 6},
	{"static.max-loop-depth", 0, 4},
	{"static.frac-instrs-depth0", 0, 1},
	{"static.frac-instrs-depth1", 0, 1},
	{"static.frac-instrs-depth2", 0, 1},
	{"static.frac-instrs-depth3p", 0, 1},
	{"static.log2-global-data-words", 0, 16},
	{"dyn.log2-instrs", 8, 21},
	{"dyn.frac-load", 0, 1},
	{"dyn.frac-store", 0, 1},
	{"dyn.frac-branch", 0, 1},
	{"dyn.taken-rate", 0, 1},
	{"dyn.load-frac-of-mem", 0, 1},
	{"dyn.frac-muldiv", 0, 1},
	{"dyn.log2-unique-pages", 0, 10},
}

// NumFeatures is the vector length.
func NumFeatures() int { return len(defs) }

// Names returns the feature names in vector order.
func Names() []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.name
	}
	return out
}

// Code maps the raw vector onto coded [-1, 1] coordinates, clamping values
// outside the nominal range (a program bigger than the range edge carries
// no more signal than the edge).
func (v Vector) Code() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		d := defs[i]
		c := 2*(x-d.lo)/(d.hi-d.lo) - 1
		out[i] = math.Max(-1, math.Min(1, c))
	}
	return out
}

// refOptions is the fixed reference compilation every extraction uses.
func refOptions() compiler.Options { return compiler.O3() }

// Fingerprint identifies a program for feature caching and artifact keying:
// fnv64a over the schema version and the source text.
func Fingerprint(source string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "features-v%d|", SchemaVersion)
	h.Write([]byte(source))
	return fmt.Sprintf("%016x", h.Sum64())
}

// cache memoizes extraction per program fingerprint. Entries are one small
// slice each, so the cache is unbounded by design: it holds one entry per
// distinct source the process has seen (corpus size, not traffic volume).
var (
	cache                  sync.Map // fingerprint -> Vector
	cacheHits, cacheMisses atomic.Int64
)

// CacheStats reports the process-wide feature-cache counters.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ClearCache empties the cache (tests and benchmarks; production code never
// needs it — fingerprints are content-addressed).
func ClearCache() {
	cache.Range(func(k, _ any) bool { cache.Delete(k); return true })
}

// Extract returns the feature vector of w, computing it on first sight of
// the source and serving every later request from the fingerprint cache.
// Callers must not mutate the result.
func Extract(w workloads.Workload) (Vector, error) {
	return ExtractSource(w.Source)
}

// ExtractSource is Extract for raw MiniC text (the serving path, where the
// program arrives in a request body rather than from the registry).
func ExtractSource(source string) (Vector, error) {
	fp := Fingerprint(source)
	if v, ok := cache.Load(fp); ok {
		cacheHits.Add(1)
		return v.(Vector), nil
	}
	v, err := extract(source)
	if err != nil {
		return nil, err
	}
	actual, _ := cache.LoadOrStore(fp, v)
	cacheMisses.Add(1)
	return actual.(Vector), nil
}

// log2p1 is the count transform: log2(1+x) keeps zero meaningful.
func log2p1(x float64) float64 { return math.Log2(1 + x) }

// extract runs the uncached pipeline: reference compile, IR statistics,
// binary statistics, functional profile.
func extract(source string) (Vector, error) {
	ast, err := lang.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}
	if err := lang.Check(ast); err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}

	// Post-optimization IR at the reference settings.
	irProg, err := compiler.Lower(ast)
	if err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}
	compiler.OptimizeIR(irProg, refOptions())
	st := irStats(irProg)

	// Linked binary and dynamic profile at the same settings.
	bin, _, err := compiler.Compile(ast, refOptions())
	if err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}
	prof, err := sim.ProfileProgram(bin, DynamicBudget)
	if err != nil {
		return nil, fmt.Errorf("features: functional run: %w", err)
	}

	dynTotal := float64(prof.Instrs)
	frac := func(n int64) float64 {
		if dynTotal == 0 {
			return 0
		}
		return float64(n) / dynTotal
	}
	mem := prof.Loads + prof.Stores
	loadFrac := 0.0
	if mem > 0 {
		loadFrac = float64(prof.Loads) / float64(mem)
	}
	takenRate := 0.0
	if prof.CondBranches > 0 {
		takenRate = float64(prof.TakenBranches) / float64(prof.CondBranches)
	}

	v := Vector{
		log2p1(float64(len(bin.Instrs))),
		log2p1(st.instrs),
		st.frac(st.alu),
		st.frac(st.muldiv),
		st.frac(st.mem),
		st.frac(st.branch),
		st.frac(st.call),
		st.meanBB,
		log2p1(st.maxBB),
		log2p1(st.loops),
		st.maxDepth,
		st.frac(st.depth[0]),
		st.frac(st.depth[1]),
		st.frac(st.depth[2]),
		st.frac(st.depth[3]),
		log2p1(float64(bin.DataSize / 8)),
		log2p1(dynTotal),
		frac(prof.Loads),
		frac(prof.Stores),
		frac(prof.CondBranches),
		takenRate,
		loadFrac,
		frac(prof.MulDiv),
		log2p1(float64(prof.UniquePages)),
	}
	if len(v) != len(defs) {
		panic("features: vector/schema length mismatch")
	}
	return v, nil
}

// staticStats accumulates IR-level counts across all functions.
type staticStats struct {
	instrs, alu, muldiv, mem, branch, call float64
	blocks                                 float64
	meanBB, maxBB                          float64
	loops, maxDepth                        float64
	depth                                  [4]float64 // instrs at loop depth 0, 1, 2, >=3
}

func (s *staticStats) frac(n float64) float64 {
	if s.instrs == 0 {
		return 0
	}
	return n / s.instrs
}

func irStats(p *ir.Program) staticStats {
	var s staticStats
	for _, f := range p.Funcs {
		f.RemoveUnreachable()
		dom := ir.ComputeDominators(f)
		loops := ir.FindLoops(f, dom)
		depths := ir.BlockLoopDepths(f, loops)
		s.loops += float64(len(loops))
		for _, l := range loops {
			if d := float64(l.Depth); d > s.maxDepth {
				s.maxDepth = d
			}
		}
		for _, b := range f.Blocks {
			n := float64(len(b.Instrs))
			s.blocks++
			s.instrs += n
			if n > s.maxBB {
				s.maxBB = n
			}
			bucket := depths[b]
			if bucket > 3 {
				bucket = 3
			}
			s.depth[bucket] += n
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad, ir.OpStore, ir.OpPrefetch:
					s.mem++
				case ir.OpBr:
					s.branch++
				case ir.OpCall:
					s.call++
				case ir.OpMul, ir.OpDiv, ir.OpRem:
					s.muldiv++
				case ir.OpJmp, ir.OpRet, ir.OpNop:
					// Control glue: counted in the total only.
				default:
					s.alu++
				}
			}
		}
	}
	if s.blocks > 0 {
		s.meanBB = s.instrs / s.blocks
	}
	return s
}
