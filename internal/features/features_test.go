package features

import (
	"strconv"
	"sync"
	"testing"

	"repro/internal/workloads"
)

// golden pins the raw feature vector of every seed workload at the fixed
// -O3 reference compilation. A diff here means a compiler pass, the
// reference options or the extraction pipeline changed semantically — which
// silently shifts features and invalidates every persisted cross-model —
// so the change must be deliberate and SchemaVersion must be bumped
// alongside regenerating these rows.
var golden = map[string]Vector{
	"164.gzip":   {8.430452551665532, 7.562242424221073, 0.6276595744680851, 0.11702127659574468, 0.11702127659574468, 0.05319148936170213, 0, 7.230769230769231, 4.906890595608519, 2.321928094887362, 3, 0.31382978723404253, 0.4148936170212766, 0.10638297872340426, 0.16489361702127658, 14.807455552967623, 20.931569290671515, 0.219816, 0.0462675, 0.0798125, 0.5599060297572436, 0.8261166137697377, 0.081303, 5.754887502163468},
	"175.vpr":    {8.879583249612784, 8.154818109052105, 0.5774647887323944, 0.11971830985915492, 0.11619718309859155, 0.08098591549295775, 0.0035211267605633804, 5.461538461538462, 4.700439718141092, 2.807354922057604, 2, 0.2852112676056338, 0.31338028169014087, 0.4014084507042254, 0, 12.322491537597468, 20.931569290671515, 0.1802095, 0.050305, 0.1365745, 0.507316519555261, 0.7817707779770904, 0.055223, 3.700439718141092},
	"177.mesa":   {9.328674927327947, 8.257387842692651, 0.639344262295082, 0.12786885245901639, 0.08852459016393442, 0.06229508196721312, 0, 6.931818181818182, 6.321928094887363, 2.584962500721156, 3, 0.1901639344262295, 0.6032786885245902, 0.06885245901639345, 0.1377049180327869, 13.0003521774803, 20.360032595582155, 0.1516095642811445, 0.024641867024719145, 0.1461288052673542, 0.35495271026136477, 0.8601891239001851, 0.04331107394194824, 4.247927513443585},
	"179.art":    {8.665335917185176, 7.930737337562887, 0.6625514403292181, 0.1111111111111111, 0.11934156378600823, 0.037037037037037035, 0, 9.346153846153847, 5.321928094887363, 3, 3, 0.29218106995884774, 0.2551440329218107, 0.3662551440329218, 0.08641975308641975, 12.055960234452295, 20.931569290671515, 0.1832935, 0.008067, 0.0435845, 0.008064793676651104, 0.9578439646635538, 0.088943, 3.4594316186372973},
	"181.mcf":    {8.228818690495881, 7.622051819456376, 0.6581632653061225, 0.09693877551020408, 0.15816326530612246, 0.025510204081632654, 0, 11.529411764705882, 5.426264754702098, 2.321928094887362, 2, 0.34183673469387754, 0.37244897959183676, 0.2857142857142857, 0, 16.169964136519173, 20.931569290671515, 0.2145845, 0.083192, 0.033403, 0.08939316827829835, 0.720622681776433, 0.0896375, 7.199672344836364},
	"255.vortex": {8.954196310386875, 7.960001932068081, 0.6290322580645161, 0.10483870967741936, 0.16129032258064516, 0.028225806451612902, 0, 9.538461538461538, 5.247927513443585, 2.321928094887362, 2, 0.5524193548387096, 0.3709677419354839, 0.07661290322580645, 0, 13.700764808097977, 20.460743843427473, 0.3635624068413689, 0.029537739163455416, 0.06524898084197732, 0.11693801042894617, 0.9248595059969962, 0.08423099390687983, 4.857980995127572},
	"256.bzip2":  {8.98299357469431, 8.076815597050832, 0.587360594795539, 0.12267657992565056, 0.12267657992565056, 0.055762081784386616, 0.0, 5.977777777777778, 4.321928094887363, 3.584962500721156, 4, 0.275092936802974, 0.3940520446096654, 0.14869888475836432, 0.1821561338289963, 11.171176797651771, 20.931569290671515, 0.172614, 0.0578815, 0.0755685, 0.283398505991253, 0.7488822992205921, 0.115526, 2.807354922057604},
}

func TestGoldenSeedWorkloadVectors(t *testing.T) {
	for _, name := range workloads.Names() {
		want, ok := golden[name]
		if !ok {
			t.Fatalf("%s: no golden row", name)
		}
		v, err := Extract(workloads.MustGet(name, workloads.Train))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(v) != NumFeatures() {
			t.Fatalf("%s: vector length %d, schema %d", name, len(v), NumFeatures())
		}
		for i := range v {
			if v[i] != want[i] {
				t.Errorf("%s: feature %q = %s, golden %s", name, Names()[i],
					strconv.FormatFloat(v[i], 'g', -1, 64),
					strconv.FormatFloat(want[i], 'g', -1, 64))
			}
		}
	}
}

func TestExtractDeterministicAcrossGoroutines(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	ClearCache()
	ref, err := Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	const parallel = 8
	out := make([]Vector, parallel)
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ClearCache() // force concurrent recomputation, not cache hits
			v, err := Extract(w)
			if err != nil {
				t.Error(err)
				return
			}
			out[g] = v
		}(g)
	}
	wg.Wait()
	for g, v := range out {
		for i := range ref {
			if v[i] != ref[i] {
				t.Fatalf("goroutine %d: feature %d differs", g, i)
			}
		}
	}
}

func TestCacheCountsHitsAndMisses(t *testing.T) {
	ClearCache()
	w := workloads.MustGet("181.mcf", workloads.Train)
	h0, m0 := CacheStats()
	if _, err := Extract(w); err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(w); err != nil {
		t.Fatal(err)
	}
	h1, m1 := CacheStats()
	if m1-m0 < 1 {
		t.Errorf("first extraction must count a miss (misses %d -> %d)", m0, m1)
	}
	if h1-h0 < 1 {
		t.Errorf("second extraction must count a hit (hits %d -> %d)", h0, h1)
	}
}

func TestCodeClampsToUnitRange(t *testing.T) {
	v, err := Extract(workloads.MustGet("164.gzip", workloads.Train))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range v.Code() {
		if c < -1 || c > 1 {
			t.Errorf("coded feature %q = %g out of [-1, 1]", Names()[i], c)
		}
	}
}

func TestExtractSourceRejectsInvalidPrograms(t *testing.T) {
	if _, err := ExtractSource("int main( {"); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := ExtractSource("int main() { return nope; }"); err == nil {
		t.Error("check error must surface")
	}
}
