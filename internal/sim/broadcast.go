package sim

import "sync/atomic"

// TraceChunkSize is the number of committed instructions per broadcast
// chunk. 4096 entries keep channel operations three orders of magnitude
// rarer than instructions while bounding buffering to a few hundred KiB.
const TraceChunkSize = 4096

// traceChunkPool is the size of the chunk pool, which bounds how far the
// functional producer may run ahead of the slowest timing consumer.
const traceChunkPool = 8

// TraceChunk carries one block of the committed-instruction trace from the
// functional producer to the timing consumers. Consumers must not retain a
// chunk past Release.
type TraceChunk struct {
	N    int
	refs atomic.Int32
	Ents [TraceChunkSize]TraceEntry
}

// TraceBroadcaster fans one functional execution of a program out to many
// timing consumers: a producer interprets the program exactly once and
// broadcasts the committed trace in reference-counted chunks, each consumer
// owning its own timing state (caches, branch predictor, issue ring,
// energy). Consumers apply backpressure through the bounded chunk pool, so
// memory stays constant regardless of program length. Because the
// functional stream is independent of any microarchitectural configuration,
// every consumer sees bit-for-bit the same trace a private Executor would
// have produced — the invariant behind both smarts.RunParallel and
// SimulateMany.
type TraceBroadcaster struct {
	free chan *TraceChunk
	outs []chan *TraceChunk
}

// NewTraceBroadcaster prepares a broadcaster for the given number of
// consumers.
func NewTraceBroadcaster(consumers int) *TraceBroadcaster {
	b := &TraceBroadcaster{
		free: make(chan *TraceChunk, traceChunkPool),
		outs: make([]chan *TraceChunk, consumers),
	}
	for i := 0; i < traceChunkPool; i++ {
		b.free <- new(TraceChunk)
	}
	for k := range b.outs {
		b.outs[k] = make(chan *TraceChunk, traceChunkPool)
	}
	return b
}

// Out returns consumer k's chunk channel. It is closed when the producer
// finishes; the consumer must call Release on every chunk received.
func (b *TraceBroadcaster) Out(k int) <-chan *TraceChunk { return b.outs[k] }

// Release returns a chunk to the pool once the last consumer is done with
// it. The pool capacity covers every chunk in flight, so the send never
// blocks.
func (b *TraceBroadcaster) Release(ck *TraceChunk) {
	if ck.refs.Add(-1) == 0 {
		b.free <- ck
	}
}

// Broadcast runs the single functional pass: it interprets exe until halt,
// fault, or the instruction budget, broadcasting full chunks to every
// consumer, then closes the consumer channels. A partial chunk in flight
// when an error occurs is discarded — consumers never see instructions from
// a failed execution prefix beyond the last complete chunk, and the caller
// discards their results anyway. Budget overruns surface as a typed fault
// (IsBudget reports true) exactly as in the fused single-config loop.
func (b *TraceBroadcaster) Broadcast(exe *Executor, maxInstrs int64) error {
	var prodErr error
	for !exe.Halted {
		ck := <-b.free
		ck.N = 0
		for ck.N < TraceChunkSize && !exe.Halted {
			if exe.Count >= maxInstrs {
				prodErr = budgetFault(exe.PC, maxInstrs)
				break
			}
			entry, ok, err := exe.Step()
			if err != nil {
				prodErr = err
				break
			}
			if !ok {
				break
			}
			ck.Ents[ck.N] = entry
			ck.N++
		}
		if ck.N == 0 || prodErr != nil {
			b.free <- ck
			break
		}
		ck.refs.Store(int32(len(b.outs)))
		for k := range b.outs {
			b.outs[k] <- ck
		}
	}
	for k := range b.outs {
		close(b.outs[k])
	}
	return prodErr
}
