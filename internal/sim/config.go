// Package sim implements the cycle-level performance simulator used to
// measure the response variable (execution time in cycles). It pairs a
// functional executor for the synthetic ISA with a trace-fed timing model of
// an out-of-order superscalar core: a register update unit (RUU), a combined
// branch predictor, per-class functional units scaled by issue width, split
// L1 caches, a unified L2 and a flat-latency DRAM — the eleven
// microarchitectural parameters of the paper's Table 2.
package sim

import "fmt"

// Config holds the microarchitectural parameters (paper Table 2).
//
// Cache sizes are nominal: NewCache rounds the set count down to a power of
// two, so a size/associativity combination with a non-power-of-two set
// count models the next smaller power-of-two capacity (see NewCache and
// Cache.SizeKB). Every level in the paper's design space is a power of two,
// where the rounding changes nothing.
type Config struct {
	IssueWidth  int // instructions fetched/issued/committed per cycle (2..4)
	BPredSize   int // entries in each table of the combined predictor (512..8192)
	RUUSize     int // register update unit entries (16..128)
	ICacheKB    int // L1 instruction cache size in KB (8..128)
	DCacheKB    int // L1 data cache size in KB (8..128)
	DCacheAssoc int // L1 data cache associativity (1..2)
	DCacheLat   int // L1 data cache hit latency in cycles (1..3)
	L2KB        int // unified L2 size in KB (256..8192)
	L2Assoc     int // L2 associativity (1..8)
	L2Lat       int // L2 hit latency in cycles (6..16)
	MemLat      int // DRAM access latency in cycles (50..150)
}

// DefaultConfig returns the paper's "typical" configuration (Table 5).
func DefaultConfig() Config {
	return Config{
		IssueWidth:  4,
		BPredSize:   2048,
		RUUSize:     64,
		ICacheKB:    32,
		DCacheKB:    32,
		DCacheAssoc: 1,
		DCacheLat:   2,
		L2KB:        1024,
		L2Assoc:     4,
		L2Lat:       10,
		MemLat:      100,
	}
}

// Constrained returns the paper's "constrained" configuration (Table 5).
func Constrained() Config {
	return Config{
		IssueWidth:  2,
		BPredSize:   512,
		RUUSize:     16,
		ICacheKB:    8,
		DCacheKB:    8,
		DCacheAssoc: 1,
		DCacheLat:   1,
		L2KB:        256,
		L2Assoc:     2,
		L2Lat:       6,
		MemLat:      50,
	}
}

// Aggressive returns the paper's "aggressive" configuration (Table 5).
func Aggressive() Config {
	return Config{
		IssueWidth:  4,
		BPredSize:   8192,
		RUUSize:     128,
		ICacheKB:    128,
		DCacheKB:    128,
		DCacheAssoc: 2,
		DCacheLat:   3,
		L2KB:        8192,
		L2Assoc:     8,
		L2Lat:       16,
		MemLat:      150,
	}
}

// Validate checks that the configuration is self-consistent and within the
// modeled ranges.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth < 1 || c.IssueWidth > 8:
		return fmt.Errorf("sim: issue width %d out of range", c.IssueWidth)
	case c.RUUSize < 2:
		return fmt.Errorf("sim: RUU size %d too small", c.RUUSize)
	case c.BPredSize < 2 || c.BPredSize&(c.BPredSize-1) != 0:
		return fmt.Errorf("sim: predictor size %d must be a power of two ≥ 2", c.BPredSize)
	case c.ICacheKB < 1 || c.DCacheKB < 1 || c.L2KB < 1:
		return fmt.Errorf("sim: cache sizes must be positive")
	case c.DCacheAssoc < 1 || c.L2Assoc < 1:
		return fmt.Errorf("sim: associativity must be ≥ 1")
	case c.DCacheLat < 1 || c.L2Lat < 1 || c.MemLat < 1:
		return fmt.Errorf("sim: latencies must be ≥ 1")
	}
	return nil
}

// Stats accumulates measurements from a simulation run.
type Stats struct {
	Cycles       int64
	Instructions int64

	Branches    int64
	Mispredicts int64

	IL1Accesses int64
	IL1Misses   int64
	DL1Accesses int64
	DL1Misses   int64
	L2Accesses  int64
	L2Misses    int64

	// Energy is the activity-based energy estimate in arbitrary units
	// (see the energy constants in cpu.go).
	Energy float64

	ExitValue int64 // main's return value
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}
