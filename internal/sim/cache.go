package sim

// LineBytes is the cache line size at every level of the hierarchy.
const LineBytes = 64

// Cache is a set-associative cache with true-LRU replacement. It tracks tag
// state only; data is architecturally held by the executor.
type Cache struct {
	sets     int
	assoc    int
	setShift uint // log2(LineBytes)
	setMask  uint64
	tags     []uint64 // sets*assoc entries
	valid    []bool
	lru      []uint8 // age per way; 0 = most recent
	Accesses int64
	Misses   int64
}

// NewCache builds a cache of sizeKB kilobytes with the given associativity.
// The set count is forced to at least 1.
func NewCache(sizeKB, assoc int) *Cache {
	lines := sizeKB * 1024 / LineBytes
	if assoc < 1 {
		assoc = 1
	}
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	c := &Cache{
		sets:     sets,
		assoc:    assoc,
		setShift: 6, // log2(LineBytes)
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*assoc),
		valid:    make([]bool, sets*assoc),
		lru:      make([]uint8, sets*assoc),
	}
	return c
}

// Access looks up the line containing addr, updating LRU state, and
// allocates it on miss. Returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line >> 0 // full line address as tag (set bits redundant but harmless)
	base := set * c.assoc

	hitWay := -1
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		return true
	}
	c.Misses++
	// Choose victim: invalid way first, else oldest.
	victim := 0
	oldest := uint8(0)
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.touch(base, victim)
	return false
}

// Contains reports whether addr's line is present without updating state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

func (c *Cache) touch(base, way int) {
	cur := c.lru[base+way]
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] < cur {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Reset clears all cache contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	c.Accesses, c.Misses = 0, 0
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
