package sim

// LineBytes is the cache line size at every level of the hierarchy.
const LineBytes = 64

// Cache is a set-associative cache with true-LRU replacement. It tracks tag
// state only; data is architecturally held by the executor.
type Cache struct {
	sets     int
	assoc    int
	setShift uint // log2(LineBytes)
	setMask  uint64
	tags     []uint64 // sets*assoc entries
	valid    []bool
	lru      []uint8 // age per way; 0 = most recent
	mru      []uint8 // most recently used way per set (its lru age is 0)
	Accesses int64
	Misses   int64
}

// NewCache builds a cache of sizeKB kilobytes with the given associativity.
// The set count is forced to at least 1 and rounded DOWN to a power of two
// so set selection is a mask, so a (sizeKB × assoc) combination whose set
// count is not a power of two silently models a smaller cache: e.g. 96 KB
// at 4 ways is 1536 lines = 384 sets, rounded to 256 sets = 64 KB. Callers
// sweeping capacity should check SizeKB for the effective value; the
// paper's Table 2 levels are all powers of two, where rounding is a no-op.
func NewCache(sizeKB, assoc int) *Cache {
	lines := sizeKB * 1024 / LineBytes
	if assoc < 1 {
		assoc = 1
	}
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	c := &Cache{
		sets:     sets,
		assoc:    assoc,
		setShift: 6, // log2(LineBytes)
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*assoc),
		valid:    make([]bool, sets*assoc),
		lru:      make([]uint8, sets*assoc),
		mru:      make([]uint8, sets),
	}
	return c
}

// Access looks up the line containing addr, updating LRU state, and
// allocates it on miss. Returns true on hit. The MRU way of the set is
// probed first in an inlinable fast path: temporal locality makes it the
// overwhelmingly common hit, and because its age is already 0 the LRU aging
// loop is skipped entirely.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.setShift // full line address doubles as the tag
	set := int(line & c.setMask)
	base := set * c.assoc
	mruWay := base + int(c.mru[set])
	if c.valid[mruWay] && c.tags[mruWay] == line {
		return true // MRU hit: ages are already correct
	}
	return c.accessSlow(line, set, base)
}

// accessSlow probes the non-MRU ways and handles the miss/replacement path.
func (c *Cache) accessSlow(tag uint64, set, base int) bool {
	hitWay := -1
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(set, base, hitWay)
		return true
	}
	c.Misses++
	// Choose victim: invalid way first, else oldest.
	victim := 0
	oldest := uint8(0)
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.touch(set, base, victim)
	return false
}

// SizeKB returns the effective modeled capacity in kilobytes, after
// NewCache's power-of-two set rounding. It equals the sizeKB passed to
// NewCache whenever that size yields a power-of-two set count.
func (c *Cache) SizeKB() int {
	return c.sets * c.assoc * LineBytes / 1024
}

// Contains reports whether addr's line is present without updating state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

func (c *Cache) touch(set, base, way int) {
	cur := c.lru[base+way]
	for w := 0; w < c.assoc; w++ {
		if c.lru[base+w] < cur {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
	c.mru[set] = uint8(way)
}

// Reset clears all cache contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.Accesses, c.Misses = 0, 0
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
