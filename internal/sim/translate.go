package sim

import (
	"fmt"

	"repro/internal/isa"
)

// Simulation engines. Feed is the original Step+FeedDecoded reference loop,
// Fused the single-pass interpreter+timing loop (the Simulate default), BB
// the basic-block translated engine layered on top of the fused slow path.
const (
	EngineFeed  = "feed"
	EngineFused = "fused"
	EngineBB    = "bb"
)

// Engines lists the selectable simulation engines.
func Engines() []string { return []string{EngineFeed, EngineFused, EngineBB} }

// EngineStats reports translation-tier bookkeeping for one run. It is kept
// out of Stats on purpose: Stats is the architectural result, compared
// bit-for-bit across engines, while EngineStats describes how the run was
// executed.
type EngineStats struct {
	BlocksTranslated int64 // static basic blocks in the program's translation
	TranslatedInstrs int64 // dynamic instructions retired through translated blocks
	SlowPathEntries  int64 // falls back to the fused loop (budget tail, non-leader target)
}

// SimulateEngine is Simulate with an explicit engine selection. All engines
// produce bit-for-bit identical Stats; the golden tests pin them together.
func SimulateEngine(prog *isa.Program, cfg Config, maxInstrs int64, engine string) (Stats, EngineStats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, EngineStats{}, err
	}
	exe := NewExecutor(prog)
	cpu := NewCPU(cfg)
	var es EngineStats
	var err error
	switch engine {
	case EngineFeed:
		err = runFeed(exe, cpu, maxInstrs)
	case EngineFused:
		err = runFused(exe, cpu, maxInstrs)
	case EngineBB:
		err = runTranslated(exe, cpu, maxInstrs, &es)
	default:
		return Stats{}, EngineStats{}, fmt.Errorf("sim: unknown engine %q", engine)
	}
	if err != nil {
		return Stats{}, es, err
	}
	st := cpu.Stats()
	st.ExitValue = exe.Regs[isa.RegRV]
	return st, es, nil
}

// runFeed is the reference two-call path: one Step and one FeedDecoded per
// dynamic instruction.
func runFeed(exe *Executor, cpu *CPU, maxInstrs int64) error {
	dec := exe.Decoded()
	for !exe.Halted {
		if exe.Count >= maxInstrs {
			return budgetFault(exe.PC, maxInstrs)
		}
		entry, ok, err := exe.Step()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		cpu.FeedDecoded(dec, entry)
	}
	return nil
}

// runTranslated executes through the basic-block translation: the per-block
// dispatch amortizes the budget, bounds and halt checks over whole blocks,
// and the interior loop runs re-encoded tuops whose kinds bake in at
// translation time what the fused loop re-derives per instruction (dest
// writes, dataflow sources, FU class, unpipelined occupancy, flag tests,
// and the icache-line crossing pattern — InstrBytes is half a cache line,
// so sequential flow crosses lines exactly at even pcs).
//
// Bit-for-bit contract: every architectural and Stats-visible effect
// happens in the same order with the same values as runFused. The running
// `cycles` max is deferred to the flush (exact: lastCommitCycle is
// non-decreasing and every per-instruction commit equals it), and
// instruction counters are batched per block. The slow-path fallback is
// one-way: on a budget tail (fewer instructions left than the next block)
// or a control transfer into an untranslated pc (a return landing on a
// hand-crafted RegRA), state is flushed and the remainder of the run is
// delegated to runFused. After a non-budget fault the returned error and
// architectural state match runFused; the partial timing state of the
// faulting instruction may differ and is discarded by every caller.
func runTranslated(exe *Executor, cpu *CPU, maxInstrs int64, es *EngineStats) error {
	tr := exe.dec.translation()
	meta := exe.dec.meta
	blocks := tr.blocks
	blockOf := tr.blockOf
	uops := tr.uops
	es.BlocksTranslated = int64(len(blocks))

	r := &exe.Regs
	mem := exe.Mem
	pc := exe.PC
	count := exe.Count
	count0 := count
	halted := exe.Halted

	issueWidth := cpu.cfg.IssueWidth
	dlat := int64(cpu.cfg.DCacheLat)
	l2lat := int64(cpu.cfg.L2Lat)
	memlat := int64(cpu.cfg.MemLat)
	fetchCycle := cpu.fetchCycle
	fetchCount := cpu.fetchCount
	lastLine := cpu.lastLine
	ruuPos := cpu.ruuPos
	busFree := cpu.busFree
	lastCommitCycle := cpu.lastCommitCycle
	commitsThisCyc := cpu.commitsThisCyc
	energy := cpu.stats.Energy
	cycles := cpu.stats.Cycles
	instructions := cpu.stats.Instructions
	branchCount := cpu.stats.Branches
	mispredicts := cpu.stats.Mispredicts
	regReady := &cpu.regReady
	commitRing := cpu.commitRing
	issueRing := &cpu.issueRing
	il1, dl1, l2 := cpu.IL1, cpu.DL1, cpu.L2
	bp := cpu.BP

	var fuState [isa.NumFUClasses][fuMaxUnits]int64
	var fuLen [isa.NumFUClasses]int
	for cl := range cpu.fu {
		n := len(cpu.fu[cl])
		if n > fuMaxUnits {
			n = fuMaxUnits // unreachable: documented for the bounds checker
		}
		fuLen[cl] = n
		copy(fuState[cl][:], cpu.fu[cl])
	}
	fuAlu := fuState[isa.FUIntALU][:fuLen[isa.FUIntALU]]
	fuMem := fuState[isa.FUMem][:fuLen[isa.FUMem]]
	aluLen := len(fuAlu)
	memLen := len(fuMem)

	il1Valid, il1Tags, il1Mask := il1.valid, il1.tags, il1.setMask
	il1Acc := il1.Accesses
	dl1Valid, dl1Tags, dl1Mru := dl1.valid, dl1.tags, dl1.mru
	dl1Mask, dl1Assoc := dl1.setMask, dl1.assoc
	dl1Acc := dl1.Accesses

	var err error
	slow := false

	// Declared ahead of the gotos below (Go forbids jumping a declaration).
	var (
		u                    *tuop
		i, nIn, best         int
		p, tpc               int32
		dispatch, ready, lat int64
		occupy, issue, done  int64
		commit, stall, when  int64
		start, v             int64
		line0, addr, dline   uint64
		dest                 uint8
		storeLike            bool
	)

outer:
	for !halted {
		if count >= maxInstrs {
			err = budgetFault(pc, maxInstrs)
			break
		}
		if uint32(pc) >= uint32(len(blockOf)) { // also catches negative PCs
			err = &ErrFault{PC: pc, Msg: "pc out of range"}
			break
		}
		bi := blockOf[pc]
		if bi < 0 {
			slow = true
			break
		}
		b := &blocks[bi]
		if count+int64(b.n) > maxInstrs {
			slow = true
			break
		}
		es.TranslatedInstrs += int64(b.n)
		nIn = int(b.n)
		if b.hasTerm {
			nIn--
		}
		ops := uops[b.off : b.off+uint32(nIn)]

		// Entry fetch check for the block's first instruction (interior or
		// terminator): the previous instruction was a control transfer, so
		// the line comparison is dynamic.
		p = b.start
		if l := uint64(p)>>1 + 1; l != lastLine {
			lastLine = l
			energy += energyIL1
			il1Acc++
			line0 = uint64(p) >> 1
			set := int(line0 & il1Mask)
			if !(il1Valid[set] && il1Tags[set] == line0) && !il1.accessSlow(line0, set, set) {
				energy += energyL2
				if l2.Access(uint64(p) * isa.InstrBytes) {
					stall = l2lat
				} else {
					energy += energyDRAM
					when = fetchCycle + l2lat
					start = when
					if busFree > start {
						start = busFree
					}
					busFree = start + busOccupancy
					stall = l2lat + memlat + (start - when)
				}
				fetchCycle += stall
				fetchCount = 0
			}
		}

		for i = 0; i < nIn; i++ {
			p = b.start + int32(i)
			// Sequential flow crosses an icache line exactly at even pcs
			// (InstrBytes == 32, lines are 64 bytes); position 0 was handled
			// dynamically above.
			if i != 0 && p&1 == 0 {
				lastLine = uint64(p)>>1 + 1
				energy += energyIL1
				il1Acc++
				line0 = uint64(p) >> 1
				set := int(line0 & il1Mask)
				if !(il1Valid[set] && il1Tags[set] == line0) && !il1.accessSlow(line0, set, set) {
					energy += energyL2
					if l2.Access(uint64(p) * isa.InstrBytes) {
						stall = l2lat
					} else {
						energy += energyDRAM
						when = fetchCycle + l2lat
						start = when
						if busFree > start {
							start = busFree
						}
						busFree = start + busOccupancy
						stall = l2lat + memlat + (start - when)
					}
					fetchCycle += stall
					fetchCount = 0
				}
			}

			// Shared timing front: fetch grouping and dispatch.
			if fetchCount >= issueWidth {
				fetchCycle++
				fetchCount = 0
			}
			dispatch = fetchCycle
			if slotFree := commitRing[ruuPos]; slotFree > dispatch {
				dispatch = slotFree
				fetchCycle = dispatch
				fetchCount = 0
			}
			fetchCount++
			ready = dispatch + 1

			u = &ops[i]
			switch u.tk {
			case tkAdd:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] + r[u.rs2&regIdxMask]
				goto alu2
			case tkSub:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] - r[u.rs2&regIdxMask]
				goto alu2
			case tkAnd:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] & r[u.rs2&regIdxMask]
				goto alu2
			case tkOr:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] | r[u.rs2&regIdxMask]
				goto alu2
			case tkXor:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] ^ r[u.rs2&regIdxMask]
				goto alu2
			case tkShl:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] << (uint64(r[u.rs2&regIdxMask]) & 63)
				goto alu2
			case tkShr:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] >> (uint64(r[u.rs2&regIdxMask]) & 63)
				goto alu2
			case tkSlt:
				r[u.rd&regIdxMask] = b2i(r[u.rs1&regIdxMask] < r[u.rs2&regIdxMask])
				goto alu2
			case tkSle:
				r[u.rd&regIdxMask] = b2i(r[u.rs1&regIdxMask] <= r[u.rs2&regIdxMask])
				goto alu2
			case tkSeq:
				r[u.rd&regIdxMask] = b2i(r[u.rs1&regIdxMask] == r[u.rs2&regIdxMask])
				goto alu2
			case tkSne:
				r[u.rd&regIdxMask] = b2i(r[u.rs1&regIdxMask] != r[u.rs2&regIdxMask])
				goto alu2
			case tkAddi:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] + u.imm
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				goto aluD
			case tkLui:
				r[u.rd&regIdxMask] = u.imm
				goto aluD
			case tkMul:
				r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] * r[u.rs2&regIdxMask]
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				occupy = 1
				goto mulTail
			case tkDiv:
				if r[u.rs2&regIdxMask] == 0 {
					r[u.rd&regIdxMask] = 0
				} else {
					r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] / r[u.rs2&regIdxMask]
				}
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				occupy = u.lat
				goto mulTail
			case tkRem:
				if r[u.rs2&regIdxMask] == 0 {
					r[u.rd&regIdxMask] = 0
				} else {
					r[u.rd&regIdxMask] = r[u.rs1&regIdxMask] % r[u.rs2&regIdxMask]
				}
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				occupy = u.lat
				goto mulTail
			case tkLoad:
				addr = uint64(r[u.rs1&regIdxMask] + u.imm)
				if addr < minValidAddr {
					p = b.start + int32(i)
					err = &ErrFault{PC: p, Msg: fmt.Sprintf("load from %#x", addr)}
					goto fault
				}
				if w := addr >> 3; w>>(pageShift-3) == mem.lastIdx && mem.lastPage != nil {
					r[u.rd&regIdxMask] = mem.lastPage[w&(pageWords-1)]
				} else {
					r[u.rd&regIdxMask] = mem.Load(addr)
				}
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				dest = u.rd
				storeLike = false
				goto memTail
			case tkLoadZ:
				addr = uint64(r[u.rs1&regIdxMask] + u.imm)
				if addr < minValidAddr {
					p = b.start + int32(i)
					err = &ErrFault{PC: p, Msg: fmt.Sprintf("load from %#x", addr)}
					goto fault
				}
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				dest = 0
				storeLike = false
				goto memTail
			case tkStore:
				addr = uint64(r[u.rs1&regIdxMask] + u.imm)
				if addr < minValidAddr {
					p = b.start + int32(i)
					err = &ErrFault{PC: p, Msg: fmt.Sprintf("store to %#x", addr)}
					goto fault
				}
				if w := addr >> 3; w>>(pageShift-3) == mem.lastIdx && mem.lastPage != nil {
					mem.lastPage[w&(pageWords-1)] = r[u.rs2&regIdxMask]
				} else {
					mem.Store(addr, r[u.rs2&regIdxMask])
				}
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				dest = 0
				storeLike = true
				goto memTail
			case tkPrefetch:
				addr = uint64(r[u.rs1&regIdxMask] + u.imm) // non-binding: no fault
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				dest = 0
				storeLike = true
				goto memTail
			case tkMulZ:
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				occupy = 1
				goto mulZTail
			case tkDivZ:
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				occupy = u.lat
				goto mulZTail
			default: // tkAluZ
				if v = regReady[u.rs1&regIdxMask]; v > ready {
					ready = v
				}
				if v = regReady[u.rs2&regIdxMask]; v > ready {
					ready = v
				}
				goto aluZTail
			}

		alu2: // pipelined two-source IntALU op writing u.rd
			if v = regReady[u.rs1&regIdxMask]; v > ready {
				ready = v
			}
			if v = regReady[u.rs2&regIdxMask]; v > ready {
				ready = v
			}

		aluD: // pipelined IntALU op writing u.rd, sources already folded
			best = 0
			switch aluLen {
			case 1:
			case 2:
				if fuAlu[1] < fuAlu[0] {
					best = 1
				}
			case 4:
				a, b := 0, 2
				if fuAlu[1] < fuAlu[0] {
					a = 1
				}
				if fuAlu[3] < fuAlu[2] {
					b = 3
				}
				if fuAlu[b] < fuAlu[a] {
					best = b
				} else {
					best = a
				}
			default:
				for q := 1; q < aluLen; q++ {
					if fuAlu[q] < fuAlu[best] {
						best = q
					}
				}
			}
			if fuAlu[best] > ready {
				ready = fuAlu[best]
			}
			issue = ready
			for {
				slot := issue & (issueRingSize - 1)
				rv := issueRing[slot]
				if rv>>issueCountBits != issue {
					issueRing[slot] = issue<<issueCountBits | 1
					break
				}
				if int(rv&issueCountMask) < issueWidth {
					issueRing[slot] = rv + 1
					break
				}
				issue++
			}
			fuAlu[best] = issue + 1
			done = issue + u.lat
			energy += u.energy
			regReady[u.rd&regIdxMask] = done
			goto commitTail

		aluZTail: // pipelined IntALU op with no architectural write
			best = 0
			switch aluLen {
			case 1:
			case 2:
				if fuAlu[1] < fuAlu[0] {
					best = 1
				}
			case 4:
				a, b := 0, 2
				if fuAlu[1] < fuAlu[0] {
					a = 1
				}
				if fuAlu[3] < fuAlu[2] {
					b = 3
				}
				if fuAlu[b] < fuAlu[a] {
					best = b
				} else {
					best = a
				}
			default:
				for q := 1; q < aluLen; q++ {
					if fuAlu[q] < fuAlu[best] {
						best = q
					}
				}
			}
			if fuAlu[best] > ready {
				ready = fuAlu[best]
			}
			issue = ready
			for {
				slot := issue & (issueRingSize - 1)
				rv := issueRing[slot]
				if rv>>issueCountBits != issue {
					issueRing[slot] = issue<<issueCountBits | 1
					break
				}
				if int(rv&issueCountMask) < issueWidth {
					issueRing[slot] = rv + 1
					break
				}
				issue++
			}
			fuAlu[best] = issue + 1
			done = issue + u.lat
			energy += u.energy
			goto commitTail

		mulTail: // IntMul class (single unit) writing u.rd, occupy preset
			if fuState[isa.FUIntMul][0] > ready {
				ready = fuState[isa.FUIntMul][0]
			}
			issue = ready
			for {
				slot := issue & (issueRingSize - 1)
				rv := issueRing[slot]
				if rv>>issueCountBits != issue {
					issueRing[slot] = issue<<issueCountBits | 1
					break
				}
				if int(rv&issueCountMask) < issueWidth {
					issueRing[slot] = rv + 1
					break
				}
				issue++
			}
			fuState[isa.FUIntMul][0] = issue + occupy
			done = issue + u.lat
			energy += u.energy
			regReady[u.rd&regIdxMask] = done
			goto commitTail

		mulZTail: // IntMul class, no architectural write
			if fuState[isa.FUIntMul][0] > ready {
				ready = fuState[isa.FUIntMul][0]
			}
			issue = ready
			for {
				slot := issue & (issueRingSize - 1)
				rv := issueRing[slot]
				if rv>>issueCountBits != issue {
					issueRing[slot] = issue<<issueCountBits | 1
					break
				}
				if int(rv&issueCountMask) < issueWidth {
					issueRing[slot] = rv + 1
					break
				}
				issue++
			}
			fuState[isa.FUIntMul][0] = issue + occupy
			done = issue + u.lat
			energy += u.energy
			goto commitTail

		memTail: // FUMem class: hierarchy latency, addr/dest/storeLike preset
			best = 0
			switch memLen {
			case 1:
			case 2:
				if fuMem[1] < fuMem[0] {
					best = 1
				}
			case 4:
				a, b := 0, 2
				if fuMem[1] < fuMem[0] {
					a = 1
				}
				if fuMem[3] < fuMem[2] {
					b = 3
				}
				if fuMem[b] < fuMem[a] {
					best = b
				} else {
					best = a
				}
			default:
				for q := 1; q < memLen; q++ {
					if fuMem[q] < fuMem[best] {
						best = q
					}
				}
			}
			if fuMem[best] > ready {
				ready = fuMem[best]
			}
			issue = ready
			for {
				slot := issue & (issueRingSize - 1)
				rv := issueRing[slot]
				if rv>>issueCountBits != issue {
					issueRing[slot] = issue<<issueCountBits | 1
					break
				}
				if int(rv&issueCountMask) < issueWidth {
					issueRing[slot] = rv + 1
					break
				}
				issue++
			}
			fuMem[best] = issue + 1
			energy += energyDL1
			dl1Acc++
			dline = addr >> 6
			{
				dset := int(dline & dl1Mask)
				based := dset * dl1Assoc
				mw := based + int(dl1Mru[dset])
				if (dl1Valid[mw] && dl1Tags[mw] == dline) || dl1.accessSlow(dline, dset, based) {
					lat = dlat
				} else {
					energy += energyL2
					if l2.Access(addr) {
						lat = dlat + l2lat
					} else {
						energy += energyDRAM
						when = issue + dlat + l2lat
						start = when
						if busFree > start {
							start = busFree
						}
						busFree = start + busOccupancy
						lat = dlat + l2lat + memlat + (start - when)
					}
				}
			}
			if storeLike {
				lat = 1
			}
			done = issue + lat
			energy += u.energy
			if dest != isa.RegZero {
				regReady[dest&regIdxMask] = done
			}
			goto commitTail

		commitTail:
			commit = done + 1
			if commit <= lastCommitCycle {
				commit = lastCommitCycle
				commitsThisCyc++
				if commitsThisCyc > issueWidth {
					commit++
					commitsThisCyc = 1
				}
			} else {
				commitsThisCyc = 1
			}
			lastCommitCycle = commit
			commitRing[ruuPos] = commit
			ruuPos++
			if ruuPos == len(commitRing) {
				ruuPos = 0
			}
		}
		count += int64(nIn)
		instructions += int64(nIn)

		if !b.hasTerm {
			pc = b.start + b.n
			continue
		}

		// --- Terminator: control transfer or halt, general path ---
		tpc = b.start + b.n - 1
		{
			m := &meta[tpc]
			nextPC := tpc + 1
			taken := false
			switch m.op {
			case isa.OpBeq:
				taken = r[m.rs1&regIdxMask] == r[m.rs2&regIdxMask]
				if taken {
					nextPC = m.target
				}
			case isa.OpBne:
				taken = r[m.rs1&regIdxMask] != r[m.rs2&regIdxMask]
				if taken {
					nextPC = m.target
				}
			case isa.OpBlt:
				taken = r[m.rs1&regIdxMask] < r[m.rs2&regIdxMask]
				if taken {
					nextPC = m.target
				}
			case isa.OpBge:
				taken = r[m.rs1&regIdxMask] >= r[m.rs2&regIdxMask]
				if taken {
					nextPC = m.target
				}
			case isa.OpJump:
				nextPC = m.target
			case isa.OpCall:
				r[isa.RegRA] = int64(tpc + 1)
				nextPC = m.target
			case isa.OpRet:
				nextPC = int32(r[isa.RegRA])
			case isa.OpHalt:
				halted = true
				exe.Halted = true
				nextPC = tpc
			}
			r[isa.RegZero] = 0 // Call writes RA; r0 stays hardwired

			instructions++
			if nIn > 0 {
				// Sequential into the terminator: static parity rule.
				if tpc&1 == 0 {
					lastLine = uint64(tpc)>>1 + 1
					energy += energyIL1
					il1Acc++
					line0 = uint64(tpc) >> 1
					set := int(line0 & il1Mask)
					if !(il1Valid[set] && il1Tags[set] == line0) && !il1.accessSlow(line0, set, set) {
						energy += energyL2
						if l2.Access(uint64(tpc) * isa.InstrBytes) {
							stall = l2lat
						} else {
							energy += energyDRAM
							when = fetchCycle + l2lat
							start = when
							if busFree > start {
								start = busFree
							}
							busFree = start + busOccupancy
							stall = l2lat + memlat + (start - when)
						}
						fetchCycle += stall
						fetchCount = 0
					}
				}
			}
			if fetchCount >= issueWidth {
				fetchCycle++
				fetchCount = 0
			}
			dispatch = fetchCycle
			if slotFree := commitRing[ruuPos]; slotFree > dispatch {
				dispatch = slotFree
				fetchCycle = dispatch
				fetchCount = 0
			}
			fetchCount++
			ready = dispatch + 1
			if v = regReady[m.src1&regIdxMask]; v > ready {
				ready = v
			}
			if v = regReady[m.src2&regIdxMask]; v > ready {
				ready = v
			}
			units := fuState[m.fu][:fuLen[m.fu]]
			best = 0
			for q := 1; q < len(units); q++ {
				if units[q] < units[best] {
					best = q
				}
			}
			if units[best] > ready {
				ready = units[best]
			}
			issue = ready
			for {
				slot := issue & (issueRingSize - 1)
				rv := issueRing[slot]
				if rv>>issueCountBits != issue {
					issueRing[slot] = issue<<issueCountBits | 1
					break
				}
				if int(rv&issueCountMask) < issueWidth {
					issueRing[slot] = rv + 1
					break
				}
				issue++
			}
			units[best] = issue + 1 // terminators are never unpipelined
			done = issue + m.lat    // and never memory ops
			energy += m.energy
			if m.dest != isa.RegZero {
				regReady[m.dest&regIdxMask] = done
			}
			if m.flags&flagBranch != 0 {
				branchCount++
				correct := bp.Update(tpc, taken)
				if !correct {
					mispredicts++
					energy += energyMispredict
					redirect := done + redirectPenalty
					if redirect > fetchCycle {
						fetchCycle = redirect
					}
					fetchCount = 0
				} else if taken {
					fetchCount = issueWidth
				}
			} else if m.flags&flagControl != 0 {
				fetchCount = issueWidth
			}
			commit = done + 1
			if commit <= lastCommitCycle {
				commit = lastCommitCycle
				commitsThisCyc++
				if commitsThisCyc > issueWidth {
					commit++
					commitsThisCyc = 1
				}
			} else {
				commitsThisCyc = 1
			}
			lastCommitCycle = commit
			commitRing[ruuPos] = commit
			ruuPos++
			if ruuPos == len(commitRing) {
				ruuPos = 0
			}
			count++
			pc = nextPC
		}
		continue

	fault:
		// Mid-block fault: i instructions of this block completed.
		count += int64(i)
		instructions += int64(i)
		es.TranslatedInstrs += int64(i) - int64(b.n)
		break outer
	}

	exe.PC = pc
	exe.Count = count
	cpu.fetchCycle = fetchCycle
	cpu.fetchCount = fetchCount
	cpu.lastLine = lastLine
	cpu.ruuPos = ruuPos
	cpu.busFree = busFree
	cpu.lastCommitCycle = lastCommitCycle
	cpu.commitsThisCyc = commitsThisCyc
	cpu.stats.Energy = energy
	if lastCommitCycle > cycles {
		cycles = lastCommitCycle // deferred running max, exact by monotonicity
	}
	cpu.stats.Cycles = cycles
	cpu.stats.Instructions = instructions
	cpu.stats.Branches = branchCount
	cpu.stats.Mispredicts = mispredicts
	cpu.seq += count - count0 // one retirement per executed instruction
	il1.Accesses = il1Acc
	dl1.Accesses = dl1Acc
	for cl := range cpu.fu {
		copy(cpu.fu[cl], fuState[cl][:fuLen[cl]])
	}
	if slow {
		es.SlowPathEntries++
		return runFused(exe, cpu, maxInstrs)
	}
	return err
}
