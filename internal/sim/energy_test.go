package sim

import "testing"

func TestEnergyAccumulates(t *testing.T) {
	st := mustSim(t, handProgram(10000), DefaultConfig())
	if st.Energy <= 0 {
		t.Fatal("energy should accumulate")
	}
	st2 := mustSim(t, handProgram(20000), DefaultConfig())
	if st2.Energy <= st.Energy {
		t.Fatal("more work should cost more energy")
	}
}

func TestEnergyTracksMemoryTraffic(t *testing.T) {
	// A DRAM-walking program must burn far more energy per instruction
	// than a register-resident loop.
	mem := mustSim(t, memProgram(1<<19, 2, 8), DefaultConfig())
	alu := mustSim(t, ilpProgram(100000), DefaultConfig())
	memEPI := mem.Energy / float64(mem.Instructions)
	aluEPI := alu.Energy / float64(alu.Instructions)
	if memEPI < 2*aluEPI {
		t.Fatalf("memory-bound energy/instr (%.2f) should dwarf ALU-bound (%.2f)", memEPI, aluEPI)
	}
}

func TestBusContentionSlowsBurstMisses(t *testing.T) {
	// A stream of back-to-back DRAM misses queues on the bus: cycles must
	// exceed what pure miss latency without queueing would give. We check
	// the bus effect indirectly: with a large working set and stride-8
	// (one miss per line), IPC should be clearly below a small working
	// set running the same code.
	big := mustSim(t, memProgram(1<<19, 2, 8), DefaultConfig())
	small := mustSim(t, memProgram(1<<8, 2048, 8), DefaultConfig())
	if big.IPC() >= small.IPC() {
		t.Fatalf("DRAM-bound IPC (%.2f) should trail cache-resident IPC (%.2f)",
			big.IPC(), small.IPC())
	}
}

func TestBusResetWithTiming(t *testing.T) {
	cpu := NewCPU(DefaultConfig())
	cpu.busFree = 12345
	cpu.ResetTiming()
	if cpu.busFree != 0 {
		t.Fatal("ResetTiming must clear bus state")
	}
}
