package sim

import "repro/internal/isa"

// Profile summarizes one functional-only interpretation of a program: the
// cheap dynamic statistics the program-feature extractor
// (internal/features) folds into its vector. No timing model runs, so a
// profile costs interpretation only and is bit-deterministic: the executor
// is sequential and the counters depend on nothing but the program.
type Profile struct {
	// Instrs is the number of instructions interpreted (at most the budget
	// passed to ProfileProgram).
	Instrs int64
	// Dynamic operation-class counts.
	ALU    int64 // integer ALU including immediates and compares
	MulDiv int64
	Loads  int64
	Stores int64
	// CondBranches counts executed conditional branches, TakenBranches the
	// taken subset.
	CondBranches  int64
	TakenBranches int64
	// Calls counts executed call instructions.
	Calls int64
	// UniquePages is the number of distinct 4KB data pages touched by
	// loads, stores and prefetches — a working-set estimate.
	UniquePages int
	// Halted reports whether the program ran to completion; false means the
	// instruction budget expired first and the counters describe the
	// executed prefix.
	Halted bool
}

// ProfileProgram interprets prog functionally for at most maxInstrs
// instructions (0 means 1M) and returns the dynamic profile. Running out of
// budget is not an error — the profile of a deterministic prefix is itself
// deterministic, which is what feature extraction needs — so only genuine
// faults (compiler bugs) are reported.
func ProfileProgram(prog *isa.Program, maxInstrs int64) (Profile, error) {
	if maxInstrs <= 0 {
		maxInstrs = 1_000_000
	}
	exe := NewExecutor(prog)
	var p Profile
	pages := make(map[uint64]struct{}, 64)
	for !exe.Halted && p.Instrs < maxInstrs {
		entry, ok, err := exe.Step()
		if err != nil {
			return Profile{}, err
		}
		if !ok {
			break
		}
		p.Instrs++
		switch op := prog.Instrs[entry.PC].Op; op {
		case isa.OpLoad, isa.OpPrefetch:
			if op == isa.OpLoad {
				p.Loads++
			}
			pages[entry.Addr>>12] = struct{}{}
		case isa.OpStore:
			p.Stores++
			pages[entry.Addr>>12] = struct{}{}
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			p.CondBranches++
			if entry.Taken {
				p.TakenBranches++
			}
		case isa.OpCall:
			p.Calls++
		case isa.OpMul, isa.OpDiv, isa.OpRem:
			p.MulDiv++
		case isa.OpJump, isa.OpRet, isa.OpHalt, isa.OpNop:
			// Control glue and nops are counted in Instrs only.
		default:
			p.ALU++
		}
	}
	p.UniquePages = len(pages)
	p.Halted = exe.Halted
	return p, nil
}
