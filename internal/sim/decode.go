package sim

import (
	"sync"

	"repro/internal/isa"
)

// instrMeta is the pre-decoded, cache-friendly form of one static
// instruction: everything the timing model needs per dynamic instance
// (functional-unit class, latency, source/destination registers, control and
// memory flags, icache line) resolved once so the hot loop indexes a flat
// table instead of re-running the isa.Op switches on every committed
// instruction.
type instrMeta struct {
	pcByte uint64  // byte address of the instruction slot
	line   uint64  // icache line id + 1 (0 is reserved for "none")
	energy float64 // per-commit energy cost of the opcode class
	lat    int64   // fixed execute latency (memory ops add hierarchy time)
	imm    int64   // immediate / displacement (copied from the instruction)
	target int32   // control-transfer target (copied from the instruction)
	op     isa.Op  // opcode (copied so the fused loop reads one record)
	rd     uint8   // raw destination field, for the functional switch
	rs1    uint8   // raw first source field
	rs2    uint8   // raw second source field
	src1   uint8   // first dataflow source register (RegZero = unused)
	src2   uint8   // second dataflow source register (RegZero = unused)
	dest   uint8   // destination register (RegZero = no register write)
	fu     uint8   // isa.FUClass with FUNone folded into FUIntALU
	flags  uint8
	_      [11]uint8 // pad to 64 bytes: one record per cache line
}

const (
	flagLoad        uint8 = 1 << iota // load: execute latency is the hierarchy's
	flagStoreLike                     // store/prefetch: fills hierarchy, latency hidden
	flagBranch                        // conditional branch (predicted)
	flagControl                       // any PC redirect, ends the fetch group
	flagUnpipelined                   // occupies its functional unit for the full latency
)

// decodeInstr computes the metadata for the instruction at pc. It must agree
// exactly with the isa.Op predicate methods; the golden determinism test
// holds the two in lockstep. Register fields are validated against
// isa.NumRegs here so the fused loop's masked indexing (regIdxMask) is
// provably a no-op.
func decodeInstr(in *isa.Instr, pc int32) instrMeta {
	if in.Rd >= isa.NumRegs || in.Rs1 >= isa.NumRegs || in.Rs2 >= isa.NumRegs {
		panic(&ErrFault{PC: pc, Msg: "register field out of range"})
	}
	m := instrMeta{
		pcByte: isa.PCByte(pc),
		energy: instrEnergy(in.Op),
		lat:    int64(in.Op.Latency()),
		imm:    in.Imm,
		target: in.Target,
		op:     in.Op,
		rd:     in.Rd,
		rs1:    in.Rs1,
		rs2:    in.Rs2,
	}
	m.line = m.pcByte>>6 + 1
	fu := in.Op.Class()
	if fu == isa.FUNone {
		fu = isa.FUIntALU
	}
	m.fu = uint8(fu)
	m.src1, m.src2 = instrSources(in)
	if in.Op.WritesReg() {
		rd := in.Rd
		if in.Op == isa.OpCall {
			rd = isa.RegRA
		}
		m.dest = rd
	}
	switch in.Op {
	case isa.OpLoad:
		m.flags |= flagLoad
	case isa.OpStore, isa.OpPrefetch:
		m.flags |= flagStoreLike
	case isa.OpDiv, isa.OpRem:
		m.flags |= flagUnpipelined
	}
	if in.Op.IsBranch() {
		m.flags |= flagBranch
	}
	if in.Op.IsControl() {
		m.flags |= flagControl
	}
	return m
}

// DecodedProgram pairs a program with its flat per-instruction metadata
// table, built once per program (NewExecutor does it implicitly) and shared
// read-only by any number of CPUs — the SMARTS parallel replay workers all
// index the same table.
type DecodedProgram struct {
	Prog *isa.Program
	meta []instrMeta

	trOnce sync.Once
	tr     *translation
}

// translation returns the program's basic-block translation, built lazily on
// the first translated run and shared read-only afterwards.
func (d *DecodedProgram) translation() *translation {
	d.trOnce.Do(func() { d.tr = buildTranslation(d) })
	return d.tr
}

// Decode builds the metadata table for p.
func Decode(p *isa.Program) *DecodedProgram {
	d := &DecodedProgram{Prog: p, meta: make([]instrMeta, len(p.Instrs))}
	for i := range p.Instrs {
		d.meta[i] = decodeInstr(&p.Instrs[i], int32(i))
	}
	return d
}
