package sim

import (
	"fmt"

	"repro/internal/isa"
)

// fuMaxUnits bounds the per-class functional-unit count; Config.Validate
// caps IssueWidth at 8 and NewCPU never allocates more units than that.
const fuMaxUnits = 8

// regIdxMask masks register indices read back out of instrMeta. Decode
// verifies every register field is < isa.NumRegs, so the mask is a no-op
// that exists purely to let the compiler elide bounds checks in the hot
// loop (isa.NumRegs is a power of two).
const regIdxMask = isa.NumRegs - 1

// runFused is the fused interpreter + timing loop behind Simulate: one pass
// that executes each instruction functionally and immediately retires it
// through the timing model, with every hot scalar (fetch/commit cursors, bus
// state, energy, the running cycle count, functional-unit next-free times)
// held in locals so the compiler can keep them in registers or on the stack
// across the whole run. It is semantically identical to Step + feed per
// instruction — the golden determinism test and TestFusedMatchesFeed hold
// the two paths bit-for-bit equal — but avoids two function calls, a
// TraceEntry copy, and a few dozen memory round-trips per dynamic
// instruction.
//
// The fused loop does not emit TraceEvents; Simulate only uses it when no
// tracer is attached (its private CPU never has one).
func runFused(exe *Executor, cpu *CPU, maxInstrs int64) error {
	meta := exe.dec.meta
	r := &exe.Regs
	mem := exe.Mem
	pc := exe.PC
	count := exe.Count
	count0 := count
	halted := exe.Halted

	// Timing-model hot scalars, flushed back on every exit path.
	issueWidth := cpu.cfg.IssueWidth
	dlat := int64(cpu.cfg.DCacheLat)
	l2lat := int64(cpu.cfg.L2Lat)
	memlat := int64(cpu.cfg.MemLat)
	fetchCycle := cpu.fetchCycle
	fetchCount := cpu.fetchCount
	lastLine := cpu.lastLine
	ruuPos := cpu.ruuPos
	busFree := cpu.busFree
	lastCommitCycle := cpu.lastCommitCycle
	commitsThisCyc := cpu.commitsThisCyc
	energy := cpu.stats.Energy
	cycles := cpu.stats.Cycles
	instructions := cpu.stats.Instructions
	branchCount := cpu.stats.Branches
	mispredicts := cpu.stats.Mispredicts
	regReady := &cpu.regReady
	commitRing := cpu.commitRing
	issueRing := &cpu.issueRing
	il1, dl1, l2 := cpu.IL1, cpu.DL1, cpu.L2
	bp := cpu.BP

	// Functional-unit next-free times, copied to the stack: the per-class
	// slices in CPU cost a header load plus a pointer chase per instruction.
	var fuState [isa.NumFUClasses][fuMaxUnits]int64
	var fuLen [isa.NumFUClasses]int
	for cl := range cpu.fu {
		n := len(cpu.fu[cl])
		if n > fuMaxUnits {
			n = fuMaxUnits // unreachable: documented for the bounds checker
		}
		fuLen[cl] = n
		copy(fuState[cl][:], cpu.fu[cl])
	}

	// L1 probe state hoisted out of the Cache structs. The IL1 is
	// direct-mapped by construction (NewCPU), so its probe needs no MRU
	// indirection at all.
	il1Valid, il1Tags, il1Mask := il1.valid, il1.tags, il1.setMask
	il1Acc := il1.Accesses
	dl1Valid, dl1Tags, dl1Mru := dl1.valid, dl1.tags, dl1.mru
	dl1Mask, dl1Assoc := dl1.setMask, dl1.assoc
	dl1Acc := dl1.Accesses

	var err error

loop:
	for !halted {
		if count >= maxInstrs {
			err = budgetFault(pc, maxInstrs)
			break
		}
		if uint32(pc) >= uint32(len(meta)) { // also catches negative PCs
			err = &ErrFault{PC: pc, Msg: "pc out of range"}
			break
		}
		m := &meta[pc]
		nextPC := pc + 1
		var addr uint64
		taken := false

		// --- Functional execute (mirrors Executor.Step exactly) ---
		switch m.op {
		case isa.OpNop:
		case isa.OpAdd:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] + r[m.rs2&regIdxMask]
		case isa.OpSub:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] - r[m.rs2&regIdxMask]
		case isa.OpAnd:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] & r[m.rs2&regIdxMask]
		case isa.OpOr:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] | r[m.rs2&regIdxMask]
		case isa.OpXor:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] ^ r[m.rs2&regIdxMask]
		case isa.OpShl:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] << (uint64(r[m.rs2&regIdxMask]) & 63)
		case isa.OpShr:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] >> (uint64(r[m.rs2&regIdxMask]) & 63)
		case isa.OpSlt:
			r[m.rd&regIdxMask] = b2i(r[m.rs1&regIdxMask] < r[m.rs2&regIdxMask])
		case isa.OpSle:
			r[m.rd&regIdxMask] = b2i(r[m.rs1&regIdxMask] <= r[m.rs2&regIdxMask])
		case isa.OpSeq:
			r[m.rd&regIdxMask] = b2i(r[m.rs1&regIdxMask] == r[m.rs2&regIdxMask])
		case isa.OpSne:
			r[m.rd&regIdxMask] = b2i(r[m.rs1&regIdxMask] != r[m.rs2&regIdxMask])
		case isa.OpAddi:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] + m.imm
		case isa.OpLui:
			r[m.rd&regIdxMask] = m.imm
		case isa.OpMul:
			r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] * r[m.rs2&regIdxMask]
		case isa.OpDiv:
			if r[m.rs2&regIdxMask] == 0 {
				r[m.rd&regIdxMask] = 0
			} else {
				r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] / r[m.rs2&regIdxMask]
			}
		case isa.OpRem:
			if r[m.rs2&regIdxMask] == 0 {
				r[m.rd&regIdxMask] = 0
			} else {
				r[m.rd&regIdxMask] = r[m.rs1&regIdxMask] % r[m.rs2&regIdxMask]
			}
		case isa.OpLoad:
			addr = uint64(r[m.rs1&regIdxMask] + m.imm)
			if addr < minValidAddr {
				err = &ErrFault{PC: pc, Msg: fmt.Sprintf("load from %#x", addr)}
				break loop
			}
			w := addr >> 3
			pi := w >> (pageShift - 3)
			if pi == mem.lastIdx && mem.lastPage != nil {
				r[m.rd&regIdxMask] = mem.lastPage[w&(pageWords-1)]
			} else {
				r[m.rd&regIdxMask] = mem.Load(addr)
			}
		case isa.OpStore:
			addr = uint64(r[m.rs1&regIdxMask] + m.imm)
			if addr < minValidAddr {
				err = &ErrFault{PC: pc, Msg: fmt.Sprintf("store to %#x", addr)}
				break loop
			}
			w := addr >> 3
			pi := w >> (pageShift - 3)
			if pi == mem.lastIdx && mem.lastPage != nil {
				mem.lastPage[w&(pageWords-1)] = r[m.rs2&regIdxMask]
			} else {
				mem.Store(addr, r[m.rs2&regIdxMask])
			}
		case isa.OpPrefetch:
			addr = uint64(r[m.rs1&regIdxMask] + m.imm) // non-binding: no fault
		case isa.OpBeq:
			taken = r[m.rs1&regIdxMask] == r[m.rs2&regIdxMask]
			if taken {
				nextPC = m.target
			}
		case isa.OpBne:
			taken = r[m.rs1&regIdxMask] != r[m.rs2&regIdxMask]
			if taken {
				nextPC = m.target
			}
		case isa.OpBlt:
			taken = r[m.rs1&regIdxMask] < r[m.rs2&regIdxMask]
			if taken {
				nextPC = m.target
			}
		case isa.OpBge:
			taken = r[m.rs1&regIdxMask] >= r[m.rs2&regIdxMask]
			if taken {
				nextPC = m.target
			}
		case isa.OpJump:
			nextPC = m.target
		case isa.OpCall:
			r[isa.RegRA] = int64(pc + 1)
			nextPC = m.target
		case isa.OpRet:
			nextPC = int32(r[isa.RegRA])
		case isa.OpHalt:
			halted = true
			exe.Halted = true
			nextPC = pc
		default:
			err = &ErrFault{PC: pc, Msg: fmt.Sprintf("unknown opcode %d", m.op)}
			break loop
		}
		r[isa.RegZero] = 0 // r0 stays hardwired even if targeted

		// --- Timing model (mirrors CPU.feed exactly) ---
		instructions++

		// Fetch. The IL1 is direct-mapped: way 0 is the only (and thus MRU)
		// way, so the probe is two loads.
		if m.line != lastLine {
			lastLine = m.line
			energy += energyIL1
			il1Acc++
			line := m.pcByte >> 6
			set := int(line & il1Mask)
			if !(il1Valid[set] && il1Tags[set] == line) && !il1.accessSlow(line, set, set) {
				var stall int64
				energy += energyL2
				if l2.Access(m.pcByte) {
					stall = l2lat
				} else {
					energy += energyDRAM
					when := fetchCycle + l2lat
					start := when
					if busFree > start {
						start = busFree
					}
					busFree = start + busOccupancy
					stall = l2lat + memlat + (start - when)
				}
				fetchCycle += stall
				fetchCount = 0
			}
		}
		if fetchCount >= issueWidth {
			fetchCycle++
			fetchCount = 0
		}

		// Dispatch: need a free RUU slot.
		dispatch := fetchCycle
		if slotFree := commitRing[ruuPos]; slotFree > dispatch {
			dispatch = slotFree
			fetchCycle = dispatch
			fetchCount = 0
		}
		fetchCount++

		// Issue: operands, functional unit, issue bandwidth. regReady[RegZero]
		// is invariantly 0 (never written), so unused source slots read it
		// harmlessly and the RegZero guards disappear.
		ready := dispatch + 1
		if v := regReady[m.src1&regIdxMask]; v > ready {
			ready = v
		}
		if v := regReady[m.src2&regIdxMask]; v > ready {
			ready = v
		}
		units := fuState[m.fu][:fuLen[m.fu]]
		best := 0
		switch len(units) {
		case 1:
		case 2:
			if units[1] < units[0] {
				best = 1
			}
		case 4:
			// Tournament argmin, ties to the lower index — same pick as the
			// linear scan with a shorter dependency chain.
			a, b := 0, 2
			if units[1] < units[0] {
				a = 1
			}
			if units[3] < units[2] {
				b = 3
			}
			if units[b] < units[a] {
				best = b
			} else {
				best = a
			}
		default:
			for u := 1; u < len(units); u++ {
				if units[u] < units[best] {
					best = u
				}
			}
		}
		if units[best] > ready {
			ready = units[best]
		}
		issue := ready
		for {
			slot := issue & (issueRingSize - 1)
			v := issueRing[slot]
			if v>>issueCountBits != issue {
				issueRing[slot] = issue<<issueCountBits | 1
				break
			}
			if int(v&issueCountMask) < issueWidth {
				issueRing[slot] = v + 1
				break
			}
			issue++
		}
		occupy := int64(1)
		if m.flags&flagUnpipelined != 0 {
			occupy = m.lat
		}
		units[best] = issue + occupy

		// Execute latency.
		var lat int64
		if m.flags&(flagLoad|flagStoreLike) != 0 {
			energy += energyDL1
			dl1Acc++
			line := addr >> 6
			set := int(line & dl1Mask)
			based := set * dl1Assoc
			mw := based + int(dl1Mru[set])
			if (dl1Valid[mw] && dl1Tags[mw] == line) || dl1.accessSlow(line, set, based) {
				lat = dlat
			} else {
				energy += energyL2
				if l2.Access(addr) {
					lat = dlat + l2lat
				} else {
					energy += energyDRAM
					when := issue + dlat + l2lat
					start := when
					if busFree > start {
						start = busFree
					}
					busFree = start + busOccupancy
					lat = dlat + l2lat + memlat + (start - when)
				}
			}
			if m.flags&flagStoreLike != 0 {
				lat = 1 // fills the hierarchy; store buffer hides latency
			}
		} else {
			lat = m.lat
		}
		done := issue + lat
		energy += m.energy

		if m.dest != isa.RegZero {
			regReady[m.dest&regIdxMask] = done
		}

		// Control flow.
		if m.flags&flagBranch != 0 {
			branchCount++
			correct := bp.Update(pc, taken)
			if !correct {
				mispredicts++
				energy += energyMispredict
				redirect := done + redirectPenalty
				if redirect > fetchCycle {
					fetchCycle = redirect
				}
				fetchCount = 0
			} else if taken {
				// Correctly predicted taken: the fetch group still ends.
				fetchCount = issueWidth
			}
		} else if m.flags&flagControl != 0 {
			// Unconditional transfers: perfect target prediction, but the
			// fetch group ends.
			fetchCount = issueWidth
		}

		// Commit: in order, width per cycle. (done+1 <= lastCommitCycle is
		// exactly the case where the clamped commit cycle equals the last
		// one, so the two comparisons of the feed path fold into one.)
		commit := done + 1
		if commit <= lastCommitCycle {
			commit = lastCommitCycle
			commitsThisCyc++
			if commitsThisCyc > issueWidth {
				commit++
				commitsThisCyc = 1
			}
		} else {
			commitsThisCyc = 1
		}
		lastCommitCycle = commit
		commitRing[ruuPos] = commit
		ruuPos++
		if ruuPos == len(commitRing) {
			ruuPos = 0
		}

		if commit > cycles {
			cycles = commit
		}

		pc = nextPC
		count++
	}

	exe.PC = pc
	exe.Count = count
	cpu.fetchCycle = fetchCycle
	cpu.fetchCount = fetchCount
	cpu.lastLine = lastLine
	cpu.ruuPos = ruuPos
	cpu.busFree = busFree
	cpu.lastCommitCycle = lastCommitCycle
	cpu.commitsThisCyc = commitsThisCyc
	cpu.stats.Energy = energy
	cpu.stats.Cycles = cycles
	cpu.stats.Instructions = instructions
	cpu.stats.Branches = branchCount
	cpu.stats.Mispredicts = mispredicts
	cpu.seq += count - count0 // one feed per executed instruction
	il1.Accesses = il1Acc
	dl1.Accesses = dl1Acc
	for cl := range cpu.fu {
		copy(cpu.fu[cl], fuState[cl][:fuLen[cl]])
	}
	return err
}
