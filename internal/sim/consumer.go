package sim

import "repro/internal/isa"

// feedChunkFused drives the timing model over one chunk of committed trace
// entries. It is the timing half of runFused, verbatim, with the functional
// execute replaced by the entry's recorded (PC, Addr, Taken): every hot
// scalar is loaded into locals at chunk entry and flushed back at chunk
// exit, so the per-instruction cost matches the fused loop and the
// load/flush overhead amortizes over TraceChunkSize instructions. A CPU fed
// the same committed stream through this path produces bit-for-bit the same
// statistics as runFused — TestSimulateManyMatchesSimulate holds the two in
// lockstep. Like runFused, it bypasses the Trace hook; SimulateMany's
// private CPUs never have one.
func (c *CPU) feedChunkFused(dec *DecodedProgram, ents []TraceEntry) {
	meta := dec.meta

	issueWidth := c.cfg.IssueWidth
	dlat := int64(c.cfg.DCacheLat)
	l2lat := int64(c.cfg.L2Lat)
	memlat := int64(c.cfg.MemLat)
	fetchCycle := c.fetchCycle
	fetchCount := c.fetchCount
	lastLine := c.lastLine
	ruuPos := c.ruuPos
	busFree := c.busFree
	lastCommitCycle := c.lastCommitCycle
	commitsThisCyc := c.commitsThisCyc
	energy := c.stats.Energy
	cycles := c.stats.Cycles
	instructions := c.stats.Instructions
	branchCount := c.stats.Branches
	mispredicts := c.stats.Mispredicts
	regReady := &c.regReady
	commitRing := c.commitRing
	issueRing := &c.issueRing
	il1, dl1, l2 := c.IL1, c.DL1, c.L2
	bp := c.BP

	var fuState [isa.NumFUClasses][fuMaxUnits]int64
	var fuLen [isa.NumFUClasses]int
	for cl := range c.fu {
		n := len(c.fu[cl])
		if n > fuMaxUnits {
			n = fuMaxUnits // unreachable: documented for the bounds checker
		}
		fuLen[cl] = n
		copy(fuState[cl][:], c.fu[cl])
	}

	il1Valid, il1Tags, il1Mask := il1.valid, il1.tags, il1.setMask
	il1Acc := il1.Accesses
	dl1Valid, dl1Tags, dl1Mru := dl1.valid, dl1.tags, dl1.mru
	dl1Mask, dl1Assoc := dl1.setMask, dl1.assoc
	dl1Acc := dl1.Accesses

	for i := range ents {
		e := &ents[i]
		pc := e.PC
		addr := e.Addr
		taken := e.Taken
		m := &meta[pc]

		instructions++

		// Fetch. The IL1 is direct-mapped: way 0 is the only (and thus MRU)
		// way, so the probe is two loads.
		if m.line != lastLine {
			lastLine = m.line
			energy += energyIL1
			il1Acc++
			line := m.pcByte >> 6
			set := int(line & il1Mask)
			if !(il1Valid[set] && il1Tags[set] == line) && !il1.accessSlow(line, set, set) {
				var stall int64
				energy += energyL2
				if l2.Access(m.pcByte) {
					stall = l2lat
				} else {
					energy += energyDRAM
					when := fetchCycle + l2lat
					start := when
					if busFree > start {
						start = busFree
					}
					busFree = start + busOccupancy
					stall = l2lat + memlat + (start - when)
				}
				fetchCycle += stall
				fetchCount = 0
			}
		}
		if fetchCount >= issueWidth {
			fetchCycle++
			fetchCount = 0
		}

		// Dispatch: need a free RUU slot.
		dispatch := fetchCycle
		if slotFree := commitRing[ruuPos]; slotFree > dispatch {
			dispatch = slotFree
			fetchCycle = dispatch
			fetchCount = 0
		}
		fetchCount++

		// Issue: operands, functional unit, issue bandwidth. regReady[RegZero]
		// is invariantly 0 (never written), so unused source slots read it
		// harmlessly and the RegZero guards disappear.
		ready := dispatch + 1
		if v := regReady[m.src1&regIdxMask]; v > ready {
			ready = v
		}
		if v := regReady[m.src2&regIdxMask]; v > ready {
			ready = v
		}
		units := fuState[m.fu][:fuLen[m.fu]]
		best := 0
		switch len(units) {
		case 1:
		case 2:
			if units[1] < units[0] {
				best = 1
			}
		case 4:
			// Tournament argmin, ties to the lower index — same pick as the
			// linear scan with a shorter dependency chain.
			a, b := 0, 2
			if units[1] < units[0] {
				a = 1
			}
			if units[3] < units[2] {
				b = 3
			}
			if units[b] < units[a] {
				best = b
			} else {
				best = a
			}
		default:
			for u := 1; u < len(units); u++ {
				if units[u] < units[best] {
					best = u
				}
			}
		}
		if units[best] > ready {
			ready = units[best]
		}
		issue := ready
		for {
			slot := issue & (issueRingSize - 1)
			v := issueRing[slot]
			if v>>issueCountBits != issue {
				issueRing[slot] = issue<<issueCountBits | 1
				break
			}
			if int(v&issueCountMask) < issueWidth {
				issueRing[slot] = v + 1
				break
			}
			issue++
		}
		occupy := int64(1)
		if m.flags&flagUnpipelined != 0 {
			occupy = m.lat
		}
		units[best] = issue + occupy

		// Execute latency.
		var lat int64
		if m.flags&(flagLoad|flagStoreLike) != 0 {
			energy += energyDL1
			dl1Acc++
			line := addr >> 6
			set := int(line & dl1Mask)
			based := set * dl1Assoc
			mw := based + int(dl1Mru[set])
			if (dl1Valid[mw] && dl1Tags[mw] == line) || dl1.accessSlow(line, set, based) {
				lat = dlat
			} else {
				energy += energyL2
				if l2.Access(addr) {
					lat = dlat + l2lat
				} else {
					energy += energyDRAM
					when := issue + dlat + l2lat
					start := when
					if busFree > start {
						start = busFree
					}
					busFree = start + busOccupancy
					lat = dlat + l2lat + memlat + (start - when)
				}
			}
			if m.flags&flagStoreLike != 0 {
				lat = 1 // fills the hierarchy; store buffer hides latency
			}
		} else {
			lat = m.lat
		}
		done := issue + lat
		energy += m.energy

		if m.dest != isa.RegZero {
			regReady[m.dest&regIdxMask] = done
		}

		// Control flow.
		if m.flags&flagBranch != 0 {
			branchCount++
			correct := bp.Update(pc, taken)
			if !correct {
				mispredicts++
				energy += energyMispredict
				redirect := done + redirectPenalty
				if redirect > fetchCycle {
					fetchCycle = redirect
				}
				fetchCount = 0
			} else if taken {
				// Correctly predicted taken: the fetch group still ends.
				fetchCount = issueWidth
			}
		} else if m.flags&flagControl != 0 {
			// Unconditional transfers: perfect target prediction, but the
			// fetch group ends.
			fetchCount = issueWidth
		}

		// Commit: in order, width per cycle. (done+1 <= lastCommitCycle is
		// exactly the case where the clamped commit cycle equals the last
		// one, so the two comparisons of the feed path fold into one.)
		commit := done + 1
		if commit <= lastCommitCycle {
			commit = lastCommitCycle
			commitsThisCyc++
			if commitsThisCyc > issueWidth {
				commit++
				commitsThisCyc = 1
			}
		} else {
			commitsThisCyc = 1
		}
		lastCommitCycle = commit
		commitRing[ruuPos] = commit
		ruuPos++
		if ruuPos == len(commitRing) {
			ruuPos = 0
		}

		if commit > cycles {
			cycles = commit
		}
	}

	c.fetchCycle = fetchCycle
	c.fetchCount = fetchCount
	c.lastLine = lastLine
	c.ruuPos = ruuPos
	c.busFree = busFree
	c.lastCommitCycle = lastCommitCycle
	c.commitsThisCyc = commitsThisCyc
	c.stats.Energy = energy
	c.stats.Cycles = cycles
	c.stats.Instructions = instructions
	c.stats.Branches = branchCount
	c.stats.Mispredicts = mispredicts
	c.seq += int64(len(ents)) // one feed per trace entry
	il1.Accesses = il1Acc
	dl1.Accesses = dl1Acc
	for cl := range c.fu {
		copy(c.fu[cl], fuState[cl][:fuLen[cl]])
	}
}
