package sim_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func BenchmarkFunctionalOnly(b *testing.B) {
	w := workloads.MustGet("179.art", workloads.Train)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exe := sim.NewExecutor(prog)
		if _, _, err := exe.Run(500_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
