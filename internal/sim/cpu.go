package sim

import (
	"repro/internal/isa"
)

// CPU is the trace-fed timing model of an out-of-order superscalar core.
// Instructions are fed in committed program order; the model tracks true
// dataflow through architectural registers (the RUU provides full renaming,
// so WAR/WAW hazards never stall), functional-unit and issue bandwidth,
// RUU occupancy, fetch bandwidth with instruction-cache and branch-redirect
// stalls, and in-order commit bandwidth — the mechanisms SimpleScalar's
// sim-outorder models with the same parameters.
type CPU struct {
	// Hot per-instruction scalars live together at the top of the struct,
	// ahead of the large ring arrays, so the common path touches as few
	// cache lines as possible.

	cfg Config

	IL1, DL1, L2 *Cache
	BP           *BPred

	// Fetch state.
	fetchCycle int64
	fetchCount int
	lastLine   uint64 // last icache line fetched (+1 so 0 means "none")

	// RUU occupancy: commit cycle of the seq-RUUSize-older instruction.
	// ruuPos is seq modulo the ring size, maintained incrementally so the
	// hot loop never divides.
	commitRing []int64
	ruuPos     int
	seq        int64

	// Memory bus: cycle at which the next DRAM transfer may start.
	busFree int64

	// Commit bandwidth.
	lastCommitCycle int64
	commitsThisCyc  int

	stats Stats

	regReady [isa.NumRegs]int64

	// Functional units: next-free cycle per unit instance.
	fu [isa.NumFUClasses][]int64

	// Trace, when non-nil, receives one event per committed instruction
	// with its pipeline timing — the sim-outorder "-ptrace" analogue.
	Trace func(TraceEvent)

	// Issue bandwidth ring: per-cycle issue bookkeeping, packed as
	// cycle<<issueCountBits | count so each slot is one cache-line touch.
	// Config.Validate caps IssueWidth at 8, so 4 count bits never carry
	// into the cycle field.
	issueRing [issueRingSize]int64
}

const (
	issueRingSize   = 4096
	issueCountBits  = 4
	issueCountMask  = 1<<issueCountBits - 1
	redirectPenalty = 3
)

// NewCPU builds a timing model for the given configuration.
func NewCPU(cfg Config) *CPU {
	c := &CPU{
		cfg: cfg,
		IL1: NewCache(cfg.ICacheKB, 1),
		DL1: NewCache(cfg.DCacheKB, cfg.DCacheAssoc),
		L2:  NewCache(cfg.L2KB, cfg.L2Assoc),
		BP:  NewBPred(cfg.BPredSize),
	}
	w := cfg.IssueWidth
	c.fu[isa.FUIntALU] = make([]int64, w)
	c.fu[isa.FUIntMul] = make([]int64, 1)
	mem := w / 2
	if mem < 1 {
		mem = 1
	}
	c.fu[isa.FUMem] = make([]int64, mem)
	c.fu[isa.FUBranch] = make([]int64, 1)
	c.commitRing = make([]int64, cfg.RUUSize)
	return c
}

// busOccupancy is the number of cycles the memory bus is busy per DRAM line
// transfer; back-to-back misses (and aggressive prefetching) queue behind
// each other — the bus-contention effect the paper calls out as a secondary
// cost of -fprefetch-loop-arrays.
const busOccupancy = 4

// busDelay accounts one DRAM transfer starting no earlier than `when`,
// returning the queueing delay in front of it.
func (c *CPU) busDelay(when int64) int64 {
	start := when
	if c.busFree > start {
		start = c.busFree
	}
	c.busFree = start + busOccupancy
	return start - when
}

// dAccess runs a data-side access through DL1 and L2 at time `when` and
// returns its latency including any memory-bus queueing.
func (c *CPU) dAccess(addr uint64, when int64) int64 {
	c.stats.Energy += energyDL1
	if c.DL1.Access(addr) {
		return int64(c.cfg.DCacheLat)
	}
	c.stats.Energy += energyL2
	if c.L2.Access(addr) {
		return int64(c.cfg.DCacheLat + c.cfg.L2Lat)
	}
	c.stats.Energy += energyDRAM
	queue := c.busDelay(when + int64(c.cfg.DCacheLat+c.cfg.L2Lat))
	return int64(c.cfg.DCacheLat+c.cfg.L2Lat+c.cfg.MemLat) + queue
}

// iAccess runs an instruction-fetch access through IL1 and L2 at time `when`
// and returns the added stall (0 on an L1 hit).
func (c *CPU) iAccess(addr uint64, when int64) int64 {
	c.stats.Energy += energyIL1
	if c.IL1.Access(addr) {
		return 0
	}
	c.stats.Energy += energyL2
	if c.L2.Access(addr) {
		return int64(c.cfg.L2Lat)
	}
	c.stats.Energy += energyDRAM
	queue := c.busDelay(when + int64(c.cfg.L2Lat))
	return int64(c.cfg.L2Lat+c.cfg.MemLat) + queue
}

// issueAt finds the first cycle >= want with spare issue bandwidth and
// records the issue.
func (c *CPU) issueAt(want int64) int64 {
	for {
		slot := want & (issueRingSize - 1)
		v := c.issueRing[slot]
		if v>>issueCountBits != want {
			c.issueRing[slot] = want<<issueCountBits | 1
			return want
		}
		if int(v&issueCountMask) < c.cfg.IssueWidth {
			c.issueRing[slot] = v + 1
			return want
		}
		want++
	}
}

// Feed advances the model by one committed instruction. in must be the
// instruction at entry.PC. It decodes on the fly; hot loops should decode
// the program once and use FeedDecoded instead.
func (c *CPU) Feed(in *isa.Instr, entry TraceEntry) {
	m := decodeInstr(in, entry.PC)
	c.feed(in, &m, entry)
}

// FeedDecoded is Feed against a pre-decoded program: one flat-table index
// replaces the per-instruction opcode switches.
func (c *CPU) FeedDecoded(d *DecodedProgram, entry TraceEntry) {
	c.feed(&d.Prog.Instrs[entry.PC], &d.meta[entry.PC], entry)
}

func (c *CPU) feed(in *isa.Instr, m *instrMeta, entry TraceEntry) {
	c.stats.Instructions++

	// --- Fetch ---
	if m.line != c.lastLine {
		c.lastLine = m.line
		if stall := c.iAccess(m.pcByte, c.fetchCycle); stall > 0 {
			c.fetchCycle += stall
			c.fetchCount = 0
		}
	}
	if c.fetchCount >= c.cfg.IssueWidth {
		c.fetchCycle++
		c.fetchCount = 0
	}

	// --- Dispatch: need a free RUU slot ---
	dispatch := c.fetchCycle
	if slotFree := c.commitRing[c.ruuPos]; slotFree > dispatch {
		dispatch = slotFree
		// The front end backs up behind the full window.
		c.fetchCycle = dispatch
		c.fetchCount = 0
	}
	c.fetchCount++

	// --- Issue: operands, functional unit, issue bandwidth ---
	ready := dispatch + 1
	if m.src1 != isa.RegZero && c.regReady[m.src1] > ready {
		ready = c.regReady[m.src1]
	}
	if m.src2 != isa.RegZero && c.regReady[m.src2] > ready {
		ready = c.regReady[m.src2]
	}
	units := c.fu[m.fu]
	best := 0
	for u := 1; u < len(units); u++ {
		if units[u] < units[best] {
			best = u
		}
	}
	if units[best] > ready {
		ready = units[best]
	}
	issue := c.issueAt(ready)
	// Fully pipelined units except divide.
	occupy := int64(1)
	if m.flags&flagUnpipelined != 0 {
		occupy = m.lat
	}
	units[best] = issue + occupy

	// --- Execute latency ---
	var lat int64
	switch {
	case m.flags&flagLoad != 0:
		lat = c.dAccess(entry.Addr, issue)
	case m.flags&flagStoreLike != 0:
		c.dAccess(entry.Addr, issue) // fills the hierarchy; store buffer hides latency
		lat = 1
	default:
		lat = m.lat
	}
	done := issue + lat
	c.stats.Energy += m.energy

	if m.dest != isa.RegZero {
		c.regReady[m.dest] = done
	}

	// --- Control flow ---
	if m.flags&flagBranch != 0 {
		c.stats.Branches++
		correct := c.BP.Update(entry.PC, entry.Taken)
		if !correct {
			c.stats.Mispredicts++
			c.stats.Energy += energyMispredict
			redirect := done + redirectPenalty
			if redirect > c.fetchCycle {
				c.fetchCycle = redirect
			}
			c.fetchCount = 0
		} else if entry.Taken {
			// Correctly predicted taken: the fetch group still ends.
			c.fetchCount = c.cfg.IssueWidth
		}
	} else if m.flags&flagControl != 0 {
		// Unconditional transfers (jump/call/ret): perfect target
		// prediction, but the fetch group ends.
		c.fetchCount = c.cfg.IssueWidth
	}

	// --- Commit: in order, width per cycle ---
	commit := done + 1
	if commit < c.lastCommitCycle {
		commit = c.lastCommitCycle
	}
	if commit == c.lastCommitCycle {
		c.commitsThisCyc++
		if c.commitsThisCyc > c.cfg.IssueWidth {
			commit++
			c.commitsThisCyc = 1
		}
	} else {
		c.commitsThisCyc = 1
	}
	c.lastCommitCycle = commit
	c.commitRing[c.ruuPos] = commit
	c.ruuPos++
	if c.ruuPos == len(c.commitRing) {
		c.ruuPos = 0
	}
	c.seq++

	if commit > c.stats.Cycles {
		c.stats.Cycles = commit
	}

	if c.Trace != nil {
		c.Trace(TraceEvent{
			Seq:      c.seq - 1,
			PC:       entry.PC,
			Instr:    *in,
			Dispatch: dispatch,
			Issue:    issue,
			Done:     done,
			Commit:   commit,
		})
	}
}

// TraceEvent reports one committed instruction's trip through the pipeline.
type TraceEvent struct {
	Seq      int64
	PC       int32
	Instr    isa.Instr
	Dispatch int64
	Issue    int64
	Done     int64
	Commit   int64
}

// ResetTiming clears the pipeline state (register readiness, functional
// units, window occupancy, fetch/issue/commit bookkeeping and timing
// statistics) while preserving cache and branch-predictor contents. SMARTS
// uses it to start a fresh detailed window over functionally warmed state.
func (c *CPU) ResetTiming() {
	c.regReady = [isa.NumRegs]int64{}
	for class := range c.fu {
		for u := range c.fu[class] {
			c.fu[class][u] = 0
		}
	}
	for i := range c.commitRing {
		c.commitRing[i] = 0
	}
	c.ruuPos = 0
	c.seq = 0
	c.fetchCycle = 0
	c.fetchCount = 0
	c.lastLine = 0
	c.issueRing = [issueRingSize]int64{}
	c.busFree = 0
	c.lastCommitCycle = 0
	c.commitsThisCyc = 0
	c.stats = Stats{}
}

// WarmFeed updates caches and branch predictor state without advancing the
// timing model — SMARTS functional warming between detailed windows.
func (c *CPU) WarmFeed(in *isa.Instr, entry TraceEntry) {
	m := decodeInstr(in, entry.PC)
	c.warmFeed(&m, entry)
}

// WarmFeedDecoded is WarmFeed against a pre-decoded program.
func (c *CPU) WarmFeedDecoded(d *DecodedProgram, entry TraceEntry) {
	c.warmFeed(&d.meta[entry.PC], entry)
}

func (c *CPU) warmFeed(m *instrMeta, entry TraceEntry) {
	if m.line != c.lastLine {
		c.lastLine = m.line
		c.iAccess(m.pcByte, 0)
	}
	if m.flags&(flagLoad|flagStoreLike) != 0 {
		c.dAccess(entry.Addr, 0)
	}
	if m.flags&flagBranch != 0 {
		c.BP.Update(entry.PC, entry.Taken)
	}
}

// Stats returns a snapshot of the accumulated statistics, including cache
// and predictor counters.
func (c *CPU) Stats() Stats {
	s := c.stats
	s.IL1Accesses, s.IL1Misses = c.IL1.Accesses, c.IL1.Misses
	s.DL1Accesses, s.DL1Misses = c.DL1.Accesses, c.DL1.Misses
	s.L2Accesses, s.L2Misses = c.L2.Accesses, c.L2.Misses
	return s
}

// instrSources returns up to two source registers of an instruction
// (RegZero for unused slots).
func instrSources(in *isa.Instr) (uint8, uint8) {
	switch in.Op {
	case isa.OpLui, isa.OpNop, isa.OpHalt, isa.OpJump, isa.OpCall:
		return isa.RegZero, isa.RegZero
	case isa.OpAddi, isa.OpLoad, isa.OpPrefetch:
		return in.Rs1, isa.RegZero
	case isa.OpRet:
		return isa.RegRA, isa.RegZero
	default:
		return in.Rs1, in.Rs2
	}
}

// Simulate runs prog to completion (bounded by maxInstrs) under the given
// configuration and returns the statistics. The run goes through the fused
// interpreter+timing loop: the executor's decoded metadata table is shared
// with the timing model and no dynamic instruction is ever re-decoded.
func Simulate(prog *isa.Program, cfg Config, maxInstrs int64) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	exe := NewExecutor(prog)
	cpu := NewCPU(cfg)
	if err := runFused(exe, cpu, maxInstrs); err != nil {
		return Stats{}, err
	}
	st := cpu.Stats()
	st.ExitValue = exe.Regs[isa.RegRV]
	return st, nil
}

// Energy accounting (arbitrary units, roughly proportional to nanojoules on
// a mid-2000s process). The model is activity-based: every committed
// instruction pays a per-class cost, every cache/DRAM touch pays an access
// cost, and mispredictions pay a flush cost. The paper notes the same
// methodology applies to responses "such as power consumption"; this
// implements that extension.
const (
	energyIL1        = 0.4
	energyDL1        = 0.6
	energyL2         = 3.0
	energyDRAM       = 25.0
	energyMispredict = 4.0
)

func instrEnergy(op isa.Op) float64 {
	switch op.Class() {
	case isa.FUIntMul:
		if op == isa.OpDiv || op == isa.OpRem {
			return 3.0
		}
		return 1.5
	case isa.FUMem:
		return 0.8
	case isa.FUBranch:
		return 0.6
	default:
		return 0.5
	}
}
