package sim

// BPred is a combined branch predictor in the style of the paper's setup: a
// bimodal predictor and a gshare-style 2-level predictor of equal size, with
// a meta chooser of the same size (the "branch predictor size" parameter
// sets the number of entries in each table).
type BPred struct {
	mask     uint32
	bimodal  []uint8 // 2-bit counters
	gshare   []uint8 // 2-bit counters indexed by pc ^ history
	chooser  []uint8 // 2-bit: >=2 prefers gshare
	history  uint32
	histMask uint32

	Lookups     int64
	Mispredicts int64
}

// NewBPred builds a combined predictor with size entries per table; size
// must be a power of two.
func NewBPred(size int) *BPred {
	p := &BPred{
		mask:    uint32(size - 1),
		bimodal: make([]uint8, size),
		gshare:  make([]uint8, size),
		chooser: make([]uint8, size),
	}
	// History length: log2(size) bits, matching table reach.
	bits := 0
	for s := size; s > 1; s >>= 1 {
		bits++
	}
	p.histMask = uint32(1)<<uint(bits) - 1
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
		p.gshare[i] = 1
		p.chooser[i] = 1 // weakly prefer bimodal
	}
	return p
}

// Predict returns the predicted direction for the branch at pc.
func (p *BPred) Predict(pc int32) bool {
	i := uint32(pc) & p.mask
	g := (uint32(pc) ^ (p.history & p.histMask)) & p.mask
	if p.chooser[i] >= 2 {
		return p.gshare[g] >= 2
	}
	return p.bimodal[i] >= 2
}

// Update trains the predictor with the actual outcome and returns whether
// the earlier prediction was correct. Call once per conditional branch.
func (p *BPred) Update(pc int32, taken bool) bool {
	p.Lookups++
	i := uint32(pc) & p.mask
	g := (uint32(pc) ^ (p.history & p.histMask)) & p.mask

	biPred := p.bimodal[i] >= 2
	gsPred := p.gshare[g] >= 2
	var pred bool
	if p.chooser[i] >= 2 {
		pred = gsPred
	} else {
		pred = biPred
	}
	correct := pred == taken
	if !correct {
		p.Mispredicts++
	}

	// Chooser trains toward whichever component was right (when they
	// disagree).
	if biPred != gsPred {
		if gsPred == taken {
			p.chooser[i] = sat(p.chooser[i], true)
		} else {
			p.chooser[i] = sat(p.chooser[i], false)
		}
	}
	p.bimodal[i] = sat(p.bimodal[i], taken)
	p.gshare[g] = sat(p.gshare[g], taken)
	p.history = p.history<<1 | b2u(taken)
	return correct
}

func sat(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// MispredictRate returns mispredicts/lookups.
func (p *BPred) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}
