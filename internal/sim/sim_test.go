package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Store(0x10000, 42)
	m.Store(0x10008, -7)
	if m.Load(0x10000) != 42 || m.Load(0x10008) != -7 {
		t.Fatal("load after store")
	}
	if m.Load(0x99999000) != 0 {
		t.Fatal("uninitialized memory should read 0")
	}
}

func TestPropertyMemory(t *testing.T) {
	f := func(addrs []uint32, vals []int64) bool {
		m := NewMemory()
		ref := map[uint64]int64{}
		for i, a := range addrs {
			if i >= len(vals) {
				break
			}
			addr := uint64(a) &^ 7
			m.Store(addr, vals[i])
			ref[addr] = vals[i]
		}
		for a, v := range ref {
			if m.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// handProgram builds a tiny program: sum = 0; for i in 0..n-1: sum += i;
// then halt with sum in RV.
func handProgram(n int64) *isa.Program {
	// r11 = i, r12 = sum, r13 = n
	return &isa.Program{
		Entry: 0,
		Instrs: []isa.Instr{
			{Op: isa.OpCall, Target: 2},
			{Op: isa.OpHalt},
			// main:
			{Op: isa.OpLui, Rd: 11, Imm: 0},
			{Op: isa.OpLui, Rd: 12, Imm: 0},
			{Op: isa.OpLui, Rd: 13, Imm: n},
			// loop: if i >= n goto done
			{Op: isa.OpBge, Rs1: 11, Rs2: 13, Target: 9},
			{Op: isa.OpAdd, Rd: 12, Rs1: 12, Rs2: 11},
			{Op: isa.OpAddi, Rd: 11, Rs1: 11, Imm: 1},
			{Op: isa.OpJump, Target: 5},
			// done:
			{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: 12, Rs2: isa.RegZero},
			{Op: isa.OpRet},
		},
		Symbols: map[string]int32{"main": 2},
	}
}

func TestExecutorHandProgram(t *testing.T) {
	exe := NewExecutor(handProgram(10))
	n, rv, err := exe.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if rv != 45 {
		t.Fatalf("result = %d, want 45", rv)
	}
	if n == 0 || !exe.Halted {
		t.Fatal("executor state wrong")
	}
}

func TestExecutorFaults(t *testing.T) {
	bad := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpLui, Rd: 11, Imm: 8},
		{Op: isa.OpLoad, Rd: 12, Rs1: 11}, // load from address 8: fault
	}}
	exe := NewExecutor(bad)
	if _, _, err := exe.Run(10); err == nil {
		t.Fatal("expected fault on low-address load")
	}
	// Instruction budget.
	loop := &isa.Program{Instrs: []isa.Instr{{Op: isa.OpJump, Target: 0}}}
	if _, _, err := NewExecutor(loop).Run(100); err == nil {
		t.Fatal("expected budget fault")
	}
}

func TestExecutorZeroRegisterHardwired(t *testing.T) {
	p := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpLui, Rd: isa.RegZero, Imm: 99},
		{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: isa.RegZero, Rs2: isa.RegZero},
		{Op: isa.OpHalt},
	}}
	exe := NewExecutor(p)
	if _, rv, err := exe.Run(10); err != nil || rv != 0 {
		t.Fatalf("r0 should stay 0, got %d (err %v)", rv, err)
	}
}

func TestExecutorInitData(t *testing.T) {
	p := &isa.Program{
		Instrs: []isa.Instr{
			{Op: isa.OpLui, Rd: 11, Imm: isa.GlobalBase},
			{Op: isa.OpLoad, Rd: isa.RegRV, Rs1: 11},
			{Op: isa.OpHalt},
		},
		Init: []isa.DataInit{{Addr: isa.GlobalBase, Val: 1234}},
	}
	exe := NewExecutor(p)
	if _, rv, err := exe.Run(10); err != nil || rv != 1234 {
		t.Fatalf("init data: got %d, err %v", rv, err)
	}
}

func TestCacheDirectMappedConflicts(t *testing.T) {
	c := NewCache(1, 1) // 1KB direct-mapped: 16 lines
	if c.Access(0) {
		t.Fatal("cold miss expected")
	}
	if !c.Access(0) || !c.Access(32) {
		t.Fatal("same line should hit")
	}
	// 0 and 1024 conflict in a 1KB direct-mapped cache.
	c.Access(1024)
	if c.Access(0) {
		t.Fatal("conflict should have evicted line 0")
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(1, 2) // 8 sets x 2 ways
	setStride := uint64(8 * 64)
	c.Access(0 * setStride)
	c.Access(1 * setStride) // same set, second way
	c.Access(0 * setStride) // touch 0: 1 becomes LRU
	c.Access(2 * setStride) // evicts 1
	if !c.Access(0 * setStride) {
		t.Fatal("0 should still be cached")
	}
	if c.Access(1 * setStride) {
		t.Fatal("1 should have been evicted (LRU)")
	}
}

func TestCacheMissRateAndReset(t *testing.T) {
	c := NewCache(4, 1)
	for i := 0; i < 10; i++ {
		c.Access(uint64(i) * 64 * 64) // all conflicting
	}
	if c.MissRate() != 1 {
		t.Fatalf("miss rate = %v, want 1", c.MissRate())
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 || c.Contains(0) {
		t.Fatal("reset incomplete")
	}
}

func TestCacheSizeKBRounding(t *testing.T) {
	cases := []struct {
		sizeKB, assoc int
		wantKB        int
	}{
		{32, 1, 32}, // power-of-two sets: exact
		{32, 4, 32}, // still power-of-two sets
		{96, 4, 64}, // 384 sets rounds down to 256: effective 64 KB
		{48, 1, 32}, // 768 sets -> 512
		{1024, 8, 1024},
		{0, 1, 0}, // degenerate: clamped to 1 set of 1 way = 64 B
	}
	for _, tc := range cases {
		c := NewCache(tc.sizeKB, tc.assoc)
		if got := c.SizeKB(); got != tc.wantKB {
			t.Errorf("NewCache(%d KB, %d-way).SizeKB() = %d, want %d",
				tc.sizeKB, tc.assoc, got, tc.wantKB)
		}
	}
}

func TestBPredLearnsLoop(t *testing.T) {
	p := NewBPred(512)
	// Strongly biased branch: taken 63 of 64 times, repeated.
	for rounds := 0; rounds < 50; rounds++ {
		for i := 0; i < 63; i++ {
			p.Update(100, true)
		}
		p.Update(100, false)
	}
	if r := p.MispredictRate(); r > 0.1 {
		t.Fatalf("biased branch mispredict rate %v too high", r)
	}
}

func TestBPredAlternatingPatternGshare(t *testing.T) {
	p := NewBPred(1024)
	// Strict alternation is hard for bimodal, easy for history-based.
	taken := false
	for i := 0; i < 4000; i++ {
		p.Update(64, taken)
		taken = !taken
	}
	// Only consider steady state: re-measure over the last 1000.
	p.Lookups, p.Mispredicts = 0, 0
	for i := 0; i < 1000; i++ {
		p.Update(64, taken)
		taken = !taken
	}
	if r := p.MispredictRate(); r > 0.05 {
		t.Fatalf("alternating pattern mispredict rate %v; gshare should capture it", r)
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{DefaultConfig(), Constrained(), Aggressive()}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v should validate: %v", c, err)
		}
	}
	bad := DefaultConfig()
	bad.BPredSize = 1000 // not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two predictor should fail")
	}
	bad2 := DefaultConfig()
	bad2.IssueWidth = 0
	if bad2.Validate() == nil {
		t.Error("zero issue width should fail")
	}
}

func TestSimulateBasics(t *testing.T) {
	st, err := Simulate(handProgram(1000), DefaultConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitValue != 499500 {
		t.Fatalf("exit = %d", st.ExitValue)
	}
	if st.Cycles <= 0 || st.Instructions <= 0 {
		t.Fatal("no cycles/instructions recorded")
	}
	if st.IPC() <= 0 || st.IPC() > float64(DefaultConfig().IssueWidth) {
		t.Fatalf("IPC %v out of range", st.IPC())
	}
	if st.Branches == 0 {
		t.Fatal("loop branches not counted")
	}
}

// memProgram walks an array of `words` words `iters` times with the given
// stride, to exercise the data hierarchy.
func memProgram(words, iters, stride int64) *isa.Program {
	// r11=i, r12=addr, r13=end, r14=sum, r15=base, r16=iter
	base := int64(isa.GlobalBase)
	return &isa.Program{
		Entry: 0,
		Instrs: []isa.Instr{
			{Op: isa.OpCall, Target: 2},
			{Op: isa.OpHalt},
			{Op: isa.OpLui, Rd: 15, Imm: base},
			{Op: isa.OpLui, Rd: 13, Imm: base + words*8},
			{Op: isa.OpLui, Rd: 14, Imm: 0},
			{Op: isa.OpLui, Rd: 16, Imm: iters},
			// outer: if iter == 0 done
			{Op: isa.OpBeq, Rs1: 16, Rs2: isa.RegZero, Target: 15},
			{Op: isa.OpAdd, Rd: 12, Rs1: 15, Rs2: isa.RegZero},
			// inner: if addr >= end, next outer
			{Op: isa.OpBge, Rs1: 12, Rs2: 13, Target: 13},
			{Op: isa.OpLoad, Rd: 11, Rs1: 12},
			{Op: isa.OpAdd, Rd: 14, Rs1: 14, Rs2: 11},
			{Op: isa.OpAddi, Rd: 12, Rs1: 12, Imm: stride * 8},
			{Op: isa.OpJump, Target: 8},
			{Op: isa.OpAddi, Rd: 16, Rs1: 16, Imm: -1},
			{Op: isa.OpJump, Target: 6},
			{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: 14, Rs2: isa.RegZero},
			{Op: isa.OpRet},
		},
		Symbols:  map[string]int32{"main": 2},
		DataSize: words * 8,
	}
}

func mustSim(t *testing.T, p *isa.Program, cfg Config) Stats {
	t.Helper()
	st, err := Simulate(p, cfg, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTimingCacheSizeMatters(t *testing.T) {
	// 64KB working set: fits in 128KB L1, thrashes an 8KB L1.
	prog := memProgram(8192, 20, 1)
	small := DefaultConfig()
	small.DCacheKB = 8
	big := DefaultConfig()
	big.DCacheKB = 128
	cs := mustSim(t, prog, small)
	cb := mustSim(t, prog, big)
	if cb.Cycles >= cs.Cycles {
		t.Fatalf("bigger dcache should be faster: 8KB=%d 128KB=%d", cs.Cycles, cb.Cycles)
	}
	if cb.DL1Misses >= cs.DL1Misses {
		t.Fatalf("bigger dcache should miss less: %d vs %d", cb.DL1Misses, cs.DL1Misses)
	}
}

func TestTimingMemoryLatencyMatters(t *testing.T) {
	// Working set way beyond L2: every line comes from DRAM.
	prog := memProgram(1<<20, 1, 8) // 8MB, stride 64B
	slow := DefaultConfig()
	slow.MemLat = 150
	fast := DefaultConfig()
	fast.MemLat = 50
	ss := mustSim(t, prog, slow)
	sf := mustSim(t, prog, fast)
	if sf.Cycles >= ss.Cycles {
		t.Fatalf("lower memory latency should be faster: %d vs %d", sf.Cycles, ss.Cycles)
	}
}

// ilpProgram is a loop with six independent ALU ops per branch, so issue
// width is the bottleneck rather than the branch unit.
func ilpProgram(iters int64) *isa.Program {
	return &isa.Program{
		Entry: 0,
		Instrs: []isa.Instr{
			{Op: isa.OpCall, Target: 2},
			{Op: isa.OpHalt},
			// main: r16 = iters; r11..r15 accumulators
			{Op: isa.OpLui, Rd: 16, Imm: iters},
			{Op: isa.OpLui, Rd: 11, Imm: 1},
			{Op: isa.OpLui, Rd: 12, Imm: 2},
			{Op: isa.OpLui, Rd: 13, Imm: 3},
			{Op: isa.OpLui, Rd: 14, Imm: 4},
			{Op: isa.OpLui, Rd: 15, Imm: 5},
			// loop:
			{Op: isa.OpBeq, Rs1: 16, Rs2: isa.RegZero, Target: 16},
			{Op: isa.OpAdd, Rd: 11, Rs1: 11, Rs2: 12},
			{Op: isa.OpAdd, Rd: 12, Rs1: 12, Rs2: 13},
			{Op: isa.OpAdd, Rd: 13, Rs1: 13, Rs2: 14},
			{Op: isa.OpAdd, Rd: 14, Rs1: 14, Rs2: 15},
			{Op: isa.OpXor, Rd: 15, Rs1: 15, Rs2: 11},
			{Op: isa.OpAddi, Rd: 16, Rs1: 16, Imm: -1},
			{Op: isa.OpJump, Target: 8},
			// done:
			{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: 11, Rs2: isa.RegZero},
			{Op: isa.OpRet},
		},
		Symbols: map[string]int32{"main": 2},
	}
}

func TestTimingIssueWidthMatters(t *testing.T) {
	prog := ilpProgram(100000)
	narrow := DefaultConfig()
	narrow.IssueWidth = 2
	wide := DefaultConfig()
	wide.IssueWidth = 4
	cn := mustSim(t, prog, narrow)
	cw := mustSim(t, prog, wide)
	if cw.Cycles >= cn.Cycles {
		t.Fatalf("wider issue should be faster: w2=%d w4=%d", cn.Cycles, cw.Cycles)
	}
}

func TestTimingRUUMatters(t *testing.T) {
	// Independent long-latency loads: a big window overlaps them.
	prog := memProgram(1<<18, 4, 8)
	small := DefaultConfig()
	small.RUUSize = 16
	big := DefaultConfig()
	big.RUUSize = 128
	cs := mustSim(t, prog, small)
	cb := mustSim(t, prog, big)
	if cb.Cycles >= cs.Cycles {
		t.Fatalf("bigger RUU should be faster on MLP workload: 16=%d 128=%d", cs.Cycles, cb.Cycles)
	}
}

func TestWarmFeedTouchesCachesNotTiming(t *testing.T) {
	cpu := NewCPU(DefaultConfig())
	in := isa.Instr{Op: isa.OpLoad, Rd: 11, Rs1: 12}
	cpu.WarmFeed(&in, TraceEntry{PC: 0, Addr: isa.GlobalBase})
	st := cpu.Stats()
	if st.DL1Accesses != 1 {
		t.Fatal("warm feed should access dcache")
	}
	if st.Cycles != 0 || st.Instructions != 0 {
		t.Fatal("warm feed must not advance timing")
	}
}
