package sim

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Memory is a sparse word-addressed memory backed by fixed-size pages. Two
// layers keep the hot path off the page map: a one-entry page cache exploits
// the spatial locality of consecutive accesses, and behind it a two-level
// radix table covers the executor's entire architected address space
// (globals low, stack below 1 GiB) with two pointer hops. The map survives
// only as a spill area for pathological addresses beyond the radix reach.
type Memory struct {
	lastIdx  uint64
	lastPage *[pageWords]int64
	regions  []*[regionPages]*[pageWords]int64
	spill    map[uint64]*[pageWords]int64
}

const (
	pageShift = 12 // 4 KiB pages
	pageWords = 1 << (pageShift - 3)

	regionShift = 10 // pages per radix leaf
	regionPages = 1 << regionShift
	numRegions  = 1024 // leaves in the top level: covers 4 GiB of address space
)

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{regions: make([]*[regionPages]*[pageWords]int64, numRegions)}
}

// page returns the page holding word index w, or nil if it has never been
// written.
func (m *Memory) page(pi uint64) *[pageWords]int64 {
	if ri := pi >> regionShift; ri < numRegions {
		leaf := m.regions[ri]
		if leaf == nil {
			return nil
		}
		return leaf[pi&(regionPages-1)]
	}
	return m.spill[pi]
}

// Load reads the word at byte address addr (which must be 8-byte aligned in
// well-formed programs; unaligned addresses are truncated to words).
func (m *Memory) Load(addr uint64) int64 {
	w := addr >> 3
	pi := w >> (pageShift - 3)
	if pi == m.lastIdx && m.lastPage != nil {
		return m.lastPage[w&(pageWords-1)]
	}
	page := m.page(pi)
	if page == nil {
		return 0
	}
	m.lastIdx, m.lastPage = pi, page
	return page[w&(pageWords-1)]
}

// Store writes the word at byte address addr.
func (m *Memory) Store(addr uint64, val int64) {
	w := addr >> 3
	pi := w >> (pageShift - 3)
	if pi == m.lastIdx && m.lastPage != nil {
		m.lastPage[w&(pageWords-1)] = val
		return
	}
	page := m.page(pi)
	if page == nil {
		page = new([pageWords]int64)
		if ri := pi >> regionShift; ri < numRegions {
			leaf := m.regions[ri]
			if leaf == nil {
				leaf = new([regionPages]*[pageWords]int64)
				m.regions[ri] = leaf
			}
			leaf[pi&(regionPages-1)] = page
		} else {
			if m.spill == nil {
				m.spill = map[uint64]*[pageWords]int64{}
			}
			m.spill[pi] = page
		}
	}
	m.lastIdx, m.lastPage = pi, page
	page[w&(pageWords-1)] = val
}

// Executor interprets a program instruction-by-instruction, producing the
// dynamic stream consumed by the timing model.
type Executor struct {
	Prog *isa.Program
	Mem  *Memory
	Regs [isa.NumRegs]int64

	PC     int32
	Halted bool

	// Count is the number of instructions executed so far.
	Count int64

	instrs []isa.Instr // Prog.Instrs, cached to keep Step off the Program header
	dec    *DecodedProgram
}

// Decoded returns the program's pre-decoded metadata table, built once in
// NewExecutor and shared read-only with any number of timing models.
func (e *Executor) Decoded() *DecodedProgram { return e.dec }

// TraceEntry describes one executed instruction for the timing model.
type TraceEntry struct {
	PC     int32  // instruction index
	NextPC int32  // index of the next instruction executed
	Addr   uint64 // effective byte address for memory operations
	Taken  bool   // conditional branches: was the branch taken
}

// NewExecutor prepares an executor with globals initialized and the stack
// pointer set.
func NewExecutor(p *isa.Program) *Executor {
	e := &Executor{Prog: p, Mem: NewMemory(), PC: p.Entry, instrs: p.Instrs, dec: Decode(p)}
	e.Regs[isa.RegSP] = isa.StackBase
	for _, di := range p.Init {
		e.Mem.Store(di.Addr, di.Val)
	}
	return e
}

// ErrFault is returned for invalid memory or control transfers, which
// indicate a compiler bug rather than a program property. Budget marks the
// one benign variant — the instruction budget ran out — so callers classify
// on the flag, never on the message text.
type ErrFault struct {
	PC     int32
	Msg    string
	Budget bool
}

func (e *ErrFault) Error() string {
	return fmt.Sprintf("sim: fault at pc %d: %s", e.PC, e.Msg)
}

// IsBudget reports whether err is (or wraps) a budget-overrun fault.
func IsBudget(err error) bool {
	var f *ErrFault
	return errors.As(err, &f) && f.Budget
}

// budgetFault builds the canonical budget-overrun fault.
func budgetFault(pc int32, maxInstrs int64) *ErrFault {
	return &ErrFault{PC: pc, Msg: fmt.Sprintf("instruction budget %d exceeded", maxInstrs), Budget: true}
}

const minValidAddr = 4096

// Step executes one instruction and reports it. After the final halt, ok is
// false.
func (e *Executor) Step() (entry TraceEntry, ok bool, err error) {
	if e.Halted {
		return TraceEntry{}, false, nil
	}
	if uint32(e.PC) >= uint32(len(e.instrs)) { // also catches negative PCs
		return TraceEntry{}, false, &ErrFault{PC: e.PC, Msg: "pc out of range"}
	}
	in := &e.instrs[e.PC]
	entry = TraceEntry{PC: e.PC, NextPC: e.PC + 1}
	r := &e.Regs

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case isa.OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case isa.OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case isa.OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case isa.OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case isa.OpShl:
		r[in.Rd] = r[in.Rs1] << (uint64(r[in.Rs2]) & 63)
	case isa.OpShr:
		r[in.Rd] = r[in.Rs1] >> (uint64(r[in.Rs2]) & 63)
	case isa.OpSlt:
		r[in.Rd] = b2i(r[in.Rs1] < r[in.Rs2])
	case isa.OpSle:
		r[in.Rd] = b2i(r[in.Rs1] <= r[in.Rs2])
	case isa.OpSeq:
		r[in.Rd] = b2i(r[in.Rs1] == r[in.Rs2])
	case isa.OpSne:
		r[in.Rd] = b2i(r[in.Rs1] != r[in.Rs2])
	case isa.OpAddi:
		r[in.Rd] = r[in.Rs1] + in.Imm
	case isa.OpLui:
		r[in.Rd] = in.Imm
	case isa.OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case isa.OpDiv:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = r[in.Rs1] / r[in.Rs2]
		}
	case isa.OpRem:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = r[in.Rs1] % r[in.Rs2]
		}
	case isa.OpLoad:
		addr := uint64(r[in.Rs1] + in.Imm)
		if addr < minValidAddr {
			return TraceEntry{}, false, &ErrFault{PC: e.PC, Msg: fmt.Sprintf("load from %#x", addr)}
		}
		entry.Addr = addr
		r[in.Rd] = e.Mem.Load(addr)
	case isa.OpStore:
		addr := uint64(r[in.Rs1] + in.Imm)
		if addr < minValidAddr {
			return TraceEntry{}, false, &ErrFault{PC: e.PC, Msg: fmt.Sprintf("store to %#x", addr)}
		}
		entry.Addr = addr
		e.Mem.Store(addr, r[in.Rs2])
	case isa.OpPrefetch:
		addr := uint64(r[in.Rs1] + in.Imm)
		entry.Addr = addr // non-binding: no fault, no architectural effect
	case isa.OpBeq:
		entry.Taken = r[in.Rs1] == r[in.Rs2]
		if entry.Taken {
			entry.NextPC = in.Target
		}
	case isa.OpBne:
		entry.Taken = r[in.Rs1] != r[in.Rs2]
		if entry.Taken {
			entry.NextPC = in.Target
		}
	case isa.OpBlt:
		entry.Taken = r[in.Rs1] < r[in.Rs2]
		if entry.Taken {
			entry.NextPC = in.Target
		}
	case isa.OpBge:
		entry.Taken = r[in.Rs1] >= r[in.Rs2]
		if entry.Taken {
			entry.NextPC = in.Target
		}
	case isa.OpJump:
		entry.NextPC = in.Target
	case isa.OpCall:
		r[isa.RegRA] = int64(e.PC + 1)
		entry.NextPC = in.Target
	case isa.OpRet:
		entry.NextPC = int32(r[isa.RegRA])
	case isa.OpHalt:
		e.Halted = true
		entry.NextPC = e.PC
	default:
		return TraceEntry{}, false, &ErrFault{PC: e.PC, Msg: fmt.Sprintf("unknown opcode %d", in.Op)}
	}
	r[isa.RegZero] = 0 // r0 stays hardwired even if targeted
	e.PC = entry.NextPC
	e.Count++
	return entry, true, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until halt or until maxInstrs is exceeded, returning the
// number of instructions executed and main's return value.
func (e *Executor) Run(maxInstrs int64) (int64, int64, error) {
	for !e.Halted {
		if e.Count >= maxInstrs {
			return e.Count, 0, budgetFault(e.PC, maxInstrs)
		}
		if _, _, err := e.Step(); err != nil {
			return e.Count, 0, err
		}
	}
	return e.Count, e.Regs[isa.RegRV], nil
}
