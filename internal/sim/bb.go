package sim

import "repro/internal/isa"

// Translated-execution kinds. Each interior (non-control) instruction of a
// basic block is re-encoded at translation time into one tuop whose kind
// fuses the opcode with everything the fused loop otherwise discovers
// per-instruction at run time: whether the destination register is
// architecturally written (rd==0 results are discarded instead of written
// and re-cleared), which dataflow sources gate issue, the functional-unit
// class, and whether the op occupies its unit unpipelined. The discard
// kinds (tk*Z) are exact because regReady[RegZero] is invariantly zero and
// an ALU result written to r0 and immediately re-zeroed is a no-op.
const (
	tkAdd uint8 = iota
	tkSub
	tkAnd
	tkOr
	tkXor
	tkShl
	tkShr
	tkSlt
	tkSle
	tkSeq
	tkSne
	tkAddi
	tkLui
	tkMul
	tkDiv
	tkRem
	tkLoad
	tkStore
	tkPrefetch
	tkAluZ  // any discarded pipelined non-mem op (includes Nop)
	tkMulZ  // discarded multiply: FU class IntMul
	tkDivZ  // discarded divide/remainder: IntMul, unpipelined
	tkLoadZ // load to r0: faults and touches the hierarchy, no reg write
)

// tuop is the translated form of one interior instruction: half the size of
// an instrMeta record (two per cache line instead of one), with the icache
// line and pc dropped entirely — both are recomputed from the block-relative
// position, since InstrBytes is exactly half a cache line and interior flow
// is sequential.
type tuop struct {
	tk     uint8 // kind first: the dispatch load starts the indirect jump
	rd     uint8 // destination register (write kinds) — unused by tk*Z
	rs1    uint8 // first source (dataflow source for discard kinds)
	rs2    uint8 // second source (dataflow source for discard kinds)
	_      [4]uint8
	imm    int64
	energy float64
	lat    int64 // fixed execute latency; also the unpipelined occupancy
}

// bblock is one translated basic block: a maximal straight-line run of
// interior instructions, optionally closed by a control-transfer (or halt)
// terminator that is executed through the general path.
type bblock struct {
	start   int32  // pc of the first instruction
	n       int32  // instruction count including the terminator
	off     uint32 // offset of the interior tuops in translation.uops
	hasTerm bool   // last instruction is a control transfer or halt
}

// translation is the per-program basic-block index, built once per
// DecodedProgram (lazily, on first translated run) and shared read-only by
// any number of executors.
type translation struct {
	blocks  []bblock
	blockOf []int32 // per-pc: block index if pc is a block leader, else -1
	uops    []tuop
}

// isTermOp reports whether the instruction at meta index i ends a basic
// block: any PC redirect (branches, jumps, calls, returns) or halt.
func isTermOp(m *instrMeta) bool {
	return m.flags&(flagBranch|flagControl) != 0 || m.op == isa.OpHalt
}

// knownOp reports whether the fused loop has a case for the opcode; unknown
// opcodes are left untranslated so the slow path raises the exact fault.
func knownOp(op isa.Op) bool {
	return op <= isa.OpHalt
}

// translateUop re-encodes the interior instruction at meta index pc.
func translateUop(m *instrMeta) tuop {
	u := tuop{imm: m.imm, energy: m.energy, lat: m.lat, rd: m.rd, rs1: m.rs1, rs2: m.rs2}
	discard := m.dest == isa.RegZero
	switch m.op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne,
		isa.OpAddi, isa.OpLui, isa.OpMul, isa.OpDiv, isa.OpRem:
		if discard {
			// Result discarded: keep only the dataflow sources that gate
			// issue. ALU computes have no side effects (division by zero is
			// defined), so the compute itself is dropped.
			u.rs1, u.rs2 = m.src1, m.src2
			switch m.op {
			case isa.OpMul:
				u.tk = tkMulZ
			case isa.OpDiv, isa.OpRem:
				u.tk = tkDivZ
			default:
				u.tk = tkAluZ
			}
			return u
		}
		switch m.op {
		case isa.OpAdd:
			u.tk = tkAdd
		case isa.OpSub:
			u.tk = tkSub
		case isa.OpAnd:
			u.tk = tkAnd
		case isa.OpOr:
			u.tk = tkOr
		case isa.OpXor:
			u.tk = tkXor
		case isa.OpShl:
			u.tk = tkShl
		case isa.OpShr:
			u.tk = tkShr
		case isa.OpSlt:
			u.tk = tkSlt
		case isa.OpSle:
			u.tk = tkSle
		case isa.OpSeq:
			u.tk = tkSeq
		case isa.OpSne:
			u.tk = tkSne
		case isa.OpAddi:
			u.tk = tkAddi
		case isa.OpLui:
			u.tk = tkLui
		case isa.OpMul:
			u.tk = tkMul
		case isa.OpDiv:
			u.tk = tkDiv
		case isa.OpRem:
			u.tk = tkRem
		}
		return u
	case isa.OpLoad:
		if discard {
			u.tk = tkLoadZ
		} else {
			u.tk = tkLoad
		}
		return u
	case isa.OpStore:
		u.tk = tkStore
		return u
	case isa.OpPrefetch:
		u.tk = tkPrefetch
		return u
	default: // OpNop
		u.tk = tkAluZ
		u.rs1, u.rs2 = m.src1, m.src2
		return u
	}
}

// buildTranslation partitions the decoded program into basic blocks and
// translates every interior instruction. Leaders are the program entry,
// every control-transfer target, and the instruction after every
// terminator (branch fall-through and call-return sites). A control
// transfer landing on a non-leader pc (only possible by writing RegRA by
// hand) is handled by the slow-path fallback at dispatch time.
func buildTranslation(d *DecodedProgram) *translation {
	meta := d.meta
	n := len(meta)
	tr := &translation{blockOf: make([]int32, n)}
	for i := range tr.blockOf {
		tr.blockOf[i] = -1
	}
	if n == 0 {
		return tr
	}

	leader := make([]bool, n)
	mark := func(pc int32) {
		if uint32(pc) < uint32(n) {
			leader[pc] = true
		}
	}
	mark(d.Prog.Entry)
	for i := range meta {
		m := &meta[i]
		if !isTermOp(m) {
			continue
		}
		if m.flags&(flagBranch|flagControl) != 0 && m.op != isa.OpRet {
			mark(m.target)
		}
		mark(int32(i) + 1)
	}

	for l := 0; l < n; l++ {
		if !leader[l] || !knownOp(meta[l].op) {
			continue
		}
		start := int32(l)
		j := l
		for {
			if isTermOp(&meta[j]) {
				j++ // include the terminator
				break
			}
			if !knownOp(meta[j].op) {
				break // untranslatable: stop before it, slow path faults
			}
			if j+1 >= n || leader[j+1] || !knownOp(meta[j+1].op) {
				j++ // block ends by falling into a leader or program end
				break
			}
			j++
		}
		b := bblock{start: start, n: int32(j) - start, off: uint32(len(tr.uops))}
		nIn := int(b.n)
		if isTermOp(&meta[j-1]) {
			b.hasTerm = true
			nIn--
		}
		for k := 0; k < nIn; k++ {
			tr.uops = append(tr.uops, translateUop(&meta[l+k]))
		}
		tr.blockOf[start] = int32(len(tr.blocks))
		tr.blocks = append(tr.blocks, b)
	}
	return tr
}
