package sim_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func manyConfigs() []sim.Config {
	narrow := sim.Constrained()
	narrow.IssueWidth = 1 // exercise the 1-unit FU argmin and issue-width-1 ring
	return []sim.Config{sim.DefaultConfig(), sim.Aggressive(), sim.Constrained(), narrow}
}

// TestSimulateManyMatchesSimulate is the tentpole identity test: one shared
// functional interpretation feeding a timing consumer per configuration
// must be bit-for-bit equal — cycles, energy, exit value, every counter —
// to independent Simulate runs, for a 3-workload × 4-config grid. Run under
// -race this also exercises the chunk hand-off between the producer and
// the concurrent consumers.
func TestSimulateManyMatchesSimulate(t *testing.T) {
	cfgs := manyConfigs()
	for _, name := range []string{"179.art", "181.mcf", "164.gzip"} {
		w := workloads.MustGet(name, workloads.Train)
		prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := sim.SimulateMany(prog, cfgs, 500_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(shared) != len(cfgs) {
			t.Fatalf("%s: got %d results for %d configs", name, len(shared), len(cfgs))
		}
		for k, cfg := range cfgs {
			solo, err := sim.Simulate(prog, cfg, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if shared[k] != solo {
				t.Errorf("%s cfg %d:\nshared %+v\nsolo   %+v", name, k, shared[k], solo)
			}
		}
	}
}

// TestSimulateManyRounds pins the MaxConsumers split: a batch larger than
// the consumer cap runs in rounds (including a final single-config round
// that degrades to Simulate) and must still match the unsplit results.
func TestSimulateManyRounds(t *testing.T) {
	cfgs := manyConfigs()
	w := workloads.MustGet("179.art", workloads.Train)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	split, err := sim.SimulateManyOpt(prog, cfgs, 500_000_000, sim.BatchOptions{MaxConsumers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, cfg := range cfgs {
		solo, err := sim.Simulate(prog, cfg, 500_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if split[k] != solo {
			t.Errorf("cfg %d:\nsplit %+v\nsolo  %+v", k, split[k], solo)
		}
	}
}

// TestSimulateManyBudget pins the typed budget fault on the shared path.
func TestSimulateManyBudget(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.SimulateMany(prog, manyConfigs(), 100)
	if err == nil {
		t.Fatal("expected budget overrun")
	}
	if !sim.IsBudget(err) {
		t.Fatalf("IsBudget(%v) = false, want true", err)
	}
}

// TestIsBudgetTypedNotMessage is the classification regression test: the
// budget verdict must come from the typed flag, so renaming the fault
// message cannot reclassify a budget overrun, and a fault that merely
// mentions "budget" in its message is not one.
func TestIsBudgetTypedNotMessage(t *testing.T) {
	renamed := &sim.ErrFault{PC: 7, Msg: "instruction limit reached", Budget: true}
	if !sim.IsBudget(renamed) {
		t.Error("renamed budget fault not recognized: classification must not depend on the message text")
	}
	lookalike := &sim.ErrFault{PC: 7, Msg: "load from budget table at 0x0"}
	if sim.IsBudget(lookalike) {
		t.Error("non-budget fault recognized as budget just because the message mentions it")
	}
	if sim.IsBudget(nil) {
		t.Error("IsBudget(nil) = true")
	}
}
