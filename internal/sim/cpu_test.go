package sim

import (
	"testing"

	"repro/internal/isa"
)

func feedN(cpu *CPU, in isa.Instr, n int, startPC int32) {
	for i := 0; i < n; i++ {
		cpu.Feed(&in, TraceEntry{PC: startPC + int32(i), NextPC: startPC + int32(i) + 1})
	}
}

func TestIssueBandwidthRing(t *testing.T) {
	cfg := DefaultConfig()
	cpu := NewCPU(cfg)
	// More issues than width at the same desired cycle must spill into
	// later cycles.
	want := int64(100)
	var got []int64
	for i := 0; i < cfg.IssueWidth*2; i++ {
		got = append(got, cpu.issueAt(want))
	}
	for i := 0; i < cfg.IssueWidth; i++ {
		if got[i] != want {
			t.Fatalf("issue %d at %d, want %d", i, got[i], want)
		}
	}
	for i := cfg.IssueWidth; i < 2*cfg.IssueWidth; i++ {
		if got[i] != want+1 {
			t.Fatalf("overflow issue %d at %d, want %d", i, got[i], want+1)
		}
	}
}

func TestCommitBandwidthLimitsIPC(t *testing.T) {
	cfg := DefaultConfig()
	cpu := NewCPU(cfg)
	// Independent single-cycle instructions: IPC can't exceed issue width.
	in := isa.Instr{Op: isa.OpAdd, Rd: 11, Rs1: 0, Rs2: 0}
	feedN(cpu, in, 10000, 0)
	st := cpu.Stats()
	if ipc := st.IPC(); ipc > float64(cfg.IssueWidth)+0.01 {
		t.Fatalf("IPC %.2f exceeds issue width %d", ipc, cfg.IssueWidth)
	}
}

func TestRUUWindowLimitsOverlap(t *testing.T) {
	// A chain of dependent long-latency instructions: the window cannot
	// hide the latency, so cycles scale with latency × count.
	mk := func(ruu int) int64 {
		cfg := DefaultConfig()
		cfg.RUUSize = ruu
		cpu := NewCPU(cfg)
		dep := isa.Instr{Op: isa.OpMul, Rd: 11, Rs1: 11, Rs2: 11}
		feedN(cpu, dep, 2000, 0)
		return cpu.Stats().Cycles
	}
	small, big := mk(16), mk(128)
	// A serial dependence chain gains nothing from a bigger window.
	if diff := float64(small-big) / float64(small); diff > 0.05 || diff < -0.05 {
		t.Fatalf("serial chain should not depend on RUU size: 16→%d 128→%d", small, big)
	}
	if small < 2000*int64(isa.OpMul.Latency()) {
		t.Fatalf("dependent muls cannot beat latency bound: %d cycles", small)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	run := func(taken func(i int) bool) int64 {
		cfg := DefaultConfig()
		cpu := NewCPU(cfg)
		br := isa.Instr{Op: isa.OpBne, Rs1: 11, Rs2: 0, Target: 0}
		for i := 0; i < 5000; i++ {
			cpu.Feed(&br, TraceEntry{PC: 0, NextPC: 0, Taken: taken(i)})
		}
		return cpu.Stats().Cycles
	}
	predictable := run(func(i int) bool { return true })
	// Pseudo-random pattern defeats the predictor.
	lfsr := uint32(0xACE1)
	random := run(func(i int) bool {
		bit := (lfsr ^ lfsr>>2 ^ lfsr>>3 ^ lfsr>>5) & 1
		lfsr = lfsr>>1 | bit<<15
		return bit == 1
	})
	if random <= predictable {
		t.Fatalf("unpredictable branches should cost cycles: predictable=%d random=%d",
			predictable, random)
	}
}

func TestStoreBufferHidesStoreLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemLat = 150
	mk := func(op isa.Op) int64 {
		cpu := NewCPU(cfg)
		in := isa.Instr{Op: op, Rd: 11, Rs1: 12}
		// Stride over DRAM-resident lines.
		for i := 0; i < 3000; i++ {
			cpu.Feed(&in, TraceEntry{PC: int32(i % 8), NextPC: int32(i%8) + 1,
				Addr: uint64(isa.GlobalBase + i*64)})
		}
		return cpu.Stats().Cycles
	}
	loads, stores := mk(isa.OpLoad), mk(isa.OpStore)
	if stores >= loads {
		t.Fatalf("store buffer should hide store miss latency: loads=%d stores=%d", loads, stores)
	}
}

func TestEnergyAndTraceHookFire(t *testing.T) {
	cfg := DefaultConfig()
	cpu := NewCPU(cfg)
	events := 0
	cpu.Trace = func(ev TraceEvent) {
		if ev.Commit < ev.Issue || ev.Issue < ev.Dispatch {
			t.Fatalf("pipeline stages out of order: %+v", ev)
		}
		events++
	}
	in := isa.Instr{Op: isa.OpAdd, Rd: 11}
	feedN(cpu, in, 10, 0)
	if events != 10 {
		t.Fatalf("trace events = %d, want 10", events)
	}
	if cpu.Stats().Energy <= 0 {
		t.Fatal("energy not accumulated")
	}
}
