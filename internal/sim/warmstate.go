package sim

// Warm-state snapshots. The functionally warmed microarchitectural state —
// cache and branch-predictor contents — evolves identically for every
// configuration that shares the same "warm geometry" (capacities,
// associativities, predictor size): warming and detailed execution both
// touch the hierarchy with the same access stream regardless of latencies,
// issue width or window size, and hits versus misses change timing but
// never which state transition happens. That determinism is what makes a
// snapshot taken under one configuration restorable under another, and is
// the foundation of the SMARTS warm-state checkpoints in package smarts.

// cacheLine is one valid line in a CacheState snapshot.
type cacheLine struct {
	idx uint32 // way index into the cache's flat tags/valid/lru arrays
	tag uint64
	lru uint8
}

// CacheState is a compact snapshot of a Cache's contents: valid lines only
// (a warming run fills large caches slowly, so sparse storage is usually
// far smaller than the dense arrays), plus the per-set MRU table. Counters
// are not captured; they are observational, not behavioral.
type CacheState struct {
	sets, assoc int
	lines       []cacheLine
	mru         []uint8
}

// Snapshot captures the cache's current contents.
func (c *Cache) Snapshot() CacheState {
	st := CacheState{sets: c.sets, assoc: c.assoc, mru: append([]uint8(nil), c.mru...)}
	for i, v := range c.valid {
		if v {
			st.lines = append(st.lines, cacheLine{idx: uint32(i), tag: c.tags[i], lru: c.lru[i]})
		}
	}
	return st
}

// Restore overwrites the cache's contents with a snapshot taken from a
// cache of identical geometry; counters are left untouched. Panics on a
// geometry mismatch — callers key snapshots by WarmGeometry, so a mismatch
// is a programming error, not an input error.
func (c *Cache) Restore(st CacheState) {
	if st.sets != c.sets || st.assoc != c.assoc {
		panic("sim: cache snapshot geometry mismatch")
	}
	for i := range c.valid {
		c.valid[i] = false
		c.tags[i] = 0
		c.lru[i] = 0
	}
	copy(c.mru, st.mru)
	for _, ln := range st.lines {
		c.valid[ln.idx] = true
		c.tags[ln.idx] = ln.tag
		c.lru[ln.idx] = ln.lru
	}
}

// BPredState is a snapshot of a BPred's tables and global history.
type BPredState struct {
	bimodal, gshare, chooser []uint8
	history                  uint32
}

// Snapshot captures the predictor's current training state.
func (p *BPred) Snapshot() BPredState {
	return BPredState{
		bimodal: append([]uint8(nil), p.bimodal...),
		gshare:  append([]uint8(nil), p.gshare...),
		chooser: append([]uint8(nil), p.chooser...),
		history: p.history,
	}
}

// Restore overwrites the predictor's training state; counters are left
// untouched. Panics on a size mismatch.
func (p *BPred) Restore(st BPredState) {
	if len(st.bimodal) != len(p.bimodal) {
		panic("sim: predictor snapshot size mismatch")
	}
	copy(p.bimodal, st.bimodal)
	copy(p.gshare, st.gshare)
	copy(p.chooser, st.chooser)
	p.history = st.history
}

// WarmState bundles the warm-relevant microarchitectural state of a CPU:
// everything that survives a ResetTiming and carries information between
// SMARTS detailed windows. Pipeline state (register readiness, rings,
// functional units) is deliberately absent — SMARTS resets it at every
// window entry, so it never needs checkpointing.
type WarmState struct {
	IL1, DL1, L2 CacheState
	BP           BPredState
}

// SnapshotWarm captures the CPU's warm state.
func (c *CPU) SnapshotWarm() *WarmState {
	return &WarmState{
		IL1: c.IL1.Snapshot(),
		DL1: c.DL1.Snapshot(),
		L2:  c.L2.Snapshot(),
		BP:  c.BP.Snapshot(),
	}
}

// RestoreWarm overwrites the CPU's warm state with a snapshot taken from a
// CPU whose configuration has the same WarmGeometry.
func (c *CPU) RestoreWarm(ws *WarmState) {
	c.IL1.Restore(ws.IL1)
	c.DL1.Restore(ws.DL1)
	c.L2.Restore(ws.L2)
	c.BP.Restore(ws.BP)
}

// WarmGeometry is the subset of Config that determines warm-state
// evolution. Two configurations with equal WarmGeometry produce bit-for-bit
// identical cache and predictor contents at every point of the same
// committed-instruction trace, however much their latencies, issue width or
// window size differ.
type WarmGeometry struct {
	ICacheKB    int
	DCacheKB    int
	DCacheAssoc int
	L2KB        int
	L2Assoc     int
	BPredSize   int
}

// WarmGeometry projects the configuration onto its warm-relevant fields.
func (c Config) WarmGeometry() WarmGeometry {
	return WarmGeometry{
		ICacheKB:    c.ICacheKB,
		DCacheKB:    c.DCacheKB,
		DCacheAssoc: c.DCacheAssoc,
		L2KB:        c.L2KB,
		L2Assoc:     c.L2Assoc,
		BPredSize:   c.BPredSize,
	}
}
