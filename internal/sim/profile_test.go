package sim

import (
	"testing"

	"repro/internal/compiler"
)

const profileSrc = `
int a[64];
int main() {
	int s = 0;
	for (int i = 0; i < 64; i = i + 1) {
		a[i] = i * 3;
	}
	for (int i = 0; i < 64; i = i + 1) {
		if (a[i] > 90) {
			s = s + a[i] * 2;
		} else {
			s = s - 1;
		}
	}
	return s;
}
`

func TestProfileProgramCountsAndDeterminism(t *testing.T) {
	prog, _, err := compiler.CompileSource(profileSrc, compiler.O3())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileProgram(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Halted {
		t.Fatal("tiny program must run to completion")
	}
	if p.Instrs == 0 || p.Loads == 0 || p.Stores < 64 || p.CondBranches == 0 {
		t.Errorf("implausible profile: %+v", p)
	}
	if p.TakenBranches > p.CondBranches {
		t.Errorf("taken %d > conditional %d", p.TakenBranches, p.CondBranches)
	}
	if p.UniquePages == 0 {
		t.Error("array traffic must touch at least one page")
	}
	q, err := ProfileProgram(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Errorf("profile not deterministic: %+v vs %+v", p, q)
	}
	// A budget smaller than the program yields a prefix profile, not an error.
	pre, err := ProfileProgram(prog, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Halted || pre.Instrs != 10 {
		t.Errorf("prefix profile wrong: %+v", pre)
	}
}
