package sim

import (
	"sync"

	"repro/internal/isa"
)

// defaultMaxConsumers bounds how many timing consumers share one broadcast
// pass. Each consumer owns a full CPU (caches, predictor, rings); past a
// point more consumers per pass costs cache footprint without saving
// functional work, so very large batches run in rounds.
const defaultMaxConsumers = 16

// BatchOptions tunes SimulateManyOpt.
type BatchOptions struct {
	// MaxConsumers caps the timing consumers attached to one broadcast
	// pass; larger batches run in ceil(len(cfgs)/MaxConsumers) functional
	// passes. 0 means 16.
	MaxConsumers int
}

// SimulateMany runs prog to completion under each configuration, sharing
// one functional interpretation across all of them: the committed trace is
// broadcast in chunks to one timing consumer per config, each owning its
// own caches, branch predictor and energy accumulators. Results are
// bit-for-bit identical to len(cfgs) independent Simulate calls — the
// functional stream does not depend on the configuration — at roughly
// 1/len(cfgs) of the interpretation cost.
func SimulateMany(prog *isa.Program, cfgs []Config, maxInstrs int64) ([]Stats, error) {
	return SimulateManyOpt(prog, cfgs, maxInstrs, BatchOptions{})
}

// SimulateManyOpt is SimulateMany with explicit batch options.
func SimulateManyOpt(prog *isa.Program, cfgs []Config, maxInstrs int64, opt BatchOptions) ([]Stats, error) {
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	maxConsumers := opt.MaxConsumers
	if maxConsumers <= 0 {
		maxConsumers = defaultMaxConsumers
	}
	out := make([]Stats, len(cfgs))
	for lo := 0; lo < len(cfgs); lo += maxConsumers {
		hi := lo + maxConsumers
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		if hi-lo == 1 {
			st, err := Simulate(prog, cfgs[lo], maxInstrs)
			if err != nil {
				return nil, err
			}
			out[lo] = st
			continue
		}
		if err := simulateRound(prog, cfgs[lo:hi], maxInstrs, out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// simulateRound runs one broadcast pass: a single functional interpretation
// of prog feeding len(cfgs) timing consumers.
func simulateRound(prog *isa.Program, cfgs []Config, maxInstrs int64, out []Stats) error {
	exe := NewExecutor(prog)
	dec := exe.Decoded()
	cpus := make([]*CPU, len(cfgs))
	for k := range cpus {
		cpus[k] = NewCPU(cfgs[k])
	}

	b := NewTraceBroadcaster(len(cfgs))
	var wg sync.WaitGroup
	for k := range cpus {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cpu := cpus[k]
			for ck := range b.Out(k) {
				cpu.feedChunkFused(dec, ck.Ents[:ck.N])
				b.Release(ck)
			}
		}(k)
	}
	err := b.Broadcast(exe, maxInstrs)
	wg.Wait()
	if err != nil {
		return err
	}
	exit := exe.Regs[isa.RegRV]
	for k, cpu := range cpus {
		st := cpu.Stats()
		st.ExitValue = exit
		out[k] = st
	}
	return nil
}
