package sim_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestFusedMatchesFeed pins the fused Simulate loop to the reference
// composition it replaces: a functional Step stream driven through the
// CPU's FeedDecoded path. Any divergence — a counter, a cycle, a single
// energy bit — fails here before it can corrupt the golden tables.
func TestFusedMatchesFeed(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	prog, _, err := compiler.Compile(w.Parse(), compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	narrow := sim.Constrained()
	narrow.IssueWidth = 1 // exercise the 1-unit FU argmin and issue-width-1 ring
	for _, cfg := range []sim.Config{sim.DefaultConfig(), sim.Aggressive(), narrow} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		fused, err := sim.Simulate(prog, cfg, 500_000_000)
		if err != nil {
			t.Fatal(err)
		}

		exe := sim.NewExecutor(prog)
		cpu := sim.NewCPU(cfg)
		dec := exe.Decoded()
		for !exe.Halted {
			entry, ok, err := exe.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			cpu.FeedDecoded(dec, entry)
		}
		ref := cpu.Stats()
		ref.ExitValue = exe.Regs[isa.RegRV]

		if fused != ref {
			t.Errorf("cfg %+v:\nfused %+v\nfeed  %+v", cfg, fused, ref)
		}
	}
}
