package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/workloads"
)

// deadWorker is a worker that accepted the lease and then went silent — the
// wire shape of a crash, kill -9 or network partition mid-group. It writes
// the 200 header (so the coordinator is reading the stream) and then nothing.
func deadWorker() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/x-ndjson")
		rw.WriteHeader(http.StatusOK)
		if f, ok := rw.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	})
}

// TestWorkerDeathRequeuesGroup kills one of two workers mid-group (it leases
// and never heartbeats) and asserts the lease expires, the group requeues to
// the live worker, every point completes with the right value, and nothing is
// measured twice or lost in the store.
func TestWorkerDeathRequeuesGroup(t *testing.T) {
	dead := httptest.NewServer(deadWorker())
	defer dead.Close()

	var execs atomic.Int64
	live := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(&execs, 0), Heartbeat: 10 * time.Millisecond})
	liveTS := httptest.NewServer(live.Handler())
	defer liveTS.Close()
	defer live.Close()

	// The dead worker is listed first, so round one of every group lands on
	// it (the scheduler prefers an idle worker over a busy one).
	co, err := New(Options{
		Addrs:        []string{dead.URL, liveTS.URL},
		LeaseTimeout: 150 * time.Millisecond,
		HedgeMin:     -1, // isolate requeue from hedging
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(6, 21)
	got, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if got[i] != pointValue(p) {
			t.Fatalf("point %d: got %v want %v", i, got[i], pointValue(p))
		}
	}
	st := co.Stats()
	if st.GroupsRequeued == 0 {
		t.Fatalf("no requeues recorded despite a dead worker: %+v", st)
	}
	// Exactly-once execution: only the live worker measured, once per point.
	if n := execs.Load(); n != int64(len(points)) {
		t.Fatalf("%d executions for %d points — lost or duplicated work", n, len(points))
	}
	// No lost store entries: every key is a hit now.
	for _, p := range points {
		k := farm.Key(w, p)
		if _, _, ok := co.Store().Get2(k, farm.EnergyKey(k)); !ok {
			t.Fatalf("store lost %s", k)
		}
	}
	if st.WorkersLive != 1 {
		t.Fatalf("workers live = %d, want 1 (one dead)", st.WorkersLive)
	}
}

// TestHedgeFirstResultWins pins straggler hedging: a group stuck on a slow
// worker is re-leased to the fast one once it outlives the hedge threshold;
// the fast lease's results are delivered and persisted exactly once, and the
// slow twin's lease is cancelled rather than abandoned.
func TestHedgeFirstResultWins(t *testing.T) {
	// The slow worker blocks until its lease context is cancelled — it can
	// only "finish" by losing the race.
	slowGate := make(chan struct{})
	defer close(slowGate)
	var slowExecs atomic.Int64
	slow := NewWorker(WorkerOptions{
		Workers:   2,
		Heartbeat: 10 * time.Millisecond,
		Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
			slowExecs.Add(1)
			select {
			case <-slowGate:
			case <-ctx.Done():
			}
			return farm.Result{}, ctx.Err()
		},
	})
	slowTS := httptest.NewServer(slow.Handler())
	defer slowTS.Close()
	defer slow.Close()

	var fastExecs atomic.Int64
	fast := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(&fastExecs, 0), Heartbeat: 10 * time.Millisecond})
	fastTS := httptest.NewServer(fast.Handler())
	defer fastTS.Close()
	defer fast.Close()

	co, err := New(Options{
		Addrs:    []string{slowTS.URL, fastTS.URL}, // first lease lands on slow
		HedgeMin: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// One shared-binary group of three points: hedging re-leases the whole
	// group, so primary + hedge is exactly two dispatches.
	w := workloads.MustGet("179.art", workloads.Train)
	points := sweepPoints(1, 3)
	got, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if got[i] != pointValue(p) {
			t.Fatalf("point %d: got %v want %v", i, got[i], pointValue(p))
		}
	}
	st := co.Stats()
	if st.GroupsHedged != 1 {
		t.Fatalf("groups hedged = %d, want 1", st.GroupsHedged)
	}
	if st.GroupsDispatched != 2 {
		t.Fatalf("dispatched = %d, want 2 (primary + hedge)", st.GroupsDispatched)
	}
	// Exactly-once delivery: the fast worker's results won; each point was
	// persisted once and counted once.
	if n := fastExecs.Load(); n != int64(len(points)) {
		t.Fatalf("fast worker executed %d, want %d", n, len(points))
	}
	if st.SimsExecuted != int64(len(points)) {
		t.Fatalf("sims recorded = %d, want %d — hedge results double-counted", st.SimsExecuted, len(points))
	}
}

// TestCoordinatorRestartReplaysJournal pins the crash-semantics contract: the
// store is coordinator-owned and journaled, so a new coordinator over the
// same store directory answers everything from the journal without a single
// lease crossing the wire.
func TestCoordinatorRestartReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int64
	wk := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(&execs, 0), Heartbeat: 10 * time.Millisecond})
	ts := httptest.NewServer(wk.Handler())
	defer ts.Close()
	defer wk.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(8, 23)

	openStore := func() *farm.Store {
		st, err := farm.Open(filepath.Join(dir, "measurements"), nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	co1, err := New(Options{Addrs: []string{ts.URL}, Store: openStore(), HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := co1.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if err := co1.Close(); err != nil { // journal + checkpoint flushed here
		t.Fatal(err)
	}
	measured := execs.Load()

	co2, err := New(Options{Addrs: []string{ts.URL}, Store: openStore(), HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	got, err := co2.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if got[i] != want[i] {
			t.Fatalf("point %d changed across restart: %v -> %v", i, want[i], got[i])
		}
	}
	if n := execs.Load(); n != measured {
		t.Fatalf("restart re-measured: %d executions before, %d after", measured, n)
	}
	st := co2.Stats()
	if st.GroupsDispatched != 0 || st.CacheHits != int64(len(points)) {
		t.Fatalf("restart went to the wire: dispatched=%d hits=%d", st.GroupsDispatched, st.CacheHits)
	}
}

// TestAllWorkersDeadExhaustsAttempts bounds the retry loop: with every
// worker silent, a group fails to its callers after MaxAttempts leases
// instead of spinning forever.
func TestAllWorkersDeadExhaustsAttempts(t *testing.T) {
	d1 := httptest.NewServer(deadWorker())
	defer d1.Close()
	d2 := httptest.NewServer(deadWorker())
	defer d2.Close()

	co, err := New(Options{
		Addrs:        []string{d1.URL, d2.URL},
		LeaseTimeout: 100 * time.Millisecond,
		MaxAttempts:  2,
		HedgeMin:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	_, err = co.Measure(context.Background(), w, randomPoints(1, 24)[0], farm.Cycles)
	if err == nil {
		t.Fatal("expected failure with every worker dead")
	}
	if !strings.Contains(err.Error(), "after 2 leases") {
		t.Fatalf("error %q does not mention the exhausted lease budget", err)
	}
	st := co.Stats()
	if st.GroupsDispatched != 2 || st.GroupsRequeued != 1 {
		t.Fatalf("dispatched=%d requeued=%d, want 2/1", st.GroupsDispatched, st.GroupsRequeued)
	}
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
}

// TestSuspectWorkerDoesNotBurnAttempts pins the probe-delay policy: with one
// worker refusing connections and the only live worker saturated, instant
// dispatch failures on the already-suspect worker must not consume the
// groups' attempt budgets — every group still completes on the live worker.
func TestSuspectWorkerDoesNotBurnAttempts(t *testing.T) {
	// A server that is already gone: dials to its address fail immediately,
	// the worst case for budget burn (failure is instant and free).
	gone := httptest.NewServer(http.NotFoundHandler())
	goneURL := gone.URL
	gone.Close()

	var execs atomic.Int64
	live := NewWorker(WorkerOptions{Workers: 1, Measure: stubMeasure(&execs, 40*time.Millisecond), Heartbeat: 10 * time.Millisecond})
	liveTS := httptest.NewServer(live.Handler())
	defer liveTS.Close()
	defer live.Close()

	co, err := New(Options{
		Addrs:       []string{goneURL, liveTS.URL},
		MaxInFlight: 1, // keeps the live worker saturated, exposing the dead one
		MaxAttempts: 2,
		HedgeMin:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(5, 28) // five groups, only one live lease slot
	got, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatalf("batch failed with a live worker available: %v", err)
	}
	for i, p := range points {
		if got[i] != pointValue(p) {
			t.Fatalf("point %d: got %v want %v", i, got[i], pointValue(p))
		}
	}
	if n := execs.Load(); n != int64(len(points)) {
		t.Fatalf("%d executions for %d points", n, len(points))
	}
}

// TestErrorClassSurvivesTheWire pins farm.RemoteError: a worker-side budget
// overrun reaches the coordinator's caller still classified as a budget
// failure (so retry policy and the BudgetOverruns counter behave exactly as
// in-process).
func TestErrorClassSurvivesTheWire(t *testing.T) {
	wk := NewWorker(WorkerOptions{
		Workers:   1,
		Heartbeat: 10 * time.Millisecond,
		Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
			return farm.Result{}, &farm.SimError{Workload: job.Workload.Key(), Budget: true, Err: errors.New("budget exhausted")}
		},
	})
	ts := httptest.NewServer(wk.Handler())
	defer ts.Close()
	defer wk.Close()

	co, err := New(Options{Addrs: []string{ts.URL}, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	_, err = co.Measure(context.Background(), w, randomPoints(1, 25)[0], farm.Cycles)
	if err == nil {
		t.Fatal("expected remote budget error")
	}
	var re *farm.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a RemoteError", err)
	}
	if got := farm.Classify(err); got != farm.ClassBudget {
		t.Fatalf("Classify = %v, want ClassBudget", got)
	}
	st := co.Stats()
	if st.BudgetOverruns != 1 || st.Failures != 1 {
		t.Fatalf("budget=%d failures=%d, want 1/1", st.BudgetOverruns, st.Failures)
	}
}

// TestDrainWaitsThenRequeues pins the drain lifecycle: draining stops new
// leases, a drain that outlasts the in-flight lease returns clean, and a
// drain bounded tighter than the lease cancels it and requeues the group so
// no work is silently lost.
func TestDrainWaitsThenRequeues(t *testing.T) {
	t.Run("in-flight lease finishes", func(t *testing.T) {
		p := newPlane(t,
			[]WorkerOptions{{Workers: 1, Measure: stubMeasure(nil, 100*time.Millisecond), Heartbeat: 10 * time.Millisecond}},
			Options{HedgeMin: -1},
		)
		w := workloads.MustGet("179.art", workloads.Train)
		points := sweepPoints(1, 2) // one group, one lease
		done := make(chan error, 1)
		go func() {
			_, err := p.co.MeasureBatch(context.Background(), w, points, farm.Cycles)
			done <- err
		}()
		waitForDispatch(t, p.co, 1)

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := p.co.Drain(ctx); err != nil {
			t.Fatalf("drain with room to finish returned %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("batch under drain failed: %v", err)
		}
		for _, pt := range points {
			k := farm.Key(w, pt)
			if _, _, ok := p.co.Store().Get2(k, farm.EnergyKey(k)); !ok {
				t.Fatalf("drained coordinator lost %s", k)
			}
		}
	})

	t.Run("drain timeout requeues", func(t *testing.T) {
		gate := make(chan struct{})
		defer close(gate)
		p := newPlane(t,
			[]WorkerOptions{{
				Workers:   1,
				Heartbeat: 10 * time.Millisecond,
				Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
					select {
					case <-gate:
					case <-ctx.Done():
					}
					return farm.Result{}, ctx.Err()
				},
			}},
			Options{HedgeMin: -1},
		)
		w := workloads.MustGet("179.art", workloads.Train)
		done := make(chan error, 1)
		go func() {
			_, err := p.co.Measure(context.Background(), w, randomPoints(1, 27)[0], farm.Cycles)
			done <- err
		}()
		waitForDispatch(t, p.co, 1)

		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		if err := p.co.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("drain = %v, want deadline exceeded", err)
		}
		if st := p.co.Stats(); st.GroupsRequeued != 1 {
			t.Fatalf("requeued = %d, want 1 — the cancelled lease's group vanished", st.GroupsRequeued)
		}
		// Close fails the still-queued waiter rather than hanging.
		if err := p.co.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("waiter got a result from a drained+closed coordinator")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter hung after drain+close")
		}
	})
}

func waitForDispatch(t *testing.T, co *Coordinator, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().GroupsDispatched < n {
		if time.Now().After(deadline) {
			t.Fatalf("never dispatched %d groups: %+v", n, co.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
