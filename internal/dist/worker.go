package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/farm"
)

// WorkerOptions configures a measurement worker.
type WorkerOptions struct {
	// Workers bounds the local farm's pool (0 = GOMAXPROCS). The count is
	// also the slot budget a worker advertises when it registers with a
	// coordinator.
	Workers int
	// MaxInstrs bounds each simulation (0 = the farm default of 500M).
	// Coordinators and workers must agree on the budget for bit-identical
	// results; both default to the same constant.
	MaxInstrs int64
	// Heartbeat is the interval between heartbeat lines while a group
	// measures (0 = 500ms). It must be well under the coordinator's lease
	// timeout.
	Heartbeat time.Duration
	// Store is the worker's own journaled measurement store (nil = fresh
	// in-memory store). With a durable store, a worker that already measured
	// a group answers repeat leases from local cache with zero simulations —
	// across its own restarts and across coordinator restarts. The worker's
	// farm owns the store and closes it on Close.
	Store *farm.Store
	// Measure, when non-nil, replaces the compile+simulate executor
	// (test seam).
	Measure farm.MeasureFunc
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// Worker wraps a local farm behind the group-lease API. Scheduling, dedup
// and cross-worker durability stay coordinator-side, so a worker can be
// killed and replaced at any moment without losing anything but in-flight
// work (which the coordinator requeues on lease expiry) — but each worker
// keeps its own partition of the measurement store: results it computed,
// journaled locally, served back instantly on repeat leases and shipped to
// the coordinator as deltas via GET /v1/store.
type Worker struct {
	farm  *farm.Farm
	store *farm.Store
	boot  string // identifies this process lifetime; store cursors are scoped to it
	hb    time.Duration
	log   io.Writer
	mux   *http.ServeMux

	groups atomic.Int64
	start  time.Time
}

// NewWorker builds a worker over a fresh local farm.
func NewWorker(opts WorkerOptions) *Worker {
	store := opts.Store
	if store == nil {
		store = farm.MemStore()
	}
	w := &Worker{
		farm: farm.New(farm.Options{
			Workers:   opts.Workers,
			Measure:   opts.Measure,
			MaxInstrs: opts.MaxInstrs,
			Store:     store,
			Log:       opts.Log,
		}),
		store: store,
		boot:  fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano()),
		hb:    opts.Heartbeat,
		log:   opts.Log,
		start: time.Now(),
	}
	if w.hb <= 0 {
		w.hb = 500 * time.Millisecond
	}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("POST /v1/group", w.handleGroup)
	w.mux.HandleFunc("GET /v1/store", w.handleStore)
	w.mux.HandleFunc("GET /healthz", w.handleHealthz)
	return w
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler { return w.mux }

// Close drains the local farm.
func (w *Worker) Close() error { return w.farm.Close() }

// Stats exposes the local farm's counters (for the healthz payload and
// tests).
func (w *Worker) Stats() farm.Stats { return w.farm.Stats() }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.log != nil {
		fmt.Fprintf(w.log, format+"\n", args...)
	}
}

// handleGroup measures one leased group and streams the outcome. The group
// runs through the local farm's batch planner, so all points (which share a
// binary by construction) are compiled once and interpreted once —
// bit-for-bit identical to the coordinator running them in-process. While
// the measurement runs, heartbeat lines keep the coordinator's lease alive;
// a worker that dies mid-group simply stops writing, and the coordinator's
// read deadline expires the lease.
func (w *Worker) handleGroup(rw http.ResponseWriter, r *http.Request) {
	var req GroupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Points) == 0 {
		http.Error(rw, "empty group", http.StatusBadRequest)
		return
	}
	jobs := jobsFromWire(&req)
	w.logf("worker: lease %s: %s, %d points", req.Lease, jobs[0].Workload.Key(), len(jobs))

	// Count up front how many points the local store already answers; the
	// farm would serve them as cache hits anyway, but its counters are
	// process-global, and the coordinator wants an exact per-group number
	// for the done line.
	localHits := 0
	for _, j := range jobs {
		key := farm.Key(j.Workload, j.Point)
		if _, _, ok := w.store.Get2(key, farm.EnergyKey(key)); ok {
			localHits++
		}
	}

	type outcome struct {
		res  []farm.Result
		errs []error
	}
	done := make(chan outcome, 1)
	go func() {
		res, errs := w.farm.DoJobs(r.Context(), jobs)
		done <- outcome{res, errs}
	}()

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(rw)
	flush := func() {
		if f, ok := rw.(http.Flusher); ok {
			f.Flush()
		}
	}
	ticker := time.NewTicker(w.hb)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			enc.Encode(GroupLine{Heartbeat: true})
			flush()
		case out := <-done:
			for i := range jobs {
				line := GroupLine{Result: true, Index: i}
				if err := out.errs[i]; err != nil {
					line.Error = err.Error()
					line.Class = farm.Classify(err).String()
				} else {
					line.Cycles = out.res[i].Cycles
					line.Energy = out.res[i].Energy
					line.Instrs = out.res[i].Instructions
				}
				enc.Encode(line)
			}
			enc.Encode(GroupLine{Done: true, LocalHits: localHits})
			flush()
			w.groups.Add(1)
			return
		case <-r.Context().Done():
			// The coordinator hung up (lease cancelled after a hedge won,
			// or drain): DoJobs sees the same context and unwinds.
			<-done
			return
		}
	}
}

// handleStore ships the worker's store delta: everything recorded after the
// caller's cursor, or everything the store holds when the cursor belongs to
// a different boot of this worker (cursors index the store's arrival order,
// which does not survive a restart). Re-sending is safe — the coordinator's
// merge skips entries it already holds.
func (w *Worker) handleStore(rw http.ResponseWriter, r *http.Request) {
	cursor, _ := strconv.Atoi(r.URL.Query().Get("cursor"))
	if r.URL.Query().Get("boot") != w.boot {
		cursor = 0
	}
	entries, next := w.store.Since(cursor)
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(StoreDelta{Boot: w.boot, Next: next, Entries: entries})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	st := w.farm.Stats()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(w.start).Seconds(),
		"groups_done":    w.groups.Load(),
		"sims":           st.SimsExecuted,
		"farm_workers":   st.Workers,
	})
}
