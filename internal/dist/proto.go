// Package dist is the distributed measurement plane: a coordinator that
// shards farm batches across N empirico-worker processes over HTTP.
//
// The dispatch unit is a shared-binary group, not a point: the coordinator
// plans batches into farm.BinaryKey groups exactly as farm.DoJobs does and
// leases whole groups to workers, so the compile-once/interpret-once
// sharing of the batch planner survives distribution (a group split across
// workers would recompile and re-interpret per shard). Workers are
// stateless measurers wrapping a local in-memory farm; the durable store
// stays coordinator-owned and results are journaled through the existing
// farm.Store path, so crash semantics are unchanged from the in-process
// plane.
//
// Failure handling lives entirely on the coordinator: a lease whose result
// stream goes silent past the lease timeout expires and the group is
// requeued to another worker; a group that exceeds ~p95 of completed group
// latencies is hedged (re-leased to a second worker, first result wins
// through the coordinator's single-flight dedup); per-worker in-flight caps
// provide backpressure.
package dist

import (
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// WireWorkload is the full workload identity on the wire. The source text
// travels too: farm keys hash it, and workers must measure exactly what the
// coordinator keyed (generated workloads — benchmarks, future workload
// generators — have no name registry to resolve against).
type WireWorkload struct {
	Name   string `json:"name"`
	Input  string `json:"input"`
	Class  string `json:"class"`
	Source string `json:"source"`
}

func toWire(w workloads.Workload) WireWorkload {
	return WireWorkload{Name: w.Name, Input: w.Input, Class: string(w.Class), Source: w.Source}
}

// Workload reconstructs the workload a request describes.
func (ww WireWorkload) Workload() workloads.Workload {
	return workloads.Workload{
		Name:   ww.Name,
		Input:  ww.Input,
		Class:  workloads.InputClass(ww.Class),
		Source: ww.Source,
	}
}

// GroupRequest leases one shared-binary group to a worker: every point
// carries the same compiler subvector and issue width, so the worker's own
// batch planner compiles once and interprets once for the whole group.
type GroupRequest struct {
	// Lease identifies this lease in worker logs; retries and hedges of
	// the same group carry distinct lease IDs.
	Lease    string       `json:"lease"`
	Workload WireWorkload `json:"workload"`
	Points   [][]int64    `json:"points"`
}

// GroupLine is one line of the worker's streamed ndjson response. While the
// group measures, the worker emits heartbeat lines (the coordinator's lease
// stays alive as long as lines keep arriving); when the group completes it
// emits one result line per point, in request order, then a done line.
type GroupLine struct {
	Heartbeat bool `json:"hb,omitempty"`

	// Result fields; a line is a result when Result is true.
	Result bool    `json:"result,omitempty"`
	Index  int     `json:"i,omitempty"`
	Cycles float64 `json:"cycles,omitempty"`
	Energy float64 `json:"energy,omitempty"`
	Instrs int64   `json:"instrs,omitempty"`
	// Error and Class carry a per-point failure with its retry class
	// ("permanent", "budget", "transient"), reconstructed coordinator-side
	// as farm.RemoteError so classification survives the wire.
	Error string `json:"error,omitempty"`
	Class string `json:"class,omitempty"`

	Done bool `json:"done,omitempty"`
}

// result converts a result line back into the farm's types.
func (l GroupLine) result() (farm.Result, error) {
	if l.Error != "" {
		return farm.Result{}, &farm.RemoteError{Msg: l.Error, Class: farm.ClassFromString(l.Class)}
	}
	return farm.Result{Cycles: l.Cycles, Energy: l.Energy, Instructions: l.Instrs}, nil
}

// wirePoints flattens doe points for JSON.
func wirePoints(jobs []*ctask) [][]int64 {
	pts := make([][]int64, len(jobs))
	for i, t := range jobs {
		pts[i] = []int64(t.job.Point)
	}
	return pts
}

// jobsFromWire rebuilds farm jobs from a request.
func jobsFromWire(req *GroupRequest) []farm.Job {
	w := req.Workload.Workload()
	jobs := make([]farm.Job, len(req.Points))
	for i, raw := range req.Points {
		jobs[i] = farm.Job{Workload: w, Point: doe.Point(raw)}
	}
	return jobs
}
