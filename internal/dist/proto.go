// Package dist is the distributed measurement plane: a coordinator that
// shards farm batches across N empirico-worker processes over HTTP.
//
// The dispatch unit is a shared-binary group, not a point: the coordinator
// plans batches into farm.BinaryKey groups exactly as farm.DoJobs does and
// leases whole groups to workers, so the compile-once/interpret-once
// sharing of the batch planner survives distribution (a group split across
// workers would recompile and re-interpret per shard). Workers wrap a local
// farm over an optionally journaled worker-local store: a worker that
// already measured a group answers from its own cache with zero
// simulations, and the coordinator pulls each worker's store delta on
// checkpoint and merges it (idempotent, last-write-wins) into its own
// durable store — worker-local caches survive coordinator restarts and
// coordinator state survives worker churn. Results still journal through
// the coordinator's farm.Store the moment they stream in, so crash
// semantics are no weaker than the in-process plane.
//
// The fleet is elastic: workers join (POST /v1/register) and leave
// (DELETE /v1/register) a running coordinator, advertising their slot count
// at registration; placement is capacity-weighted (least relative load
// against per-worker slot budgets) so heterogeneous fleets get load
// proportional to capacity.
//
// Failure handling lives entirely on the coordinator: a lease whose result
// stream goes silent past the lease timeout expires and the group is
// requeued to another worker; a group that exceeds ~p95 of completed group
// latencies is hedged (re-leased to a second worker that is not already
// leasing it, only when the fleet has spare capacity, first result wins
// through the coordinator's single-flight dedup); per-worker slot budgets
// provide backpressure.
package dist

import (
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// WireWorkload is the full workload identity on the wire. The source text
// travels too: farm keys hash it, and workers must measure exactly what the
// coordinator keyed (generated workloads — benchmarks, future workload
// generators — have no name registry to resolve against).
type WireWorkload struct {
	Name   string `json:"name"`
	Input  string `json:"input"`
	Class  string `json:"class"`
	Source string `json:"source"`
}

func toWire(w workloads.Workload) WireWorkload {
	return WireWorkload{Name: w.Name, Input: w.Input, Class: string(w.Class), Source: w.Source}
}

// Workload reconstructs the workload a request describes.
func (ww WireWorkload) Workload() workloads.Workload {
	return workloads.Workload{
		Name:   ww.Name,
		Input:  ww.Input,
		Class:  workloads.InputClass(ww.Class),
		Source: ww.Source,
	}
}

// GroupRequest leases one shared-binary group to a worker: every point
// carries the same compiler subvector and issue width, so the worker's own
// batch planner compiles once and interprets once for the whole group.
type GroupRequest struct {
	// Lease identifies this lease in worker logs; retries and hedges of
	// the same group carry distinct lease IDs.
	Lease    string       `json:"lease"`
	Workload WireWorkload `json:"workload"`
	Points   [][]int64    `json:"points"`
}

// GroupLine is one line of the worker's streamed ndjson response. While the
// group measures, the worker emits heartbeat lines (the coordinator's lease
// stays alive as long as lines keep arriving); when the group completes it
// emits one result line per point, in request order, then a done line.
type GroupLine struct {
	Heartbeat bool `json:"hb,omitempty"`

	// Result fields; a line is a result when Result is true.
	Result bool    `json:"result,omitempty"`
	Index  int     `json:"i,omitempty"`
	Cycles float64 `json:"cycles,omitempty"`
	Energy float64 `json:"energy,omitempty"`
	Instrs int64   `json:"instrs,omitempty"`
	// Error and Class carry a per-point failure with its retry class
	// ("permanent", "budget", "transient"), reconstructed coordinator-side
	// as farm.RemoteError so classification survives the wire.
	Error string `json:"error,omitempty"`
	Class string `json:"class,omitempty"`

	// Done terminates the stream. LocalHits rides on the done line: how many
	// of the group's points the worker answered from its own journaled store
	// without simulating (the partitioned-store cache-hit path).
	Done      bool `json:"done,omitempty"`
	LocalHits int  `json:"local_hits,omitempty"`
}

// RegisterRequest announces a worker to a running coordinator
// (POST /v1/register) or withdraws it (DELETE /v1/register). Addr is the
// address the coordinator should lease groups to; Slots is the worker's
// advertised capacity (its local farm's pool size), the input to
// capacity-weighted placement.
type RegisterRequest struct {
	Addr  string `json:"addr"`
	Slots int    `json:"slots,omitempty"`
}

// RegisterResponse acknowledges a registration change with the
// coordinator's current fleet size.
type RegisterResponse struct {
	OK      bool `json:"ok"`
	Workers int  `json:"workers"`
}

// WorkerInfo is one row of GET /v1/workers, the coordinator's view of a
// fleet member.
type WorkerInfo struct {
	Addr     string `json:"addr"`
	Slots    int    `json:"slots"`
	InFlight int    `json:"in_flight"`
	Live     bool   `json:"live"`
	Removed  bool   `json:"removed,omitempty"`
}

// StoreDelta is a worker's answer to GET /v1/store?cursor=N: every entry its
// journaled store recorded after the cursor, plus the next cursor and the
// worker's boot identity. Cursors are positions in the worker store's
// arrival order and are only comparable within one boot — a coordinator
// holding a cursor from a previous boot re-pulls from zero (merge is
// idempotent, so the re-pull is just traffic).
type StoreDelta struct {
	Boot    string    `json:"boot"`
	Next    int       `json:"next"`
	Entries []farm.KV `json:"entries"`
}

// result converts a result line back into the farm's types.
func (l GroupLine) result() (farm.Result, error) {
	if l.Error != "" {
		return farm.Result{}, &farm.RemoteError{Msg: l.Error, Class: farm.ClassFromString(l.Class)}
	}
	return farm.Result{Cycles: l.Cycles, Energy: l.Energy, Instructions: l.Instrs}, nil
}

// wirePoints flattens doe points for JSON.
func wirePoints(jobs []*ctask) [][]int64 {
	pts := make([][]int64, len(jobs))
	for i, t := range jobs {
		pts[i] = []int64(t.job.Point)
	}
	return pts
}

// jobsFromWire rebuilds farm jobs from a request.
func jobsFromWire(req *GroupRequest) []farm.Job {
	w := req.Workload.Workload()
	jobs := make([]farm.Job, len(req.Points))
	for i, raw := range req.Points {
		jobs[i] = farm.Job{Workload: w, Point: doe.Point(raw)}
	}
	return jobs
}
