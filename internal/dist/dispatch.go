package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/farm"
)

// scheduler is the single goroutine that matches queued groups to workers
// with free lease slots. It blocks while the queue is empty, every active
// worker is at its slot budget (backpressure: a huge batch queues here
// instead of overwhelming the workers), or the coordinator is draining.
func (c *Coordinator) scheduler() {
	defer close(c.schedDone)
	for {
		c.mu.Lock()
		var req *dispatchReq
		wi := -1
		for {
			if c.closed {
				c.mu.Unlock()
				return
			}
			if !c.draining {
				if req, wi = c.takeDispatchableLocked(); req != nil {
					break
				}
			}
			c.cond.Wait()
		}
		w := c.workers[wi]
		wasLive := w.live
		w.inflight++
		req.g.leases++
		req.g.lastWorker = wi
		req.g.onWorkers[wi]++
		c.leases++
		seq := c.leaseSeq
		c.leaseSeq++
		lctx, cancel := context.WithCancel(req.g.ctx)
		c.leaseCancels[seq] = cancel
		req.g.leaseSeqs[seq] = struct{}{}
		hedge := req.hedge
		c.bump(func(s *coStats) {
			s.dispatched++
			if hedge {
				s.hedged++
			}
		})
		c.mu.Unlock()
		go c.runLease(req.g, w, wi, seq, lctx, wasLive)
		if !hedge {
			go c.hedgeTimer(req.g)
		}
	}
}

// takeDispatchableLocked scans the queue for the first request that can be
// leased now, removes it and returns it with its placement. Requests for
// already-finished groups are dropped in passing. A hedge whose moment has
// passed — no eligible worker by the time it reaches the front — is dropped
// too, never left to camp on capacity that primary work needs; primaries
// keep strict FIFO order, so an undispatchable primary ends the scan (no
// later request can have capacity it lacks).
func (c *Coordinator) takeDispatchableLocked() (*dispatchReq, int) {
	i := 0
	for i < len(c.queue) {
		req := c.queue[i]
		if req.g.done {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			continue
		}
		wi := c.pickWorkerLocked(req.g, req.hedge)
		if wi >= 0 {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return req, wi
		}
		if req.hedge {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.logf("dist: dropping hedge for %s group: no spare capacity", req.g.w.Key())
			continue
		}
		return nil, -1
	}
	return nil, -1
}

// pickWorkerLocked chooses the lease target by least relative load: among
// active workers with a free slot — excluding, for hedges, workers already
// leasing this group — pick the one with the smallest inflight/slots ratio,
// so a 3-slot worker carries ~3× the load of a 1-slot one. Suspect workers
// and the group's previous worker are deprioritized by loading the
// numerator; the comparison cross-multiplies to stay in integers.
func (c *Coordinator) pickWorkerLocked(g *cgroup, hedge bool) int {
	best, bestNum, bestSlots := -1, 0, 1
	for i, w := range c.workers {
		if w.removed || w.inflight >= w.slots {
			continue
		}
		if hedge && g.onWorkers[i] > 0 {
			continue
		}
		num := w.inflight * 4
		if !w.live {
			num += 2
		}
		if i == g.lastWorker {
			num++
		}
		// num/slots < bestNum/bestSlots ⇔ num·bestSlots < bestNum·slots.
		if best == -1 || num*bestSlots < bestNum*w.slots {
			best, bestNum, bestSlots = i, num, w.slots
		}
	}
	return best
}

// hedgeTimer re-queues a group for a second lease if it is still running
// once its primary lease outlives the hedging threshold (~p95 of completed
// group latencies, floored at HedgeMin). The first lease to finish wins via
// finishGroupLocked; the loser's context is cancelled there.
func (c *Coordinator) hedgeTimer(g *cgroup) {
	if c.hedgeMin < 0 {
		return
	}
	delay := c.hedgeDelay()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-g.finished:
		return
	case <-timer.C:
	}
	c.mu.Lock()
	if !g.done && !g.hedged && !c.draining && !c.closed && g.leases > 0 {
		// A hedge is strictly opportunistic: it must never overcommit a
		// worker's slot budget and never queue ahead of primary work that is
		// itself waiting for capacity. No eligible worker right now means no
		// hedge at all — by the time capacity frees, a queued twin would be
		// stale anyway (takeDispatchableLocked drops that race's leftovers).
		if c.pickWorkerLocked(g, true) == -1 || c.queuedPrimariesLocked() {
			c.mu.Unlock()
			return
		}
		g.hedged = true
		c.queue = append(c.queue, &dispatchReq{g: g, hedge: true})
		c.logf("dist: hedging %s group of %d after %s", g.w.Key(), len(g.tasks), delay.Round(time.Millisecond))
		c.mu.Unlock()
		c.cond.Broadcast()
		return
	}
	c.mu.Unlock()
}

// queuedPrimariesLocked reports whether primary (non-hedge) dispatches are
// waiting; a hedge has no business taking a slot a real group needs.
func (c *Coordinator) queuedPrimariesLocked() bool {
	for _, r := range c.queue {
		if !r.hedge && !r.g.done {
			return true
		}
	}
	return false
}

// hedgeDelay is the straggler threshold: p95 of recently completed group
// lease latencies, floored at HedgeMin; before enough groups completed to
// estimate a tail, the floor alone applies.
func (c *Coordinator) hedgeDelay() time.Duration {
	c.statMu.Lock()
	lats := append([]float64(nil), c.st.latencies...)
	c.statMu.Unlock()
	if len(lats) < 3 {
		return c.hedgeMin
	}
	sort.Float64s(lats)
	p95 := lats[(len(lats)-1)*95/100]
	d := time.Duration(p95 * float64(time.Second))
	if d < c.hedgeMin {
		d = c.hedgeMin
	}
	return d
}

// probeDelay spaces out redispatches after a failure on a worker that was
// already suspect, so a dead worker cannot hot-loop the scheduler (or burn a
// group's attempt budget) while the live workers are busy.
const probeDelay = 250 * time.Millisecond

// runLease executes one lease end to end: stream the group from the worker,
// then either deliver the merged results (first finisher wins) or classify
// the lease failure — requeue on worker death or lease expiry, fail the
// group once the attempt budget is spent, stand down silently if a hedge
// twin is still running. wasLive records whether the worker looked healthy
// at dispatch time: failures on an already-suspect worker don't spend the
// group's attempt budget as long as healthier workers exist.
// The workerRef is passed in (rather than re-indexed) because the worker
// slice header mutates under mu as registrations append; the ref itself is
// stable for the coordinator's lifetime.
func (c *Coordinator) runLease(g *cgroup, w *workerRef, wi int, seq int64, ctx context.Context, wasLive bool) {
	start := time.Now()
	results, errs, localHits, err := c.streamGroup(ctx, w.base, g, seq)
	busy := time.Since(start)

	c.mu.Lock()
	if cancel, ok := c.leaseCancels[seq]; ok {
		delete(c.leaseCancels, seq)
		defer cancel() // release the context once the bookkeeping is done
	}
	delete(g.leaseSeqs, seq)
	w.inflight--
	g.leases--
	c.leases--
	if g.onWorkers[wi]--; g.onWorkers[wi] <= 0 {
		delete(g.onWorkers, wi)
	}
	w.live = err == nil || ctx.Err() != nil // a cancelled lease says nothing about health
	c.bump(func(s *coStats) {
		s.workerJobs[wi]++
		s.workerBusyNanos[wi] += busy.Nanoseconds()
		if err == nil {
			s.workerGroups[wi]++
			s.workerLocalHits[wi] += int64(localHits)
			s.localHits += int64(localHits)
			s.latencies = append(s.latencies, busy.Seconds())
			if len(s.latencies) > 512 {
				s.latencies = append(s.latencies[:0], s.latencies[256:]...)
			}
		}
	})

	switch {
	case g.done:
		// A hedge twin already delivered (or shutdown failed the group);
		// this copy is discarded — the dedup that makes hedging exactly-once.
	case err == nil:
		c.finishGroupLocked(g, results, errs, nil)
	case g.ctx.Err() != nil:
		// The submitting caller is gone; no point retrying for nobody.
		c.finishGroupLocked(g, nil, nil, g.ctx.Err())
	case g.leases > 0:
		// A twin lease is still running; let it race to the finish.
		c.logf("dist: lease on %s failed (%v), twin still running", w.addr, err)
	case c.closed:
		c.finishGroupLocked(g, nil, nil, errClosed)
	case c.draining:
		// Drain expired this lease: requeue so the group is visibly
		// abandoned-but-unlost; Close fails its waiters.
		g.attempts++
		c.requeueLocked(g, 0)
		c.logf("dist: drain requeued %s group of %d", g.w.Key(), len(g.tasks))
	case !wasLive && c.anyLiveLocked():
		// A fast failure on a worker that was already suspect, with
		// healthier workers around: redispatch after a probe delay and keep
		// the attempt budget for failures that carry information.
		c.requeueLocked(g, probeDelay)
		c.logf("dist: requeued %s group of %d after probe of suspect %s: %v",
			g.w.Key(), len(g.tasks), w.addr, err)
	case g.attempts+1 >= c.maxAttempts:
		g.attempts++
		c.finishGroupLocked(g, nil, nil, fmt.Errorf("dist: group failed after %d leases: %w", g.attempts, err))
	default:
		g.attempts++
		c.requeueLocked(g, 0)
		c.logf("dist: requeued %s group of %d after lease failure on %s: %v",
			g.w.Key(), len(g.tasks), w.addr, err)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// anyLiveLocked reports whether some active worker still looks healthy.
func (c *Coordinator) anyLiveLocked() bool {
	for _, w := range c.workers {
		if w.live && !w.removed {
			return true
		}
	}
	return false
}

// requeueLocked puts g back on the dispatch queue, immediately or after a
// delay. A delayed requeue that lands after Close fails the group's waiters
// instead of stranding them (Close already flushed the queue by then).
func (c *Coordinator) requeueLocked(g *cgroup, delay time.Duration) {
	c.bump(func(s *coStats) { s.requeued++ })
	if delay <= 0 {
		c.queue = append(c.queue, &dispatchReq{g: g})
		return
	}
	time.AfterFunc(delay, func() {
		c.mu.Lock()
		if g.done {
			c.mu.Unlock()
			return
		}
		if c.closed {
			c.finishGroupLocked(g, nil, nil, errClosed)
			c.mu.Unlock()
			return
		}
		c.queue = append(c.queue, &dispatchReq{g: g})
		c.mu.Unlock()
		c.cond.Broadcast()
	})
}

// streamGroup posts one group to a worker and consumes its ndjson stream.
// Every line — heartbeat or result — renews the lease; silence past the
// lease timeout means the worker died mid-group (crash, kill -9, network
// partition) and the lease expires. localHits reports how many of the
// group's points the worker answered from its own journaled store.
func (c *Coordinator) streamGroup(ctx context.Context, base string, g *cgroup, seq int64) (_ []farm.Result, _ []error, localHits int, err error) {
	body, err := json.Marshal(GroupRequest{
		Lease:    fmt.Sprintf("l%d", seq),
		Workload: toWire(g.w),
		Points:   wirePoints(g.tasks),
	})
	if err != nil {
		return nil, nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/group", bytes.NewReader(body))
	if err != nil {
		return nil, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, nil, 0, fmt.Errorf("dist: worker %s: %s: %s", base, resp.Status, bytes.TrimSpace(msg))
	}

	lines := make(chan GroupLine)
	readErr := make(chan error, 1)
	go func() {
		dec := json.NewDecoder(resp.Body)
		for {
			var l GroupLine
			if derr := dec.Decode(&l); derr != nil {
				readErr <- derr
				return
			}
			select {
			case lines <- l:
			case <-ctx.Done():
				return
			}
		}
	}()

	results := make([]farm.Result, len(g.tasks))
	errs := make([]error, len(g.tasks))
	got := 0
	expire := time.NewTimer(c.lease)
	defer expire.Stop()
	for {
		select {
		case l := <-lines:
			if !expire.Stop() {
				<-expire.C
			}
			expire.Reset(c.lease)
			switch {
			case l.Heartbeat:
			case l.Done:
				if got != len(g.tasks) {
					return nil, nil, 0, fmt.Errorf("dist: incomplete group from %s: %d/%d results", base, got, len(g.tasks))
				}
				return results, errs, l.LocalHits, nil
			case l.Result:
				if l.Index < 0 || l.Index >= len(results) {
					return nil, nil, 0, fmt.Errorf("dist: result index %d out of range from %s", l.Index, base)
				}
				results[l.Index], errs[l.Index] = l.result()
				got++
			}
		case rerr := <-readErr:
			return nil, nil, 0, fmt.Errorf("dist: worker %s stream: %w", base, rerr)
		case <-expire.C:
			return nil, nil, 0, fmt.Errorf("dist: lease expired: no line from %s in %s", base, c.lease)
		case <-ctx.Done():
			return nil, nil, 0, ctx.Err()
		}
	}
}
