package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/farm"
)

// scheduler is the single goroutine that matches queued groups to workers
// with free lease slots. It blocks while the queue is empty, every worker
// is at its in-flight cap (backpressure: a huge batch queues here instead
// of overwhelming the workers), or the coordinator is draining.
func (c *Coordinator) scheduler() {
	defer close(c.schedDone)
	for {
		c.mu.Lock()
		for !c.closed && (c.draining || !c.dispatchableLocked()) {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		req := c.queue[0]
		c.queue = c.queue[1:]
		if req.g.done {
			c.mu.Unlock()
			continue
		}
		wi := c.pickWorkerLocked(req.g)
		w := c.workers[wi]
		wasLive := w.live
		w.inflight++
		req.g.leases++
		req.g.lastWorker = wi
		c.leases++
		seq := c.leaseSeq
		c.leaseSeq++
		lctx, cancel := context.WithCancel(req.g.ctx)
		c.leaseCancels[seq] = cancel
		req.g.leaseSeqs[seq] = struct{}{}
		hedge := req.hedge
		c.bump(func(s *coStats) {
			s.dispatched++
			if hedge {
				s.hedged++
			}
		})
		c.mu.Unlock()
		go c.runLease(req.g, wi, seq, lctx, wasLive)
		if !hedge {
			go c.hedgeTimer(req.g)
		}
	}
}

// dispatchableLocked reports whether the queue head can be leased now.
func (c *Coordinator) dispatchableLocked() bool {
	if len(c.queue) == 0 {
		return false
	}
	for _, w := range c.workers {
		if w.inflight < c.cap {
			return true
		}
	}
	return false
}

// pickWorkerLocked chooses the lease target: the least-loaded worker with a
// free slot, preferring live workers and avoiding the group's previous
// worker (so requeues and hedges land somewhere new when possible).
func (c *Coordinator) pickWorkerLocked(g *cgroup) int {
	best := -1
	score := func(i int) (int, bool) {
		w := c.workers[i]
		if w.inflight >= c.cap {
			return 0, false
		}
		s := w.inflight * 4
		if !w.live {
			s += 2
		}
		if i == g.lastWorker {
			s++
		}
		return s, true
	}
	bestScore := 0
	for i := range c.workers {
		if s, ok := score(i); ok && (best == -1 || s < bestScore) {
			best, bestScore = i, s
		}
	}
	return best
}

// hedgeTimer re-queues a group for a second lease if it is still running
// once its primary lease outlives the hedging threshold (~p95 of completed
// group latencies, floored at HedgeMin). The first lease to finish wins via
// finishGroupLocked; the loser's context is cancelled there.
func (c *Coordinator) hedgeTimer(g *cgroup) {
	if c.hedgeMin < 0 || len(c.workers) < 2 {
		return
	}
	delay := c.hedgeDelay()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-g.finished:
		return
	case <-timer.C:
	}
	c.mu.Lock()
	if !g.done && !g.hedged && !c.draining && !c.closed && g.leases > 0 {
		g.hedged = true
		c.queue = append(c.queue, &dispatchReq{g: g, hedge: true})
		c.logf("dist: hedging %s group of %d after %s", g.w.Key(), len(g.tasks), delay.Round(time.Millisecond))
		c.mu.Unlock()
		c.cond.Broadcast()
		return
	}
	c.mu.Unlock()
}

// hedgeDelay is the straggler threshold: p95 of recently completed group
// lease latencies, floored at HedgeMin; before enough groups completed to
// estimate a tail, the floor alone applies.
func (c *Coordinator) hedgeDelay() time.Duration {
	c.statMu.Lock()
	lats := append([]float64(nil), c.st.latencies...)
	c.statMu.Unlock()
	if len(lats) < 3 {
		return c.hedgeMin
	}
	sort.Float64s(lats)
	p95 := lats[(len(lats)-1)*95/100]
	d := time.Duration(p95 * float64(time.Second))
	if d < c.hedgeMin {
		d = c.hedgeMin
	}
	return d
}

// probeDelay spaces out redispatches after a failure on a worker that was
// already suspect, so a dead worker cannot hot-loop the scheduler (or burn a
// group's attempt budget) while the live workers are busy.
const probeDelay = 250 * time.Millisecond

// runLease executes one lease end to end: stream the group from the worker,
// then either deliver the merged results (first finisher wins) or classify
// the lease failure — requeue on worker death or lease expiry, fail the
// group once the attempt budget is spent, stand down silently if a hedge
// twin is still running. wasLive records whether the worker looked healthy
// at dispatch time: failures on an already-suspect worker don't spend the
// group's attempt budget as long as healthier workers exist.
func (c *Coordinator) runLease(g *cgroup, wi int, seq int64, ctx context.Context, wasLive bool) {
	start := time.Now()
	results, errs, err := c.streamGroup(ctx, c.workers[wi].base, g, seq)
	busy := time.Since(start)

	c.mu.Lock()
	if cancel, ok := c.leaseCancels[seq]; ok {
		delete(c.leaseCancels, seq)
		defer cancel() // release the context once the bookkeeping is done
	}
	delete(g.leaseSeqs, seq)
	w := c.workers[wi]
	w.inflight--
	g.leases--
	c.leases--
	liveBefore := w.live
	w.live = err == nil || ctx.Err() != nil // a cancelled lease says nothing about health
	if w.live != liveBefore {
		delta := int64(1)
		if !w.live {
			delta = -1
		}
		c.bump(func(s *coStats) { s.workersLive += delta })
	}
	c.bump(func(s *coStats) {
		s.workerJobs[wi]++
		s.workerBusyNanos[wi] += busy.Nanoseconds()
		if err == nil {
			s.latencies = append(s.latencies, busy.Seconds())
			if len(s.latencies) > 512 {
				s.latencies = append(s.latencies[:0], s.latencies[256:]...)
			}
		}
	})

	switch {
	case g.done:
		// A hedge twin already delivered (or shutdown failed the group);
		// this copy is discarded — the dedup that makes hedging exactly-once.
	case err == nil:
		c.finishGroupLocked(g, results, errs, nil)
	case g.ctx.Err() != nil:
		// The submitting caller is gone; no point retrying for nobody.
		c.finishGroupLocked(g, nil, nil, g.ctx.Err())
	case g.leases > 0:
		// A twin lease is still running; let it race to the finish.
		c.logf("dist: lease on %s failed (%v), twin still running", w.addr, err)
	case c.closed:
		c.finishGroupLocked(g, nil, nil, errClosed)
	case c.draining:
		// Drain expired this lease: requeue so the group is visibly
		// abandoned-but-unlost; Close fails its waiters.
		g.attempts++
		c.requeueLocked(g, 0)
		c.logf("dist: drain requeued %s group of %d", g.w.Key(), len(g.tasks))
	case !wasLive && c.anyLiveLocked():
		// A fast failure on a worker that was already suspect, with
		// healthier workers around: redispatch after a probe delay and keep
		// the attempt budget for failures that carry information.
		c.requeueLocked(g, probeDelay)
		c.logf("dist: requeued %s group of %d after probe of suspect %s: %v",
			g.w.Key(), len(g.tasks), w.addr, err)
	case g.attempts+1 >= c.maxAttempts:
		g.attempts++
		c.finishGroupLocked(g, nil, nil, fmt.Errorf("dist: group failed after %d leases: %w", g.attempts, err))
	default:
		g.attempts++
		c.requeueLocked(g, 0)
		c.logf("dist: requeued %s group of %d after lease failure on %s: %v",
			g.w.Key(), len(g.tasks), w.addr, err)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// anyLiveLocked reports whether some worker still looks healthy.
func (c *Coordinator) anyLiveLocked() bool {
	for _, w := range c.workers {
		if w.live {
			return true
		}
	}
	return false
}

// requeueLocked puts g back on the dispatch queue, immediately or after a
// delay. A delayed requeue that lands after Close fails the group's waiters
// instead of stranding them (Close already flushed the queue by then).
func (c *Coordinator) requeueLocked(g *cgroup, delay time.Duration) {
	c.bump(func(s *coStats) { s.requeued++ })
	if delay <= 0 {
		c.queue = append(c.queue, &dispatchReq{g: g})
		return
	}
	time.AfterFunc(delay, func() {
		c.mu.Lock()
		if g.done {
			c.mu.Unlock()
			return
		}
		if c.closed {
			c.finishGroupLocked(g, nil, nil, errClosed)
			c.mu.Unlock()
			return
		}
		c.queue = append(c.queue, &dispatchReq{g: g})
		c.mu.Unlock()
		c.cond.Broadcast()
	})
}

// streamGroup posts one group to a worker and consumes its ndjson stream.
// Every line — heartbeat or result — renews the lease; silence past the
// lease timeout means the worker died mid-group (crash, kill -9, network
// partition) and the lease expires.
func (c *Coordinator) streamGroup(ctx context.Context, base string, g *cgroup, seq int64) ([]farm.Result, []error, error) {
	body, err := json.Marshal(GroupRequest{
		Lease:    fmt.Sprintf("l%d", seq),
		Workload: toWire(g.w),
		Points:   wirePoints(g.tasks),
	})
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/group", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, nil, fmt.Errorf("dist: worker %s: %s: %s", base, resp.Status, bytes.TrimSpace(msg))
	}

	lines := make(chan GroupLine)
	readErr := make(chan error, 1)
	go func() {
		dec := json.NewDecoder(resp.Body)
		for {
			var l GroupLine
			if derr := dec.Decode(&l); derr != nil {
				readErr <- derr
				return
			}
			select {
			case lines <- l:
			case <-ctx.Done():
				return
			}
		}
	}()

	results := make([]farm.Result, len(g.tasks))
	errs := make([]error, len(g.tasks))
	got := 0
	expire := time.NewTimer(c.lease)
	defer expire.Stop()
	for {
		select {
		case l := <-lines:
			if !expire.Stop() {
				<-expire.C
			}
			expire.Reset(c.lease)
			switch {
			case l.Heartbeat:
			case l.Done:
				if got != len(g.tasks) {
					return nil, nil, fmt.Errorf("dist: incomplete group from %s: %d/%d results", base, got, len(g.tasks))
				}
				return results, errs, nil
			case l.Result:
				if l.Index < 0 || l.Index >= len(results) {
					return nil, nil, fmt.Errorf("dist: result index %d out of range from %s", l.Index, base)
				}
				results[l.Index], errs[l.Index] = l.result()
				got++
			}
		case rerr := <-readErr:
			return nil, nil, fmt.Errorf("dist: worker %s stream: %w", base, rerr)
		case <-expire.C:
			return nil, nil, fmt.Errorf("dist: lease expired: no line from %s in %s", base, c.lease)
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}
