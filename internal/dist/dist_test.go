package dist

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// pointValue derives a deterministic fake measurement from a point so stub
// executors behave like the real (deterministic) pipeline.
func pointValue(p doe.Point) float64 {
	v := 1.0
	for _, x := range p {
		v = v*31 + float64(x)
	}
	return v
}

// stubMeasure is a deterministic executor stub that counts executions and
// honours cancellation (so cancelled hedge twins unwind like the real one).
func stubMeasure(execs *atomic.Int64, delay time.Duration) farm.MeasureFunc {
	return func(ctx context.Context, job farm.Job) (farm.Result, error) {
		if execs != nil {
			execs.Add(1)
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return farm.Result{}, ctx.Err()
			}
		}
		return farm.Result{Cycles: pointValue(job.Point), Energy: 2 * pointValue(job.Point), Instructions: 1000}, nil
	}
}

// plane is one coordinator over N in-process workers for tests.
type plane struct {
	co      *Coordinator
	workers []*Worker
	servers []*httptest.Server
}

// newPlane spins up len(wopts) workers behind httptest servers and a
// coordinator over them. Close order matters: coordinator first (it cancels
// leases), then servers, then worker farms.
func newPlane(t *testing.T, wopts []WorkerOptions, copts Options) *plane {
	t.Helper()
	p := &plane{}
	for _, wo := range wopts {
		w := NewWorker(wo)
		ts := httptest.NewServer(w.Handler())
		p.workers = append(p.workers, w)
		p.servers = append(p.servers, ts)
		copts.Addrs = append(copts.Addrs, ts.URL)
	}
	co, err := New(copts)
	if err != nil {
		t.Fatal(err)
	}
	p.co = co
	t.Cleanup(func() {
		p.co.Close()
		for _, ts := range p.servers {
			ts.Close()
		}
		for _, w := range p.workers {
			w.Close()
		}
	})
	return p
}

func randomPoints(n int, seed int64) []doe.Point {
	rng := rand.New(rand.NewSource(seed))
	space := doe.JointSpace()
	pts := make([]doe.Point, n)
	for i := range pts {
		pts[i] = space.RandomPoint(rng)
	}
	return pts
}

// sweepPoints builds a Table-7-shaped batch: nFlags compiler vectors crossed
// with microarch variants, so the batch plans into exactly nFlags
// shared-binary groups.
func sweepPoints(nFlags, perFlag int) []doe.Point {
	var pts []doe.Point
	for f := 0; f < nFlags; f++ {
		opts := compiler.O2()
		if f%2 == 1 {
			opts = compiler.O3()
		}
		opts.UnrollLoops = true
		opts.MaxUnrollTimes = 1 << uint(f) // 1, 2, 4, 8… — distinct binaries
		for m := 0; m < perFlag; m++ {
			cfg := sim.DefaultConfig()
			cfg.MemLat = 60 + 10*m
			cfg.BPredSize = 1024 << (m % 3)
			pts = append(pts, doe.JoinPoint(doe.FromOptions(opts), doe.FromConfig(cfg)))
		}
	}
	return pts
}

// distTestSource is a tiny generated workload (fast to compile and simulate)
// for the end-to-end pinned tests that run the real executor.
func distTestSource() string {
	var sb strings.Builder
	sb.WriteString("int data[64];\n")
	sb.WriteString("int mix(int x) {\n\tint acc = x;\n")
	for s := 0; s < 6; s++ {
		fmt.Fprintf(&sb, "\tacc = (acc * %d + data[(acc + %d) & 63]) ^ %d;\n", 3+s, s*7, s+11)
	}
	sb.WriteString("\treturn acc;\n}\n")
	sb.WriteString("int main() {\n\tint seed = 77;\n")
	sb.WriteString("\tfor (int i = 0; i < 64; i = i + 1) {\n")
	sb.WriteString("\t\tseed = (seed * 1103515245 + 12345) & 2147483647;\n\t\tdata[i] = (seed >> 5) % 512;\n\t}\n")
	sb.WriteString("\tint sum = 0;\n\tfor (int r = 0; r < 6; r = r + 1) {\n\t\tsum = sum + mix(sum + r);\n\t}\n")
	sb.WriteString("\treturn sum & 1073741823;\n}\n")
	return sb.String()
}

func distTestWorkload() workloads.Workload {
	return workloads.Workload{Name: "920.dist", Input: "test", Class: workloads.Train, Source: distTestSource()}
}

// TestDistributedMatchesInProcess is the acceptance pin: the same sweep,
// measured with the real compile+simulate executor, must be bit-identical
// between the in-process farm and a coordinator sharding over two workers —
// the distributed plane may change throughput, never values.
func TestDistributedMatchesInProcess(t *testing.T) {
	w := distTestWorkload()
	w.Parse()
	points := sweepPoints(3, 3)

	local := farm.New(farm.Options{Workers: 2})
	cycLocal, err := local.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	enLocal, err := local.MeasureBatch(context.Background(), w, points, farm.Energy)
	if err != nil {
		t.Fatal(err)
	}
	local.Close()

	p := newPlane(t,
		[]WorkerOptions{{Workers: 2, Heartbeat: 20 * time.Millisecond}, {Workers: 2, Heartbeat: 20 * time.Millisecond}},
		Options{HedgeMin: -1},
	)
	cycDist, err := p.co.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	enDist, err := p.co.MeasureBatch(context.Background(), w, points, farm.Energy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if cycDist[i] != cycLocal[i] || enDist[i] != enLocal[i] {
			t.Fatalf("point %d diverged: dist (%v, %v) vs local (%v, %v)",
				i, cycDist[i], enDist[i], cycLocal[i], enLocal[i])
		}
	}

	// The energy batch must have been pure store hits — measurements merged
	// into the coordinator-owned store on the cycles pass.
	st := p.co.Stats()
	if st.CacheHits < int64(len(points)) {
		t.Fatalf("energy pass re-measured: %d hits for %d points", st.CacheHits, len(points))
	}
	if st.SimsExecuted != int64(len(points)) {
		t.Fatalf("sims executed = %d, want %d", st.SimsExecuted, len(points))
	}
}

// TestGroupIsTheDispatchUnit pins the planner equivalence: a batch that
// farm.DoJobs would plan into k shared-binary groups crosses the wire as
// exactly k leases, and each worker compiles each group's binary once.
func TestGroupIsTheDispatchUnit(t *testing.T) {
	w := distTestWorkload()
	w.Parse()
	const nGroups = 4
	points := sweepPoints(nGroups, 3)

	p := newPlane(t,
		[]WorkerOptions{{Workers: 2, Heartbeat: 20 * time.Millisecond}, {Workers: 2, Heartbeat: 20 * time.Millisecond}},
		Options{HedgeMin: -1},
	)
	if _, err := p.co.MeasureBatch(context.Background(), w, points, farm.Cycles); err != nil {
		t.Fatal(err)
	}
	st := p.co.Stats()
	if st.BinaryGroups != nGroups {
		t.Fatalf("coordinator planned %d groups, want %d", st.BinaryGroups, nGroups)
	}
	if st.GroupsDispatched != nGroups {
		t.Fatalf("dispatched %d leases for %d groups (a group must be one lease)", st.GroupsDispatched, nGroups)
	}
	var workerGroups, workerShared int64
	for _, wk := range p.workers {
		ws := wk.Stats()
		workerGroups += ws.BinaryGroups
		workerShared += ws.TraceSharedSims
	}
	if workerGroups != nGroups {
		t.Fatalf("workers formed %d binary groups, want %d: sharing broke in transit", workerGroups, nGroups)
	}
	if workerShared == 0 {
		t.Fatal("no trace-shared simulations on the workers: compile-once/interpret-once lost")
	}
}

// TestCoalescingAndStoreHits pins the single-flight and cache layers of the
// coordinator: concurrent callers of one point trigger one dispatch, and
// completed points are store hits that never touch the wire again.
func TestCoalescingAndStoreHits(t *testing.T) {
	var execs atomic.Int64
	p := newPlane(t,
		[]WorkerOptions{{Workers: 2, Measure: stubMeasure(&execs, 30*time.Millisecond), Heartbeat: 10 * time.Millisecond}},
		Options{HedgeMin: -1},
	)
	w := workloads.MustGet("179.art", workloads.Train)
	pt := randomPoints(1, 1)[0]

	const callers = 8
	var wg sync.WaitGroup
	vals := make([]float64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = p.co.Measure(context.Background(), w, pt, farm.Cycles)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if vals[i] != pointValue(pt) {
			t.Fatalf("caller %d got %v, want %v", i, vals[i], pointValue(pt))
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions for %d concurrent callers of one point", n, callers)
	}
	if _, err := p.co.Measure(context.Background(), w, pt, farm.Energy); err != nil {
		t.Fatal(err)
	}
	st := p.co.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}
	if st.CacheMisses != 1 || st.Coalesced != callers-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1/%d", st.CacheMisses, st.Coalesced, callers-1)
	}
}

// TestBackendInterchangeable pins the satellite seam: code written against
// farm.Backend runs identically over the in-process farm and the
// coordinator. (The compile-time assertions live next to each type; this
// exercises the swap at runtime through one code path.)
func TestBackendInterchangeable(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(6, 2)

	run := func(backend farm.Backend) []float64 {
		t.Helper()
		defer backend.Close()
		got, err := backend.MeasureBatch(context.Background(), w, points, farm.Cycles)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	local := run(farm.New(farm.Options{Workers: 2, Measure: stubMeasure(nil, 0)}))

	wk := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(nil, 0), Heartbeat: 10 * time.Millisecond})
	ts := httptest.NewServer(wk.Handler())
	defer ts.Close()
	defer wk.Close()
	co, err := New(Options{Addrs: []string{ts.URL}, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	dist := run(co)

	for i := range points {
		if local[i] != dist[i] {
			t.Fatalf("backend divergence at %d: local %v dist %v", i, local[i], dist[i])
		}
	}
}

// TestStatsConsistentUnderLoad is the distributed twin of the farm's hammer
// test: concurrent readers assert cross-counter invariants on every Stats
// snapshot while batches run, pinning the tear-free guarantee of the new
// dispatch counters. Run with -race this also exercises statMu against the
// dispatch and finish paths.
func TestStatsConsistentUnderLoad(t *testing.T) {
	const perSim = 1000
	p := newPlane(t,
		[]WorkerOptions{
			{Workers: 4, Measure: stubMeasure(nil, 0), Heartbeat: 10 * time.Millisecond},
			{Workers: 4, Measure: stubMeasure(nil, 0), Heartbeat: 10 * time.Millisecond},
		},
		Options{HedgeMin: -1, MaxInFlight: 4},
	)

	stop := make(chan struct{})
	torn := make(chan string, 1)
	report := func(format string, args ...interface{}) {
		select {
		case torn <- fmt.Sprintf(format, args...):
		default:
		}
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := p.co.Stats()
				if st.InstrsSimulated != perSim*st.SimsExecuted {
					report("torn snapshot: %d instrs for %d sims", st.InstrsSimulated, st.SimsExecuted)
					return
				}
				if st.GroupsHedged > st.GroupsDispatched {
					report("more hedges (%d) than dispatches (%d)", st.GroupsHedged, st.GroupsDispatched)
					return
				}
				if st.GroupsDispatched < st.BinaryGroups {
					report("finished groups (%d) exceed dispatches (%d)", st.BinaryGroups, st.GroupsDispatched)
					return
				}
				if st.WorkersLive < 0 || st.WorkersLive > int64(st.Workers) {
					report("workers live %d outside [0, %d]", st.WorkersLive, st.Workers)
					return
				}
				if st.SimsExecuted+st.Failures > st.CacheMisses {
					report("more completions (%d) than misses (%d)", st.SimsExecuted+st.Failures, st.CacheMisses)
					return
				}
				var pwGroups, pwHits int64
				for _, pw := range st.PerWorker {
					if pw.InFlight < 0 || pw.InFlight > pw.Slots {
						report("worker %s in-flight %d outside its %d slots", pw.Addr, pw.InFlight, pw.Slots)
						return
					}
					pwGroups += pw.Groups
					pwHits += pw.LocalHits
				}
				if pwGroups > st.GroupsDispatched {
					report("per-worker groups (%d) exceed dispatches (%d)", pwGroups, st.GroupsDispatched)
					return
				}
				if pwHits != st.WorkerLocalHits {
					report("per-worker local hits %d != aggregate %d", pwHits, st.WorkerLocalHits)
					return
				}
				if st.StoreMergeConflicts > 0 {
					report("deterministic stub produced %d merge conflicts", st.StoreMergeConflicts)
					return
				}
			}
		}()
	}

	// Membership churn runs concurrently with the batches: a third worker
	// registers, is pulled from (Checkpoint), and deregisters in a loop,
	// exercising fleet mutation against dispatch, stats and merge paths.
	churner := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(nil, 0), Heartbeat: 10 * time.Millisecond})
	churnTS := httptest.NewServer(churner.Handler())
	defer churnTS.Close()
	defer churner.Close()
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := p.co.Register(churnTS.URL, 3); err != nil {
				return
			}
			p.co.Checkpoint()
			if _, err := p.co.Deregister(churnTS.URL); err != nil {
				return
			}
		}
	}()

	w := workloads.MustGet("179.art", workloads.Train)
	for round := 0; round < 4; round++ {
		if _, err := p.co.MeasureBatch(context.Background(), w, randomPoints(48, int64(10+round)), farm.Cycles); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	churn.Wait()
	readers.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
	st := p.co.Stats()
	if st.SimsExecuted == 0 || st.GroupsDispatched == 0 {
		t.Fatalf("no work flowed: %+v", st)
	}
}

// TestCoordinatorClosedRejectsWork mirrors the farm's contract.
func TestCoordinatorClosedRejectsWork(t *testing.T) {
	wk := NewWorker(WorkerOptions{Workers: 1, Measure: stubMeasure(nil, 0)})
	ts := httptest.NewServer(wk.Handler())
	defer ts.Close()
	defer wk.Close()
	co, err := New(Options{Addrs: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := co.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	w := workloads.MustGet("179.art", workloads.Train)
	if _, err := co.Measure(context.Background(), w, randomPoints(1, 3)[0], farm.Cycles); err == nil {
		t.Fatal("expected error from closed coordinator")
	}
}
