package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// Options configures a Coordinator.
type Options struct {
	// Addrs are the worker endpoints ("host:port" or full base URLs).
	// At least one is required.
	Addrs []string
	// Store holds completed measurements; nil means a fresh in-memory
	// store. The store is coordinator-owned — workers never persist.
	Store *farm.Store
	// MaxInFlight caps the groups leased to one worker at a time
	// (backpressure; 0 = 2).
	MaxInFlight int
	// LeaseTimeout is the longest silence tolerated on a group's result
	// stream before the lease expires and the group is requeued (0 = 15s).
	// Workers heartbeat well under this.
	LeaseTimeout time.Duration
	// HedgeMin floors the straggler-hedging delay: a group is re-leased to
	// a second worker once it runs past ~p95 of completed group latencies,
	// but never sooner than this (0 = 2s; negative disables hedging).
	HedgeMin time.Duration
	// MaxAttempts bounds failed leases per group before the group's
	// callers see the lease error (0 = 3).
	MaxAttempts int
	// Client performs the HTTP calls; nil means a dedicated client with
	// no overall request timeout (the lease timeout bounds streams).
	Client *http.Client
	// Log receives dispatch and recovery lines; nil silences them.
	Log io.Writer
}

// Coordinator is a farm.Backend that shards measurement batches across
// remote workers. It plans batches into shared-binary groups exactly as the
// in-process farm does, leases whole groups to workers, and merges the
// streamed results into its own durable store — callers cannot tell it
// apart from a local farm except by throughput.
type Coordinator struct {
	opts        Options
	store       *farm.Store
	client      *http.Client
	lease       time.Duration
	hedgeMin    time.Duration
	maxAttempts int
	cap         int

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*dispatchReq
	inflight     map[string]*ctask
	workers      []*workerRef
	leases       int // dispatches currently on the wire
	leaseSeq     int64
	leaseCancels map[int64]context.CancelFunc
	draining     bool
	closed       bool
	schedDone    chan struct{}

	// statMu guards the counters (always acquired after mu when both are
	// held, mirroring the farm's locking order).
	statMu sync.Mutex
	st     coStats
	start  time.Time
}

// coStats are the coordinator's instrumentation counters, all guarded by
// statMu and updated in one critical section per logical event.
type coStats struct {
	hits, misses, coalesced      int64
	sims, instrs, fails, budget  int64
	groups, traceShared          int64
	dispatched, hedged, requeued int64
	workersLive                  int64
	workerJobs                   []int64
	workerBusyNanos              []int64
	// latencies of recently completed group leases (seconds), the input
	// to the p95 hedging threshold.
	latencies []float64
}

// ctask is one in-flight point; all callers for the same key share it.
type ctask struct {
	job  farm.Job
	key  string
	done chan struct{}
	res  farm.Result
	err  error
}

// cgroup is one shared-binary group, the unit of dispatch. All fields
// except the immutable ones are guarded by Coordinator.mu.
type cgroup struct {
	w     workloads.Workload
	tasks []*ctask
	// ctx is the first submitter's context: its cancellation fails the
	// group (later joiners still bail on their own contexts while
	// waiting), exactly like the farm's task ctx.
	ctx context.Context

	attempts   int // failed leases so far
	leases     int // leases currently on the wire for this group
	leaseSeqs  map[int64]struct{}
	hedged     bool
	done       bool
	lastWorker int
	finished   chan struct{} // closed when done flips true
}

// dispatchReq is one queue entry: lease this group (again) somewhere.
type dispatchReq struct {
	g     *cgroup
	hedge bool
}

// workerRef is the coordinator's view of one worker process.
type workerRef struct {
	addr string
	base string // normalized base URL
	// guarded by Coordinator.mu:
	inflight int
	live     bool
}

var errClosed = errors.New("dist: coordinator closed")

// New starts a coordinator over the given workers. It performs no network
// IO — workers are contacted lazily on first dispatch, so a worker that is
// still starting up costs a retry, not a construction failure.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Addrs) == 0 {
		return nil, errors.New("dist: no worker addresses")
	}
	c := &Coordinator{
		opts:         opts,
		store:        opts.Store,
		client:       opts.Client,
		lease:        opts.LeaseTimeout,
		hedgeMin:     opts.HedgeMin,
		maxAttempts:  opts.MaxAttempts,
		cap:          opts.MaxInFlight,
		inflight:     map[string]*ctask{},
		leaseCancels: map[int64]context.CancelFunc{},
		schedDone:    make(chan struct{}),
		start:        time.Now(),
	}
	if c.store == nil {
		c.store = farm.MemStore()
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.lease <= 0 {
		c.lease = 15 * time.Second
	}
	if c.hedgeMin == 0 {
		c.hedgeMin = 2 * time.Second
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 3
	}
	if c.cap <= 0 {
		c.cap = 2
	}
	for _, addr := range opts.Addrs {
		c.workers = append(c.workers, &workerRef{addr: addr, base: baseURL(addr), live: true})
	}
	c.st.workersLive = int64(len(c.workers))
	c.st.workerJobs = make([]int64, len(c.workers))
	c.st.workerBusyNanos = make([]int64, len(c.workers))
	c.cond = sync.NewCond(&c.mu)
	go c.scheduler()
	return c, nil
}

func baseURL(addr string) string {
	if len(addr) >= 7 && (addr[:7] == "http://" || (len(addr) >= 8 && addr[:8] == "https://")) {
		return addr
	}
	return "http://" + addr
}

func (c *Coordinator) bump(update func(*coStats)) {
	c.statMu.Lock()
	update(&c.st)
	c.statMu.Unlock()
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.opts.Log != nil {
		fmt.Fprintf(c.opts.Log, format+"\n", args...)
	}
}

// Store exposes the coordinator-owned result store.
func (c *Coordinator) Store() *farm.Store { return c.store }

// Checkpoint flushes the store to its durable checkpoint file.
func (c *Coordinator) Checkpoint() error { return c.store.Checkpoint() }

// Do runs one job through the cache, single-flight and dispatch layers.
func (c *Coordinator) Do(ctx context.Context, job farm.Job) (farm.Result, error) {
	res, errs := c.DoJobs(ctx, []farm.Job{job})
	return res[0], errs[0]
}

// Measure returns the requested response of workload w at point p.
func (c *Coordinator) Measure(ctx context.Context, w workloads.Workload, p doe.Point, resp farm.Response) (float64, error) {
	res, err := c.Do(ctx, farm.Job{Workload: w, Point: p})
	if err != nil {
		return 0, err
	}
	return resp.Value(res), nil
}

// MeasureBatch measures w at every point and returns the responses in input
// order, failing with the error of the earliest failing point — the same
// error selection as the in-process farm, so the planes are
// indistinguishable to callers.
func (c *Coordinator) MeasureBatch(ctx context.Context, w workloads.Workload, points []doe.Point, resp farm.Response) ([]float64, error) {
	jobs := make([]farm.Job, len(points))
	for i, p := range points {
		jobs[i] = farm.Job{Workload: w, Point: p}
	}
	res, errs := c.DoJobs(ctx, jobs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(points))
	for i := range res {
		out[i] = resp.Value(res[i])
	}
	return out, nil
}

// DoJobs plans a batch into shared-binary groups and dispatches them across
// the workers, returning one result and one error per job in input order.
// The grouping is byte-identical to farm.DoJobs' planner: jobs with equal
// farm.BinaryKey form one group, and the whole group is leased to a single
// worker so its points share one compile and one functional interpretation
// there.
func (c *Coordinator) DoJobs(ctx context.Context, jobs []farm.Job) ([]farm.Result, []error) {
	res := make([]farm.Result, len(jobs))
	errs := make([]error, len(jobs))
	tasks := make([]*ctask, len(jobs))
	pending := make([]int, 0, len(jobs))

	for i, job := range jobs {
		key := farm.Key(job.Workload, job.Point)
		if cyc, en, ok := c.store.Get2(key, farm.EnergyKey(key)); ok {
			c.bump(func(s *coStats) { s.hits++ })
			res[i] = farm.Result{Cycles: cyc, Energy: en}
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return res, errs
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		for _, i := range pending {
			errs[i] = errClosed
		}
		return res, errs
	}
	var fresh []*ctask
	for _, i := range pending {
		job := jobs[i]
		key := farm.Key(job.Workload, job.Point)
		if t, ok := c.inflight[key]; ok {
			c.bump(func(s *coStats) { s.coalesced++ })
			tasks[i] = t
			continue
		}
		t := &ctask{job: job, key: key, done: make(chan struct{})}
		c.inflight[key] = t
		tasks[i] = t
		fresh = append(fresh, t)
		c.bump(func(s *coStats) { s.misses++ })
	}
	byBin := map[string][]*ctask{}
	var order []string
	for _, t := range fresh {
		bk := farm.BinaryKey(t.job.Workload, t.job.Point)
		if _, ok := byBin[bk]; !ok {
			order = append(order, bk)
		}
		byBin[bk] = append(byBin[bk], t)
	}
	for _, bk := range order {
		ts := byBin[bk]
		g := &cgroup{
			w: ts[0].job.Workload, tasks: ts, ctx: ctx,
			lastWorker: -1, finished: make(chan struct{}),
			leaseSeqs: map[int64]struct{}{},
		}
		c.queue = append(c.queue, &dispatchReq{g: g})
	}
	c.mu.Unlock()
	c.cond.Broadcast()

	for _, i := range pending {
		t := tasks[i]
		select {
		case <-t.done:
			res[i], errs[i] = t.res, t.err
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	return res, errs
}

// Drain stops leasing new groups and waits for in-flight leases to finish,
// bounded by ctx. Leases still running when ctx expires are cancelled and
// their groups requeued (counted in GroupsRequeued); a subsequent Close
// fails their waiters and checkpoints everything the finished leases
// merged. Drain leaves the coordinator unable to start new leases — it is
// the first half of shutdown, not a pause.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		return nil
	}
	c.draining = true
	c.mu.Unlock()
	c.cond.Broadcast()

	drained := make(chan struct{})
	go func() {
		c.mu.Lock()
		for c.leases > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		n := len(c.leaseCancels)
		for _, cancel := range c.leaseCancels {
			cancel()
		}
		c.mu.Unlock()
		c.logf("dist: drain timeout, cancelling %d leases", n)
		<-drained
		return ctx.Err()
	}
}

// Close stops the scheduler, cancels outstanding leases, fails queued
// waiters and closes the store (flushing a final checkpoint when durable).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, cancel := range c.leaseCancels {
		cancel()
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	<-c.schedDone

	// Leases unwind quickly once cancelled; wait so nothing touches the
	// store after it closes.
	c.mu.Lock()
	for c.leases > 0 {
		c.cond.Wait()
	}
	queued := c.queue
	c.queue = nil
	for _, req := range queued {
		c.finishGroupLocked(req.g, nil, nil, errClosed)
	}
	c.mu.Unlock()
	return c.store.Close()
}

// finishGroupLocked delivers the outcome of a group exactly once: the first
// finisher (primary lease, hedge twin, or a shutdown path) wins and later
// finishers see done and drop their copy — the single-flight dedup that
// makes hedging safe. results/errs are per-task when non-nil; groupErr
// applies to every task otherwise. Persisting happens here too, so a result
// reaches the journal before any waiter observes it. Caller holds c.mu.
func (c *Coordinator) finishGroupLocked(g *cgroup, results []farm.Result, errs []error, groupErr error) {
	if g.done {
		return
	}
	g.done = true
	close(g.finished)
	// Cancel the group's other outstanding leases (a losing hedge twin, a
	// straggler at shutdown): their workers stop measuring dead work.
	for seq := range g.leaseSeqs {
		if cancel, ok := c.leaseCancels[seq]; ok {
			cancel()
		}
	}
	for _, t := range g.tasks {
		delete(c.inflight, t.key)
	}
	var okCount, failCount, budgetCount, instrSum int64
	for i, t := range g.tasks {
		var err error
		switch {
		case groupErr != nil:
			err = groupErr
		case errs != nil:
			err = errs[i]
		}
		if err == nil && results != nil {
			t.res = results[i]
			okCount++
			instrSum += results[i].Instructions
			if perr := c.store.Put(
				farm.Entry(t.key, t.res.Cycles),
				farm.Entry(farm.EnergyKey(t.key), t.res.Energy),
			); perr != nil {
				c.logf("dist: store append for %s failed: %v", t.key, perr)
			}
		} else {
			t.err = err
			failCount++
			if farm.Classify(err) == farm.ClassBudget {
				budgetCount++
			}
		}
	}
	shared := int64(0)
	if len(g.tasks) > 1 {
		shared = okCount
	}
	c.bump(func(s *coStats) {
		s.groups++
		s.sims += okCount
		s.instrs += instrSum
		s.traceShared += shared
		s.fails += failCount
		s.budget += budgetCount
	})
	for _, t := range g.tasks {
		close(t.done)
	}
}

// Stats snapshots the coordinator's counters tear-free (one statMu
// acquisition), in the same shape the in-process farm reports so /metrics
// and the harness log work unchanged. Workers is the worker-process count;
// compile-cache counters stay zero because compilation happens worker-side.
func (c *Coordinator) Stats() farm.Stats {
	c.statMu.Lock()
	st := farm.Stats{
		Workers:         len(c.workers),
		CacheHits:       c.st.hits,
		CacheMisses:     c.st.misses,
		Coalesced:       c.st.coalesced,
		SimsExecuted:    c.st.sims,
		InstrsSimulated: c.st.instrs,
		Failures:        c.st.fails,
		BudgetOverruns:  c.st.budget,
		TraceSharedSims: c.st.traceShared,
		BinaryGroups:    c.st.groups,

		GroupsDispatched: c.st.dispatched,
		GroupsHedged:     c.st.hedged,
		GroupsRequeued:   c.st.requeued,
		WorkersLive:      c.st.workersLive,
	}
	st.PerWorker = make([]farm.WorkerStats, len(c.workers))
	for i := range st.PerWorker {
		st.PerWorker[i] = farm.WorkerStats{
			Jobs: c.st.workerJobs[i],
			Busy: time.Duration(c.st.workerBusyNanos[i]),
		}
	}
	c.statMu.Unlock()
	st.WallTime = time.Since(c.start)
	return st
}

// Interface assertions: the coordinator is a drop-in measurement backend.
var (
	_ farm.Backend = (*Coordinator)(nil)
	_ farm.Drainer = (*Coordinator)(nil)
)
