package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// Options configures a Coordinator.
type Options struct {
	// Addrs are the worker endpoints ("host:port" or full base URLs) known
	// at construction. At least one is required unless Dynamic is set —
	// a dynamic coordinator may start with an empty fleet and acquire
	// workers through Register (queued work waits for the first one).
	Addrs []string
	// Dynamic permits an empty initial fleet; registration (the control
	// Handler or the Register method) grows it at runtime.
	Dynamic bool
	// Store holds the coordinator's merged measurements; nil means a fresh
	// in-memory store. Workers may keep their own journaled stores, which
	// the coordinator pulls and merges into this one on Checkpoint.
	Store *farm.Store
	// MaxInFlight is the slot budget assumed for workers that did not
	// advertise one (the statically-configured Addrs; 0 = 2). Workers that
	// register advertise their own capacity and get a budget proportional
	// to it.
	MaxInFlight int
	// PullTimeout bounds one round of worker store-delta pulls during
	// Checkpoint and Close (0 = 2s).
	PullTimeout time.Duration
	// LeaseTimeout is the longest silence tolerated on a group's result
	// stream before the lease expires and the group is requeued (0 = 15s).
	// Workers heartbeat well under this.
	LeaseTimeout time.Duration
	// HedgeMin floors the straggler-hedging delay: a group is re-leased to
	// a second worker once it runs past ~p95 of completed group latencies,
	// but never sooner than this (0 = 2s; negative disables hedging).
	HedgeMin time.Duration
	// MaxAttempts bounds failed leases per group before the group's
	// callers see the lease error (0 = 3).
	MaxAttempts int
	// Client performs the HTTP calls; nil means a dedicated client with
	// no overall request timeout (the lease timeout bounds streams).
	Client *http.Client
	// Log receives dispatch and recovery lines; nil silences them.
	Log io.Writer
}

// Coordinator is a farm.Backend that shards measurement batches across
// remote workers. It plans batches into shared-binary groups exactly as the
// in-process farm does, leases whole groups to workers, and merges the
// streamed results into its own durable store — callers cannot tell it
// apart from a local farm except by throughput.
type Coordinator struct {
	opts        Options
	store       *farm.Store
	client      *http.Client
	lease       time.Duration
	hedgeMin    time.Duration
	maxAttempts int
	cap         int

	pull time.Duration

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*dispatchReq
	inflight     map[string]*ctask
	workers      []*workerRef
	leases       int // dispatches currently on the wire
	leaseSeq     int64
	leaseCancels map[int64]context.CancelFunc
	draining     bool
	closed       bool
	schedDone    chan struct{}

	// statMu guards the counters (always acquired after mu when both are
	// held, mirroring the farm's locking order).
	statMu sync.Mutex
	st     coStats
	start  time.Time
}

// coStats are the coordinator's instrumentation counters, all guarded by
// statMu and updated in one critical section per logical event. The
// per-worker slices are indexed like Coordinator.workers and append-only:
// registration grows them (under both locks), removal never shrinks them,
// so a worker's history survives its departure.
type coStats struct {
	hits, misses, coalesced      int64
	sims, instrs, fails, budget  int64
	groups, traceShared          int64
	dispatched, hedged, requeued int64
	localHits                    int64
	merges, mergeConflicts       int64
	workerJobs                   []int64
	workerBusyNanos              []int64
	workerGroups                 []int64
	workerLocalHits              []int64
	// latencies of recently completed group leases (seconds), the input
	// to the p95 hedging threshold.
	latencies []float64
}

// ctask is one in-flight point; all callers for the same key share it.
type ctask struct {
	job  farm.Job
	key  string
	done chan struct{}
	res  farm.Result
	err  error
}

// cgroup is one shared-binary group, the unit of dispatch. All fields
// except the immutable ones are guarded by Coordinator.mu.
type cgroup struct {
	w     workloads.Workload
	tasks []*ctask
	// ctx is the first submitter's context: its cancellation fails the
	// group (later joiners still bail on their own contexts while
	// waiting), exactly like the farm's task ctx.
	ctx context.Context

	attempts   int // failed leases so far
	leases     int // leases currently on the wire for this group
	leaseSeqs  map[int64]struct{}
	onWorkers  map[int]int // active leases per worker index; hedges must land elsewhere
	hedged     bool
	done       bool
	lastWorker int
	finished   chan struct{} // closed when done flips true
}

// dispatchReq is one queue entry: lease this group (again) somewhere.
type dispatchReq struct {
	g     *cgroup
	hedge bool
}

// workerRef is the coordinator's view of one worker process. The worker
// slice is append-only — indices are baked into leases and the stat arrays,
// so a departing worker is flagged removed rather than deleted, and a
// returning address reclaims its old entry.
type workerRef struct {
	addr string
	base string // normalized base URL
	// guarded by Coordinator.mu:
	inflight int
	slots    int // lease budget; registered workers advertise their capacity
	live     bool
	removed  bool // deregistered: no new leases, in-flight leases complete
	// store-delta pull progress: how far into the worker's journaled store
	// (identified by its boot ID) the coordinator has merged.
	storeCursor int
	storeBoot   string
}

var errClosed = errors.New("dist: coordinator closed")

// New starts a coordinator over the given workers. It performs no network
// IO — workers are contacted lazily on first dispatch, so a worker that is
// still starting up costs a retry, not a construction failure.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Addrs) == 0 && !opts.Dynamic {
		return nil, errors.New("dist: no worker addresses")
	}
	c := &Coordinator{
		opts:         opts,
		store:        opts.Store,
		client:       opts.Client,
		lease:        opts.LeaseTimeout,
		hedgeMin:     opts.HedgeMin,
		maxAttempts:  opts.MaxAttempts,
		cap:          opts.MaxInFlight,
		inflight:     map[string]*ctask{},
		leaseCancels: map[int64]context.CancelFunc{},
		schedDone:    make(chan struct{}),
		start:        time.Now(),
	}
	if c.store == nil {
		c.store = farm.MemStore()
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.lease <= 0 {
		c.lease = 15 * time.Second
	}
	if c.hedgeMin == 0 {
		c.hedgeMin = 2 * time.Second
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 3
	}
	if c.cap <= 0 {
		c.cap = 2
	}
	c.pull = opts.PullTimeout
	if c.pull <= 0 {
		c.pull = 2 * time.Second
	}
	// Static addresses did not advertise a capacity; they get the uniform
	// MaxInFlight budget, which is exactly the pre-elastic behavior.
	for _, addr := range opts.Addrs {
		c.workers = append(c.workers, &workerRef{addr: addr, base: baseURL(addr), live: true, slots: c.cap})
	}
	c.st.workerJobs = make([]int64, len(c.workers))
	c.st.workerBusyNanos = make([]int64, len(c.workers))
	c.st.workerGroups = make([]int64, len(c.workers))
	c.st.workerLocalHits = make([]int64, len(c.workers))
	c.cond = sync.NewCond(&c.mu)
	go c.scheduler()
	return c, nil
}

// Register adds a worker to the fleet mid-run (or refreshes one that
// deregistered: the address reclaims its entry and history). slots is the
// worker's advertised capacity — its lease budget for capacity-weighted
// placement; 0 means the coordinator's MaxInFlight default. The worker
// starts receiving leases immediately. Returns the active fleet size.
func (c *Coordinator) Register(addr string, slots int) (int, error) {
	if slots <= 0 {
		slots = c.cap
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errClosed
	}
	found := false
	for _, w := range c.workers {
		if w.addr == addr {
			w.slots = slots
			w.removed = false
			w.live = true
			found = true
			break
		}
	}
	if !found {
		c.workers = append(c.workers, &workerRef{addr: addr, base: baseURL(addr), live: true, slots: slots})
		c.statMu.Lock()
		c.st.workerJobs = append(c.st.workerJobs, 0)
		c.st.workerBusyNanos = append(c.st.workerBusyNanos, 0)
		c.st.workerGroups = append(c.st.workerGroups, 0)
		c.st.workerLocalHits = append(c.st.workerLocalHits, 0)
		c.statMu.Unlock()
	}
	n := c.fleetSizeLocked()
	c.mu.Unlock()
	c.cond.Broadcast() // queued work may now be dispatchable
	c.logf("dist: registered worker %s (slots %d), fleet %d", addr, slots, n)
	return n, nil
}

// Deregister withdraws a worker gracefully: it gets no new leases, in-flight
// leases run to completion, and its store delta is pulled one last time in
// the background while the process is presumably still up. (A worker that
// dies without deregistering is handled by lease expiry instead.) Returns
// the active fleet size; deregistering an unknown address is a no-op.
func (c *Coordinator) Deregister(addr string) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errClosed
	}
	pull := false
	for _, w := range c.workers {
		if w.addr == addr && !w.removed {
			w.removed = true
			pull = w.live
		}
	}
	n := c.fleetSizeLocked()
	c.mu.Unlock()
	c.logf("dist: deregistered worker %s, fleet %d", addr, n)
	if pull {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), c.pull)
			defer cancel()
			c.pullWorker(ctx, addr)
		}()
	}
	return n, nil
}

// fleetSizeLocked counts non-removed workers.
func (c *Coordinator) fleetSizeLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.removed {
			n++
		}
	}
	return n
}

// PullDeltas fetches every reachable fleet member's journaled store delta
// and merges it into the coordinator's store, last-write-wins. The merge is
// idempotent, so a lost cursor (worker reboot, coordinator restart) only
// costs a resend, never a wrong value. Per-worker failures are logged, not
// returned — a dead worker must not block a checkpoint.
func (c *Coordinator) PullDeltas(ctx context.Context) (added, conflicts int) {
	c.mu.Lock()
	var addrs []string
	for _, w := range c.workers {
		if !w.removed && w.live {
			addrs = append(addrs, w.addr)
		}
	}
	c.mu.Unlock()
	var (
		wg  sync.WaitGroup
		tmu sync.Mutex
	)
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			a, cf := c.pullWorker(ctx, addr)
			tmu.Lock()
			added += a
			conflicts += cf
			tmu.Unlock()
		}(addr)
	}
	wg.Wait()
	return added, conflicts
}

// pullWorker pulls one worker's store delta from the coordinator's cursor
// and merges it. The cursor and the worker's boot ID travel with the
// request; a worker that rebooted since the cursor was taken ignores the
// stale cursor and resends everything (Merge skips what the coordinator
// already holds).
func (c *Coordinator) pullWorker(ctx context.Context, addr string) (added, conflicts int) {
	c.mu.Lock()
	var w *workerRef
	for _, cand := range c.workers {
		if cand.addr == addr {
			w = cand
			break
		}
	}
	if w == nil {
		c.mu.Unlock()
		return 0, 0
	}
	base, cursor, boot := w.base, w.storeCursor, w.storeBoot
	c.mu.Unlock()

	u := fmt.Sprintf("%s/v1/store?cursor=%d&boot=%s", base, cursor, url.QueryEscape(boot))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		c.logf("dist: store pull from %s: %v", addr, err)
		return 0, 0
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.logf("dist: store pull from %s: %v", addr, err)
		return 0, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.logf("dist: store pull from %s: %s", addr, resp.Status)
		return 0, 0
	}
	var d StoreDelta
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		c.logf("dist: store pull from %s: %v", addr, err)
		return 0, 0
	}
	if len(d.Entries) > 0 {
		var merr error
		added, conflicts, merr = c.store.Merge(d.Entries)
		if merr != nil {
			c.logf("dist: store merge from %s: %v", addr, merr)
			return 0, 0
		}
		c.bump(func(s *coStats) {
			s.merges++
			s.mergeConflicts += int64(conflicts)
		})
	}
	c.mu.Lock()
	w.storeCursor, w.storeBoot = d.Next, d.Boot
	c.mu.Unlock()
	return added, conflicts
}

func baseURL(addr string) string {
	if len(addr) >= 7 && (addr[:7] == "http://" || (len(addr) >= 8 && addr[:8] == "https://")) {
		return addr
	}
	return "http://" + addr
}

func (c *Coordinator) bump(update func(*coStats)) {
	c.statMu.Lock()
	update(&c.st)
	c.statMu.Unlock()
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.opts.Log != nil {
		fmt.Fprintf(c.opts.Log, format+"\n", args...)
	}
}

// Store exposes the coordinator-owned result store.
func (c *Coordinator) Store() *farm.Store { return c.store }

// Checkpoint pulls every reachable worker's store delta, merges it, and
// flushes the merged store to its durable checkpoint file — so a
// coordinator checkpoint subsumes the fleet's partitioned caches as of that
// instant, and coordinator state survives worker churn.
func (c *Coordinator) Checkpoint() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.pull)
	c.PullDeltas(ctx)
	cancel()
	return c.store.Checkpoint()
}

// Do runs one job through the cache, single-flight and dispatch layers.
func (c *Coordinator) Do(ctx context.Context, job farm.Job) (farm.Result, error) {
	res, errs := c.DoJobs(ctx, []farm.Job{job})
	return res[0], errs[0]
}

// Measure returns the requested response of workload w at point p.
func (c *Coordinator) Measure(ctx context.Context, w workloads.Workload, p doe.Point, resp farm.Response) (float64, error) {
	res, err := c.Do(ctx, farm.Job{Workload: w, Point: p})
	if err != nil {
		return 0, err
	}
	return resp.Value(res), nil
}

// MeasureBatch measures w at every point and returns the responses in input
// order, failing with the error of the earliest failing point — the same
// error selection as the in-process farm, so the planes are
// indistinguishable to callers.
func (c *Coordinator) MeasureBatch(ctx context.Context, w workloads.Workload, points []doe.Point, resp farm.Response) ([]float64, error) {
	jobs := make([]farm.Job, len(points))
	for i, p := range points {
		jobs[i] = farm.Job{Workload: w, Point: p}
	}
	res, errs := c.DoJobs(ctx, jobs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(points))
	for i := range res {
		out[i] = resp.Value(res[i])
	}
	return out, nil
}

// DoJobs plans a batch into shared-binary groups and dispatches them across
// the workers, returning one result and one error per job in input order.
// The grouping is byte-identical to farm.DoJobs' planner: jobs with equal
// farm.BinaryKey form one group, and the whole group is leased to a single
// worker so its points share one compile and one functional interpretation
// there.
func (c *Coordinator) DoJobs(ctx context.Context, jobs []farm.Job) ([]farm.Result, []error) {
	res := make([]farm.Result, len(jobs))
	errs := make([]error, len(jobs))
	tasks := make([]*ctask, len(jobs))
	pending := make([]int, 0, len(jobs))

	for i, job := range jobs {
		key := farm.Key(job.Workload, job.Point)
		if cyc, en, ok := c.store.Get2(key, farm.EnergyKey(key)); ok {
			c.bump(func(s *coStats) { s.hits++ })
			res[i] = farm.Result{Cycles: cyc, Energy: en}
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return res, errs
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		for _, i := range pending {
			errs[i] = errClosed
		}
		return res, errs
	}
	var fresh []*ctask
	for _, i := range pending {
		job := jobs[i]
		key := farm.Key(job.Workload, job.Point)
		if t, ok := c.inflight[key]; ok {
			c.bump(func(s *coStats) { s.coalesced++ })
			tasks[i] = t
			continue
		}
		t := &ctask{job: job, key: key, done: make(chan struct{})}
		c.inflight[key] = t
		tasks[i] = t
		fresh = append(fresh, t)
		c.bump(func(s *coStats) { s.misses++ })
	}
	byBin := map[string][]*ctask{}
	var order []string
	for _, t := range fresh {
		bk := farm.BinaryKey(t.job.Workload, t.job.Point)
		if _, ok := byBin[bk]; !ok {
			order = append(order, bk)
		}
		byBin[bk] = append(byBin[bk], t)
	}
	for _, bk := range order {
		ts := byBin[bk]
		g := &cgroup{
			w: ts[0].job.Workload, tasks: ts, ctx: ctx,
			lastWorker: -1, finished: make(chan struct{}),
			leaseSeqs: map[int64]struct{}{},
			onWorkers: map[int]int{},
		}
		c.queue = append(c.queue, &dispatchReq{g: g})
	}
	c.mu.Unlock()
	c.cond.Broadcast()

	for _, i := range pending {
		t := tasks[i]
		select {
		case <-t.done:
			res[i], errs[i] = t.res, t.err
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	return res, errs
}

// Drain stops leasing new groups and waits for in-flight leases to finish,
// bounded by ctx. Leases still running when ctx expires are cancelled and
// their groups requeued (counted in GroupsRequeued); a subsequent Close
// fails their waiters and checkpoints everything the finished leases
// merged. Drain leaves the coordinator unable to start new leases — it is
// the first half of shutdown, not a pause.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		return nil
	}
	c.draining = true
	c.mu.Unlock()
	c.cond.Broadcast()

	drained := make(chan struct{})
	go func() {
		c.mu.Lock()
		for c.leases > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		n := len(c.leaseCancels)
		for _, cancel := range c.leaseCancels {
			cancel()
		}
		c.mu.Unlock()
		c.logf("dist: drain timeout, cancelling %d leases", n)
		<-drained
		return ctx.Err()
	}
}

// Close stops the scheduler, cancels outstanding leases, fails queued
// waiters and closes the store (flushing a final checkpoint when durable).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, cancel := range c.leaseCancels {
		cancel()
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	<-c.schedDone

	// Leases unwind quickly once cancelled; wait so nothing touches the
	// store after it closes.
	c.mu.Lock()
	for c.leases > 0 {
		c.cond.Wait()
	}
	queued := c.queue
	c.queue = nil
	for _, req := range queued {
		c.finishGroupLocked(req.g, nil, nil, errClosed)
	}
	c.mu.Unlock()
	// Last chance to fold the fleet's partitioned caches into the durable
	// checkpoint; workers already gone were marked dead by their failed
	// leases and are skipped, so this costs at most one pull round.
	ctx, cancel := context.WithTimeout(context.Background(), c.pull)
	c.PullDeltas(ctx)
	cancel()
	return c.store.Close()
}

// finishGroupLocked delivers the outcome of a group exactly once: the first
// finisher (primary lease, hedge twin, or a shutdown path) wins and later
// finishers see done and drop their copy — the single-flight dedup that
// makes hedging safe. results/errs are per-task when non-nil; groupErr
// applies to every task otherwise. Persisting happens here too, so a result
// reaches the journal before any waiter observes it. Caller holds c.mu.
func (c *Coordinator) finishGroupLocked(g *cgroup, results []farm.Result, errs []error, groupErr error) {
	if g.done {
		return
	}
	g.done = true
	close(g.finished)
	// Cancel the group's other outstanding leases (a losing hedge twin, a
	// straggler at shutdown): their workers stop measuring dead work.
	for seq := range g.leaseSeqs {
		if cancel, ok := c.leaseCancels[seq]; ok {
			cancel()
		}
	}
	for _, t := range g.tasks {
		delete(c.inflight, t.key)
	}
	var okCount, failCount, budgetCount, instrSum int64
	for i, t := range g.tasks {
		var err error
		switch {
		case groupErr != nil:
			err = groupErr
		case errs != nil:
			err = errs[i]
		}
		if err == nil && results != nil {
			t.res = results[i]
			okCount++
			instrSum += results[i].Instructions
			if perr := c.store.Put(
				farm.Entry(t.key, t.res.Cycles),
				farm.Entry(farm.EnergyKey(t.key), t.res.Energy),
			); perr != nil {
				c.logf("dist: store append for %s failed: %v", t.key, perr)
			}
		} else {
			t.err = err
			failCount++
			if farm.Classify(err) == farm.ClassBudget {
				budgetCount++
			}
		}
	}
	shared := int64(0)
	if len(g.tasks) > 1 {
		shared = okCount
	}
	c.bump(func(s *coStats) {
		s.groups++
		s.sims += okCount
		s.instrs += instrSum
		s.traceShared += shared
		s.fails += failCount
		s.budget += budgetCount
	})
	for _, t := range g.tasks {
		close(t.done)
	}
}

// Stats snapshots the coordinator's counters, in the same shape the
// in-process farm reports so /metrics and the harness log work unchanged.
// The fleet view (membership, slots, in-flight) is captured under mu and
// the counters under one statMu acquisition, so each group of fields is
// internally tear-free. Workers counts every worker ever seen (the
// PerWorker slice keeps departed workers, flagged Removed, so their history
// survives); compile-cache counters stay zero because compilation happens
// worker-side.
func (c *Coordinator) Stats() farm.Stats {
	type wmeta struct {
		addr            string
		slots, inflight int
		removed         bool
	}
	c.mu.Lock()
	metas := make([]wmeta, len(c.workers))
	live := int64(0)
	for i, w := range c.workers {
		metas[i] = wmeta{addr: w.addr, slots: w.slots, inflight: w.inflight, removed: w.removed}
		if w.live && !w.removed {
			live++
		}
	}
	c.mu.Unlock()

	// Registration appends stat-array entries while holding both locks, so
	// the arrays here are at least as long as the fleet snapshot above.
	c.statMu.Lock()
	st := farm.Stats{
		Workers:         len(metas),
		CacheHits:       c.st.hits,
		CacheMisses:     c.st.misses,
		Coalesced:       c.st.coalesced,
		SimsExecuted:    c.st.sims,
		InstrsSimulated: c.st.instrs,
		Failures:        c.st.fails,
		BudgetOverruns:  c.st.budget,
		TraceSharedSims: c.st.traceShared,
		BinaryGroups:    c.st.groups,

		GroupsDispatched:    c.st.dispatched,
		GroupsHedged:        c.st.hedged,
		GroupsRequeued:      c.st.requeued,
		WorkersLive:         live,
		WorkerLocalHits:     c.st.localHits,
		StoreMerges:         c.st.merges,
		StoreMergeConflicts: c.st.mergeConflicts,
	}
	st.PerWorker = make([]farm.WorkerStats, len(metas))
	for i, m := range metas {
		st.PerWorker[i] = farm.WorkerStats{
			Addr:      m.addr,
			Jobs:      c.st.workerJobs[i],
			Busy:      time.Duration(c.st.workerBusyNanos[i]),
			Slots:     int64(m.slots),
			InFlight:  int64(m.inflight),
			Groups:    c.st.workerGroups[i],
			LocalHits: c.st.workerLocalHits[i],
			Removed:   m.removed,
		}
	}
	c.statMu.Unlock()
	st.WallTime = time.Since(c.start)
	return st
}

// Interface assertions: the coordinator is a drop-in measurement backend.
var (
	_ farm.Backend = (*Coordinator)(nil)
	_ farm.Drainer = (*Coordinator)(nil)
)
