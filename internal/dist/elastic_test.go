package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/workloads"
)

// gatedMeasure blocks each measurement until gate closes (or the lease is
// cancelled), then returns the deterministic stub value — a worker whose
// service time the test controls.
func gatedMeasure(gate chan struct{}, execs *atomic.Int64) farm.MeasureFunc {
	return func(ctx context.Context, job farm.Job) (farm.Result, error) {
		if execs != nil {
			execs.Add(1)
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return farm.Result{}, ctx.Err()
		}
		return farm.Result{Cycles: pointValue(job.Point), Energy: 2 * pointValue(job.Point), Instructions: 1000}, nil
	}
}

// TestRegistrationGrowsAndShrinksFleet pins dynamic membership end to end
// through the control API: a dynamic coordinator starts with no workers and
// queued work, a worker registering over HTTP unblocks it, a second
// registration spreads subsequent load, and a deregistered worker gets no
// further leases while in-flight work still completes.
func TestRegistrationGrowsAndShrinksFleet(t *testing.T) {
	var execs1, execs2 atomic.Int64
	w1 := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(&execs1, 0), Heartbeat: 10 * time.Millisecond})
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	defer w1.Close()
	w2 := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(&execs2, 0), Heartbeat: 10 * time.Millisecond})
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()
	defer w2.Close()

	co, err := New(Options{Dynamic: true, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	control := httptest.NewServer(co.Handler())
	defer control.Close()

	// Work submitted into an empty fleet queues rather than failing.
	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(6, 31)
	batchDone := make(chan error, 1)
	go func() {
		_, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles)
		batchDone <- err
	}()
	select {
	case err := <-batchDone:
		t.Fatalf("batch finished with no workers: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// First worker joins over the wire and the queue drains to it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := RegisterWorker(ctx, control.URL, ts1.URL, 2); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-batchDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch never completed after registration")
	}
	if execs1.Load() != int64(len(points)) {
		t.Fatalf("first worker executed %d of %d points", execs1.Load(), len(points))
	}

	// Second worker joins mid-run; later load reaches it.
	if err := RegisterWorker(ctx, control.URL, ts2.URL, 2); err != nil {
		t.Fatal(err)
	}
	var infos []WorkerInfo
	resp, err := http.Get(control.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 {
		t.Fatalf("fleet view has %d workers, want 2: %+v", len(infos), infos)
	}
	if _, err := co.MeasureBatch(context.Background(), w, randomPoints(12, 32), farm.Cycles); err != nil {
		t.Fatal(err)
	}
	if execs2.Load() == 0 {
		t.Fatal("registered second worker never received work")
	}

	// Deregistering the first worker over the wire stops its leases; the
	// remaining worker carries the next batch alone.
	body, _ := json.Marshal(RegisterRequest{Addr: ts1.URL})
	req, _ := http.NewRequest(http.MethodDelete, control.URL+"/v1/register", bytes.NewReader(body))
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: %s", dresp.Status)
	}
	before := execs1.Load()
	if _, err := co.MeasureBatch(context.Background(), w, randomPoints(8, 33), farm.Cycles); err != nil {
		t.Fatal(err)
	}
	if execs1.Load() != before {
		t.Fatalf("deregistered worker measured %d new points", execs1.Load()-before)
	}
	st := co.Stats()
	if st.WorkersLive != 1 {
		t.Fatalf("workers live = %d, want 1 after deregistration", st.WorkersLive)
	}
	var removed int
	for _, pw := range st.PerWorker {
		if pw.Removed {
			removed++
		}
	}
	if removed != 1 {
		t.Fatalf("%d workers flagged removed, want 1: %+v", removed, st.PerWorker)
	}
}

// TestCapacityWeightedDispatch pins the placement policy: with one 1-slot
// and one 3-slot worker and service time pinned equal, the big worker must
// carry roughly three times the jobs — uniform caps would split them evenly.
func TestCapacityWeightedDispatch(t *testing.T) {
	var small, big atomic.Int64
	ws := NewWorker(WorkerOptions{Workers: 1, Measure: stubMeasure(&small, 20*time.Millisecond), Heartbeat: 10 * time.Millisecond})
	tsS := httptest.NewServer(ws.Handler())
	defer tsS.Close()
	defer ws.Close()
	wb := NewWorker(WorkerOptions{Workers: 3, Measure: stubMeasure(&big, 20*time.Millisecond), Heartbeat: 10 * time.Millisecond})
	tsB := httptest.NewServer(wb.Handler())
	defer tsB.Close()
	defer wb.Close()

	co, err := New(Options{Dynamic: true, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, err := co.Register(tsS.URL, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Register(tsB.URL, 3); err != nil {
		t.Fatal(err)
	}

	// 24 single-point groups with equal service time: the 3-slot worker
	// should complete ~3 for every 1 on the 1-slot worker.
	w := workloads.MustGet("179.art", workloads.Train)
	if _, err := co.MeasureBatch(context.Background(), w, randomPoints(24, 34), farm.Cycles); err != nil {
		t.Fatal(err)
	}
	nSmall, nBig := small.Load(), big.Load()
	if nSmall+nBig != 24 {
		t.Fatalf("fleet executed %d points, want 24", nSmall+nBig)
	}
	if nBig < 2*nSmall {
		t.Fatalf("capacity-weighted placement failed: 3-slot worker got %d, 1-slot got %d (want ≥2×)", nBig, nSmall)
	}
	st := co.Stats()
	if len(st.PerWorker) != 2 || st.PerWorker[0].Slots != 1 || st.PerWorker[1].Slots != 3 {
		t.Fatalf("advertised slots lost: %+v", st.PerWorker)
	}
	if st.PerWorker[0].Groups+st.PerWorker[1].Groups != st.GroupsDispatched {
		t.Fatalf("per-worker groups %d+%d do not sum to dispatched %d",
			st.PerWorker[0].Groups, st.PerWorker[1].Groups, st.GroupsDispatched)
	}
}

// TestHedgeRespectsSlotBudgets is the overcommit regression test: with every
// slot in the fleet occupied, hedge timers firing must not lease (or queue)
// a second copy of any group — a hedge that would overcommit capacity is
// skipped outright, and freed slots go to primary work, never stale hedges.
func TestHedgeRespectsSlotBudgets(t *testing.T) {
	gate1, gate2 := make(chan struct{}), make(chan struct{})
	w1 := NewWorker(WorkerOptions{Workers: 1, Measure: gatedMeasure(gate1, nil), Heartbeat: 10 * time.Millisecond})
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	defer w1.Close()
	w2 := NewWorker(WorkerOptions{Workers: 1, Measure: gatedMeasure(gate2, nil), Heartbeat: 10 * time.Millisecond})
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()
	defer w2.Close()

	co, err := New(Options{
		Addrs:       []string{ts1.URL, ts2.URL},
		MaxInFlight: 1, // one slot per worker: two in-flight groups saturate the fleet
		HedgeMin:    30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	points := sweepPoints(2, 1) // two groups, one per worker
	batchDone := make(chan error, 1)
	go func() {
		_, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles)
		batchDone <- err
	}()
	waitForDispatch(t, co, 2)

	// Both hedge timers fire into a saturated fleet and must stand down.
	time.Sleep(150 * time.Millisecond)
	if st := co.Stats(); st.GroupsHedged != 0 || st.GroupsDispatched != 2 {
		t.Fatalf("saturated fleet: hedged=%d dispatched=%d, want 0/2", st.GroupsHedged, st.GroupsDispatched)
	}

	// Freeing one worker must not resurrect a hedge for the other's group:
	// the hedge opportunity passed while the fleet was saturated.
	close(gate2)
	time.Sleep(100 * time.Millisecond)
	if st := co.Stats(); st.GroupsHedged != 0 {
		t.Fatalf("freed slot was spent on a stale hedge: hedged=%d", st.GroupsHedged)
	}
	close(gate1)
	if err := <-batchDone; err != nil {
		t.Fatal(err)
	}
	st := co.Stats()
	if st.GroupsDispatched != 2 || st.GroupsHedged != 0 {
		t.Fatalf("final: dispatched=%d hedged=%d, want 2/0", st.GroupsDispatched, st.GroupsHedged)
	}
	if st.SimsExecuted != int64(len(points)) {
		t.Fatalf("sims=%d, want %d", st.SimsExecuted, len(points))
	}
}

// TestWarmWorkerStoreSurvivesCoordinatorRestart is the tentpole acceptance
// pin: a worker holding its own journaled store answers a repeat sweep from
// a brand-new coordinator (which lost all coordinator-side state) with zero
// simulations — the partitioned cache, not the coordinator store, carries
// the warmth. The worker's own restart is covered too: a new worker process
// over the same store files is just as warm.
func TestWarmWorkerStoreSurvivesCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "worker-store.json")
	openWorkerStore := func() *farm.Store {
		st, err := farm.Open(storePath, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	var execs atomic.Int64
	wk := NewWorker(WorkerOptions{Workers: 2, Store: openWorkerStore(), Measure: stubMeasure(&execs, 0), Heartbeat: 10 * time.Millisecond})
	ts := httptest.NewServer(wk.Handler())

	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(8, 35)

	co1, err := New(Options{Addrs: []string{ts.URL}, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := co1.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}
	cold := execs.Load()
	if cold != int64(len(points)) {
		t.Fatalf("cold sweep executed %d, want %d", cold, len(points))
	}

	// Coordinator "restarts" with nothing: fresh in-memory store, no cursor
	// state. The sweep repeats bit-identically with zero worker sims.
	co2, err := New(Options{Addrs: []string{ts.URL}, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := co2.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if got[i] != want[i] {
			t.Fatalf("point %d changed across coordinator restart: %v -> %v", i, want[i], got[i])
		}
	}
	if n := execs.Load(); n != cold {
		t.Fatalf("warm sweep simulated: %d executions before, %d after", cold, n)
	}
	st := co2.Stats()
	if st.WorkerLocalHits != int64(len(points)) {
		t.Fatalf("worker local hits = %d, want %d", st.WorkerLocalHits, len(points))
	}
	if len(st.PerWorker) != 1 || st.PerWorker[0].LocalHits != int64(len(points)) {
		t.Fatalf("per-worker local hits: %+v", st.PerWorker)
	}
	if err := co2.Close(); err != nil {
		t.Fatal(err)
	}

	// Worker restart: a new process over the same store files replays its
	// journal and stays warm.
	ts.Close()
	if err := wk.Close(); err != nil {
		t.Fatal(err)
	}
	wk2 := NewWorker(WorkerOptions{Workers: 2, Store: openWorkerStore(), Measure: stubMeasure(&execs, 0), Heartbeat: 10 * time.Millisecond})
	ts2 := httptest.NewServer(wk2.Handler())
	defer ts2.Close()
	defer wk2.Close()
	co3, err := New(Options{Addrs: []string{ts2.URL}, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co3.Close()
	got3, err := co3.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if got3[i] != want[i] {
			t.Fatalf("point %d changed across worker restart: %v -> %v", i, want[i], got3[i])
		}
	}
	if n := execs.Load(); n != cold {
		t.Fatalf("restarted worker simulated: %d executions total, want %d", n, cold)
	}
}

// TestCheckpointMergesWorkerDeltas pins the pull/merge path: a coordinator
// that never dispatched anything inherits a worker's journaled measurements
// through Checkpoint, serves them as cache hits, and re-merging (fresh
// coordinator, lost cursor) is a conflict-free no-op.
func TestCheckpointMergesWorkerDeltas(t *testing.T) {
	dir := t.TempDir()
	wk := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(nil, 0), Heartbeat: 10 * time.Millisecond})
	ts := httptest.NewServer(wk.Handler())
	defer ts.Close()
	defer wk.Close()

	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(6, 36)

	// Populate the worker's local store through a first coordinator.
	co1, err := New(Options{Addrs: []string{ts.URL}, HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := co1.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}

	// A second coordinator with a durable store of its own measures nothing:
	// one checkpoint pulls the worker's whole delta.
	openStore := func() *farm.Store {
		st, err := farm.Open(filepath.Join(dir, "coordinator.json"), nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	co2, err := New(Options{Addrs: []string{ts.URL}, Store: openStore(), HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := co2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := co2.Stats()
	if st.StoreMerges == 0 {
		t.Fatalf("checkpoint pulled no deltas: %+v", st)
	}
	if st.StoreMergeConflicts != 0 {
		t.Fatalf("identical values counted as conflicts: %d", st.StoreMergeConflicts)
	}
	if n := co2.Store().Len(); n != 2*len(points) {
		t.Fatalf("merged store has %d entries, want %d (cycles+energy per point)", n, 2*len(points))
	}
	got, err := co2.MeasureBatch(context.Background(), w, points, farm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if got[i] != want[i] {
			t.Fatalf("merged value diverged at %d: %v -> %v", i, want[i], got[i])
		}
	}
	st = co2.Stats()
	if st.GroupsDispatched != 0 || st.CacheHits != int64(len(points)) {
		t.Fatalf("merged sweep went to the wire: dispatched=%d hits=%d", st.GroupsDispatched, st.CacheHits)
	}
	// The cursor advanced: a second checkpoint pulls an empty delta.
	merges := st.StoreMerges
	if err := co2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st = co2.Stats(); st.StoreMerges != merges {
		t.Fatalf("empty delta counted as a merge: %d -> %d", merges, st.StoreMerges)
	}
	if err := co2.Close(); err != nil {
		t.Fatal(err)
	}

	// Coordinator restart after the merge: journal replay restores every
	// merged entry, and the forced full re-pull (lost cursor) changes
	// nothing — idempotence across restarts.
	co3, err := New(Options{Addrs: []string{ts.URL}, Store: openStore(), HedgeMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer co3.Close()
	if n := co3.Store().Len(); n != 2*len(points) {
		t.Fatalf("restart lost merged entries: %d, want %d", n, 2*len(points))
	}
	if err := co3.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = co3.Stats()
	if st.StoreMergeConflicts != 0 {
		t.Fatalf("re-merge after restart produced conflicts: %d", st.StoreMergeConflicts)
	}
	if n := co3.Store().Len(); n != 2*len(points) {
		t.Fatalf("re-merge changed the store: %d entries, want %d", n, 2*len(points))
	}
}

// TestWorkerKillLosesNothingJournaled pins the crash half of the merge
// semantics: results stream into the coordinator's journal the moment they
// finish, so killing the worker before any checkpoint-time pull loses
// nothing — the pull is an optimization, not the durability path.
func TestWorkerKillLosesNothingJournaled(t *testing.T) {
	dir := t.TempDir()
	wk := NewWorker(WorkerOptions{Workers: 2, Measure: stubMeasure(nil, 0), Heartbeat: 10 * time.Millisecond})
	ts := httptest.NewServer(wk.Handler())
	defer wk.Close()

	storePath := filepath.Join(dir, "coordinator.json")
	st, err := farm.Open(storePath, nil)
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(Options{Addrs: []string{ts.URL}, Store: st, HedgeMin: -1, PullTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	w := workloads.MustGet("179.art", workloads.Train)
	points := randomPoints(5, 37)
	if _, err := co.MeasureBatch(context.Background(), w, points, farm.Cycles); err != nil {
		t.Fatal(err)
	}

	// Kill the worker before any pull; checkpoint and close must still
	// succeed with every measured key durable.
	ts.Close()
	if err := co.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := farm.Open(storePath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, p := range points {
		k := farm.Key(w, p)
		if _, _, ok := re.Get2(k, farm.EnergyKey(k)); !ok {
			t.Fatalf("worker kill lost %s from the coordinator journal", k)
		}
	}
}
