package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Handler returns the coordinator's control API, served on whatever
// listener the embedding process chooses (empirico's -control-addr,
// empiricod's API port):
//
//	POST   /v1/register  {"addr","slots"} — join the fleet (or rejoin/resize)
//	DELETE /v1/register  {"addr"}         — leave gracefully
//	GET    /v1/workers                    — the coordinator's fleet view
//
// Keeping it a plain http.Handler (like Worker.Handler) leaves listener
// lifecycle, TLS and auth to the caller.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", c.handleRegister)
	mux.HandleFunc("DELETE /v1/register", c.handleDeregister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	return mux
}

func (c *Coordinator) handleRegister(rw http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Addr == "" {
		http.Error(rw, "bad register body", http.StatusBadRequest)
		return
	}
	n, err := c.Register(req.Addr, req.Slots)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(RegisterResponse{OK: true, Workers: n})
}

func (c *Coordinator) handleDeregister(rw http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Addr == "" {
		http.Error(rw, "bad deregister body", http.StatusBadRequest)
		return
	}
	n, err := c.Deregister(req.Addr)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(RegisterResponse{OK: true, Workers: n})
}

func (c *Coordinator) handleWorkers(rw http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	infos := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		infos = append(infos, WorkerInfo{
			Addr:     w.addr,
			Slots:    w.slots,
			InFlight: w.inflight,
			Live:     w.live,
			Removed:  w.removed,
		})
	}
	c.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(infos)
}

// RegisterWorker announces a worker to a coordinator's control endpoint,
// retrying until ctx expires — at boot the worker usually comes up before
// (or racing) the coordinator, so transient refusals are expected.
func RegisterWorker(ctx context.Context, coordinator, addr string, slots int) error {
	return controlCall(ctx, http.MethodPost, coordinator, RegisterRequest{Addr: addr, Slots: slots})
}

// DeregisterWorker withdraws a worker from a coordinator; used on graceful
// worker shutdown so the coordinator stops leasing to it and pulls its
// final store delta while the process is still up.
func DeregisterWorker(ctx context.Context, coordinator, addr string) error {
	return controlCall(ctx, http.MethodDelete, coordinator, RegisterRequest{Addr: addr})
}

func controlCall(ctx context.Context, method, coordinator string, body RegisterRequest) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	u := baseURL(coordinator) + "/v1/register"
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("dist: control %s %s: %s: %s", method, u, resp.Status, bytes.TrimSpace(msg))
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return lastErr
			}
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}
