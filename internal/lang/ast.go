package lang

// The MiniC abstract syntax tree. All values are 64-bit integers; arrays are
// one-dimensional and global. Functions take int parameters and return one
// int (a function that falls off the end returns 0).

// Program is a parsed MiniC translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalDecl declares a global scalar (Size == 0) or array (Size > 0, in
// elements). Scalars may have a constant initializer.
type GlobalDecl struct {
	Name string
	Size int64 // 0 for scalar, element count for array
	Init int64 // scalar initial value
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Line   int
}

// Stmt is the statement interface.
type Stmt interface{ stmtNode() }

// BlockStmt is `{ stmts... }`.
type BlockStmt struct {
	Stmts []Stmt
}

// VarDeclStmt is `int x = expr;` (Init may be nil: zero).
type VarDeclStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt is `lhs = expr;` where lhs is a variable or array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
	Line  int
}

// IfStmt is `if (cond) then else else_`.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
}

// ForStmt is `for (init; cond; post) body`. Init/Post may be nil.
type ForStmt struct {
	Init Stmt // VarDeclStmt or AssignStmt
	Cond Expr // nil means true
	Post Stmt // AssignStmt
	Body *BlockStmt
}

// ReturnStmt is `return expr;` (Value may be nil: returns 0).
type ReturnStmt struct {
	Value Expr
	Line  int
}

// BreakStmt is `break;`.
type BreakStmt struct{ Line int }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ Line int }

// ExprStmt is an expression evaluated for side effects (a call).
type ExprStmt struct {
	X Expr
}

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is the expression interface.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct {
	Val int64
}

// VarExpr references a local variable, parameter, or global scalar.
type VarExpr struct {
	Name string
	Line int
}

// IndexExpr is `name[index]` on a global array.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd // short-circuit &&
	OpLOr  // short-circuit ||
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpLAnd: "&&", OpLOr: "||",
}

func (o BinOp) String() string { return binOpNames[o] }

// BinExpr is `x op y`.
type BinExpr struct {
	Op   BinOp
	X, Y Expr
	Line int
}

// UnaryExpr is `-x` or `!x`.
type UnaryExpr struct {
	Neg bool // true: arithmetic negation; false: logical not
	X   Expr
}

// CallExpr is `name(args...)`.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*NumExpr) exprNode()   {}
func (*VarExpr) exprNode()   {}
func (*IndexExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*UnaryExpr) exprNode() {}
func (*CallExpr) exprNode()  {}
