package lang

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back to canonical MiniC source. The output
// reparses to an identical AST (modulo redundant parentheses), which the
// test suite checks by round-tripping randomly generated programs. It is the
// tool of choice for inspecting generated workloads and minimized test
// cases.
func Format(p *Program) string {
	var f printer
	for _, g := range p.Globals {
		if g.Size > 0 {
			fmt.Fprintf(&f.sb, "int %s[%d];\n", g.Name, g.Size)
		} else if g.Init != 0 {
			fmt.Fprintf(&f.sb, "int %s = %d;\n", g.Name, g.Init)
		} else {
			fmt.Fprintf(&f.sb, "int %s;\n", g.Name)
		}
	}
	for i, fn := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			f.sb.WriteByte('\n')
		}
		f.fn(fn)
	}
	return f.sb.String()
}

type printer struct {
	sb    strings.Builder
	depth int
}

func (f *printer) indent() {
	for i := 0; i < f.depth; i++ {
		f.sb.WriteByte('\t')
	}
}

func (f *printer) fn(fn *FuncDecl) {
	params := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = "int " + p
	}
	fmt.Fprintf(&f.sb, "int %s(%s) ", fn.Name, strings.Join(params, ", "))
	f.block(fn.Body)
	f.sb.WriteByte('\n')
}

func (f *printer) block(b *BlockStmt) {
	f.sb.WriteString("{\n")
	f.depth++
	for _, s := range b.Stmts {
		f.stmt(s)
	}
	f.depth--
	f.indent()
	f.sb.WriteString("}")
}

func (f *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		f.indent()
		f.block(s)
		f.sb.WriteByte('\n')
	case *VarDeclStmt:
		f.indent()
		if s.Init != nil {
			fmt.Fprintf(&f.sb, "int %s = %s;\n", s.Name, exprString(s.Init))
		} else {
			fmt.Fprintf(&f.sb, "int %s;\n", s.Name)
		}
	case *AssignStmt:
		f.indent()
		f.sb.WriteString(assignString(s))
		f.sb.WriteString(";\n")
	case *IfStmt:
		f.indent()
		f.ifChain(s)
		f.sb.WriteByte('\n')
	case *WhileStmt:
		f.indent()
		fmt.Fprintf(&f.sb, "while (%s) ", exprString(s.Cond))
		f.block(s.Body)
		f.sb.WriteByte('\n')
	case *ForStmt:
		f.indent()
		f.sb.WriteString("for (")
		if s.Init != nil {
			f.sb.WriteString(simpleStmtString(s.Init))
		}
		f.sb.WriteString("; ")
		if s.Cond != nil {
			f.sb.WriteString(exprString(s.Cond))
		}
		f.sb.WriteString("; ")
		if s.Post != nil {
			f.sb.WriteString(simpleStmtString(s.Post))
		}
		f.sb.WriteString(") ")
		f.block(s.Body)
		f.sb.WriteByte('\n')
	case *ReturnStmt:
		f.indent()
		if s.Value != nil {
			fmt.Fprintf(&f.sb, "return %s;\n", exprString(s.Value))
		} else {
			f.sb.WriteString("return;\n")
		}
	case *BreakStmt:
		f.indent()
		f.sb.WriteString("break;\n")
	case *ContinueStmt:
		f.indent()
		f.sb.WriteString("continue;\n")
	case *ExprStmt:
		f.indent()
		fmt.Fprintf(&f.sb, "%s;\n", exprString(s.X))
	default:
		panic(fmt.Sprintf("lang: cannot format %T", s))
	}
}

// ifChain renders if/else-if/else chains flat instead of nesting blocks.
func (f *printer) ifChain(s *IfStmt) {
	fmt.Fprintf(&f.sb, "if (%s) ", exprString(s.Cond))
	f.block(s.Then)
	for s.Else != nil {
		if len(s.Else.Stmts) == 1 {
			if inner, ok := s.Else.Stmts[0].(*IfStmt); ok {
				fmt.Fprintf(&f.sb, " else if (%s) ", exprString(inner.Cond))
				f.block(inner.Then)
				s = inner
				continue
			}
		}
		f.sb.WriteString(" else ")
		f.block(s.Else)
		return
	}
}

func simpleStmtString(s Stmt) string {
	switch s := s.(type) {
	case *VarDeclStmt:
		if s.Init != nil {
			return fmt.Sprintf("int %s = %s", s.Name, exprString(s.Init))
		}
		return "int " + s.Name
	case *AssignStmt:
		return assignString(s)
	case *ExprStmt:
		return exprString(s.X)
	default:
		panic(fmt.Sprintf("lang: cannot format %T in for clause", s))
	}
}

func assignString(s *AssignStmt) string {
	if s.Index != nil {
		return fmt.Sprintf("%s[%s] = %s", s.Name, exprString(s.Index), exprString(s.Value))
	}
	return fmt.Sprintf("%s = %s", s.Name, exprString(s.Value))
}

// exprString renders an expression fully parenthesized (except atoms), so no
// precedence analysis is needed and the output is unambiguous.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *NumExpr:
		return fmt.Sprintf("%d", e.Val)
	case *VarExpr:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Name, exprString(e.Index))
	case *UnaryExpr:
		if e.Neg {
			return fmt.Sprintf("(-%s)", exprString(e.X))
		}
		return fmt.Sprintf("(!%s)", exprString(e.X))
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(e.X), e.Op, exprString(e.Y))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	default:
		panic(fmt.Sprintf("lang: cannot format %T", e))
	}
}
