package lang

import "fmt"

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return fmt.Errorf("lang: %s: %s", t.Pos(), fmt.Sprintf(format, args...))
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %v, found %v", k, p.cur().Kind)
	}
	return p.next(), nil
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		switch p.cur().Kind {
		case TokLParen:
			fn, err := p.parseFuncRest(name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		case TokLBracket:
			p.next()
			size, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			if size.Val <= 0 {
				return nil, fmt.Errorf("lang: %s: array %q must have positive size", size.Pos(), name.Text)
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, &GlobalDecl{
				Name: name.Text, Size: size.Val, Line: name.Line,
			})
		default:
			g := &GlobalDecl{Name: name.Text, Line: name.Line}
			if p.accept(TokAssign) {
				neg := p.accept(TokMinus)
				v, err := p.expect(TokNumber)
				if err != nil {
					return nil, err
				}
				g.Init = v.Val
				if neg {
					g.Init = -g.Init
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		}
	}
	return prog, nil
}

func (p *Parser) parseFuncRest(name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Line: name.Line}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		for {
			if _, err := p.expect(TokInt); err != nil {
				return nil, err
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pn.Text)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume '}'
	return blk, nil
}

// parseStmt parses one statement including its terminating semicolon where
// applicable.
func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokInt:
		s, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokReturn:
		t := p.next()
		r := &ReturnStmt{Line: t.Line}
		if p.cur().Kind != TokSemi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return r, nil
	case TokBreak:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case TokContinue:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	p.next() // 'int'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{Name: name.Text, Line: name.Line}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

// parseSimpleStmt parses an assignment or expression statement (no semi).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	if p.cur().Kind == TokIdent {
		name := p.cur()
		// Lookahead for assignment forms.
		if p.toks[p.pos+1].Kind == TokAssign {
			p.pos += 2
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.Text, Value: v, Line: name.Line}, nil
		}
		if p.toks[p.pos+1].Kind == TokLBracket {
			// Could be `a[i] = e` or an expression starting with an index.
			save := p.pos
			p.pos += 2
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if p.accept(TokAssign) {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Name: name.Text, Index: idx, Value: v, Line: name.Line}, nil
			}
			p.pos = save // plain expression; reparse
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = &BlockStmt{Stmts: []Stmt{inner}}
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = blk
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	if p.cur().Kind != TokSemi {
		var init Stmt
		var err error
		if p.cur().Kind == TokInt {
			init, err = p.parseVarDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		f.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// Expression parsing, precedence climbing. Lowest to highest:
// || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / % ; unary.

type precLevel struct {
	ops map[TokKind]BinOp
}

var precLevels = []precLevel{
	{map[TokKind]BinOp{TokOrOr: OpLOr}},
	{map[TokKind]BinOp{TokAndAnd: OpLAnd}},
	{map[TokKind]BinOp{TokPipe: OpOr}},
	{map[TokKind]BinOp{TokCaret: OpXor}},
	{map[TokKind]BinOp{TokAmp: OpAnd}},
	{map[TokKind]BinOp{TokEq: OpEq, TokNe: OpNe}},
	{map[TokKind]BinOp{TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe}},
	{map[TokKind]BinOp{TokShl: OpShl, TokShr: OpShr}},
	{map[TokKind]BinOp{TokPlus: OpAdd, TokMinus: OpSub}},
	{map[TokKind]BinOp{TokStar: OpMul, TokSlash: OpDiv, TokPercent: OpRem}},
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *Parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := precLevels[level].ops[p.cur().Kind]
		if !ok {
			return x, nil
		}
		line := p.next().Line
		y, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op, X: x, Y: y, Line: line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Neg: true, X: x}, nil
	case TokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Neg: false, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.next()
		return &NumExpr{Val: t.Val}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		name := p.next()
		switch p.cur().Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{Name: name.Text, Line: name.Line}
			if p.cur().Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name.Text, Index: idx, Line: name.Line}, nil
		}
		return &VarExpr{Name: name.Text, Line: name.Line}, nil
	}
	return nil, p.errf("unexpected %v in expression", p.cur().Kind)
}
