// Package lang implements MiniC, the small C-like source language that the
// benchmark workloads are written in: a lexer, recursive-descent parser, AST
// and semantic checker. MiniC has 64-bit integers, global scalars and
// one-dimensional global arrays, functions, and the usual statement forms —
// enough to express realistic compute kernels while keeping the compiler and
// simulator tractable.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokInt
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi

	// Operators.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp    // &
	TokPipe   // |
	TokCaret  // ^
	TokShl    // <<
	TokShr    // >>
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokEq     // ==
	TokNe     // !=
	TokAndAnd // &&
	TokOrOr   // ||
	TokNot    // !
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokInt: "'int'", TokIf: "'if'", TokElse: "'else'", TokWhile: "'while'",
	TokFor: "'for'", TokReturn: "'return'", TokBreak: "'break'",
	TokContinue: "'continue'", TokLParen: "'('", TokRParen: "')'",
	TokLBrace: "'{'", TokRBrace: "'}'", TokLBracket: "'['",
	TokRBracket: "']'", TokComma: "','", TokSemi: "';'", TokAssign: "'='",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokPercent: "'%'", TokAmp: "'&'", TokPipe: "'|'", TokCaret: "'^'",
	TokShl: "'<<'", TokShr: "'>>'", TokLt: "'<'", TokLe: "'<='",
	TokGt: "'>'", TokGe: "'>='", TokEq: "'=='", TokNe: "'!='",
	TokAndAnd: "'&&'", TokOrOr: "'||'", TokNot: "'!'",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // for TokNumber
	Line int
	Col  int
}

// Pos renders the token position as "line:col".
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

var keywords = map[string]TokKind{
	"int": TokInt, "if": TokIf, "else": TokElse, "while": TokWhile,
	"for": TokFor, "return": TokReturn, "break": TokBreak,
	"continue": TokContinue,
}
