package lang

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("int x = 42; // comment\nx = x + 1;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokInt, TokIdent, TokAssign, TokNumber, TokSemi,
		TokIdent, TokAssign, TokIdent, TokPlus, TokNumber, TokSemi, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("number value = %d, want 42", toks[3].Val)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("<= >= == != << >> && || & | ^ ! < >")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokLe, TokGe, TokEq, TokNe, TokShl, TokShr, TokAndAnd,
		TokOrOr, TokAmp, TokPipe, TokCaret, TokNot, TokLt, TokGt, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeBlockComment(t *testing.T) {
	toks, err := Tokenize("/* multi\nline */ int")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt {
		t.Fatal("block comment not skipped")
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Fatal("expected unterminated comment error")
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize("int @"); err == nil {
		t.Fatal("expected bad character error")
	}
	if _, err := Tokenize("99999999999999999999"); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("int\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("position = %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

const validProgram = `
int N = 10;
int buf[64];

int add(int a, int b) {
	return a + b;
}

int main() {
	int sum = 0;
	for (int i = 0; i < N; i = i + 1) {
		buf[i] = add(i, i * 2);
		sum = sum + buf[i];
	}
	int j = 0;
	while (j < 5) {
		if (buf[j] > 10 && sum != 0) {
			sum = sum - 1;
		} else if (buf[j] < 2) {
			sum = sum + 1;
		} else {
			j = j + 1;
			continue;
		}
		j = j + 1;
	}
	return sum;
}
`

func TestParseValidProgram(t *testing.T) {
	prog, err := Parse(validProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 {
		t.Errorf("globals = %d, want 2", len(prog.Globals))
	}
	if len(prog.Funcs) != 2 {
		t.Errorf("funcs = %d, want 2", len(prog.Funcs))
	}
	if prog.Globals[0].Init != 10 || prog.Globals[0].Size != 0 {
		t.Error("scalar global parsed wrong")
	}
	if prog.Globals[1].Size != 64 {
		t.Error("array global parsed wrong")
	}
	if prog.Func("add") == nil || prog.Func("nosuch") != nil {
		t.Error("Func lookup")
	}
	if err := Check(prog); err != nil {
		t.Fatalf("Check failed: %v", err)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse("int main() { return 2 + 3 * 4; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	bin := ret.Value.(*BinExpr)
	if bin.Op != OpAdd {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*BinExpr); !ok || inner.Op != OpMul {
		t.Fatal("3*4 should bind tighter")
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	prog := MustParse("int main() { return -(1 + 2) * !0; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	bin := ret.Value.(*BinExpr)
	if bin.Op != OpMul {
		t.Fatalf("top = %v, want *", bin.Op)
	}
	if u, ok := bin.X.(*UnaryExpr); !ok || !u.Neg {
		t.Fatal("left should be negation")
	}
	if u, ok := bin.Y.(*UnaryExpr); !ok || u.Neg {
		t.Fatal("right should be logical not")
	}
}

func TestParseNegativeGlobalInit(t *testing.T) {
	prog := MustParse("int g = -7; int main() { return g; }")
	if prog.Globals[0].Init != -7 {
		t.Fatal("negative init")
	}
}

func TestParseForVariants(t *testing.T) {
	MustParse("int main() { for (;;) { break; } return 0; }")
	MustParse("int main() { int i = 0; for (; i < 3;) { i = i + 1; } return i; }")
	MustParse("int a[4]; int main() { for (int i = 0; i < 4; i = i + 1) { a[i] = i; } return 0; }")
}

func TestParseIndexExprNonAssign(t *testing.T) {
	// An index expression used as a value in an expression statement
	// context (via call argument here).
	MustParse("int a[4]; int f(int x) { return x; } int main() { f(a[2]); return a[1] + a[0]; }")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main() { return 1 }",     // missing semi
		"int main() {",                // unterminated block
		"int a[0]; int main(){}",      // zero-size array
		"main() { }",                  // missing type
		"int main() { if x { } }",     // missing parens
		"int main() { return (1; }",   // unbalanced paren
		"int main() { int 3 = 4; }",   // bad decl
		"int main() { x = ; }",        // missing rhs
		"int x; int x; int main(){ }", // dup handled by Check, parse ok
	}
	for i, src := range bad[:8] {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d (%q): expected parse error", i, src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"int x; int x; int main() { return 0; }", "duplicate global"},
		{"int f() { return 0; } int f() { return 1; } int main() { return 0; }", "duplicate function"},
		{"int g; int g() { return 0; } int main() { return 0; }", "collides"},
		{"int f() { return 0; }", "no main"},
		{"int main(int a) { return a; }", "main must take no parameters"},
		{"int f(int a, int a) { return a; } int main() { return 0; }", "duplicate parameter"},
		{"int main() { return y; }", "undefined variable"},
		{"int main() { y = 1; return 0; }", "assignment to undefined"},
		{"int main() { return f(); }", "undefined function"},
		{"int f(int a) { return a; } int main() { return f(); }", "expects 1 args"},
		{"int main() { break; }", "break outside loop"},
		{"int main() { continue; }", "continue outside loop"},
		{"int a[4]; int main() { return a; }", "used without index"},
		{"int x; int main() { return x[0]; }", "not a global array"},
		{"int a[4]; int main() { a = 3; return 0; }", "cannot assign to array"},
		{"int main() { x[0] = 1; return 0; }", "not a global array"},
		{"int main() { int x = 1; int x = 2; return x; }", "redeclared"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Errorf("%q: unexpected parse error %v", c.src, err)
			continue
		}
		err = Check(prog)
		if err == nil {
			t.Errorf("%q: expected check error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestCheckScoping(t *testing.T) {
	// Shadowing in an inner scope is allowed; redeclaring in the same
	// scope is not (covered above).
	MustParse("int main() { int x = 1; { int x = 2; x = x + 1; } return x; }")
	// for-init variable is scoped to the loop.
	src := "int main() { for (int i = 0; i < 3; i = i + 1) { } return i; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err == nil {
		t.Fatal("for-init variable should not escape the loop")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on invalid input")
		}
	}()
	MustParse("not a program")
}

func TestBinOpString(t *testing.T) {
	if OpLAnd.String() != "&&" || OpShl.String() != "<<" {
		t.Fatal("BinOp.String")
	}
}
