package lang

import (
	"fmt"
	"strconv"
)

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine := l.line
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("lang: unterminated block comment starting at line %d", startLine)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if k, ok := keywords[tok.Text]; ok {
			tok.Kind = k
		} else {
			tok.Kind = TokIdent
		}
		return tok, nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peek()) || isLetter(l.peek())) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		v, err := strconv.ParseInt(tok.Text, 0, 64)
		if err != nil {
			return Token{}, fmt.Errorf("lang: %d:%d: bad number %q", tok.Line, tok.Col, tok.Text)
		}
		tok.Kind = TokNumber
		tok.Val = v
		return tok, nil
	}
	l.advance()
	two := func(second byte, ifTwo, ifOne TokKind) TokKind {
		if l.peek() == second {
			l.advance()
			return ifTwo
		}
		return ifOne
	}
	switch c {
	case '(':
		tok.Kind = TokLParen
	case ')':
		tok.Kind = TokRParen
	case '{':
		tok.Kind = TokLBrace
	case '}':
		tok.Kind = TokRBrace
	case '[':
		tok.Kind = TokLBracket
	case ']':
		tok.Kind = TokRBracket
	case ',':
		tok.Kind = TokComma
	case ';':
		tok.Kind = TokSemi
	case '+':
		tok.Kind = TokPlus
	case '-':
		tok.Kind = TokMinus
	case '*':
		tok.Kind = TokStar
	case '/':
		tok.Kind = TokSlash
	case '%':
		tok.Kind = TokPercent
	case '^':
		tok.Kind = TokCaret
	case '=':
		tok.Kind = two('=', TokEq, TokAssign)
	case '!':
		tok.Kind = two('=', TokNe, TokNot)
	case '<':
		if l.peek() == '<' {
			l.advance()
			tok.Kind = TokShl
		} else {
			tok.Kind = two('=', TokLe, TokLt)
		}
	case '>':
		if l.peek() == '>' {
			l.advance()
			tok.Kind = TokShr
		} else {
			tok.Kind = two('=', TokGe, TokGt)
		}
	case '&':
		tok.Kind = two('&', TokAndAnd, TokAmp)
	case '|':
		tok.Kind = two('|', TokOrOr, TokPipe)
	default:
		return Token{}, fmt.Errorf("lang: %d:%d: unexpected character %q", tok.Line, tok.Col, string(c))
	}
	return tok, nil
}

// Tokenize lexes the whole input, including the trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
