package lang

import "fmt"

// Check performs semantic analysis on a parsed program: name resolution,
// arity checking of calls, duplicate-definition detection, and
// break/continue placement. It returns the first error found, or nil.
func Check(prog *Program) error {
	c := &checker{
		globals: map[string]*GlobalDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("lang: line %d: duplicate global %q", g.Line, g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return fmt.Errorf("lang: line %d: duplicate function %q", f.Line, f.Name)
		}
		if _, shadows := c.globals[f.Name]; shadows {
			return fmt.Errorf("lang: line %d: function %q collides with a global", f.Line, f.Name)
		}
		c.funcs[f.Name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return fmt.Errorf("lang: program has no main function")
	}
	if len(c.funcs["main"].Params) != 0 {
		return fmt.Errorf("lang: main must take no parameters")
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	scopes    []map[string]bool // local variable scopes, innermost last
	loopDepth int
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.scopes = []map[string]bool{{}}
	c.loopDepth = 0
	seen := map[string]bool{}
	for _, p := range f.Params {
		if seen[p] {
			return fmt.Errorf("lang: line %d: duplicate parameter %q in %q", f.Line, p, f.Name)
		}
		seen[p] = true
		c.scopes[0][p] = true
	}
	return c.checkBlock(f.Body)
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]bool{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) localDefined(name string) bool {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i][name] {
			return true
		}
	}
	return false
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *VarDeclStmt:
		if s.Init != nil {
			if err := c.checkExpr(s.Init); err != nil {
				return err
			}
		}
		top := c.scopes[len(c.scopes)-1]
		if top[s.Name] {
			return fmt.Errorf("lang: line %d: %q redeclared in this scope", s.Line, s.Name)
		}
		top[s.Name] = true
		return nil
	case *AssignStmt:
		if s.Index != nil {
			g, ok := c.globals[s.Name]
			if !ok || g.Size == 0 {
				return fmt.Errorf("lang: line %d: %q is not a global array", s.Line, s.Name)
			}
			if err := c.checkExpr(s.Index); err != nil {
				return err
			}
		} else if !c.localDefined(s.Name) {
			g, ok := c.globals[s.Name]
			if !ok {
				return fmt.Errorf("lang: line %d: assignment to undefined %q", s.Line, s.Name)
			}
			if g.Size != 0 {
				return fmt.Errorf("lang: line %d: cannot assign to array %q without index", s.Line, s.Name)
			}
		}
		return c.checkExpr(s.Value)
	case *IfStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkBlock(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(s.Body)
	case *ForStmt:
		c.pushScope() // for-init scope
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(s.Body)
	case *ReturnStmt:
		if s.Value != nil {
			return c.checkExpr(s.Value)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return fmt.Errorf("lang: line %d: break outside loop", s.Line)
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return fmt.Errorf("lang: line %d: continue outside loop", s.Line)
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(s.X)
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *NumExpr:
		return nil
	case *VarExpr:
		if c.localDefined(e.Name) {
			return nil
		}
		if g, ok := c.globals[e.Name]; ok {
			if g.Size != 0 {
				return fmt.Errorf("lang: line %d: array %q used without index", e.Line, e.Name)
			}
			return nil
		}
		return fmt.Errorf("lang: line %d: undefined variable %q", e.Line, e.Name)
	case *IndexExpr:
		g, ok := c.globals[e.Name]
		if !ok || g.Size == 0 {
			return fmt.Errorf("lang: line %d: %q is not a global array", e.Line, e.Name)
		}
		return c.checkExpr(e.Index)
	case *BinExpr:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		return c.checkExpr(e.Y)
	case *UnaryExpr:
		return c.checkExpr(e.X)
	case *CallExpr:
		f, ok := c.funcs[e.Name]
		if !ok {
			return fmt.Errorf("lang: line %d: call to undefined function %q", e.Line, e.Name)
		}
		if len(e.Args) != len(f.Params) {
			return fmt.Errorf("lang: line %d: %q expects %d args, got %d",
				e.Line, e.Name, len(f.Params), len(e.Args))
		}
		for _, a := range e.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("lang: unknown expression %T", e)
}

// MustParse parses and checks src, panicking on error. Intended for
// compiled-in workload sources and tests.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	if err := Check(prog); err != nil {
		panic(err)
	}
	return prog
}
