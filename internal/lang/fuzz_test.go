package lang

import (
	"math/rand"
	"testing"
)

// FuzzParse checks the frontend never panics and that anything that parses
// and checks also formats to re-parseable source. Run with `go test -fuzz
// FuzzParse ./internal/lang` for continuous fuzzing; the seeds below run as
// normal tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int a[4]; int main() { a[0] = 1; return a[0]; }",
		"int f(int x) { return x; } int main() { return f(1); }",
		"int main() { for (;;) { break; } return 0; }",
		"int main() { while (1 < 2) { return 3; } return 4; }",
		"int main() { int x = ((1)); return -x; }",
		"int main() { return 1 && 0 || !2; }",
		"int x = -5; int main() { return x % 3; }",
		// Malformed inputs.
		"int",
		"int main( {",
		"int main() { return",
		"}{",
		"int main() { int int = 3; }",
		"int a[]; int main() { return 0; }",
		"/* unterminated",
		"int main() { return 0x; }",
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// A few generated programs as rich seeds.
	for seed := int64(0); seed < 3; seed++ {
		f.Add(GenProgram(rand.New(rand.NewSource(seed))))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := Check(prog); err != nil {
			return
		}
		formatted := Format(prog)
		prog2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output unparseable: %v\n%s", err, formatted)
		}
		if err := Check(prog2); err != nil {
			t.Fatalf("formatted output fails check: %v\n%s", err, formatted)
		}
	})
}
