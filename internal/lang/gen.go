package lang

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram produces a random, semantically valid MiniC program from a
// seeded generator. Generated programs always terminate (loops have bounded
// trip counts) and exercise arithmetic, global arrays, conditionals, nested
// loops and function calls. The compiler test suite uses them for
// differential testing: every optimization configuration must compute the
// same result.
func GenProgram(rng *rand.Rand) string {
	g := &generator{rng: rng}
	return g.program()
}

type generator struct {
	rng    *rand.Rand
	sb     strings.Builder
	arrays []genArray
	scals  []string
	funcs  []genFunc
	locals []string // in-scope locals while emitting a function body
	depth  int
	loops  int
	inLoop int // current loop nesting (calls are only generated outside loops)

	// protected marks live loop induction variables: they may be read but
	// never reassigned, which keeps every generated loop terminating.
	protected map[string]bool
}

type genArray struct {
	name string
	size int
}

type genFunc struct {
	name   string
	params int
}

func (g *generator) program() string {
	nArrays := 1 + g.rng.Intn(3)
	for i := 0; i < nArrays; i++ {
		a := genArray{name: fmt.Sprintf("arr%d", i), size: 16 << g.rng.Intn(4)}
		g.arrays = append(g.arrays, a)
		fmt.Fprintf(&g.sb, "int %s[%d];\n", a.name, a.size)
	}
	nScal := g.rng.Intn(3)
	for i := 0; i < nScal; i++ {
		name := fmt.Sprintf("glob%d", i)
		g.scals = append(g.scals, name)
		fmt.Fprintf(&g.sb, "int %s = %d;\n", name, g.rng.Intn(100)-50)
	}

	nFuncs := g.rng.Intn(3)
	for i := 0; i < nFuncs; i++ {
		g.emitFunc(fmt.Sprintf("fn%d", i), 1+g.rng.Intn(3))
	}
	g.emitMain()
	return g.sb.String()
}

func (g *generator) emitFunc(name string, params int) {
	f := genFunc{name: name, params: params}
	var ps []string
	g.locals = nil
	for i := 0; i < params; i++ {
		p := fmt.Sprintf("p%d", i)
		ps = append(ps, "int "+p)
		g.locals = append(g.locals, p)
	}
	fmt.Fprintf(&g.sb, "int %s(%s) {\n", name, strings.Join(ps, ", "))
	g.depth = 1
	g.block(2 + g.rng.Intn(4))
	g.line("return " + g.expr(2) + ";")
	g.sb.WriteString("}\n")
	g.funcs = append(g.funcs, f) // callable only by later functions: no recursion blowup
}

func (g *generator) emitMain() {
	g.locals = nil
	g.sb.WriteString("int main() {\n")
	g.depth = 1
	// Seed the arrays deterministically so loads are meaningful.
	for _, a := range g.arrays {
		iv := g.fresh()
		g.line(fmt.Sprintf("for (int %s = 0; %s < %d; %s = %s + 1) {", iv, iv, a.size, iv, iv))
		g.depth++
		g.line(fmt.Sprintf("%s[%s] = %s * %d + %d;", a.name, iv, iv, 1+g.rng.Intn(7), g.rng.Intn(13)))
		g.depth--
		g.line("}")
	}
	g.block(4 + g.rng.Intn(6))
	// Fold all state into the result.
	acc := g.fresh()
	g.line("int " + acc + " = 0;")
	for _, a := range g.arrays {
		iv := g.fresh()
		g.line(fmt.Sprintf("for (int %s = 0; %s < %d; %s = %s + 1) {", iv, iv, a.size, iv, iv))
		g.depth++
		g.line(fmt.Sprintf("%s = (%s * 31 + %s[%s]) & 1073741823;", acc, acc, a.name, iv))
		g.depth--
		g.line("}")
	}
	for _, s := range g.scals {
		g.line(fmt.Sprintf("%s = (%s * 17 + %s) & 1073741823;", acc, acc, s))
	}
	for _, l := range g.locals {
		g.line(fmt.Sprintf("%s = (%s ^ %s) & 1073741823;", acc, acc, l))
	}
	g.line("return " + acc + ";")
	g.sb.WriteString("}\n")
}

var genCounter int

func (g *generator) fresh() string {
	genCounter++
	return fmt.Sprintf("v%d", genCounter)
}

func (g *generator) line(s string) {
	g.sb.WriteString(strings.Repeat("\t", g.depth))
	g.sb.WriteString(s)
	g.sb.WriteString("\n")
}

// block emits n statements at the current depth.
func (g *generator) block(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *generator) stmt() {
	switch r := g.rng.Intn(10); {
	case r < 3: // declaration
		v := g.fresh()
		g.line(fmt.Sprintf("int %s = %s;", v, g.expr(2)))
		g.locals = append(g.locals, v)
	case r < 5 && len(g.locals) > 0: // assignment
		v := g.locals[g.rng.Intn(len(g.locals))]
		if g.protected[v] {
			v = g.fresh()
			g.line(fmt.Sprintf("int %s = %s;", v, g.expr(3)))
			g.locals = append(g.locals, v)
			return
		}
		g.line(fmt.Sprintf("%s = %s;", v, g.expr(3)))
	case r < 6 && len(g.arrays) > 0: // array store (masked index: always in range)
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		g.line(fmt.Sprintf("%s[(%s) & %d] = %s;", a.name, g.expr(2), a.size-1, g.expr(2)))
	case r < 8 && g.depth < 4: // if/else
		mark := len(g.locals)
		g.line(fmt.Sprintf("if (%s) {", g.expr(2)))
		g.depth++
		g.block(1 + g.rng.Intn(2))
		g.depth--
		g.locals = g.locals[:mark] // then-branch locals go out of scope
		if g.rng.Intn(2) == 0 {
			g.line("} else {")
			g.depth++
			g.block(1 + g.rng.Intn(2))
			g.depth--
			g.locals = g.locals[:mark]
		}
		g.line("}")
	case r < 9 && g.depth < 3 && g.loops < 6: // bounded for loop
		g.loops++
		mark := len(g.locals)
		iv := g.fresh()
		trip := 1 + g.rng.Intn(16)
		g.line(fmt.Sprintf("for (int %s = 0; %s < %d; %s = %s + 1) {", iv, iv, trip, iv, iv))
		g.depth++
		g.inLoop++
		g.locals = append(g.locals, iv)
		if g.protected == nil {
			g.protected = map[string]bool{}
		}
		g.protected[iv] = true
		g.block(1 + g.rng.Intn(3))
		delete(g.protected, iv)
		g.locals = g.locals[:mark]
		g.inLoop--
		g.depth--
		g.line("}")
	default:
		if len(g.scals) > 0 {
			s := g.scals[g.rng.Intn(len(g.scals))]
			g.line(fmt.Sprintf("%s = %s;", s, g.expr(2)))
		} else {
			v := g.fresh()
			g.line(fmt.Sprintf("int %s = %s;", v, g.expr(2)))
			g.locals = append(g.locals, v)
		}
	}
}

// expr generates an expression of bounded depth.
func (g *generator) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(8) {
	case 0:
		return g.atom()
	case 1: // unary
		return "-(" + g.expr(depth-1) + ")"
	case 2:
		if len(g.arrays) > 0 {
			a := g.arrays[g.rng.Intn(len(g.arrays))]
			return fmt.Sprintf("%s[(%s) & %d]", a.name, g.expr(depth-1), a.size-1)
		}
		return g.atom()
	case 3:
		if len(g.funcs) > 0 && g.inLoop == 0 {
			f := g.funcs[g.rng.Intn(len(g.funcs))]
			var args []string
			for i := 0; i < f.params; i++ {
				args = append(args, g.expr(depth-1))
			}
			return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
		}
		return g.atom()
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">>", "<<"}
		op := ops[g.rng.Intn(len(ops))]
		l, r := g.expr(depth-1), g.expr(depth-1)
		if op == "<<" || op == ">>" {
			// Bounded shift counts keep results portable.
			return fmt.Sprintf("((%s) %s (%d))", l, op, g.rng.Intn(8))
		}
		if op == "*" {
			// Keep magnitudes bounded to avoid overflow-dependent results
			// (Go and MiniC both wrap, so this is just hygiene).
			return fmt.Sprintf("((%s) %s (%s & 255))", l, op, r)
		}
		return fmt.Sprintf("((%s) %s (%s))", l, op, r)
	}
}

func (g *generator) atom() string {
	choices := g.rng.Intn(3)
	switch {
	case choices == 0 && len(g.locals) > 0:
		return g.locals[g.rng.Intn(len(g.locals))]
	case choices == 1 && len(g.scals) > 0:
		return g.scals[g.rng.Intn(len(g.scals))]
	default:
		return fmt.Sprintf("%d", g.rng.Intn(200)-100)
	}
}
