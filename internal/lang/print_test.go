package lang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestFormatSimpleProgram(t *testing.T) {
	src := `
int g = 3;
int a[8];
int add(int x, int y) {
	return x + y;
}
int main() {
	int s = 0;
	for (int i = 0; i < 8; i = i + 1) {
		a[i] = add(i, g);
		if (a[i] > 4) {
			s = s + 1;
		} else if (a[i] == 0) {
			continue;
		} else {
			s = s - 1;
		}
	}
	while (s > 0 && g != 0) {
		s = s - 1;
		if (s == 1) {
			break;
		}
	}
	return s;
}`
	prog := MustParse(src)
	out := Format(prog)
	for _, want := range []string{"int g = 3;", "int a[8];", "else if", "while (", "break;", "continue;"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
	// The output must reparse and check.
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("formatted output does not parse: %v\n%s", err, out)
	}
	if err := Check(prog2); err != nil {
		t.Fatalf("formatted output does not check: %v\n%s", err, out)
	}
}

// TestFormatRoundTripFixpoint checks parse → format → parse → format reaches
// a fixpoint (the second formatting is byte-identical), on randomly
// generated programs.
func TestFormatRoundTripFixpoint(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := GenProgram(rand.New(rand.NewSource(seed)))
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("seed %d: formatted output unparseable: %v\n%s", seed, err, f1)
		}
		if err := Check(p2); err != nil {
			t.Fatalf("seed %d: formatted output fails checking: %v", seed, err)
		}
		f2 := Format(p2)
		if f1 != f2 {
			t.Fatalf("seed %d: formatting is not a fixpoint", seed)
		}
	}
}

// TestFormatPreservesAST verifies the canonical form parses to a deeply
// equal AST (positions aside) for a hand-written program covering all node
// kinds.
func TestFormatPreservesAST(t *testing.T) {
	src := `
int arr[16];
int f(int a) {
	int x = -a;
	x = !x;
	arr[a & 15] = x * 2;
	return arr[(a + 1) & 15];
}
int main() {
	int total = 0;
	for (; total < 5;) {
		total = total + f(total);
	}
	return total;
}`
	p1 := MustParse(src)
	p2 := MustParse(Format(p1))
	stripped1 := stripPositions(p1)
	stripped2 := stripPositions(p2)
	if !reflect.DeepEqual(stripped1, stripped2) {
		t.Fatalf("AST changed across formatting:\n%s", Format(p1))
	}
}

// stripPositions renders the AST structure with line numbers zeroed, via
// Format itself (Format ignores positions), giving a comparable canonical
// string per program.
func stripPositions(p *Program) string { return Format(p) }
