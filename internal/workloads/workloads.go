// Package workloads provides the seven benchmark programs used throughout
// the evaluation, standing in for the paper's SPEC CPU2000 program-input
// pairs. Each MiniC program reproduces the dominant computational character
// of its namesake — compression dictionary matching for gzip, maze routing
// for vpr, rasterization for mesa, neural-network resonance for art, network
// simplex pricing for mcf, an object database for vortex and block sorting
// for bzip2 — at simulator-friendly scale, with deterministic inputs
// generated in-program from a seeded linear congruential generator.
//
// Every workload comes in two input classes mirroring SPEC's train and ref
// sets: same code, different data sizes and seeds.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lang"
)

// InputClass selects the input scale.
type InputClass string

const (
	// Train is the smaller profiling input (the paper builds models on
	// train inputs in the profile-guided scenario of Table 7).
	Train InputClass = "train"
	// Ref is the larger reference input.
	Ref InputClass = "ref"
)

// Workload is one benchmark program at one input class.
type Workload struct {
	Name   string // e.g. "164.gzip"
	Input  string // input label, e.g. "graphic" or "train"
	Class  InputClass
	Source string // MiniC source text
}

// Key returns "name-input", e.g. "179.art-train".
func (w Workload) Key() string { return w.Name + "-" + w.Input }

// parseCache memoizes Parse by source text: parse cost is paid once per
// process per distinct source, and every caller shares one AST. Safe because
// the compiler treats its input as read-only (lowering builds a fresh IR
// program) — TestParseSharedASTImmutable pins that invariant.
var parseCache sync.Map // source string -> *lang.Program

// Parse returns the checked AST of the workload source, memoized per
// distinct source text. It panics on error: workload sources are compiled
// into the binary and covered by tests. Callers must not mutate the result.
func (w Workload) Parse() *lang.Program {
	if p, ok := parseCache.Load(w.Source); ok {
		return p.(*lang.Program)
	}
	p, _ := parseCache.LoadOrStore(w.Source, lang.MustParse(w.Source))
	return p.(*lang.Program)
}

// SourceFunc builds the MiniC source of a benchmark at one input class.
type SourceFunc func(class InputClass) string

// registry is the single lookup table behind Get: the seven seed benchmarks
// register themselves in init, and generated corpora (internal/wlgen) join
// through Register, so both share one resolution path.
var (
	regMu    sync.RWMutex
	registry = map[string]SourceFunc{}
)

// Register adds (or replaces) a benchmark in the lookup table. The seed
// suite registers itself at init; internal/wlgen registers generated
// corpora. Registering an existing name replaces it — corpus regeneration
// under a new generator seed owns its names.
func Register(name string, src SourceFunc) {
	if src == nil {
		panic("workloads: Register with nil source builder")
	}
	regMu.Lock()
	registry[name] = src
	regMu.Unlock()
}

func init() {
	for name, src := range map[string]SourceFunc{
		"164.gzip":   gzipSource,
		"175.vpr":    vprSource,
		"177.mesa":   mesaSource,
		"179.art":    artSource,
		"181.mcf":    mcfSource,
		"255.vortex": vortexSource,
		"256.bzip2":  bzip2Source,
	} {
		Register(name, src)
	}
}

// Names lists the seven seed benchmarks in the paper's order. Registered
// corpora are not included; see Registered for the full table.
func Names() []string {
	return []string{
		"164.gzip", "175.vpr", "177.mesa", "179.art",
		"181.mcf", "255.vortex", "256.bzip2",
	}
}

// Registered lists every benchmark name Get resolves — the seed suite plus
// anything added through Register — in sorted order.
func Registered() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// inputLabel mirrors the paper's program-input naming (Table 3/7).
func inputLabel(name string, class InputClass) string {
	switch name {
	case "164.gzip", "256.bzip2":
		if class == Train {
			return "graphic"
		}
		return "graphic-ref"
	case "175.vpr":
		if class == Train {
			return "route"
		}
		return "route-ref"
	case "255.vortex":
		if class == Train {
			return "lendian1"
		}
		return "lendian1-ref"
	default:
		return string(class)
	}
}

// Get returns the named workload at the given input class, resolving
// through the registry that the seed suite and generated corpora share.
func Get(name string, class InputClass) (Workload, error) {
	regMu.RLock()
	src, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return Workload{
		Name:   name,
		Input:  inputLabel(name, class),
		Class:  class,
		Source: src(class),
	}, nil
}

// MustGet is Get that panics on error.
func MustGet(name string, class InputClass) Workload {
	w, err := Get(name, class)
	if err != nil {
		panic(err)
	}
	return w
}

// All returns the full suite at one input class, in the paper's order.
func All(class InputClass) []Workload {
	var ws []Workload
	for _, n := range Names() {
		ws = append(ws, MustGet(n, class))
	}
	return ws
}
