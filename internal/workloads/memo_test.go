package workloads

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/lang"
)

// TestParseMemoized pins the per-process parse cache: two compiles of the
// same workload must share one AST, so the second Parse is pointer-equal to
// the first — no re-parse.
func TestParseMemoized(t *testing.T) {
	w := MustGet("179.art", Train)
	first := w.Parse()
	if again := w.Parse(); again != first {
		t.Fatal("second Parse returned a fresh AST: parse is not memoized")
	}
	// A second Get of the same workload carries the same source string and
	// must hit the same cache entry.
	if other := MustGet("179.art", Train).Parse(); other != first {
		t.Fatal("Parse of an equal workload missed the cache")
	}
	if ref := MustGet("179.art", Ref).Parse(); ref == first {
		t.Fatal("distinct sources share an AST")
	}
}

// TestParseSharedASTImmutable guards the invariant the cache rests on: the
// compiler treats its input program as read-only (lowering builds a fresh
// IR program), so aggressive compiles of the shared AST leave it deep-equal
// to a fresh parse of the same source.
func TestParseSharedASTImmutable(t *testing.T) {
	w := MustGet("164.gzip", Train)
	shared := w.Parse()
	snapshot := lang.MustParse(w.Source) // private copy, never compiled

	for _, opts := range []compiler.Options{compiler.O2(), compiler.O3()} {
		if _, _, err := compiler.Compile(shared, opts); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(shared, snapshot) {
		t.Fatal("compiling the shared AST mutated it")
	}
}
