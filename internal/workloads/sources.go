package workloads

import "fmt"

// Each source builder emits deterministic MiniC. Input data comes from an
// in-program linear congruential generator so no file I/O substrate is
// needed; train and ref differ in array sizes, trip counts and seeds.

// lcg is the shared pseudo-random helper embedded in every workload.
const lcg = `
int seed = %d;
int rnd() {
	seed = (seed * 1103515245 + 12345) & 2147483647;
	return seed >> 7;
}
`

// gzipSource: LZ77-style greedy dictionary compression — hash-head/prev
// chains, match-length scans, branchy byte handling (164.gzip).
func gzipSource(class InputClass) string {
	n, seed := 12288, 9001
	if class == Ref {
		n, seed = 24576, 77003
	}
	const hsize = 4096
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int data[%[1]d];
int head[%[2]d];
int prev[%[1]d];

int main() {
	int n = %[1]d;
	// Semi-compressible input: periodic structure with sparse noise.
	for (int i = 0; i < n; i = i + 1) {
		int v = (i %% 97) + ((i >> 3) %% 31);
		if (rnd() %% 11 == 0) {
			v = rnd() %% 256;
		}
		data[i] = v %% 256;
	}
	int lits = 0;
	int matches = 0;
	int checksum = 0;
	int pos = 0;
	while (pos < n - 4) {
		int h = (data[pos] * 33 + data[pos + 1] * 7 + data[pos + 2]) & %[3]d;
		int cand = head[h] - 1;
		head[h] = pos + 1;
		prev[pos] = cand + 1;
		int best = 0;
		int chain = 0;
		while (cand >= 0 && chain < 16) {
			int len = 0;
			while (len < 32 && pos + len < n && data[cand + len] == data[pos + len]) {
				len = len + 1;
			}
			if (len > best) {
				best = len;
			}
			cand = prev[cand] - 1;
			chain = chain + 1;
		}
		if (best >= 3) {
			matches = matches + 1;
			checksum = checksum + best * 5;
			pos = pos + best;
		} else {
			lits = lits + 1;
			checksum = checksum ^ data[pos];
			pos = pos + 1;
		}
	}
	return (checksum + matches * 1000 + lits) & 1073741823;
}
`, n, hsize, hsize-1)
}

// vprSource: congestion-aware maze routing on a grid — wavefront expansion
// with a circular queue and per-net congestion updates (175.vpr).
func vprSource(class InputClass) string {
	w, nets, seed := 32, 8, 5501
	if class == Ref {
		w, nets, seed = 40, 12, 31219
	}
	cells := w * w
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int cost[%[1]d];
int dist[%[1]d];
int queue[%[2]d];
int usage[%[1]d];

int route(int src, int sink, int w, int cells) {
	for (int i = 0; i < cells; i = i + 1) {
		dist[i] = 1000000000;
	}
	int qh = 0;
	int qt = 0;
	dist[src] = 0;
	queue[qt] = src;
	qt = qt + 1;
	int qcap = cells * 2;
	while (qh < qt) {
		int cur = queue[qh %% qcap];
		qh = qh + 1;
		if (cur == sink) {
			qh = qt;
		} else {
			int d = dist[cur];
			int x = cur %% w;
			int y = cur / w;
			for (int dir = 0; dir < 4; dir = dir + 1) {
				int nx = x;
				int ny = y;
				if (dir == 0) { nx = x + 1; }
				if (dir == 1) { nx = x - 1; }
				if (dir == 2) { ny = y + 1; }
				if (dir == 3) { ny = y - 1; }
				if (nx >= 0 && nx < w && ny >= 0 && ny < w) {
					int nc = ny * w + nx;
					int nd = d + cost[nc] + usage[nc] * 3;
					if (nd < dist[nc] && qt < qcap) {
						dist[nc] = nd;
						queue[qt %% qcap] = nc;
						qt = qt + 1;
					}
				}
			}
		}
	}
	return dist[sink];
}

int main() {
	int w = %[3]d;
	int cells = %[4]d;
	for (int i = 0; i < cells; i = i + 1) {
		cost[i] = 1 + rnd() %% 4;
		if (rnd() %% 13 == 0) {
			cost[i] = 60;
		}
	}
	int total = 0;
	for (int net = 0; net < %[5]d; net = net + 1) {
		int src = rnd() %% cells;
		int sink = rnd() %% cells;
		int c = route(src, sink, w, cells);
		if (c < 1000000000) {
			total = total + c;
			// Mark congestion along a staircase approximation of the path.
			int x0 = src %% w;
			int y0 = src / w;
			int x1 = sink %% w;
			int y1 = sink / w;
			while (x0 != x1 || y0 != y1) {
				usage[y0 * w + x0] = usage[y0 * w + x0] + 1;
				if (x0 < x1) { x0 = x0 + 1; }
				else if (x0 > x1) { x0 = x0 - 1; }
				else if (y0 < y1) { y0 = y0 + 1; }
				else { y0 = y0 - 1; }
			}
		}
	}
	return total & 1073741823;
}
`, cells, cells*2, w, cells, nets)
}

// mesaSource: software rasterization with edge functions and a depth buffer
// (177.mesa).
func mesaSource(class InputClass) string {
	w, tris, seed := 64, 60, 40087
	if class == Ref {
		w, tris, seed = 80, 100, 52361
	}
	pixels := w * w
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int fb[%[1]d];
int zb[%[1]d];

int edge(int ax, int ay, int bx, int by, int px, int py) {
	return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
}

int main() {
	int w = %[2]d;
	for (int i = 0; i < %[1]d; i = i + 1) {
		zb[i] = 1000000;
	}
	int drawn = 0;
	for (int t = 0; t < %[3]d; t = t + 1) {
		int x0 = rnd() %% w;
		int y0 = rnd() %% w;
		int x1 = (x0 + rnd() %% 24) %% w;
		int y1 = (y0 + rnd() %% 24) %% w;
		int x2 = (x0 + rnd() %% 24) %% w;
		int y2 = (y0 + rnd() %% 24) %% w;
		int z = 1 + rnd() %% 4096;
		int color = rnd() %% 65536;
		// Orient consistently.
		int area = edge(x0, y0, x1, y1, x2, y2);
		if (area < 0) {
			int tx = x1; int ty = y1;
			x1 = x2; y1 = y2;
			x2 = tx; y2 = ty;
			area = -area;
		}
		if (area > 0) {
			int xmin = x0; int xmax = x0;
			int ymin = y0; int ymax = y0;
			if (x1 < xmin) { xmin = x1; }
			if (x2 < xmin) { xmin = x2; }
			if (x1 > xmax) { xmax = x1; }
			if (x2 > xmax) { xmax = x2; }
			if (y1 < ymin) { ymin = y1; }
			if (y2 < ymin) { ymin = y2; }
			if (y1 > ymax) { ymax = y1; }
			if (y2 > ymax) { ymax = y2; }
			// Incremental edge functions: evaluate at the row start, then
			// step by the per-pixel deltas (classic rasterizer setup).
			int d0x = y1 - y0; int d1x = y2 - y1; int d2x = y0 - y2;
			for (int py = ymin; py <= ymax; py = py + 1) {
				int e0 = edge(x0, y0, x1, y1, xmin, py);
				int e1 = edge(x1, y1, x2, y2, xmin, py);
				int e2 = edge(x2, y2, x0, y0, xmin, py);
				for (int px = xmin; px <= xmax; px = px + 1) {
					if (e0 >= 0 && e1 >= 0 && e2 >= 0) {
						int idx = py * w + px;
						int pz = z + (e0 * 7 + e1 * 3) / (area + 1);
						if (pz < zb[idx]) {
							zb[idx] = pz;
							fb[idx] = color ^ (e2 & 255);
							drawn = drawn + 1;
						}
					}
					e0 = e0 - d0x;
					e1 = e1 - d1x;
					e2 = e2 - d2x;
				}
			}
		}
	}
	int check = drawn;
	for (int i = 0; i < %[1]d; i = i + 1) {
		check = (check * 31 + fb[i]) & 1073741823;
	}
	return check;
}
`, pixels, w, tris)
}

// artSource: adaptive-resonance-style neural network — dense dot-product
// inner loops over a weight matrix with winner-take-all updates (179.art).
// Its regular, unrollable inner loop is the subject of the paper's Figure 3.
func artSource(class InputClass) string {
	neurons, in, iters, seed := 32, 128, 28, 60013
	if class == Ref {
		neurons, in, iters, seed = 48, 192, 28, 71993
	}
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int w[%[1]d];
int input[%[2]d];
int act[%[3]d];

int main() {
	int neurons = %[3]d;
	int nin = %[2]d;
	for (int i = 0; i < neurons * nin; i = i + 1) {
		w[i] = rnd() %% 256;
	}
	int recognized = 0;
	int check = 0;
	for (int it = 0; it < %[4]d; it = it + 1) {
		for (int i = 0; i < nin; i = i + 1) {
			input[i] = (rnd() %% 256) + ((it * 53 + i * 11) %% 64);
		}
		// F1 -> F2 propagation: dense dot products.
		for (int j = 0; j < neurons; j = j + 1) {
			int s = 0;
			int base = j * nin;
			for (int i = 0; i < nin; i = i + 1) {
				s = s + w[base + i] * input[i];
			}
			act[j] = s >> 8;
		}
		// Winner take all.
		int win = 0;
		for (int j = 1; j < neurons; j = j + 1) {
			if (act[j] > act[win]) {
				win = j;
			}
		}
		// Vigilance test and resonance update of the winner's weights.
		int vig = act[win] - (act[0] + act[neurons - 1]) / 2;
		if (vig > 0) {
			recognized = recognized + 1;
			int base = win * nin;
			for (int i = 0; i < nin; i = i + 1) {
				w[base + i] = (w[base + i] * 3 + input[i]) / 4;
			}
		}
		check = (check + act[win]) & 1073741823;
	}
	return check + recognized * 1000;
}
`, neurons*in, in, neurons, iters)
}

// mcfSource: network-simplex arc pricing — sweeps over an arc list with
// data-dependent accesses to node potentials far larger than the L1
// (181.mcf, the suite's memory-bound representative).
func mcfSource(class InputClass) string {
	nodes, arcs, iters, seed := 24576, 16384, 2, 81001
	if class == Ref {
		nodes, arcs, iters, seed = 65536, 24576, 3, 90017
	}
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int tail[%[1]d];
int headn[%[1]d];
int cost[%[1]d];
int pot[%[2]d];

int main() {
	int arcs = %[3]d;
	int nodes = %[4]d;
	for (int a = 0; a < arcs; a = a + 1) {
		tail[a] = rnd() %% nodes;
		headn[a] = rnd() %% nodes;
		cost[a] = rnd() %% 1000 - 400;
	}
	for (int v = 0; v < nodes; v = v + 1) {
		pot[v] = rnd() %% 2048;
	}
	int negative = 0;
	int check = 0;
	for (int it = 0; it < %[5]d; it = it + 1) {
		for (int a = 0; a < arcs; a = a + 1) {
			int t = tail[a];
			int h = headn[a];
			int rc = cost[a] + pot[t] - pot[h];
			if (rc < 0) {
				negative = negative + 1;
				pot[h] = pot[h] + rc / 2;
				check = (check - rc) & 1073741823;
			} else {
				check = (check + (rc & 15)) & 1073741823;
			}
		}
	}
	return (check + negative) & 1073741823;
}
`, arcs, nodes, arcs, nodes, iters)
}

// vortexSource: an in-memory object database — chained hash table with
// small accessor and comparison functions on hot lookup paths, making it
// the suite's call-intensive, inlining-sensitive program (255.vortex).
func vortexSource(class InputClass) string {
	records, lookups, seed := 4096, 9000, 33301
	if class == Ref {
		records, lookups, seed = 8192, 14000, 44809
	}
	buckets := 1024
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int buckets[%[1]d];
int keys[%[2]d];
int vals[%[2]d];
int nxt[%[2]d];
int count = 0;

int hashKey(int k) {
	int h = k * 40503;
	h = h ^ (h >> 7);
	return h & %[3]d;
}

int keyAt(int i) {
	return keys[i];
}

int valAt(int i) {
	return vals[i];
}

int insert(int k, int v) {
	int b = hashKey(k);
	int i = count;
	keys[i] = k;
	vals[i] = v;
	nxt[i] = buckets[b];
	buckets[b] = i + 1;
	count = count + 1;
	return i;
}

int lookup(int k) {
	int b = hashKey(k);
	int cur = buckets[b] - 1;
	while (cur >= 0) {
		if (keyAt(cur) == k) {
			return valAt(cur);
		}
		cur = nxt[cur] - 1;
	}
	return -1;
}

int main() {
	int records = %[4]d;
	for (int r = 0; r < records; r = r + 1) {
		insert(rnd() %% (records * 4), r * 3 + 1);
	}
	int hits = 0;
	int sum = 0;
	for (int q = 0; q < %[5]d; q = q + 1) {
		int v = lookup(rnd() %% (records * 4));
		if (v >= 0) {
			hits = hits + 1;
			sum = (sum + v) & 1073741823;
		}
	}
	return (sum + hits * 7) & 1073741823;
}
`, buckets, records, buckets-1, records, lookups)
}

// bzip2Source: block sorting — shell sort over suffix indices with
// data-dependent comparisons, then a move-to-front pass (256.bzip2).
func bzip2Source(class InputClass) string {
	n, seed := 1024, 15101
	if class == Ref {
		n, seed = 1536, 27803
	}
	return fmt.Sprintf(lcg, seed) + fmt.Sprintf(`
int block[%[1]d];
int idx[%[1]d];
int mtf[256];

int cmpSuffix(int a, int b, int n) {
	for (int d = 0; d < 24; d = d + 1) {
		int ca = block[(a + d) %% n];
		int cb = block[(b + d) %% n];
		if (ca != cb) {
			return ca - cb;
		}
	}
	return a - b;
}

int main() {
	int n = %[2]d;
	for (int i = 0; i < n; i = i + 1) {
		int v = (i %% 61) + (i / 61);
		if (rnd() %% 7 == 0) {
			v = rnd() %% 200;
		}
		block[i] = v %% 256;
		idx[i] = i;
	}
	// Shell sort of suffix indices.
	int gap = 1;
	while (gap < n / 3) {
		gap = gap * 3 + 1;
	}
	while (gap >= 1) {
		for (int i = gap; i < n; i = i + 1) {
			int tmp = idx[i];
			int j = i;
			while (j >= gap && cmpSuffix(idx[j - gap], tmp, n) > 0) {
				idx[j] = idx[j - gap];
				j = j - gap;
			}
			idx[j] = tmp;
		}
		gap = gap / 3;
	}
	// Move-to-front of the last column.
	for (int s = 0; s < 256; s = s + 1) {
		mtf[s] = s;
	}
	int check = 0;
	for (int i = 0; i < n; i = i + 1) {
		int c = block[(idx[i] + n - 1) %% n];
		int r = 0;
		while (mtf[r] != c) {
			r = r + 1;
		}
		for (int s = r; s > 0; s = s - 1) {
			mtf[s] = mtf[s - 1];
		}
		mtf[0] = c;
		check = (check * 17 + r) & 1073741823;
	}
	return check;
}
`, n, n)
}
