package workloads

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/sim"
)

func TestAllWorkloadsParse(t *testing.T) {
	for _, class := range []InputClass{Train, Ref} {
		for _, w := range All(class) {
			if w.Parse() == nil {
				t.Errorf("%s: nil AST", w.Key())
			}
		}
	}
}

func TestNamesAndGet(t *testing.T) {
	if len(Names()) != 7 {
		t.Fatal("the suite has seven benchmarks")
	}
	// The registry refactor must preserve the exact error text clients and
	// scripts match on.
	if _, err := Get("999.bogus", Train); err == nil {
		t.Fatal("unknown benchmark should error")
	} else if got, want := err.Error(), `workloads: unknown benchmark "999.bogus"`; got != want {
		t.Errorf("unknown-benchmark error = %q, want %q", got, want)
	}
	w := MustGet("164.gzip", Train)
	if w.Key() != "164.gzip-graphic" {
		t.Errorf("key = %q", w.Key())
	}
	r := MustGet("179.art", Ref)
	if r.Input != "ref" || r.Class != Ref {
		t.Errorf("ref labeling wrong: %+v", r)
	}
}

// run compiles and executes a workload, returning (result, instructions).
func run(t *testing.T, w Workload, opts compiler.Options) (int64, int64) {
	t.Helper()
	prog, _, err := compiler.Compile(w.Parse(), opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", w.Key(), err)
	}
	exe := sim.NewExecutor(prog)
	n, rv, err := exe.Run(200_000_000)
	if err != nil {
		t.Fatalf("%s: run: %v", w.Key(), err)
	}
	return rv, n
}

func TestWorkloadsSemanticsAcrossOptLevels(t *testing.T) {
	everything := compiler.O3()
	everything.UnrollLoops = true
	configs := []compiler.Options{compiler.O0(), compiler.O2(), compiler.O3(), everything}
	for _, w := range All(Train) {
		var ref int64
		for ci, opts := range configs {
			got, n := run(t, w, opts)
			if ci == 0 {
				ref = got
				t.Logf("%-22s result=%-12d dynInstrs(O0)=%d", w.Key(), got, n)
				continue
			}
			if got != ref {
				t.Errorf("%s: config %d result %d != O0 result %d", w.Key(), ci, got, ref)
			}
		}
	}
}

func TestWorkloadScaleBudget(t *testing.T) {
	// Keep the suite simulator-friendly: every train workload should run
	// in under ~5M dynamic instructions at O2, and every ref workload
	// should be larger than its train counterpart.
	for _, name := range Names() {
		wt := MustGet(name, Train)
		wr := MustGet(name, Ref)
		_, nt := run(t, wt, compiler.O2())
		_, nr := run(t, wr, compiler.O2())
		if nt > 5_000_000 {
			t.Errorf("%s train too large: %d dynamic instructions", name, nt)
		}
		if nt < 50_000 {
			t.Errorf("%s train too small: %d dynamic instructions", name, nt)
		}
		if nr <= nt {
			t.Errorf("%s: ref (%d) should exceed train (%d)", name, nr, nt)
		}
		t.Logf("%-12s train=%-10d ref=%d", name, nt, nr)
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w := MustGet("181.mcf", Train)
	a, _ := run(t, w, compiler.O2())
	b, _ := run(t, w, compiler.O2())
	if a != b {
		t.Fatal("workload must be deterministic")
	}
}

func TestRegisterJoinsGetLookupPath(t *testing.T) {
	Register("999.custom", func(class InputClass) string {
		if class == Ref {
			return "int main() { return 2; }\n"
		}
		return "int main() { return 1; }\n"
	})
	w, err := Get("999.custom", Train)
	if err != nil {
		t.Fatalf("registered benchmark not resolvable: %v", err)
	}
	if w.Name != "999.custom" || w.Class != Train || w.Input != "train" {
		t.Errorf("workload fields wrong: %+v", w)
	}
	if r := MustGet("999.custom", Ref); r.Source == w.Source {
		t.Error("source builder must see the input class")
	}
	found := false
	for _, n := range Registered() {
		if n == "999.custom" {
			found = true
		}
	}
	if !found {
		t.Error("Registered() misses a registered name")
	}
	// The seed suite stays exactly the paper's seven.
	if len(Names()) != 7 {
		t.Error("Register must not grow the seed suite")
	}
}
