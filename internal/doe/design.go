package doe

import (
	"math/rand"

	"repro/internal/linalg"
)

// Expansion selects the regression model whose information matrix the
// D-optimality criterion targets.
type Expansion uint8

const (
	// ExpandLinear uses intercept + main effects.
	ExpandLinear Expansion = iota
	// ExpandInteractions adds all two-factor interaction terms, matching
	// the linear models of the paper (Equation 2).
	ExpandInteractions
)

// NumTerms returns the length of an expanded row for k variables.
func (e Expansion) NumTerms(k int) int {
	if e == ExpandInteractions {
		return 1 + k + k*(k-1)/2
	}
	return 1 + k
}

// ExpandCoded maps coded coordinates to a regression row: intercept, main
// effects, and (for ExpandInteractions) products x_i*x_j with i < j.
func ExpandCoded(coded []float64, e Expansion) []float64 {
	k := len(coded)
	row := make([]float64, 0, e.NumTerms(k))
	row = append(row, 1)
	row = append(row, coded...)
	if e == ExpandInteractions {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				row = append(row, coded[i]*coded[j])
			}
		}
	}
	return row
}

// Design is a selected set of design points with their expanded rows.
type Design struct {
	Space     *Space
	Points    []Point
	Expansion Expansion
}

// Matrix returns the expanded design matrix.
func (d *Design) Matrix() *linalg.Matrix {
	rows := make([][]float64, len(d.Points))
	for i, p := range d.Points {
		rows[i] = ExpandCoded(d.Space.Code(p), d.Expansion)
	}
	return linalg.FromRows(rows)
}

// LogDet returns log det(XᵀX) of the design's information matrix.
func (d *Design) LogDet() float64 { return linalg.LogDetGram(d.Matrix()) }

// DOptions tunes the Fedorov exchange search.
type DOptions struct {
	Candidates int // candidate pool size (default 10x design size)
	MaxSweeps  int // exchange sweeps (default 20)
	Expansion  Expansion
}

// DOptimal selects an n-point D-optimal design from a candidate pool using
// Fedorov's exchange algorithm with Sherman–Morrison dispersion updates.
// Candidates are drawn by Latin hypercube sampling from the space; pass a
// seeded rng for reproducibility.
func DOptimal(space *Space, n int, rng *rand.Rand, opt DOptions) *Design {
	return dOptimal(space, nil, n, rng, opt)
}

// AugmentDOptimal extends an existing design with nAdd additional D-optimal
// points, leaving the existing points fixed — the extensibility property the
// paper highlights for iterative refinement.
func AugmentDOptimal(space *Space, existing []Point, nAdd int, rng *rand.Rand, opt DOptions) *Design {
	return dOptimal(space, existing, nAdd, rng, opt)
}

func dOptimal(space *Space, fixed []Point, n int, rng *rand.Rand, opt DOptions) *Design {
	if opt.Candidates == 0 {
		opt.Candidates = 10 * (n + len(fixed))
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 20
	}
	cands := space.LatinHypercube(opt.Candidates, rng)
	// Candidate rows.
	crows := make([][]float64, len(cands))
	for i, p := range cands {
		crows[i] = ExpandCoded(space.Code(p), opt.Expansion)
	}
	frows := make([][]float64, len(fixed))
	for i, p := range fixed {
		frows[i] = ExpandCoded(space.Code(p), opt.Expansion)
	}
	k := opt.Expansion.NumTerms(space.NumVars())

	// Initial selection: first n of a random permutation.
	sel := rng.Perm(len(cands))[:n]

	// Dispersion matrix D = (XᵀX + εI)⁻¹ over fixed + selected rows.
	computeD := func() *linalg.Matrix {
		g := linalg.NewMatrix(k, k)
		addOuter := func(row []float64) {
			for i := 0; i < k; i++ {
				if row[i] == 0 {
					continue
				}
				gi := g.Row(i)
				for j := 0; j < k; j++ {
					gi[j] += row[i] * row[j]
				}
			}
		}
		for _, r := range frows {
			addOuter(r)
		}
		for _, ci := range sel {
			addOuter(crows[ci])
		}
		for i := 0; i < k; i++ {
			g.Set(i, i, g.At(i, i)+1e-6)
		}
		inv, err := linalg.Inverse(g)
		if err != nil {
			// ε-regularized matrix should always invert; fall back to
			// stronger ridge if numerical trouble appears.
			for i := 0; i < k; i++ {
				g.Set(i, i, g.At(i, i)+1e-3)
			}
			inv, _ = linalg.Inverse(g)
		}
		return inv
	}

	quad := func(d *linalg.Matrix, x, y []float64) float64 {
		// xᵀ D y
		s := 0.0
		for i := 0; i < k; i++ {
			if x[i] == 0 {
				continue
			}
			di := d.Row(i)
			t := 0.0
			for j := 0; j < k; j++ {
				t += di[j] * y[j]
			}
			s += x[i] * t
		}
		return s
	}

	inDesign := make([]bool, len(cands))
	for _, ci := range sel {
		inDesign[ci] = true
	}

	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		d := computeD() // fresh each sweep: bounds SM drift
		improved := false
		for si, out := range sel {
			xj := crows[out]
			dj := quad(d, xj, xj)
			bestDelta, bestC := 1e-9, -1
			for ci := range cands {
				if inDesign[ci] {
					continue
				}
				x := crows[ci]
				dx := quad(d, x, x)
				dxj := quad(d, x, xj)
				delta := dx - (dx*dj - dxj*dxj) - dj
				if delta > bestDelta {
					bestDelta, bestC = delta, ci
				}
			}
			if bestC < 0 {
				continue
			}
			// Swap: add bestC, remove out; update D by Sherman–Morrison.
			add := crows[bestC]
			d = smUpdate(d, add, +1, k)
			d = smUpdate(d, xj, -1, k)
			inDesign[out] = false
			inDesign[bestC] = true
			sel[si] = bestC
			improved = true
		}
		if !improved {
			break
		}
	}

	pts := make([]Point, n)
	for i, ci := range sel {
		pts[i] = cands[ci]
	}
	all := append(append([]Point{}, fixed...), pts...)
	return &Design{Space: space, Points: all, Expansion: opt.Expansion}
}

// smUpdate applies the Sherman–Morrison update for adding (sign=+1) or
// removing (sign=-1) row x from the information matrix: given D=(XᵀX)⁻¹,
// returns (XᵀX ± xxᵀ)⁻¹.
func smUpdate(d *linalg.Matrix, x []float64, sign float64, k int) *linalg.Matrix {
	dx := d.MulVec(x)
	denom := 1.0
	for i := range x {
		denom += sign * x[i] * dx[i]
	}
	if denom == 0 {
		return d // degenerate; next sweep recomputes from scratch
	}
	out := d.Clone()
	scale := sign / denom
	for i := 0; i < k; i++ {
		oi := out.Row(i)
		for j := 0; j < k; j++ {
			oi[j] -= scale * dx[i] * dx[j]
		}
	}
	return out
}
