package doe

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/par"
)

// Expansion selects the regression model whose information matrix the
// D-optimality criterion targets.
type Expansion uint8

const (
	// ExpandLinear uses intercept + main effects.
	ExpandLinear Expansion = iota
	// ExpandInteractions adds all two-factor interaction terms, matching
	// the linear models of the paper (Equation 2).
	ExpandInteractions
)

// NumTerms returns the length of an expanded row for k variables.
func (e Expansion) NumTerms(k int) int {
	if e == ExpandInteractions {
		return 1 + k + k*(k-1)/2
	}
	return 1 + k
}

// ExpandCoded maps coded coordinates to a regression row: intercept, main
// effects, and (for ExpandInteractions) products x_i*x_j with i < j.
func ExpandCoded(coded []float64, e Expansion) []float64 {
	return ExpandCodedInto(coded, e, make([]float64, 0, e.NumTerms(len(coded))))
}

// ExpandCodedInto is ExpandCoded appending into dst[:0] (grown if needed),
// for callers that reuse a row buffer across evaluations. The arithmetic is
// identical, so results are bit-for-bit those of ExpandCoded.
func ExpandCodedInto(coded []float64, e Expansion, dst []float64) []float64 {
	k := len(coded)
	row := dst[:0]
	row = append(row, 1)
	row = append(row, coded...)
	if e == ExpandInteractions {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				row = append(row, coded[i]*coded[j])
			}
		}
	}
	return row
}

// Design is a selected set of design points with their expanded rows.
type Design struct {
	Space     *Space
	Points    []Point
	Expansion Expansion
}

// Matrix returns the expanded design matrix.
func (d *Design) Matrix() *linalg.Matrix {
	rows := make([][]float64, len(d.Points))
	for i, p := range d.Points {
		rows[i] = ExpandCoded(d.Space.Code(p), d.Expansion)
	}
	return linalg.FromRows(rows)
}

// LogDet returns log det(XᵀX) of the design's information matrix.
func (d *Design) LogDet() float64 { return linalg.LogDetGram(d.Matrix()) }

// DOptions tunes the Fedorov exchange search.
type DOptions struct {
	// Candidates is the LHS candidate-pool size (default 10x the design
	// size). Values smaller than the requested design size are clamped up
	// to it: the selection needs at least n distinct candidates.
	Candidates int
	// MaxSweeps is the number of exchange sweeps (default 20). The zero
	// value means "default", so it cannot request no sweeps; pass a
	// negative value for an explicit zero (the initial random selection
	// is returned unimproved).
	MaxSweeps int
	Expansion Expansion
	// Workers bounds the exchange scan and variance-update concurrency
	// (0 = GOMAXPROCS, 1 = serial). The selected design is bit-for-bit
	// identical for every value: per-candidate deltas depend only on
	// shared read-only state and the winner is taken in candidate order.
	Workers int
}

func (o DOptions) withDefaults(n, fixed int) DOptions {
	if o.Candidates == 0 {
		o.Candidates = 10 * (n + fixed)
	}
	if o.Candidates < n {
		o.Candidates = n
	}
	switch {
	case o.MaxSweeps == 0:
		o.MaxSweeps = 20
	case o.MaxSweeps < 0:
		o.MaxSweeps = 0
	}
	return o
}

// DOptimal selects an n-point D-optimal design from a candidate pool using
// Fedorov's exchange algorithm with Sherman–Morrison dispersion updates.
// Candidates are drawn by Latin hypercube sampling from the space; pass a
// seeded rng for reproducibility.
//
// The exchange loop is incremental: every candidate's variance d(x) = xᵀDx
// is cached and updated in O(k) per swap, so a sweep costs O(n·Nc·k + k³)
// instead of the O(n·Nc·k²) of the textbook loop (see DOptimalRef).
func DOptimal(space *Space, n int, rng *rand.Rand, opt DOptions) *Design {
	return dOptimal(space, nil, n, rng, opt)
}

// AugmentDOptimal extends an existing design with nAdd additional D-optimal
// points, leaving the existing points fixed — the extensibility property the
// paper highlights for iterative refinement.
func AugmentDOptimal(space *Space, existing []Point, nAdd int, rng *rand.Rand, opt DOptions) *Design {
	return dOptimal(space, existing, nAdd, rng, opt)
}

// exchangeState is the shared setup of the incremental and reference
// Fedorov loops: candidate pool, expanded rows, and the initial selection.
type exchangeState struct {
	cands    []Point
	crows    [][]float64
	frows    [][]float64
	k        int
	sel      []int
	inDesign []bool
}

func newExchangeState(space *Space, fixed []Point, n int, rng *rand.Rand, opt DOptions) *exchangeState {
	cands := space.LatinHypercube(opt.Candidates, rng)
	st := &exchangeState{
		cands: cands,
		crows: make([][]float64, len(cands)),
		frows: make([][]float64, len(fixed)),
		k:     opt.Expansion.NumTerms(space.NumVars()),
	}
	for i, p := range cands {
		st.crows[i] = ExpandCoded(space.Code(p), opt.Expansion)
	}
	for i, p := range fixed {
		st.frows[i] = ExpandCoded(space.Code(p), opt.Expansion)
	}
	// Initial selection: first n of a random permutation.
	st.sel = rng.Perm(len(cands))[:n]
	st.inDesign = make([]bool, len(cands))
	for _, ci := range st.sel {
		st.inDesign[ci] = true
	}
	return st
}

// computeD returns the dispersion matrix D = (XᵀX + εI)⁻¹ over the fixed
// and currently selected rows.
func (st *exchangeState) computeD() *linalg.Matrix {
	k := st.k
	g := linalg.NewMatrix(k, k)
	addOuter := func(row []float64) {
		for i := 0; i < k; i++ {
			if row[i] == 0 {
				continue
			}
			gi := g.Row(i)
			for j := 0; j < k; j++ {
				gi[j] += row[i] * row[j]
			}
		}
	}
	for _, r := range st.frows {
		addOuter(r)
	}
	for _, ci := range st.sel {
		addOuter(st.crows[ci])
	}
	for i := 0; i < k; i++ {
		g.Set(i, i, g.At(i, i)+1e-6)
	}
	inv, err := linalg.Inverse(g)
	if err != nil {
		// ε-regularized matrix should always invert; fall back to
		// stronger ridge if numerical trouble appears.
		for i := 0; i < k; i++ {
			g.Set(i, i, g.At(i, i)+1e-3)
		}
		inv, _ = linalg.Inverse(g)
	}
	return inv
}

func (st *exchangeState) design(space *Space, fixed []Point, opt DOptions) *Design {
	pts := make([]Point, len(st.sel))
	for i, ci := range st.sel {
		pts[i] = st.cands[ci]
	}
	all := append(append([]Point{}, fixed...), pts...)
	return &Design{Space: space, Points: all, Expansion: opt.Expansion}
}

func quad(d *linalg.Matrix, x, y []float64, k int) float64 {
	// xᵀ D y
	s := 0.0
	for i := 0; i < k; i++ {
		if x[i] == 0 {
			continue
		}
		di := d.Row(i)
		t := 0.0
		for j := 0; j < k; j++ {
			t += di[j] * y[j]
		}
		s += x[i] * t
	}
	return s
}

func dOptimal(space *Space, fixed []Point, n int, rng *rand.Rand, opt DOptions) *Design {
	opt = opt.withDefaults(n, len(fixed))
	st := newExchangeState(space, fixed, n, rng, opt)
	k, crows, cands := st.k, st.crows, st.cands

	// Per-candidate variances d(x) = xᵀDx, kept current across swaps so the
	// inner scan is O(k) per candidate instead of O(k²).
	dvals := make([]float64, len(cands))
	var d *linalg.Matrix
	refresh := func() {
		d = st.computeD()
		par.For(len(cands), opt.Workers, func(ci int) {
			dvals[ci] = quad(d, crows[ci], crows[ci], k)
		})
	}

	u := make([]float64, k) // scratch: D·x of the row being swapped in/out
	// applyUpdate folds row x into D by an in-place Sherman–Morrison
	// rank-one update (sign +1 adds the row, −1 removes it) and refreshes
	// every cached variance in O(k) each:
	//
	//	D' = D − (sign/denom)·(Dx)(Dx)ᵀ,  denom = 1 + sign·xᵀDx
	//	d'(y) = d(y) − (sign/denom)·(yᵀDx)²
	//
	// Returns false on a degenerate denominator (caller recomputes from
	// scratch).
	applyUpdate := func(x []float64, sign float64) bool {
		for i := 0; i < k; i++ {
			u[i] = linalg.Dot(d.Row(i), x)
		}
		denom := 1 + sign*linalg.Dot(x, u)
		if math.Abs(denom) < 1e-12 {
			return false
		}
		scale := sign / denom
		par.For(k, opt.Workers, func(i int) {
			if u[i] == 0 {
				return
			}
			di := d.Row(i)
			s := scale * u[i]
			for j := 0; j < k; j++ {
				di[j] -= s * u[j]
			}
		})
		par.For(len(cands), opt.Workers, func(ci int) {
			w := linalg.Dot(crows[ci], u)
			dvals[ci] -= scale * w * w
		})
		return true
	}

	deltas := make([]float64, len(cands))
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		refresh() // fresh each sweep: bounds SM drift
		improved := false
		for si, out := range st.sel {
			xj := crows[out]
			for i := 0; i < k; i++ {
				u[i] = linalg.Dot(d.Row(i), xj)
			}
			dj := dvals[out]
			par.For(len(cands), opt.Workers, func(ci int) {
				if st.inDesign[ci] {
					return
				}
				dx := dvals[ci]
				dxj := linalg.Dot(crows[ci], u)
				deltas[ci] = dx - (dx*dj - dxj*dxj) - dj
			})
			bestDelta, bestC := 1e-9, -1
			for ci := range cands {
				if st.inDesign[ci] {
					continue
				}
				if deltas[ci] > bestDelta {
					bestDelta, bestC = deltas[ci], ci
				}
			}
			if bestC < 0 {
				continue
			}
			// Swap: add bestC, remove out; update D and the cached
			// variances in place.
			ok := applyUpdate(crows[bestC], +1) && applyUpdate(xj, -1)
			st.inDesign[out] = false
			st.inDesign[bestC] = true
			st.sel[si] = bestC
			improved = true
			if !ok {
				refresh() // degenerate update: rebuild D for the new selection
			}
		}
		if !improved {
			break
		}
	}
	return st.design(space, fixed, opt)
}

// DOptimalRef is the pre-incremental Fedorov exchange loop: it recomputes
// every candidate's variance with a full O(k²) quadratic form per position
// and clones the dispersion matrix on each Sherman–Morrison update. It is
// retained as the reference implementation — equivalence tests compare its
// selections against DOptimal's, and BenchmarkDOptimal reports the
// incremental loop's speedup over it.
func DOptimalRef(space *Space, n int, rng *rand.Rand, opt DOptions) *Design {
	opt = opt.withDefaults(n, 0)
	st := newExchangeState(space, nil, n, rng, opt)
	k, crows, cands := st.k, st.crows, st.cands

	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		d := st.computeD()
		improved := false
		for si, out := range st.sel {
			xj := crows[out]
			dj := quad(d, xj, xj, k)
			bestDelta, bestC := 1e-9, -1
			for ci := range cands {
				if st.inDesign[ci] {
					continue
				}
				x := crows[ci]
				dx := quad(d, x, x, k)
				dxj := quad(d, x, xj, k)
				delta := dx - (dx*dj - dxj*dxj) - dj
				if delta > bestDelta {
					bestDelta, bestC = delta, ci
				}
			}
			if bestC < 0 {
				continue
			}
			d = smUpdate(d, crows[bestC], +1, k)
			d = smUpdate(d, xj, -1, k)
			st.inDesign[out] = false
			st.inDesign[bestC] = true
			st.sel[si] = bestC
			improved = true
		}
		if !improved {
			break
		}
	}
	return st.design(space, nil, opt)
}

// smUpdate applies the Sherman–Morrison update for adding (sign=+1) or
// removing (sign=-1) row x from the information matrix: given D=(XᵀX)⁻¹,
// returns (XᵀX ± xxᵀ)⁻¹ as a fresh matrix. Only the reference loop uses
// it; the incremental loop updates in place.
func smUpdate(d *linalg.Matrix, x []float64, sign float64, k int) *linalg.Matrix {
	dx := d.MulVec(x)
	denom := 1.0
	for i := range x {
		denom += sign * x[i] * dx[i]
	}
	if denom == 0 {
		return d // degenerate; next sweep recomputes from scratch
	}
	out := d.Clone()
	scale := sign / denom
	for i := 0; i < k; i++ {
		oi := out.Row(i)
		for j := 0; j < k; j++ {
			oi[j] -= scale * dx[i] * dx[j]
		}
	}
	return out
}
