package doe

import (
	"math"
	"math/rand"
	"testing"
)

func samePoints(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Regression test: a candidate pool smaller than the design size used to
// panic in the initial selection (rng.Perm(len(cands))[:n]); it must now be
// clamped up to n.
func TestDOptimalCandidatesClampedToDesignSize(t *testing.T) {
	s := MicroarchSpace()
	des := DOptimal(s, 12, rand.New(rand.NewSource(1)),
		DOptions{Candidates: 5, Expansion: ExpandLinear})
	if len(des.Points) != 12 {
		t.Fatalf("design size %d, want 12", len(des.Points))
	}
	for _, p := range des.Points {
		if err := s.Validate(p); err != nil {
			t.Fatal(err)
		}
	}
	// Augmentation clamps against the added block size, not the total.
	aug := AugmentDOptimal(s, des.Points, 8, rand.New(rand.NewSource(2)),
		DOptions{Candidates: 3, Expansion: ExpandLinear})
	if len(aug.Points) != 20 {
		t.Fatalf("augmented size %d, want 20", len(aug.Points))
	}
}

// The exchange scan is parallelized, but per-candidate deltas land in their
// own slots and the winner is picked by a serial in-order scan — so the
// selected design must be bit-for-bit identical at any worker count.
func TestDOptimalParallelMatchesSerial(t *testing.T) {
	s := JointSpace()
	opts := func(w int) DOptions {
		return DOptions{Expansion: ExpandLinear, MaxSweeps: 3, Workers: w}
	}
	serial := DOptimal(s, 24, rand.New(rand.NewSource(17)), opts(1))
	for _, w := range []int{2, 4, 8} {
		parallel := DOptimal(s, 24, rand.New(rand.NewSource(17)), opts(w))
		if !samePoints(serial.Points, parallel.Points) {
			t.Fatalf("workers=%d selected a different design than serial", w)
		}
	}
	base := serial.Points[:10]
	augSerial := AugmentDOptimal(s, base, 10, rand.New(rand.NewSource(19)), opts(1))
	augPar := AugmentDOptimal(s, base, 10, rand.New(rand.NewSource(19)), opts(4))
	if !samePoints(augSerial.Points, augPar.Points) {
		t.Fatal("parallel augmentation selected a different design than serial")
	}
}

// More exchange sweeps may only improve (or preserve) the D-criterion.
// MaxSweeps -1 is the explicit-zero sentinel: the raw random selection.
func TestDOptimalLogDetNonDecreasingAcrossSweeps(t *testing.T) {
	s := MicroarchSpace()
	prev := math.Inf(-1)
	for _, sweeps := range []int{-1, 1, 2, 4} {
		des := DOptimal(s, 20, rand.New(rand.NewSource(23)),
			DOptions{Expansion: ExpandLinear, MaxSweeps: sweeps})
		ld := des.LogDet()
		if ld < prev-1e-6 {
			t.Fatalf("logdet decreased at MaxSweeps=%d: %.6f -> %.6f", sweeps, prev, ld)
		}
		t.Logf("MaxSweeps=%d logdet=%.4f", sweeps, ld)
		prev = ld
	}
}

func TestAugmentDOptimalLogDetNonDecreasingAcrossSweeps(t *testing.T) {
	s := MicroarchSpace()
	base := DOptimal(s, 12, rand.New(rand.NewSource(29)), DOptions{Expansion: ExpandLinear})
	prev := math.Inf(-1)
	for _, sweeps := range []int{-1, 1, 2, 4} {
		aug := AugmentDOptimal(s, base.Points, 8, rand.New(rand.NewSource(31)),
			DOptions{Expansion: ExpandLinear, MaxSweeps: sweeps})
		// Fixed points must be preserved verbatim, in order, at every
		// sweep count.
		for i, p := range base.Points {
			for j := range p {
				if aug.Points[i][j] != p[j] {
					t.Fatalf("MaxSweeps=%d: fixed point %d modified", sweeps, i)
				}
			}
		}
		ld := aug.LogDet()
		if ld < prev-1e-6 {
			t.Fatalf("logdet decreased at MaxSweeps=%d: %.6f -> %.6f", sweeps, prev, ld)
		}
		prev = ld
	}
}

// The incremental loop (cached variances, in-place Sherman–Morrison) must
// match the reference full-recomputation loop in design quality. The two can
// differ in final ulps of the dispersion matrix, so selections may diverge;
// the D-criterion they reach must not.
func TestDOptimalMatchesReferenceQuality(t *testing.T) {
	s := JointSpace()
	opt := DOptions{Expansion: ExpandLinear, MaxSweeps: 4}
	fast := DOptimal(s, 30, rand.New(rand.NewSource(37)), opt)
	ref := DOptimalRef(s, 30, rand.New(rand.NewSource(37)), opt)
	lf, lr := fast.LogDet(), ref.LogDet()
	if math.Abs(lf-lr) > 0.01*math.Abs(lr)+1e-6 {
		t.Fatalf("incremental logdet %.4f vs reference %.4f", lf, lr)
	}
	t.Logf("logdet: incremental=%.4f reference=%.4f", lf, lr)
}
