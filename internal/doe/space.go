// Package doe implements the experimental-design half of the paper: the
// joint compiler/microarchitecture parameter space (Tables 1 and 2), coded
// variable transformations, Latin hypercube and random candidate generation,
// and Fedorov-exchange D-optimal design selection.
package doe

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/compiler"
	"repro/internal/sim"
)

// VarKind classifies a predictor variable.
type VarKind uint8

const (
	// Flag is a binary categorical variable encoded 0/1.
	Flag VarKind = iota
	// Int is an ordinary discrete variable varied at evenly spaced levels.
	Int
	// LogInt is a discrete variable that only varies in powers of two and
	// is log-transformed before coding (cache sizes, buffer sizes).
	LogInt
)

// Var describes one predictor variable and its range.
type Var struct {
	Name   string
	Kind   VarKind
	Low    int64 // inclusive raw bound
	High   int64 // inclusive raw bound
	Levels int   // number of levels between Low and High
}

// LevelValues returns the raw values the variable may take, ascending.
func (v Var) LevelValues() []int64 {
	switch v.Kind {
	case Flag:
		return []int64{0, 1}
	case LogInt:
		var vals []int64
		lo, hi := math.Log2(float64(v.Low)), math.Log2(float64(v.High))
		for i := 0; i < v.Levels; i++ {
			f := lo + (hi-lo)*float64(i)/float64(v.Levels-1)
			vals = append(vals, int64(math.Round(math.Pow(2, f))))
		}
		return dedupe(vals)
	default:
		if v.Levels <= 1 {
			return []int64{v.Low}
		}
		var vals []int64
		for i := 0; i < v.Levels; i++ {
			f := float64(v.Low) + float64(v.High-v.Low)*float64(i)/float64(v.Levels-1)
			vals = append(vals, int64(math.Round(f)))
		}
		return dedupe(vals)
	}
}

func dedupe(vals []int64) []int64 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Code maps a raw value to the coded scale [-1, 1] (log-transformed first
// for LogInt variables), as the paper prescribes for all parameters.
func (v Var) Code(raw int64) float64 {
	var x, lo, hi float64
	switch v.Kind {
	case LogInt:
		x, lo, hi = math.Log2(float64(raw)), math.Log2(float64(v.Low)), math.Log2(float64(v.High))
	default:
		x, lo, hi = float64(raw), float64(v.Low), float64(v.High)
	}
	if hi == lo {
		return 0
	}
	return 2*(x-lo)/(hi-lo) - 1
}

// Decode maps a coded value in [-1, 1] back to the nearest raw level.
func (v Var) Decode(coded float64) int64 {
	levels := v.LevelValues()
	best, bestD := levels[0], math.Inf(1)
	for _, lv := range levels {
		if d := math.Abs(v.Code(lv) - coded); d < bestD {
			best, bestD = lv, d
		}
	}
	return best
}

// Space is an ordered set of predictor variables; a design point assigns a
// raw value to each.
type Space struct {
	Vars []Var
}

// Point is a raw-valued design point (one value per Space variable).
type Point []int64

// NumVars returns the dimensionality of the space.
func (s *Space) NumVars() int { return len(s.Vars) }

// Index returns the position of the named variable, or -1.
func (s *Space) Index(name string) int {
	for i, v := range s.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Code maps a raw point to coded coordinates.
func (s *Space) Code(p Point) []float64 {
	return s.CodeInto(p, make([]float64, len(s.Vars)))
}

// CodeInto is Code writing into dst (grown if needed), for callers that
// reuse a buffer across points — the service's predict hot path. Returns
// the slice holding the coded coordinates.
func (s *Space) CodeInto(p Point, dst []float64) []float64 {
	if cap(dst) < len(s.Vars) {
		dst = make([]float64, len(s.Vars))
	}
	dst = dst[:len(s.Vars)]
	for i, v := range s.Vars {
		dst[i] = v.Code(p[i])
	}
	return dst
}

// Decode snaps coded coordinates back to raw levels.
func (s *Space) Decode(coded []float64) Point {
	out := make(Point, len(s.Vars))
	for i, v := range s.Vars {
		out[i] = v.Decode(coded[i])
	}
	return out
}

// RandomPoint draws each variable uniformly from its levels.
func (s *Space) RandomPoint(rng *rand.Rand) Point {
	p := make(Point, len(s.Vars))
	for i, v := range s.Vars {
		levels := v.LevelValues()
		p[i] = levels[rng.Intn(len(levels))]
	}
	return p
}

// LatinHypercube draws n points stratified per dimension: each variable's
// levels are sampled in shuffled, evenly covering order.
func (s *Space) LatinHypercube(n int, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = make(Point, len(s.Vars))
	}
	for d, v := range s.Vars {
		levels := v.LevelValues()
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			// Stratum perm[i] of n maps onto the level grid.
			li := perm[i] * len(levels) / n
			pts[i][d] = levels[li]
		}
	}
	return pts
}

// Validate checks that a point is within range.
func (s *Space) Validate(p Point) error {
	if len(p) != len(s.Vars) {
		return fmt.Errorf("doe: point has %d values, space has %d vars", len(p), len(s.Vars))
	}
	for i, v := range s.Vars {
		if p[i] < v.Low && v.Kind != Flag || p[i] > v.High {
			return fmt.Errorf("doe: %s = %d out of range [%d, %d]", v.Name, p[i], v.Low, v.High)
		}
	}
	return nil
}

// CompilerVars returns the 14 compiler variables of Table 1, in the paper's
// order.
func CompilerVars() []Var {
	return []Var{
		{Name: "finline-functions", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "funroll-loops", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "fschedule-insns2", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "floop-optimize", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "fgcse", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "fstrength-reduce", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "fomit-frame-pointer", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "freorder-blocks", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "fprefetch-loop-arrays", Kind: Flag, Low: 0, High: 1, Levels: 2},
		{Name: "max-inline-insns-auto", Kind: Int, Low: 50, High: 150, Levels: 11},
		{Name: "inline-unit-growth", Kind: Int, Low: 25, High: 75, Levels: 11},
		{Name: "inline-call-cost", Kind: Int, Low: 12, High: 20, Levels: 9},
		{Name: "max-unroll-times", Kind: Int, Low: 4, High: 12, Levels: 9},
		{Name: "max-unrolled-insns", Kind: Int, Low: 100, High: 300, Levels: 21},
	}
}

// MicroarchVars returns the 11 microarchitectural variables of Table 2.
// Variables marked "*" in the paper are log-transformed (LogInt here).
func MicroarchVars() []Var {
	return []Var{
		{Name: "issue-width", Kind: Int, Low: 2, High: 4, Levels: 2},
		{Name: "bpred-size", Kind: LogInt, Low: 512, High: 8192, Levels: 5},
		{Name: "ruu-size", Kind: LogInt, Low: 16, High: 128, Levels: 4},
		{Name: "icache-kb", Kind: LogInt, Low: 8, High: 128, Levels: 5},
		{Name: "dcache-kb", Kind: LogInt, Low: 8, High: 128, Levels: 5},
		{Name: "dcache-assoc", Kind: Int, Low: 1, High: 2, Levels: 2},
		{Name: "dcache-lat", Kind: Int, Low: 1, High: 3, Levels: 3},
		{Name: "l2-kb", Kind: LogInt, Low: 256, High: 8192, Levels: 6},
		{Name: "l2-assoc", Kind: LogInt, Low: 1, High: 8, Levels: 4},
		{Name: "l2-lat", Kind: Int, Low: 6, High: 16, Levels: 11},
		{Name: "mem-lat", Kind: Int, Low: 50, High: 150, Levels: 21},
	}
}

// JointSpace returns the paper's 25-variable space: compiler variables
// first, then microarchitectural ones.
func JointSpace() *Space {
	return &Space{Vars: append(CompilerVars(), MicroarchVars()...)}
}

// CompilerSpace returns the 14-variable compiler-only space.
func CompilerSpace() *Space { return &Space{Vars: CompilerVars()} }

// MicroarchSpace returns the 11-variable microarchitecture-only space.
func MicroarchSpace() *Space { return &Space{Vars: MicroarchVars()} }

// NumCompilerVars is the count of compiler variables preceding the
// microarchitectural block in the joint space.
const NumCompilerVars = 14

// ToOptions converts the compiler block of a joint-space (or compiler-space)
// point into compiler.Options. issueWidth parameterizes the scheduler's
// machine model; pass the microarch issue width for joint points.
func ToOptions(p Point, issueWidth int) compiler.Options {
	b := func(i int) bool { return p[i] != 0 }
	return compiler.Options{
		InlineFunctions:    b(0),
		UnrollLoops:        b(1),
		ScheduleInsns:      b(2),
		LoopOptimize:       b(3),
		GCSE:               b(4),
		StrengthReduce:     b(5),
		OmitFramePointer:   b(6),
		ReorderBlocks:      b(7),
		PrefetchLoopArray:  b(8),
		MaxInlineInsnsAuto: int(p[9]),
		InlineUnitGrowth:   int(p[10]),
		InlineCallCost:     int(p[11]),
		MaxUnrollTimes:     int(p[12]),
		MaxUnrolledInsns:   int(p[13]),
		TargetIssueWidth:   issueWidth,
	}
}

// ToConfig converts the microarchitectural block of a joint-space point
// (indices NumCompilerVars..) into a simulator configuration.
func ToConfig(p Point) sim.Config {
	m := p[NumCompilerVars:]
	return sim.Config{
		IssueWidth:  int(m[0]),
		BPredSize:   int(m[1]),
		RUUSize:     int(m[2]),
		ICacheKB:    int(m[3]),
		DCacheKB:    int(m[4]),
		DCacheAssoc: int(m[5]),
		DCacheLat:   int(m[6]),
		L2KB:        int(m[7]),
		L2Assoc:     int(m[8]),
		L2Lat:       int(m[9]),
		MemLat:      int(m[10]),
	}
}

// FromConfig converts a simulator configuration into the microarchitectural
// block of a joint-space point.
func FromConfig(c sim.Config) []int64 {
	return []int64{
		int64(c.IssueWidth), int64(c.BPredSize), int64(c.RUUSize),
		int64(c.ICacheKB), int64(c.DCacheKB), int64(c.DCacheAssoc),
		int64(c.DCacheLat), int64(c.L2KB), int64(c.L2Assoc),
		int64(c.L2Lat), int64(c.MemLat),
	}
}

// FromOptions converts compiler options into the compiler block of a
// joint-space point.
func FromOptions(o compiler.Options) []int64 {
	b := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	return []int64{
		b(o.InlineFunctions), b(o.UnrollLoops), b(o.ScheduleInsns),
		b(o.LoopOptimize), b(o.GCSE), b(o.StrengthReduce),
		b(o.OmitFramePointer), b(o.ReorderBlocks), b(o.PrefetchLoopArray),
		int64(o.MaxInlineInsnsAuto), int64(o.InlineUnitGrowth),
		int64(o.InlineCallCost), int64(o.MaxUnrollTimes),
		int64(o.MaxUnrolledInsns),
	}
}

// JoinPoint concatenates a compiler block and a microarch block into a
// joint-space point.
func JoinPoint(comp, march []int64) Point {
	p := make(Point, 0, len(comp)+len(march))
	p = append(p, comp...)
	p = append(p, march...)
	return p
}
