package doe

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/sim"
)

func TestSpacesMatchPaperTables(t *testing.T) {
	cs := CompilerSpace()
	if cs.NumVars() != 14 {
		t.Fatalf("Table 1 has 14 parameters, got %d", cs.NumVars())
	}
	ms := MicroarchSpace()
	if ms.NumVars() != 11 {
		t.Fatalf("Table 2 has 11 parameters, got %d", ms.NumVars())
	}
	js := JointSpace()
	if js.NumVars() != 25 {
		t.Fatalf("joint space should have 25 vars, got %d", js.NumVars())
	}
	if NumCompilerVars != 14 {
		t.Fatal("NumCompilerVars")
	}
	// Spot-check levels against the paper.
	checks := map[string]int{
		"max-inline-insns-auto": 11,
		"inline-call-cost":      9,
		"max-unroll-times":      9,
		"max-unrolled-insns":    21,
		"bpred-size":            5,
		"l2-kb":                 6,
		"mem-lat":               21,
		"dcache-lat":            3,
	}
	for name, want := range checks {
		i := js.Index(name)
		if i < 0 {
			t.Errorf("missing var %s", name)
			continue
		}
		if got := len(js.Vars[i].LevelValues()); got != want {
			t.Errorf("%s: %d levels, want %d", name, got, want)
		}
	}
}

func TestLogIntLevelsArePowersOfTwo(t *testing.T) {
	v := Var{Name: "bpred", Kind: LogInt, Low: 512, High: 8192, Levels: 5}
	want := []int64{512, 1024, 2048, 4096, 8192}
	got := v.LevelValues()
	if len(got) != len(want) {
		t.Fatalf("levels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("levels = %v, want %v", got, want)
		}
	}
}

func TestCodeDecodeRoundTrip(t *testing.T) {
	s := JointSpace()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := s.RandomPoint(rng)
		if err := s.Validate(p); err != nil {
			t.Fatal(err)
		}
		coded := s.Code(p)
		for _, c := range coded {
			if c < -1.0001 || c > 1.0001 {
				t.Fatalf("coded value %v out of [-1,1]", c)
			}
		}
		back := s.Decode(coded)
		for i := range p {
			if back[i] != p[i] {
				t.Fatalf("round trip failed at %s: %d -> %d",
					s.Vars[i].Name, p[i], back[i])
			}
		}
	}
}

func TestPropertyCodeBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := JointSpace()
		p := s.RandomPoint(rng)
		for _, c := range s.Code(p) {
			if math.IsNaN(c) || c < -1 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatinHypercubeCoverage(t *testing.T) {
	s := &Space{Vars: []Var{
		{Name: "a", Kind: Int, Low: 0, High: 9, Levels: 10},
		{Name: "b", Kind: Flag, Low: 0, High: 1, Levels: 2},
	}}
	rng := rand.New(rand.NewSource(3))
	pts := s.LatinHypercube(10, rng)
	// Dimension a must cover all 10 levels exactly once.
	seen := map[int64]int{}
	ones := 0
	for _, p := range pts {
		seen[p[0]]++
		if p[1] == 1 {
			ones++
		}
	}
	if len(seen) != 10 {
		t.Errorf("LHS should cover all levels; saw %d distinct", len(seen))
	}
	// Dimension b should be balanced.
	if ones != 5 {
		t.Errorf("flag should be balanced: %d ones of 10", ones)
	}
}

func TestDOptimalBeatsRandom(t *testing.T) {
	s := MicroarchSpace()
	rng := rand.New(rand.NewSource(11))
	n := 24
	des := DOptimal(s, n, rng, DOptions{Expansion: ExpandLinear})
	if len(des.Points) != n {
		t.Fatalf("design size %d, want %d", len(des.Points), n)
	}
	dOptDet := des.LogDet()

	// Average random designs of the same size.
	sum, trials := 0.0, 10
	for i := 0; i < trials; i++ {
		r := &Design{Space: s, Expansion: ExpandLinear}
		for j := 0; j < n; j++ {
			r.Points = append(r.Points, s.RandomPoint(rng))
		}
		sum += r.LogDet()
	}
	randDet := sum / float64(trials)
	if dOptDet <= randDet {
		t.Errorf("D-optimal logdet %.2f should beat random %.2f", dOptDet, randDet)
	}
	t.Logf("logdet: d-optimal=%.2f random=%.2f", dOptDet, randDet)
}

func TestDOptimalDeterministic(t *testing.T) {
	s := CompilerSpace()
	a := DOptimal(s, 20, rand.New(rand.NewSource(5)), DOptions{Expansion: ExpandLinear})
	b := DOptimal(s, 20, rand.New(rand.NewSource(5)), DOptions{Expansion: ExpandLinear})
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed must give the same design")
			}
		}
	}
}

func TestAugmentKeepsExistingPoints(t *testing.T) {
	s := MicroarchSpace()
	rng := rand.New(rand.NewSource(13))
	base := DOptimal(s, 15, rng, DOptions{Expansion: ExpandLinear})
	aug := AugmentDOptimal(s, base.Points, 10, rng, DOptions{Expansion: ExpandLinear})
	if len(aug.Points) != 25 {
		t.Fatalf("augmented size %d, want 25", len(aug.Points))
	}
	for i, p := range base.Points {
		for j := range p {
			if aug.Points[i][j] != p[j] {
				t.Fatal("augmentation must preserve existing points")
			}
		}
	}
	if aug.LogDet() <= base.LogDet() {
		t.Error("adding points should increase information")
	}
}

func TestExpansionTerms(t *testing.T) {
	coded := []float64{0.5, -1, 1}
	lin := ExpandCoded(coded, ExpandLinear)
	if len(lin) != 4 || lin[0] != 1 || lin[2] != -1 {
		t.Fatalf("linear expansion = %v", lin)
	}
	inter := ExpandCoded(coded, ExpandInteractions)
	if len(inter) != ExpandInteractions.NumTerms(3) || len(inter) != 7 {
		t.Fatalf("interaction expansion = %v", inter)
	}
	// x0*x1 = -0.5, x0*x2 = 0.5, x1*x2 = -1
	if inter[4] != -0.5 || inter[5] != 0.5 || inter[6] != -1 {
		t.Fatalf("interaction terms = %v", inter[4:])
	}
}

func TestOptionConfigConversions(t *testing.T) {
	js := JointSpace()
	rng := rand.New(rand.NewSource(21))
	p := js.RandomPoint(rng)
	opts := ToOptions(p, 4)
	cfg := ToConfig(p)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("decoded config invalid: %v", err)
	}
	// Round trip.
	back := JoinPoint(FromOptions(opts), FromConfig(cfg))
	for i := range p {
		if back[i] != p[i] {
			t.Fatalf("round trip failed at %s: %d -> %d", js.Vars[i].Name, p[i], back[i])
		}
	}
	// Spot-check known mappings.
	o2 := compiler.O2()
	comp := FromOptions(o2)
	if comp[0] != 0 || comp[2] != 1 || comp[6] != 1 {
		t.Errorf("FromOptions(O2) = %v", comp)
	}
	def := sim.DefaultConfig()
	m := FromConfig(def)
	if m[0] != 4 || m[1] != 2048 {
		t.Errorf("FromConfig(default) = %v", m)
	}
}
