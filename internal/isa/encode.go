package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary object format for compiled programs, so the compiler and simulator
// can run as separate processes (minicc -o prog.bin; simrun -bin prog.bin).
//
// Layout (little endian):
//
//	magic   [4]byte  "EMP1"
//	entry   int32
//	datasz  int64
//	ninit   uint32   { addr uint64, val int64 } * ninit
//	nsyms   uint32   { nameLen uint32, name []byte, index int32 } * nsyms
//	ninstr  uint32   { op uint8, rd, rs1, rs2 uint8, imm int64, target int32 } * ninstr
var magic = [4]byte{'E', 'M', 'P', '1'}

// Encode writes the program to w in the binary object format.
func (p *Program) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeErr := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeErr(p.Entry, p.DataSize, uint32(len(p.Init))); err != nil {
		return err
	}
	for _, di := range p.Init {
		if err := writeErr(di.Addr, di.Val); err != nil {
			return err
		}
	}
	// Deterministic symbol order.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := writeErr(uint32(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := writeErr(uint32(len(n))); err != nil {
			return err
		}
		if _, err := bw.WriteString(n); err != nil {
			return err
		}
		if err := writeErr(p.Symbols[n]); err != nil {
			return err
		}
	}
	if err := writeErr(uint32(len(p.Instrs))); err != nil {
		return err
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := writeErr(uint8(in.Op), in.Rd, in.Rs1, in.Rs2, in.Imm, in.Target); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a program in the binary object format.
func Decode(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("isa: bad magic %q", m)
	}
	le := binary.LittleEndian
	read := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(br, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	p := &Program{Symbols: map[string]int32{}}
	var ninit, nsyms, ninstr uint32
	if err := read(&p.Entry, &p.DataSize, &ninit); err != nil {
		return nil, err
	}
	const limit = 1 << 26 // sanity bound on section sizes
	if ninit > limit {
		return nil, fmt.Errorf("isa: absurd init count %d", ninit)
	}
	for i := uint32(0); i < ninit; i++ {
		var di DataInit
		if err := read(&di.Addr, &di.Val); err != nil {
			return nil, err
		}
		p.Init = append(p.Init, di)
	}
	if err := read(&nsyms); err != nil {
		return nil, err
	}
	if nsyms > limit {
		return nil, fmt.Errorf("isa: absurd symbol count %d", nsyms)
	}
	for i := uint32(0); i < nsyms; i++ {
		var nameLen uint32
		if err := read(&nameLen); err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("isa: absurd symbol length %d", nameLen)
		}
		buf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		var idx int32
		if err := read(&idx); err != nil {
			return nil, err
		}
		p.Symbols[string(buf)] = idx
	}
	if err := read(&ninstr); err != nil {
		return nil, err
	}
	if ninstr > limit {
		return nil, fmt.Errorf("isa: absurd instruction count %d", ninstr)
	}
	p.Instrs = make([]Instr, ninstr)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		var op uint8
		if err := read(&op, &in.Rd, &in.Rs1, &in.Rs2, &in.Imm, &in.Target); err != nil {
			return nil, err
		}
		if Op(op) >= numOps {
			return nil, fmt.Errorf("isa: instruction %d has invalid opcode %d", i, op)
		}
		in.Op = Op(op)
	}
	return p, nil
}
