package isa

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpAdd: "add", OpLoad: "ld", OpStore: "st", OpBeq: "beq",
		OpHalt: "halt", OpPrefetch: "pref",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), want)
		}
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op should include its number")
	}
}

func TestOpClasses(t *testing.T) {
	if OpAdd.Class() != FUIntALU {
		t.Error("add class")
	}
	if OpMul.Class() != FUIntMul || OpDiv.Class() != FUIntMul {
		t.Error("mul/div class")
	}
	if OpLoad.Class() != FUMem || OpPrefetch.Class() != FUMem {
		t.Error("mem class")
	}
	if OpBeq.Class() != FUBranch || OpRet.Class() != FUBranch {
		t.Error("branch class")
	}
	if OpNop.Class() != FUNone || OpHalt.Class() != FUNone {
		t.Error("none class")
	}
}

func TestAllOpsHaveNamesAndClasses(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no name", op)
		}
		if op.Class() >= NumFUClasses {
			t.Errorf("op %v has invalid class", op)
		}
		if op.Latency() < 1 {
			t.Errorf("op %v has latency < 1", op)
		}
	}
}

func TestLatencies(t *testing.T) {
	if OpMul.Latency() <= OpAdd.Latency() {
		t.Error("mul should be slower than add")
	}
	if OpDiv.Latency() <= OpMul.Latency() {
		t.Error("div should be slower than mul")
	}
}

func TestPredicates(t *testing.T) {
	if !OpBeq.IsBranch() || OpJump.IsBranch() {
		t.Error("IsBranch")
	}
	if !OpJump.IsControl() || !OpCall.IsControl() || !OpRet.IsControl() || OpAdd.IsControl() {
		t.Error("IsControl")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || !OpPrefetch.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem")
	}
	if !OpAdd.WritesReg() || OpStore.WritesReg() || OpBeq.WritesReg() || !OpCall.WritesReg() || !OpLoad.WritesReg() {
		t.Error("WritesReg")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: 5, Rs1: 6, Rs2: 7}, "add r5, r6, r7"},
		{Instr{Op: OpAddi, Rd: 5, Rs1: 6, Imm: -4}, "addi r5, r6, -4"},
		{Instr{Op: OpLoad, Rd: 5, Rs1: 2, Imm: 16}, "ld r5, 16(r2)"},
		{Instr{Op: OpStore, Rs1: 2, Rs2: 5, Imm: 8}, "st r5, 8(r2)"},
		{Instr{Op: OpBne, Rs1: 1, Rs2: 0, Target: 12}, "bne r1, r0, @12"},
		{Instr{Op: OpCall, Target: 3}, "call @3"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpLui, Rd: 9, Imm: 100}, "lui r9, 100"},
		{Instr{Op: OpPrefetch, Rs1: 7, Imm: 64}, "pref 64(r7)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegisterConventions(t *testing.T) {
	if RegZero != 0 {
		t.Error("r0 must be the zero register")
	}
	if RegGP <= RegArg0+NumArgRegs-1 {
		t.Error("allocatable registers must not overlap argument registers")
	}
	if NumRegs != 32 {
		t.Error("ISA defines 32 registers")
	}
}

func TestPCByte(t *testing.T) {
	if PCByte(0) != 0 || PCByte(3) != 3*InstrBytes {
		t.Error("PCByte")
	}
}
