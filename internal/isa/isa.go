// Package isa defines the synthetic RISC instruction set targeted by the
// MiniC compiler and executed by the timing simulator. It is modeled loosely
// on the Alpha ISA that the paper's SimpleScalar backend used: a load/store
// architecture with 32 integer registers, fixed-size instruction slots
// (see InstrBytes), and a small set of functional-unit classes with
// distinct latencies.
package isa

import "fmt"

// Op enumerates the machine opcodes.
type Op uint8

const (
	OpNop Op = iota

	// Integer ALU (1 cycle).
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpShl  // rd = rs1 << (rs2 & 63)
	OpShr  // rd = rs1 >> (rs2 & 63), arithmetic
	OpSlt  // rd = rs1 < rs2 ? 1 : 0
	OpSle  // rd = rs1 <= rs2 ? 1 : 0
	OpSeq  // rd = rs1 == rs2 ? 1 : 0
	OpSne  // rd = rs1 != rs2 ? 1 : 0
	OpAddi // rd = rs1 + imm
	OpLui  // rd = imm (load immediate)

	// Integer multiply/divide (long latency).
	OpMul // rd = rs1 * rs2
	OpDiv // rd = rs1 / rs2 (0 if rs2 == 0)
	OpRem // rd = rs1 % rs2 (0 if rs2 == 0)

	// Memory.
	OpLoad     // rd = mem[rs1 + imm]
	OpStore    // mem[rs1 + imm] = rs2
	OpPrefetch // non-binding prefetch of mem[rs1 + imm]

	// Control.
	OpBeq  // if rs1 == rs2 goto target
	OpBne  // if rs1 != rs2 goto target
	OpBlt  // if rs1 < rs2 goto target
	OpBge  // if rs1 >= rs2 goto target
	OpJump // goto target
	OpCall // call target (pushes return address on register RA)
	OpRet  // return to RA
	OpHalt // stop the machine

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSlt: "slt", OpSle: "sle",
	OpSeq: "seq", OpSne: "sne", OpAddi: "addi", OpLui: "lui", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpLoad: "ld", OpStore: "st",
	OpPrefetch: "pref", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBge: "bge", OpJump: "j", OpCall: "call", OpRet: "ret", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// FUClass classifies instructions by the functional unit they occupy.
type FUClass uint8

const (
	FUNone   FUClass = iota // nop, halt
	FUIntALU                // single-cycle integer ops
	FUIntMul                // multiply / divide / remainder
	FUMem                   // loads, stores, prefetches
	FUBranch                // branches, jumps, calls, returns
	NumFUClasses
)

func (c FUClass) String() string {
	switch c {
	case FUNone:
		return "none"
	case FUIntALU:
		return "ialu"
	case FUIntMul:
		return "imul"
	case FUMem:
		return "mem"
	case FUBranch:
		return "branch"
	}
	return "fu?"
}

// Class returns the functional-unit class of the opcode.
func (o Op) Class() FUClass {
	switch o {
	case OpNop, OpHalt:
		return FUNone
	case OpMul, OpDiv, OpRem:
		return FUIntMul
	case OpLoad, OpStore, OpPrefetch:
		return FUMem
	case OpBeq, OpBne, OpBlt, OpBge, OpJump, OpCall, OpRet:
		return FUBranch
	default:
		return FUIntALU
	}
}

// Latency returns the execution latency in cycles, excluding memory-hierarchy
// time for loads/stores (added by the cache model).
func (o Op) Latency() int {
	switch o {
	case OpMul:
		return 4
	case OpDiv, OpRem:
		return 12
	case OpLoad, OpStore, OpPrefetch:
		return 1 // address generation; hierarchy latency added separately
	default:
		return 1
	}
}

// IsBranch reports whether the opcode is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsControl reports whether the opcode redirects the PC.
func (o Op) IsControl() bool {
	return o.Class() == FUBranch
}

// IsMem reports whether the opcode accesses the data memory hierarchy.
func (o Op) IsMem() bool {
	return o == OpLoad || o == OpStore || o == OpPrefetch
}

// WritesReg reports whether the opcode writes its Rd register.
func (o Op) WritesReg() bool {
	switch o {
	case OpNop, OpStore, OpPrefetch, OpBeq, OpBne, OpBlt, OpBge,
		OpJump, OpRet, OpHalt:
		return false
	case OpCall:
		return true // writes RA
	}
	return true
}

// Register conventions. 32 integer registers.
const (
	NumRegs = 32

	RegZero = 0  // hardwired zero
	RegRA   = 1  // return address
	RegSP   = 2  // stack pointer
	RegFP   = 3  // frame pointer (allocatable when -fomit-frame-pointer)
	RegRV   = 4  // return value
	RegArg0 = 5  // first of NumArgRegs argument registers
	RegGP   = 11 // first general allocatable register
)

// NumArgRegs is the number of argument-passing registers (r5..r10).
const NumArgRegs = 6

// InstrBytes is the size of one instruction slot in the instruction address
// space, used by the code layout and the instruction cache model. It is
// deliberately larger than a real RISC encoding: the benchmark kernels are
// orders of magnitude smaller than the SPEC programs they stand in for, and
// inflating the per-instruction footprint restores realistic instruction-
// cache pressure at the paper's 8-128KB icache sizes (a documented
// substitution, see DESIGN.md).
const InstrBytes = 32

// WordBytes is the size of a data word (all memory accesses are word-sized).
const WordBytes = 8

// Instr is one machine instruction. Target is an absolute instruction index
// (not a byte address) for control transfers.
type Instr struct {
	Op     Op
	Rd     uint8 // destination register
	Rs1    uint8 // first source
	Rs2    uint8 // second source
	Imm    int64 // immediate / displacement
	Target int32 // control-transfer target (instruction index)
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return in.Op.String()
	case OpLui:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case OpAddi:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLoad:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case OpStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpPrefetch:
		return fmt.Sprintf("%s %d(r%d)", in.Op, in.Imm, in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case OpJump, OpCall:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is a fully laid-out executable: a flat instruction sequence plus
// metadata produced by the compiler.
type Program struct {
	Instrs []Instr
	Entry  int32 // index of the first instruction to execute

	// Symbols maps function names to their entry instruction index, for
	// diagnostics and tests.
	Symbols map[string]int32

	// DataSize is the number of bytes of statically allocated global data.
	// Globals occupy addresses [GlobalBase, GlobalBase+DataSize).
	DataSize int64

	// Init lists nonzero initial values of global scalars; the executor
	// applies them before starting.
	Init []DataInit
}

// DataInit is one initialized global data word.
type DataInit struct {
	Addr uint64
	Val  int64
}

// Address-space layout for the executor: globals low, stack high, both well
// clear of address 0 so that stray nil-ish pointers fault loudly in tests.
const (
	GlobalBase = 0x0001_0000
	StackBase  = 0x4000_0000 // stack grows down from here
)

// PCByte returns the byte address of instruction index i, as seen by the
// instruction cache.
func PCByte(i int32) uint64 { return uint64(i) * InstrBytes }
