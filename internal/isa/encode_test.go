package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{
		Entry:    0,
		DataSize: 4096,
		Init:     []DataInit{{Addr: GlobalBase, Val: -9}, {Addr: GlobalBase + 8, Val: 1 << 40}},
		Symbols:  map[string]int32{"main": 2, "helper": 9},
		Instrs: []Instr{
			{Op: OpCall, Target: 2},
			{Op: OpHalt},
			{Op: OpLui, Rd: 11, Imm: -12345678901},
			{Op: OpAddi, Rd: 12, Rs1: 11, Imm: 8},
			{Op: OpLoad, Rd: 13, Rs1: 12, Imm: -16},
			{Op: OpStore, Rs1: 12, Rs2: 13, Imm: 24},
			{Op: OpBne, Rs1: 13, Rs2: 0, Target: 2},
			{Op: OpRet},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != p.Entry || q.DataSize != p.DataSize {
		t.Fatal("header mismatch")
	}
	if len(q.Init) != len(p.Init) || q.Init[1] != p.Init[1] {
		t.Fatalf("init mismatch: %+v", q.Init)
	}
	if len(q.Symbols) != 2 || q.Symbols["main"] != 2 || q.Symbols["helper"] != 9 {
		t.Fatalf("symbols mismatch: %+v", q.Symbols)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatal("instr count mismatch")
	}
	for i := range p.Instrs {
		if q.Instrs[i] != p.Instrs[i] {
			t.Fatalf("instr %d: %+v != %+v", i, q.Instrs[i], p.Instrs[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a program"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncated stream.
	p := sampleProgram()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream should fail")
	}
	// Invalid opcode.
	full := append([]byte{}, buf.Bytes()...)
	full[len(full)-16] = 200 // clobber an opcode byte
	if _, err := Decode(bytes.NewReader(full)); err == nil {
		t.Log("opcode clobber not at expected offset; acceptable") // offset depends on layout
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Program{
			Entry:    rng.Int31n(100),
			DataSize: rng.Int63n(1 << 20),
			Symbols:  map[string]int32{},
		}
		for i := 0; i < rng.Intn(5); i++ {
			p.Init = append(p.Init, DataInit{Addr: rng.Uint64(), Val: rng.Int63() - rng.Int63()})
		}
		for i := 0; i < rng.Intn(4); i++ {
			p.Symbols[string(rune('a'+i))] = rng.Int31n(1000)
		}
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			p.Instrs = append(p.Instrs, Instr{
				Op:     Op(rng.Intn(int(numOps))),
				Rd:     uint8(rng.Intn(32)),
				Rs1:    uint8(rng.Intn(32)),
				Rs2:    uint8(rng.Intn(32)),
				Imm:    rng.Int63() - rng.Int63(),
				Target: rng.Int31(),
			})
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			return false
		}
		q, err := Decode(&buf)
		if err != nil {
			return false
		}
		if q.Entry != p.Entry || len(q.Instrs) != len(p.Instrs) || len(q.Symbols) != len(p.Symbols) {
			return false
		}
		for i := range p.Instrs {
			if q.Instrs[i] != p.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
