package model

import (
	"encoding/json"
	"fmt"
	"math"
)

// SchemaVersion is the artifact wire-format version this package writes.
// Decode rejects any other version with *SchemaError: coefficients are
// meaningless without the exact basis/kernel semantics of the code that
// fitted them, so a version bump must invalidate persisted artifacts
// instead of silently misreading them.
const SchemaVersion = 1

// SchemaError reports a persisted model whose schema version this build
// does not understand.
type SchemaError struct {
	Got int
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("model: unknown artifact schema version %d (this build reads %d)", e.Got, SchemaVersion)
}

// CodecError reports a structurally invalid serialized model (bad kind tag,
// missing payload, malformed JSON). Unlike *SchemaError it means the bytes
// were never a valid artifact, not that they come from a different version.
type CodecError struct {
	Reason string
}

func (e *CodecError) Error() string { return "model: decode: " + e.Reason }

// envelope is the serialized form of a fitted model: a schema version, a
// kind tag, and exactly one populated payload. LogModel and HybridRBFModel
// nest recursively. All fitted kinds are small coefficient sets — linear
// terms, MARS hinge bases and knots, RBF centers/radii/weights — so JSON is
// compact enough, and Go's float64 round-trips bit-exactly through its
// shortest-decimal encoding, which the bit-identical-prediction guarantee
// relies on.
type envelope struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`

	Linear *LinearModel    `json:"linear,omitempty"`
	MARS   *MARSModel      `json:"mars,omitempty"`
	RBF    *RBFModel       `json:"rbf,omitempty"`
	Hybrid *hybridEnvelope `json:"hybrid,omitempty"`
	Log    *envelope       `json:"log,omitempty"`
}

// hybridEnvelope serializes HybridRBFModel's two halves.
type hybridEnvelope struct {
	Trend    *MARSModel `json:"trend"`
	Residual *RBFModel  `json:"residual"`
}

// finiteOr0 maps non-finite fit diagnostics to 0 for the wire: JSON has no
// Inf/NaN encoding, and a saturated fit's BIC/GCV is +Inf by construction
// (Equation 9 when samples <= parameters). The scores are selection-time
// metadata — prediction never reads them — so coercing them loses nothing
// the serving path needs.
func finiteOr0(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

func sanitizeLinear(m *LinearModel) *LinearModel {
	c := *m
	c.TrainSSE = finiteOr0(m.TrainSSE)
	return &c
}

func sanitizeMARS(m *MARSModel) *MARSModel {
	c := *m
	c.GCVScore = finiteOr0(m.GCVScore)
	c.TrainSSE = finiteOr0(m.TrainSSE)
	return &c
}

func sanitizeRBF(m *RBFModel) *RBFModel {
	c := *m
	c.BICScore = finiteOr0(m.BICScore)
	c.TrainSSE = finiteOr0(m.TrainSSE)
	return &c
}

// wrap builds the envelope tree for a fitted model.
func wrap(m Model) (*envelope, error) {
	e := &envelope{Schema: SchemaVersion}
	switch t := m.(type) {
	case *LinearModel:
		e.Kind, e.Linear = "linear", sanitizeLinear(t)
	case *MARSModel:
		e.Kind, e.MARS = "mars", sanitizeMARS(t)
	case *RBFModel:
		e.Kind, e.RBF = "rbf", sanitizeRBF(t)
	case *HybridRBFModel:
		e.Kind, e.Hybrid = "hybrid", &hybridEnvelope{
			Trend: sanitizeMARS(t.Trend), Residual: sanitizeRBF(t.Residual),
		}
	case LogModel:
		inner, err := wrap(t.Inner)
		if err != nil {
			return nil, err
		}
		e.Kind, e.Log = "log", inner
	default:
		return nil, fmt.Errorf("model: cannot serialize %T", m)
	}
	return e, nil
}

// unwrap reconstructs the model an envelope tree describes.
func unwrap(e *envelope) (Model, error) {
	if e.Schema != SchemaVersion {
		return nil, &SchemaError{Got: e.Schema}
	}
	switch e.Kind {
	case "linear":
		if e.Linear == nil || len(e.Linear.Coef) == 0 {
			return nil, &CodecError{Reason: "linear payload missing or empty"}
		}
		return e.Linear, nil
	case "mars":
		if e.MARS == nil || len(e.MARS.Coef) != len(e.MARS.Bases) || len(e.MARS.Coef) == 0 {
			return nil, &CodecError{Reason: "mars payload missing or basis/coef length mismatch"}
		}
		return e.MARS, nil
	case "rbf":
		if e.RBF == nil || len(e.RBF.W) != 1+len(e.RBF.Centers) || len(e.RBF.Radii) != len(e.RBF.Centers) {
			return nil, &CodecError{Reason: "rbf payload missing or center/radius/weight length mismatch"}
		}
		return e.RBF, nil
	case "hybrid":
		if e.Hybrid == nil || e.Hybrid.Trend == nil || e.Hybrid.Residual == nil {
			return nil, &CodecError{Reason: "hybrid payload missing a half"}
		}
		trend, err := unwrap(&envelope{Schema: e.Schema, Kind: "mars", MARS: e.Hybrid.Trend})
		if err != nil {
			return nil, err
		}
		resid, err := unwrap(&envelope{Schema: e.Schema, Kind: "rbf", RBF: e.Hybrid.Residual})
		if err != nil {
			return nil, err
		}
		return &HybridRBFModel{Trend: trend.(*MARSModel), Residual: resid.(*RBFModel)}, nil
	case "log":
		if e.Log == nil {
			return nil, &CodecError{Reason: "log payload missing"}
		}
		inner, err := unwrap(e.Log)
		if err != nil {
			return nil, err
		}
		return LogModel{Inner: inner}, nil
	}
	return nil, &CodecError{Reason: fmt.Sprintf("unknown model kind %q", e.Kind)}
}

// Encode serializes a fitted model (any of this package's kinds, including
// the LogModel and HybridRBFModel wrappers) into its versioned wire form.
func Encode(m Model) (json.RawMessage, error) {
	e, err := wrap(m)
	if err != nil {
		return nil, err
	}
	return json.Marshal(e)
}

// Decode reconstructs a fitted model from Encode's output. The decoded
// model predicts bit-identically to the one that was encoded. A different
// schema version fails with *SchemaError; structurally invalid bytes fail
// with *CodecError.
func Decode(data []byte) (Model, error) {
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, &CodecError{Reason: err.Error()}
	}
	return unwrap(&e)
}
