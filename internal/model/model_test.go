package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/doe"
)

// synth generates a dataset from a known function over k coded variables.
func synth(n, k int, seed int64, f func(x []float64) float64, noise float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, k)
		for d := range x {
			// Mix of continuous and ±1 (flag-like) variables.
			if d%3 == 0 {
				x[d] = float64(2*rng.Intn(2) - 1)
			} else {
				x[d] = 2*rng.Float64() - 1
			}
		}
		xs[i] = x
		ys[i] = f(x) + noise*rng.NormFloat64()
	}
	d, _ := NewDataset(xs, ys)
	return d
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := NewDataset([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged points should fail")
	}
	d, err := NewDataset([][]float64{{1, 2}}, []float64{3})
	if err != nil || d.Dim() != 2 || d.Len() != 1 {
		t.Error("valid dataset rejected")
	}
}

func TestLinearRecoversLinearFunction(t *testing.T) {
	truth := func(x []float64) float64 { return 100 + 5*x[0] - 3*x[1] + 2*x[2] }
	train := synth(60, 4, 1, truth, 0)
	m, err := FitLinear(train, doe.ExpandLinear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-100) > 1e-6 || math.Abs(m.Coef[1]-5) > 1e-6 ||
		math.Abs(m.Coef[2]+3) > 1e-6 || math.Abs(m.Coef[4]) > 1e-6 {
		t.Fatalf("coefficients = %v", m.Coef[:5])
	}
	test := synth(30, 4, 2, truth, 0)
	if e := TestError(m, test); e > 1e-6 {
		t.Fatalf("test error %v on noiseless linear truth", e)
	}
}

func TestLinearRecoversInteraction(t *testing.T) {
	truth := func(x []float64) float64 { return 10 + 4*x[0]*x[1] }
	train := synth(80, 3, 3, truth, 0)
	m, err := FitLinear(train, doe.ExpandInteractions)
	if err != nil {
		t.Fatal(err)
	}
	test := synth(40, 3, 4, truth, 0)
	if e := TestError(m, test); e > 1e-6 {
		t.Fatalf("interaction model error %v", e)
	}
	// Main-effects-only model must fail on a pure interaction.
	m0, err := FitLinear(train, doe.ExpandLinear)
	if err != nil {
		t.Fatal(err)
	}
	if e := TestError(m0, test); e < 5 {
		t.Fatalf("main-effects model should be poor on interaction: %v%%", e)
	}
}

// nonlinearTruth mimics Figure 3's response: improvement then degradation
// along x0, gated by x1.
func nonlinearTruth(x []float64) float64 {
	v := 100 - 20*x[0]
	if x[0] > 0.3 {
		v += 60 * (x[0] - 0.3)
	}
	return v + 10*x[1] + 5*x[0]*x[1]
}

func TestMARSBeatsLinearOnNonlinearTruth(t *testing.T) {
	train := synth(120, 4, 5, nonlinearTruth, 0.5)
	test := synth(60, 4, 6, nonlinearTruth, 0)

	lin, err := FitLinear(train, doe.ExpandInteractions)
	if err != nil {
		t.Fatal(err)
	}
	mars, err := FitMARS(train, MARSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	le, me := TestError(lin, test), TestError(mars, test)
	if me >= le {
		t.Fatalf("MARS (%v%%) should beat linear (%v%%) on hinge-shaped truth", me, le)
	}
	if me > 3 {
		t.Fatalf("MARS error %v%% too high on its home turf", me)
	}
	t.Logf("linear=%.2f%% mars=%.2f%% (terms=%d)", le, me, mars.NumParams())
}

func TestMARSPruningControlsComplexity(t *testing.T) {
	truth := func(x []float64) float64 { return 50 + 10*x[0] }
	train := synth(60, 6, 7, truth, 1)
	m, err := FitMARS(train, MARSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// GCV pruning should keep the model small for a simple truth.
	if m.NumParams() > 12 {
		t.Fatalf("pruned model still has %d terms", m.NumParams())
	}
	if math.IsInf(m.GCVScore, 1) || m.GCVScore <= 0 {
		t.Fatalf("bad GCV: %v", m.GCVScore)
	}
}

func TestRBFFitsSmoothSurface(t *testing.T) {
	truth := func(x []float64) float64 {
		return 200 + 40*math.Tanh(2*x[0]) + 20*x[1]*x[1] + 8*x[0]*x[1]
	}
	train := synth(150, 3, 8, truth, 0.5)
	test := synth(60, 3, 9, truth, 0)
	m, err := FitRBF(train, RBFOptions{Kernel: Multiquadric})
	if err != nil {
		t.Fatal(err)
	}
	if e := TestError(m, test); e > 4 {
		t.Fatalf("RBF error %v%% too high", e)
	}
	if len(m.Centers) < 2 || len(m.W) != len(m.Centers)+1 {
		t.Fatalf("degenerate network: %d centers %d weights", len(m.Centers), len(m.W))
	}
}

func TestRBFKernels(t *testing.T) {
	if Gaussian.eval(0, 1) != 1 || Multiquadric.eval(0, 1) != 1 {
		t.Error("kernels must be 1 at distance 0")
	}
	if Gaussian.eval(10, 1) >= Gaussian.eval(1, 1) {
		t.Error("gaussian must decay")
	}
	if Multiquadric.eval(10, 1) >= Multiquadric.eval(1, 1) {
		t.Error("inverse multiquadric must decay")
	}
	if Gaussian.String() != "gaussian" || Multiquadric.String() != "multiquadric" {
		t.Error("kernel names")
	}
}

func TestBICAndGCV(t *testing.T) {
	// More parameters at equal SSE must score worse.
	if BIC(100, 50, 5) >= BIC(100, 50, 10) {
		t.Error("BIC should penalize parameters")
	}
	if !math.IsInf(BIC(100, 10, 10), 1) {
		t.Error("BIC with p <= gamma should be +Inf")
	}
	if GCV(100, 50, 5) >= GCV(100, 50, 20) {
		t.Error("GCV should penalize complexity")
	}
	if !math.IsInf(GCV(100, 10, 10), 1) {
		t.Error("GCV with c >= p should be +Inf")
	}
}

func TestEffectsOnKnownLinearModel(t *testing.T) {
	truth := func(x []float64) float64 { return 10 + 6*x[0] - 4*x[1] + 3*x[0]*x[1] }
	train := synth(100, 3, 10, truth, 0)
	m, err := FitLinear(train, doe.ExpandInteractions)
	if err != nil {
		t.Fatal(err)
	}
	space := &doe.Space{Vars: []doe.Var{
		{Name: "a", Kind: doe.Flag, Low: 0, High: 1, Levels: 2},
		{Name: "b", Kind: doe.Flag, Low: 0, High: 1, Levels: 2},
		{Name: "c", Kind: doe.Flag, Low: 0, High: 1, Levels: 2},
	}}
	// Use a centered background so interaction terms don't shift the main
	// effects (the estimator averages over the supplied points).
	center := [][]float64{{0, 0, 0}}
	if e := MainEffect(m, center, 0); math.Abs(e-6) > 1e-6 {
		t.Errorf("main effect a = %v, want 6", e)
	}
	if e := InteractionEffect(m, center, 0, 1); math.Abs(e-3) > 1e-6 {
		t.Errorf("interaction a*b = %v, want 3", e)
	}
	top := TopEffects(m, space, center, 3)
	if top[0].Label() != "a" || math.Abs(top[0].Value-6) > 1e-6 {
		t.Errorf("top effect = %+v", top[0])
	}
	found := false
	for _, e := range top {
		if e.Label() == "a * b" {
			found = true
		}
	}
	if !found {
		t.Errorf("a*b should rank in top 3: %+v", top)
	}
}

func TestPropertyLinearInterpolatesTraining(t *testing.T) {
	// With more samples than terms and zero noise, training error ≈ 0 for
	// responses that truly are linear.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c0, c1, c2 := rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10
		truth := func(x []float64) float64 { return c0 + c1*x[0] + c2*x[1] }
		train := synth(30, 2, seed, truth, 0)
		m, err := FitLinear(train, doe.ExpandLinear)
		if err != nil {
			return false
		}
		return m.TrainSSE < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	train := synth(80, 4, 11, nonlinearTruth, 0.3)
	x := []float64{0.2, -0.5, 1, -1}
	m1, _ := FitMARS(train, MARSOptions{})
	m2, _ := FitMARS(train, MARSOptions{})
	if m1.Predict(x) != m2.Predict(x) {
		t.Error("MARS must be deterministic")
	}
	r1, _ := FitRBF(train, RBFOptions{})
	r2, _ := FitRBF(train, RBFOptions{})
	if r1.Predict(x) != r2.Predict(x) {
		t.Error("RBF must be deterministic")
	}
}

func TestMARSBasisHelpers(t *testing.T) {
	b := Basis{Factors: []Hinge{{Var: 2, T: 0.5, Pos: true}, {Var: 0, T: -0.5, Pos: false}}}
	if b.degree() != 2 || !b.usesVar(2) || b.usesVar(1) {
		t.Error("basis predicates")
	}
	vs := b.Vars()
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 2 {
		t.Errorf("Vars = %v", vs)
	}
	x := []float64{-1, 0, 1}
	// (x2-0.5)+ = 0.5 ; (-0.5 - x0)+ = 0.5
	if got := b.eval(x); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("eval = %v, want 0.25", got)
	}
}
