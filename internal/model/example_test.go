package model_test

import (
	"fmt"
	"math/rand"

	"repro/internal/doe"
	"repro/internal/model"
)

// ExampleFitLinear fits the paper's Equation 2 model (intercept, main
// effects, two-factor interactions) and reads a coefficient back.
func ExampleFitLinear() {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := []float64{2*rng.Float64() - 1, 2*rng.Float64() - 1}
		xs = append(xs, x)
		ys = append(ys, 10+4*x[0]-2*x[1]+3*x[0]*x[1])
	}
	data, _ := model.NewDataset(xs, ys)
	m, err := model.FitLinear(data, doe.ExpandInteractions)
	if err != nil {
		panic(err)
	}
	// Coefficients: [intercept, x0, x1, x0*x1].
	fmt.Printf("intercept=%.1f x0=%.1f x1=%.1f x0*x1=%.1f\n",
		m.Coef[0], m.Coef[1], m.Coef[2], m.Coef[3])
	// Output:
	// intercept=10.0 x0=4.0 x1=-2.0 x0*x1=3.0
}

// ExampleFitMARS fits splines to a hinge-shaped response a global linear
// model cannot express.
func ExampleFitMARS() {
	rng := rand.New(rand.NewSource(2))
	truth := func(x float64) float64 {
		if x > 0 {
			return 100 + 50*x // kink at 0
		}
		return 100
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		x := 2*rng.Float64() - 1
		xs = append(xs, []float64{x})
		ys = append(ys, truth(x))
	}
	data, _ := model.NewDataset(xs, ys)
	m, err := model.FitMARS(data, model.MARSOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("f(-0.5)=%.0f f(0.5)=%.0f\n", m.Predict([]float64{-0.5}), m.Predict([]float64{0.5}))
	// Output:
	// f(-0.5)=100 f(0.5)=125
}

// ExampleCrossValidate estimates model error without a test set.
func ExampleCrossValidate() {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{2*rng.Float64() - 1}
		xs = append(xs, x)
		ys = append(ys, 50+20*x[0])
	}
	data, _ := model.NewDataset(xs, ys)
	cv, err := model.CrossValidate(data, 5, 1, func(d *model.Dataset) (model.Model, error) {
		return model.FitLinear(d, doe.ExpandLinear)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cv error below 0.1%:", cv < 0.1)
	// Output:
	// cv error below 0.1%: true
}
