package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/doe"
)

// synthDataset builds a deterministic dataset with the shape the harness
// produces: coded points in [-1,1] and a positive, multiplicative-ish
// response with threshold structure, so MARS finds knots and the hybrid RBF
// has residual signal to model.
func synthDataset(t *testing.T, seed int64, n, dim int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for d := range x {
			// Discrete levels, as coded design points have.
			x[d] = -1 + 0.5*float64(rng.Intn(5))
		}
		xs[i] = x
		y := 3.0 + 1.5*x[0] - 0.8*x[1] + 0.6*x[0]*x[1]
		if x[2] > 0.25 {
			y += 1.2 * (x[2] - 0.25)
		}
		y += 0.05 * rng.NormFloat64()
		ys[i] = math.Exp(y) // positive response, log-space friendly
	}
	ds, err := NewDataset(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// fitAllKinds mirrors the registry's production fit (exp.FitAllParallel):
// interaction linear on the raw response, MARS and hybrid RBF-RT on the log
// response, raw MARS for interpretation.
func fitAllKinds(t *testing.T, ds *Dataset) map[string]Model {
	t.Helper()
	lin, err := FitLinear(ds, doe.ExpandInteractions)
	if err != nil {
		t.Fatal(err)
	}
	mars, err := FitMARS(LogDataset(ds), MARSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := FitHybridRBF(LogDataset(ds), MARSOptions{}, RBFOptions{Kernel: Multiquadric})
	if err != nil {
		t.Fatal(err)
	}
	marsRaw, err := FitMARS(ds, MARSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Model{
		"linear":   lin,
		"mars":     LogModel{Inner: mars},
		"rbf":      LogModel{Inner: hy},
		"mars-raw": marsRaw,
	}
}

// TestSerializeRoundTripBitIdentical is the artifact-format property test:
// for every production model kind, across a 3x3 grid of synthetic
// "workloads" (seeds) and "scales" (sizes), encode→decode→predict must be
// bit-identical to the in-memory model at fresh probe points.
func TestSerializeRoundTripBitIdentical(t *testing.T) {
	const dim = 6
	seeds := []int64{11, 22, 33}
	sizes := []int{40, 80, 120}
	for _, seed := range seeds {
		for _, n := range sizes {
			t.Run(fmt.Sprintf("seed%d_n%d", seed, n), func(t *testing.T) {
				ds := synthDataset(t, seed, n, dim)
				kinds := fitAllKinds(t, ds)
				probes := synthDataset(t, seed+1000, 50, dim)
				for kind, m := range kinds {
					data, err := Encode(m)
					if err != nil {
						t.Fatalf("%s: encode: %v", kind, err)
					}
					back, err := Decode(data)
					if err != nil {
						t.Fatalf("%s: decode: %v", kind, err)
					}
					if back.Name() != m.Name() {
						t.Fatalf("%s: name %q != %q after round trip", kind, back.Name(), m.Name())
					}
					for i, x := range probes.X {
						want, got := m.Predict(x), back.Predict(x)
						if want != got { // bit-identical, not approximately equal
							t.Fatalf("%s: probe %d: decoded model predicts %v, in-memory %v",
								kind, i, got, want)
						}
					}
					// A second encode of the decoded model is byte-identical:
					// the format has one canonical form per model.
					data2, err := Encode(back)
					if err != nil {
						t.Fatalf("%s: re-encode: %v", kind, err)
					}
					if string(data) != string(data2) {
						t.Fatalf("%s: re-encoded bytes differ from original encoding", kind)
					}
				}
			})
		}
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	ds := synthDataset(t, 7, 40, 4)
	lin, err := FitLinear(ds, doe.ExpandLinear)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(lin)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["schema"] = json.RawMessage("99")
	bumped, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(bumped)
	var se *SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("decode of schema 99 returned %v, want *SchemaError", err)
	}
	if se.Got != 99 {
		t.Fatalf("SchemaError.Got = %d, want 99", se.Got)
	}
}

// TestEncodeSanitizesNonFiniteDiagnostics is the regression test for the
// saturated-fit case: BIC/GCV are +Inf when samples <= parameters (Equation
// 9), JSON cannot carry Inf, and the first production fit at quick scale hit
// exactly this. Encoding must coerce the diagnostics and leave predictions
// bit-identical.
func TestEncodeSanitizesNonFiniteDiagnostics(t *testing.T) {
	ds := synthDataset(t, 13, 40, 4)
	hy, err := FitHybridRBF(LogDataset(ds), MARSOptions{}, RBFOptions{Kernel: Multiquadric})
	if err != nil {
		t.Fatal(err)
	}
	hy.Trend.GCVScore = math.Inf(1)
	hy.Residual.BICScore = math.Inf(1)
	hy.Residual.TrainSSE = math.NaN()
	m := LogModel{Inner: hy}
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("encode with non-finite diagnostics: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range synthDataset(t, 14, 20, 4).X {
		if want, got := m.Predict(x), back.Predict(x); want != got {
			t.Fatalf("sanitized round trip changed prediction: %v != %v", got, want)
		}
	}
	// Sanitizing must not mutate the caller's model.
	if !math.IsInf(hy.Trend.GCVScore, 1) {
		t.Fatal("Encode mutated the in-memory model")
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"schema":1,`,
		"unknown kind":    `{"schema":1,"kind":"cubist"}`,
		"missing payload": `{"schema":1,"kind":"linear"}`,
		"torn rbf":        `{"schema":1,"kind":"rbf","rbf":{"Kernel":1,"Centers":[[0,0]],"Radii":[1],"W":[1]}}`,
		"log no inner":    `{"schema":1,"kind":"log"}`,
	}
	for name, data := range cases {
		_, err := Decode([]byte(data))
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: decode returned %v, want *CodecError", name, err)
		}
	}
}
