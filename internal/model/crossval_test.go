package model

import (
	"errors"
	"testing"

	"repro/internal/doe"
)

func linFitter(d *Dataset) (Model, error) { return FitLinear(d, doe.ExpandLinear) }

func marsFitter(d *Dataset) (Model, error) { return FitMARS(d, MARSOptions{}) }

func TestCrossValidateOnLinearTruth(t *testing.T) {
	truth := func(x []float64) float64 { return 100 + 5*x[0] - 2*x[1] }
	data := synth(60, 3, 31, truth, 0)
	cv, err := CrossValidate(data, 5, 1, linFitter)
	if err != nil {
		t.Fatal(err)
	}
	if cv > 0.01 {
		t.Fatalf("CV error %v%% on noiseless linear truth", cv)
	}
}

func TestCrossValidateRanksModels(t *testing.T) {
	data := synth(120, 4, 32, nonlinearTruth, 0.3)
	cvLin, err := CrossValidate(data, 5, 1, linFitter)
	if err != nil {
		t.Fatal(err)
	}
	cvMars, err := CrossValidate(data, 5, 1, marsFitter)
	if err != nil {
		t.Fatal(err)
	}
	if cvMars >= cvLin {
		t.Fatalf("MARS CV (%v) should beat linear CV (%v) on hinge truth", cvMars, cvLin)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	data := synth(10, 2, 33, func(x []float64) float64 { return 1 }, 0)
	if _, err := CrossValidate(data, 1, 1, linFitter); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := CrossValidate(data, 11, 1, linFitter); err == nil {
		t.Error("k > n should fail")
	}
	failing := func(*Dataset) (Model, error) { return nil, errors.New("nope") }
	if _, err := CrossValidate(data, 2, 1, failing); err == nil {
		t.Error("all-failing fitter should error")
	}
}

func TestSelectByCV(t *testing.T) {
	data := synth(120, 4, 34, nonlinearTruth, 0.3)
	name, m, scores, err := SelectByCV(data, 5, 1, map[string]func(*Dataset) (Model, error){
		"linear": linFitter,
		"mars":   marsFitter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != "mars" {
		t.Fatalf("selected %q (scores %v), want mars", name, scores)
	}
	if m == nil || len(scores) != 2 {
		t.Fatal("missing model or scores")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	data := synth(60, 3, 35, nonlinearTruth, 0.5)
	a, _ := CrossValidate(data, 4, 7, marsFitter)
	b, _ := CrossValidate(data, 4, 7, marsFitter)
	if a != b {
		t.Fatal("same seed must give same CV estimate")
	}
}
