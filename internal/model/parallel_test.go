package model

import (
	"testing"
)

// Candidate gains are computed into per-index slots and the winning knot is
// chosen by a serial in-order scan, so a parallel MARS fit must select the
// same bases with the same coefficients as a serial one — bitwise.
func TestFitMARSParallelMatchesSerial(t *testing.T) {
	train := synth(140, 5, 41, nonlinearTruth, 0.4)
	serial, err := FitMARS(train, MARSOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		parallel, err := FitMARS(train, MARSOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel.Bases) != len(serial.Bases) {
			t.Fatalf("workers=%d: %d bases, serial %d", w, len(parallel.Bases), len(serial.Bases))
		}
		for i := range serial.Bases {
			a, b := serial.Bases[i], parallel.Bases[i]
			if len(a.Factors) != len(b.Factors) {
				t.Fatalf("workers=%d: basis %d shape differs", w, i)
			}
			for f := range a.Factors {
				if a.Factors[f] != b.Factors[f] {
					t.Fatalf("workers=%d: basis %d factor %d differs", w, i, f)
				}
			}
			if serial.Coef[i] != parallel.Coef[i] {
				t.Fatalf("workers=%d: coef %d: %v != %v", w, i, parallel.Coef[i], serial.Coef[i])
			}
		}
		if serial.GCVScore != parallel.GCVScore {
			t.Fatalf("workers=%d: GCV %v != %v", w, parallel.GCVScore, serial.GCVScore)
		}
	}
}

// Each fold accumulates its own partial error and partials are combined in
// fold order, so the CV estimate is bit-for-bit worker-count independent.
func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	data := synth(90, 4, 43, nonlinearTruth, 0.5)
	fit := func(d *Dataset) (Model, error) { return FitMARS(d, MARSOptions{Workers: 1}) }
	serial, err := CrossValidateParallel(data, 5, 7, 1, fit)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		parallel, err := CrossValidateParallel(data, 5, 7, w, fit)
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Fatalf("workers=%d: CV %v != serial %v", w, parallel, serial)
		}
	}
	// The wrapper is the serial special case.
	wrapped, err := CrossValidate(data, 5, 7, fit)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != serial {
		t.Fatalf("CrossValidate %v != CrossValidateParallel(..., 1, ...) %v", wrapped, serial)
	}
}

func TestPredictAllParallelMatchesSerial(t *testing.T) {
	data := synth(120, 4, 47, nonlinearTruth, 0.3)
	m, err := FitMARS(data, MARSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := PredictAll(m, data.X)
	for _, w := range []int{0, 1, 3, 16} {
		got := PredictAllParallel(m, data.X, w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: length %d", w, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: prediction %d: %v != %v", w, i, got[i], want[i])
			}
		}
	}
}
