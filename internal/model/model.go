// Package model implements the three empirical modeling techniques the
// paper evaluates — linear regression with two-factor interactions,
// Multivariate Adaptive Regression Splines (MARS), and Radial Basis Function
// (RBF) networks with regression-tree center selection — together with the
// overfitting-control criteria (BIC, GCV) and the effect/interaction
// interpretation used for Table 4.
//
// All models consume design points in coded coordinates (each variable
// scaled to [-1, 1], log-transformed where the space says so) and predict
// the response (execution time in cycles).
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/doe"
	"repro/internal/linalg"
	"repro/internal/par"
)

// Model predicts the response at a coded design point.
type Model interface {
	// Predict returns the estimated response at coded coordinates x. A
	// fitted model is immutable, so Predict must be (and all models in
	// this package are) safe for concurrent use — PredictAllParallel and
	// the GA's batched fitness evaluation rely on it.
	Predict(x []float64) float64
	// Name identifies the technique ("linear", "mars", "rbf-rt").
	Name() string
}

// ScratchPredictor is implemented by models whose Predict must otherwise
// allocate per call (the linear model's term expansion). PredictScratch
// evaluates the model reusing scratch (at least ScratchLen values of
// capacity) and returns a value bit-identical to Predict. The service's
// predict hot path pools scratch buffers per request so replica serving is
// allocation-light.
type ScratchPredictor interface {
	Model
	// ScratchLen is the scratch capacity PredictScratch needs.
	ScratchLen() int
	// PredictScratch is Predict with caller-owned scratch space.
	PredictScratch(x, scratch []float64) float64
}

// ScratchLen returns the scratch capacity needed to evaluate m through
// PredictWith (0 when m's Predict does not allocate).
func ScratchLen(m Model) int {
	if sp, ok := m.(ScratchPredictor); ok {
		return sp.ScratchLen()
	}
	return 0
}

// PredictWith evaluates m at x, routing through PredictScratch when the
// model supports it. The result is bit-identical to m.Predict(x).
func PredictWith(m Model, x, scratch []float64) float64 {
	if sp, ok := m.(ScratchPredictor); ok {
		return sp.PredictScratch(x, scratch)
	}
	return m.Predict(x)
}

// Dataset pairs coded design points with measured responses.
type Dataset struct {
	X []([]float64) // coded points, all the same length
	Y []float64
}

// NewDataset validates and wraps points/responses.
func NewDataset(x [][]float64, y []float64) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("model: %d points but %d responses", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, errors.New("model: empty dataset")
	}
	k := len(x[0])
	for i, p := range x {
		if len(p) != k {
			return nil, fmt.Errorf("model: point %d has %d coords, want %d", i, len(p), k)
		}
	}
	return &Dataset{X: x, Y: y}, nil
}

// Dim returns the number of predictor variables.
func (d *Dataset) Dim() int { return len(d.X[0]) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Subset returns the dataset restricted to the given row indices, in the
// given order. Rows are shared, not copied — subsets are views, so
// leave-one-program-out folds over a pooled dataset cost only the index
// slices.
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	xs := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			return nil, fmt.Errorf("model: subset index %d out of range [0, %d)", j, d.Len())
		}
		xs[i] = d.X[j]
		ys[i] = d.Y[j]
	}
	return NewDataset(xs, ys)
}

// Columns returns the dataset restricted to the given predictor columns, in
// the given order. Responses are shared; rows are rebuilt. The
// leave-one-program-out baseline uses it to drop the feature block (constant
// within one program, hence singular in a per-program fit).
func (d *Dataset) Columns(cols []int) (*Dataset, error) {
	xs := make([][]float64, d.Len())
	for i, x := range d.X {
		row := make([]float64, len(cols))
		for k, c := range cols {
			if c < 0 || c >= len(x) {
				return nil, fmt.Errorf("model: column index %d out of range [0, %d)", c, len(x))
			}
			row[k] = x[c]
		}
		xs[i] = row
	}
	return NewDataset(xs, d.Y)
}

// PredictAll evaluates m at every point of xs.
func PredictAll(m Model, xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// PredictAllParallel evaluates m at every point of xs on up to workers
// goroutines (0 = GOMAXPROCS). Each output index is computed independently,
// so the result is identical to PredictAll at any worker count.
func PredictAllParallel(m Model, xs [][]float64, workers int) []float64 {
	out := make([]float64, len(xs))
	par.For(len(xs), workers, func(i int) {
		out[i] = m.Predict(xs[i])
	})
	return out
}

// TestError returns the mean absolute percentage prediction error of m on a
// test set — the accuracy metric of the paper's Table 3.
func TestError(m Model, test *Dataset) float64 {
	return linalg.MeanAbsPctError(PredictAll(m, test.X), test.Y)
}

// BIC implements the paper's Equation 9: a complexity-penalized version of
// the training SSE, with p samples and gamma model parameters.
func BIC(sse float64, p, gamma int) float64 {
	if p <= gamma {
		return math.Inf(1)
	}
	fp := float64(p)
	fg := float64(gamma)
	return (fp + (math.Log(fp)-1)*fg) / (fp * (fp - fg)) * sse
}

// GCV is the generalized cross-validation score with effective parameter
// count c: SSE/p / (1-c/p)².
func GCV(sse float64, p int, c float64) float64 {
	fp := float64(p)
	if c >= fp {
		return math.Inf(1)
	}
	d := 1 - c/fp
	return sse / fp / (d * d)
}

// LinearModel is a global parametric regression over an expanded term set
// (intercept, main effects and optionally all two-factor interactions —
// the paper's Equation 2).
type LinearModel struct {
	Expansion doe.Expansion
	Coef      []float64
	TrainSSE  float64
}

// FitLinear estimates a linear model by least squares (QR, with a ridge
// fallback when the expanded design matrix is rank-deficient, as it
// necessarily is when samples < terms).
func FitLinear(data *Dataset, exp doe.Expansion) (*LinearModel, error) {
	rows := make([][]float64, data.Len())
	for i, x := range data.X {
		rows[i] = doe.ExpandCoded(x, exp)
	}
	a := linalg.FromRows(rows)
	coef, err := linalg.LeastSquares(a, data.Y)
	if err != nil {
		return nil, fmt.Errorf("model: linear fit: %w", err)
	}
	m := &LinearModel{Expansion: exp, Coef: coef}
	m.TrainSSE = linalg.SSE(a.MulVec(coef), data.Y)
	return m, nil
}

// Predict implements Model.
func (m *LinearModel) Predict(x []float64) float64 {
	return linalg.Dot(doe.ExpandCoded(x, m.Expansion), m.Coef)
}

// Name implements Model.
func (m *LinearModel) Name() string { return "linear" }

// NumParams returns the number of fitted coefficients.
func (m *LinearModel) NumParams() int { return len(m.Coef) }

// ScratchLen implements ScratchPredictor: one slot per expanded term.
func (m *LinearModel) ScratchLen() int { return len(m.Coef) }

// PredictScratch implements ScratchPredictor, expanding into scratch
// instead of a fresh row.
func (m *LinearModel) PredictScratch(x, scratch []float64) float64 {
	return linalg.Dot(doe.ExpandCodedInto(x, m.Expansion, scratch), m.Coef)
}
