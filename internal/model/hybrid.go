package model

import "math"

// LogModel wraps a model fitted on the log-transformed response and
// exponentiates its predictions back to the original scale. Execution time
// varies multiplicatively across the microarchitectural space (memory
// latency, cache sizes), so fitting in log space aligns the squared-error
// objective with the relative-error metric the evaluation reports.
type LogModel struct {
	Inner Model
}

// Predict implements Model, returning a response on the original scale.
func (m LogModel) Predict(x []float64) float64 { return math.Exp(m.Inner.Predict(x)) }

// Name implements Model.
func (m LogModel) Name() string { return m.Inner.Name() + "-log" }

// ScratchLen implements ScratchPredictor by forwarding to the inner model
// (0 when it does not allocate).
func (m LogModel) ScratchLen() int { return ScratchLen(m.Inner) }

// PredictScratch implements ScratchPredictor.
func (m LogModel) PredictScratch(x, scratch []float64) float64 {
	return math.Exp(PredictWith(m.Inner, x, scratch))
}

// LogDataset returns a copy of d with the response log-transformed.
// Responses must be positive.
func LogDataset(d *Dataset) *Dataset {
	ys := make([]float64, len(d.Y))
	for i, y := range d.Y {
		ys[i] = math.Log(y)
	}
	nd, _ := NewDataset(d.X, ys)
	return nd
}

// HybridRBFModel is the repository's production RBF-RT variant: a MARS
// spline surface captures the global trends and threshold effects, and a
// regression-tree RBF network models the residual local structure. A pure
// kernel expansion cannot extrapolate the strong global interactions of
// this design space (memory latency × cache size and friends), which is why
// the localized network alone plateaus well above the spline hybrid; the
// hybrid keeps the regression-tree center selection and BIC control of the
// paper's RBF-RT while restoring its accuracy advantage over plain MARS.
type HybridRBFModel struct {
	Trend    *MARSModel
	Residual *RBFModel
}

// FitHybridRBF fits the trend-plus-residual network on data (typically
// log-transformed via LogDataset).
func FitHybridRBF(data *Dataset, marsOpt MARSOptions, rbfOpt RBFOptions) (*HybridRBFModel, error) {
	trend, err := FitMARS(data, marsOpt)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, data.Len())
	for i, x := range data.X {
		resid[i] = data.Y[i] - trend.Predict(x)
	}
	rdata, err := NewDataset(data.X, resid)
	if err != nil {
		return nil, err
	}
	if len(rbfOpt.LeafSizes) == 0 {
		rbfOpt.LeafSizes = []int{2, 4, 8, 16}
	}
	residual, err := FitRBF(rdata, rbfOpt)
	if err != nil {
		return nil, err
	}
	return &HybridRBFModel{Trend: trend, Residual: residual}, nil
}

// Predict implements Model.
func (m *HybridRBFModel) Predict(x []float64) float64 {
	return m.Trend.Predict(x) + m.Residual.Predict(x)
}

// Name implements Model.
func (m *HybridRBFModel) Name() string { return "rbf-rt" }

// NumParams returns the total trained parameter count.
func (m *HybridRBFModel) NumParams() int {
	return m.Trend.NumParams() + m.Residual.NumParams()
}
