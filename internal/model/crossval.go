package model

import (
	"fmt"
	"math/rand"

	"repro/internal/par"
)

// CrossValidate estimates a fitting procedure's prediction error by k-fold
// cross-validation over a dataset: the mean absolute percentage error over
// held-out folds. It is the assessment tool to reach for when simulations
// are too expensive for an independent test design — the alternative the
// paper's GCV/BIC criteria approximate analytically.
//
// It is the serial reference for CrossValidateParallel, which produces the
// identical estimate on a worker pool.
func CrossValidate(data *Dataset, k int, seed int64,
	fit func(*Dataset) (Model, error)) (float64, error) {
	return CrossValidateParallel(data, k, seed, 1, fit)
}

// CrossValidateParallel is CrossValidate with the k independent folds fitted
// and scored on up to workers goroutines (0 = GOMAXPROCS). Each fold reads
// only its own slice of the shared permutation and accumulates its own
// partial error, and the partials are combined in fold order — so the
// estimate is bit-for-bit identical for every worker count. fit must be
// safe for concurrent calls on distinct datasets.
func CrossValidateParallel(data *Dataset, k int, seed int64, workers int,
	fit func(*Dataset) (Model, error)) (float64, error) {
	n := data.Len()
	if k < 2 || k > n {
		return 0, fmt.Errorf("model: k=%d folds invalid for %d samples", k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)

	type foldResult struct {
		sumErr float64
		count  int
		err    error
	}
	results := make([]foldResult, k)
	par.For(k, workers, func(fold int) {
		var trainX, testX [][]float64
		var trainY, testY []float64
		for i, idx := range perm {
			if i%k == fold {
				testX = append(testX, data.X[idx])
				testY = append(testY, data.Y[idx])
			} else {
				trainX = append(trainX, data.X[idx])
				trainY = append(trainY, data.Y[idx])
			}
		}
		trainDS, err := NewDataset(trainX, trainY)
		if err != nil {
			results[fold].err = err
			return
		}
		m, err := fit(trainDS)
		if err != nil {
			// A fold can be degenerate (e.g. all-identical responses);
			// skip rather than fail the whole estimate.
			return
		}
		for i, x := range testX {
			if testY[i] == 0 {
				continue
			}
			e := m.Predict(x) - testY[i]
			if e < 0 {
				e = -e
			}
			results[fold].sumErr += 100 * e / abs(testY[i])
			results[fold].count++
		}
	})

	totalErr, counted := 0.0, 0
	for _, r := range results {
		if r.err != nil {
			return 0, r.err
		}
		totalErr += r.sumErr
		counted += r.count
	}
	if counted == 0 {
		return 0, fmt.Errorf("model: cross-validation produced no usable folds")
	}
	return totalErr / float64(counted), nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SelectByCV picks the fitting procedure with the lowest k-fold CV error.
// Returns the winning name, its refit-on-everything model, and the per-name
// CV scores.
func SelectByCV(data *Dataset, k int, seed int64,
	fitters map[string]func(*Dataset) (Model, error)) (string, Model, map[string]float64, error) {
	scores := map[string]float64{}
	bestName := ""
	for name, fit := range fitters {
		score, err := CrossValidate(data, k, seed, fit)
		if err != nil {
			continue
		}
		scores[name] = score
		if bestName == "" || score < scores[bestName] {
			bestName = name
		}
	}
	if bestName == "" {
		return "", nil, nil, fmt.Errorf("model: no fitter succeeded under cross-validation")
	}
	m, err := fitters[bestName](data)
	if err != nil {
		return "", nil, nil, err
	}
	return bestName, m, scores, nil
}
