package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/par"
)

// Hinge is one spline factor: (x_v − t)₊ when Pos, (t − x_v)₊ otherwise.
type Hinge struct {
	Var int
	T   float64
	Pos bool
}

func (h Hinge) eval(x []float64) float64 {
	d := x[h.Var] - h.T
	if !h.Pos {
		d = -d
	}
	if d > 0 {
		return d
	}
	return 0
}

// Basis is a product of hinges (empty product = the intercept).
type Basis struct {
	Factors []Hinge
}

func (b Basis) eval(x []float64) float64 {
	v := 1.0
	for _, h := range b.Factors {
		v *= h.eval(x)
		if v == 0 {
			return 0
		}
	}
	return v
}

// degree returns the interaction order of the basis.
func (b Basis) degree() int { return len(b.Factors) }

func (b Basis) usesVar(v int) bool {
	for _, h := range b.Factors {
		if h.Var == v {
			return true
		}
	}
	return false
}

// Vars returns the sorted set of variables the basis depends on.
func (b Basis) Vars() []int {
	var vs []int
	for _, h := range b.Factors {
		vs = append(vs, h.Var)
	}
	sort.Ints(vs)
	return vs
}

// MARSModel is a fitted multivariate adaptive regression splines model.
type MARSModel struct {
	Bases    []Basis
	Coef     []float64
	GCVScore float64
	TrainSSE float64
}

// MARSOptions tunes the fit.
type MARSOptions struct {
	MaxTerms  int // forward-pass basis budget (default 2*dim+1, capped by samples)
	MaxDegree int // maximum interaction order (default 2, as in the paper)
	MaxKnots  int // candidate knots per variable (default 8 quantiles)
	Penalty   float64
	// Workers bounds the forward-pass candidate-scoring concurrency
	// (0 = GOMAXPROCS, 1 = serial). The fitted model is bit-for-bit
	// identical for every value: candidate gains are computed
	// independently and the winner is selected in enumeration order.
	Workers int
}

func (o MARSOptions) withDefaults(dim, n int) MARSOptions {
	if o.MaxTerms == 0 {
		o.MaxTerms = 2*dim + 1
	}
	if o.MaxTerms > n-2 {
		o.MaxTerms = n - 2
	}
	if o.MaxTerms < 3 {
		o.MaxTerms = 3
	}
	if o.MaxDegree == 0 {
		o.MaxDegree = 2
	}
	if o.MaxKnots == 0 {
		o.MaxKnots = 8
	}
	if o.Penalty == 0 {
		o.Penalty = 3
	}
	return o
}

// FitMARS runs Friedman's two-phase algorithm: a greedy forward pass adding
// hinge-pair bases that most reduce residual error, then a backward pruning
// pass deleting bases while the GCV criterion improves.
func FitMARS(data *Dataset, opt MARSOptions) (*MARSModel, error) {
	n, dim := data.Len(), data.Dim()
	opt = opt.withDefaults(dim, n)

	bases := []Basis{{}} // intercept
	cols := [][]float64{constCol(n)}

	// Orthonormal span Q and current residual for fast candidate scoring.
	var q [][]float64
	r := append([]float64{}, data.Y...)
	pushColumn := func(c []float64) {
		qc := orthogonalize(c, q)
		nrm := linalg.Norm2(qc)
		if nrm < 1e-10 {
			return
		}
		for i := range qc {
			qc[i] /= nrm
		}
		proj := linalg.Dot(qc, r)
		for i := range r {
			r[i] -= proj * qc[i]
		}
		q = append(q, qc)
	}
	pushColumn(cols[0])

	knotsFor := knotTable(data, opt.MaxKnots)

	for len(bases) < opt.MaxTerms {
		// Enumerate all (parent, var, knot) candidates in the serial scan
		// order, score them on the worker pool (each gain depends only on
		// the shared read-only q/r state), then pick the first strict
		// maximum — exactly the serial selection, at any worker count.
		type cand struct {
			parent int
			v      int
			t      float64
		}
		var cands []cand
		for pi, parent := range bases {
			if parent.degree() >= opt.MaxDegree {
				continue
			}
			for v := 0; v < dim; v++ {
				if parent.usesVar(v) {
					continue
				}
				for _, t := range knotsFor[v] {
					cands = append(cands, cand{pi, v, t})
				}
			}
		}
		gains := make([]float64, len(cands))
		par.For(len(cands), opt.Workers, func(i int) {
			c := cands[i]
			c1, c2 := hingeCols(data, cols[c.parent], c.v, c.t)
			gains[i] = pairGain(c1, c2, q, r)
		})
		best, bestGain := cand{}, 1e-9
		bestI := -1
		for i, g := range gains {
			if g > bestGain {
				best, bestGain, bestI = cands[i], g, i
			}
		}
		if bestI < 0 {
			break
		}
		parent := bases[best.parent]
		pcol := cols[best.parent]
		c1, c2 := hingeCols(data, pcol, best.v, best.t)
		b1 := Basis{Factors: append(append([]Hinge{}, parent.Factors...), Hinge{best.v, best.t, true})}
		b2 := Basis{Factors: append(append([]Hinge{}, parent.Factors...), Hinge{best.v, best.t, false})}
		bases = append(bases, b1, b2)
		cols = append(cols, c1, c2)
		pushColumn(c1)
		pushColumn(c2)
	}

	// Backward pruning by GCV, on a cached column Gram instead of one full
	// least-squares refit per (level, dropped term). The Gram G = XᵀX and
	// moment vector Xᵀy over all forward-pass columns are computed once
	// (O(n·p²)); each pruning level then needs a single O(m³) Cholesky of
	// the kept submatrix, after which every drop candidate is scored in
	// O(1) by the classic drop-one identity
	//
	//	SSE(S \ {j}) = SSE(S) + βⱼ² / (G_S⁻¹)ⱼⱼ,
	//
	// equal (in exact arithmetic) to the SSE of a full refit without j.
	p := len(cols)
	gram := linalg.NewMatrix(p, p)
	par.For(p, opt.Workers, func(i int) {
		gi := gram.Row(i)
		for j := 0; j <= i; j++ {
			gi[j] = linalg.Dot(cols[i], cols[j])
		}
	})
	for i := 0; i < p; i++ { // mirror the lower triangle
		for j := i + 1; j < p; j++ {
			gram.Set(i, j, gram.At(j, i))
		}
	}
	moment := make([]float64, p)
	for i := 0; i < p; i++ {
		moment[i] = linalg.Dot(cols[i], data.Y)
	}
	yty := linalg.Dot(data.Y, data.Y)

	// solveSub factors the kept submatrix and returns the normal-equation
	// coefficients, the diagonal of the inverse, and the training SSE. A
	// tiny ridge (matching linalg.LeastSquares' rank-deficiency fallback)
	// rescues exactly collinear hinge pairs.
	solveSub := func(idx []int) (beta, invDiag []float64, sse float64, ok bool) {
		m := len(idx)
		gs := linalg.NewMatrix(m, m)
		bs := make([]float64, m)
		for a, ia := range idx {
			bs[a] = moment[ia]
			ga := gs.Row(a)
			gia := gram.Row(ia)
			for b, ib := range idx {
				ga[b] = gia[ib]
			}
		}
		ch, err := linalg.FactorCholesky(gs)
		if err != nil {
			for a := 0; a < m; a++ {
				gs.Set(a, a, gs.At(a, a)+1e-8)
			}
			if ch, err = linalg.FactorCholesky(gs); err != nil {
				return nil, nil, 0, false
			}
		}
		if beta, err = ch.Solve(bs); err != nil {
			return nil, nil, 0, false
		}
		sse = yty - linalg.Dot(beta, bs)
		if sse < 0 {
			sse = 0
		}
		return beta, ch.InverseDiag(), sse, true
	}
	effParams := func(terms int) float64 {
		return float64(terms) + opt.Penalty*float64(terms-1)/2
	}

	cur := make([]int, p)
	for i := range cur {
		cur[i] = i
	}
	bestKeep := append([]int{}, cur...)
	bestGCV := math.Inf(1)
	beta, invDiag, sse, ok := solveSub(cur)
	if ok {
		bestGCV = GCV(sse, n, effParams(len(cur)))
	}
	for ok && len(cur) > 1 {
		// Score every single-term drop from the shared factorization;
		// never drop the intercept (position 0).
		bestJ, bestLocalGCV := -1, math.Inf(1)
		for j := 1; j < len(cur); j++ {
			d := invDiag[j]
			if d <= 0 {
				continue
			}
			g := GCV(sse+beta[j]*beta[j]/d, n, effParams(len(cur)-1))
			if g < bestLocalGCV {
				bestJ, bestLocalGCV = j, g
			}
		}
		if bestJ < 0 {
			break
		}
		cur = append(cur[:bestJ], cur[bestJ+1:]...)
		if beta, invDiag, sse, ok = solveSub(cur); !ok {
			break
		}
		if g := GCV(sse, n, effParams(len(cur))); g < bestGCV {
			bestGCV = g
			bestKeep = append(bestKeep[:0], cur...)
		}
	}

	// Final refit of the winning subset by QR, the same solver the
	// per-trial path used, so reported coefficients keep its accuracy.
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(bestKeep))
		for j, bi := range bestKeep {
			row[j] = cols[bi][i]
		}
		rows[i] = row
	}
	a := linalg.FromRows(rows)
	coef, err := linalg.LeastSquares(a, data.Y)
	if err != nil {
		return nil, fmt.Errorf("model: mars fit: %w", err)
	}
	finalSSE := linalg.SSE(a.MulVec(coef), data.Y)
	m := &MARSModel{GCVScore: GCV(finalSSE, n, effParams(len(bestKeep))), TrainSSE: finalSSE}
	for _, bi := range bestKeep {
		m.Bases = append(m.Bases, bases[bi])
	}
	m.Coef = coef
	return m, nil
}

// Predict implements Model.
func (m *MARSModel) Predict(x []float64) float64 {
	s := 0.0
	for i, b := range m.Bases {
		s += m.Coef[i] * b.eval(x)
	}
	return s
}

// Name implements Model.
func (m *MARSModel) Name() string { return "mars" }

// NumParams returns the number of basis coefficients.
func (m *MARSModel) NumParams() int { return len(m.Coef) }

func constCol(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

// knotTable returns candidate knots per variable: up to maxKnots quantiles
// of the distinct observed values, excluding the maximum (a hinge there is
// identically zero on the data).
func knotTable(data *Dataset, maxKnots int) [][]float64 {
	dim := data.Dim()
	out := make([][]float64, dim)
	for v := 0; v < dim; v++ {
		vals := make([]float64, data.Len())
		for i, x := range data.X {
			vals[i] = x[v]
		}
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, x := range vals {
			if i == 0 || x != vals[i-1] {
				uniq = append(uniq, x)
			}
		}
		if len(uniq) <= 1 {
			continue
		}
		cands := uniq[:len(uniq)-1]
		if len(cands) <= maxKnots {
			out[v] = append([]float64{}, cands...)
			continue
		}
		for i := 0; i < maxKnots; i++ {
			out[v] = append(out[v], cands[i*len(cands)/maxKnots])
		}
	}
	return out
}

func hingeCols(data *Dataset, pcol []float64, v int, t float64) ([]float64, []float64) {
	n := data.Len()
	c1 := make([]float64, n)
	c2 := make([]float64, n)
	for i := 0; i < n; i++ {
		if pcol[i] == 0 {
			continue
		}
		d := data.X[i][v] - t
		if d > 0 {
			c1[i] = pcol[i] * d
		} else if d < 0 {
			c2[i] = -pcol[i] * d
		}
	}
	return c1, c2
}

// orthogonalize returns c minus its projection onto the orthonormal set q.
func orthogonalize(c []float64, q [][]float64) []float64 {
	out := append([]float64{}, c...)
	for _, qi := range q {
		p := linalg.Dot(qi, out)
		if p == 0 {
			continue
		}
		for i := range out {
			out[i] -= p * qi[i]
		}
	}
	return out
}

// pairGain scores adding the hinge pair: the squared residual projection
// captured by the two columns after orthogonalization against the current
// span.
func pairGain(c1, c2 []float64, q [][]float64, r []float64) float64 {
	gain := 0.0
	q1 := orthogonalize(c1, q)
	n1 := linalg.Norm2(q1)
	if n1 > 1e-10 {
		for i := range q1 {
			q1[i] /= n1
		}
		p := linalg.Dot(q1, r)
		gain += p * p
	} else {
		q1 = nil
	}
	q2 := orthogonalize(c2, q)
	if q1 != nil {
		p := linalg.Dot(q1, q2)
		for i := range q2 {
			q2[i] -= p * q1[i]
		}
	}
	n2 := linalg.Norm2(q2)
	if n2 > 1e-10 {
		p := linalg.Dot(q2, r) / n2
		gain += p * p
	}
	return gain
}
