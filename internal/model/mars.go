package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Hinge is one spline factor: (x_v − t)₊ when Pos, (t − x_v)₊ otherwise.
type Hinge struct {
	Var int
	T   float64
	Pos bool
}

func (h Hinge) eval(x []float64) float64 {
	d := x[h.Var] - h.T
	if !h.Pos {
		d = -d
	}
	if d > 0 {
		return d
	}
	return 0
}

// Basis is a product of hinges (empty product = the intercept).
type Basis struct {
	Factors []Hinge
}

func (b Basis) eval(x []float64) float64 {
	v := 1.0
	for _, h := range b.Factors {
		v *= h.eval(x)
		if v == 0 {
			return 0
		}
	}
	return v
}

// degree returns the interaction order of the basis.
func (b Basis) degree() int { return len(b.Factors) }

func (b Basis) usesVar(v int) bool {
	for _, h := range b.Factors {
		if h.Var == v {
			return true
		}
	}
	return false
}

// Vars returns the sorted set of variables the basis depends on.
func (b Basis) Vars() []int {
	var vs []int
	for _, h := range b.Factors {
		vs = append(vs, h.Var)
	}
	sort.Ints(vs)
	return vs
}

// MARSModel is a fitted multivariate adaptive regression splines model.
type MARSModel struct {
	Bases    []Basis
	Coef     []float64
	GCVScore float64
	TrainSSE float64
}

// MARSOptions tunes the fit.
type MARSOptions struct {
	MaxTerms  int // forward-pass basis budget (default 2*dim+1, capped by samples)
	MaxDegree int // maximum interaction order (default 2, as in the paper)
	MaxKnots  int // candidate knots per variable (default 8 quantiles)
	Penalty   float64
}

func (o MARSOptions) withDefaults(dim, n int) MARSOptions {
	if o.MaxTerms == 0 {
		o.MaxTerms = 2*dim + 1
	}
	if o.MaxTerms > n-2 {
		o.MaxTerms = n - 2
	}
	if o.MaxTerms < 3 {
		o.MaxTerms = 3
	}
	if o.MaxDegree == 0 {
		o.MaxDegree = 2
	}
	if o.MaxKnots == 0 {
		o.MaxKnots = 8
	}
	if o.Penalty == 0 {
		o.Penalty = 3
	}
	return o
}

// FitMARS runs Friedman's two-phase algorithm: a greedy forward pass adding
// hinge-pair bases that most reduce residual error, then a backward pruning
// pass deleting bases while the GCV criterion improves.
func FitMARS(data *Dataset, opt MARSOptions) (*MARSModel, error) {
	n, dim := data.Len(), data.Dim()
	opt = opt.withDefaults(dim, n)

	bases := []Basis{{}} // intercept
	cols := [][]float64{constCol(n)}

	// Orthonormal span Q and current residual for fast candidate scoring.
	var q [][]float64
	r := append([]float64{}, data.Y...)
	pushColumn := func(c []float64) {
		qc := orthogonalize(c, q)
		nrm := linalg.Norm2(qc)
		if nrm < 1e-10 {
			return
		}
		for i := range qc {
			qc[i] /= nrm
		}
		proj := linalg.Dot(qc, r)
		for i := range r {
			r[i] -= proj * qc[i]
		}
		q = append(q, qc)
	}
	pushColumn(cols[0])

	knotsFor := knotTable(data, opt.MaxKnots)

	for len(bases) < opt.MaxTerms {
		type cand struct {
			parent int
			v      int
			t      float64
			gain   float64
		}
		best := cand{gain: 1e-9}
		for pi, parent := range bases {
			if parent.degree() >= opt.MaxDegree {
				continue
			}
			pcol := cols[pi]
			for v := 0; v < dim; v++ {
				if parent.usesVar(v) {
					continue
				}
				for _, t := range knotsFor[v] {
					c1, c2 := hingeCols(data, pcol, v, t)
					g := pairGain(c1, c2, q, r)
					if g > best.gain {
						best = cand{pi, v, t, g}
					}
				}
			}
		}
		if best.gain <= 1e-9 {
			break
		}
		parent := bases[best.parent]
		pcol := cols[best.parent]
		c1, c2 := hingeCols(data, pcol, best.v, best.t)
		b1 := Basis{Factors: append(append([]Hinge{}, parent.Factors...), Hinge{best.v, best.t, true})}
		b2 := Basis{Factors: append(append([]Hinge{}, parent.Factors...), Hinge{best.v, best.t, false})}
		bases = append(bases, b1, b2)
		cols = append(cols, c1, c2)
		pushColumn(c1)
		pushColumn(c2)
	}

	// Backward pruning by GCV.
	fit := func(keep []int) ([]float64, float64, error) {
		rows := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, len(keep))
			for j, bi := range keep {
				row[j] = cols[bi][i]
			}
			rows[i] = row
		}
		a := linalg.FromRows(rows)
		coef, err := linalg.LeastSquares(a, data.Y)
		if err != nil {
			return nil, 0, err
		}
		return coef, linalg.SSE(a.MulVec(coef), data.Y), nil
	}
	effParams := func(terms int) float64 {
		return float64(terms) + opt.Penalty*float64(terms-1)/2
	}

	keep := make([]int, len(bases))
	for i := range keep {
		keep[i] = i
	}
	coef, sse, err := fit(keep)
	if err != nil {
		return nil, fmt.Errorf("model: mars fit: %w", err)
	}
	bestKeep := append([]int{}, keep...)
	bestCoef, bestSSE := coef, sse
	bestGCV := GCV(sse, n, effParams(len(keep)))

	cur := append([]int{}, keep...)
	for len(cur) > 1 {
		bestLocalGCV := math.Inf(1)
		var bestLocal []int
		var bestLocalCoef []float64
		var bestLocalSSE float64
		for drop := 1; drop < len(cur); drop++ { // never drop the intercept
			trial := append([]int{}, cur[:drop]...)
			trial = append(trial, cur[drop+1:]...)
			c, s, err := fit(trial)
			if err != nil {
				continue
			}
			g := GCV(s, n, effParams(len(trial)))
			if g < bestLocalGCV {
				bestLocalGCV, bestLocal, bestLocalCoef, bestLocalSSE = g, trial, c, s
			}
		}
		if bestLocal == nil {
			break
		}
		cur = bestLocal
		if bestLocalGCV < bestGCV {
			bestGCV = bestLocalGCV
			bestKeep = append([]int{}, cur...)
			bestCoef, bestSSE = bestLocalCoef, bestLocalSSE
		}
	}

	m := &MARSModel{GCVScore: bestGCV, TrainSSE: bestSSE}
	for _, bi := range bestKeep {
		m.Bases = append(m.Bases, bases[bi])
	}
	m.Coef = bestCoef
	return m, nil
}

// Predict implements Model.
func (m *MARSModel) Predict(x []float64) float64 {
	s := 0.0
	for i, b := range m.Bases {
		s += m.Coef[i] * b.eval(x)
	}
	return s
}

// Name implements Model.
func (m *MARSModel) Name() string { return "mars" }

// NumParams returns the number of basis coefficients.
func (m *MARSModel) NumParams() int { return len(m.Coef) }

func constCol(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

// knotTable returns candidate knots per variable: up to maxKnots quantiles
// of the distinct observed values, excluding the maximum (a hinge there is
// identically zero on the data).
func knotTable(data *Dataset, maxKnots int) [][]float64 {
	dim := data.Dim()
	out := make([][]float64, dim)
	for v := 0; v < dim; v++ {
		vals := make([]float64, data.Len())
		for i, x := range data.X {
			vals[i] = x[v]
		}
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, x := range vals {
			if i == 0 || x != vals[i-1] {
				uniq = append(uniq, x)
			}
		}
		if len(uniq) <= 1 {
			continue
		}
		cands := uniq[:len(uniq)-1]
		if len(cands) <= maxKnots {
			out[v] = append([]float64{}, cands...)
			continue
		}
		for i := 0; i < maxKnots; i++ {
			out[v] = append(out[v], cands[i*len(cands)/maxKnots])
		}
	}
	return out
}

func hingeCols(data *Dataset, pcol []float64, v int, t float64) ([]float64, []float64) {
	n := data.Len()
	c1 := make([]float64, n)
	c2 := make([]float64, n)
	for i := 0; i < n; i++ {
		if pcol[i] == 0 {
			continue
		}
		d := data.X[i][v] - t
		if d > 0 {
			c1[i] = pcol[i] * d
		} else if d < 0 {
			c2[i] = -pcol[i] * d
		}
	}
	return c1, c2
}

// orthogonalize returns c minus its projection onto the orthonormal set q.
func orthogonalize(c []float64, q [][]float64) []float64 {
	out := append([]float64{}, c...)
	for _, qi := range q {
		p := linalg.Dot(qi, out)
		if p == 0 {
			continue
		}
		for i := range out {
			out[i] -= p * qi[i]
		}
	}
	return out
}

// pairGain scores adding the hinge pair: the squared residual projection
// captured by the two columns after orthogonalization against the current
// span.
func pairGain(c1, c2 []float64, q [][]float64, r []float64) float64 {
	gain := 0.0
	q1 := orthogonalize(c1, q)
	n1 := linalg.Norm2(q1)
	if n1 > 1e-10 {
		for i := range q1 {
			q1[i] /= n1
		}
		p := linalg.Dot(q1, r)
		gain += p * p
	} else {
		q1 = nil
	}
	q2 := orthogonalize(c2, q)
	if q1 != nil {
		p := linalg.Dot(q1, q2)
		for i := range q2 {
			q2[i] -= p * q1[i]
		}
	}
	n2 := linalg.Norm2(q2)
	if n2 > 1e-10 {
		p := linalg.Dot(q2, r) / n2
		gain += p * p
	}
	return gain
}
