package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// RBFKernel selects the radial basis function.
type RBFKernel uint8

const (
	// Gaussian is exp(−d²/2σ²).
	Gaussian RBFKernel = iota
	// Multiquadric is the inverse multiquadric 1/√(1 + d²/2σ²), the kernel
	// the paper found most accurate.
	Multiquadric
)

func (k RBFKernel) String() string {
	if k == Gaussian {
		return "gaussian"
	}
	return "multiquadric"
}

func (k RBFKernel) eval(d2, sigma2 float64) float64 {
	z := d2 / (2 * sigma2)
	if k == Gaussian {
		return math.Exp(-z)
	}
	return 1 / math.Sqrt(1+z)
}

// RBFModel is a fitted radial basis function network.
type RBFModel struct {
	Kernel   RBFKernel
	Centers  [][]float64
	Radii    []float64 // σ per neuron
	W        []float64 // W[0] is the bias, W[1+i] weights neuron i
	BICScore float64
	TrainSSE float64
}

// RBFOptions tunes the fit.
type RBFOptions struct {
	Kernel RBFKernel
	// LeafSizes are the regression-tree minimum leaf sizes tried; the
	// network with the best BIC wins. Default {4, 8, 16}.
	LeafSizes []int
	// RadiusScale multiplies the nearest-center distance to set each
	// neuron's radius (default 2).
	RadiusScale float64
}

func (o RBFOptions) withDefaults() RBFOptions {
	if len(o.LeafSizes) == 0 {
		o.LeafSizes = []int{4, 8, 16}
	}
	if o.RadiusScale == 0 {
		o.RadiusScale = 2
	}
	return o
}

// FitRBF trains an RBF network: a regression tree partitions the design
// space into regions of roughly uniform response, the training point nearest
// each leaf centroid becomes a neuron center (Orr's regression-tree method),
// radii derive from inter-center spacing, output weights come from a
// penalized least-squares solve, and the BIC criterion (paper Equation 9)
// selects among tree granularities to avoid overfitting.
func FitRBF(data *Dataset, opt RBFOptions) (*RBFModel, error) {
	opt = opt.withDefaults()
	var best *RBFModel
	for _, leaf := range opt.LeafSizes {
		centers := treeCenters(data, leaf)
		if len(centers) == 0 {
			continue
		}
		m, err := fitRBFWithCenters(data, centers, opt)
		if err != nil {
			continue
		}
		if best == nil || m.BICScore < best.BICScore {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("model: rbf fit failed for all leaf sizes")
	}
	return best, nil
}

func fitRBFWithCenters(data *Dataset, centers [][]float64, opt RBFOptions) (*RBFModel, error) {
	n := data.Len()
	m := &RBFModel{Kernel: opt.Kernel, Centers: centers}
	m.Radii = radiiFor(centers, opt.RadiusScale)

	rows := make([][]float64, n)
	for i, x := range data.X {
		row := make([]float64, 1+len(centers))
		row[0] = 1
		for c, ctr := range centers {
			row[1+c] = m.Kernel.eval(linalg.Dist2(x, ctr), m.Radii[c]*m.Radii[c])
		}
		rows[i] = row
	}
	a := linalg.FromRows(rows)
	// Mild ridge keeps nearly-coincident neurons from blowing up weights.
	w, err := linalg.RidgeLeastSquares(a, data.Y, 1e-6)
	if err != nil {
		return nil, err
	}
	m.W = w
	m.TrainSSE = linalg.SSE(a.MulVec(w), data.Y)
	m.BICScore = BIC(m.TrainSSE, n, len(w))
	return m, nil
}

// Predict implements Model.
func (m *RBFModel) Predict(x []float64) float64 {
	s := m.W[0]
	for c, ctr := range m.Centers {
		s += m.W[1+c] * m.Kernel.eval(linalg.Dist2(x, ctr), m.Radii[c]*m.Radii[c])
	}
	return s
}

// Name implements Model.
func (m *RBFModel) Name() string { return "rbf-rt" }

// NumParams returns the number of trained weights.
func (m *RBFModel) NumParams() int { return len(m.W) }

// radiiFor sets each center's σ to scale × its nearest-neighbor distance
// (falling back to 1 for a single center).
func radiiFor(centers [][]float64, scale float64) []float64 {
	radii := make([]float64, len(centers))
	for i := range centers {
		nearest := math.Inf(1)
		for j := range centers {
			if i == j {
				continue
			}
			if d := linalg.Dist2(centers[i], centers[j]); d < nearest {
				nearest = d
			}
		}
		if math.IsInf(nearest, 1) || nearest == 0 {
			radii[i] = 1
		} else {
			radii[i] = scale * math.Sqrt(nearest)
		}
		if radii[i] < 1e-3 {
			radii[i] = 1e-3
		}
	}
	return radii
}

// treeCenters grows a CART-style regression tree (SSE-minimizing axis splits)
// until leaves shrink to minLeaf, then returns the training point closest to
// each leaf centroid.
func treeCenters(data *Dataset, minLeaf int) [][]float64 {
	var leaves [][]int
	var split func(idx []int)
	split = func(idx []int) {
		if len(idx) < 2*minLeaf {
			leaves = append(leaves, idx)
			return
		}
		v, thresh, ok := bestSplit(data, idx, minLeaf)
		if !ok {
			leaves = append(leaves, idx)
			return
		}
		var left, right []int
		for _, i := range idx {
			if data.X[i][v] <= thresh {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) < minLeaf || len(right) < minLeaf {
			leaves = append(leaves, idx)
			return
		}
		split(left)
		split(right)
	}
	all := make([]int, data.Len())
	for i := range all {
		all[i] = i
	}
	split(all)

	dim := data.Dim()
	var centers [][]float64
	for _, leaf := range leaves {
		centroid := make([]float64, dim)
		for _, i := range leaf {
			for d, x := range data.X[i] {
				centroid[d] += x
			}
		}
		for d := range centroid {
			centroid[d] /= float64(len(leaf))
		}
		bestI, bestD := leaf[0], math.Inf(1)
		for _, i := range leaf {
			if d := linalg.Dist2(data.X[i], centroid); d < bestD {
				bestI, bestD = i, d
			}
		}
		centers = append(centers, data.X[bestI])
	}
	return centers
}

// bestSplit finds the axis-aligned split minimizing total child SSE.
func bestSplit(data *Dataset, idx []int, minLeaf int) (int, float64, bool) {
	dim := data.Dim()
	bestV, bestT, bestSSE, found := 0, 0.0, math.Inf(1), false

	type pair struct {
		x, y float64
	}
	for v := 0; v < dim; v++ {
		pairs := make([]pair, len(idx))
		for i, ix := range idx {
			pairs[i] = pair{data.X[ix][v], data.Y[ix]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		// Prefix sums for O(1) SSE of [0,i) and [i,n).
		n := len(pairs)
		sum, sum2 := make([]float64, n+1), make([]float64, n+1)
		for i, p := range pairs {
			sum[i+1] = sum[i] + p.y
			sum2[i+1] = sum2[i] + p.y*p.y
		}
		sseRange := func(a, b int) float64 { // [a, b)
			c := float64(b - a)
			if c == 0 {
				return 0
			}
			s := sum[b] - sum[a]
			return (sum2[b] - sum2[a]) - s*s/c
		}
		for i := minLeaf; i <= n-minLeaf; i++ {
			if pairs[i-1].x == pairs[i].x {
				continue // can't split between equal values
			}
			sse := sseRange(0, i) + sseRange(i, n)
			if sse < bestSSE {
				bestSSE = sse
				bestV = v
				bestT = (pairs[i-1].x + pairs[i].x) / 2
				found = true
			}
		}
	}
	return bestV, bestT, found
}
