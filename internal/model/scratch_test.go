package model

import (
	"testing"
)

// TestPredictScratchBitIdentical pins the hot-path guarantee: PredictWith
// over a reused scratch buffer returns exactly what Predict returns, for
// every production model kind.
func TestPredictScratchBitIdentical(t *testing.T) {
	ds := synthDataset(t, 5, 60, 6)
	kinds := fitAllKinds(t, ds)
	probes := synthDataset(t, 6, 40, 6)
	for kind, m := range kinds {
		scratch := make([]float64, ScratchLen(m))
		for i, x := range probes.X {
			want := m.Predict(x)
			got := PredictWith(m, x, scratch)
			if want != got {
				t.Fatalf("%s: probe %d: PredictWith %v != Predict %v", kind, i, got, want)
			}
		}
	}
	// The linear model really is the allocating kind the seam exists for.
	if ScratchLen(kinds["linear"]) == 0 {
		t.Fatal("linear model reports no scratch need")
	}
	// Non-allocating kinds need no scratch and still work with nil.
	if got, want := PredictWith(kinds["mars-raw"], probes.X[0], nil), kinds["mars-raw"].Predict(probes.X[0]); got != want {
		t.Fatalf("nil-scratch PredictWith %v != Predict %v", got, want)
	}
}
