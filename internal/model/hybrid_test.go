package model

import (
	"math"
	"testing"
)

func TestLogDatasetAndLogModel(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{math.E, math.E * math.E}
	d, _ := NewDataset(xs, ys)
	ld := LogDataset(d)
	if math.Abs(ld.Y[0]-1) > 1e-12 || math.Abs(ld.Y[1]-2) > 1e-12 {
		t.Fatalf("log transform wrong: %v", ld.Y)
	}
	inner := &LinearModel{Coef: []float64{1, 1}} // 1 + x in log space
	lm := LogModel{Inner: inner}
	if math.Abs(lm.Predict([]float64{1})-math.E*math.E) > 1e-9 {
		t.Fatal("LogModel should exponentiate")
	}
	if lm.Name() != "linear-log" {
		t.Fatalf("name = %q", lm.Name())
	}
}

func TestHybridRBFBeatsTrendAlone(t *testing.T) {
	// Truth: global trend plus a localized bump MARS's hinge products in
	// two variables struggle to express exactly.
	truth := func(x []float64) float64 {
		bump := math.Exp(-4 * (x[0]*x[0] + x[1]*x[1]))
		return 50 + 10*x[0] - 6*x[1] + 25*bump
	}
	train := synth(200, 3, 21, truth, 0.2)
	test := synth(80, 3, 22, truth, 0)

	// Hamstring the trend so the residual network has real work to do.
	weak := MARSOptions{MaxTerms: 3}
	trend, err := FitMARS(train, weak)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := FitHybridRBF(train, weak, RBFOptions{Kernel: Multiquadric})
	if err != nil {
		t.Fatal(err)
	}
	te := TestError(trend, test)
	he := TestError(hybrid, test)
	if he >= te {
		t.Fatalf("hybrid (%v%%) should beat a weak trend alone (%v%%)", he, te)
	}
	if hybrid.Name() != "rbf-rt" {
		t.Fatal("name")
	}
	if hybrid.NumParams() <= trend.NumParams() {
		t.Fatal("hybrid should add residual parameters")
	}
}

func TestHybridCapturesGlobalExtrapolation(t *testing.T) {
	// Strong global interaction: a pure local-kernel model cannot
	// extrapolate it; the hybrid's trend must.
	truth := func(x []float64) float64 { return 100 + 30*x[0]*x[1] }
	train := synth(150, 2, 23, truth, 0)
	test := synth(60, 2, 24, truth, 0)
	hybrid, err := FitHybridRBF(train, MARSOptions{}, RBFOptions{Kernel: Multiquadric})
	if err != nil {
		t.Fatal(err)
	}
	if e := TestError(hybrid, test); e > 5 {
		t.Fatalf("hybrid error %v%% on a smooth interaction", e)
	}
}
