package model

import (
	"fmt"
	"sort"

	"repro/internal/doe"
)

// Effect is one interpreted model coefficient: the paper's Table 4 reports
// these for key parameters and interactions. For a main effect the value is
// half the predicted response change when the variable moves from its low to
// its high coded value; for a two-factor interaction it is the quarter
// difference-in-differences — both averaged over the training points, which
// makes the estimator exact for linear models and a faithful summary for
// MARS and RBF surfaces.
type Effect struct {
	Vars  []int // one entry for a main effect, two for an interaction
	Names []string
	Value float64
}

// Label renders "a" or "a * b".
func (e Effect) Label() string {
	if len(e.Names) == 1 {
		return e.Names[0]
	}
	return fmt.Sprintf("%s * %s", e.Names[0], e.Names[1])
}

// MainEffect estimates the coefficient of variable v from model m, averaging
// over the background points.
func MainEffect(m Model, points [][]float64, v int) float64 {
	if len(points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range points {
		x := append([]float64{}, p...)
		x[v] = 1
		hi := m.Predict(x)
		x[v] = -1
		lo := m.Predict(x)
		s += (hi - lo) / 2
	}
	return s / float64(len(points))
}

// InteractionEffect estimates the two-factor interaction coefficient of
// variables v and w.
func InteractionEffect(m Model, points [][]float64, v, w int) float64 {
	if len(points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range points {
		x := append([]float64{}, p...)
		f := func(a, b float64) float64 {
			x[v], x[w] = a, b
			return m.Predict(x)
		}
		s += (f(1, 1) - f(1, -1) - f(-1, 1) + f(-1, -1)) / 4
	}
	return s / float64(len(points))
}

// AllEffects computes every main effect and two-factor interaction of the
// model over the space, sorted by descending magnitude.
func AllEffects(m Model, space *doe.Space, points [][]float64) []Effect {
	k := space.NumVars()
	var out []Effect
	for v := 0; v < k; v++ {
		out = append(out, Effect{
			Vars:  []int{v},
			Names: []string{space.Vars[v].Name},
			Value: MainEffect(m, points, v),
		})
	}
	for v := 0; v < k; v++ {
		for w := v + 1; w < k; w++ {
			out = append(out, Effect{
				Vars:  []int{v, w},
				Names: []string{space.Vars[v].Name, space.Vars[w].Name},
				Value: InteractionEffect(m, points, v, w),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].Value, out[j].Value
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	return out
}

// TopEffects returns the n largest-magnitude effects.
func TopEffects(m Model, space *doe.Space, points [][]float64, n int) []Effect {
	all := AllEffects(m, space, points)
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
