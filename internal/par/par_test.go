package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Error("zero should mean GOMAXPROCS")
	}
	if Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Error("negative should mean GOMAXPROCS")
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1001} {
			counts := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForSerialPreservesOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial For out of order: %v", order)
		}
	}
}

func TestDoRunsEveryFunc(t *testing.T) {
	var ran [3]int32
	Do(4,
		func() { atomic.AddInt32(&ran[0], 1) },
		func() { atomic.AddInt32(&ran[1], 1) },
		func() { atomic.AddInt32(&ran[2], 1) },
	)
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("func %d ran %d times", i, c)
		}
	}
}
