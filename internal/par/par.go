// Package par provides the small deterministic parallel-execution helpers
// shared by the analytics hot paths (model fitting, experimental design,
// cross-validation, GA search). Every helper guarantees that results are
// independent of the worker count: each work item may only write state it
// owns (typically its own output index), and callers combine partial
// results in input order. That discipline is what lets the parallel
// analytics paths stay bit-for-bit identical to their serial versions.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: w > 0 is used as-is, anything else
// (zero or negative) means runtime.GOMAXPROCS(0).
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// For runs f(i) for every i in [0, n), on at most workers goroutines
// (Workers semantics: <= 0 means GOMAXPROCS). With one worker, or n <= 1,
// it runs inline on the calling goroutine — the serial reference path.
// f must only write state owned by index i; the overall outcome is then
// identical for every worker count.
func For(n, workers int, f func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	// Chunked atomic work-stealing: cheap for many small items, balanced
	// for few large ones.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				end := int(atomic.AddInt64(&next, int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Do runs the given functions concurrently on at most workers goroutines
// and waits for all of them.
func Do(workers int, fns ...func()) {
	For(len(fns), workers, func(i int) { fns[i]() })
}
