package core_test

import (
	"fmt"

	core "repro/internal/core"
)

// ExampleCompile shows the minimal compile-and-simulate loop.
func ExampleCompile() {
	src := `
int main() {
	int s = 0;
	for (int i = 1; i <= 10; i = i + 1) {
		s = s + i;
	}
	return s;
}`
	prog, _, err := core.Compile(src, core.O2())
	if err != nil {
		panic(err)
	}
	st, err := core.Simulate(prog, core.TypicalConfig(), 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("result:", st.ExitValue)
	// Output:
	// result: 55
}

// ExampleSimulate demonstrates that optimization levels change cycle counts
// but never results.
func ExampleSimulate() {
	src := `
int a[512];
int main() {
	int s = 0;
	for (int r = 0; r < 20; r = r + 1) {
		for (int i = 0; i < 512; i = i + 1) {
			a[i] = i + r;
			s = s + a[i] * 3;
		}
	}
	return s;
}`
	var cycles [2]int64
	var results [2]int64
	for i, opts := range []core.Options{core.O0(), core.O2()} {
		prog, _, err := core.Compile(src, opts)
		if err != nil {
			panic(err)
		}
		st, err := core.Simulate(prog, core.TypicalConfig(), 1_000_000)
		if err != nil {
			panic(err)
		}
		cycles[i] = st.Cycles
		results[i] = st.ExitValue
	}
	fmt.Println("same result:", results[0] == results[1])
	fmt.Println("O2 faster:", cycles[1] < cycles[0])
	// Output:
	// same result: true
	// O2 faster: true
}

// ExampleJointSpace shows the paper's 25-variable design space.
func ExampleJointSpace() {
	space := core.JointSpace()
	fmt.Println("variables:", space.NumVars())
	fmt.Println("first:", space.Vars[0].Name)
	fmt.Println("last:", space.Vars[24].Name)
	// Output:
	// variables: 25
	// first: finline-functions
	// last: mem-lat
}

// ExampleWorkloadNames lists the benchmark suite.
func ExampleWorkloadNames() {
	for _, n := range core.WorkloadNames() {
		fmt.Println(n)
	}
	// Output:
	// 164.gzip
	// 175.vpr
	// 177.mesa
	// 179.art
	// 181.mcf
	// 255.vortex
	// 256.bzip2
}
