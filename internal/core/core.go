// Package core is the library's public surface: a facade over the
// compiler, simulator, experimental design, empirical modeling and
// model-based search subsystems. It exposes the paper's workflow in a few
// calls:
//
//	w := core.Workload("179.art", core.Train)        // pick a program
//	h := core.NewHarness(core.DefaultScale)          // measurement harness
//	study, _ := h.RunStudy([]string{"179.art"}, core.Train)
//	table, _ := study.Table3()                       // model accuracy
//	results, _ := study.SearchSettings(nil)          // GA flag search
//
// or, one level down, compile and simulate directly:
//
//	prog, stats, _ := core.Compile(src, core.O2())
//	st, _ := core.Simulate(prog, core.TypicalConfig(), 100e6)
//
// Everything is deterministic given the harness seed.
package core

import (
	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/farm"
	"repro/internal/isa"
	"repro/internal/model"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/smarts"
	"repro/internal/workloads"
)

// Re-exported core types. The aliases keep one import path for users while
// the implementation lives in focused subsystem packages.
type (
	// Options selects compiler optimizations (paper Table 1).
	Options = compiler.Options
	// Config is a microarchitectural configuration (paper Table 2).
	Config = sim.Config
	// Program is an executable for the synthetic ISA.
	Program = isa.Program
	// SimStats reports one simulation's measurements.
	SimStats = sim.Stats
	// Space is a design space over predictor variables.
	Space = doe.Space
	// Point is a raw-valued design point.
	Point = doe.Point
	// Dataset pairs coded design points with responses.
	Dataset = model.Dataset
	// Model predicts a response at a coded design point.
	Model = model.Model
	// Harness runs cached, deterministic measurements.
	Harness = exp.Harness
	// Study bundles measured data and fitted models per program.
	Study = exp.Study
	// Scale sets experiment sizes (quick/default/paper).
	Scale = exp.Scale
	// SearchResult is a GA search outcome.
	SearchResult = exp.SearchResult
	// GAOptions tunes the genetic algorithm.
	GAOptions = search.GAOptions
	// Sampler configures SMARTS sampled simulation.
	Sampler = smarts.Sampler
	// InputClass selects train or ref inputs.
	InputClass = workloads.InputClass
	// FarmStats reports the measurement farm's instrumentation counters
	// (sims executed, cache hits, coalesced requests, utilization).
	FarmStats = farm.Stats
	// MeasureJob is one (workload, design-point) measurement request.
	MeasureJob = farm.Job
)

// Input classes.
const (
	Train = workloads.Train
	Ref   = workloads.Ref
)

// Experiment scales.
var (
	QuickScale   = exp.Quick
	DefaultScale = exp.Default
	PaperScale   = exp.Paper
)

// O0 returns options with every optimization disabled.
func O0() Options { return compiler.O0() }

// O2 returns the paper's baseline optimization level.
func O2() Options { return compiler.O2() }

// O3 returns the paper's "default O3" configuration.
func O3() Options { return compiler.O3() }

// ConstrainedConfig returns the paper's constrained microarchitecture.
func ConstrainedConfig() Config { return sim.Constrained() }

// TypicalConfig returns the paper's typical microarchitecture.
func TypicalConfig() Config { return sim.DefaultConfig() }

// AggressiveConfig returns the paper's aggressive microarchitecture.
func AggressiveConfig() Config { return sim.Aggressive() }

// Compile compiles MiniC source text with the given optimization options.
func Compile(src string, opts Options) (*Program, *compiler.Stats, error) {
	return compiler.CompileSource(src, opts)
}

// Simulate runs prog to completion on the cycle-level simulator.
func Simulate(prog *Program, cfg Config, maxInstrs int64) (SimStats, error) {
	return sim.Simulate(prog, cfg, maxInstrs)
}

// SimulateSampled runs prog under SMARTS statistical sampling, trading a
// small, quantified estimation error for large time savings.
func SimulateSampled(prog *Program, cfg Config, s Sampler, maxInstrs int64) (*smarts.Result, error) {
	return smarts.Run(prog, cfg, s, maxInstrs)
}

// SimulateSampledParallel pools `workers` offset-shifted SMARTS sample sets
// drawn concurrently, tightening the confidence interval at roughly a
// single run's wall time on a multicore host.
func SimulateSampledParallel(prog *Program, cfg Config, s Sampler, maxInstrs int64, workers int) (*smarts.Result, error) {
	return smarts.RunParallel(prog, cfg, s, maxInstrs, workers)
}

// DefaultSampler returns the paper's SMARTS parameters (1000-instruction
// windows, 1-in-1000 sampled).
func DefaultSampler() Sampler { return smarts.DefaultSampler() }

// Workload returns one of the seven benchmark programs.
func Workload(name string, class InputClass) (workloads.Workload, error) {
	return workloads.Get(name, class)
}

// WorkloadNames lists the seven benchmarks in the paper's order.
func WorkloadNames() []string { return workloads.Names() }

// JointSpace returns the paper's 25-variable compiler+microarchitecture
// design space.
func JointSpace() *Space { return doe.JointSpace() }

// NewHarness builds a measurement harness at the given scale (seed 1; set
// Harness.Seed and Harness.CacheDir before first use to change).
func NewHarness(scale Scale) *Harness { return exp.NewHarness(scale) }

// FitModels fits the paper's three model families (linear regression with
// interactions, MARS, hybrid RBF-RT) on a measured dataset.
func FitModels(data *Dataset) (map[string]Model, error) { return exp.FitAll(data) }
