package core

import "testing"

func TestFacadeCompileAndSimulate(t *testing.T) {
	prog, stats, err := Compile(`int main() { return 6 * 7; }`, O2())
	if err != nil {
		t.Fatal(err)
	}
	if stats.MachineInstrs == 0 {
		t.Fatal("no machine code")
	}
	st, err := Simulate(prog, TypicalConfig(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExitValue != 42 {
		t.Fatalf("exit = %d", st.ExitValue)
	}
}

func TestFacadeConfigsAndWorkloads(t *testing.T) {
	for _, cfg := range []Config{ConstrainedConfig(), TypicalConfig(), AggressiveConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	if len(WorkloadNames()) != 7 {
		t.Fatal("seven benchmarks expected")
	}
	w, err := Workload("179.art", Train)
	if err != nil || w.Source == "" {
		t.Fatalf("workload lookup failed: %v", err)
	}
	if _, err := Workload("nope", Ref); err == nil {
		t.Fatal("unknown workload should error")
	}
	if JointSpace().NumVars() != 25 {
		t.Fatal("joint space")
	}
}

func TestFacadeSampledSimulation(t *testing.T) {
	w, err := Workload("256.bzip2", Train)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := Compile(w.Source, O2())
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSampler()
	s.Interval = 20
	res, err := SimulateSampled(prog, TypicalConfig(), s, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedCycles <= 0 || res.Windows == 0 {
		t.Fatalf("sampled result degenerate: %+v", res)
	}
}

func TestFacadeHarnessAndModels(t *testing.T) {
	h := NewHarness(Scale{Name: "core-test", TrainPoints: 20, TestPoints: 8})
	w, err := Workload("256.bzip2", Train)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := h.Collect(w)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := FitModels(pd.Train)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"linear", "mars", "rbf"} {
		if ms[name] == nil {
			t.Fatalf("missing model %q", name)
		}
		if p := ms[name].Predict(pd.Test.X[0]); p <= 0 {
			t.Fatalf("%s predicts nonpositive cycles: %v", name, p)
		}
	}
}
