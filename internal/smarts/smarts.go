// Package smarts implements SMARTS-style statistically sampled simulation
// (Wunderlich et al., ISCA 2003), the methodology the paper uses to make
// whole-program cycle-accurate measurement affordable: small detailed
// windows are simulated at fixed intervals, the instructions in between are
// fast-forwarded with functional warming of the caches and branch predictor,
// and the per-window CPI sample mean yields a whole-run cycle estimate with
// a confidence interval from the central limit theorem.
package smarts

import (
	"errors"
	"math"
	"sync"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Sampler configures systematic sampling.
type Sampler struct {
	// WindowSize is the number of instructions per detailed window (the
	// paper uses 1000).
	WindowSize int64
	// Interval is the sampling period in windows: 1 in every Interval
	// windows is simulated in detail (the paper uses 1000).
	Interval int64
	// Offset shifts which window in each period is detailed (0 <=
	// Offset < Interval); vary it to draw independent sample sets.
	Offset int64
	// Warmup is the number of instructions simulated in detail (but not
	// measured) immediately before each detailed window, removing the
	// cold-pipeline bias at window entry. SMARTS calls this detailed
	// warming; functional warming still covers caches and the predictor.
	Warmup int64
}

func (s Sampler) validate() error {
	if s.WindowSize <= 0 || s.Interval <= 0 {
		return errors.New("smarts: window size and interval must be positive")
	}
	if s.Offset < 0 || s.Offset >= s.Interval {
		return errors.New("smarts: offset out of range")
	}
	return nil
}

// DefaultSampler returns the paper's sampling parameters.
func DefaultSampler() Sampler {
	return Sampler{WindowSize: 1000, Interval: 1000}
}

// Result holds a sampled simulation estimate.
type Result struct {
	EstimatedCycles float64
	Instructions    int64
	Windows         int // detailed windows measured
	MeanCPI         float64
	StdCPI          float64
	// RelCI997 is the relative half-width of the 99.7% (3σ) confidence
	// interval on the mean CPI.
	RelCI997  float64
	ExitValue int64
	// MeanEPI and EstimatedEnergy extend the estimator to the energy
	// response the same way MeanCPI extends to cycles: per-window energy
	// per instruction, scaled by the whole-run instruction count.
	MeanEPI         float64
	EstimatedEnergy float64
	// FunctionalInstrs counts the instructions executed functionally to
	// drive warming and sampling. Run executes the program once, so it
	// equals Instructions; RunParallel shares a single functional trace
	// across all workers, so it also equals Instructions — rather than
	// workers× it — which is the point of the shared-trace design.
	FunctionalInstrs int64
}

// sampleState is the per-offset sampling state machine: it classifies each
// instruction of the committed stream as functional-warming, detailed
// warmup, or measured, drives one timing model accordingly, and collects
// the per-window CPI samples. Run drives one instance inline; RunParallel
// drives one per worker off a shared functional trace. Both paths go
// through the same feed method, so a given (program, config, sampler)
// yields bit-for-bit identical windows either way.
type sampleState struct {
	s   Sampler
	cpu *sim.CPU
	dec *sim.DecodedProgram

	cpis          []float64
	epis          []float64 // per-window energy per instruction
	inDetail      bool
	measureStart  int64
	measureStartE float64
	windowInstrs  int64

	// Division-free classification: phase is the instruction index modulo
	// the sampling period, and the measured window is phase in
	// [mStart, mEnd). The old per-instruction i/WindowSize and /Interval
	// divisions cost more than a cache probe; an incremental wrap is two
	// compares.
	phase  int64
	period int64
	mStart int64
	mEnd   int64
}

func newSampleState(s Sampler, cfg sim.Config, dec *sim.DecodedProgram) *sampleState {
	return &sampleState{
		s:      s,
		cpu:    sim.NewCPU(cfg),
		dec:    dec,
		period: s.WindowSize * s.Interval,
		mStart: s.Offset * s.WindowSize,
		mEnd:   (s.Offset + 1) * s.WindowSize,
	}
}

// feed advances the state machine by one committed instruction.
func (t *sampleState) feed(entry sim.TraceEntry) {
	detailed, measured := t.classifyAdvance()
	t.apply(entry, detailed, measured)
}

// classifyAdvance classifies the next instruction — measured iff its phase
// lies in the detailed window; detailed (but unmeasured) iff within Warmup
// instructions before the next detailed window, wrapping across the period
// boundary — and advances the phase counter. Split from apply so the
// checkpoint builder can observe the classification of an instruction
// before its state transition happens.
func (t *sampleState) classifyAdvance() (detailed, measured bool) {
	ph := t.phase
	if ph >= t.mStart && ph < t.mEnd {
		detailed, measured = true, true
	} else if t.s.Warmup > 0 {
		d := t.mStart - ph
		if d <= 0 {
			d += t.period
		}
		if d <= t.s.Warmup {
			detailed = true
		}
	}
	if t.phase++; t.phase == t.period {
		t.phase = 0
	}
	return detailed, measured
}

// apply performs the state transition for one classified instruction.
func (t *sampleState) apply(entry sim.TraceEntry, detailed, measured bool) {
	if detailed {
		if !t.inDetail {
			// Fresh pipeline over the warmed microarch state.
			t.cpu.ResetTiming()
			t.inDetail = true
			t.measureStart = -1
		}
		if measured && t.measureStart < 0 {
			st := t.cpu.Stats()
			t.measureStart = st.Cycles
			t.measureStartE = st.Energy
		}
		t.cpu.FeedDecoded(t.dec, entry)
		if measured {
			t.windowInstrs++
			if t.windowInstrs == t.s.WindowSize {
				t.flush()
			}
		}
	} else {
		t.flush()
		t.cpu.WarmFeedDecoded(t.dec, entry)
	}
}

func (t *sampleState) flush() {
	if t.windowInstrs > 0 {
		st := t.cpu.Stats()
		c := st.Cycles - t.measureStart
		t.cpis = append(t.cpis, float64(c)/float64(t.windowInstrs))
		t.epis = append(t.epis, (st.Energy-t.measureStartE)/float64(t.windowInstrs))
	}
	t.windowInstrs = 0
	t.inDetail = false
}

// result folds the collected windows into a Result; ok is false when no
// window completed (program shorter than one sampling period).
func (t *sampleState) result(instrs, exitValue int64) (*Result, bool) {
	t.flush()
	if len(t.cpis) == 0 {
		return nil, false
	}
	mean, std := meanStd(t.cpis)
	rel := 0.0
	if mean > 0 {
		rel = 3 * std / (math.Sqrt(float64(len(t.cpis))) * mean)
	}
	meanE, _ := meanStd(t.epis)
	return &Result{
		EstimatedCycles: mean * float64(instrs),
		Instructions:    instrs,
		Windows:         len(t.cpis),
		MeanCPI:         mean,
		StdCPI:          std,
		RelCI997:        rel,
		ExitValue:       exitValue,
		MeanEPI:         meanE,
		EstimatedEnergy: meanE * float64(instrs),
	}, true
}

// fallbackDetailed is the exact path for programs shorter than one sampling
// period: simulate everything in detail.
func fallbackDetailed(prog *isa.Program, cfg sim.Config, maxInstrs int64) (*Result, error) {
	st, err := sim.Simulate(prog, cfg, maxInstrs)
	if err != nil {
		return nil, err
	}
	return &Result{
		EstimatedCycles:  float64(st.Cycles),
		Instructions:     st.Instructions,
		Windows:          0,
		MeanCPI:          float64(st.Cycles) / float64(st.Instructions),
		ExitValue:        st.ExitValue,
		MeanEPI:          st.Energy / float64(st.Instructions),
		EstimatedEnergy:  st.Energy,
		FunctionalInstrs: st.Instructions,
	}, nil
}

// ErrBudget reports a sampled run that exceeded its instruction budget.
// Callers classify on the sentinel (errors.Is), never on the message text.
var ErrBudget = errors.New("smarts: instruction budget exceeded")

// Run simulates prog under cfg with systematic sampling and returns the
// cycle estimate. maxInstrs bounds the run.
func Run(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64) (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	exe := sim.NewExecutor(prog)
	state := newSampleState(s, cfg, exe.Decoded())

	for !exe.Halted {
		if exe.Count >= maxInstrs {
			return nil, ErrBudget
		}
		entry, ok, err := exe.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		state.feed(entry)
	}
	res, ok := state.result(exe.Count, exe.Regs[isa.RegRV])
	if !ok {
		// Program shorter than one sampling period: fall back to the
		// detailed simulation of everything we executed.
		return fallbackDetailed(prog, cfg, maxInstrs)
	}
	res.FunctionalInstrs = exe.Count
	return res, nil
}

// RunParallel draws `workers` independent sample sets concurrently — each
// with a distinct window offset, the mechanism SMARTS prescribes for
// independent draws — and pools their windows into one estimate. The pooled
// mean CPI has ~workers× the sample count of a single Run, tightening the
// confidence interval.
//
// The program is executed functionally exactly once: a sim.TraceBroadcaster
// interprets it and broadcasts the committed-instruction trace in reference
// counted chunks to one timing worker per offset, each owning its own
// caches and branch predictor. Workers apply backpressure through the
// bounded chunk pool, so memory stays constant regardless of program
// length, and the per-offset window populations are bit-for-bit identical
// to what `workers` separate Runs would produce. workers is clamped to
// s.Interval (offsets must be distinct) and workers <= 1 degrades to Run.
func RunParallel(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64, workers int) (*Result, error) {
	if int64(workers) > s.Interval {
		workers = int(s.Interval)
	}
	if workers <= 1 {
		return Run(prog, cfg, s, maxInstrs)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	exe := sim.NewExecutor(prog)
	dec := exe.Decoded()

	// Per-worker sampling state, offsets strided across the interval.
	stride := s.Interval / int64(workers)
	states := make([]*sampleState, workers)
	for k := range states {
		sk := s
		sk.Offset = (s.Offset + int64(k)*stride) % s.Interval
		states[k] = newSampleState(sk, cfg, dec)
	}

	b := sim.NewTraceBroadcaster(workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			state := states[k]
			for ck := range b.Out(k) {
				for i := 0; i < ck.N; i++ {
					state.feed(ck.Ents[i])
				}
				b.Release(ck)
			}
		}(k)
	}

	// Producer: the single functional pass.
	prodErr := b.Broadcast(exe, maxInstrs)
	wg.Wait()
	if prodErr != nil {
		if sim.IsBudget(prodErr) {
			return nil, ErrBudget
		}
		return nil, prodErr
	}

	results := make([]*Result, workers)
	for k, state := range states {
		r, ok := state.result(exe.Count, exe.Regs[isa.RegRV])
		if !ok {
			// A run shorter than one sampling period is exact in full
			// detail; return that directly.
			return fallbackDetailed(prog, cfg, maxInstrs)
		}
		results[k] = r
	}

	// Pool the window populations: weighted mean and total variance
	// (within + between run means) over all windows.
	var n float64
	var sum, sumSq, sumE float64
	pooled := &Result{Instructions: results[0].Instructions, ExitValue: results[0].ExitValue}
	for _, r := range results {
		w := float64(r.Windows)
		n += w
		sum += w * r.MeanCPI
		sumSq += w * (r.StdCPI*r.StdCPI + r.MeanCPI*r.MeanCPI)
		sumE += w * r.MeanEPI
		pooled.Windows += r.Windows
	}
	pooled.MeanCPI = sum / n
	pooled.StdCPI = math.Sqrt(sumSq/n - pooled.MeanCPI*pooled.MeanCPI)
	if pooled.MeanCPI > 0 {
		pooled.RelCI997 = 3 * pooled.StdCPI / (math.Sqrt(n) * pooled.MeanCPI)
	}
	pooled.EstimatedCycles = pooled.MeanCPI * float64(pooled.Instructions)
	pooled.MeanEPI = sumE / n
	pooled.EstimatedEnergy = pooled.MeanEPI * float64(pooled.Instructions)
	pooled.FunctionalInstrs = exe.Count // the single shared pass
	return pooled, nil
}

// RunToConfidence repeatedly increases sampling density (halving the
// interval) until the 99.7% confidence half-width falls below relTarget or
// the interval reaches 1 (full detail). This is the iterative refinement
// loop SMARTS prescribes.
func RunToConfidence(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64, relTarget float64) (*Result, error) {
	for {
		res, err := Run(prog, cfg, s, maxInstrs)
		if err != nil {
			return nil, err
		}
		if res.RelCI997 <= relTarget || s.Interval <= 1 {
			return res, nil
		}
		s.Interval /= 2
		if s.Offset >= s.Interval {
			s.Offset = 0
		}
	}
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	v /= float64(len(xs))
	return m, math.Sqrt(v)
}
