// Package smarts implements SMARTS-style statistically sampled simulation
// (Wunderlich et al., ISCA 2003), the methodology the paper uses to make
// whole-program cycle-accurate measurement affordable: small detailed
// windows are simulated at fixed intervals, the instructions in between are
// fast-forwarded with functional warming of the caches and branch predictor,
// and the per-window CPI sample mean yields a whole-run cycle estimate with
// a confidence interval from the central limit theorem.
package smarts

import (
	"errors"
	"math"
	"sync"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Sampler configures systematic sampling.
type Sampler struct {
	// WindowSize is the number of instructions per detailed window (the
	// paper uses 1000).
	WindowSize int64
	// Interval is the sampling period in windows: 1 in every Interval
	// windows is simulated in detail (the paper uses 1000).
	Interval int64
	// Offset shifts which window in each period is detailed (0 <=
	// Offset < Interval); vary it to draw independent sample sets.
	Offset int64
	// Warmup is the number of instructions simulated in detail (but not
	// measured) immediately before each detailed window, removing the
	// cold-pipeline bias at window entry. SMARTS calls this detailed
	// warming; functional warming still covers caches and the predictor.
	Warmup int64
}

// DefaultSampler returns the paper's sampling parameters.
func DefaultSampler() Sampler {
	return Sampler{WindowSize: 1000, Interval: 1000}
}

// Result holds a sampled simulation estimate.
type Result struct {
	EstimatedCycles float64
	Instructions    int64
	Windows         int // detailed windows measured
	MeanCPI         float64
	StdCPI          float64
	// RelCI997 is the relative half-width of the 99.7% (3σ) confidence
	// interval on the mean CPI.
	RelCI997  float64
	ExitValue int64
}

// Run simulates prog under cfg with systematic sampling and returns the
// cycle estimate. maxInstrs bounds the run.
func Run(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64) (*Result, error) {
	if s.WindowSize <= 0 || s.Interval <= 0 {
		return nil, errors.New("smarts: window size and interval must be positive")
	}
	if s.Offset < 0 || s.Offset >= s.Interval {
		return nil, errors.New("smarts: offset out of range")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	exe := sim.NewExecutor(prog)
	cpu := sim.NewCPU(cfg) // holds the long-history state (caches, bpred)

	var cpis []float64
	inDetail := false      // pipeline currently running in detailed mode
	var measureStart int64 // cycle counter at measured-window entry (-1: warming)
	var windowInstrs int64 // measured instructions in the current window
	period := s.WindowSize * s.Interval

	// classify returns (detailed, measured) for instruction index i.
	classify := func(i int64) (bool, bool) {
		windowIdx := i / s.WindowSize
		if windowIdx%s.Interval == s.Offset {
			return true, true
		}
		if s.Warmup > 0 {
			// Distance to the start of the next detailed window.
			p := windowIdx / s.Interval
			det := (p*s.Interval + s.Offset) * s.WindowSize
			if i >= det {
				det += period
			}
			if det-i <= s.Warmup {
				return true, false
			}
		}
		return false, false
	}

	flush := func() {
		if windowInstrs > 0 {
			c := cpu.Stats().Cycles - measureStart
			cpis = append(cpis, float64(c)/float64(windowInstrs))
		}
		windowInstrs = 0
		inDetail = false
	}

	for !exe.Halted {
		if exe.Count >= maxInstrs {
			return nil, errors.New("smarts: instruction budget exceeded")
		}
		entry, ok, err := exe.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		in := &prog.Instrs[entry.PC]

		detailed, measured := classify(exe.Count - 1)
		if detailed {
			if !inDetail {
				// Fresh pipeline over the warmed microarch state.
				cpu.ResetTiming()
				inDetail = true
				measureStart = -1
			}
			if measured && measureStart < 0 {
				measureStart = cpu.Stats().Cycles
			}
			cpu.Feed(in, entry)
			if measured {
				windowInstrs++
				if windowInstrs == s.WindowSize {
					flush()
				}
			}
		} else {
			flush()
			cpu.WarmFeed(in, entry)
		}
	}
	flush()
	if len(cpis) == 0 {
		// Program shorter than one sampling period: fall back to the
		// detailed simulation of everything we executed.
		st, err := sim.Simulate(prog, cfg, maxInstrs)
		if err != nil {
			return nil, err
		}
		return &Result{
			EstimatedCycles: float64(st.Cycles),
			Instructions:    st.Instructions,
			Windows:         0,
			MeanCPI:         float64(st.Cycles) / float64(st.Instructions),
			ExitValue:       st.ExitValue,
		}, nil
	}

	mean, std := meanStd(cpis)
	rel := 0.0
	if mean > 0 {
		rel = 3 * std / (math.Sqrt(float64(len(cpis))) * mean)
	}
	return &Result{
		EstimatedCycles: mean * float64(exe.Count),
		Instructions:    exe.Count,
		Windows:         len(cpis),
		MeanCPI:         mean,
		StdCPI:          std,
		RelCI997:        rel,
		ExitValue:       exe.Regs[isa.RegRV],
	}, nil
}

// RunParallel draws `workers` independent sample sets concurrently — each
// with a distinct window offset, the mechanism SMARTS prescribes for
// independent draws — and pools their windows into one estimate. The pooled
// mean CPI has ~workers× the sample count of a single Run, tightening the
// confidence interval, and the runs execute on separate goroutines so wall
// time stays near a single Run's on a multicore host. workers is clamped to
// s.Interval (offsets must be distinct) and workers <= 1 degrades to Run.
func RunParallel(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64, workers int) (*Result, error) {
	if int64(workers) > s.Interval {
		workers = int(s.Interval)
	}
	if workers <= 1 {
		return Run(prog, cfg, s, maxInstrs)
	}
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	stride := s.Interval / int64(workers)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sk := s
			sk.Offset = (s.Offset + int64(k)*stride) % s.Interval
			results[k], errs[k] = Run(prog, cfg, sk, maxInstrs)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// A run shorter than one sampling period fell back to full detail and
	// is exact; return it directly.
	for _, r := range results {
		if r.Windows == 0 {
			return r, nil
		}
	}
	// Pool the window populations: weighted mean and total variance
	// (within + between run means) over all windows.
	var n float64
	var sum, sumSq float64
	pooled := &Result{Instructions: results[0].Instructions, ExitValue: results[0].ExitValue}
	for _, r := range results {
		w := float64(r.Windows)
		n += w
		sum += w * r.MeanCPI
		sumSq += w * (r.StdCPI*r.StdCPI + r.MeanCPI*r.MeanCPI)
		pooled.Windows += r.Windows
	}
	pooled.MeanCPI = sum / n
	pooled.StdCPI = math.Sqrt(sumSq/n - pooled.MeanCPI*pooled.MeanCPI)
	if pooled.MeanCPI > 0 {
		pooled.RelCI997 = 3 * pooled.StdCPI / (math.Sqrt(n) * pooled.MeanCPI)
	}
	pooled.EstimatedCycles = pooled.MeanCPI * float64(pooled.Instructions)
	return pooled, nil
}

// RunToConfidence repeatedly increases sampling density (halving the
// interval) until the 99.7% confidence half-width falls below relTarget or
// the interval reaches 1 (full detail). This is the iterative refinement
// loop SMARTS prescribes.
func RunToConfidence(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64, relTarget float64) (*Result, error) {
	for {
		res, err := Run(prog, cfg, s, maxInstrs)
		if err != nil {
			return nil, err
		}
		if res.RelCI997 <= relTarget || s.Interval <= 1 {
			return res, nil
		}
		s.Interval /= 2
		if s.Offset >= s.Interval {
			s.Offset = 0
		}
	}
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	v /= float64(len(xs))
	return m, math.Sqrt(v)
}
