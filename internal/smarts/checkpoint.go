package smarts

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"sync"

	"repro/internal/isa"
	"repro/internal/sim"
)

// Warm-state checkpoints. A sampled run spends almost all of its work on
// functional warming: with the paper's 1000/1000 sampler only ~0.1% of
// instructions are simulated in detail, yet every measurement of the same
// binary re-executes and re-warms the whole program. The warm state at each
// detailed-region boundary, however, is a pure function of the committed
// trace (program-determined) and the configuration's WarmGeometry —
// latencies, issue width and window size change timing, never which cache
// line or predictor counter flips. So one full run per (program, sampler,
// geometry) suffices: checkpoint the warm state and the trace slice of
// every detailed region, and any retry or nearby-configuration measurement
// replays just the detailed regions (warmup + window) against restored warm
// state, skipping the functional gaps entirely. The replay reuses the same
// sampleState machine, so its windows are bit-for-bit the windows a full
// rewarming run would produce; only Result.FunctionalInstrs differs, and
// that difference is the speedup.

// regionCheckpoint is one detailed region: the sampler phase and warm state
// at region entry, plus the committed-trace slice the region feeds.
type regionCheckpoint struct {
	phase int64
	warm  *sim.WarmState
	ents  []sim.TraceEntry
}

// CheckpointSet is the complete warm-state checkpoint of one (program,
// sampler, warm-geometry) triple: everything needed to reproduce the full
// run's sampled estimate under any configuration sharing the geometry.
type CheckpointSet struct {
	dec     *sim.DecodedProgram
	sampler Sampler
	geom    sim.WarmGeometry
	regions []regionCheckpoint
	instrs  int64
	exit    int64
}

// Replay reproduces the sampled estimate for cfg from the checkpoints
// alone: for each detailed region it restores the warm state into a fresh
// timing context and re-feeds the recorded trace slice through the same
// sampleState machine a full run drives. cfg must share the set's
// WarmGeometry (the store's key guarantees it). The returned Result is
// bit-for-bit identical to a full rewarming Run except FunctionalInstrs,
// which counts only the replayed instructions.
func (cs *CheckpointSet) Replay(cfg sim.Config) *Result {
	state := newSampleState(cs.sampler, cfg, cs.dec)
	var fed int64
	for ri := range cs.regions {
		rg := &cs.regions[ri]
		state.cpu.RestoreWarm(rg.warm)
		state.phase = rg.phase
		for _, e := range rg.ents {
			state.feed(e)
		}
		// Close a window truncated by program end; complete regions have
		// already flushed (window completion or the region's last entry).
		state.flush()
		fed += int64(len(rg.ents))
	}
	res, ok := state.result(cs.instrs, cs.exit)
	if !ok {
		// Unreachable: a set is only stored when the build run produced
		// windows. Kept as a defensive nil guard.
		return nil
	}
	res.FunctionalInstrs = fed
	return res
}

// buildCheckpoints runs the program once with full functional warming —
// exactly the Run loop — while capturing a warm snapshot at every detailed
// region entry and the region's trace entries. It returns the run's Result
// and the captured set; the set is nil when the program was too short to
// produce any window (the caller falls back to full detail, like Run).
func buildCheckpoints(prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64) (*Result, *CheckpointSet, error) {
	exe := sim.NewExecutor(prog)
	dec := exe.Decoded()
	state := newSampleState(s, cfg, dec)
	set := &CheckpointSet{dec: dec, sampler: s, geom: cfg.WarmGeometry()}

	for !exe.Halted {
		if exe.Count >= maxInstrs {
			return nil, nil, ErrBudget
		}
		entry, ok, err := exe.Step()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		phase := state.phase
		detailed, measured := state.classifyAdvance()
		if detailed {
			if !state.inDetail {
				// Region entry: the warm state the detailed window will
				// start from, snapshotted before the instruction feeds.
				set.regions = append(set.regions, regionCheckpoint{
					phase: phase,
					warm:  state.cpu.SnapshotWarm(),
				})
			}
			cur := &set.regions[len(set.regions)-1]
			cur.ents = append(cur.ents, entry)
		}
		state.apply(entry, detailed, measured)
	}
	res, ok := state.result(exe.Count, exe.Regs[isa.RegRV])
	if !ok {
		r, err := fallbackDetailed(prog, cfg, maxInstrs)
		return r, nil, err
	}
	res.FunctionalInstrs = exe.Count
	set.instrs, set.exit = exe.Count, exe.Regs[isa.RegRV]
	return res, set, nil
}

// storeKey identifies a checkpoint set: program content, sampler, warm
// geometry and budget (a replay must never report an estimate a direct run
// would have rejected as over budget).
type storeKey struct {
	fp        uint64
	sampler   Sampler
	geom      sim.WarmGeometry
	maxInstrs int64
}

// fingerprint content-hashes a program: instructions, entry point and
// initialized data. Programs with equal fingerprints produce identical
// committed traces.
func fingerprint(p *isa.Program) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(p.Entry))
	w(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		w(uint64(in.Op)<<32 | uint64(in.Rd)<<16 | uint64(in.Rs1)<<8 | uint64(in.Rs2))
		w(uint64(in.Imm))
		w(uint64(in.Target))
	}
	for _, di := range p.Init {
		w(di.Addr)
		w(uint64(di.Val))
	}
	return h.Sum64()
}

// StoreStats is a snapshot of a Store's counters.
type StoreStats struct {
	Hits      int64 // RunCheckpointed calls served by replay
	Misses    int64 // calls that built (or rebuilt) a checkpoint set
	Entries   int64 // sets currently resident
	Evictions int64 // sets dropped by the LRU cap
}

// Store is a bounded LRU cache of checkpoint sets, safe for concurrent
// use. Sets are large (warm snapshots per region), so the cap is small by
// default; a farm measuring one binary under many nearby configurations
// needs only one resident set to serve the whole sweep.
type Store struct {
	mu                      sync.Mutex
	cap                     int
	ll                      *list.List // front = most recently used; values are *storeEntry
	byK                     map[storeKey]*list.Element
	hits, misses, evictions int64
}

type storeEntry struct {
	key storeKey
	set *CheckpointSet
}

// DefaultStoreCap bounds a NewStore(0) store.
const DefaultStoreCap = 4

// NewStore builds a checkpoint store holding at most capacity sets
// (capacity <= 0 selects DefaultStoreCap).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCap
	}
	return &Store{cap: capacity, ll: list.New(), byK: map[storeKey]*list.Element{}}
}

// Stats snapshots the store's counters tear-free.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{
		Hits:      st.hits,
		Misses:    st.misses,
		Entries:   int64(st.ll.Len()),
		Evictions: st.evictions,
	}
}

func (st *Store) get(k storeKey) *CheckpointSet {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.byK[k]; ok {
		st.ll.MoveToFront(el)
		st.hits++
		return el.Value.(*storeEntry).set
	}
	st.misses++
	return nil
}

func (st *Store) put(k storeKey, set *CheckpointSet) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.byK[k]; ok {
		el.Value.(*storeEntry).set = set
		st.ll.MoveToFront(el)
		return
	}
	st.byK[k] = st.ll.PushFront(&storeEntry{key: k, set: set})
	for st.ll.Len() > st.cap {
		back := st.ll.Back()
		delete(st.byK, back.Value.(*storeEntry).key)
		st.ll.Remove(back)
		st.evictions++
	}
}

// RunCheckpointed is Run backed by a warm-state checkpoint store: a hit
// (same program, sampler, warm geometry and budget — any latencies/widths)
// replays only the detailed regions; a miss runs in full and leaves a
// checkpoint set behind. Results are bit-for-bit identical to Run either
// way, except FunctionalInstrs, which reports the work actually done. The
// second return reports whether the result was served by replay. A nil
// store degrades to Run.
func RunCheckpointed(store *Store, prog *isa.Program, cfg sim.Config, s Sampler, maxInstrs int64) (*Result, bool, error) {
	if store == nil {
		res, err := Run(prog, cfg, s, maxInstrs)
		return res, false, err
	}
	if err := s.validate(); err != nil {
		return nil, false, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	key := storeKey{fp: fingerprint(prog), sampler: s, geom: cfg.WarmGeometry(), maxInstrs: maxInstrs}
	if set := store.get(key); set != nil {
		return set.Replay(cfg), true, nil
	}
	res, set, err := buildCheckpoints(prog, cfg, s, maxInstrs)
	if err != nil {
		return nil, false, err
	}
	if set != nil {
		store.put(key, set)
	}
	return res, false, err
}
