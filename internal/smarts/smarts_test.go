package smarts

import (
	"math"
	"testing"

	"repro/internal/compiler"
	"repro/internal/sim"
)

const loopSrc = `
int data[4096];
int main() {
	for (int i = 0; i < 4096; i = i + 1) {
		data[i] = i * 3 + 1;
	}
	int acc = 0;
	for (int r = 0; r < 60; r = r + 1) {
		for (int i = 0; i < 4096; i = i + 1) {
			acc = acc + data[i] * r;
		}
	}
	return acc;
}`

func TestSampledEstimateTracksDetailed(t *testing.T) {
	prog, _, err := compiler.CompileSource(loopSrc, compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	full, err := sim.Simulate(prog, cfg, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, cfg, Sampler{WindowSize: 1000, Interval: 20}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows < 10 {
		t.Fatalf("too few windows: %d", res.Windows)
	}
	relErr := math.Abs(res.EstimatedCycles-float64(full.Cycles)) / float64(full.Cycles)
	if relErr > 0.10 {
		t.Fatalf("sampled estimate off by %.1f%% (est %.0f, full %d)",
			100*relErr, res.EstimatedCycles, full.Cycles)
	}
	if res.ExitValue != full.ExitValue {
		t.Fatal("functional result must not depend on sampling")
	}
	t.Logf("full=%d est=%.0f relerr=%.2f%% windows=%d CI=%.2f%%",
		full.Cycles, res.EstimatedCycles, 100*relErr, res.Windows, 100*res.RelCI997)
}

func TestShortProgramFallsBackToDetailed(t *testing.T) {
	prog, _, err := compiler.CompileSource(`int main() { return 7; }`, compiler.O0())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, sim.DefaultConfig(), DefaultSampler(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The whole program fits in the first (detailed) window, so the
	// estimate is exact-by-construction.
	if res.Windows > 1 || res.ExitValue != 7 || res.EstimatedCycles <= 0 {
		t.Fatalf("short-program result wrong: %+v", res)
	}
}

func TestRunToConfidenceTightensCI(t *testing.T) {
	prog, _, err := compiler.CompileSource(loopSrc, compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	loose, err := Run(prog, cfg, Sampler{WindowSize: 500, Interval: 64}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunToConfidence(prog, cfg, Sampler{WindowSize: 500, Interval: 64}, 100_000_000, loose.RelCI997/4)
	if err != nil {
		t.Fatal(err)
	}
	if tight.RelCI997 > loose.RelCI997 {
		t.Fatalf("confidence did not improve: %v -> %v", loose.RelCI997, tight.RelCI997)
	}
}

func TestSamplerValidation(t *testing.T) {
	prog, _, err := compiler.CompileSource(`int main() { return 0; }`, compiler.O0())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, sim.DefaultConfig(), Sampler{WindowSize: 0, Interval: 10}, 1000); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := Run(prog, sim.DefaultConfig(), Sampler{WindowSize: 10, Interval: 10, Offset: 10}, 1000); err == nil {
		t.Error("offset out of range should fail")
	}
}

func TestOffsetsGiveSimilarEstimates(t *testing.T) {
	prog, _, err := compiler.CompileSource(loopSrc, compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	a, err := Run(prog, cfg, Sampler{WindowSize: 1000, Interval: 10, Offset: 0}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prog, cfg, Sampler{WindowSize: 1000, Interval: 10, Offset: 5}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(a.EstimatedCycles-b.EstimatedCycles) / a.EstimatedCycles
	if rel > 0.10 {
		t.Fatalf("offset sensitivity too high: %.1f%%", 100*rel)
	}
}

func TestWarmupReducesBias(t *testing.T) {
	prog, _, err := compiler.CompileSource(loopSrc, compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	full, err := sim.Simulate(prog, cfg, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(prog, cfg, Sampler{WindowSize: 200, Interval: 50}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(prog, cfg, Sampler{WindowSize: 200, Interval: 50, Warmup: 800}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(est float64) float64 {
		return math.Abs(est-float64(full.Cycles)) / float64(full.Cycles)
	}
	t.Logf("full=%d cold=%.0f (%.2f%%) warm=%.0f (%.2f%%)",
		full.Cycles, cold.EstimatedCycles, 100*errOf(cold.EstimatedCycles),
		warm.EstimatedCycles, 100*errOf(warm.EstimatedCycles))
	// With tiny windows the cold-start bias is large; detailed warming
	// must shrink it substantially.
	if errOf(warm.EstimatedCycles) > errOf(cold.EstimatedCycles) {
		t.Fatalf("warmup should not increase bias: cold %.2f%% warm %.2f%%",
			100*errOf(cold.EstimatedCycles), 100*errOf(warm.EstimatedCycles))
	}
}

func TestRunParallelSingleFunctionalPass(t *testing.T) {
	prog, _, err := compiler.CompileSource(loopSrc, compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	s := Sampler{WindowSize: 200, Interval: 40}
	single, err := Run(prog, cfg, s, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if single.FunctionalInstrs != single.Instructions {
		t.Fatalf("Run executed %d functional instrs for %d committed",
			single.FunctionalInstrs, single.Instructions)
	}
	pooled, err := RunParallel(prog, cfg, s, 100_000_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The shared-trace design's defining property: 4 workers, but the
	// program is interpreted exactly once (not 4×).
	if pooled.FunctionalInstrs != pooled.Instructions {
		t.Fatalf("RunParallel executed %d functional instrs for %d committed; want a single pass",
			pooled.FunctionalInstrs, pooled.Instructions)
	}
	// Each worker's window population must be bit-identical to a
	// standalone Run at the same offset; spot-check via the pooled mean of
	// per-offset Runs.
	stride := s.Interval / 4
	var n, sum float64
	for k := int64(0); k < 4; k++ {
		sk := s
		sk.Offset = k * stride
		r, err := Run(prog, cfg, sk, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		n += float64(r.Windows)
		sum += float64(r.Windows) * r.MeanCPI
	}
	if got := sum / n; got != pooled.MeanCPI {
		t.Fatalf("shared-trace pooled CPI %v != per-offset Run pooled CPI %v", pooled.MeanCPI, got)
	}
}

func TestRunParallelPoolsWindows(t *testing.T) {
	prog, _, err := compiler.CompileSource(loopSrc, compiler.O2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	s := Sampler{WindowSize: 200, Interval: 40}
	single, err := Run(prog, cfg, s, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunParallel(prog, cfg, s, 100_000_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Windows <= single.Windows {
		t.Fatalf("pooling did not add windows: %d vs %d", pooled.Windows, single.Windows)
	}
	rel := math.Abs(pooled.EstimatedCycles-single.EstimatedCycles) / single.EstimatedCycles
	if rel > 0.10 {
		t.Fatalf("pooled estimate drifted %.1f%% from single-offset run", 100*rel)
	}
	// Deterministic: the same call yields the same pooled estimate.
	again, err := RunParallel(prog, cfg, s, 100_000_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again.EstimatedCycles != pooled.EstimatedCycles || again.Windows != pooled.Windows {
		t.Fatal("RunParallel not deterministic")
	}
	// workers <= 1 degrades to Run exactly.
	one, err := RunParallel(prog, cfg, s, 100_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.EstimatedCycles != single.EstimatedCycles {
		t.Fatal("workers=1 must match Run")
	}
}
