package serve

import (
	"sync"
	"time"
)

// bucket is a token-bucket rate limiter: capacity `burst` tokens refilled
// at `rate` per second; each allowed request spends one token.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// allow spends a token if one is available at time now.
func (b *bucket) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
