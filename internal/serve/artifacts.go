package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/workloads"
)

// artifactSchema versions the artifact file wrapper (the per-model payloads
// carry model.SchemaVersion independently). Bump it when the fingerprint or
// layout changes incompatibly.
const artifactSchema = 1

// NoArtifactError reports a (workload, scale) pair with no persisted
// artifact. A read-only replica maps it to 503 with a retry hint: the
// writer owns training, so the artifact will appear once the writer has
// fitted and persisted it.
type NoArtifactError struct {
	Key string
}

func (e *NoArtifactError) Error() string {
	return fmt.Sprintf("serve: no persisted artifact for %s; the writer must train it first", e.Key)
}

// CorruptArtifactError reports an artifact file that exists but cannot be
// decoded (torn write, version skew, tampering). Warm boot logs and skips
// these — one bad file must never abort serving — and the writer refits
// lazily on the first request for the pair.
type CorruptArtifactError struct {
	Path   string
	Reason string
}

func (e *CorruptArtifactError) Error() string {
	return fmt.Sprintf("serve: corrupt artifact %s: %s", e.Path, e.Reason)
}

// Fingerprint records what produced an artifact: the training identity
// (workload, scale), the model kinds fitted, and a hash of the coded
// training matrix. Load verifies the identity fields; the hash lets
// operators diff artifact provenance across writers.
type Fingerprint struct {
	Workload    string   `json:"workload"` // benchmark name, e.g. "179.art"
	Input       string   `json:"input"`    // input label, e.g. "train"
	Class       string   `json:"class"`    // input class: train|ref
	Scale       string   `json:"scale"`    // harness scale the fit used
	Kinds       []string `json:"kinds"`    // model kinds, sorted
	Points      int      `json:"points"`   // training design size
	DatasetHash string   `json:"dataset_hash"`
}

// artifactFile is the on-disk layout: a schema version, the fingerprint,
// the coded space the models predict over, the training matrix effect
// ranking averages over, and one versioned model payload per kind.
type artifactFile struct {
	Schema      int                        `json:"schema"`
	Fingerprint Fingerprint                `json:"fingerprint"`
	Space       []doe.Var                  `json:"space"`
	TrainX      [][]float64                `json:"train_x"`
	Models      map[string]json.RawMessage `json:"models"`
}

// ArtifactStore persists fitted model sets, one file per (workload, scale)
// pair, under a single directory. Writes are atomic (temp file + rename +
// directory fsync), so readers — including a replica re-scanning the
// directory mid-write — only ever observe complete artifacts.
type ArtifactStore struct {
	dir string
	log io.Writer
}

// OpenArtifacts opens (creating if needed) an artifact directory.
func OpenArtifacts(dir string, log io.Writer) (*ArtifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: artifact dir: %w", err)
	}
	return &ArtifactStore{dir: dir, log: log}, nil
}

// Dir returns the store's root directory.
func (s *ArtifactStore) Dir() string { return s.dir }

func (s *ArtifactStore) logf(format string, args ...interface{}) {
	if s.log != nil {
		fmt.Fprintf(s.log, format+"\n", args...)
	}
}

// fileName maps a (workload, scale) pair to its artifact file. Workload
// keys ("164.gzip-graphic") and scale names are filesystem-safe already;
// the "@" separator keeps the pair parseable by eye.
func fileName(w workloads.Workload, scale string) string {
	return w.Key() + "@" + scale + ".model.json"
}

// Path returns where the artifact for (w, scale) lives.
func (s *ArtifactStore) Path(w workloads.Workload, scale string) string {
	return filepath.Join(s.dir, fileName(w, scale))
}

// datasetHash fingerprints the coded training matrix: fnv64a over the
// IEEE-754 bits of every coordinate, row-major.
func datasetHash(trainX [][]float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range trainX {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// Save atomically persists one artifact set. A crash mid-save leaves the
// previous version (or nothing) in place, never a torn file.
func (s *ArtifactStore) Save(art *Artifacts, scale string) error {
	kinds := make([]string, 0, len(art.Models))
	encoded := make(map[string]json.RawMessage, len(art.Models))
	for kind, m := range art.Models {
		data, err := model.Encode(m)
		if err != nil {
			return fmt.Errorf("serve: encode %s/%s: %w", art.Workload.Key(), kind, err)
		}
		encoded[kind] = data
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	file := artifactFile{
		Schema: artifactSchema,
		Fingerprint: Fingerprint{
			Workload:    art.Workload.Name,
			Input:       art.Workload.Input,
			Class:       string(art.Workload.Class),
			Scale:       scale,
			Kinds:       kinds,
			Points:      len(art.TrainX),
			DatasetHash: datasetHash(art.TrainX),
		},
		Space:  art.Space.Vars,
		TrainX: art.TrainX,
		Models: encoded,
	}
	data, err := json.Marshal(&file)
	if err != nil {
		return fmt.Errorf("serve: marshal artifact: %w", err)
	}

	final := s.Path(art.Workload, scale)
	tmp, err := os.CreateTemp(s.dir, ".artifact-*")
	if err != nil {
		return fmt.Errorf("serve: artifact temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: artifact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: artifact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: artifact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("serve: artifact rename: %w", err)
	}
	// Fsync the directory so the rename itself survives a crash.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and decodes the artifact for (w, scale). A missing file is
// *NoArtifactError; anything undecodable is *CorruptArtifactError.
func (s *ArtifactStore) Load(w workloads.Workload, scale string) (*Artifacts, error) {
	art, _, err := s.loadPath(s.Path(w, scale), w.Key()+"|"+scale)
	return art, err
}

func (s *ArtifactStore) loadPath(path, key string) (*Artifacts, Fingerprint, error) {
	var fp Fingerprint
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fp, &NoArtifactError{Key: key}
	}
	if err != nil {
		return nil, fp, &CorruptArtifactError{Path: path, Reason: err.Error()}
	}
	var file artifactFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fp, &CorruptArtifactError{Path: path, Reason: err.Error()}
	}
	fp = file.Fingerprint
	if file.Schema != artifactSchema {
		return nil, fp, &CorruptArtifactError{Path: path,
			Reason: fmt.Sprintf("schema version %d (this build reads %d)", file.Schema, artifactSchema)}
	}
	w, err := workloads.Get(file.Fingerprint.Workload, workloads.InputClass(file.Fingerprint.Class))
	if err != nil {
		return nil, fp, &CorruptArtifactError{Path: path, Reason: err.Error()}
	}
	if len(file.Space) == 0 || len(file.Models) == 0 || file.Fingerprint.Scale == "" {
		return nil, fp, &CorruptArtifactError{Path: path, Reason: "empty space, model set or fingerprint"}
	}
	models := make(map[string]model.Model, len(file.Models))
	for kind, raw := range file.Models {
		m, err := model.Decode(raw)
		if err != nil {
			return nil, fp, &CorruptArtifactError{Path: path, Reason: kind + ": " + err.Error()}
		}
		models[kind] = m
	}
	art := &Artifacts{
		Workload: w,
		Space:    &doe.Space{Vars: file.Space},
		Models:   models,
		TrainX:   file.TrainX,
	}
	return art, fp, nil
}

// Loaded is one artifact read off disk, with the scale it was trained at.
type Loaded struct {
	Art   *Artifacts
	Scale string
}

// LoadAll scans the directory and decodes every artifact. Undecodable files
// are reported through skip (when non-nil) and skipped — a corrupt artifact
// must never abort a boot or a reload — and the count of skips is returned
// alongside the successfully loaded set.
func (s *ArtifactStore) LoadAll(skip func(path string, err error)) ([]Loaded, int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: artifact scan: %w", err)
	}
	var out []Loaded
	skipped := 0
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".model.json") {
			continue
		}
		path := filepath.Join(s.dir, name)
		// The scale is authoritative in the fingerprint, not the filename.
		art, fp, err := s.loadPath(path, strings.TrimSuffix(name, ".model.json"))
		if err != nil {
			skipped++
			s.logf("artifact skip: %v", err)
			if skip != nil {
				skip(path, err)
			}
			continue
		}
		out = append(out, Loaded{Art: art, Scale: fp.Scale})
	}
	return out, skipped, nil
}
