package serve

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/farm"
	"repro/internal/features"
	"repro/internal/wlgen"
)

// crossTestServer boots a server whose measurements run through a counting
// stub, so tests can pin exactly how many farm dispatches each request costs.
func crossTestServer(t *testing.T, executions *atomic.Int64) (*Server, *httptest.Server) {
	t.Helper()
	features.ClearCache()
	srv := New(Options{
		Scale:           "quick",
		CrossCorpusSize: 4,
		CrossPointsPer:  3,
		Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
			executions.Add(1)
			c := 1000.0 + 2.0*float64(len(job.Workload.Source))
			for i, v := range job.Point {
				c += float64(i%7+1) * math.Abs(float64(v)) * 0.05
			}
			return farm.Result{Cycles: c, Energy: c / 2, Instructions: 1000}, nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestPredictProgramZeroDispatchAfterTraining is the acceptance criterion:
// the first /v1/predict-program request trains the cross models (measuring
// only the training corpus, never the submitted program), and a second
// request for a different never-measured program answers from the resident
// models with zero farm dispatches.
func TestPredictProgramZeroDispatchAfterTraining(t *testing.T) {
	var executions atomic.Int64
	_, ts := crossTestServer(t, &executions)
	pts := testPoints(3, 5)

	resp := postJSON(t, ts.URL+"/v1/predict-program", PredictProgramRequest{
		Source: wlgen.Generate(777).Source,
		Points: pts,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("first request: status %d: %s", resp.StatusCode, b)
	}
	var out PredictProgramResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Error("first request reported cached cross models")
	}
	if out.Model != "rbf" {
		t.Errorf("default model = %q, want rbf", out.Model)
	}
	if len(out.Predictions) != len(pts) {
		t.Fatalf("%d predictions for %d points", len(out.Predictions), len(pts))
	}
	for i, p := range out.Predictions {
		if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
			t.Errorf("prediction %d = %v, want positive finite cycles", i, p)
		}
	}
	if len(out.Features) != features.NumFeatures() {
		t.Errorf("%d features returned, want %d", len(out.Features), features.NumFeatures())
	}
	if out.Fingerprint == "" {
		t.Error("missing fingerprint")
	}

	// Training measured the corpus (7 seeds + 4 generated) at 3 points each —
	// and, critically, never the submitted program.
	wantSims := int64((7 + 4) * 3)
	if got := executions.Load(); got != wantSims {
		t.Fatalf("training dispatched %d sims, want %d", got, wantSims)
	}

	resp2 := postJSON(t, ts.URL+"/v1/predict-program", PredictProgramRequest{
		Source: wlgen.Generate(778).Source,
		Model:  "linear",
		Points: pts,
	})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp2.Body)
		t.Fatalf("second request: status %d: %s", resp2.StatusCode, b)
	}
	var out2 PredictProgramResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Cached {
		t.Error("second request retrained the cross models")
	}
	if out2.Model != "linear" {
		t.Errorf("model = %q, want linear", out2.Model)
	}
	if got := executions.Load(); got != wantSims {
		t.Fatalf("second request dispatched %d extra sims, want zero", got-wantSims)
	}
	if out2.Fingerprint == out.Fingerprint {
		t.Error("distinct programs share a fingerprint")
	}
}

func TestPredictProgramRejectsBadRequests(t *testing.T) {
	var executions atomic.Int64
	_, ts := crossTestServer(t, &executions)
	pts := testPoints(1, 9)
	src := wlgen.Generate(42).Source

	cases := []struct {
		name string
		req  PredictProgramRequest
	}{
		{"invalid source", PredictProgramRequest{Source: "int main( {", Points: pts}},
		{"check error", PredictProgramRequest{Source: "int main() { return nope; }", Points: pts}},
		{"missing source", PredictProgramRequest{Points: pts}},
		{"no points", PredictProgramRequest{Source: src}},
		{"unknown model", PredictProgramRequest{Source: src, Model: "cubist", Points: pts}},
		{"bad point", PredictProgramRequest{Source: src, Points: [][]int64{{1, 2}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/predict-program", tc.req)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
			}
		})
	}
}

func TestPredictProgramReplicaRefuses(t *testing.T) {
	srv := New(Options{Scale: "quick", Replica: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	resp := postJSON(t, ts.URL+"/v1/predict-program", PredictProgramRequest{
		Source: wlgen.Generate(1).Source,
		Points: testPoints(1, 1),
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestMetricsExposeCrossAndFeatureCacheSeries(t *testing.T) {
	var executions atomic.Int64
	_, ts := crossTestServer(t, &executions)
	resp := postJSON(t, ts.URL+"/v1/predict-program", PredictProgramRequest{
		Source: wlgen.Generate(5).Source,
		Points: testPoints(1, 2),
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict-program status %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	b, _ := io.ReadAll(mr.Body)
	body := string(b)
	for _, want := range []string{
		"empiricod_cross_models_cached 1",
		"empiricod_cross_fits_total 1",
		"empiricod_feature_cache_hits_total",
		"empiricod_feature_cache_misses_total",
		`empiricod_requests_total{endpoint="predict-program",code="200"} 1`,
		`empiricod_request_duration_seconds_count{endpoint="predict-program"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
