package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// coalesceValue mirrors the farm-test convention: a deterministic fake
// measurement derived from the point, so distribution can be verified.
func coalesceValue(p doe.Point) float64 {
	v := 1.0
	for _, x := range p {
		v = v*31 + float64(x)
	}
	return v
}

func countingBatch(calls *atomic.Int64, points *atomic.Int64) BatchFunc {
	return func(ctx context.Context, w workloads.Workload, pts []doe.Point, resp farm.Response) ([]float64, error) {
		calls.Add(1)
		points.Add(int64(len(pts)))
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = coalesceValue(p)
		}
		return out, nil
	}
}

// TestCoalesceManyClientsOneBatch is the satellite coverage: N concurrent
// clients with overlapping points inside one window produce exactly one
// farm batch, with duplicate points submitted once and every client seeing
// its own values in its own order.
func TestCoalesceManyClientsOneBatch(t *testing.T) {
	var calls, totalPts atomic.Int64
	c := NewCoalescer(countingBatch(&calls, &totalPts), 150*time.Millisecond)
	w := workloads.MustGet("179.art", workloads.Train)
	space := doe.JointSpace()
	rng := rand.New(rand.NewSource(1))
	// 8 distinct points; each client asks for an overlapping pair.
	shared := make([]doe.Point, 8)
	for i := range shared {
		shared[i] = space.RandomPoint(rng)
	}

	const clients = 30
	var wg sync.WaitGroup
	fail := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pts := []doe.Point{shared[i%len(shared)], shared[(i+1)%len(shared)]}
			vals, err := c.Measure(context.Background(), w, pts, farm.Cycles)
			if err != nil {
				fail <- err.Error()
				return
			}
			for j, p := range pts {
				if vals[j] != coalesceValue(p) {
					fail <- "client got wrong value for its point"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d concurrent clients caused %d farm batches, want 1", clients, n)
	}
	if n := c.Batches(); n != 1 {
		t.Fatalf("coalescer counted %d batches, want 1", n)
	}
	if n := totalPts.Load(); n != int64(len(shared)) {
		t.Fatalf("batch carried %d points, want %d deduped", n, len(shared))
	}
}

// TestCoalesceWindowBoundsBatches pins the acceptance bound: requests spread
// over a duration D produce at most floor(D/window)+1 batches (a new batch
// can only open once per window). The bound is computed from the measured
// arrival span, so scheduler noise cannot produce a flaky failure.
func TestCoalesceWindowBoundsBatches(t *testing.T) {
	const window = 40 * time.Millisecond
	var calls, totalPts atomic.Int64
	c := NewCoalescer(countingBatch(&calls, &totalPts), window)
	w := workloads.MustGet("164.gzip", workloads.Train)
	space := doe.JointSpace()
	rng := rand.New(rand.NewSource(2))

	const clients = 12
	pts := make([]doe.Point, clients)
	for i := range pts {
		pts[i] = space.RandomPoint(rng)
	}
	var wg sync.WaitGroup
	start := time.Now()
	var lastArrival atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
			now := time.Since(start).Nanoseconds()
			for {
				prev := lastArrival.Load()
				if now <= prev || lastArrival.CompareAndSwap(prev, now) {
					break
				}
			}
			if _, err := c.Measure(context.Background(), w, []doe.Point{pts[i]}, farm.Cycles); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	span := time.Duration(lastArrival.Load())
	allowed := int64(span/window) + 1
	if n := c.Batches(); n > allowed {
		t.Fatalf("%d batches over a %v arrival span with %v window, allowed %d",
			n, span, window, allowed)
	}
	if n := c.Batches(); n < 1 {
		t.Fatal("no batches dispatched")
	}
}

// TestCoalesceCancelPropagates: when every waiter of a batch gives up, the
// batch context is cancelled so the farm can stop, and each waiter gets its
// own context error.
func TestCoalesceCancelPropagates(t *testing.T) {
	batchCancelled := make(chan struct{})
	slow := func(ctx context.Context, w workloads.Workload, pts []doe.Point, resp farm.Response) ([]float64, error) {
		<-ctx.Done()
		close(batchCancelled)
		return nil, ctx.Err()
	}
	c := NewCoalescer(slow, time.Millisecond)
	w := workloads.MustGet("175.vpr", workloads.Train)
	pt := doe.JointSpace().RandomPoint(rand.New(rand.NewSource(3)))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Measure(ctx, w, []doe.Point{pt}, farm.Cycles)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the batch fire and block in slow()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	select {
	case <-batchCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("batch context never cancelled after all waiters left")
	}
}
