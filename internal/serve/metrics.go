package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBuckets are the fixed histogram bounds (seconds) for request
// latency. Predictions answer in microseconds once a model is cached;
// training and measurement runs reach into seconds — the spread covers both.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Metrics accumulates per-endpoint request counters and latency histograms
// and renders them in the Prometheus text exposition format. It is
// hand-rolled on purpose: the repo takes no dependencies, and the format is
// a few lines of text.
type Metrics struct {
	mu          sync.Mutex
	requests    map[string]map[int]int64 // endpoint -> status code -> count
	hist        map[string]*histogram    // endpoint -> latency histogram
	shed        int64
	rateLimited int64
}

type histogram struct {
	counts []int64 // one per bucket, non-cumulative
	sum    float64
	n      int64
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: map[string]map[int]int64{},
		hist:     map[string]*histogram{},
	}
}

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests[endpoint] == nil {
		m.requests[endpoint] = map[int]int64{}
	}
	m.requests[endpoint][code]++
	h := m.hist[endpoint]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.hist[endpoint] = h
	}
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i]++
	h.sum += sec
	h.n++
}

// Shed counts one request rejected by the in-flight limiter.
func (m *Metrics) Shed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// RateLimited counts one request rejected by a token bucket.
func (m *Metrics) RateLimited() {
	m.mu.Lock()
	m.rateLimited++
	m.mu.Unlock()
}

// WriteProm renders the request metrics in Prometheus text format, with
// endpoints and codes in sorted order so output is deterministic.
func (m *Metrics) WriteProm(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP empiricod_requests_total Requests handled, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE empiricod_requests_total counter")
	for _, ep := range sortedKeys(m.requests) {
		codes := make([]int, 0, len(m.requests[ep]))
		for c := range m.requests[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "empiricod_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.requests[ep][c])
		}
	}

	fmt.Fprintln(w, "# HELP empiricod_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE empiricod_request_duration_seconds histogram")
	for _, ep := range sortedKeys(m.hist) {
		h := m.hist[ep]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "empiricod_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "empiricod_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "empiricod_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "empiricod_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.n)
	}

	fmt.Fprintln(w, "# HELP empiricod_shed_total Requests rejected because the in-flight limit was reached.")
	fmt.Fprintln(w, "# TYPE empiricod_shed_total counter")
	fmt.Fprintf(w, "empiricod_shed_total %d\n", m.shed)
	fmt.Fprintln(w, "# HELP empiricod_rate_limited_total Requests rejected by per-endpoint token buckets.")
	fmt.Fprintln(w, "# TYPE empiricod_rate_limited_total counter")
	fmt.Fprintf(w, "empiricod_rate_limited_total %d\n", m.rateLimited)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
