// Package serve is the service layer of the reproduction: an HTTP JSON
// front-end (stdlib net/http only) over the measurement farm, the simulator
// and the empirical-model pipeline. cmd/empiricod hosts it as a daemon.
//
// The package provides five pieces:
//
//   - Registry: fitted models cached per (workload, scale) behind
//     single-flight, so the first wave of concurrent predict requests trains
//     exactly once, with LRU eviction bounding resident models;
//   - ArtifactStore: versioned on-disk persistence of every successful fit
//     (atomic-rename files), so boots warm-start from artifacts instead of
//     refitting, reloads swap new artifacts in without downtime, and
//     read-only replicas serve prediction traffic with no farm at all;
//   - Coalescer: concurrent measure requests for overlapping points are
//     batched into one farm.MeasureBatch call per ~10ms window, so many
//     small callers exercise the farm's dedup and worker pool the way one
//     big batch caller does;
//   - Server: the HTTP handlers (/v1/predict, /v1/measure, /v1/search,
//     /v1/rank, /v1/reload, /healthz, /metrics) with per-endpoint
//     token-bucket rate limiting, max-in-flight shedding and graceful
//     shutdown;
//   - Metrics: a hand-rolled Prometheus-text exporter for request counters,
//     latency histograms and the farm/registry/coalescer/runtime gauges.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/workloads"
)

// Artifacts is everything one training run produces and the service needs
// to answer predict and rank requests: the fitted models of every kind, the
// space they are coded over, and the coded training matrix (the background
// points effect ranking averages over).
type Artifacts struct {
	Workload workloads.Workload
	Space    *doe.Space
	Models   map[string]model.Model
	TrainX   [][]float64

	// planOnce/scratch cache the predict hot path's expansion plan: the
	// scratch capacity any of this artifact's models needs. Computed once
	// when the artifact enters the registry (fit or load), so per-request
	// work is a pool fetch, never a plan walk.
	planOnce sync.Once
	scratch  int
}

// Model resolves a model kind ("linear", "mars", "rbf", "mars-raw"; "" means
// rbf, the paper's search surrogate).
func (a *Artifacts) Model(kind string) (model.Model, error) {
	if kind == "" {
		kind = "rbf"
	}
	m, ok := a.Models[kind]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model kind %q", kind)
	}
	return m, nil
}

// scratchLen returns (computing on first use) the pooled-buffer capacity
// the predict hot path needs to evaluate any of this artifact's models.
func (a *Artifacts) scratchLen() int {
	a.planOnce.Do(func() {
		for _, m := range a.Models {
			if n := model.ScratchLen(m); n > a.scratch {
				a.scratch = n
			}
		}
	})
	return a.scratch
}

// Trainer produces the artifacts for one (workload, scale) pair. The
// harness-backed trainer measures the training design (warm-started from
// the farm's durable store) and runs exp.FitAllParallel; tests inject
// stubs. Trainers are called outside the registry lock and may run long.
type Trainer func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error)

// Registry caches fitted models per (workload, scale) key. Lookups are
// single-flight: concurrent first requests for a key block on one training
// run instead of each starting their own. Every model kind is fitted in the
// same run (exp.FitAll trains all four from one dataset), so the finer
// (workload, scale, kind) request key resolves onto one shared cache entry.
// Least-recently-used entries are evicted beyond MaxEntries.
//
// With an ArtifactStore attached (UseStore), every successful fit is
// persisted, misses try disk before training (so warm processes and
// restarts never refit what a prior run already fitted), and Reload swaps
// freshly persisted artifacts in copy-on-write — in-flight requests keep
// the entry pointer they resolved, new requests see the reloaded one. In
// read-only (replica) mode the trainer is never called: a miss with no
// usable artifact fails with *NoArtifactError.
type Registry struct {
	trainer  Trainer
	max      int
	store    *ArtifactStore
	readOnly bool
	log      io.Writer

	mu      sync.Mutex
	entries map[string]*regEntry
	order   []string // LRU order: least recently used first
	stats   RegistryStats
}

// regEntry is one cached (possibly still-training) artifact set. Waiters
// hold the pointer, so eviction never invalidates an in-progress lookup.
type regEntry struct {
	ready chan struct{} // closed when art/err are set
	art   *Artifacts
	err   error
}

// RegistryStats snapshots the registry's counters.
type RegistryStats struct {
	Cached    int   // entries resident (including in-training)
	Fits      int64 // training runs started
	Hits      int64 // lookups that found an entry (trained or in-flight)
	Misses    int64 // lookups that found no entry (resolved from disk or a fit)
	Evictions int64
	Loads     int64 // artifacts loaded from disk (boot, lazy miss, reload)
	Persists  int64 // artifacts written after successful fits
	Corrupt   int64 // artifact files skipped as undecodable
	Reloads   int64 // reload sweeps completed
}

// NewRegistry returns a registry over trainer holding at most maxEntries
// fitted (workload, scale) pairs (0 means 8).
func NewRegistry(trainer Trainer, maxEntries int) *Registry {
	if maxEntries <= 0 {
		maxEntries = 8
	}
	return &Registry{trainer: trainer, max: maxEntries, entries: map[string]*regEntry{}}
}

// UseStore attaches an artifact store. In read-only mode the registry never
// trains: it serves persisted artifacts only. Call before serving traffic.
func (r *Registry) UseStore(s *ArtifactStore, readOnly bool, log io.Writer) {
	r.store = s
	r.readOnly = readOnly
	r.log = log
}

func (r *Registry) logf(format string, args ...interface{}) {
	if r.log != nil {
		fmt.Fprintf(r.log, format+"\n", args...)
	}
}

func regKey(w workloads.Workload, scale string) string { return w.Key() + "|" + scale }

// Get returns the artifacts for (w, scale), resolving them on first use:
// from the artifact store when one is attached and has the pair, otherwise
// by training (writer mode) or failing with *NoArtifactError (replica). The
// second return reports whether the call was served from cache (true even
// when it joined a resolution already in flight — no new fit was started).
// ctx bounds only this caller's wait: training itself runs under a
// background context, because its result is shared with every other waiter
// and with future requests — a disconnecting first client must not abort a
// fit that others are (or will be) waiting on.
func (r *Registry) Get(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, bool, error) {
	key := regKey(w, scale)
	r.mu.Lock()
	e, ok := r.entries[key]
	if ok {
		r.stats.Hits++
		r.touch(key)
		r.mu.Unlock()
		return e.wait(ctx)
	}
	e = &regEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.order = append(r.order, key)
	r.stats.Misses++
	r.evictLocked()
	r.mu.Unlock()

	go func() {
		art, err := r.resolve(w, scale)
		if art != nil {
			art.scratchLen() // precompute the predict expansion plan
		}
		e.art, e.err = art, err
		if err != nil {
			// A failed resolution must not be cached: drop the entry so the
			// next request retries instead of replaying a stale error.
			r.mu.Lock()
			if r.entries[key] == e {
				delete(r.entries, key)
				r.removeFromOrder(key)
			}
			r.mu.Unlock()
		}
		close(e.ready)
	}()
	art, _, err := e.wait(ctx)
	return art, false, err
}

// resolve produces the artifacts for a registry miss: disk first when a
// store is attached, then a training run (writer mode only). A successful
// fit is persisted before the entry is published, so a replica's next
// reload sees it.
func (r *Registry) resolve(w workloads.Workload, scale string) (*Artifacts, error) {
	if r.store != nil {
		art, err := r.store.Load(w, scale)
		if err == nil {
			r.count(func(st *RegistryStats) { st.Loads++ })
			return art, nil
		}
		var corrupt *CorruptArtifactError
		if errors.As(err, &corrupt) {
			// Log and fall through: the writer refits (and overwrites the bad
			// file); the replica reports the pair unavailable until then.
			r.count(func(st *RegistryStats) { st.Corrupt++ })
			r.logf("registry: %v", err)
			if r.readOnly {
				return nil, &NoArtifactError{Key: regKey(w, scale)}
			}
		} else if r.readOnly {
			return nil, err // *NoArtifactError
		}
	} else if r.readOnly {
		return nil, &NoArtifactError{Key: regKey(w, scale)}
	}

	r.count(func(st *RegistryStats) { st.Fits++ })
	art, err := r.trainer(context.Background(), w, scale)
	if err != nil {
		return nil, err
	}
	if r.store != nil {
		if err := r.store.Save(art, scale); err != nil {
			// Persistence is durability, not correctness: serve the fit and
			// let the next fit (or operator) retry the write.
			r.logf("registry: persist failed: %v", err)
		} else {
			r.count(func(st *RegistryStats) { st.Persists++ })
		}
	}
	return art, nil
}

func (r *Registry) count(f func(*RegistryStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// Reload rescans the artifact store and swaps every decodable artifact into
// the registry copy-on-write: each becomes a fresh, already-ready entry, so
// requests in flight finish on the artifact pointer they resolved while new
// requests see the reloaded one. Corrupt files are logged and skipped.
// Entries mid-training are left alone (the in-flight fit is at least as
// fresh as anything on disk). Warm boot is a Reload over an empty registry.
func (r *Registry) Reload() (loaded, skipped int, err error) {
	if r.store == nil {
		return 0, 0, fmt.Errorf("serve: no artifact store attached")
	}
	arts, skipped, err := r.store.LoadAll(nil)
	if err != nil {
		return 0, skipped, err
	}
	for _, la := range arts {
		la.Art.scratchLen() // precompute the predict expansion plan
		r.install(regKey(la.Art.Workload, la.Scale), la.Art)
		loaded++
	}
	r.count(func(st *RegistryStats) {
		st.Reloads++
		st.Loads += int64(loaded)
		st.Corrupt += int64(skipped)
	})
	return loaded, skipped, nil
}

// install publishes an already-resolved artifact as a ready entry,
// replacing any ready entry under the same key (copy-on-write: the old
// entry stays valid for goroutines holding it) but never an in-flight one.
func (r *Registry) install(key string, art *Artifacts) {
	e := &regEntry{ready: make(chan struct{}), art: art}
	close(e.ready)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.entries[key]; ok {
		select {
		case <-old.ready:
		default:
			return // a fit is in flight; don't shadow its fresher result
		}
		r.entries[key] = e
		r.touch(key)
		return
	}
	r.entries[key] = e
	r.order = append(r.order, key)
	r.evictLocked()
}

// wait blocks until the entry is trained or ctx expires.
func (e *regEntry) wait(ctx context.Context) (*Artifacts, bool, error) {
	select {
	case <-e.ready:
		return e.art, true, e.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// touch marks key most recently used. Caller holds mu.
func (r *Registry) touch(key string) {
	r.removeFromOrder(key)
	r.order = append(r.order, key)
}

func (r *Registry) removeFromOrder(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used entries beyond the capacity. Caller
// holds mu. Evicted entries stay valid for goroutines already holding them;
// they simply stop being findable, so the next request resolves afresh —
// from the artifact store when one is attached (eviction never deletes the
// on-disk artifact), by retraining otherwise.
func (r *Registry) evictLocked() {
	for len(r.order) > r.max {
		victim := r.order[0]
		r.order = r.order[1:]
		delete(r.entries, victim)
		r.stats.Evictions++
	}
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Cached = len(r.entries)
	return st
}
