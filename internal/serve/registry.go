// Package serve is the service layer of the reproduction: an HTTP JSON
// front-end (stdlib net/http only) over the measurement farm, the simulator
// and the empirical-model pipeline. cmd/empiricod hosts it as a daemon.
//
// The package provides four pieces:
//
//   - Registry: fitted models cached per (workload, scale) behind
//     single-flight, so the first wave of concurrent predict requests trains
//     exactly once, with LRU eviction bounding resident models;
//   - Coalescer: concurrent measure requests for overlapping points are
//     batched into one farm.MeasureBatch call per ~10ms window, so many
//     small callers exercise the farm's dedup and worker pool the way one
//     big batch caller does;
//   - Server: the HTTP handlers (/v1/predict, /v1/measure, /v1/search,
//     /v1/rank, /healthz, /metrics) with per-endpoint token-bucket rate
//     limiting, max-in-flight shedding and graceful shutdown;
//   - Metrics: a hand-rolled Prometheus-text exporter for request counters,
//     latency histograms and the farm/registry/coalescer gauges.
package serve

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/workloads"
)

// Artifacts is everything one training run produces and the service needs
// to answer predict and rank requests: the fitted models of every kind, the
// space they are coded over, and the coded training matrix (the background
// points effect ranking averages over).
type Artifacts struct {
	Workload workloads.Workload
	Space    *doe.Space
	Models   map[string]model.Model
	TrainX   [][]float64
}

// Model resolves a model kind ("linear", "mars", "rbf", "mars-raw"; "" means
// rbf, the paper's search surrogate).
func (a *Artifacts) Model(kind string) (model.Model, error) {
	if kind == "" {
		kind = "rbf"
	}
	m, ok := a.Models[kind]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model kind %q", kind)
	}
	return m, nil
}

// Trainer produces the artifacts for one (workload, scale) pair. The
// harness-backed trainer measures the training design (warm-started from
// the farm's durable store) and runs exp.FitAllParallel; tests inject
// stubs. Trainers are called outside the registry lock and may run long.
type Trainer func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error)

// Registry caches fitted models per (workload, scale) key. Lookups are
// single-flight: concurrent first requests for a key block on one training
// run instead of each starting their own. Every model kind is fitted in the
// same run (exp.FitAll trains all four from one dataset), so the finer
// (workload, scale, kind) request key resolves onto one shared cache entry.
// Least-recently-used entries are evicted beyond MaxEntries.
type Registry struct {
	trainer Trainer
	max     int

	mu      sync.Mutex
	entries map[string]*regEntry
	order   []string // LRU order: least recently used first
	stats   RegistryStats
}

// regEntry is one cached (possibly still-training) artifact set. Waiters
// hold the pointer, so eviction never invalidates an in-progress lookup.
type regEntry struct {
	ready chan struct{} // closed when art/err are set
	art   *Artifacts
	err   error
}

// RegistryStats snapshots the registry's counters.
type RegistryStats struct {
	Cached    int   // entries resident (including in-training)
	Fits      int64 // training runs started
	Hits      int64 // lookups that found an entry (trained or in-flight)
	Misses    int64 // lookups that started a training run
	Evictions int64
}

// NewRegistry returns a registry over trainer holding at most maxEntries
// fitted (workload, scale) pairs (0 means 8).
func NewRegistry(trainer Trainer, maxEntries int) *Registry {
	if maxEntries <= 0 {
		maxEntries = 8
	}
	return &Registry{trainer: trainer, max: maxEntries, entries: map[string]*regEntry{}}
}

func regKey(w workloads.Workload, scale string) string { return w.Key() + "|" + scale }

// Get returns the artifacts for (w, scale), training them on first use. The
// second return reports whether the call was served from cache (true even
// when it joined a training run already in flight — no new fit was started).
// ctx bounds only this caller's wait: training itself runs under a
// background context, because its result is shared with every other waiter
// and with future requests — a disconnecting first client must not abort a
// fit that others are (or will be) waiting on.
func (r *Registry) Get(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, bool, error) {
	key := regKey(w, scale)
	r.mu.Lock()
	e, ok := r.entries[key]
	if ok {
		r.stats.Hits++
		r.touch(key)
		r.mu.Unlock()
		return e.wait(ctx)
	}
	e = &regEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.order = append(r.order, key)
	r.stats.Misses++
	r.stats.Fits++
	r.evictLocked()
	r.mu.Unlock()

	go func() {
		art, err := r.trainer(context.Background(), w, scale)
		e.art, e.err = art, err
		if err != nil {
			// A failed fit must not be cached: drop the entry so the next
			// request retrains instead of replaying a stale error.
			r.mu.Lock()
			if r.entries[key] == e {
				delete(r.entries, key)
				r.removeFromOrder(key)
			}
			r.mu.Unlock()
		}
		close(e.ready)
	}()
	art, _, err := e.wait(ctx)
	return art, false, err
}

// wait blocks until the entry is trained or ctx expires.
func (e *regEntry) wait(ctx context.Context) (*Artifacts, bool, error) {
	select {
	case <-e.ready:
		return e.art, true, e.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// touch marks key most recently used. Caller holds mu.
func (r *Registry) touch(key string) {
	r.removeFromOrder(key)
	r.order = append(r.order, key)
}

func (r *Registry) removeFromOrder(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used entries beyond the capacity. Caller
// holds mu. Evicted entries stay valid for goroutines already holding them;
// they simply stop being findable, so the next request retrains.
func (r *Registry) evictLocked() {
	for len(r.order) > r.max {
		victim := r.order[0]
		r.order = r.order[1:]
		delete(r.entries, victim)
		r.stats.Evictions++
	}
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Cached = len(r.entries)
	return st
}
