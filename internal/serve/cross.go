package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/features"
	"repro/internal/model"
	"repro/internal/wlgen"
	"repro/internal/workloads"
)

// Cross-program serving: POST /v1/predict-program accepts raw MiniC source,
// extracts its feature vector server-side, and answers with predictions
// from the pooled cross-program models (exp.BuildCrossDataset +
// exp.FitCrossModels) — no training run, no measurement of the submitted
// program, zero farm dispatches once the cross models are resident. The
// cross models are trained once per scale, on first request, over the seed
// suite plus a wlgen corpus; concurrent first requests single-flight into
// one training run, like the per-workload registry.

// Defaults for the cross-model training corpus.
const (
	DefaultCrossCorpusSeed = 1
	DefaultCrossCorpusSize = 32
	DefaultCrossPointsPer  = 6
)

// CrossArtifacts bundles the fitted cross-program models with everything
// the predict path needs to build pooled rows.
type CrossArtifacts struct {
	Models map[string]model.Model // "linear" | "mars" | "rbf"
	Space  *doe.Space
	// Corpus and Rows describe the training pool (surfaced in /metrics and
	// useful in responses for capacity planning).
	Corpus int
	Rows   int
}

// crossEntry single-flights one scale's cross-model training.
type crossEntry struct {
	once sync.Once
	art  *CrossArtifacts
	err  error
}

// crossFor returns the scale's cross artifacts, training them on first use.
// The second return reports whether this request was answered from cache.
// Failed training is not cached: the entry is dropped so a later request
// retries.
func (s *Server) crossFor(scaleName string) (*CrossArtifacts, bool, error) {
	key := s.resolveScale(scaleName)
	s.crossMu.Lock()
	e, ok := s.cross[key]
	if !ok {
		e = &crossEntry{}
		s.cross[key] = e
	}
	s.crossMu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		s.crossFits.Add(1)
		e.art, e.err = s.trainCross(key)
	})
	if hit {
		s.crossHits.Add(1)
	}
	if e.err != nil {
		s.crossMu.Lock()
		if s.cross[key] == e {
			delete(s.cross, key)
		}
		s.crossMu.Unlock()
		return nil, false, e.err
	}
	return e.art, hit, nil
}

// trainCross builds the pooled dataset (seed suite + generated corpus) on
// the scale's harness and fits the cross models. Measurements flow through
// the farm, so durable stores, batch grouping and the Measure test seam all
// apply, and interrupted training resumes from cache.
func (s *Server) trainCross(scaleName string) (*CrossArtifacts, error) {
	h, err := s.harnessFor(scaleName)
	if err != nil {
		return nil, err
	}
	seed := s.opts.CrossCorpusSeed
	if seed == 0 {
		seed = DefaultCrossCorpusSeed
	}
	size := s.opts.CrossCorpusSize
	if size == 0 {
		size = DefaultCrossCorpusSize
	}
	pointsPer := s.opts.CrossPointsPer
	if pointsPer == 0 {
		pointsPer = DefaultCrossPointsPer
	}
	ws := make([]workloads.Workload, 0, len(workloads.Names())+size)
	for _, name := range workloads.Names() {
		ws = append(ws, workloads.MustGet(name, workloads.Train))
	}
	for _, p := range wlgen.Corpus(seed, size) {
		ws = append(ws, p.Workload())
	}
	cd, err := h.BuildCrossDataset(ws, pointsPer)
	if err != nil {
		return nil, fmt.Errorf("cross dataset: %w", err)
	}
	models, err := exp.FitCrossModels(cd.Data, s.opts.Workers, model.MARSOptions{})
	if err != nil {
		return nil, fmt.Errorf("cross fit: %w", err)
	}
	return &CrossArtifacts{
		Models: models,
		Space:  h.Space(),
		Corpus: len(ws),
		Rows:   cd.Data.Len(),
	}, nil
}

// PredictProgramRequest asks for cross-model predictions for a program the
// service has never measured, submitted as MiniC source text.
type PredictProgramRequest struct {
	// Source is the MiniC program text.
	Source string `json:"source"`
	// Scale selects the cross-model training scale ("" = server default).
	Scale string `json:"scale,omitempty"`
	// Model is the cross-model kind: "linear", "mars" or "rbf" (default).
	Model string `json:"model,omitempty"`
	// Points are raw joint-space points (25 values each).
	Points [][]int64 `json:"points"`
}

// PredictProgramResponse carries cross-model predictions in request order.
type PredictProgramResponse struct {
	Model string `json:"model"`
	// Fingerprint is the program's feature-schema fingerprint — the
	// feature-cache key, stable across requests for identical source.
	Fingerprint string `json:"fingerprint"`
	// Cached reports whether the cross models were already resident (no
	// training started on this request's behalf).
	Cached bool `json:"cached"`
	// Features is the program's raw extracted feature vector, in
	// features.Names() order.
	Features    []float64 `json:"features"`
	Predictions []float64 `json:"predictions"`
}

func (s *Server) handlePredictProgram(w http.ResponseWriter, r *http.Request) {
	if s.opts.Replica {
		writeErr(w, http.StatusServiceUnavailable,
			"replica serves per-workload predictions only; send program predictions to the writer")
		return
	}
	var req PredictProgramRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Source == "" {
		writeErr(w, http.StatusBadRequest, "missing source")
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	f, err := features.ExtractSource(req.Source)
	if err != nil {
		// Parse/check/compile failures are client errors: the submitted
		// program is not valid MiniC.
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	art, cached, err := s.crossFor(req.Scale)
	if err != nil {
		writeErr(w, statusFor(err), "cross train: "+err.Error())
		return
	}
	kind := req.Model
	if kind == "" {
		kind = "rbf"
	}
	m, ok := art.Models[kind]
	if !ok {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("unknown cross model %q (linear|mars|rbf)", kind))
		return
	}
	preds := make([]float64, len(req.Points))
	for i, raw := range req.Points {
		p := doe.Point(raw)
		if err := art.Space.Validate(p); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("point %d: %v", i, err))
			return
		}
		preds[i] = m.Predict(exp.CrossRow(f, art.Space.Code(p)))
	}
	writeJSON(w, http.StatusOK, PredictProgramResponse{
		Model:       kind,
		Fingerprint: features.Fingerprint(req.Source),
		Cached:      cached,
		Features:    f,
		Predictions: preds,
	})
}
