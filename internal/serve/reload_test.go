package serve

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/doe"
	"repro/internal/workloads"
)

// TestReloadAndEvictionUnderConcurrentPredicts is the satellite-3 stress
// test (run under -race): predict traffic hammers a registry whose capacity
// forces LRU churn while artifacts are concurrently re-persisted and
// reloaded. It pins three invariants:
//
//   - no torn reads: every prediction equals exactly the old or the new
//     artifact version's value, never a mix;
//   - no double fit: with every pair persisted, eviction and reload resolve
//     from disk — the trainer never runs;
//   - eviction never deletes the on-disk artifact.
func TestReloadAndEvictionUnderConcurrentPredicts(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenArtifacts(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"179.art", "181.mcf", "164.gzip"}
	wls := make([]workloads.Workload, len(names))
	// oldWant/newWant are each workload's rbf prediction at its probe for
	// the two artifact versions; seeds 100+i and 200+i keep them distinct.
	probe := make([][]float64, len(names))
	oldWant := make([]float64, len(names))
	newWant := make([]float64, len(names))
	for i, name := range names {
		wls[i] = workloads.MustGet(name, workloads.Train)
		art := serializableArtifacts(wls[i], int64(100+i))
		if err := store.Save(art, "quick"); err != nil {
			t.Fatal(err)
		}
		probe[i] = art.Space.Code(doe.Point(testPoints(1, int64(70+i))[0]))
		m, _ := art.Model("rbf")
		oldWant[i] = m.Predict(probe[i])
		next := serializableArtifacts(wls[i], int64(200+i))
		mn, _ := next.Model("rbf")
		newWant[i] = mn.Predict(probe[i])
	}

	var fits atomic.Int64
	reg := NewRegistry(func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
		fits.Add(1)
		return nil, errors.New("trainer must not run: every pair is persisted")
	}, 2) // capacity 2 over 3 workloads: constant eviction churn
	reg.UseStore(store, false, nil)

	stop := make(chan struct{})
	fail := make(chan string, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (g + iter) % len(names)
				art, _, err := reg.Get(context.Background(), wls[i], "quick")
				if err != nil {
					fail <- err.Error()
					return
				}
				m, err := art.Model("rbf")
				if err != nil {
					fail <- err.Error()
					return
				}
				got := m.Predict(probe[i])
				if got != oldWant[i] && got != newWant[i] {
					fail <- "torn read: prediction matches neither artifact version"
					return
				}
			}
		}(g)
	}

	// Concurrently: re-persist each workload's new version and reload, twice.
	for round := 0; round < 2; round++ {
		for i, w := range wls {
			if err := store.Save(serializableArtifacts(w, int64(200+i)), "quick"); err != nil {
				t.Fatal(err)
			}
		}
		if _, skipped, err := reg.Reload(); err != nil || skipped != 0 {
			t.Fatalf("reload: skipped=%d err=%v", skipped, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	if n := fits.Load(); n != 0 {
		t.Fatalf("trainer ran %d times despite persisted artifacts (double fit)", n)
	}
	st := reg.Stats()
	if st.Evictions == 0 {
		t.Fatalf("capacity 2 over 3 keys caused no evictions: %+v", st)
	}
	// Eviction is cache policy, not storage policy: every artifact survives.
	for _, w := range wls {
		if _, err := os.Stat(store.Path(w, "quick")); err != nil {
			t.Fatalf("eviction removed the on-disk artifact: %v", err)
		}
	}
	// After the final reload every pair must serve the new version.
	for i, w := range wls {
		art, _, err := reg.Get(context.Background(), w, "quick")
		if err != nil {
			t.Fatal(err)
		}
		m, _ := art.Model("rbf")
		// The entry may predate the last reload only if eviction re-resolved
		// it from disk afterwards — either way disk now holds version 2.
		if got := m.Predict(probe[i]); got != newWant[i] && got != oldWant[i] {
			t.Fatalf("workload %s: prediction matches neither version", w.Key())
		}
	}
}
