package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/doe"
	"repro/internal/exp"
	"repro/internal/farm"
	"repro/internal/features"
	"repro/internal/model"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Options configures a Server. The zero value serves with defaults: scale
// "default", in-memory measurement store, GOMAXPROCS workers.
type Options struct {
	// Scale names the harness scale measurements and (by default) trained
	// models use: "quick", "default" or "paper".
	Scale string
	// CacheDir, when set, persists measurements durably (journal +
	// checkpoint) and warm-starts model training from prior runs' results.
	CacheDir string
	// Workers bounds the measurement farm and analytics concurrency
	// (0 = GOMAXPROCS).
	Workers int
	// MaxInstrs bounds each simulation (0 = the farm default of 500M).
	MaxInstrs int64
	// TrainPoints, when > 0, overrides every scale's training-design size —
	// the smoke-test knob that keeps first-request training cheap.
	TrainPoints int
	// MaxModels bounds the registry's resident (workload, scale) entries
	// (0 = 8).
	MaxModels int
	// ArtifactDir, when set, persists every successful fit as a versioned
	// artifact file and warm-boots the registry from the directory, so a
	// restart serves predictions immediately instead of refitting. A
	// directory that cannot be created is logged and ignored (mirroring the
	// measurement cache): persistence is durability, not correctness.
	ArtifactDir string
	// Replica serves /v1/predict and /v1/rank purely from persisted
	// artifacts: the trainer is never called and no farm exists, so
	// /v1/measure and /v1/search answer 503. A (workload, scale) pair with
	// no artifact is 503 with a Retry-After hint — the writer owns
	// training. Requires ArtifactDir.
	Replica bool
	// CoalesceWindow is the measure-batching window (0 = 10ms).
	CoalesceWindow time.Duration
	// RatePerSec and RateBurst configure the per-endpoint token buckets
	// (0 = 50 req/s with burst 100). /healthz and /metrics are not limited.
	RatePerSec float64
	RateBurst  float64
	// MaxInFlight bounds concurrently handled requests; excess requests are
	// shed with 429 (0 = 256).
	MaxInFlight int
	// CrossCorpusSeed, CrossCorpusSize and CrossPointsPer shape the
	// cross-program training pool behind /v1/predict-program: the seed suite
	// plus CrossCorpusSize wlgen programs from CrossCorpusSeed, each measured
	// at CrossPointsPer joint points. Zero values take the package defaults.
	CrossCorpusSeed int64
	CrossCorpusSize int
	CrossPointsPer  int
	// Log receives harness/farm progress lines; nil silences them.
	Log io.Writer

	// MakeBackend, when non-nil, replaces the in-process farm on every
	// harness the server creates — cmd/empiricod passes the distributed
	// coordinator's factory here when -workers-addrs is set, turning the
	// daemon into the coordinator of a worker fleet.
	MakeBackend func(opts farm.Options) farm.Backend

	// Measure, when non-nil, replaces the compile+simulate executor on
	// every harness the server creates (test seam).
	Measure farm.MeasureFunc
	// Trainer, when non-nil, replaces the harness-backed model trainer
	// (test seam).
	Trainer Trainer
	// Batch, when non-nil, replaces the farm-backed batch measurement the
	// coalescer dispatches to (test seam).
	Batch BatchFunc
}

// Server is the HTTP service over the measurement and modeling pipeline.
// Create with New, mount Handler on an http.Server, and Close during
// shutdown after the listener has drained.
type Server struct {
	opts      Options
	registry  *Registry
	artifacts *ArtifactStore // nil without ArtifactDir
	coalescer *Coalescer
	metrics   *Metrics
	limits    map[string]*bucket
	inFlight  atomic.Int64
	maxFlight int64
	start     time.Time
	mux       *http.ServeMux

	mu        sync.Mutex
	harnesses map[string]*exp.Harness
	closed    bool

	crossMu   sync.Mutex
	cross     map[string]*crossEntry // per-scale cross-program models
	crossFits atomic.Int64
	crossHits atomic.Int64
}

// New builds a server. No harness or model exists until the first request
// that needs one.
func New(opts Options) *Server {
	if opts.Scale == "" {
		opts.Scale = "default"
	}
	if opts.RatePerSec <= 0 {
		opts.RatePerSec = 50
	}
	if opts.RateBurst <= 0 {
		opts.RateBurst = 100
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 256
	}
	s := &Server{
		opts:      opts,
		metrics:   NewMetrics(),
		maxFlight: int64(opts.MaxInFlight),
		start:     time.Now(),
		harnesses: map[string]*exp.Harness{},
		cross:     map[string]*crossEntry{},
	}
	trainer := opts.Trainer
	if trainer == nil {
		trainer = s.harnessTrainer
	}
	s.registry = NewRegistry(trainer, opts.MaxModels)
	if opts.ArtifactDir != "" {
		store, err := OpenArtifacts(opts.ArtifactDir, opts.Log)
		if err != nil {
			// Same posture as the measurement cache: log and serve without
			// persistence rather than refuse to start. A replica without a
			// store answers every predict with *NoArtifactError (503).
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "artifact store unavailable: %v\n", err)
			}
		} else {
			s.artifacts = store
			s.registry.UseStore(store, opts.Replica, opts.Log)
			if n, skipped, err := s.registry.Reload(); err != nil {
				if opts.Log != nil {
					fmt.Fprintf(opts.Log, "artifact warm boot failed: %v\n", err)
				}
			} else if opts.Log != nil && (n > 0 || skipped > 0) {
				fmt.Fprintf(opts.Log, "warm boot: %d artifacts loaded, %d skipped\n", n, skipped)
			}
		}
	} else if opts.Replica {
		// Replica with nowhere to read artifacts from: still boots (health
		// checks work) but every predict reports no artifact.
		s.registry.UseStore(nil, true, opts.Log)
	}
	batch := opts.Batch
	if batch == nil {
		batch = s.farmBatch
	}
	s.coalescer = NewCoalescer(batch, opts.CoalesceWindow)

	s.limits = map[string]*bucket{}
	s.mux = http.NewServeMux()
	s.route("POST /v1/predict", "predict", s.handlePredict)
	s.route("POST /v1/predict-program", "predict-program", s.handlePredictProgram)
	s.route("POST /v1/measure", "measure", s.handleMeasure)
	s.route("POST /v1/search", "search", s.handleSearch)
	s.route("GET /v1/rank", "rank", s.handleRank)
	s.route("POST /v1/reload", "reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// route mounts an API endpoint behind its token bucket and the shared
// in-flight limiter.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	b := newBucket(s.opts.RatePerSec, s.opts.RateBurst)
	s.limits[name] = b
	s.mux.HandleFunc(pattern, s.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		if !b.allow(time.Now()) {
			s.metrics.RateLimited()
			writeErr(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		if n := s.inFlight.Load(); n > s.maxFlight {
			s.metrics.Shed()
			writeErr(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
		h(w, r)
	}))
}

// instrument wraps a handler with the in-flight gauge and request metrics.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.Observe(name, sw.code, time.Since(start))
	}
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer (the search stream needs it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// scaleFor resolves a request's scale name (empty means the server default)
// with the TrainPoints override applied.
func (s *Server) scaleFor(name string) (exp.Scale, error) {
	if name == "" {
		name = s.opts.Scale
	}
	sc, err := exp.ScaleByName(name)
	if err != nil {
		return exp.Scale{}, err
	}
	if s.opts.TrainPoints > 0 {
		sc.TrainPoints = s.opts.TrainPoints
	}
	return sc, nil
}

// harnessFor returns the shared harness for a scale, creating it on first
// use. Harnesses (and so their farms and durable stores) are per scale,
// matching the on-disk cache layout (measurements-<scale>.json).
func (s *Server) harnessFor(scaleName string) (*exp.Harness, error) {
	sc, err := s.scaleFor(scaleName)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server closed")
	}
	if h, ok := s.harnesses[sc.Name]; ok {
		return h, nil
	}
	h := exp.NewHarness(sc)
	h.CacheDir = s.opts.CacheDir
	h.Workers = s.opts.Workers
	h.MaxInstrs = s.opts.MaxInstrs
	h.Log = s.opts.Log
	h.Measure = s.opts.Measure
	h.MakeBackend = s.opts.MakeBackend
	s.harnesses[sc.Name] = h
	return h, nil
}

// harnessTrainer is the production Trainer: fit every model kind on the
// training design measured through the scale's harness (and so warm-started
// from the durable store when CacheDir is set).
func (s *Server) harnessTrainer(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
	h, err := s.harnessFor(scale)
	if err != nil {
		return nil, err
	}
	models, trainX, err := h.FitModels(w)
	if err != nil {
		return nil, err
	}
	return &Artifacts{Workload: w, Space: h.Space(), Models: models, TrainX: trainX}, nil
}

// farmBatch is the production BatchFunc: one farm.MeasureBatch on the
// default scale's harness.
func (s *Server) farmBatch(ctx context.Context, w workloads.Workload, pts []doe.Point, resp farm.Response) ([]float64, error) {
	h, err := s.harnessFor("")
	if err != nil {
		return nil, err
	}
	return h.Farm().MeasureBatch(ctx, w, pts, resp)
}

// Drain stops leasing new measurement groups to remote workers and waits
// (bounded by ctx) for in-flight leases to finish; leases still running at
// the deadline are cancelled and requeued. Call between the HTTP listener's
// Shutdown and Close, so SIGTERM never abandons a lease mid-flight without
// first giving it a chance to land in the store. With the in-process farm
// this is a no-op — its Close drains internally.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	hs := make([]*exp.Harness, 0, len(s.harnesses))
	for _, h := range s.harnesses {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	var first error
	for _, h := range hs {
		if err := h.Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close checkpoints and drains every harness farm. Call after the HTTP
// listener has stopped accepting (http.Server.Shutdown), so no handler is
// mid-measurement.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	hs := make([]*exp.Harness, 0, len(s.harnesses))
	for _, h := range s.harnesses {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	var first error
	for _, h := range hs {
		if err := h.SaveCache(); err != nil && first == nil {
			first = err
		}
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- request/response types ----

// PredictRequest asks for model predictions at raw design points.
type PredictRequest struct {
	Workload string `json:"workload"`
	// Class is the input class, "train" (default) or "ref".
	Class string `json:"class,omitempty"`
	// Scale selects the training scale ("" = server default).
	Scale string `json:"scale,omitempty"`
	// Model is the kind: "linear", "mars", "rbf" (default), "mars-raw".
	Model string `json:"model,omitempty"`
	// Points are raw joint-space points (25 values each).
	Points [][]int64 `json:"points"`
}

// PredictResponse carries predictions in request order.
type PredictResponse struct {
	Model string `json:"model"`
	// Cached reports whether the request was answered from an
	// already-trained registry entry (no new fit started on its behalf).
	Cached      bool      `json:"cached"`
	Predictions []float64 `json:"predictions"`
}

// MeasureRequest asks for ground-truth measurements (compile + simulate).
type MeasureRequest struct {
	Workload string `json:"workload"`
	Class    string `json:"class,omitempty"`
	// Response is "cycles" (default) or "energy".
	Response string    `json:"response,omitempty"`
	Points   [][]int64 `json:"points"`
	// TimeoutMS bounds the request server-side (on top of the client's
	// connection lifetime, which also cancels it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MeasureResponse carries measured values in request order.
type MeasureResponse struct {
	Response string    `json:"response"`
	Values   []float64 `json:"values"`
}

// SearchRequest runs the model-based GA flag search with a frozen
// microarchitecture.
type SearchRequest struct {
	Workload string `json:"workload"`
	Class    string `json:"class,omitempty"`
	Scale    string `json:"scale,omitempty"`
	Model    string `json:"model,omitempty"`
	// March is the frozen microarchitectural block (11 raw values); empty
	// means the paper's typical configuration.
	March       []int64 `json:"march,omitempty"`
	Population  int     `json:"population,omitempty"`
	Generations int     `json:"generations,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
}

// SearchProgress is one streamed generation record; the final record has
// Done set and carries the totals.
type SearchProgress struct {
	Gen       int       `json:"gen"`
	Predicted float64   `json:"predicted"`
	Best      doe.Point `json:"best"`
	Done      bool      `json:"done,omitempty"`
	Evals     int       `json:"evals,omitempty"`
}

// RankedEffect is one entry of the rank endpoint's response.
type RankedEffect struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

// RankResponse lists the largest-magnitude effects of the fitted model.
type RankResponse struct {
	Workload string         `json:"workload"`
	Model    string         `json:"model"`
	Effects  []RankedEffect `json:"effects"`
}

// ---- handlers ----

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	wl, err := resolveWorkload(req.Workload, req.Class)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	art, cached, err := s.registry.Get(r.Context(), wl, s.resolveScale(req.Scale))
	if err != nil {
		writeResolveErr(w, err)
		return
	}
	m, err := art.Model(req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	preds, err := s.predictAll(art, m, req.Points)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Model: m.Name(), Cached: cached, Predictions: preds})
}

// predictSerialMax bounds the batch size the pooled serial path handles;
// larger batches amortize the goroutine fan-out, so they take the parallel
// path.
const predictSerialMax = 256

// predictPool recycles the coding and spline-expansion buffers of the
// predict hot path, so steady-state point traffic allocates only the
// response slice.
var predictPool = sync.Pool{New: func() any { return new(predictBuf) }}

type predictBuf struct {
	coded   []float64
	scratch []float64
}

// predictAll evaluates m at raw points. Small batches run serially over one
// pooled buffer pair; large batches code up front and fan out. Both paths
// run the identical coding and expansion arithmetic, so predictions are
// bit-identical regardless of which one a request takes.
func (s *Server) predictAll(art *Artifacts, m model.Model, raw [][]int64) ([]float64, error) {
	if len(raw) > predictSerialMax {
		coded, err := codePoints(art.Space, raw)
		if err != nil {
			return nil, err
		}
		return model.PredictAllParallel(m, coded, s.opts.Workers), nil
	}
	buf := predictPool.Get().(*predictBuf)
	defer predictPool.Put(buf)
	if n := art.Space.NumVars(); cap(buf.coded) < n {
		buf.coded = make([]float64, 0, n)
	}
	if n := art.scratchLen(); cap(buf.scratch) < n {
		buf.scratch = make([]float64, 0, n)
	}
	preds := make([]float64, len(raw))
	for i, rp := range raw {
		p := doe.Point(rp)
		if err := art.Space.Validate(p); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		buf.coded = art.Space.CodeInto(p, buf.coded)
		preds[i] = model.PredictWith(m, buf.coded, buf.scratch)
	}
	return preds, nil
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if s.opts.Replica {
		writeErr(w, http.StatusServiceUnavailable,
			"replica serves predictions only; send measure requests to the writer")
		return
	}
	var req MeasureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	wl, err := resolveWorkload(req.Workload, req.Class)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := resolveResponse(req.Response)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Response == "" {
		req.Response = "cycles"
	}
	space := doe.JointSpace()
	pts := make([]doe.Point, len(req.Points))
	for i, raw := range req.Points {
		pts[i] = doe.Point(raw)
		if err := space.Validate(pts[i]); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("point %d: %v", i, err))
			return
		}
	}
	if len(pts) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	vals, err := s.coalescer.Measure(ctx, wl, pts, resp)
	if err != nil {
		writeErr(w, statusFor(err), "measure: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, MeasureResponse{Response: req.Response, Values: vals})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.opts.Replica {
		writeErr(w, http.StatusServiceUnavailable,
			"replica serves predictions only; send search requests to the writer")
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	wl, err := resolveWorkload(req.Workload, req.Class)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	march := req.March
	if len(march) == 0 {
		march = doe.FromConfig(sim.DefaultConfig())
	}
	if len(march) != doe.MicroarchSpace().NumVars() {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("march has %d values, want %d", len(march), doe.MicroarchSpace().NumVars()))
		return
	}
	scaleName := s.resolveScale(req.Scale)
	art, _, err := s.registry.Get(r.Context(), wl, scaleName)
	if err != nil {
		writeResolveErr(w, err)
		return
	}
	m, err := art.Model(req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, err := s.scaleFor(scaleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	opt := searchOptions(req, sc, s.opts.Workers)
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}

	// Stream one JSON line per generation; a client that disconnects
	// cancels r.Context(), which stops the GA at the next generation.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	opt.Progress = func(gen int, best doe.Point, predicted float64) {
		enc.Encode(SearchProgress{Gen: gen, Predicted: predicted, Best: best})
		flush()
	}
	res, err := search.FindCompilerSettingsCtx(
		r.Context(), art.Space, m, march, opt, rand.New(rand.NewSource(seed)))
	if err != nil {
		// Headers are sent; the truncated stream (no done record) tells the
		// client the search did not complete.
		return
	}
	enc.Encode(SearchProgress{
		Gen: opt.Generations, Predicted: res.Predicted, Best: res.Point,
		Done: true, Evals: res.Evals,
	})
	flush()
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	wl, err := resolveWorkload(q.Get("workload"), q.Get("class"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	n := 10
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
	}
	art, _, err := s.registry.Get(r.Context(), wl, s.resolveScale(q.Get("scale")))
	if err != nil {
		writeResolveErr(w, err)
		return
	}
	kind := q.Get("model")
	if kind == "" {
		// Raw-scale MARS coefficients are in cycles — the interpretable
		// ranking the paper's Table 4 reports.
		kind = "mars-raw"
	}
	m, err := art.Model(kind)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	top := model.TopEffects(m, art.Space, art.TrainX, n)
	out := RankResponse{Workload: wl.Key(), Model: kind}
	for _, e := range top {
		out.Effects = append(out.Effects, RankedEffect{Label: e.Label(), Value: e.Value})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReload rescans the artifact directory and swaps every decodable
// artifact into the registry copy-on-write — in-flight requests finish on
// the entries they resolved; new requests see the reloaded ones. Works on
// writer and replica alike; cmd/empiricod also triggers it on SIGHUP.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	loaded, skipped, err := s.ReloadArtifacts()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"loaded": loaded, "skipped": skipped})
}

// ReloadArtifacts rescans the artifact store into the registry (the SIGHUP
// and POST /v1/reload entry point). It errors when no artifact directory is
// configured.
func (s *Server) ReloadArtifacts() (loaded, skipped int, err error) {
	if s.artifacts == nil {
		return 0, 0, fmt.Errorf("serve: no artifact directory configured")
	}
	return s.registry.Reload()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w)

	fmt.Fprintln(w, "# HELP empiricod_in_flight Requests currently being handled.")
	fmt.Fprintln(w, "# TYPE empiricod_in_flight gauge")
	fmt.Fprintf(w, "empiricod_in_flight %d\n", s.inFlight.Load())

	rs := s.registry.Stats()
	fmt.Fprintln(w, "# HELP empiricod_models_cached Fitted model sets resident in the registry.")
	fmt.Fprintln(w, "# TYPE empiricod_models_cached gauge")
	fmt.Fprintf(w, "empiricod_models_cached %d\n", rs.Cached)
	fmt.Fprintln(w, "# HELP empiricod_model_fits_total Training runs started.")
	fmt.Fprintln(w, "# TYPE empiricod_model_fits_total counter")
	fmt.Fprintf(w, "empiricod_model_fits_total %d\n", rs.Fits)
	fmt.Fprintf(w, "empiricod_model_registry_hits_total %d\n", rs.Hits)
	fmt.Fprintf(w, "empiricod_model_registry_evictions_total %d\n", rs.Evictions)
	s.crossMu.Lock()
	crossCached := len(s.cross)
	s.crossMu.Unlock()
	fmt.Fprintln(w, "# HELP empiricod_cross_models_cached Cross-program model sets resident, one per scale.")
	fmt.Fprintln(w, "# TYPE empiricod_cross_models_cached gauge")
	fmt.Fprintf(w, "empiricod_cross_models_cached %d\n", crossCached)
	fmt.Fprintln(w, "# HELP empiricod_cross_fits_total Cross-program training runs started.")
	fmt.Fprintln(w, "# TYPE empiricod_cross_fits_total counter")
	fmt.Fprintf(w, "empiricod_cross_fits_total %d\n", s.crossFits.Load())
	fmt.Fprintf(w, "empiricod_cross_hits_total %d\n", s.crossHits.Load())

	fh, fm := features.CacheStats()
	fmt.Fprintln(w, "# HELP empiricod_feature_cache_hits_total Feature extractions answered from the fingerprint cache.")
	fmt.Fprintln(w, "# TYPE empiricod_feature_cache_hits_total counter")
	fmt.Fprintf(w, "empiricod_feature_cache_hits_total %d\n", fh)
	fmt.Fprintln(w, "# HELP empiricod_feature_cache_misses_total Feature extractions that ran the full pipeline.")
	fmt.Fprintln(w, "# TYPE empiricod_feature_cache_misses_total counter")
	fmt.Fprintf(w, "empiricod_feature_cache_misses_total %d\n", fm)

	fmt.Fprintln(w, "# HELP empiricod_artifact_loads_total Model artifacts loaded from disk (boot, lazy miss, reload).")
	fmt.Fprintln(w, "# TYPE empiricod_artifact_loads_total counter")
	fmt.Fprintf(w, "empiricod_artifact_loads_total %d\n", rs.Loads)
	fmt.Fprintf(w, "empiricod_artifact_persists_total %d\n", rs.Persists)
	fmt.Fprintf(w, "empiricod_artifact_corrupt_total %d\n", rs.Corrupt)
	fmt.Fprintf(w, "empiricod_artifact_reloads_total %d\n", rs.Reloads)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintln(w, "# HELP empiricod_goroutines Live goroutines.")
	fmt.Fprintln(w, "# TYPE empiricod_goroutines gauge")
	fmt.Fprintf(w, "empiricod_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintln(w, "# HELP empiricod_heap_inuse_bytes Bytes in in-use heap spans.")
	fmt.Fprintln(w, "# TYPE empiricod_heap_inuse_bytes gauge")
	fmt.Fprintf(w, "empiricod_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintln(w, "# HELP empiricod_gc_pause_seconds_total Cumulative stop-the-world GC pause.")
	fmt.Fprintln(w, "# TYPE empiricod_gc_pause_seconds_total counter")
	fmt.Fprintf(w, "empiricod_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "empiricod_gc_cycles_total %d\n", ms.NumGC)

	fmt.Fprintln(w, "# HELP empiricod_measure_batches_total Coalesced farm batches dispatched.")
	fmt.Fprintln(w, "# TYPE empiricod_measure_batches_total counter")
	fmt.Fprintf(w, "empiricod_measure_batches_total %d\n", s.coalescer.Batches())

	// Farm gauges, one block per scale harness that has run measurements.
	s.mu.Lock()
	names := make([]string, 0, len(s.harnesses))
	for name := range s.harnesses {
		names = append(names, name)
	}
	hs := make(map[string]*exp.Harness, len(names))
	for _, n := range names {
		hs[n] = s.harnesses[n]
	}
	s.mu.Unlock()
	for _, name := range sortedKeys(hs) {
		st := hs[name].FarmStats()
		if st.Workers == 0 {
			continue
		}
		emit := func(metric string, v int64) {
			fmt.Fprintf(w, "empiricod_farm_%s{scale=%q} %d\n", metric, name, v)
		}
		emit("workers", int64(st.Workers))
		emit("cache_hits_total", st.CacheHits)
		emit("cache_misses_total", st.CacheMisses)
		emit("coalesced_total", st.Coalesced)
		emit("sims_total", st.SimsExecuted)
		emit("instrs_total", st.InstrsSimulated)
		emit("retries_total", st.Retries)
		emit("failures_total", st.Failures)
		emit("compile_cache_hits_total", st.CompileCacheHits)
		emit("compile_cache_misses_total", st.CompileCacheMisses)
		emit("trace_shared_sims_total", st.TraceSharedSims)
		emit("binary_groups_total", st.BinaryGroups)
		emit("groups_dispatched_total", st.GroupsDispatched)
		emit("groups_hedged_total", st.GroupsHedged)
		emit("groups_requeued_total", st.GroupsRequeued)
		emit("workers_live", st.WorkersLive)
		emit("worker_local_hits_total", st.WorkerLocalHits)
		emit("store_merges_total", st.StoreMerges)
		emit("store_merge_conflicts_total", st.StoreMergeConflicts)
		// Per-worker series for the distributed plane (in-process pool
		// workers carry no address and are skipped — the aggregate gauges
		// above already cover them).
		for _, pw := range st.PerWorker {
			if pw.Addr == "" {
				continue
			}
			emitW := func(metric string, v int64) {
				fmt.Fprintf(w, "empiricod_farm_worker_%s{scale=%q,worker=%q} %d\n", metric, name, pw.Addr, v)
			}
			emitW("slots", pw.Slots)
			emitW("in_flight", pw.InFlight)
			emitW("groups_total", pw.Groups)
			emitW("local_hits_total", pw.LocalHits)
		}
		emit("blocks_translated_total", st.BlocksTranslated)
		emit("translated_instrs_total", st.TranslatedInstrs)
		emit("slow_path_entries_total", st.SlowPathEntries)
		emit("sampled_sims_total", st.SampledSims)
		emit("warm_ckpt_hits_total", st.WarmCkptHits)
		emit("warm_ckpt_misses_total", st.WarmCkptMisses)
	}
}

// ---- helpers ----

// resolveScale maps an empty request scale to the server default.
func (s *Server) resolveScale(name string) string {
	if name == "" {
		return s.opts.Scale
	}
	return name
}

func resolveWorkload(name, class string) (workloads.Workload, error) {
	if name == "" {
		return workloads.Workload{}, fmt.Errorf("serve: missing workload")
	}
	cls := workloads.Train
	switch class {
	case "", "train":
	case "ref":
		cls = workloads.Ref
	default:
		return workloads.Workload{}, fmt.Errorf("serve: unknown input class %q (train|ref)", class)
	}
	return workloads.Get(name, cls)
}

func resolveResponse(name string) (farm.Response, error) {
	switch name {
	case "", "cycles":
		return farm.Cycles, nil
	case "energy":
		return farm.Energy, nil
	}
	return 0, fmt.Errorf("serve: unknown response %q (cycles|energy)", name)
}

func codePoints(space *doe.Space, raw [][]int64) ([][]float64, error) {
	coded := make([][]float64, len(raw))
	for i, rp := range raw {
		p := doe.Point(rp)
		if err := space.Validate(p); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		coded[i] = space.Code(p)
	}
	return coded, nil
}

func statusFor(err error) int {
	switch err {
	case context.Canceled:
		return 499 // client closed request (nginx convention)
	case context.DeadlineExceeded:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// writeResolveErr maps a registry resolution failure to a response. A
// replica miss (*NoArtifactError) is 503 with a Retry-After hint: the writer
// owns training, so the artifact appears once it has fitted the pair —
// retrying is the correct client behavior, not an error to propagate.
func writeResolveErr(w http.ResponseWriter, err error) {
	var na *NoArtifactError
	if errors.As(err, &na) {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeErr(w, statusFor(err), "train: "+err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func searchOptions(req SearchRequest, sc exp.Scale, workers int) search.GAOptions {
	opt := search.GAOptions{
		Population:  req.Population,
		Generations: req.Generations,
		Workers:     workers,
	}
	if opt.Population <= 0 {
		opt.Population = sc.GAPopulation
	}
	if opt.Generations <= 0 {
		opt.Generations = sc.GAGenerations
	}
	return opt
}
