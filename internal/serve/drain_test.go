package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
)

// drainBackend wraps the in-process farm with a Drain that blocks until the
// test releases its gated measurement — the shape of a distributed
// coordinator waiting out its in-flight leases.
type drainBackend struct {
	*farm.Farm
	drains *atomic.Int64
	gate   <-chan struct{}
}

func (d *drainBackend) Drain(ctx context.Context) error {
	d.drains.Add(1)
	select {
	case <-d.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var _ farm.Drainer = (*drainBackend)(nil)

// TestDrainUnderLoad pins the shutdown lifecycle empiricod relies on:
// Server.Drain reaches the measurement backend while a measurement is still
// in flight, blocks until that work finishes, and the in-flight request
// completes normally — drain is not an abort.
func TestDrainUnderLoad(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	var drains atomic.Int64
	srv := New(Options{
		Scale: "quick",
		Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
				return farm.Result{}, ctx.Err()
			}
			return farm.Result{Cycles: 42, Energy: 7}, nil
		},
		MakeBackend: func(fo farm.Options) farm.Backend {
			return &drainBackend{Farm: farm.New(fo), drains: &drains, gate: gate}
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	reqDone := make(chan string, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/measure", MeasureRequest{Workload: "179.art", Points: testPoints(1, 9)})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			reqDone <- resp.Status
			return
		}
		var mr MeasureResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			reqDone <- err.Error()
			return
		}
		if len(mr.Values) != 1 || mr.Values[0] != 42 {
			reqDone <- "wrong values"
			return
		}
		reqDone <- ""
	}()
	<-started // the measurement is on a farm worker now

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	// Drain must be waiting on the in-flight measurement, not returning
	// early with work still running.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) while a measurement was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if msg := <-reqDone; msg != "" {
		t.Fatalf("in-flight request failed across drain: %s", msg)
	}
	if n := drains.Load(); n != 1 {
		t.Fatalf("backend Drain called %d times, want 1", n)
	}
}
