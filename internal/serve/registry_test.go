package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/workloads"
)

// funcModel adapts a function to model.Model for stub artifacts.
type funcModel struct {
	name string
	f    func(x []float64) float64
}

func (m funcModel) Predict(x []float64) float64 { return m.f(x) }
func (m funcModel) Name() string                { return m.name }

// stubArtifacts builds a full artifact set over the joint space whose every
// model kind predicts the sum of coded coordinates.
func stubArtifacts(w workloads.Workload) *Artifacts {
	sum := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		return s
	}
	models := map[string]model.Model{}
	for _, kind := range []string{"linear", "mars", "rbf", "mars-raw"} {
		models[kind] = funcModel{name: kind, f: sum}
	}
	space := doe.JointSpace()
	return &Artifacts{
		Workload: w,
		Space:    space,
		Models:   models,
		TrainX:   [][]float64{make([]float64, space.NumVars())},
	}
}

func TestRegistrySingleFlightOneFit(t *testing.T) {
	var fits atomic.Int64
	trainer := func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
		fits.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return stubArtifacts(w), nil
	}
	r := NewRegistry(trainer, 0)
	w := workloads.MustGet("179.art", workloads.Train)

	const callers = 50
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			art, _, err := r.Get(context.Background(), w, "quick")
			if err == nil && art == nil {
				err = errors.New("nil artifacts")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := fits.Load(); n != 1 {
		t.Fatalf("%d concurrent requests caused %d fits, want 1", callers, n)
	}
	// A later request is a pure cache hit.
	_, cached, err := r.Get(context.Background(), w, "quick")
	if err != nil || !cached {
		t.Fatalf("cache hit: cached=%v err=%v", cached, err)
	}
	if n := fits.Load(); n != 1 {
		t.Fatalf("cache hit retrained: %d fits", n)
	}
	// A different scale is a different key.
	if _, _, err := r.Get(context.Background(), w, "default"); err != nil {
		t.Fatal(err)
	}
	if n := fits.Load(); n != 2 {
		t.Fatalf("distinct scale shared a fit: %d fits", n)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	var fits atomic.Int64
	trainer := func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
		fits.Add(1)
		return stubArtifacts(w), nil
	}
	r := NewRegistry(trainer, 2)
	get := func(name string) {
		t.Helper()
		w := workloads.MustGet(name, workloads.Train)
		if _, _, err := r.Get(context.Background(), w, "quick"); err != nil {
			t.Fatal(err)
		}
	}
	get("164.gzip")
	get("175.vpr")
	get("164.gzip") // touch: gzip is now most recent
	get("177.mesa") // evicts vpr (least recently used)
	if st := r.Stats(); st.Cached != 2 || st.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	before := fits.Load()
	get("164.gzip") // still resident
	if fits.Load() != before {
		t.Fatal("resident entry retrained")
	}
	get("175.vpr") // evicted: must retrain
	if fits.Load() != before+1 {
		t.Fatalf("evicted entry not retrained: %d fits (was %d)", fits.Load(), before)
	}
}

func TestRegistryFailedTrainNotCached(t *testing.T) {
	var fits atomic.Int64
	var failing atomic.Bool
	failing.Store(true)
	trainer := func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
		fits.Add(1)
		if failing.Load() {
			return nil, fmt.Errorf("injected training failure")
		}
		return stubArtifacts(w), nil
	}
	r := NewRegistry(trainer, 0)
	w := workloads.MustGet("181.mcf", workloads.Train)
	if _, _, err := r.Get(context.Background(), w, "quick"); err == nil {
		t.Fatal("expected training failure")
	}
	failing.Store(false)
	art, _, err := r.Get(context.Background(), w, "quick")
	if err != nil {
		t.Fatalf("retry after failed fit: %v", err)
	}
	if art == nil {
		t.Fatal("nil artifacts after successful retry")
	}
	if n := fits.Load(); n != 2 {
		t.Fatalf("failed fit was cached (or retried too often): %d fits, want 2", n)
	}
	if st := r.Stats(); st.Cached != 1 {
		t.Fatalf("registry holds %d entries, want 1", st.Cached)
	}
}
