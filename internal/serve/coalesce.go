package serve

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// BatchFunc executes one measurement batch — in production,
// farm.Farm.MeasureBatch. It must return one value per point, in order.
type BatchFunc func(ctx context.Context, w workloads.Workload, pts []doe.Point, resp farm.Response) ([]float64, error)

// Coalescer batches concurrent measure requests: callers arriving within
// one window (default 10ms) for the same (workload, response) pair are
// folded into a single farm batch, with duplicate points submitted once.
// The farm already deduplicates in-flight points, but only within its own
// queue — coalescing upstream means many small HTTP callers cost one batch
// dispatch (and one Stats/log line) instead of hundreds, and the farm's
// worker pool sees the full batch at once instead of a trickle.
//
// Cancellation propagates per request: a caller whose context expires stops
// waiting immediately, and when every caller interested in a batch has gone
// the batch's own context is cancelled so the farm can stop early.
type Coalescer struct {
	run    BatchFunc
	window time.Duration

	mu      sync.Mutex
	pending map[string]*measureBatch
	batches int64
}

// measureBatch accumulates points for one (workload, response) pair until
// its window closes.
type measureBatch struct {
	w      workloads.Workload
	resp   farm.Response
	points []doe.Point
	index  map[string]int // point identity -> index in points

	ctx     context.Context
	cancel  context.CancelFunc
	waiters int
	done    chan struct{}
	vals    []float64
	err     error
}

// NewCoalescer returns a coalescer over run with the given batching window
// (0 means 10ms).
func NewCoalescer(run BatchFunc, window time.Duration) *Coalescer {
	if window <= 0 {
		window = 10 * time.Millisecond
	}
	return &Coalescer{run: run, window: window, pending: map[string]*measureBatch{}}
}

func pointKey(p doe.Point) string {
	b := make([]byte, 0, len(p)*4)
	for _, v := range p {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	return string(b)
}

// Measure submits points for workload w and blocks until the batch carrying
// them completes (or ctx expires). Values return in the order of pts.
func (c *Coalescer) Measure(ctx context.Context, w workloads.Workload, pts []doe.Point, resp farm.Response) ([]float64, error) {
	key := w.Key() + "|" + strconv.Itoa(int(resp))
	c.mu.Lock()
	b, ok := c.pending[key]
	if !ok {
		bctx, cancel := context.WithCancel(context.Background())
		b = &measureBatch{
			w: w, resp: resp,
			index: map[string]int{},
			ctx:   bctx, cancel: cancel,
			done: make(chan struct{}),
		}
		c.pending[key] = b
		go c.fire(key, b)
	}
	// Record which batch slot each of this caller's points landed in
	// (duplicates within and across callers share a slot).
	slots := make([]int, len(pts))
	for i, p := range pts {
		pk := pointKey(p)
		j, dup := b.index[pk]
		if !dup {
			j = len(b.points)
			b.index[pk] = j
			b.points = append(b.points, p)
		}
		slots[i] = j
	}
	b.waiters++
	c.mu.Unlock()

	select {
	case <-b.done:
		if b.err != nil {
			return nil, b.err
		}
		out := make([]float64, len(slots))
		for i, j := range slots {
			out[i] = b.vals[j]
		}
		return out, nil
	case <-ctx.Done():
		c.mu.Lock()
		b.waiters--
		if b.waiters == 0 {
			// Nobody left wants this batch: let the farm stop early, and
			// unregister it so a caller arriving after the cancellation
			// opens a fresh batch instead of joining a doomed one.
			if c.pending[key] == b {
				delete(c.pending, key)
			}
			b.cancel()
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// fire waits out the batching window, unregisters the batch (so late
// arrivals open a fresh one) and runs it.
func (c *Coalescer) fire(key string, b *measureBatch) {
	timer := time.NewTimer(c.window)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-b.ctx.Done():
		// Every waiter gave up before the window closed.
	}
	c.mu.Lock()
	if c.pending[key] == b {
		delete(c.pending, key)
	}
	c.batches++
	run := b.ctx.Err() == nil
	c.mu.Unlock()
	if run {
		b.vals, b.err = c.run(b.ctx, b.w, b.points, b.resp)
	} else {
		b.err = b.ctx.Err()
	}
	close(b.done)
	b.cancel()
}

// Batches reports how many farm batches have been dispatched (including
// batches cancelled before dispatch).
func (c *Coalescer) Batches() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches
}
