package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/farm"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func testPoints(n int, seed int64) [][]int64 {
	space := doe.JointSpace()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, n)
	for i := range out {
		out[i] = space.RandomPoint(rng)
	}
	return out
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPredictOneFitUnderConcurrentRequests is the acceptance criterion: 50
// concurrent first requests for the same (workload, scale) train exactly
// once, and a later request is a registry-cache hit that answers without
// retraining.
func TestPredictOneFitUnderConcurrentRequests(t *testing.T) {
	var fits atomic.Int64
	srv := New(Options{
		Scale: "quick",
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			fits.Add(1)
			time.Sleep(20 * time.Millisecond)
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	req := PredictRequest{Workload: "179.art", Points: testPoints(3, 1)}
	const callers = 50
	var wg sync.WaitGroup
	fail := make(chan string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/predict", req)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				fail <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
				return
			}
			var pr PredictResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				fail <- err.Error()
				return
			}
			if len(pr.Predictions) != 3 {
				fail <- fmt.Sprintf("%d predictions, want 3", len(pr.Predictions))
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if n := fits.Load(); n != 1 {
		t.Fatalf("%d concurrent predict requests caused %d fits, want 1", callers, n)
	}

	resp := postJSON(t, ts.URL+"/v1/predict", req)
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Cached {
		t.Fatal("follow-up request was not served from the registry cache")
	}
	if n := fits.Load(); n != 1 {
		t.Fatalf("cache hit retrained: %d fits", n)
	}
}

// TestMeasureCoalescesConcurrentClients drives the real farm (with a stub
// compile+simulate executor) through the HTTP measure endpoint: N
// concurrent clients inside one window become one farm batch.
func TestMeasureCoalescesConcurrentClients(t *testing.T) {
	var executions atomic.Int64
	srv := New(Options{
		Scale:          "quick",
		CoalesceWindow: 150 * time.Millisecond,
		Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
			executions.Add(1)
			return farm.Result{Cycles: coalesceValue(job.Point), Energy: 1, Instructions: 1}, nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	points := testPoints(6, 2)
	const clients = 20
	var wg sync.WaitGroup
	fail := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pts := [][]int64{points[i%len(points)], points[(i+2)%len(points)]}
			resp := postJSON(t, ts.URL+"/v1/measure", MeasureRequest{Workload: "179.art", Points: pts})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				fail <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
				return
			}
			var mr MeasureResponse
			if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
				fail <- err.Error()
				return
			}
			for j, p := range pts {
				if mr.Values[j] != coalesceValue(doe.Point(p)) {
					fail <- "wrong value for requested point"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if n := srv.coalescer.Batches(); n != 1 {
		t.Fatalf("%d concurrent measure clients dispatched %d farm batches, want 1", clients, n)
	}
	if n := executions.Load(); n != int64(len(points)) {
		t.Fatalf("%d simulations for %d distinct points", n, len(points))
	}
}

// TestSearchStreamsGenerations reads the chunked ndjson stream: one record
// per generation plus a final done record with the totals.
func TestSearchStreamsGenerations(t *testing.T) {
	srv := New(Options{
		Scale: "quick",
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Workload: "179.art", Population: 8, Generations: 3, Seed: 4,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var records []SearchProgress
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec SearchProgress
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// gen 0..3 plus the done record.
	if len(records) != 5 {
		t.Fatalf("stream had %d records, want 5: %+v", len(records), records)
	}
	last := records[len(records)-1]
	if !last.Done || last.Evals == 0 {
		t.Fatalf("final record not a done summary: %+v", last)
	}
	if len(last.Best) != doe.JointSpace().NumVars() {
		t.Fatalf("done record best has %d vars", len(last.Best))
	}
	// The frozen microarch block must match the default configuration.
	march := doe.FromConfig(sim.DefaultConfig())
	for i, v := range march {
		if last.Best[doe.NumCompilerVars+i] != v {
			t.Fatalf("microarch block not frozen at %d", i)
		}
	}
}

func TestRankEndpoint(t *testing.T) {
	srv := New(Options{
		Scale: "quick",
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Get(ts.URL + "/v1/rank?workload=179.art&n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Effects) != 5 {
		t.Fatalf("%d effects, want 5", len(rr.Effects))
	}
	if rr.Model != "mars-raw" {
		t.Fatalf("default rank model %q, want mars-raw", rr.Model)
	}
	// The stub model is a pure sum of coded coordinates: every main effect
	// is 1, every interaction 0, so the top 5 are all main effects.
	for _, e := range rr.Effects {
		if e.Value != 1 || strings.Contains(e.Label, "*") {
			t.Fatalf("unexpected top effect %+v", e)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Options{
		Scale: "quick",
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" {
		t.Fatalf("healthz body %v", hz)
	}

	// One predict so per-endpoint counters exist.
	pr := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Workload: "179.art", Points: testPoints(1, 3)})
	pr.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{
		`empiricod_requests_total{endpoint="predict",code="200"} 1`,
		`empiricod_request_duration_seconds_count{endpoint="predict"} 1`,
		"empiricod_model_fits_total 1",
		"empiricod_in_flight",
		"empiricod_measure_batches_total 0",
		"empiricod_shed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestRateLimitSheds429(t *testing.T) {
	srv := New(Options{
		Scale:      "quick",
		RatePerSec: 0.001, // effectively no refill within the test
		RateBurst:  2,
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	req := PredictRequest{Workload: "179.art", Points: testPoints(1, 4)}
	codes := make([]int, 3)
	for i := range codes {
		resp := postJSON(t, ts.URL+"/v1/predict", req)
		resp.Body.Close()
		codes[i] = resp.StatusCode
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests rejected: %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third request not rate limited: %v", codes)
	}
	// The health endpoint is never rate limited.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatal("healthz rate limited")
	}
}

func TestMaxInFlightSheds(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Options{
		Scale:       "quick",
		MaxInFlight: 1,
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			<-gate
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	req := PredictRequest{Workload: "179.art", Points: testPoints(1, 5)}
	slow := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/predict", req)
		resp.Body.Close()
		slow <- resp.StatusCode
	}()
	// Wait for the slow request to occupy the in-flight slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/v1/predict", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request got %d, want 429", resp.StatusCode)
	}
	close(gate)
	if code := <-slow; code != http.StatusOK {
		t.Fatalf("occupying request got %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	srv := New(Options{
		Scale: "quick",
		Trainer: func(ctx context.Context, w workloads.Workload, scale string) (*Artifacts, error) {
			return stubArtifacts(w), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	cases := []struct {
		name string
		body any
	}{
		{"unknown workload", PredictRequest{Workload: "999.nope", Points: testPoints(1, 6)}},
		{"no points", PredictRequest{Workload: "179.art"}},
		{"out of range point", PredictRequest{Workload: "179.art", Points: [][]int64{make([]int64, 25)}}},
		{"unknown model", PredictRequest{Workload: "179.art", Model: "cubist", Points: testPoints(1, 7)}},
		{"bad class", MeasureRequest{Workload: "179.art", Class: "huge", Points: testPoints(1, 8)}},
	}
	for _, tc := range cases {
		url := ts.URL + "/v1/predict"
		if _, ok := tc.body.(MeasureRequest); ok {
			url = ts.URL + "/v1/measure"
		}
		resp := postJSON(t, url, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestServerCloseCheckpointsFarm exercises graceful shutdown: Close flushes
// the durable store so measurements survive into a fresh server.
func TestServerCloseCheckpointsFarm(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	mk := func() *Server {
		return New(Options{
			Scale:          "quick",
			CacheDir:       dir,
			CoalesceWindow: time.Millisecond,
			Measure: func(ctx context.Context, job farm.Job) (farm.Result, error) {
				executions.Add(1)
				return farm.Result{Cycles: coalesceValue(job.Point), Energy: 1, Instructions: 1}, nil
			},
		})
	}
	s1 := mk()
	ts1 := httptest.NewServer(s1.Handler())
	pt := doe.JoinPoint(doe.FromOptions(compiler.O2()), doe.FromConfig(sim.DefaultConfig()))
	resp := postJSON(t, ts1.URL+"/v1/measure", MeasureRequest{Workload: "179.art", Points: [][]int64{pt}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure status %d", resp.StatusCode)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 {
		t.Fatalf("%d executions, want 1", executions.Load())
	}

	s2 := mk()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	resp = postJSON(t, ts2.URL+"/v1/measure", MeasureRequest{Workload: "179.art", Points: [][]int64{pt}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remeasure status %d", resp.StatusCode)
	}
	if executions.Load() != 1 {
		t.Fatalf("checkpointed measurement re-simulated: %d executions", executions.Load())
	}
}
