package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/doe"
	"repro/internal/model"
	"repro/internal/workloads"
)

// serializableArtifacts builds a deterministic artifact set from literal
// models of every production kind (the registry's stubArtifacts uses a
// funcModel, which cannot round-trip through the codec). Different seeds
// give different coefficients, so tests can tell artifact versions apart by
// their predictions.
func serializableArtifacts(w workloads.Workload, seed int64) *Artifacts {
	space := doe.JointSpace()
	n := space.NumVars()
	rng := rand.New(rand.NewSource(seed))
	coef := make([]float64, doe.ExpandInteractions.NumTerms(n))
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	lin := &model.LinearModel{Expansion: doe.ExpandInteractions, Coef: coef}
	mars := &model.MARSModel{
		Bases: []model.Basis{
			{}, // intercept
			{Factors: []model.Hinge{{Var: 0, T: 0.1, Pos: true}}},
			{Factors: []model.Hinge{{Var: 3, T: -0.2, Pos: false}, {Var: 7, T: 0.3, Pos: true}}},
		},
		Coef: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
	}
	centers := make([][]float64, 4)
	radii := make([]float64, len(centers))
	wts := make([]float64, 1+len(centers))
	wts[0] = rng.NormFloat64()
	for i := range centers {
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*2 - 1
		}
		centers[i] = c
		radii[i] = 0.5 + rng.Float64()
		wts[1+i] = rng.NormFloat64()
	}
	rbf := &model.RBFModel{Kernel: model.Multiquadric, Centers: centers, Radii: radii, W: wts}
	trainX := make([][]float64, 8)
	for i := range trainX {
		trainX[i] = space.Code(space.RandomPoint(rng))
	}
	return &Artifacts{
		Workload: w,
		Space:    space,
		Models: map[string]model.Model{
			"linear":   lin,
			"mars":     model.LogModel{Inner: mars},
			"rbf":      model.LogModel{Inner: &model.HybridRBFModel{Trend: mars, Residual: rbf}},
			"mars-raw": mars,
		},
		TrainX: trainX,
	}
}

var artifactKinds = []string{"linear", "mars", "rbf", "mars-raw"}

func TestArtifactStoreRoundTripBitIdentical(t *testing.T) {
	store, err := OpenArtifacts(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.MustGet("179.art", workloads.Train)
	art := serializableArtifacts(w, 7)
	if err := store.Save(art, "quick"); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(w, "quick")
	if err != nil {
		t.Fatal(err)
	}
	probes := testPoints(25, 9)
	for _, kind := range artifactKinds {
		orig, _ := art.Model(kind)
		got, err := loaded.Model(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i, rp := range probes {
			x := loaded.Space.Code(doe.Point(rp))
			if want, have := orig.Predict(x), got.Predict(x); want != have {
				t.Fatalf("%s: probe %d: loaded model predicts %v, original %v", kind, i, have, want)
			}
		}
	}
	if len(loaded.TrainX) != len(art.TrainX) {
		t.Fatalf("TrainX rows %d, want %d", len(loaded.TrainX), len(art.TrainX))
	}

	// A pair that was never saved is a typed miss, not a corrupt file.
	other := workloads.MustGet("181.mcf", workloads.Train)
	_, err = store.Load(other, "quick")
	var na *NoArtifactError
	if !errors.As(err, &na) {
		t.Fatalf("missing artifact error = %v, want *NoArtifactError", err)
	}
}

func TestArtifactFingerprint(t *testing.T) {
	store, err := OpenArtifacts(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.MustGet("179.art", workloads.Train)
	art := serializableArtifacts(w, 3)
	if err := store.Save(art, "quick"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(store.Path(w, "quick"))
	if err != nil {
		t.Fatal(err)
	}
	var file artifactFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	fp := file.Fingerprint
	if fp.Workload != "179.art" || fp.Class != "train" || fp.Scale != "quick" {
		t.Fatalf("fingerprint identity: %+v", fp)
	}
	if fp.Points != len(art.TrainX) || !strings.HasPrefix(fp.DatasetHash, "fnv64a:") {
		t.Fatalf("fingerprint provenance: %+v", fp)
	}
	if len(fp.Kinds) != len(artifactKinds) {
		t.Fatalf("fingerprint kinds %v", fp.Kinds)
	}
	if file.Schema != artifactSchema {
		t.Fatalf("schema %d", file.Schema)
	}
}

// TestWarmBootServesWithoutFit is the acceptance criterion: a fresh server
// pointed at a populated artifact directory answers /v1/predict correctly
// with the fit counter still at zero, and its predictions are bit-identical
// to the server that trained the models.
func TestWarmBootServesWithoutFit(t *testing.T) {
	dir := t.TempDir()
	w := workloads.MustGet("179.art", workloads.Train)
	probes := testPoints(5, 11)
	req := PredictRequest{Workload: "179.art", Points: probes}

	writer := New(Options{
		Scale:       "quick",
		ArtifactDir: dir,
		Trainer: func(ctx context.Context, wl workloads.Workload, scale string) (*Artifacts, error) {
			return serializableArtifacts(wl, 21), nil
		},
	})
	ts := httptest.NewServer(writer.Handler())
	want := predictVia(t, ts.URL, req)
	ts.Close()
	writer.Close()
	if _, err := os.Stat(writer.artifacts.Path(w, "quick")); err != nil {
		t.Fatalf("writer did not persist the artifact: %v", err)
	}

	warm := New(Options{
		Scale:       "quick",
		ArtifactDir: dir,
		Trainer: func(ctx context.Context, wl workloads.Workload, scale string) (*Artifacts, error) {
			t.Error("warm-booted server retrained")
			return serializableArtifacts(wl, 99), nil
		},
	})
	ts2 := httptest.NewServer(warm.Handler())
	defer ts2.Close()
	defer warm.Close()
	got := predictVia(t, ts2.URL, req)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d: warm boot %v != writer %v", i, got[i], want[i])
		}
	}
	if st := warm.registry.Stats(); st.Fits != 0 || st.Loads == 0 {
		t.Fatalf("warm boot stats: %+v (want 0 fits, >0 loads)", st)
	}
	mbody, _ := io.ReadAll(mustGet(t, ts2.URL+"/metrics").Body)
	if !strings.Contains(string(mbody), "empiricod_model_fits_total 0") {
		t.Fatal("metrics do not pin the fit counter at 0 after warm boot")
	}
}

// TestReplicaServesFromArtifactsOnly pins replica semantics: bit-identical
// predictions for persisted pairs, 503 with a retry hint for unknown pairs,
// and 503 for the farm-backed endpoints — the trainer must never run.
func TestReplicaServesFromArtifactsOnly(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenArtifacts(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.MustGet("179.art", workloads.Train)
	art := serializableArtifacts(w, 31)
	if err := store.Save(art, "quick"); err != nil {
		t.Fatal(err)
	}

	replica := New(Options{
		Scale:       "quick",
		ArtifactDir: dir,
		Replica:     true,
		Trainer: func(ctx context.Context, wl workloads.Workload, scale string) (*Artifacts, error) {
			t.Error("replica called the trainer")
			return nil, errors.New("replica must not train")
		},
	})
	ts := httptest.NewServer(replica.Handler())
	defer ts.Close()
	defer replica.Close()

	probes := testPoints(4, 13)
	got := predictVia(t, ts.URL, PredictRequest{Workload: "179.art", Points: probes})
	m, _ := art.Model("rbf")
	for i, rp := range probes {
		if want := m.Predict(art.Space.Code(doe.Point(rp))); want != got[i] {
			t.Fatalf("replica prediction %d: %v, want %v", i, got[i], want)
		}
	}

	// An untrained pair: 503 + Retry-After, never a fit.
	resp := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Workload: "181.mcf", Points: probes})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unknown pair on replica: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("replica 503 has no Retry-After hint")
	}

	// The farm-backed endpoints are writer-only.
	mr := postJSON(t, ts.URL+"/v1/measure", MeasureRequest{Workload: "179.art", Points: probes})
	mr.Body.Close()
	if mr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replica measure: status %d, want 503", mr.StatusCode)
	}
	sr := postJSON(t, ts.URL+"/v1/search", SearchRequest{Workload: "179.art", Population: 4, Generations: 1})
	sr.Body.Close()
	if sr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replica search: status %d, want 503", sr.StatusCode)
	}

	// Rank needs only the artifact: it works on a replica.
	rr := mustGet(t, ts.URL+"/v1/rank?workload=179.art&n=3")
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("replica rank: status %d", rr.StatusCode)
	}
}

// TestReloadPicksUpNewArtifacts drives the zero-downtime path end to end: a
// writer persists a new model version, the replica's POST /v1/reload swaps
// it in, and predictions change without a restart.
func TestReloadPicksUpNewArtifacts(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenArtifacts(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.MustGet("179.art", workloads.Train)
	v1 := serializableArtifacts(w, 41)
	if err := store.Save(v1, "quick"); err != nil {
		t.Fatal(err)
	}
	replica := New(Options{Scale: "quick", ArtifactDir: dir, Replica: true})
	ts := httptest.NewServer(replica.Handler())
	defer ts.Close()
	defer replica.Close()

	probe := testPoints(1, 17)
	req := PredictRequest{Workload: "179.art", Points: probe}
	before := predictVia(t, ts.URL, req)

	v2 := serializableArtifacts(w, 42)
	if err := store.Save(v2, "quick"); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/reload", struct{}{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	var rl map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	if rl["loaded"] != 1 || rl["skipped"] != 0 {
		t.Fatalf("reload report %v", rl)
	}

	after := predictVia(t, ts.URL, req)
	m2, _ := v2.Model("rbf")
	want := m2.Predict(v2.Space.Code(doe.Point(probe[0])))
	if after[0] != want {
		t.Fatalf("post-reload prediction %v, want new version's %v", after[0], want)
	}
	if before[0] == after[0] {
		t.Fatal("reload did not change the served model")
	}
}

// TestCorruptArtifactSkippedAtBoot is the satellite-2 regression test: a
// truncated artifact file must not abort the boot — the good artifact
// serves from disk, the corrupt pair lazily refits on first request (writer)
// or reports unavailable (replica).
func TestCorruptArtifactSkippedAtBoot(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenArtifacts(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := workloads.MustGet("179.art", workloads.Train)
	bad := workloads.MustGet("181.mcf", workloads.Train)
	if err := store.Save(serializableArtifacts(good, 51), "quick"); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(serializableArtifacts(bad, 52), "quick"); err != nil {
		t.Fatal(err)
	}
	// Tear the second file mid-JSON, as a crashed non-atomic writer would.
	data, err := os.ReadFile(store.Path(bad, "quick"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(bad, "quick"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var fits int
	srv := New(Options{
		Scale:       "quick",
		ArtifactDir: dir,
		Trainer: func(ctx context.Context, wl workloads.Workload, scale string) (*Artifacts, error) {
			fits++
			return serializableArtifacts(wl, 53), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	if st := srv.registry.Stats(); st.Loads != 1 || st.Corrupt != 1 {
		t.Fatalf("boot stats %+v, want 1 load and 1 corrupt skip", st)
	}
	probes := testPoints(2, 19)
	predictVia(t, ts.URL, PredictRequest{Workload: "179.art", Points: probes})
	if fits != 0 {
		t.Fatalf("good artifact refit after corrupt sibling: %d fits", fits)
	}
	// First request for the torn pair refits and re-persists it.
	predictVia(t, ts.URL, PredictRequest{Workload: "181.mcf", Points: probes})
	if fits != 1 {
		t.Fatalf("corrupt pair: %d fits, want 1 lazy refit", fits)
	}
	if _, err := store.Load(bad, "quick"); err != nil {
		t.Fatalf("refit did not overwrite the torn artifact: %v", err)
	}

	// A replica over the same torn file reports the pair unavailable.
	replica := New(Options{Scale: "quick", ArtifactDir: t.TempDir(), Replica: true})
	defer replica.Close()
	if err := os.WriteFile(replica.artifacts.Path(bad, "quick"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = replica.registry.Get(context.Background(), bad, "quick")
	var na *NoArtifactError
	if !errors.As(err, &na) {
		t.Fatalf("replica corrupt artifact error = %v, want *NoArtifactError", err)
	}
}

// TestArtifactSchemaSkew pins version gating at the store level: a file with
// an unknown wrapper schema is corrupt, and LoadAll skips it.
func TestArtifactSchemaSkew(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenArtifacts(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.MustGet("179.art", workloads.Train)
	if err := store.Save(serializableArtifacts(w, 61), "quick"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(store.Path(w, "quick"))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["schema"] = json.RawMessage("99")
	skewed, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(w, "quick"), skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = store.Load(w, "quick")
	var corrupt *CorruptArtifactError
	if !errors.As(err, &corrupt) || !strings.Contains(corrupt.Reason, "schema version 99") {
		t.Fatalf("schema skew error = %v, want *CorruptArtifactError naming version 99", err)
	}
	arts, skipped, err := store.LoadAll(nil)
	if err != nil || len(arts) != 0 || skipped != 1 {
		t.Fatalf("LoadAll over skewed dir: %d loaded, %d skipped, err %v", len(arts), skipped, err)
	}
}

// ---- helpers ----

func predictVia(t *testing.T, baseURL string, req PredictRequest) []float64 {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/predict", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr.Predictions
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
