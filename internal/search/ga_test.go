package search

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/doe"
	"repro/internal/sim"
)

// funcModel adapts a plain function to the model.Model interface.
type funcModel struct {
	f func(x []float64) float64
}

func (m funcModel) Predict(x []float64) float64 { return m.f(x) }
func (m funcModel) Name() string                { return "func" }

func smallSpace() *doe.Space {
	return &doe.Space{Vars: []doe.Var{
		{Name: "a", Kind: doe.Flag, Low: 0, High: 1, Levels: 2},
		{Name: "b", Kind: doe.Flag, Low: 0, High: 1, Levels: 2},
		{Name: "c", Kind: doe.Int, Low: 0, High: 10, Levels: 11},
		{Name: "d", Kind: doe.Int, Low: 0, High: 10, Levels: 11},
	}}
}

func TestGAFindsKnownOptimum(t *testing.T) {
	s := smallSpace()
	// Minimum at a=1, b=0, c=10 (coded 1), d=5 (coded 0).
	m := funcModel{func(x []float64) float64 {
		return 100 - 5*x[0] + 7*x[1] - 3*x[2] + 4*x[3]*x[3]
	}}
	res := Optimize(Problem{Space: s, Model: m}, GAOptions{}, rand.New(rand.NewSource(1)))
	p := res.Point
	if p[0] != 1 || p[1] != 0 || p[2] != 10 || p[3] != 5 {
		t.Fatalf("GA found %v, want [1 0 10 5]", p)
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations counted")
	}
}

func TestGARespectsFrozenVariables(t *testing.T) {
	s := smallSpace()
	m := funcModel{func(x []float64) float64 { return x[0] + x[1] + x[2] + x[3] }}
	res := Optimize(Problem{
		Space:  s,
		Model:  m,
		Frozen: map[int]int64{0: 1, 2: 7},
	}, GAOptions{}, rand.New(rand.NewSource(2)))
	if res.Point[0] != 1 || res.Point[2] != 7 {
		t.Fatalf("frozen variables changed: %v", res.Point)
	}
	// Free variables still minimized.
	if res.Point[1] != 0 || res.Point[3] != 0 {
		t.Fatalf("free variables not optimized: %v", res.Point)
	}
}

func TestGADeterministicWithSeed(t *testing.T) {
	s := smallSpace()
	m := funcModel{func(x []float64) float64 { return x[2]*x[2] + x[3] }}
	a := Optimize(Problem{Space: s, Model: m}, GAOptions{}, rand.New(rand.NewSource(9)))
	b := Optimize(Problem{Space: s, Model: m}, GAOptions{}, rand.New(rand.NewSource(9)))
	for i := range a.Point {
		if a.Point[i] != b.Point[i] {
			t.Fatal("same seed must give same result")
		}
	}
}

func TestFindCompilerSettingsFreezesMicroarch(t *testing.T) {
	js := doe.JointSpace()
	// Prefer all flags on, heuristics high; microarch fixed to typical.
	m := funcModel{func(x []float64) float64 {
		s := 0.0
		for i := 0; i < doe.NumCompilerVars; i++ {
			s -= x[i]
		}
		return s
	}}
	march := doe.FromConfig(sim.DefaultConfig())
	res := FindCompilerSettings(js, m, march, GAOptions{Generations: 60}, rand.New(rand.NewSource(3)))
	for i, v := range march {
		if res.Point[doe.NumCompilerVars+i] != v {
			t.Fatalf("microarch block changed at %d", i)
		}
	}
	// All 9 flags should be driven to 1.
	for i := 0; i < 9; i++ {
		if res.Point[i] != 1 {
			t.Fatalf("flag %d not maximized: %v", i, res.Point[:14])
		}
	}
	// Numeric heuristics driven to their high values.
	if res.Point[9] != 150 || res.Point[13] != 300 {
		t.Fatalf("heuristics not maximized: %v", res.Point[:14])
	}
}

func TestGAProgressStreamsEveryGeneration(t *testing.T) {
	s := smallSpace()
	m := funcModel{func(x []float64) float64 { return x[2] + x[3] }}
	var gens []int
	var lastBest float64
	opt := GAOptions{
		Generations: 5,
		Progress: func(gen int, best doe.Point, predicted float64) {
			gens = append(gens, gen)
			if len(best) != s.NumVars() {
				t.Fatalf("progress best has %d vars, want %d", len(best), s.NumVars())
			}
			if len(gens) > 1 && predicted > lastBest {
				t.Fatalf("best-so-far worsened: %v -> %v", lastBest, predicted)
			}
			lastBest = predicted
		},
	}
	res, err := OptimizeCtx(context.Background(), Problem{Space: s, Model: m}, opt, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 6 { // initial population + 5 generations
		t.Fatalf("progress called %d times, want 6 (gens %v)", len(gens), gens)
	}
	for i, g := range gens {
		if g != i {
			t.Fatalf("generations out of order: %v", gens)
		}
	}
	if lastBest != res.Predicted {
		t.Fatalf("final progress %v disagrees with result %v", lastBest, res.Predicted)
	}
}

func TestGACancelledContextStopsBetweenGenerations(t *testing.T) {
	s := smallSpace()
	m := funcModel{func(x []float64) float64 { return x[0] }}
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := 3
	opt := GAOptions{
		Population:  8,
		Generations: 1000,
		Progress: func(gen int, best doe.Point, predicted float64) {
			if gen == stopAt {
				cancel()
			}
		},
	}
	res, err := OptimizeCtx(ctx, Problem{Space: s, Model: m}, opt, rand.New(rand.NewSource(5)))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Point) != s.NumVars() {
		t.Fatalf("cancellation must still return the best point so far, got %+v", res)
	}
	// Evals: initial population + stopAt generations, then the cancel check
	// fires before generation stopAt+1 breeds.
	if want := 8 * (stopAt + 1); res.Evals != want {
		t.Fatalf("search ran %d evals after cancel, want %d", res.Evals, want)
	}
}
