// Package search implements the paper's model-based design space
// exploration: a genetic algorithm searches for the compiler flag and
// heuristic settings that minimize predicted execution time under a frozen
// microarchitectural configuration, using an empirical model as a zero-cost
// surrogate for simulation.
package search

import (
	"math"
	"math/rand"

	"repro/internal/doe"
	"repro/internal/model"
)

// Problem is one model-based minimization over a parameter space.
type Problem struct {
	Space *doe.Space
	Model model.Model
	// Frozen maps variable indices to fixed raw values (e.g. the
	// microarchitectural block when searching compiler settings for a
	// given platform).
	Frozen map[int]int64
}

// GAOptions tunes the genetic algorithm.
type GAOptions struct {
	Population  int     // default 60
	Generations int     // default 40
	Tournament  int     // default 3
	CrossRate   float64 // per-gene probability of taking parent B (default 0.5)
	MutRate     float64 // per-gene mutation probability (default 0.08)
	Elite       int     // individuals carried over unchanged (default 2)
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population == 0 {
		o.Population = 60
	}
	if o.Generations == 0 {
		o.Generations = 40
	}
	if o.Tournament == 0 {
		o.Tournament = 3
	}
	if o.CrossRate == 0 {
		o.CrossRate = 0.5
	}
	if o.MutRate == 0 {
		o.MutRate = 0.08
	}
	if o.Elite == 0 {
		o.Elite = 2
	}
	return o
}

// Result reports the best point found and its predicted response.
type Result struct {
	Point     doe.Point
	Predicted float64
	Evals     int
}

// Optimize runs the GA and returns the best design point found (raw
// values), minimizing the model's predicted response.
func Optimize(p Problem, opt GAOptions, rng *rand.Rand) *Result {
	opt = opt.withDefaults()
	k := p.Space.NumVars()

	clamp := func(pt doe.Point) {
		for i, v := range p.Frozen {
			pt[i] = v
		}
	}
	newRandom := func() doe.Point {
		pt := p.Space.RandomPoint(rng)
		clamp(pt)
		return pt
	}
	evals := 0
	fitness := func(pt doe.Point) float64 {
		evals++
		return p.Model.Predict(p.Space.Code(pt))
	}

	pop := make([]doe.Point, opt.Population)
	fit := make([]float64, opt.Population)
	for i := range pop {
		pop[i] = newRandom()
		fit[i] = fitness(pop[i])
	}

	bestI := argmin(fit)
	best := append(doe.Point{}, pop[bestI]...)
	bestFit := fit[bestI]

	tournament := func() doe.Point {
		wi := rng.Intn(len(pop))
		for t := 1; t < opt.Tournament; t++ {
			c := rng.Intn(len(pop))
			if fit[c] < fit[wi] {
				wi = c
			}
		}
		return pop[wi]
	}

	for gen := 0; gen < opt.Generations; gen++ {
		next := make([]doe.Point, 0, opt.Population)
		// Elitism: carry the best individuals forward.
		order := sortedByFitness(fit)
		for e := 0; e < opt.Elite && e < len(order); e++ {
			next = append(next, append(doe.Point{}, pop[order[e]]...))
		}
		for len(next) < opt.Population {
			a, b := tournament(), tournament()
			child := make(doe.Point, k)
			for g := 0; g < k; g++ {
				if rng.Float64() < opt.CrossRate {
					child[g] = b[g]
				} else {
					child[g] = a[g]
				}
				if rng.Float64() < opt.MutRate {
					levels := p.Space.Vars[g].LevelValues()
					child[g] = levels[rng.Intn(len(levels))]
				}
			}
			clamp(child)
			next = append(next, child)
		}
		pop = next
		for i := range pop {
			fit[i] = fitness(pop[i])
			if fit[i] < bestFit {
				bestFit = fit[i]
				best = append(doe.Point{}, pop[i]...)
			}
		}
	}
	return &Result{Point: best, Predicted: bestFit, Evals: evals}
}

// FindCompilerSettings freezes the microarchitectural block of the joint
// space to cfgBlock (11 raw values) and searches the compiler block — the
// platform-specific optimization search of the paper's Section 6.3.
func FindCompilerSettings(space *doe.Space, m model.Model, march []int64, opt GAOptions, rng *rand.Rand) *Result {
	frozen := map[int]int64{}
	for i, v := range march {
		frozen[doe.NumCompilerVars+i] = v
	}
	return Optimize(Problem{Space: space, Model: m, Frozen: frozen}, opt, rng)
}

func argmin(xs []float64) int {
	bi, bv := 0, math.Inf(1)
	for i, x := range xs {
		if x < bv {
			bi, bv = i, x
		}
	}
	return bi
}

func sortedByFitness(fit []float64) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && fit[idx[j-1]] > fit[idx[j]]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	return idx
}
