// Package search implements the paper's model-based design space
// exploration: a genetic algorithm searches for the compiler flag and
// heuristic settings that minimize predicted execution time under a frozen
// microarchitectural configuration, using an empirical model as a zero-cost
// surrogate for simulation.
package search

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/doe"
	"repro/internal/model"
)

// Problem is one model-based minimization over a parameter space.
type Problem struct {
	Space *doe.Space
	Model model.Model
	// Frozen maps variable indices to fixed raw values (e.g. the
	// microarchitectural block when searching compiler settings for a
	// given platform).
	Frozen map[int]int64
}

// GAOptions tunes the genetic algorithm.
//
// The zero value of every field means "use the default", so an explicit
// zero rate cannot be expressed directly: pass a negative CrossRate or
// MutRate to request a true zero (no crossover / no mutation).
type GAOptions struct {
	Population  int     // default 60
	Generations int     // default 40
	Tournament  int     // default 3
	CrossRate   float64 // per-gene probability of taking parent B (default 0.5; negative = explicit 0)
	MutRate     float64 // per-gene mutation probability (default 0.08; negative = explicit 0)
	Elite       int     // individuals carried over unchanged (default 2)
	// Workers bounds the fitness-evaluation concurrency (0 = GOMAXPROCS,
	// 1 = serial). The search trajectory is identical for every value:
	// all randomness is drawn on the breeding goroutine in a fixed order,
	// and workers only evaluate the (immutable) model in batch.
	Workers int
	// Progress, when non-nil, is called after each generation's fitness
	// evaluation (gen 0 is the initial population) with the best point and
	// predicted response found so far. It runs on the search goroutine, so
	// callbacks are ordered and may stream results; the point is a copy the
	// callee may retain.
	Progress func(gen int, best doe.Point, predicted float64)
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population == 0 {
		o.Population = 60
	}
	if o.Generations == 0 {
		o.Generations = 40
	}
	if o.Tournament == 0 {
		o.Tournament = 3
	}
	switch {
	case o.CrossRate == 0:
		o.CrossRate = 0.5
	case o.CrossRate < 0:
		o.CrossRate = 0
	}
	switch {
	case o.MutRate == 0:
		o.MutRate = 0.08
	case o.MutRate < 0:
		o.MutRate = 0
	}
	if o.Elite == 0 {
		o.Elite = 2
	}
	return o
}

// Result reports the best point found and its predicted response.
type Result struct {
	Point     doe.Point
	Predicted float64
	Evals     int
}

// Optimize runs the GA and returns the best design point found (raw
// values), minimizing the model's predicted response. It is OptimizeCtx
// without cancellation.
func Optimize(p Problem, opt GAOptions, rng *rand.Rand) *Result {
	res, _ := OptimizeCtx(context.Background(), p, opt, rng)
	return res
}

// OptimizeCtx runs the GA, checking ctx between generations: a cancelled
// context (a disconnected search client, Ctrl-C) stops the search at the
// next generation boundary and returns the best point found so far together
// with ctx's error. The trajectory up to the cancellation point is identical
// to an uncancelled run with the same seed.
func OptimizeCtx(ctx context.Context, p Problem, opt GAOptions, rng *rand.Rand) (*Result, error) {
	opt = opt.withDefaults()
	k := p.Space.NumVars()

	clamp := func(pt doe.Point) {
		for i, v := range p.Frozen {
			pt[i] = v
		}
	}
	newRandom := func() doe.Point {
		pt := p.Space.RandomPoint(rng)
		clamp(pt)
		return pt
	}
	// Fitness is evaluated in batch: the whole population is coded and
	// predicted on the worker pool via PredictAllParallel. Predictions
	// write only their own index, so the scores — and therefore the whole
	// search — are identical at any worker count.
	evals := 0
	evalInto := func(pop []doe.Point, fit []float64) {
		coded := make([][]float64, len(pop))
		for i, pt := range pop {
			coded[i] = p.Space.Code(pt)
		}
		copy(fit, model.PredictAllParallel(p.Model, coded, opt.Workers))
		evals += len(pop)
	}

	pop := make([]doe.Point, opt.Population)
	fit := make([]float64, opt.Population)
	for i := range pop {
		pop[i] = newRandom()
	}
	evalInto(pop, fit)

	bestI := argmin(fit)
	best := append(doe.Point{}, pop[bestI]...)
	bestFit := fit[bestI]
	report := func(gen int) {
		if opt.Progress != nil {
			opt.Progress(gen, append(doe.Point{}, best...), bestFit)
		}
	}
	report(0)

	tournament := func() doe.Point {
		wi := rng.Intn(len(pop))
		for t := 1; t < opt.Tournament; t++ {
			c := rng.Intn(len(pop))
			if fit[c] < fit[wi] {
				wi = c
			}
		}
		return pop[wi]
	}

	for gen := 0; gen < opt.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return &Result{Point: best, Predicted: bestFit, Evals: evals}, err
		}
		next := make([]doe.Point, 0, opt.Population)
		// Elitism: carry the best individuals forward.
		order := sortedByFitness(fit)
		for e := 0; e < opt.Elite && e < len(order); e++ {
			next = append(next, append(doe.Point{}, pop[order[e]]...))
		}
		for len(next) < opt.Population {
			a, b := tournament(), tournament()
			child := make(doe.Point, k)
			for g := 0; g < k; g++ {
				if rng.Float64() < opt.CrossRate {
					child[g] = b[g]
				} else {
					child[g] = a[g]
				}
				if rng.Float64() < opt.MutRate {
					levels := p.Space.Vars[g].LevelValues()
					child[g] = levels[rng.Intn(len(levels))]
				}
			}
			clamp(child)
			next = append(next, child)
		}
		pop = next
		evalInto(pop, fit)
		for i := range pop {
			if fit[i] < bestFit {
				bestFit = fit[i]
				best = append(doe.Point{}, pop[i]...)
			}
		}
		report(gen + 1)
	}
	return &Result{Point: best, Predicted: bestFit, Evals: evals}, nil
}

// FindCompilerSettings freezes the microarchitectural block of the joint
// space to cfgBlock (11 raw values) and searches the compiler block — the
// platform-specific optimization search of the paper's Section 6.3.
func FindCompilerSettings(space *doe.Space, m model.Model, march []int64, opt GAOptions, rng *rand.Rand) *Result {
	res, _ := FindCompilerSettingsCtx(context.Background(), space, m, march, opt, rng)
	return res
}

// FindCompilerSettingsCtx is FindCompilerSettings with generation-boundary
// cancellation (see OptimizeCtx).
func FindCompilerSettingsCtx(ctx context.Context, space *doe.Space, m model.Model, march []int64, opt GAOptions, rng *rand.Rand) (*Result, error) {
	frozen := map[int]int64{}
	for i, v := range march {
		frozen[doe.NumCompilerVars+i] = v
	}
	return OptimizeCtx(ctx, Problem{Space: space, Model: m, Frozen: frozen}, opt, rng)
}

func argmin(xs []float64) int {
	bi, bv := 0, math.Inf(1)
	for i, x := range xs {
		if x < bv {
			bi, bv = i, x
		}
	}
	return bi
}

// sortedByFitness returns the population indices ordered by ascending
// fitness. Equal fitnesses keep their index order — the same result as the
// stable insertion sort this replaced, at O(n log n).
func sortedByFitness(fit []float64) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if fit[idx[a]] != fit[idx[b]] {
			return fit[idx[a]] < fit[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
