package search

import (
	"math/rand"

	"repro/internal/doe"
)

// RandomSearch evaluates `evals` uniformly random points (respecting frozen
// variables) and returns the best — the naive baseline the GA must beat at
// equal evaluation budget.
func RandomSearch(p Problem, evals int, rng *rand.Rand) *Result {
	best := &Result{Predicted: 0, Evals: evals}
	for i := 0; i < evals; i++ {
		pt := p.Space.RandomPoint(rng)
		for vi, v := range p.Frozen {
			pt[vi] = v
		}
		fit := p.Model.Predict(p.Space.Code(pt))
		if best.Point == nil || fit < best.Predicted {
			best.Point = pt
			best.Predicted = fit
		}
	}
	return best
}

// HillClimb runs steepest-descent over the level lattice with random
// restarts: from a random start, repeatedly move to the best single-variable
// level change until no move improves, restarting until the evaluation
// budget is spent.
func HillClimb(p Problem, evals int, rng *rand.Rand) *Result {
	res := &Result{}
	spent := 0
	eval := func(pt doe.Point) float64 {
		spent++
		return p.Model.Predict(p.Space.Code(pt))
	}
	clamp := func(pt doe.Point) {
		for vi, v := range p.Frozen {
			pt[vi] = v
		}
	}
	for spent < evals {
		cur := p.Space.RandomPoint(rng)
		clamp(cur)
		curFit := eval(cur)
		improved := true
		for improved && spent < evals {
			improved = false
			var bestPt doe.Point
			bestFit := curFit
			for vi := range p.Space.Vars {
				if _, frozen := p.Frozen[vi]; frozen {
					continue
				}
				for _, lv := range p.Space.Vars[vi].LevelValues() {
					if lv == cur[vi] {
						continue
					}
					cand := append(doe.Point{}, cur...)
					cand[vi] = lv
					if fit := eval(cand); fit < bestFit {
						bestFit, bestPt = fit, cand
					}
					if spent >= evals {
						break
					}
				}
				if spent >= evals {
					break
				}
			}
			if bestPt != nil {
				cur, curFit = bestPt, bestFit
				improved = true
			}
		}
		if res.Point == nil || curFit < res.Predicted {
			res.Point = cur
			res.Predicted = curFit
		}
	}
	res.Evals = spent
	return res
}
