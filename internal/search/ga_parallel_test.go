package search

import (
	"math/rand"
	"testing"
)

// Workers only parallelize the batched fitness evaluation; all randomness is
// consumed on the breeding goroutine in a fixed order, so the search
// trajectory — and the final point — must be identical at any worker count.
func TestOptimizeParallelMatchesSerial(t *testing.T) {
	s := smallSpace()
	m := funcModel{func(x []float64) float64 {
		return 100 - 5*x[0] + 7*x[1] - 3*x[2] + 4*x[3]*x[3]
	}}
	run := func(w int) *Result {
		return Optimize(Problem{Space: s, Model: m},
			GAOptions{Workers: w}, rand.New(rand.NewSource(11)))
	}
	serial := run(1)
	for _, w := range []int{0, 2, 4} {
		parallel := run(w)
		for i := range serial.Point {
			if parallel.Point[i] != serial.Point[i] {
				t.Fatalf("workers=%d: point %v != serial %v", w, parallel.Point, serial.Point)
			}
		}
		if parallel.Predicted != serial.Predicted {
			t.Fatalf("workers=%d: predicted %v != serial %v", w, parallel.Predicted, serial.Predicted)
		}
		if parallel.Evals != serial.Evals {
			t.Fatalf("workers=%d: evals %d != serial %d", w, parallel.Evals, serial.Evals)
		}
	}
}

// sortedByFitness must order ascending and keep index order on ties — the
// contract the elitism step relied on with the old stable insertion sort.
func TestSortedByFitnessStableOnTies(t *testing.T) {
	fit := []float64{3, 1, 2, 1, 3, 1}
	got := sortedByFitness(fit)
	want := []int{1, 3, 5, 2, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// Cross-check against a reference insertion sort on random data.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		f := make([]float64, 30)
		for i := range f {
			f[i] = float64(rng.Intn(5)) // plenty of ties
		}
		ref := insertionSortedByFitness(f)
		got := sortedByFitness(f)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: %v != reference %v (fit %v)", trial, got, ref, f)
			}
		}
	}
}

// insertionSortedByFitness is the O(n²) stable sort sortedByFitness replaced,
// kept as the test oracle.
func insertionSortedByFitness(fit []float64) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && fit[idx[j]] < fit[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// The zero value of every GAOptions field means "default"; negative rates
// are the explicit-zero sentinel.
func TestGAOptionsExplicitZeroRates(t *testing.T) {
	def := GAOptions{}.withDefaults()
	if def.CrossRate != 0.5 || def.MutRate != 0.08 {
		t.Fatalf("defaults = %+v", def)
	}
	zero := GAOptions{CrossRate: -1, MutRate: -1}.withDefaults()
	if zero.CrossRate != 0 || zero.MutRate != 0 {
		t.Fatalf("explicit zero = %+v", zero)
	}
	set := GAOptions{CrossRate: 0.3, MutRate: 0.2}.withDefaults()
	if set.CrossRate != 0.3 || set.MutRate != 0.2 {
		t.Fatalf("explicit values overwritten: %+v", set)
	}

	// Behavioral check: with crossover and mutation both explicitly off,
	// children are copies of tournament winners, so every individual ever
	// seen is from the initial population.
	s := smallSpace()
	m := funcModel{func(x []float64) float64 { return x[2] + x[3] }}
	res := Optimize(Problem{Space: s, Model: m},
		GAOptions{Population: 8, Generations: 5, CrossRate: -1, MutRate: -1},
		rand.New(rand.NewSource(5)))
	if res == nil || res.Evals != 8*6 {
		t.Fatalf("unexpected result: %+v", res)
	}
}
