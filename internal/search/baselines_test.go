package search

import (
	"math/rand"
	"testing"

	"repro/internal/doe"
)

// rugged is a deceptive surface: a broad basin plus interactions that
// mislead coordinate-wise search.
func rugged(x []float64) float64 {
	s := 0.0
	for i := 0; i < len(x)-1; i++ {
		s += (x[i] - 0.3) * (x[i] - 0.3)
		s += 1.5 * x[i] * x[i+1]
	}
	return s
}

func TestBaselinesFindReasonablePoints(t *testing.T) {
	s := smallSpace()
	m := funcModel{rugged}
	prob := Problem{Space: s, Model: m}
	rs := RandomSearch(prob, 500, rand.New(rand.NewSource(1)))
	hc := HillClimb(prob, 500, rand.New(rand.NewSource(1)))
	if rs.Point == nil || hc.Point == nil {
		t.Fatal("baselines returned nothing")
	}
	// Both should land well below the random-point average.
	rng := rand.New(rand.NewSource(2))
	avg := 0.0
	for i := 0; i < 200; i++ {
		avg += m.Predict(s.Code(s.RandomPoint(rng)))
	}
	avg /= 200
	if rs.Predicted >= avg || hc.Predicted >= avg {
		t.Fatalf("baselines no better than random average: rs=%v hc=%v avg=%v",
			rs.Predicted, hc.Predicted, avg)
	}
}

func TestBaselinesRespectFrozen(t *testing.T) {
	s := smallSpace()
	prob := Problem{
		Space:  s,
		Model:  funcModel{func(x []float64) float64 { return x[0] + x[2] }},
		Frozen: map[int]int64{1: 1, 3: 9},
	}
	for _, res := range []*Result{
		RandomSearch(prob, 100, rand.New(rand.NewSource(3))),
		HillClimb(prob, 100, rand.New(rand.NewSource(3))),
	} {
		if res.Point[1] != 1 || res.Point[3] != 9 {
			t.Fatalf("frozen variables violated: %v", res.Point)
		}
	}
}

func TestGACompetitiveWithBaselinesAtEqualBudget(t *testing.T) {
	// On the joint space with a surface containing flag interactions, the
	// GA should match or beat both baselines at the same budget.
	js := doe.JointSpace()
	m := funcModel{func(x []float64) float64 {
		s := 0.0
		// Reward specific flag combinations (interactions), penalize
		// heuristic extremes.
		s -= 5 * x[0] * x[4]
		s -= 3 * x[1] * x[16]
		s += 2 * (x[9] - 0.4) * (x[9] - 0.4)
		s += x[13]*x[13] - x[22]
		return s
	}}
	prob := Problem{Space: js, Model: m}

	ga := Optimize(prob, GAOptions{Population: 40, Generations: 24}, rand.New(rand.NewSource(5)))
	budget := ga.Evals
	rs := RandomSearch(prob, budget, rand.New(rand.NewSource(5)))
	hc := HillClimb(prob, budget, rand.New(rand.NewSource(5)))
	t.Logf("budget=%d ga=%.3f random=%.3f hillclimb=%.3f", budget, ga.Predicted, rs.Predicted, hc.Predicted)
	if ga.Predicted > rs.Predicted+1e-9 {
		t.Errorf("GA (%v) lost to random search (%v)", ga.Predicted, rs.Predicted)
	}
}
