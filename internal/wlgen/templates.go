package wlgen

import "math/rand"

// The six kernel families. Each draws its sizes, constants and structural
// parameters from the per-program rng, emits deterministic in-program input
// initialization (no external data), and folds all computed state into
// main's return value so differential testing across compiler
// configurations observes every kernel effect.
//
// Shared conventions keeping every instantiation valid and portable:
//   - array sizes are powers of two and indices are masked (or provably in
//     range), so no access faults;
//   - loop bounds are constants or strictly increasing inductions, so every
//     program terminates;
//   - values are masked before multiplication, so results do not depend on
//     overflow edge cases (MiniC ints wrap at 64 bits regardless — this is
//     hygiene, not correctness);
//   - division and modulo never appear with a variable divisor.
var templates = []template{
	{"stencil", genStencil},
	{"hashjoin", genHashJoin},
	{"strmatch", genStrMatch},
	{"spmv", genSpMV},
	{"statemachine", genStateMachine},
	{"treewalk", genTreeWalk},
}

// genStencil emits a 1-D (2r+1)-point weighted stencil swept repeatedly
// over a circular array: regular strided access, unrolled tap chains, high
// ILP — the loop-optimization and prefetch flags' best case.
func genStencil(rng *rand.Rand) string {
	n := 128 << rng.Intn(3)   // 128..512 elements
	radius := 1 + rng.Intn(3) // 3..7 taps
	sweeps := 2 + rng.Intn(5)
	shift := 1 + rng.Intn(3)
	weights := make([]int, 2*radius+1)
	for i := range weights {
		weights[i] = 1 + rng.Intn(9)
	}
	c1, c2 := 3+2*rng.Intn(30), rng.Intn(256)

	s := &src{}
	s.line("int a[%d];", n)
	s.line("int b[%d];", n)
	s.open("int main()")
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("a[i] = (i * %d + %d) & 1023;", c1, c2)
	s.line("b[i] = 0;")
	s.close()
	s.open("for (int sw = 0; sw < %d; sw = sw + 1)", sweeps)
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("int acc = 0;")
	for t := -radius; t <= radius; t++ {
		s.line("acc = acc + a[(i + %d) & %d] * %d;", t+n, n-1, weights[t+radius])
	}
	s.line("b[i] = (acc >> %d) & 1023;", shift)
	s.close()
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("a[i] = b[i];")
	s.close()
	s.close()
	s.line("int sum = 0;")
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("sum = (sum * 31 + a[i]) & 1073741823;")
	s.close()
	s.line("return sum;")
	s.close()
	return s.String()
}

// genHashJoin emits a build/probe hash join with linear probing: a hash
// helper called per key (call density, inlining target), data-dependent
// probe-loop trip counts and scattered bucket accesses. Empty slots hold 0,
// so inserted and probed keys are offset to be nonzero.
func genHashJoin(rng *rand.Rand) string {
	b := 256 << rng.Intn(3) // 256..1024 buckets
	m := b/4 + rng.Intn(b/4)
	probes := 1024 << rng.Intn(2)
	plen := 8 + rng.Intn(8)
	hmul := 2*(1+rng.Intn(32767)) + 1
	hshift := 3 + rng.Intn(5)
	keyMask := 1<<(8+rng.Intn(4)) - 1
	c1, c2 := 2*rng.Intn(500)+1, rng.Intn(1024)
	c3, c4 := 2*rng.Intn(500)+1, rng.Intn(1024)

	s := &src{}
	s.line("int bucket[%d];", b)
	s.open("int hash(int k)")
	s.line("return ((k * %d) ^ (k >> %d)) & %d;", hmul, hshift, b-1)
	s.close()
	s.open("int main()")
	s.open("for (int i = 0; i < %d; i = i + 1)", b)
	s.line("bucket[i] = 0;")
	s.close()
	s.open("for (int i = 0; i < %d; i = i + 1)", m)
	s.line("int k = ((i * %d + %d) & %d) + 1;", c1, c2, keyMask)
	s.line("int h = hash(k);")
	s.open("for (int j = 0; j < %d; j = j + 1)", b)
	s.open("if (bucket[(h + j) & %d] == 0)", b-1)
	s.line("bucket[(h + j) & %d] = k;", b-1)
	s.line("break;")
	s.close()
	s.close()
	s.close()
	s.line("int hits = 0;")
	s.open("for (int i = 0; i < %d; i = i + 1)", probes)
	s.line("int k = ((i * %d + %d) & %d) + 1;", c3, c4, keyMask)
	s.line("int h = hash(k);")
	s.open("for (int j = 0; j < %d; j = j + 1)", plen)
	s.line("int v = bucket[(h + j) & %d];", b-1)
	s.open("if (v == k)")
	s.line("hits = hits + 1;")
	s.line("break;")
	s.close()
	s.open("if (v == 0)")
	s.line("break;")
	s.close()
	s.close()
	s.close()
	s.line("return (hits * 2654435761 + %d) & 1073741823;", rng.Intn(8192))
	s.close()
	return s.String()
}

// genStrMatch emits naive substring search over a small-alphabet text, with
// the pattern copied from the text so matches occur: short branchy inner
// loops with early exits — heavy branch-predictor and reorder-blocks
// exercise.
func genStrMatch(rng *rand.Rand) string {
	n := 1024 << rng.Intn(2)
	m := 3 + rng.Intn(6)
	sigma := 4 << rng.Intn(3) // alphabet 4..16
	passes := 2 + rng.Intn(4)
	pos := rng.Intn(n - m)
	c1, c2 := 2*rng.Intn(2000)+1, rng.Intn(512)
	tshift := 2 + rng.Intn(3)

	s := &src{}
	s.line("int text[%d];", n)
	s.line("int pat[%d];", m)
	s.open("int main()")
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("text[i] = ((i * %d + %d) >> %d) & %d;", c1, c2, tshift, sigma-1)
	s.close()
	s.open("for (int j = 0; j < %d; j = j + 1)", m)
	s.line("pat[j] = text[%d + j];", pos)
	s.close()
	s.line("int count = 0;")
	s.line("int last = 0;")
	s.open("for (int p = 0; p < %d; p = p + 1)", passes)
	s.open("for (int i = 0; i < %d; i = i + 1)", n-m+1)
	s.line("int j = 0;")
	s.open("while (j < %d)", m)
	s.open("if (text[i + j] != pat[j])")
	s.line("break;")
	s.close()
	s.line("j = j + 1;")
	s.close()
	s.open("if (j == %d)", m)
	s.line("count = count + 1;")
	s.line("last = i + p;")
	s.close()
	s.close()
	s.close()
	s.line("return (count * 8191 + last) & 1073741823;")
	s.close()
	return s.String()
}

// genSpMV emits CSR-style sparse matrix-vector products with a feedback
// step between iterations: indirect loads through a column-index array —
// the cache-size and memory-latency variables' stress case.
func genSpMV(rng *rand.Rand) string {
	rows := 64 << rng.Intn(2)
	nnz := 4 + rng.Intn(5)
	cols := 256 << rng.Intn(2)
	iters := 4 + rng.Intn(5)
	total := rows * nnz
	c1, c2 := 2*rng.Intn(100000)+1, rng.Intn(4096)
	c3 := 2*rng.Intn(1000) + 1
	c4 := rng.Intn(256)
	c5 := 2*rng.Intn(100) + 1
	cshift := 4 + rng.Intn(4)

	s := &src{}
	s.line("int colidx[%d];", total)
	s.line("int vals[%d];", total)
	s.line("int x[%d];", cols)
	s.line("int y[%d];", rows)
	s.open("int main()")
	s.open("for (int i = 0; i < %d; i = i + 1)", total)
	s.line("colidx[i] = ((i * %d + %d) >> %d) & %d;", c1, c2, cshift, cols-1)
	s.line("vals[i] = ((i * %d) & 31) + 1;", c3)
	s.close()
	s.open("for (int i = 0; i < %d; i = i + 1)", cols)
	s.line("x[i] = (i ^ %d) & 255;", c4)
	s.close()
	s.open("for (int it = 0; it < %d; it = it + 1)", iters)
	s.open("for (int r = 0; r < %d; r = r + 1)", rows)
	s.line("int acc = 0;")
	s.open("for (int k = 0; k < %d; k = k + 1)", nnz)
	s.line("acc = acc + vals[r * %d + k] * x[colidx[r * %d + k]];", nnz, nnz)
	s.close()
	s.line("y[r] = acc & 65535;")
	s.close()
	s.open("for (int r = 0; r < %d; r = r + 1)", rows)
	s.line("x[(r * %d + it) & %d] = y[r] & 255;", c5, cols-1)
	s.close()
	s.close()
	s.line("int sum = 0;")
	s.open("for (int r = 0; r < %d; r = r + 1)", rows)
	s.line("sum = (sum * 131 + y[r]) & 1073741823;")
	s.close()
	s.line("return sum;")
	s.close()
	return s.String()
}

// genStateMachine emits a table-driven automaton over a synthetic input
// tape: serially dependent chained loads (state -> transition -> state) and
// an unpredictable data-dependent branch — low-ILP, mcf-like behavior.
func genStateMachine(rng *rand.Rand) string {
	states := 16 << rng.Intn(3)
	sigma := 4 << rng.Intn(2)
	n := 1024 << rng.Intn(2)
	passes := 2 + rng.Intn(4)
	c1, c2 := 2*rng.Intn(5000)+1, rng.Intn(1024)
	c3, c4 := 2*rng.Intn(5000)+1, rng.Intn(1024)
	branchMask := 1<<(1+rng.Intn(3)) - 1

	s := &src{}
	s.line("int trans[%d];", states*sigma)
	s.line("int inp[%d];", n)
	s.open("int main()")
	s.open("for (int i = 0; i < %d; i = i + 1)", states*sigma)
	s.line("trans[i] = ((i * %d + %d) >> 3) & %d;", c1, c2, states-1)
	s.close()
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("inp[i] = ((i * %d + %d) >> 4) & %d;", c3, c4, sigma-1)
	s.close()
	s.line("int state = 0;")
	s.line("int acc = 0;")
	s.open("for (int p = 0; p < %d; p = p + 1)", passes)
	s.open("for (int i = 0; i < %d; i = i + 1)", n)
	s.line("state = trans[state * %d + inp[i]];", sigma)
	s.line("acc = (acc * 33 + state) & 1073741823;")
	s.open("if ((state & %d) == 0)", branchMask)
	s.line("acc = acc ^ (i + p);")
	s.close()
	s.close()
	s.close()
	s.line("return acc;")
	s.close()
	return s.String()
}

// genTreeWalk emits repeated root-to-leaf descents of an implicit binary
// tree stored heap-style in an array: pointer-chase-like dependent loads
// with a data-dependent direction branch at every level.
func genTreeWalk(rng *rand.Rand) string {
	size := 1 << (8 + rng.Intn(3)) // 256..1024 nodes
	walks := 256 << rng.Intn(3)
	keyMask := 1<<(10+rng.Intn(3)) - 1
	c1, c2 := 2*rng.Intn(10000)+1, rng.Intn(2048)
	c3, c4 := 2*rng.Intn(10000)+1, rng.Intn(2048)

	s := &src{}
	s.line("int key[%d];", size)
	s.open("int main()")
	s.open("for (int i = 0; i < %d; i = i + 1)", size)
	s.line("key[i] = ((i * %d + %d) >> 2) & %d;", c1, c2, keyMask)
	s.close()
	s.line("int acc = 0;")
	s.open("for (int q = 0; q < %d; q = q + 1)", walks)
	s.line("int probe = (q * %d + %d) & %d;", c3, c4, keyMask)
	s.line("int node = 1;")
	s.open("while (node < %d)", size)
	s.line("int k = key[node];")
	s.line("acc = (acc + k) & 1073741823;")
	s.open("if (probe < k)")
	s.line("node = node * 2;")
	s.alt()
	s.line("node = node * 2 + 1;")
	s.close()
	s.close()
	s.close()
	s.line("return acc;")
	s.close()
	return s.String()
}
