package wlgen

import (
	"math/rand"
	"testing"

	"repro/internal/compiler"
	"repro/internal/doe"
	"repro/internal/lang"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestCorpusDeterministicAndPrefixStable(t *testing.T) {
	a := Corpus(42, 64)
	b := Corpus(42, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("program %d not byte-identical across generations", i)
		}
	}
	prefix := Corpus(42, 16)
	for i := range prefix {
		if prefix[i] != a[i] {
			t.Fatalf("Corpus(seed, 16)[%d] != Corpus(seed, 64)[%d]: corpora must be prefix-stable", i, i)
		}
	}
	other := Corpus(43, 64)
	same := 0
	for i := range a {
		if a[i].Source == other[i].Source {
			same++
		}
	}
	if same == len(a) {
		t.Error("different corpus seeds produced identical corpora")
	}
}

func TestCorpusCoversEveryTemplate(t *testing.T) {
	seen := map[string]int{}
	for _, p := range Corpus(7, 120) {
		seen[p.Template]++
	}
	for _, name := range TemplateNames() {
		if seen[name] == 0 {
			t.Errorf("template %q never drawn across 120 programs", name)
		}
	}
}

func TestRegisterCorpusJoinsWorkloadRegistry(t *testing.T) {
	ps := Corpus(99, 3)
	RegisterCorpus(ps)
	for _, p := range ps {
		w, err := workloads.Get(p.Name, workloads.Train)
		if err != nil {
			t.Fatalf("%s not resolvable after RegisterCorpus: %v", p.Name, err)
		}
		if w.Source != p.Source {
			t.Errorf("%s: registry returned different source", p.Name)
		}
	}
}

// TestGeneratedProgramsValidAndConformant is the wlgen validity property
// test: over a corpus of 52 seeds, every generated program parses, passes
// semantic checking, compiles cleanly at O0, O3 and a random point of the
// paper's 14-variable compiler space, computes the same result under all
// three configurations, stays inside the intended dynamic-size band, and
// (sampled) the detailed timing simulator agrees with the functional
// executor on the exit value.
func TestGeneratedProgramsValidAndConformant(t *testing.T) {
	space := doe.CompilerSpace()
	rng := rand.New(rand.NewSource(1))
	for i, p := range Corpus(20070308, 52) {
		p := p
		// Draw randomness outside the parallel subtest: rng is not
		// goroutine-safe.
		opts := doe.ToOptions(space.RandomPoint(rng), 4)
		runTiming := i%8 == 0
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			ast, err := lang.Parse(p.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := lang.Check(ast); err != nil {
				t.Fatalf("check: %v", err)
			}
			var ref int64
			for ci, o := range []compiler.Options{compiler.O0(), compiler.O3(), opts} {
				prog, _, err := compiler.Compile(ast, o)
				if err != nil {
					t.Fatalf("compile config %d (%v): %v", ci, o, err)
				}
				exe := sim.NewExecutor(prog)
				n, rv, err := exe.Run(20_000_000)
				if err != nil {
					t.Fatalf("run config %d: %v", ci, err)
				}
				switch {
				case ci == 0:
					ref = rv
					if n < 5_000 {
						t.Errorf("trivial program: only %d dynamic instructions at O0", n)
					}
					if n > 5_000_000 {
						t.Errorf("oversized program: %d dynamic instructions at O0", n)
					}
				case rv != ref:
					t.Errorf("config %d result %d != O0 result %d", ci, rv, ref)
				}
				if runTiming && ci == 2 {
					st, err := sim.Simulate(prog, sim.DefaultConfig(), 20_000_000)
					if err != nil {
						t.Fatalf("timing sim: %v", err)
					}
					if st.ExitValue != ref {
						t.Errorf("timing sim exit value %d != executor result %d", st.ExitValue, ref)
					}
				}
			}
		})
	}
}
