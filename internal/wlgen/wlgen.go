// Package wlgen generates synthetic MiniC workloads from seeded,
// parameterized kernel templates. The cross-program models of ROADMAP item 3
// need far more than the seven seed benchmarks to learn how program features
// modulate flag and microarchitecture response, and wlgen supplies that
// corpus: six template families — stencils, hash joins, string matching,
// sparse algebra, state machines and tree walks — each instantiated with
// randomized sizes, constants and structure, so every program has a distinct
// feature vector while staying simulator-friendly.
//
// Generation is strictly deterministic: a corpus is a pure function of
// (seed, n), byte-identical across runs, machines and Go versions (the
// frozen math/rand generator), and Corpus(seed, n) is a prefix of
// Corpus(seed, m) for n < m. Every emitted program is semantically valid,
// terminates, and computes the same result under every compiler
// configuration — properties the package test pins over a corpus of seeds.
package wlgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/workloads"
)

// Program is one generated workload: a kernel template instantiated at one
// parameter draw.
type Program struct {
	Name     string // registry name, e.g. "gen.stencil-5851f42d4c957f2d"
	Template string // template family name
	Seed     int64  // the per-program seed that reproduces it
	Source   string // MiniC source text
}

// Workload wraps the program for the measurement pipeline. Generated
// programs have a single input scale, labeled "gen".
func (p Program) Workload() workloads.Workload {
	return workloads.Workload{
		Name:   p.Name,
		Input:  "gen",
		Class:  workloads.Train,
		Source: p.Source,
	}
}

// splitmix64 whitens seeds so that nearby corpus seeds and indices produce
// unrelated parameter draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Generate builds the program of one seed: the seed picks a template family
// and all its parameters.
func Generate(seed int64) Program {
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed)))))
	t := templates[rng.Intn(len(templates))]
	return Program{
		Name:     fmt.Sprintf("gen.%s-%016x", t.name, uint64(seed)),
		Template: t.name,
		Seed:     seed,
		Source:   t.gen(rng),
	}
}

// Corpus generates n programs from one corpus seed. Per-program seeds are
// derived index-independently, so Corpus(seed, n) is byte-identical across
// calls and a prefix of any larger corpus with the same seed.
func Corpus(seed int64, n int) []Program {
	out := make([]Program, n)
	for i := range out {
		out[i] = Generate(int64(splitmix64(uint64(seed) ^ uint64(i)*0x9e3779b97f4a7c15)))
	}
	return out
}

// RegisterCorpus adds every program to the workloads registry, making the
// corpus addressable by name through workloads.Get like the seed suite.
func RegisterCorpus(ps []Program) {
	for _, p := range ps {
		src := p.Source
		workloads.Register(p.Name, func(workloads.InputClass) string { return src })
	}
}

// TemplateNames lists the template families in their fixed selection order.
func TemplateNames() []string {
	out := make([]string, len(templates))
	for i, t := range templates {
		out[i] = t.name
	}
	return out
}

// template is one kernel family: a name and a parameterized source emitter.
type template struct {
	name string
	gen  func(rng *rand.Rand) string
}

// src builds MiniC text with brace-tracked indentation. Emitters use fixed
// variable names — every program is an independent compilation unit, so no
// global freshness counter is needed (which is exactly what keeps generation
// per-seed deterministic, unlike lang.GenProgram).
type src struct {
	b     strings.Builder
	depth int
}

func (s *src) line(format string, args ...any) {
	for i := 0; i < s.depth; i++ {
		s.b.WriteByte('\t')
	}
	fmt.Fprintf(&s.b, format, args...)
	s.b.WriteByte('\n')
}

// open emits a statement head and its opening brace, indenting what follows.
func (s *src) open(format string, args ...any) {
	s.line(format+" {", args...)
	s.depth++
}

// alt closes the then-branch and opens the else-branch.
func (s *src) alt() {
	s.depth--
	s.line("} else {")
	s.depth++
}

func (s *src) close() {
	s.depth--
	s.line("}")
}

func (s *src) String() string { return s.b.String() }
