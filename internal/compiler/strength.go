package compiler

import "repro/internal/ir"

// StrengthReduce performs induction-variable strength reduction
// (-fstrength-reduce): inside each loop, a multiplication `t = iv * c` of a
// basic induction variable by a loop-invariant value is replaced by an
// accumulator that is initialized in the preheader and advanced by `step*c`
// alongside the induction variable, turning the per-iteration multiply into
// an add. The array-indexing multiplies produced by lowering (`i*8`) are the
// most common beneficiaries.
func StrengthReduce(f *ir.Func) {
	for iter := 0; iter < 64; iter++ {
		f.RemoveUnreachable()
		dom := ir.ComputeDominators(f)
		loops := ir.FindLoops(f, dom)
		changed := false
		for _, l := range loops { // innermost first
			if reduceLoop(f, l) {
				changed = true
				break // CFG/def structure changed; recompute analyses
			}
		}
		if !changed {
			return
		}
		Cleanup(f)
	}
}

// basicIV describes `iv = iv + step` found in the loop latch.
type basicIV struct {
	iv       ir.Value
	step     int64
	incBlock *ir.Block
	incIdx   int
}

// findBasicIVs locates induction variables: values with exactly one
// definition inside the loop, of the form iv = add iv, c (or iv = add c, iv)
// located in the latch block, with c a single-def constant.
func findBasicIVs(f *ir.Func, l *ir.Loop) []basicIV {
	consts, _ := constValues(f)
	// Count in-loop defs per value.
	defsIn := map[ir.Value]int{}
	for b := range l.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoValue {
				defsIn[d]++
			}
		}
	}
	latch := l.Latch
	if latch == nil {
		return nil
	}
	var ivs []basicIV
	for i := range latch.Instrs {
		in := &latch.Instrs[i]
		if in.Op != ir.OpAdd || defsIn[in.Dst] != 1 {
			continue
		}
		var stepVal ir.Value
		switch {
		case in.X == in.Dst:
			stepVal = in.Y
		case in.Y == in.Dst:
			stepVal = in.X
		default:
			continue
		}
		c, ok := consts[stepVal]
		if !ok {
			continue
		}
		ivs = append(ivs, basicIV{iv: in.Dst, step: c, incBlock: latch, incIdx: i})
	}
	return ivs
}

// singleBackEdge reports whether the loop has exactly one back edge, from
// its latch.
func singleBackEdge(l *ir.Loop) bool {
	n := 0
	for _, p := range l.Header.Preds {
		if l.Contains(p) {
			n++
			if p != l.Latch {
				return false
			}
		}
	}
	return n == 1
}

func reduceLoop(f *ir.Func, l *ir.Loop) bool {
	if !singleBackEdge(l) {
		return false
	}
	ivs := findBasicIVs(f, l)
	if len(ivs) == 0 {
		return false
	}
	ivOf := map[ir.Value]*basicIV{}
	for i := range ivs {
		ivOf[ivs[i].iv] = &ivs[i]
	}
	defCounts := f.DefCounts()
	consts, _ := constValues(f)
	inLoop := loopDefs(l)

	// Find a candidate multiply: t = mul iv, c with c loop-invariant
	// constant, t single-def, located in any loop block.
	for _, b := range loopBlocksOrdered(l) {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpMul || defCounts[in.Dst] != 1 {
				continue
			}
			var iv *basicIV
			var cval int64
			if v, ok := ivOf[in.X]; ok {
				c, isC := consts[in.Y]
				if !isC || inLoop[in.Y] {
					continue
				}
				iv, cval = v, c
			} else if v, ok := ivOf[in.Y]; ok {
				c, isC := consts[in.X]
				if !isC || inLoop[in.X] {
					continue
				}
				iv, cval = v, c
			} else {
				continue
			}

			// Rewrite: preheader:  acc = iv * c
			//          loop body:  t   = copy acc      (replaces the mul)
			//          after inc:  acc = acc + step*c
			ph := ensurePreheader(f, l)
			acc := f.NewValue()
			cReg := f.NewValue()
			phTerm := ph.Instrs[len(ph.Instrs)-1]
			ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1],
				ir.Instr{Op: ir.OpConst, Dst: cReg, Imm: cval},
				ir.Instr{Op: ir.OpMul, Dst: acc, X: iv.iv, Y: cReg},
				phTerm,
			)
			*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: acc}

			latch := iv.incBlock
			deltaReg := f.NewValue()
			upd := []ir.Instr{
				{Op: ir.OpConst, Dst: deltaReg, Imm: iv.step * cval},
				{Op: ir.OpAdd, Dst: acc, X: acc, Y: deltaReg},
			}
			pos := iv.incIdx + 1
			rest := append([]ir.Instr{}, latch.Instrs[pos:]...)
			latch.Instrs = append(latch.Instrs[:pos], upd...)
			latch.Instrs = append(latch.Instrs, rest...)
			return true
		}
	}
	return false
}
