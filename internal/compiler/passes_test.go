package compiler

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
)

// lowerAndClean parses, lowers and cleans a program, returning one function.
func lowerAndClean(t *testing.T, src, fn string) (*ir.Program, *ir.Func) {
	t.Helper()
	p, err := Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	CleanupProgram(p)
	f := p.Func(fn)
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	return p, f
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestCleanupFoldsConstants(t *testing.T) {
	_, f := lowerAndClean(t, `int main() { return 2 + 3 * 4; }`, "main")
	// Everything folds to a single const + ret.
	if got := f.Entry.Instrs; len(got) != 2 || got[0].Op != ir.OpConst || got[0].Imm != 14 {
		t.Fatalf("expected folded const 14:\n%s", f.String())
	}
}

func TestCleanupFoldsBranches(t *testing.T) {
	_, f := lowerAndClean(t, `int main() { if (1 < 2) { return 5; } return 6; }`, "main")
	if len(f.Blocks) != 1 {
		t.Fatalf("constant branch should collapse to one block:\n%s", f.String())
	}
	if f.Entry.Term().Op != ir.OpRet {
		t.Fatal("should end in ret")
	}
}

func TestCleanupAlgebraicIdentities(t *testing.T) {
	_, f := lowerAndClean(t, `
int main() {
	int x = 7;
	int a = x * 1;
	int b = x + 0;
	int c = x * 0;
	return a + b + c;
}`, "main")
	if countOps(f, ir.OpMul) != 0 {
		t.Fatalf("x*1 and x*0 should fold:\n%s", f.String())
	}
}

func TestCleanupDCE(t *testing.T) {
	_, f := lowerAndClean(t, `
int main() {
	int unused = 4 * 100;
	return 3;
}`, "main")
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpConst && b.Instrs[i].Imm == 400 {
				t.Fatalf("dead computation survived:\n%s", f.String())
			}
		}
	}
}

func TestCoalesceExposesIVPattern(t *testing.T) {
	_, f := lowerAndClean(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i = i + 1) {
		s = s + i;
	}
	return s;
}`, "main")
	// After coalescing, the increment should be `i = add i, c` directly:
	// find an add whose dst equals one of its operands.
	found := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpAdd && (in.Dst == in.X || in.Dst == in.Y) {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("coalescing should produce self-add IV increment:\n%s", f.String())
	}
}

const loopSumSrc = `
int data[256];
int main() {
	int s = 0;
	for (int i = 0; i < 256; i = i + 1) {
		s = s + data[i] * 3;
	}
	return s;
}`

func TestStrengthReduceRemovesLoopMul(t *testing.T) {
	_, f := lowerAndClean(t, loopSumSrc, "main")
	GCSE(f)
	LICM(f)
	inLoopMuls := func() int {
		dom := ir.ComputeDominators(f)
		n := 0
		for _, l := range ir.FindLoops(f, dom) {
			for b := range l.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpMul {
						n++
					}
				}
			}
		}
		return n
	}
	before := inLoopMuls()
	StrengthReduce(f)
	after := inLoopMuls()
	// The address multiply (i*8) moves to the preheader as the
	// accumulator init; only the data multiply (data[i]*3, not an IV
	// multiply) stays in the loop.
	if after >= before {
		t.Fatalf("in-loop muls before=%d after=%d:\n%s", before, after, f.String())
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	src := `
int g;
int main() {
	int s = 0;
	int a = 12;
	int b = 34;
	for (int i = 0; i < 100; i = i + 1) {
		s = s + (a * b + 7) + i;
	}
	return s;
}`
	_, f := lowerAndClean(t, src, "main")
	LICM(f)
	dom := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	for b := range loops[0].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpMul {
				t.Fatalf("invariant a*b not hoisted:\n%s", f.String())
			}
		}
	}
}

func TestGCSEEliminatesRedundantExpr(t *testing.T) {
	src := `
int a[16];
int main() {
	int i = 5;
	int x = a[i];
	int y = a[i];
	return x + y;
}`
	_, f := lowerAndClean(t, src, "main")
	loadsBefore := countOps(f, ir.OpLoad)
	GCSE(f)
	loadsAfter := countOps(f, ir.OpLoad)
	if loadsAfter >= loadsBefore {
		t.Fatalf("redundant load not eliminated: %d -> %d\n%s", loadsBefore, loadsAfter, f.String())
	}
}

func TestGCSERespectsStores(t *testing.T) {
	src := `
int a[16];
int main() {
	int x = a[3];
	a[3] = x + 1;
	int y = a[3];
	return x + y;
}`
	_, f := lowerAndClean(t, src, "main")
	GCSE(f)
	if countOps(f, ir.OpLoad) < 2 {
		t.Fatalf("load after store must not be CSEd:\n%s", f.String())
	}
}

func TestInlineSplicesSmallCallee(t *testing.T) {
	src := `
int sq(int x) { return x * x; }
int main() { return sq(9) + sq(4); }`
	p, _ := lowerAndClean(t, src, "main")
	opts := O2()
	opts.InlineFunctions = true
	opts = opts.withDefaults()
	Inline(p, opts)
	CleanupProgram(p)
	f := p.Func("main")
	if countOps(f, ir.OpCall) != 0 {
		t.Fatalf("small callee not inlined:\n%s", f.String())
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestInlineRespectsSizeThreshold(t *testing.T) {
	// A callee bigger than max-inline-insns-auto must stay a call.
	var sb strings.Builder
	sb.WriteString("int big(int x) {\n int s = x;\n")
	for i := 0; i < 80; i++ {
		sb.WriteString(" s = s * 3 + 1;\n s = s / 2 + 5;\n")
	}
	sb.WriteString(" return s;\n}\nint main() { return big(3); }")
	p, _ := lowerAndClean(t, sb.String(), "main")
	opts := O2()
	opts.InlineFunctions = true
	opts.MaxInlineInsnsAuto = 50
	opts = opts.withDefaults()
	Inline(p, opts)
	f := p.Func("main")
	if countOps(f, ir.OpCall) == 0 {
		t.Fatal("oversized callee should not inline at threshold 50")
	}
	opts.MaxInlineInsnsAuto = 150
	big := p.Func("big")
	if big.InstrCount() > 400 {
		t.Skip("callee larger than intended")
	}
}

func TestInlineUnitGrowthBudget(t *testing.T) {
	// Many call sites of a mid-size callee: a small growth budget limits
	// how many get inlined.
	var sb strings.Builder
	sb.WriteString("int f(int x) { int s = x; for (int i = 0; i < 3; i = i + 1) { s = s * 5 + i; } return s; }\n")
	sb.WriteString("int main() {\n int t = 0;\n")
	for i := 0; i < 12; i++ {
		sb.WriteString(" t = t + f(t);\n")
	}
	sb.WriteString(" return t;\n}")
	src := sb.String()

	count := func(growth int) int {
		p, _ := lowerAndClean(t, src, "main")
		opts := O2()
		opts.InlineFunctions = true
		opts.InlineUnitGrowth = growth
		opts = opts.withDefaults()
		Inline(p, opts)
		return countOps(p.Func("main"), ir.OpCall)
	}
	tight := count(25)
	loose := count(75)
	if loose > tight {
		t.Fatalf("looser growth budget should inline at least as many: tight=%d loose=%d", tight, loose)
	}
	if tight == 0 {
		t.Log("tight budget inlined everything (callee shrink-eligible); acceptable")
	}
}

func TestUnrollCreatesRemainderLoop(t *testing.T) {
	_, f := lowerAndClean(t, loopSumSrc, "main")
	opts := O2()
	opts.UnrollLoops = true
	opts.MaxUnrollTimes = 4
	opts = opts.withDefaults()
	blocksBefore := len(f.Blocks)
	Unroll(f, opts)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) <= blocksBefore {
		t.Fatalf("unroll did not fire:\n%s", f.String())
	}
	dom := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dom)
	if len(loops) != 2 {
		t.Fatalf("expected unrolled + remainder loop, got %d loops", len(loops))
	}
}

func TestUnrollHonorsMaxUnrolledInsns(t *testing.T) {
	// A loop body bigger than the threshold must not unroll.
	var sb strings.Builder
	sb.WriteString("int a[512];\nint main() {\n int s = 0;\n for (int i = 0; i < 500; i = i + 1) {\n")
	for j := 0; j < 40; j++ {
		sb.WriteString(" s = s + a[i] * 3 - 1;\n")
	}
	sb.WriteString(" }\n return s;\n}")
	_, f := lowerAndClean(t, sb.String(), "main")
	opts := O2()
	opts.UnrollLoops = true
	opts.MaxUnrollTimes = 8
	opts.MaxUnrolledInsns = 100
	opts = opts.withDefaults()
	bodySize := f.InstrCount()
	Unroll(f, opts)
	// Growth should be nil (loop too big) or tiny.
	if f.InstrCount() > bodySize+10 {
		t.Fatalf("oversized loop should not unroll: %d -> %d", bodySize, f.InstrCount())
	}
}

func TestPrefetchInsertion(t *testing.T) {
	_, f := lowerAndClean(t, loopSumSrc, "main")
	GCSE(f)
	LICM(f)
	InsertPrefetches(f)
	if countOps(f, ir.OpPrefetch) == 0 {
		t.Fatalf("no prefetch inserted:\n%s", f.String())
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchSkipsInvariantLoads(t *testing.T) {
	src := `
int g;
int main() {
	int s = 0;
	for (int i = 0; i < 50; i = i + 1) {
		s = s + g;
	}
	return s;
}`
	_, f := lowerAndClean(t, src, "main")
	// Keep the load of g inside the loop (no LICM) but note its address
	// is loop-invariant: no prefetch should be added.
	InsertPrefetches(f)
	if countOps(f, ir.OpPrefetch) != 0 {
		t.Fatalf("invariant-address load should not be prefetched:\n%s", f.String())
	}
}

func TestScheduleIRPreservesSemanticsAndReorders(t *testing.T) {
	src := `
int a[64];
int main() {
	int s = 0;
	for (int i = 0; i < 64; i = i + 1) {
		int x = a[i];
		int y = x * 3;
		int z = a[i] + 1;
		s = s + y * z;
	}
	return s;
}`
	_, f := lowerAndClean(t, src, "main")
	GCSE(f)
	before := f.String()
	ScheduleIR(f, 4)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	after := f.String()
	if before == after {
		t.Log("schedule produced identical order (acceptable but unusual)")
	}
}

func TestAllocateRespectsRegisterBudget(t *testing.T) {
	_, f := lowerAndClean(t, loopSumSrc, "main")
	alloc := Allocate(f, true)
	seen := map[int16]bool{}
	for _, r := range alloc.Reg {
		if r < 0 {
			continue
		}
		seen[r] = true
		valid := false
		for _, a := range allocatableRegs(true) {
			if r == a {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("allocated non-allocatable register r%d", r)
		}
	}
	// With FP kept, r3 must never be allocated.
	alloc2 := Allocate(f, false)
	for _, r := range alloc2.Reg {
		if r == 3 {
			t.Fatal("frame pointer allocated while in use")
		}
	}
}

func TestAllocateNoOverlappingAssignments(t *testing.T) {
	// Two simultaneously live values must not share a register.
	src := `
int main() {
	int a = 1;
	int b = 2;
	int c = a + b;
	int d = a * b;
	return c + d + a + b;
}`
	_, f := lowerAndClean(t, src, "main")
	alloc := Allocate(f, true)
	lv := ir.ComputeLiveness(f)
	for _, b := range f.Blocks {
		live := lv.LiveAcross(b)
		for i := range b.Instrs {
			regs := map[int16]ir.Value{}
			for v := ir.Value(0); int(v) < f.NumValues(); v++ {
				if !live[i].Has(v) {
					continue
				}
				r := alloc.Reg[v]
				if r < 0 {
					continue
				}
				if prev, clash := regs[r]; clash {
					t.Fatalf("values v%d and v%d share r%d while both live", prev, v, r)
				}
				regs[r] = v
			}
		}
	}
}

func TestLayoutReorderPutsHotPathFirst(t *testing.T) {
	src := `
int a[128];
int main() {
	int s = 0;
	for (int i = 0; i < 128; i = i + 1) {
		if (i % 17 == 0) {
			s = s - 1;
		} else {
			s = s + a[i];
		}
	}
	return s;
}`
	prog, _, err := CompileSource(src, O2())
	if err != nil {
		t.Fatal(err)
	}
	// Semantics preserved either way is covered elsewhere; here compare
	// taken-branch behaviour indirectly via code size equality.
	noreorder := O2()
	noreorder.ReorderBlocks = false
	prog2, _, err := CompileSource(src, noreorder)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Instrs) == 0 || len(prog2.Instrs) == 0 {
		t.Fatal("empty programs")
	}
}
