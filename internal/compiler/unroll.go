package compiler

import "repro/internal/ir"

// Unroll performs counted-loop unrolling (-funroll-loops) governed by two
// heuristics from the paper: max-unroll-times caps the unroll factor, and
// max-unrolled-insns caps the size of a loop considered for unrolling.
//
// Eligible loops have the canonical two-block shape produced by the frontend
// after cleanup — a header testing `iv < bound` (or <=) and a straight-line
// latch containing the single increment `iv = iv + step` — with one back
// edge. The transformation builds an unrolled loop guarded by an adjusted
// bound and keeps the original loop as the remainder:
//
//	preheader: bound' = bound - (F-1)*step
//	uheader:   if iv < bound' goto ubody else header
//	ubody:     F renamed copies of the latch body; copy-backs; goto uheader
//	header:    original test (remainder loop)
//
// Register renaming across copies exposes independent work to the scheduler
// and the out-of-order core, at the cost of live-range pressure — the
// non-monotone response the paper's Figure 3 shows.
func Unroll(f *ir.Func, opts Options) {
	// One unrolling sweep; nested re-unrolling of the generated loops is
	// deliberately not attempted (matching gcc's single-pass unroller).
	f.RemoveUnreachable()
	dom := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dom)
	var done []*ir.Block // headers of loops already transformed
	for _, l := range loops {
		skip := false
		for _, h := range done {
			if l.Contains(h) || l.Header == h {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if unrollLoop(f, l, opts) {
			done = append(done, l.Header)
		}
	}
	Cleanup(f)
}

// hoistHeaderConstants moves single-def OpConst and OpAddr instructions out
// of the loop header into the preheader. Returns whether anything moved.
func hoistHeaderConstants(f *ir.Func, l *ir.Loop) bool {
	defCounts := f.DefCounts()
	var hoisted []ir.Instr
	kept := l.Header.Instrs[:0]
	for i := range l.Header.Instrs {
		in := l.Header.Instrs[i]
		if (in.Op == ir.OpConst || in.Op == ir.OpAddr) && defCounts[in.Dst] == 1 {
			hoisted = append(hoisted, in)
			continue
		}
		kept = append(kept, in)
	}
	if len(hoisted) == 0 {
		return false
	}
	l.Header.Instrs = kept
	ph := ensurePreheader(f, l)
	term := ph.Instrs[len(ph.Instrs)-1]
	ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1], hoisted...)
	ph.Instrs = append(ph.Instrs, term)
	return true
}

func unrollLoop(f *ir.Func, l *ir.Loop, opts Options) bool {
	if len(l.Blocks) != 2 || !singleBackEdge(l) {
		return false
	}
	header, latch := l.Header, l.Latch
	if latch == header || !l.Contains(latch) {
		return false
	}
	// Header: body of pure instrs, compare, br with succs[0]=latch (in
	// loop) and succs[1]=exit.
	hterm := header.Term()
	if hterm == nil || hterm.Op != ir.OpBr {
		return false
	}
	if len(header.Succs) != 2 || header.Succs[0] != latch || l.Contains(header.Succs[1]) {
		return false
	}
	// Latch: straight line ending in jmp header.
	lterm := latch.Term()
	if lterm == nil || lterm.Op != ir.OpJmp || latch.Succs[0] != header {
		return false
	}
	// Find the compare feeding the branch: `c = lt/le iv, bound`, defined
	// in the header.
	var cmp *ir.Instr
	for i := range header.Instrs {
		in := &header.Instrs[i]
		if in.Dst == hterm.X && (in.Op == ir.OpLt || in.Op == ir.OpLe) {
			cmp = in
		}
	}
	if cmp == nil {
		return false
	}
	// Canonicalize: a constant bound materialized in the header (`n =
	// const ...`) blocks eligibility only syntactically; hoist such
	// single-def constants to the preheader first (loop canonicalization,
	// as gcc's unroller does via loop-invariant motion).
	if hoistHeaderConstants(f, l) {
		cmp = nil
		for i := range header.Instrs {
			in := &header.Instrs[i]
			if in.Dst == hterm.X && (in.Op == ir.OpLt || in.Op == ir.OpLe) {
				cmp = in
			}
		}
		if cmp == nil {
			return false
		}
	}
	iv, bound := cmp.X, cmp.Y
	inLoop := loopDefs(l)
	if inLoop[bound] {
		return false
	}
	// The IV must have exactly one in-loop definition: `iv = add iv, step`
	// in the latch, step a positive constant.
	ivDefs := 0
	for b := range l.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Def() == iv {
				ivDefs++
			}
		}
	}
	if ivDefs != 1 {
		return false
	}
	consts, _ := constValues(f)
	var step int64
	found := false
	for i := range latch.Instrs {
		in := &latch.Instrs[i]
		if in.Def() != iv {
			continue
		}
		if in.Op != ir.OpAdd {
			return false
		}
		var stepVal ir.Value
		switch {
		case in.X == iv:
			stepVal = in.Y
		case in.Y == iv:
			stepVal = in.X
		default:
			return false
		}
		c, ok := consts[stepVal]
		if !ok || c <= 0 {
			return false
		}
		step = c
		found = true
	}
	if !found {
		return false
	}
	// The unrolled copies skip the header, so the body must not consume
	// values computed there (the header normally only computes the exit
	// test).
	headerDefs := map[ir.Value]bool{}
	for i := range header.Instrs {
		if d := header.Instrs[i].Def(); d != ir.NoValue {
			headerDefs[d] = true
		}
	}
	var ubuf []ir.Value
	for i := range latch.Instrs {
		for _, u := range latch.Instrs[i].Uses(ubuf[:0]) {
			if headerDefs[u] {
				return false
			}
		}
	}
	body := latch.Body()
	bodySize := len(body)
	if bodySize == 0 || bodySize > opts.MaxUnrolledInsns {
		return false
	}
	factor := opts.MaxUnrollTimes
	if m := opts.MaxUnrolledInsns / bodySize; m < factor {
		factor = m
	}
	if factor < 2 {
		return false
	}

	// Values needing copy-back at the end of the unrolled body: defs that
	// are live around the back edge (live into the header). Everything
	// else is iteration-local and its renamed copies simply die.
	liveAtHeader := ir.ComputeLiveness(f).In[header]

	ph := ensurePreheader(f, l)
	uheader := f.NewBlock()
	ubody := f.NewBlock()
	uheader.Freq = header.Freq
	ubody.Freq = latch.Freq

	// Preheader: bound' = bound - (F-1)*step; redirect to uheader.
	adj := f.NewValue()
	adjC := f.NewValue()
	phTerm := ph.Instrs[len(ph.Instrs)-1]
	ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1],
		ir.Instr{Op: ir.OpConst, Dst: adjC, Imm: int64(factor-1) * step},
		ir.Instr{Op: ir.OpSub, Dst: adj, X: bound, Y: adjC},
		phTerm,
	)
	for si, s := range ph.Succs {
		if s == header {
			ph.Succs[si] = uheader
		}
	}

	// uheader: uc = cmp.Op(iv, adj); br uc -> ubody, header.
	uc := f.NewValue()
	uheader.Instrs = []ir.Instr{
		{Op: cmp.Op, Dst: uc, X: iv, Y: adj},
		{Op: ir.OpBr, X: uc},
	}
	uheader.Succs = []*ir.Block{ubody, header}

	// ubody: F renamed copies of the latch body, then copy-backs, then a
	// jump back to uheader.
	cur := map[ir.Value]ir.Value{}
	resolve := func(v ir.Value) ir.Value {
		if v == ir.NoValue {
			return v
		}
		if r, ok := cur[v]; ok {
			return r
		}
		return v
	}
	var defOrder []ir.Value
	defSeen := map[ir.Value]bool{}
	for k := 0; k < factor; k++ {
		for i := range body {
			in := body[i]
			ni := in
			ni.X = resolve(in.X)
			ni.Y = resolve(in.Y)
			if len(in.Args) > 0 {
				ni.Args = make([]ir.Value, len(in.Args))
				for j, a := range in.Args {
					ni.Args[j] = resolve(a)
				}
			}
			if d := in.Def(); d != ir.NoValue {
				nd := f.NewValue()
				ni.Dst = nd
				cur[d] = nd
				if !defSeen[d] && liveAtHeader.Has(d) {
					defSeen[d] = true
					defOrder = append(defOrder, d)
				}
			}
			ubody.Instrs = append(ubody.Instrs, ni)
		}
	}
	for _, d := range defOrder {
		ubody.Instrs = append(ubody.Instrs, ir.Instr{Op: ir.OpCopy, Dst: d, X: cur[d]})
	}
	ubody.Instrs = append(ubody.Instrs, ir.Instr{Op: ir.OpJmp})
	ubody.Succs = []*ir.Block{uheader}

	f.RecomputePreds()
	f.RemoveUnreachable()
	return true
}
