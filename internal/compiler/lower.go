package compiler

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// Lower translates a checked MiniC program into IR. Logical && and || become
// short-circuit control flow; every MiniC local maps to one virtual register.
func Lower(prog *lang.Program) (*ir.Program, error) {
	out := &ir.Program{}
	for _, g := range prog.Globals {
		words := g.Size
		if words == 0 {
			words = 1
		}
		out.Globals = append(out.Globals, ir.Global{Name: g.Name, Words: words, Init: g.Init})
	}
	for _, f := range prog.Funcs {
		fn, err := lowerFunc(f)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, fn)
	}
	if err := ir.VerifyProgram(out); err != nil {
		return nil, fmt.Errorf("compiler: lowering produced invalid IR: %w", err)
	}
	return out, nil
}

type lowerer struct {
	f      *ir.Func
	cur    *ir.Block
	scopes []map[string]ir.Value

	// loop stack for break/continue targets
	breakTo    []*ir.Block
	continueTo []*ir.Block
}

func lowerFunc(fd *lang.FuncDecl) (*ir.Func, error) {
	l := &lowerer{f: ir.NewFunc(fd.Name, len(fd.Params))}
	l.cur = l.f.Entry
	l.pushScope()
	for i, p := range fd.Params {
		l.scopes[0][p] = l.f.Params[i]
	}
	l.block(fd.Body)
	// A function that falls off the end returns 0.
	if l.cur != nil {
		zero := l.emitConst(0)
		l.emit(ir.Instr{Op: ir.OpRet, X: zero})
		l.cur = nil
	}
	l.f.RemoveUnreachable()
	return l.f, nil
}

func (l *lowerer) pushScope() { l.scopes = append(l.scopes, map[string]ir.Value{}) }
func (l *lowerer) popScope()  { l.scopes = l.scopes[:len(l.scopes)-1] }

func (l *lowerer) lookup(name string) (ir.Value, bool) {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		if v, ok := l.scopes[i][name]; ok {
			return v, true
		}
	}
	return ir.NoValue, false
}

// emit appends an instruction to the current block. Emitting into a dead
// context (after a terminator) is a no-op.
func (l *lowerer) emit(in ir.Instr) {
	if l.cur == nil {
		return
	}
	l.cur.Instrs = append(l.cur.Instrs, in)
}

func (l *lowerer) emitConst(v int64) ir.Value {
	dst := l.f.NewValue()
	l.emit(ir.Instr{Op: ir.OpConst, Dst: dst, Imm: v})
	return dst
}

// terminate ends the current block with the given terminator and successors.
func (l *lowerer) terminate(in ir.Instr, succs ...*ir.Block) {
	if l.cur == nil {
		return
	}
	l.cur.Instrs = append(l.cur.Instrs, in)
	for _, s := range succs {
		ir.Connect(l.cur, s)
	}
	l.cur = nil
}

func (l *lowerer) startBlock(b *ir.Block) { l.cur = b }

func (l *lowerer) block(b *lang.BlockStmt) {
	l.pushScope()
	for _, s := range b.Stmts {
		l.stmt(s)
		if l.cur == nil {
			break // unreachable code after return/break/continue
		}
	}
	l.popScope()
}

func (l *lowerer) stmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		l.block(s)
	case *lang.VarDeclStmt:
		v := l.f.NewValue()
		if s.Init != nil {
			init := l.expr(s.Init)
			l.emit(ir.Instr{Op: ir.OpCopy, Dst: v, X: init})
		} else {
			l.emit(ir.Instr{Op: ir.OpConst, Dst: v, Imm: 0})
		}
		l.scopes[len(l.scopes)-1][s.Name] = v
	case *lang.AssignStmt:
		l.assign(s)
	case *lang.IfStmt:
		l.ifStmt(s)
	case *lang.WhileStmt:
		l.whileStmt(s)
	case *lang.ForStmt:
		l.forStmt(s)
	case *lang.ReturnStmt:
		var v ir.Value = ir.NoValue
		if s.Value != nil {
			v = l.expr(s.Value)
		}
		l.terminate(ir.Instr{Op: ir.OpRet, X: v})
	case *lang.BreakStmt:
		l.terminate(ir.Instr{Op: ir.OpJmp}, l.breakTo[len(l.breakTo)-1])
	case *lang.ContinueStmt:
		l.terminate(ir.Instr{Op: ir.OpJmp}, l.continueTo[len(l.continueTo)-1])
	case *lang.ExprStmt:
		l.expr(s.X)
	default:
		panic(fmt.Sprintf("compiler: unknown statement %T", s))
	}
}

func (l *lowerer) assign(s *lang.AssignStmt) {
	if s.Index == nil {
		if v, ok := l.lookup(s.Name); ok {
			val := l.expr(s.Value)
			l.emit(ir.Instr{Op: ir.OpCopy, Dst: v, X: val})
			return
		}
		// Global scalar: store to its address.
		val := l.expr(s.Value)
		addr := l.f.NewValue()
		l.emit(ir.Instr{Op: ir.OpAddr, Dst: addr, Sym: s.Name})
		l.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: val})
		return
	}
	addr := l.arrayAddr(s.Name, s.Index)
	val := l.expr(s.Value)
	l.emit(ir.Instr{Op: ir.OpStore, X: addr, Y: val})
}

// arrayAddr computes &name[index] as base + index*8.
func (l *lowerer) arrayAddr(name string, index lang.Expr) ir.Value {
	idx := l.expr(index)
	base := l.f.NewValue()
	l.emit(ir.Instr{Op: ir.OpAddr, Dst: base, Sym: name})
	eight := l.emitConst(8)
	off := l.f.NewValue()
	l.emit(ir.Instr{Op: ir.OpMul, Dst: off, X: idx, Y: eight})
	addr := l.f.NewValue()
	l.emit(ir.Instr{Op: ir.OpAdd, Dst: addr, X: base, Y: off})
	return addr
}

func (l *lowerer) ifStmt(s *lang.IfStmt) {
	thenB := l.f.NewBlock()
	var elseB *ir.Block
	join := l.f.NewBlock()
	if s.Else != nil {
		elseB = l.f.NewBlock()
	} else {
		elseB = join
	}
	cond := l.expr(s.Cond)
	l.terminate(ir.Instr{Op: ir.OpBr, X: cond}, thenB, elseB)

	l.startBlock(thenB)
	l.block(s.Then)
	l.terminate(ir.Instr{Op: ir.OpJmp}, join)

	if s.Else != nil {
		l.startBlock(elseB)
		l.block(s.Else)
		l.terminate(ir.Instr{Op: ir.OpJmp}, join)
	}
	l.startBlock(join)
}

func (l *lowerer) whileStmt(s *lang.WhileStmt) {
	header := l.f.NewBlock()
	body := l.f.NewBlock()
	exit := l.f.NewBlock()

	l.terminate(ir.Instr{Op: ir.OpJmp}, header)

	l.startBlock(header)
	cond := l.expr(s.Cond)
	l.terminate(ir.Instr{Op: ir.OpBr, X: cond}, body, exit)

	l.breakTo = append(l.breakTo, exit)
	l.continueTo = append(l.continueTo, header)
	l.startBlock(body)
	l.block(s.Body)
	l.terminate(ir.Instr{Op: ir.OpJmp}, header)
	l.breakTo = l.breakTo[:len(l.breakTo)-1]
	l.continueTo = l.continueTo[:len(l.continueTo)-1]

	l.startBlock(exit)
}

func (l *lowerer) forStmt(s *lang.ForStmt) {
	l.pushScope() // scope for the init declaration
	if s.Init != nil {
		l.stmt(s.Init)
	}
	header := l.f.NewBlock()
	body := l.f.NewBlock()
	post := l.f.NewBlock()
	exit := l.f.NewBlock()

	l.terminate(ir.Instr{Op: ir.OpJmp}, header)

	l.startBlock(header)
	if s.Cond != nil {
		cond := l.expr(s.Cond)
		l.terminate(ir.Instr{Op: ir.OpBr, X: cond}, body, exit)
	} else {
		l.terminate(ir.Instr{Op: ir.OpJmp}, body)
	}

	l.breakTo = append(l.breakTo, exit)
	l.continueTo = append(l.continueTo, post)
	l.startBlock(body)
	l.block(s.Body)
	l.terminate(ir.Instr{Op: ir.OpJmp}, post)
	l.breakTo = l.breakTo[:len(l.breakTo)-1]
	l.continueTo = l.continueTo[:len(l.continueTo)-1]

	l.startBlock(post)
	if s.Post != nil {
		l.stmt(s.Post)
	}
	l.terminate(ir.Instr{Op: ir.OpJmp}, header)

	l.startBlock(exit)
	l.popScope()
}

var binOpMap = map[lang.BinOp]ir.Op{
	lang.OpAdd: ir.OpAdd, lang.OpSub: ir.OpSub, lang.OpMul: ir.OpMul,
	lang.OpDiv: ir.OpDiv, lang.OpRem: ir.OpRem, lang.OpAnd: ir.OpAnd,
	lang.OpOr: ir.OpOr, lang.OpXor: ir.OpXor, lang.OpShl: ir.OpShl,
	lang.OpShr: ir.OpShr, lang.OpLt: ir.OpLt, lang.OpLe: ir.OpLe,
	lang.OpEq: ir.OpEq, lang.OpNe: ir.OpNe,
}

func (l *lowerer) expr(e lang.Expr) ir.Value {
	if l.cur == nil {
		return ir.NoValue
	}
	switch e := e.(type) {
	case *lang.NumExpr:
		return l.emitConst(e.Val)
	case *lang.VarExpr:
		if v, ok := l.lookup(e.Name); ok {
			return v
		}
		addr := l.f.NewValue()
		l.emit(ir.Instr{Op: ir.OpAddr, Dst: addr, Sym: e.Name})
		dst := l.f.NewValue()
		l.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, X: addr})
		return dst
	case *lang.IndexExpr:
		addr := l.arrayAddr(e.Name, e.Index)
		dst := l.f.NewValue()
		l.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, X: addr})
		return dst
	case *lang.UnaryExpr:
		x := l.expr(e.X)
		dst := l.f.NewValue()
		if e.Neg {
			zero := l.emitConst(0)
			l.emit(ir.Instr{Op: ir.OpSub, Dst: dst, X: zero, Y: x})
		} else {
			zero := l.emitConst(0)
			l.emit(ir.Instr{Op: ir.OpEq, Dst: dst, X: x, Y: zero})
		}
		return dst
	case *lang.CallExpr:
		args := make([]ir.Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = l.expr(a)
		}
		dst := l.f.NewValue()
		l.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Sym: e.Name, Args: args})
		return dst
	case *lang.BinExpr:
		switch e.Op {
		case lang.OpLAnd, lang.OpLOr:
			return l.shortCircuit(e)
		case lang.OpGt: // a > b  ==>  b < a
			x, y := l.expr(e.X), l.expr(e.Y)
			dst := l.f.NewValue()
			l.emit(ir.Instr{Op: ir.OpLt, Dst: dst, X: y, Y: x})
			return dst
		case lang.OpGe: // a >= b  ==>  b <= a
			x, y := l.expr(e.X), l.expr(e.Y)
			dst := l.f.NewValue()
			l.emit(ir.Instr{Op: ir.OpLe, Dst: dst, X: y, Y: x})
			return dst
		default:
			x, y := l.expr(e.X), l.expr(e.Y)
			dst := l.f.NewValue()
			l.emit(ir.Instr{Op: binOpMap[e.Op], Dst: dst, X: x, Y: y})
			return dst
		}
	}
	panic(fmt.Sprintf("compiler: unknown expression %T", e))
}

// shortCircuit lowers && and || with control flow. The result register is
// multi-def (assigned on both paths).
func (l *lowerer) shortCircuit(e *lang.BinExpr) ir.Value {
	dst := l.f.NewValue()
	rhs := l.f.NewBlock()
	join := l.f.NewBlock()

	x := l.expr(e.X)
	zero := l.emitConst(0)
	xb := l.f.NewValue()
	l.emit(ir.Instr{Op: ir.OpNe, Dst: xb, X: x, Y: zero})
	l.emit(ir.Instr{Op: ir.OpCopy, Dst: dst, X: xb})
	if e.Op == lang.OpLAnd {
		// if x is true, evaluate rhs; else dst = 0 already.
		l.terminate(ir.Instr{Op: ir.OpBr, X: xb}, rhs, join)
	} else {
		// if x is true, dst = 1 already; else evaluate rhs.
		l.terminate(ir.Instr{Op: ir.OpBr, X: xb}, join, rhs)
	}

	l.startBlock(rhs)
	y := l.expr(e.Y)
	zero2 := l.emitConst(0)
	yb := l.f.NewValue()
	l.emit(ir.Instr{Op: ir.OpNe, Dst: yb, X: y, Y: zero2})
	l.emit(ir.Instr{Op: ir.OpCopy, Dst: dst, X: yb})
	l.terminate(ir.Instr{Op: ir.OpJmp}, join)

	l.startBlock(join)
	return dst
}
