package compiler

import (
	"repro/internal/ir"
)

// Cleanup runs the always-on scalar and CFG simplifications that gcc performs
// regardless of -O flags: constant folding, algebraic simplification, copy
// propagation, dead code elimination, branch folding and basic-block merging.
// Optimization passes call it between phases to keep the IR canonical.
func Cleanup(f *ir.Func) {
	for round := 0; round < 8; round++ {
		changed := foldConstants(f)
		changed = propagateCopies(f) || changed
		changed = coalesceCopies(f) || changed
		changed = eliminateDeadCode(f) || changed
		changed = simplifyCFG(f) || changed
		if !changed {
			return
		}
	}
}

// constValues returns the constant value of every single-def OpConst vreg.
func constValues(f *ir.Func) (map[ir.Value]int64, []int) {
	defs := f.DefCounts()
	consts := map[ir.Value]int64{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpConst && defs[in.Dst] == 1 {
				consts[in.Dst] = in.Imm
			}
		}
	}
	return consts, defs
}

func evalBinop(op ir.Op, x, y int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.OpAdd:
		return x + y, true
	case ir.OpSub:
		return x - y, true
	case ir.OpMul:
		return x * y, true
	case ir.OpDiv:
		if y == 0 {
			return 0, true
		}
		return x / y, true
	case ir.OpRem:
		if y == 0 {
			return 0, true
		}
		return x % y, true
	case ir.OpAnd:
		return x & y, true
	case ir.OpOr:
		return x | y, true
	case ir.OpXor:
		return x ^ y, true
	case ir.OpShl:
		return x << (uint64(y) & 63), true
	case ir.OpShr:
		return x >> (uint64(y) & 63), true
	case ir.OpLt:
		return b2i(x < y), true
	case ir.OpLe:
		return b2i(x <= y), true
	case ir.OpEq:
		return b2i(x == y), true
	case ir.OpNe:
		return b2i(x != y), true
	}
	return 0, false
}

func isPow2(v int64) (uint, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	var k uint
	for v > 1 {
		v >>= 1
		k++
	}
	return k, true
}

// foldConstants evaluates pure ops with constant operands and applies
// algebraic identities.
func foldConstants(f *ir.Func) bool {
	consts, _ := constValues(f)
	changed := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.Op.IsPure() || in.Op == ir.OpConst || in.Op == ir.OpCopy || in.Op == ir.OpAddr {
				continue
			}
			cx, okx := consts[in.X]
			cy, oky := consts[in.Y]
			if okx && oky {
				if v, ok := evalBinop(in.Op, cx, cy); ok {
					*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: v}
					changed = true
					continue
				}
			}
			// Algebraic identities with one constant operand.
			switch {
			case oky && cy == 0 && (in.Op == ir.OpAdd || in.Op == ir.OpSub ||
				in.Op == ir.OpOr || in.Op == ir.OpXor || in.Op == ir.OpShl || in.Op == ir.OpShr):
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: in.X}
				changed = true
			case okx && cx == 0 && (in.Op == ir.OpAdd || in.Op == ir.OpOr || in.Op == ir.OpXor):
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: in.Y}
				changed = true
			case oky && cy == 1 && (in.Op == ir.OpMul || in.Op == ir.OpDiv):
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: in.X}
				changed = true
			case okx && cx == 1 && in.Op == ir.OpMul:
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: in.Y}
				changed = true
			case (oky && cy == 0 || okx && cx == 0) && in.Op == ir.OpMul:
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: 0}
				changed = true
			}
		}
	}
	return changed
}

// propagateCopies rewrites uses of v, where v is single-def `v = copy x` and
// x is single-def, to use x directly.
func propagateCopies(f *ir.Func) bool {
	defs := f.DefCounts()
	repl := map[ir.Value]ir.Value{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpCopy && defs[in.Dst] == 1 && defs[in.X] == 1 && in.Dst != in.X {
				repl[in.Dst] = in.X
			}
		}
	}
	if len(repl) == 0 {
		return false
	}
	resolve := func(v ir.Value) ir.Value {
		for hops := 0; hops < 64; hops++ {
			r, ok := repl[v]
			if !ok {
				break
			}
			v = r
		}
		return v
	}
	changed := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			rw := func(v *ir.Value) {
				if *v == ir.NoValue {
					return
				}
				if r := resolve(*v); r != *v {
					*v = r
					changed = true
				}
			}
			switch in.Op {
			case ir.OpConst, ir.OpAddr, ir.OpNop, ir.OpJmp:
			case ir.OpCall:
				for j := range in.Args {
					rw(&in.Args[j])
				}
			case ir.OpStore:
				rw(&in.X)
				rw(&in.Y)
			case ir.OpCopy, ir.OpLoad, ir.OpPrefetch, ir.OpBr, ir.OpRet:
				rw(&in.X)
			default:
				rw(&in.X)
				rw(&in.Y)
			}
		}
	}
	return changed
}

// coalesceCopies rewrites the pattern
//
//	t = op ...   (t single-def, this copy is t's only use, same block)
//	a = copy t
//
// into `a = op ...`, deleting the copy — provided no instruction between the
// two defines or uses a. This collapses the temp+copy sequences the frontend
// emits for assignments to multi-definition variables (loop variables,
// accumulators), exposing the canonical `i = i + c` shape to the induction-
// variable passes.
func coalesceCopies(f *ir.Func) bool {
	defCounts := f.DefCounts()
	useCounts := make([]int, f.NumValues())
	var buf []ir.Value
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			for _, u := range b.Instrs[i].Uses(buf[:0]) {
				useCounts[u]++
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpCopy {
				continue
			}
			a, tv := in.Dst, in.X
			if a == tv || defCounts[tv] != 1 || useCounts[tv] != 1 {
				continue
			}
			// Find t's definition earlier in this block.
			defIdx := -1
			for j := i - 1; j >= 0; j-- {
				if b.Instrs[j].Def() == tv {
					defIdx = j
					break
				}
			}
			if defIdx < 0 || !b.Instrs[defIdx].Op.HasDst() {
				continue
			}
			// Nothing between may define or use a.
			clear := true
			for j := defIdx + 1; j < i && clear; j++ {
				mid := &b.Instrs[j]
				if mid.Def() == a {
					clear = false
					break
				}
				for _, u := range mid.Uses(buf[:0]) {
					if u == a {
						clear = false
						break
					}
				}
			}
			if !clear {
				continue
			}
			b.Instrs[defIdx].Dst = a
			*in = ir.Instr{Op: ir.OpNop}
			defCounts[tv] = 0
			useCounts[tv] = 0
			changed = true
		}
		if changed {
			// Drop the nops introduced above.
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				if b.Instrs[i].Op != ir.OpNop {
					kept = append(kept, b.Instrs[i])
				}
			}
			b.Instrs = kept
		}
	}
	return changed
}

// eliminateDeadCode removes pure instructions whose destination is never
// used anywhere in the function.
func eliminateDeadCode(f *ir.Func) bool {
	used := make([]bool, f.NumValues())
	var buf []ir.Value
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			buf = b.Instrs[i].Uses(buf[:0])
			for _, u := range buf {
				used[u] = true
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op.IsPure() && in.Def() != ir.NoValue && !used[in.Def()] {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

// simplifyCFG folds constant branches, removes empty forwarding blocks, and
// merges straight-line block pairs.
func simplifyCFG(f *ir.Func) bool {
	changed := false
	consts, _ := constValues(f)

	// Fold br on a constant condition into jmp.
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		c, ok := consts[term.X]
		if !ok {
			continue
		}
		keep := b.Succs[0]
		if c == 0 {
			keep = b.Succs[1]
		}
		*term = ir.Instr{Op: ir.OpJmp}
		b.Succs = []*ir.Block{keep}
		changed = true
	}
	if changed {
		f.RecomputePreds()
		f.RemoveUnreachable()
	}

	// Redirect edges that pass through empty jmp-only blocks.
	for _, b := range f.Blocks {
		for si, s := range b.Succs {
			for hops := 0; hops < 8; hops++ {
				if s == f.Entry || len(s.Instrs) != 1 || s.Term() == nil || s.Term().Op != ir.OpJmp || s == b {
					break
				}
				nxt := s.Succs[0]
				if nxt == s {
					break
				}
				b.Succs[si] = nxt
				s = nxt
				changed = true
			}
		}
	}
	f.RecomputePreds()
	f.RemoveUnreachable()

	// Merge b -> c when b ends in jmp, c's only pred is b, and c != entry.
	for {
		merged := false
		for _, b := range f.Blocks {
			term := b.Term()
			if term == nil || term.Op != ir.OpJmp {
				continue
			}
			c := b.Succs[0]
			if c == f.Entry || c == b || len(c.Preds) != 1 {
				continue
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], c.Instrs...)
			b.Succs = c.Succs
			c.Instrs = nil
			c.Succs = nil
			f.RecomputePreds()
			f.RemoveUnreachable()
			merged = true
			changed = true
			break
		}
		if !merged {
			break
		}
	}
	return changed
}

// CleanupProgram runs Cleanup on every function.
func CleanupProgram(p *ir.Program) {
	for _, f := range p.Funcs {
		Cleanup(f)
	}
}
