package compiler

import (
	"sort"

	"repro/internal/ir"
)

// Inline performs bottom-up function inlining driven by the paper's three
// heuristics:
//
//   - max-inline-insns-auto: a callee larger than this is never auto-inlined.
//   - inline-call-cost: the estimated instruction cost of performing a call;
//     callees no larger than this always shrink code and are inlined first.
//   - inline-unit-growth: the maximum percentage by which inlining may grow
//     the whole compilation unit.
//
// Call sites are ranked by (calleeSize − callCost) / blockFrequency, so small
// hot callees inline first, and inlining stops when the growth budget is
// exhausted — mirroring gcc's greedy inliner.
func Inline(p *ir.Program, opts Options) {
	baseline := p.InstrCount()
	budget := baseline * opts.InlineUnitGrowth / 100

	type site struct {
		caller *ir.Func
		block  *ir.Block
		idx    int
		callee *ir.Func
		score  float64
	}

	collect := func() []site {
		sizes := map[string]int{}
		for _, f := range p.Funcs {
			sizes[f.Name] = f.InstrCount()
		}
		var sites []site
		for _, f := range p.Funcs {
			dom := ir.ComputeDominators(f)
			loops := ir.FindLoops(f, dom)
			ir.EstimateFrequencies(f, loops)
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op != ir.OpCall {
						continue
					}
					callee := p.Func(in.Sym)
					if callee == nil || callee == f { // no self-inlining
						continue
					}
					sz := sizes[callee.Name]
					if sz > opts.MaxInlineInsnsAuto {
						continue
					}
					score := (float64(sz) - float64(opts.InlineCallCost)) / (b.Freq + 1)
					sites = append(sites, site{f, b, i, callee, score})
				}
			}
		}
		sort.SliceStable(sites, func(i, j int) bool { return sites[i].score < sites[j].score })
		return sites
	}

	grown := 0
	// Greedy: take the best affordable site, splice, recollect. The splice
	// bound keeps pathological mutual recursion from ping-ponging forever.
	maxSplices := 64 + baseline/4
	for splice := 0; splice < maxSplices; splice++ {
		progressed := false
		for _, s := range collect() {
			growth := s.callee.InstrCount() - opts.InlineCallCost
			if growth > 0 && grown+growth > budget {
				continue
			}
			if !stillValid(s.caller, s.block, s.idx, s.callee.Name) {
				continue
			}
			spliceCall(s.caller, s.block, s.idx, s.callee)
			Cleanup(s.caller)
			if growth > 0 {
				grown += growth
			}
			progressed = true
			break
		}
		if !progressed {
			return
		}
	}
}

func stillValid(f *ir.Func, b *ir.Block, idx int, sym string) bool {
	for _, fb := range f.Blocks {
		if fb == b {
			return idx < len(b.Instrs) && b.Instrs[idx].Op == ir.OpCall && b.Instrs[idx].Sym == sym
		}
	}
	return false
}

// spliceCall replaces the call instruction at block[idx] with a copy of the
// callee's body. The caller block is split at the call; cloned callee blocks
// are rewired between the halves; returns become jumps to the continuation
// with a copy into the call's destination register.
func spliceCall(caller *ir.Func, b *ir.Block, idx int, callee *ir.Func) {
	call := b.Instrs[idx] // copy before we mutate

	// Map callee values to fresh caller values.
	vmap := make([]ir.Value, callee.NumValues())
	for i := range vmap {
		vmap[i] = caller.NewValue()
	}
	mv := func(v ir.Value) ir.Value {
		if v == ir.NoValue {
			return ir.NoValue
		}
		return vmap[v]
	}

	// Split b: cont gets the instructions after the call and b's successors.
	cont := caller.NewBlock()
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)
	cont.Succs = b.Succs
	for _, s := range cont.Succs {
		for pi, p := range s.Preds {
			if p == b {
				s.Preds[pi] = cont
			}
		}
	}
	b.Instrs = b.Instrs[:idx]
	b.Succs = nil

	// Argument copies: vmap[param] = arg.
	for i, param := range callee.Params {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpCopy, Dst: mv(param), X: call.Args[i]})
	}

	// Clone callee blocks.
	bmap := map[*ir.Block]*ir.Block{}
	for _, cb := range callee.Blocks {
		bmap[cb] = caller.NewBlock()
	}
	for _, cb := range callee.Blocks {
		nb := bmap[cb]
		for i := range cb.Instrs {
			in := cb.Instrs[i]
			switch in.Op {
			case ir.OpRet:
				// dst = retval; jmp cont
				if in.X != ir.NoValue {
					nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpCopy, Dst: call.Dst, X: mv(in.X)})
				} else {
					nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpConst, Dst: call.Dst, Imm: 0})
				}
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpJmp})
				ir.Connect(nb, cont)
			default:
				ni := in
				ni.Dst = mv(in.Dst)
				ni.X = mv(in.X)
				ni.Y = mv(in.Y)
				if len(in.Args) > 0 {
					ni.Args = make([]ir.Value, len(in.Args))
					for j, a := range in.Args {
						ni.Args[j] = mv(a)
					}
				}
				nb.Instrs = append(nb.Instrs, ni)
			}
		}
		for _, s := range cb.Succs {
			ir.Connect(nb, bmap[s])
		}
	}

	// Jump from b into the cloned entry.
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpJmp})
	ir.Connect(b, bmap[callee.Entry])
	caller.RecomputePreds()
	caller.RemoveUnreachable()
}
