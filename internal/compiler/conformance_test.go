package compiler

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// runExpr compiles `return <expr>;` at O0 and O3 and checks both equal want.
func runExpr(t *testing.T, decl, expr string, want int64) {
	t.Helper()
	src := fmt.Sprintf("%s\nint main() { return %s; }", decl, expr)
	for _, opts := range []Options{O0(), O3()} {
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		exe := sim.NewExecutor(prog)
		_, rv, err := exe.Run(1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if rv != want {
			t.Errorf("%s = %d, want %d", expr, rv, want)
		}
	}
}

func TestConformanceArithmeticEdgeCases(t *testing.T) {
	cases := []struct {
		decl, expr string
		want       int64
	}{
		// Division and remainder with negative operands: Go semantics
		// (truncation toward zero).
		{"int a = -7; int b = 2;", "a / b", -7 / 2},
		{"int a = -7; int b = 2;", "a % b", -7 % 2},
		{"int a = 7; int b = -2;", "a / b", 7 / -2},
		{"int a = 7; int b = -2;", "a % b", 7 % -2},
		// Division by zero yields zero by ISA convention.
		{"int a = 5; int z = 0;", "a / z", 0},
		{"int a = 5; int z = 0;", "a % z", 0},
		// Shift counts are masked to 6 bits.
		{"int a = 1; int s = 64;", "a << s", 1}, // 64 & 63 == 0
		{"int a = 256; int s = 65;", "a >> s", 128},
		// Arithmetic right shift of negatives.
		{"int a = -8; int s = 1;", "a >> s", -4},
		// Comparison results are exactly 0/1.
		{"int a = 3; int b = 4;", "(a < b) + (a > b) * 10 + (a == b) * 100 + (a != b) * 1000", 1001},
		{"int a = 4; int b = 4;", "(a <= b) + (a >= b) * 10", 11},
		// Logical operators normalize to 0/1.
		{"int a = 7; int b = 0;", "(a && a) + (a && b) * 10 + (b || a) * 100 + (b || b) * 1000", 101},
		// Unary.
		{"int a = 0;", "!a + !!a * 10", 1},
		{"int a = -5;", "-a", 5},
		// Wrapping 64-bit multiplication.
		{"int a = 4611686018427387904; int b = 4;", "a * b",
			func() int64 { a := int64(4611686018427387904); return a * 4 }()},
	}
	for _, c := range cases {
		runExpr(t, c.decl, c.expr, c.want)
	}
}

func TestConformanceEvaluationOrder(t *testing.T) {
	// Side-effecting calls in an expression evaluate left to right.
	src := `
int log = 0;
int mark(int v) {
	log = log * 10 + v;
	return v;
}
int main() {
	int x = mark(1) + mark(2) * mark(3);
	return log * 1000 + x;
}`
	for _, opts := range []Options{O0(), O2(), O3()} {
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		exe := sim.NewExecutor(prog)
		_, rv, err := exe.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if rv != 123*1000+7 {
			t.Fatalf("evaluation order changed: got %d", rv)
		}
	}
}

func TestConformanceShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
int calls = 0;
int bump(int v) {
	calls = calls + 1;
	return v;
}
int main() {
	int r = 0;
	if (bump(0) && bump(1)) { r = 100; }
	if (bump(1) || bump(1)) { r = r + 10; }
	return calls * 1000 + r;
}`
	for _, opts := range []Options{O0(), O3()} {
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		exe := sim.NewExecutor(prog)
		_, rv, err := exe.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if rv != 2*1000+10 {
			t.Fatalf("short-circuit violated: got %d", rv)
		}
	}
}

func TestConformanceGlobalAliasing(t *testing.T) {
	// Stores through one name must be visible through subsequent loads,
	// across calls, under all optimization levels.
	src := `
int shared = 10;
int touch() {
	shared = shared + 1;
	return 0;
}
int main() {
	int before = shared;
	touch();
	int after = shared;
	shared = 99;
	touch();
	return before * 10000 + after * 100 + shared;
}`
	for _, opts := range []Options{O0(), O2(), O3()} {
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		exe := sim.NewExecutor(prog)
		_, rv, err := exe.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if rv != 10*10000+11*100+100 {
			t.Fatalf("global aliasing broken: got %d", rv)
		}
	}
}

func TestConformanceDeepCallChain(t *testing.T) {
	// Deep non-tail recursion exercises stack discipline and RA save/
	// restore under both frame-pointer regimes.
	src := `
int depth(int n) {
	if (n == 0) {
		return 0;
	}
	return 1 + depth(n - 1);
}
int main() {
	return depth(500);
}`
	for _, omit := range []bool{true, false} {
		opts := O2()
		opts.OmitFramePointer = omit
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		exe := sim.NewExecutor(prog)
		_, rv, err := exe.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if rv != 500 {
			t.Fatalf("omitFP=%v: depth = %d", omit, rv)
		}
	}
}
