package compiler

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// MachineFunc is the machine-level form of one function before final layout
// and linking: per-block code with symbolic branch targets plus the epilogue
// template emitted at each return.
type MachineFunc struct {
	Name   string
	Blocks []*MachineBlock
	Entry  *MachineBlock
	Epilog []isa.Instr // restore sequence ending in ret
}

// MachineBlock carries the generated instructions for one IR block.
type MachineBlock struct {
	ID   int
	Code []MInstr
	Term MTerm
	Freq float64
}

// MInstr is a machine instruction plus an optional call-target symbol
// (resolved at link time).
type MInstr struct {
	In     isa.Instr
	Callee string
}

// MTermKind discriminates block terminators.
type MTermKind uint8

const (
	TermJmp MTermKind = iota
	TermBr
	TermRet
)

// MTerm is a symbolic block terminator. For TermBr, Cond holds the physical
// register tested against zero; True is the target when Cond != 0.
type MTerm struct {
	Kind        MTermKind
	Cond        uint8
	True, False *MachineBlock
}

// genCtx carries per-function state during instruction selection.
type genCtx struct {
	f         *ir.Func
	alloc     *Allocation
	omitFP    bool
	nonLeaf   bool
	frameSize int64
	slotBase  uint8 // SP or FP
	slotOff   func(slot int32) int64
	globals   map[string]int64 // symbol -> absolute address
}

const (
	scratchA = 30
	scratchB = 31
)

// GenFunc lowers one IR function to machine code. globals maps symbol names
// to absolute data addresses.
func GenFunc(f *ir.Func, alloc *Allocation, omitFP bool, globals map[string]int64) (*MachineFunc, error) {
	ctx := &genCtx{f: f, alloc: alloc, omitFP: omitFP, globals: globals}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				ctx.nonLeaf = true
				if len(b.Instrs[i].Args) > isa.NumArgRegs {
					return nil, fmt.Errorf("compiler: %s: call to %s has %d args; max %d",
						f.Name, b.Instrs[i].Sym, len(b.Instrs[i].Args), isa.NumArgRegs)
				}
			}
		}
	}

	// Frame layout: [0, slots*8) spills, then saved registers.
	saved := append([]int16{}, alloc.UsedRegs...)
	if !omitFP {
		saved = append(saved, isa.RegFP)
	}
	if ctx.nonLeaf {
		saved = append(saved, isa.RegRA)
	}
	ctx.frameSize = int64(alloc.NumSlots+len(saved)) * 8

	if omitFP {
		ctx.slotBase = isa.RegSP
		ctx.slotOff = func(s int32) int64 { return int64(s) * 8 }
	} else {
		ctx.slotBase = isa.RegFP
		frame := ctx.frameSize
		ctx.slotOff = func(s int32) int64 { return int64(s)*8 - frame }
	}

	mf := &MachineFunc{Name: f.Name}
	mb := map[*ir.Block]*MachineBlock{}
	for _, b := range f.Blocks {
		nb := &MachineBlock{ID: b.ID, Freq: b.Freq}
		mb[b] = nb
		mf.Blocks = append(mf.Blocks, nb)
	}
	mf.Entry = mb[f.Entry]

	// Prologue in the entry block.
	if ctx.frameSize > 0 {
		emit(mf.Entry, isa.Instr{Op: isa.OpAddi, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: -ctx.frameSize})
	}
	saveOff := int64(alloc.NumSlots) * 8
	for _, r := range saved {
		emit(mf.Entry, isa.Instr{Op: isa.OpStore, Rs1: isa.RegSP, Rs2: uint8(r), Imm: saveOff})
		saveOff += 8
	}
	if !omitFP {
		emit(mf.Entry, isa.Instr{Op: isa.OpAddi, Rd: isa.RegFP, Rs1: isa.RegSP, Imm: ctx.frameSize})
	}
	// Move parameters from argument registers to their assigned homes.
	for i, p := range f.Params {
		argReg := uint8(isa.RegArg0 + i)
		if r := alloc.Reg[p]; r >= 0 {
			emit(mf.Entry, isa.Instr{Op: isa.OpAdd, Rd: uint8(r), Rs1: argReg, Rs2: isa.RegZero})
		} else if s := alloc.Slot[p]; s >= 0 {
			emit(mf.Entry, isa.Instr{Op: isa.OpStore, Rs1: ctx.slotBase, Rs2: argReg, Imm: ctx.slotOff(s)})
		}
	}

	// Epilogue template.
	restoreOff := int64(alloc.NumSlots) * 8
	for _, r := range saved {
		mf.Epilog = append(mf.Epilog, isa.Instr{Op: isa.OpLoad, Rd: uint8(r), Rs1: isa.RegSP, Imm: restoreOff})
		restoreOff += 8
	}
	if ctx.frameSize > 0 {
		mf.Epilog = append(mf.Epilog, isa.Instr{Op: isa.OpAddi, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: ctx.frameSize})
	}
	mf.Epilog = append(mf.Epilog, isa.Instr{Op: isa.OpRet})

	// Bodies.
	for _, b := range f.Blocks {
		nb := mb[b]
		for i := range b.Instrs {
			if err := ctx.genInstr(nb, &b.Instrs[i], mb, b); err != nil {
				return nil, err
			}
		}
		if b.Term() == nil {
			return nil, fmt.Errorf("compiler: %s: b%d lacks a terminator", f.Name, b.ID)
		}
	}
	return mf, nil
}

func emit(b *MachineBlock, in isa.Instr) { b.Code = append(b.Code, MInstr{In: in}) }

// srcReg materializes IR value v into a physical register, using the given
// scratch register if v is spilled.
func (ctx *genCtx) srcReg(b *MachineBlock, v ir.Value, scratch uint8) uint8 {
	if r := ctx.alloc.Reg[v]; r >= 0 {
		return uint8(r)
	}
	s := ctx.alloc.Slot[v]
	if s < 0 {
		// Dead value that was never allocated: reads are undefined; use r0.
		return isa.RegZero
	}
	emit(b, isa.Instr{Op: isa.OpLoad, Rd: scratch, Rs1: ctx.slotBase, Imm: ctx.slotOff(s)})
	return scratch
}

// dstReg returns the register an IR def should target, plus a spill-store
// closure to run after the defining instruction is emitted.
func (ctx *genCtx) dstReg(b *MachineBlock, v ir.Value) (uint8, func()) {
	if r := ctx.alloc.Reg[v]; r >= 0 {
		return uint8(r), func() {}
	}
	s := ctx.alloc.Slot[v]
	if s < 0 {
		return scratchA, func() {} // dead def: compute and drop
	}
	return scratchA, func() {
		emit(b, isa.Instr{Op: isa.OpStore, Rs1: ctx.slotBase, Rs2: scratchA, Imm: ctx.slotOff(s)})
	}
}

var irToMachineOp = map[ir.Op]isa.Op{
	ir.OpAdd: isa.OpAdd, ir.OpSub: isa.OpSub, ir.OpMul: isa.OpMul,
	ir.OpDiv: isa.OpDiv, ir.OpRem: isa.OpRem, ir.OpAnd: isa.OpAnd,
	ir.OpOr: isa.OpOr, ir.OpXor: isa.OpXor, ir.OpShl: isa.OpShl,
	ir.OpShr: isa.OpShr, ir.OpLt: isa.OpSlt, ir.OpLe: isa.OpSle,
	ir.OpEq: isa.OpSeq, ir.OpNe: isa.OpSne,
}

func (ctx *genCtx) genInstr(nb *MachineBlock, in *ir.Instr, mb map[*ir.Block]*MachineBlock, b *ir.Block) error {
	switch in.Op {
	case ir.OpNop:
	case ir.OpConst:
		rd, fin := ctx.dstReg(nb, in.Dst)
		emit(nb, isa.Instr{Op: isa.OpLui, Rd: rd, Imm: in.Imm})
		fin()
	case ir.OpAddr:
		addr, ok := ctx.globals[in.Sym]
		if !ok {
			return fmt.Errorf("compiler: %s: unknown global %q", ctx.f.Name, in.Sym)
		}
		rd, fin := ctx.dstReg(nb, in.Dst)
		emit(nb, isa.Instr{Op: isa.OpLui, Rd: rd, Imm: addr})
		fin()
	case ir.OpCopy:
		rs := ctx.srcReg(nb, in.X, scratchA)
		rd, fin := ctx.dstReg(nb, in.Dst)
		if rd != rs {
			emit(nb, isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rs, Rs2: isa.RegZero})
		}
		fin()
	case ir.OpLoad:
		rs := ctx.srcReg(nb, in.X, scratchA)
		rd, fin := ctx.dstReg(nb, in.Dst)
		emit(nb, isa.Instr{Op: isa.OpLoad, Rd: rd, Rs1: rs})
		fin()
	case ir.OpStore:
		ra := ctx.srcReg(nb, in.X, scratchA)
		rv := ctx.srcReg(nb, in.Y, scratchB)
		emit(nb, isa.Instr{Op: isa.OpStore, Rs1: ra, Rs2: rv})
	case ir.OpPrefetch:
		ra := ctx.srcReg(nb, in.X, scratchA)
		emit(nb, isa.Instr{Op: isa.OpPrefetch, Rs1: ra})
	case ir.OpCall:
		for i, a := range in.Args {
			argReg := uint8(isa.RegArg0 + i)
			if r := ctx.alloc.Reg[a]; r >= 0 {
				emit(nb, isa.Instr{Op: isa.OpAdd, Rd: argReg, Rs1: uint8(r), Rs2: isa.RegZero})
			} else if s := ctx.alloc.Slot[a]; s >= 0 {
				emit(nb, isa.Instr{Op: isa.OpLoad, Rd: argReg, Rs1: ctx.slotBase, Imm: ctx.slotOff(s)})
			} else {
				emit(nb, isa.Instr{Op: isa.OpAdd, Rd: argReg, Rs1: isa.RegZero, Rs2: isa.RegZero})
			}
		}
		nb.Code = append(nb.Code, MInstr{In: isa.Instr{Op: isa.OpCall}, Callee: in.Sym})
		if r := ctx.alloc.Reg[in.Dst]; r >= 0 {
			emit(nb, isa.Instr{Op: isa.OpAdd, Rd: uint8(r), Rs1: isa.RegRV, Rs2: isa.RegZero})
		} else if s := ctx.alloc.Slot[in.Dst]; s >= 0 {
			emit(nb, isa.Instr{Op: isa.OpStore, Rs1: ctx.slotBase, Rs2: isa.RegRV, Imm: ctx.slotOff(s)})
		}
	case ir.OpBr:
		cond := ctx.srcReg(nb, in.X, scratchA)
		nb.Term = MTerm{Kind: TermBr, Cond: cond, True: mb[b.Succs[0]], False: mb[b.Succs[1]]}
	case ir.OpJmp:
		nb.Term = MTerm{Kind: TermJmp, True: mb[b.Succs[0]]}
	case ir.OpRet:
		if in.X != ir.NoValue {
			rs := ctx.srcReg(nb, in.X, scratchA)
			emit(nb, isa.Instr{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: rs, Rs2: isa.RegZero})
		} else {
			emit(nb, isa.Instr{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: isa.RegZero, Rs2: isa.RegZero})
		}
		nb.Term = MTerm{Kind: TermRet}
	default: // binary arithmetic
		mop, ok := irToMachineOp[in.Op]
		if !ok {
			return fmt.Errorf("compiler: %s: cannot select %s", ctx.f.Name, in)
		}
		rx := ctx.srcReg(nb, in.X, scratchA)
		ry := ctx.srcReg(nb, in.Y, scratchB)
		rd, fin := ctx.dstReg(nb, in.Dst)
		emit(nb, isa.Instr{Op: mop, Rd: rd, Rs1: rx, Rs2: ry})
		fin()
	}
	return nil
}
