package compiler

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/sim"
)

// runProgram compiles src with opts and executes it, returning main's result.
func runProgram(t *testing.T, src string, opts Options) int64 {
	t.Helper()
	prog, _, err := CompileSource(src, opts)
	if err != nil {
		t.Fatalf("compile (%v): %v", opts, err)
	}
	exe := sim.NewExecutor(prog)
	_, rv, err := exe.Run(50_000_000)
	if err != nil {
		t.Fatalf("run (%v): %v", opts, err)
	}
	return rv
}

// optionMatrix is the set of configurations every semantics test runs under.
func optionMatrix() map[string]Options {
	m := map[string]Options{
		"O0": O0(),
		"O2": O2(),
		"O3": O3(),
	}
	single := map[string]func(*Options){
		"inline":   func(o *Options) { o.InlineFunctions = true },
		"unroll":   func(o *Options) { o.UnrollLoops = true },
		"sched":    func(o *Options) { o.ScheduleInsns = true },
		"loopopt":  func(o *Options) { o.LoopOptimize = true },
		"gcse":     func(o *Options) { o.GCSE = true },
		"strength": func(o *Options) { o.StrengthReduce = true },
		"omitfp":   func(o *Options) { o.OmitFramePointer = true },
		"reorder":  func(o *Options) { o.ReorderBlocks = true },
		"prefetch": func(o *Options) { o.PrefetchLoopArray = true },
	}
	for name, set := range single {
		o := O0()
		set(&o)
		m[name] = o
	}
	all := O3()
	all.UnrollLoops = true
	m["everything"] = all

	tight := all
	tight.MaxUnrollTimes = 12
	tight.MaxUnrolledInsns = 300
	tight.MaxInlineInsnsAuto = 150
	tight.InlineUnitGrowth = 75
	m["aggressive-heuristics"] = tight

	narrow := all
	narrow.TargetIssueWidth = 2
	m["narrow-target"] = narrow
	return m
}

// assertSameResult compiles src under the whole option matrix and checks all
// variants compute `want`.
func assertSameResult(t *testing.T, src string, want int64) {
	t.Helper()
	for name, opts := range optionMatrix() {
		got := runProgram(t, src, opts)
		if got != want {
			t.Errorf("%s: result = %d, want %d", name, got, want)
		}
	}
}

func TestSemanticsArithmetic(t *testing.T) {
	assertSameResult(t, `
int main() {
	int a = 7;
	int b = -3;
	int c = a * b + 100 / a - 20 % 6;
	int d = (a << 2) ^ (b & 15) | (a >> 1);
	return c * 1000 + d;
}`, func() int64 {
		a, b := int64(7), int64(-3)
		c := a*b + 100/a - 20%6
		d := a<<2 ^ b&15 | a>>1
		return c*1000 + d
	}())
}

func TestSemanticsLoopSum(t *testing.T) {
	assertSameResult(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 100; i = i + 1) {
		sum = sum + i * i;
	}
	return sum;
}`, 328350)
}

func TestSemanticsArrays(t *testing.T) {
	assertSameResult(t, `
int a[256];
int main() {
	for (int i = 0; i < 256; i = i + 1) {
		a[i] = i * 3;
	}
	int sum = 0;
	for (int j = 0; j < 256; j = j + 2) {
		sum = sum + a[j];
	}
	return sum;
}`, func() int64 {
		var a [256]int64
		for i := int64(0); i < 256; i++ {
			a[i] = i * 3
		}
		s := int64(0)
		for j := 0; j < 256; j += 2 {
			s += a[j]
		}
		return s
	}())
}

func TestSemanticsCallsAndRecursion(t *testing.T) {
	assertSameResult(t, `
int fib(int n) {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}
int add3(int a, int b, int c) {
	return a + b + c;
}
int main() {
	return fib(15) * 10 + add3(1, 2, 3);
}`, 610*10+6)
}

func TestSemanticsGlobalsAndScalars(t *testing.T) {
	assertSameResult(t, `
int counter = 5;
int limit = -2;
int bump(int by) {
	counter = counter + by;
	return counter;
}
int main() {
	bump(3);
	bump(4);
	return counter * 100 + limit;
}`, 12*100-2)
}

func TestSemanticsShortCircuit(t *testing.T) {
	assertSameResult(t, `
int calls = 0;
int sideEffect(int v) {
	calls = calls + 1;
	return v;
}
int main() {
	int a = 0;
	if (sideEffect(0) && sideEffect(1)) {
		a = 100;
	}
	if (sideEffect(1) || sideEffect(0)) {
		a = a + 10;
	}
	return a * 10 + calls;
}`, 10*10+2)
}

func TestSemanticsWhileBreakContinue(t *testing.T) {
	assertSameResult(t, `
int main() {
	int i = 0;
	int sum = 0;
	while (i < 50) {
		i = i + 1;
		if (i % 3 == 0) {
			continue;
		}
		if (i > 40) {
			break;
		}
		sum = sum + i;
	}
	return sum * 100 + i;
}`, func() int64 {
		i, sum := int64(0), int64(0)
		for i < 50 {
			i++
			if i%3 == 0 {
				continue
			}
			if i > 40 {
				break
			}
			sum += i
		}
		return sum*100 + i
	}())
}

func TestSemanticsNestedLoops(t *testing.T) {
	assertSameResult(t, `
int m[64];
int main() {
	for (int i = 0; i < 8; i = i + 1) {
		for (int j = 0; j < 8; j = j + 1) {
			m[i * 8 + j] = i * j;
		}
	}
	int trace = 0;
	for (int k = 0; k < 8; k = k + 1) {
		trace = trace + m[k * 8 + k];
	}
	return trace;
}`, 140)
}

func TestSemanticsManyLocalsSpill(t *testing.T) {
	// More live values than allocatable registers forces spilling.
	assertSameResult(t, `
int main() {
	int a0 = 1; int a1 = 2; int a2 = 3; int a3 = 4; int a4 = 5;
	int a5 = 6; int a6 = 7; int a7 = 8; int a8 = 9; int a9 = 10;
	int b0 = 11; int b1 = 12; int b2 = 13; int b3 = 14; int b4 = 15;
	int b5 = 16; int b6 = 17; int b7 = 18; int b8 = 19; int b9 = 20;
	int c0 = 21; int c1 = 22; int c2 = 23; int c3 = 24; int c4 = 25;
	int sum = 0;
	for (int i = 0; i < 10; i = i + 1) {
		sum = sum + a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9;
		sum = sum + b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7 + b8 + b9;
		sum = sum + c0 + c1 + c2 + c3 + c4;
		a0 = a0 + 1; b0 = b0 + 2; c0 = c0 + 3;
	}
	return sum;
}`, func() int64 {
		vals := make([]int64, 25)
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		sum := int64(0)
		for i := 0; i < 10; i++ {
			for _, v := range vals {
				sum += v
			}
			vals[0]++
			vals[10] += 2
			vals[20] += 3
		}
		return sum
	}())
}

func TestSemanticsDivByZeroConvention(t *testing.T) {
	assertSameResult(t, `
int main() {
	int z = 0;
	return 7 / z + 9 % z + 5;
}`, 5)
}

func TestSemanticsUnrollableLoop(t *testing.T) {
	// Classic unroll shape with an accumulator and array stream.
	assertSameResult(t, `
int data[512];
int main() {
	for (int i = 0; i < 512; i = i + 1) {
		data[i] = i ^ (i << 1);
	}
	int acc = 0;
	for (int i = 0; i < 509; i = i + 1) {
		acc = acc + data[i] * 3 - data[i + 1];
	}
	return acc;
}`, func() int64 {
		var data [512]int64
		for i := int64(0); i < 512; i++ {
			data[i] = i ^ (i << 1)
		}
		acc := int64(0)
		for i := 0; i < 509; i++ {
			acc += data[i]*3 - data[i+1]
		}
		return acc
	}())
}

func TestSemanticsLoopCarriedDependence(t *testing.T) {
	assertSameResult(t, `
int main() {
	int x = 1;
	for (int i = 0; i < 40; i = i + 1) {
		x = x * 3 % 1000003;
	}
	return x;
}`, func() int64 {
		x := int64(1)
		for i := 0; i < 40; i++ {
			x = x * 3 % 1000003
		}
		return x
	}())
}

func TestStatsChangeWithFlags(t *testing.T) {
	src := `
int data[512];
int work(int n) {
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		acc = acc + data[i] * 5;
	}
	return acc;
}
int main() {
	for (int i = 0; i < 512; i = i + 1) {
		data[i] = i;
	}
	return work(512) + work(100);
}`
	parse := func() *lang.Program { return lang.MustParse(src) }

	_, s0, err := Compile(parse(), O0())
	if err != nil {
		t.Fatal(err)
	}
	unroll := O2()
	unroll.UnrollLoops = true
	_, s1, err := Compile(parse(), unroll)
	if err != nil {
		t.Fatal(err)
	}
	if s1.IRInstrs <= s0.IRInstrs/2 {
		// Unrolled code should be substantially larger than O0 would
		// suggest after optimization; this is a sanity check that the
		// unroller actually fired (IR grows relative to the optimized
		// non-unrolled form below).
	}
	o2 := O2()
	_, s2, err := Compile(parse(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.IRInstrs <= s2.IRInstrs {
		t.Errorf("unrolling should grow code: unroll=%d O2=%d", s1.IRInstrs, s2.IRInstrs)
	}

	inline := O2()
	inline.InlineFunctions = true
	_, s3, err := Compile(parse(), inline)
	if err != nil {
		t.Fatal(err)
	}
	if s3.IRInstrs <= s2.IRInstrs {
		t.Errorf("inlining work() twice should grow code: inline=%d O2=%d", s3.IRInstrs, s2.IRInstrs)
	}
}

func TestO2FasterThanO0(t *testing.T) {
	src := `
int data[2048];
int main() {
	for (int i = 0; i < 2048; i = i + 1) {
		data[i] = i * 7;
	}
	int acc = 0;
	for (int r = 0; r < 20; r = r + 1) {
		for (int i = 0; i < 2048; i = i + 1) {
			acc = acc + data[i] * 3;
		}
	}
	return acc;
}`
	cfg := sim.DefaultConfig()
	cycles := func(opts Options) int64 {
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Simulate(prog, cfg, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	c0 := cycles(O0())
	c2 := cycles(O2())
	if c2 >= c0 {
		t.Errorf("O2 (%d cycles) should beat O0 (%d cycles)", c2, c0)
	}
	t.Logf("O0=%d O2=%d speedup=%.2fx", c0, c2, float64(c0)/float64(c2))
}
