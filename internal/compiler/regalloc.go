package compiler

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// SpillPriority selects the spill-cost function the allocator uses to pick
// victims — a categorical compiler parameter in the sense of the paper's
// Section 2.2 ("a set of priority functions can be represented by a single
// categorical variable"). The default matches gcc-style frequency weighting.
type SpillPriority uint8

const (
	// PriorityFrequency weighs an interval by the estimated execution
	// frequency of its uses: spill cold values first.
	PriorityFrequency SpillPriority = iota
	// PrioritySpan weighs an interval inversely by its length: spill
	// long-lived values first, freeing a register for longer.
	PrioritySpan
	// PriorityDensity weighs by frequency per unit length (use density):
	// spill values that occupy a register long but earn little.
	PriorityDensity
	// NumSpillPriorities counts the alternatives.
	NumSpillPriorities
)

func (p SpillPriority) String() string {
	switch p {
	case PriorityFrequency:
		return "frequency"
	case PrioritySpan:
		return "span"
	case PriorityDensity:
		return "density"
	}
	return "spill-priority?"
}

// Allocation is the result of register allocation for one function: every
// virtual register is mapped to either a physical register or a spill slot.
type Allocation struct {
	// Reg[v] is the physical register assigned to value v, or -1 if
	// spilled.
	Reg []int16
	// Slot[v] is the spill slot index for value v, or -1.
	Slot []int32
	// NumSlots is the number of spill slots used.
	NumSlots int
	// UsedRegs lists the physical registers the function writes (for
	// callee-save bookkeeping), ascending.
	UsedRegs []int16
}

// allocatableRegs returns the physical registers available to the allocator.
// r30/r31 are reserved as spill scratch; the frame pointer r3 joins the pool
// when -fomit-frame-pointer is on — the paper identifies this extra register
// (plus the shorter prologue) as one of the most significant compiler knobs.
func allocatableRegs(omitFP bool) []int16 {
	var regs []int16
	if omitFP {
		regs = append(regs, isa.RegFP)
	}
	for r := int16(isa.RegGP); r <= 29; r++ {
		regs = append(regs, r)
	}
	return regs
}

// interval is a live range over the linearized instruction index space.
type interval struct {
	v          ir.Value
	start, end int
	weight     float64 // spill cost estimate: Σ freq of touching blocks
}

// Allocate performs linear-scan register allocation over f with the default
// frequency spill priority.
func Allocate(f *ir.Func, omitFP bool) *Allocation {
	return AllocateWithPriority(f, omitFP, PriorityFrequency)
}

// AllocateWithPriority performs linear-scan register allocation over f.
// Block order follows f.Blocks. The returned allocation covers every virtual
// register that is ever live; registers never touched map to (-1, -1).
func AllocateWithPriority(f *ir.Func, omitFP bool, prio SpillPriority) *Allocation {
	n := f.NumValues()
	alloc := &Allocation{
		Reg:  make([]int16, n),
		Slot: make([]int32, n),
	}
	for i := range alloc.Reg {
		alloc.Reg[i] = -1
		alloc.Slot[i] = -1
	}

	lv := ir.ComputeLiveness(f)
	ivals := buildIntervals(f, lv)
	if len(ivals) == 0 {
		return alloc
	}
	// Re-weight intervals per the selected priority function.
	for i := range ivals {
		length := float64(ivals[i].end-ivals[i].start) + 1
		switch prio {
		case PrioritySpan:
			ivals[i].weight = 1e9 / length
		case PriorityDensity:
			ivals[i].weight = ivals[i].weight / length
		}
	}
	pool := allocatableRegs(omitFP)

	// Linear scan (Poletto & Sarkar) with farthest-end spilling, weighted
	// by estimated use frequency.
	sort.Slice(ivals, func(i, j int) bool {
		if ivals[i].start != ivals[j].start {
			return ivals[i].start < ivals[j].start
		}
		return ivals[i].v < ivals[j].v
	})
	type activeEntry struct {
		iv  *interval
		reg int16
	}
	var active []activeEntry
	free := append([]int16{}, pool...)
	usedSet := map[int16]bool{}
	nextSlot := int32(0)

	expire := func(pos int) {
		kept := active[:0]
		for _, a := range active {
			if a.iv.end < pos {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}

	for i := range ivals {
		cur := &ivals[i]
		expire(cur.start)
		if len(free) > 0 {
			// Prefer the lowest-numbered free register (deterministic).
			sort.Slice(free, func(a, b int) bool { return free[a] < free[b] })
			r := free[0]
			free = free[1:]
			alloc.Reg[cur.v] = r
			usedSet[r] = true
			active = append(active, activeEntry{cur, r})
			continue
		}
		// Spill the active interval with the lowest weight-per-length
		// among those ending last; simple heuristic: spill the one with
		// the smallest weight, break ties by farthest end.
		victim := -1
		for ai := range active {
			if active[ai].iv.end <= cur.end {
				continue // prefer victims that live longer than cur
			}
			if victim == -1 ||
				active[ai].iv.weight < active[victim].iv.weight ||
				(active[ai].iv.weight == active[victim].iv.weight &&
					active[ai].iv.end > active[victim].iv.end) {
				victim = ai
			}
		}
		if victim >= 0 && active[victim].iv.weight <= cur.weight {
			// Steal the victim's register.
			v := active[victim]
			alloc.Reg[cur.v] = v.reg
			alloc.Reg[v.iv.v] = -1
			alloc.Slot[v.iv.v] = nextSlot
			nextSlot++
			active[victim] = activeEntry{cur, v.reg}
		} else {
			alloc.Slot[cur.v] = nextSlot
			nextSlot++
		}
	}
	alloc.NumSlots = int(nextSlot)
	for r := range usedSet {
		alloc.UsedRegs = append(alloc.UsedRegs, r)
	}
	sort.Slice(alloc.UsedRegs, func(i, j int) bool { return alloc.UsedRegs[i] < alloc.UsedRegs[j] })
	return alloc
}

func buildIntervals(f *ir.Func, lv *ir.Liveness) []interval {
	n := f.NumValues()
	start := make([]int, n)
	end := make([]int, n)
	weight := make([]float64, n)
	seen := make([]bool, n)
	touch := func(v ir.Value, pos int, w float64) {
		if v == ir.NoValue {
			return
		}
		i := int(v)
		if !seen[i] {
			seen[i] = true
			start[i], end[i] = pos, pos
		} else {
			if pos < start[i] {
				start[i] = pos
			}
			if pos > end[i] {
				end[i] = pos
			}
		}
		weight[i] += w
	}

	idx := 0
	var buf []ir.Value
	for _, b := range f.Blocks {
		blockStart := idx
		blockEnd := idx + len(b.Instrs)
		for vi := 0; vi < n; vi++ {
			v := ir.Value(vi)
			if lv.In[b].Has(v) {
				touch(v, blockStart, 0)
			}
			if lv.Out[b].Has(v) {
				touch(v, blockEnd, 0)
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				touch(u, idx, b.Freq)
			}
			touch(in.Def(), idx, b.Freq)
			idx++
		}
		idx++ // gap between blocks
	}
	// Parameters are live from index 0.
	for _, p := range f.Params {
		touch(p, 0, 1)
	}

	var ivals []interval
	for i := 0; i < n; i++ {
		if seen[i] {
			ivals = append(ivals, interval{v: ir.Value(i), start: start[i], end: end[i], weight: weight[i]})
		}
	}
	return ivals
}
