package compiler

import (
	"repro/internal/ir"
	"sort"
)

// exprKey identifies a pure computation for value numbering.
type exprKey struct {
	op   ir.Op
	x, y ir.Value
	imm  int64
	sym  string
}

func keyOf(in *ir.Instr) (exprKey, bool) {
	switch in.Op {
	case ir.OpConst:
		return exprKey{op: in.Op, imm: in.Imm}, true
	case ir.OpAddr:
		return exprKey{op: in.Op, sym: in.Sym}, true
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpLt, ir.OpLe,
		ir.OpEq, ir.OpNe:
		x, y := in.X, in.Y
		if in.Op.IsCommutative() && y < x {
			x, y = y, x
		}
		return exprKey{op: in.Op, x: x, y: y}, true
	}
	return exprKey{}, false
}

// GCSE performs global common-subexpression elimination (the -fgcse pass):
// dominator-scoped value numbering over pure computations whose operands and
// destinations are single-definition registers, plus redundant-load
// elimination within basic blocks (killed by stores and calls). Constant and
// copy propagation run as part of the shared Cleanup pass, as in gcc's gcse
// which also performs them.
func GCSE(f *ir.Func) {
	// CSE of an inner expression exposes its consumers on the next round
	// (after copy propagation canonicalizes operands), so iterate to a
	// fixpoint; expression chains are shallow, so few rounds suffice.
	for round := 0; round < 4; round++ {
		before := f.InstrCount()
		gcseOnce(f)
		if f.InstrCount() == before {
			return
		}
	}
}

func gcseOnce(f *ir.Func) {
	f.RemoveUnreachable()
	dom := ir.ComputeDominators(f)
	defCounts := f.DefCounts()
	single := func(v ir.Value) bool { return v == ir.NoValue || defCounts[v] == 1 }

	// Build dominator-tree children lists, deterministic by block ID.
	children := map[*ir.Block][]*ir.Block{}
	for _, b := range f.Blocks {
		if p := dom.IDom(b); p != nil {
			children[p] = append(children[p], b)
		}
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	}

	// Scoped hash table via path copying: each recursion level sees its
	// dominators' entries.
	type scope map[exprKey]ir.Value
	var walk func(b *ir.Block, avail scope)
	walk = func(b *ir.Block, avail scope) {
		local := scope{}
		lookup := func(k exprKey) (ir.Value, bool) {
			if v, ok := local[k]; ok {
				return v, true
			}
			v, ok := avail[k]
			return v, ok
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			k, ok := keyOf(in)
			if !ok || !single(in.Dst) {
				continue
			}
			if k.op != ir.OpConst && k.op != ir.OpAddr && (!single(in.X) || !single(in.Y)) {
				continue
			}
			if w, ok := lookup(k); ok && w != in.Dst && single(w) {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: w}
				continue
			}
			local[k] = in.Dst
		}
		if len(children[b]) > 0 {
			merged := avail
			if len(local) > 0 {
				merged = make(scope, len(avail)+len(local))
				for k, v := range avail {
					merged[k] = v
				}
				for k, v := range local {
					merged[k] = v
				}
			}
			for _, c := range children[b] {
				walk(c, merged)
			}
		}
	}
	walk(f.Entry, scope{})

	eliminateRedundantLoads(f, defCounts)
	Cleanup(f)
}

// eliminateRedundantLoads replaces a load whose address register was loaded
// earlier in the same block, with no intervening store or call, by a copy of
// the earlier result.
func eliminateRedundantLoads(f *ir.Func, defCounts []int) {
	single := func(v ir.Value) bool { return defCounts[v] == 1 }
	for _, b := range f.Blocks {
		lastLoad := map[ir.Value]ir.Value{} // addr -> dst
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad:
				if !single(in.X) || !single(in.Dst) {
					continue
				}
				if w, ok := lastLoad[in.X]; ok && single(w) {
					*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, X: w}
					continue
				}
				lastLoad[in.X] = in.Dst
			case ir.OpStore, ir.OpCall:
				lastLoad = map[ir.Value]ir.Value{}
			}
		}
	}
}
