// Package compiler implements the optimizing MiniC compiler whose flags and
// heuristics form the compiler half of the paper's design space. It lowers
// the AST from internal/lang to the IR in internal/ir, runs the optimization
// passes selected by Options, and generates code for the synthetic ISA.
//
// The 14 tunable parameters mirror Table 1 of the paper exactly: nine binary
// optimization flags and five numeric heuristics governing inlining and loop
// unrolling.
package compiler

import "fmt"

// Options selects optimizations and heuristic settings, mirroring the gcc
// flags and --param values modeled in the paper (Table 1).
type Options struct {
	// Binary optimization flags (paper parameters 1-9).
	InlineFunctions   bool // -finline-functions
	UnrollLoops       bool // -funroll-loops
	ScheduleInsns     bool // -fschedule-insns2 (pre- and post-RA scheduling)
	LoopOptimize      bool // -floop-optimize (loop-invariant code motion)
	GCSE              bool // -fgcse (global CSE + const/copy propagation)
	StrengthReduce    bool // -fstrength-reduce (induction variable strength reduction)
	OmitFramePointer  bool // -fomit-frame-pointer
	ReorderBlocks     bool // -freorder-blocks
	PrefetchLoopArray bool // -fprefetch-loop-arrays

	// Numeric heuristics (paper parameters 10-14).
	MaxInlineInsnsAuto int // max callee IR instructions for auto-inlining [50,150]
	InlineUnitGrowth   int // max % growth of the compilation unit due to inlining [25,75]
	InlineCallCost     int // cost of a call relative to simple computation [12,20]
	MaxUnrollTimes     int // max unroll factor for a single loop [4,12]
	MaxUnrolledInsns   int // max instructions a loop may have to be unrolled [100,300]

	// TargetIssueWidth parameterizes the machine description used by the
	// instruction scheduler, mirroring the paper's per-functional-unit-
	// configuration compiler builds. It does not change correctness, only
	// the scheduler's resource model.
	TargetIssueWidth int

	// SpillPriority selects the register allocator's spill-cost function —
	// an extension demonstrating the paper's categorical-variable encoding
	// (Section 2.2); it is not part of the modeled Table 1 space.
	SpillPriority SpillPriority
}

// Defaults for the numeric heuristics (the paper's "default O3" row in
// Table 6).
const (
	DefaultMaxInlineInsnsAuto = 100
	DefaultInlineUnitGrowth   = 50
	DefaultInlineCallCost     = 16
	DefaultMaxUnrollTimes     = 8
	DefaultMaxUnrolledInsns   = 200
)

// withDefaults fills zero-valued heuristics with their defaults.
func (o Options) withDefaults() Options {
	if o.MaxInlineInsnsAuto == 0 {
		o.MaxInlineInsnsAuto = DefaultMaxInlineInsnsAuto
	}
	if o.InlineUnitGrowth == 0 {
		o.InlineUnitGrowth = DefaultInlineUnitGrowth
	}
	if o.InlineCallCost == 0 {
		o.InlineCallCost = DefaultInlineCallCost
	}
	if o.MaxUnrollTimes == 0 {
		o.MaxUnrollTimes = DefaultMaxUnrollTimes
	}
	if o.MaxUnrolledInsns == 0 {
		o.MaxUnrolledInsns = DefaultMaxUnrolledInsns
	}
	if o.TargetIssueWidth == 0 {
		o.TargetIssueWidth = 4
	}
	return o
}

// O0 returns options with every optimization disabled.
func O0() Options { return Options{}.withDefaults() }

// O2 returns the baseline optimization level used throughout the paper's
// speedup comparisons: scheduling, loop optimization, GCSE, strength
// reduction, frame-pointer omission and block reordering on; inlining,
// unrolling and prefetching off (as in gcc's -O2 for the modeled flags).
func O2() Options {
	return Options{
		ScheduleInsns:    true,
		LoopOptimize:     true,
		GCSE:             true,
		StrengthReduce:   true,
		OmitFramePointer: true,
		ReorderBlocks:    true,
	}.withDefaults()
}

// O3 returns the paper's "default O3" configuration (Table 6, last row):
// O2 plus function inlining and loop-array prefetching, with default
// heuristic values. Loop unrolling stays off, as in the paper.
func O3() Options {
	o := O2()
	o.InlineFunctions = true
	o.PrefetchLoopArray = true
	return o
}

func (o Options) String() string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf(
		"inline=%d unroll=%d sched=%d loopopt=%d gcse=%d strength=%d omitfp=%d reorder=%d prefetch=%d "+
			"max-inline-insns=%d unit-growth=%d call-cost=%d max-unroll=%d max-unrolled-insns=%d",
		b(o.InlineFunctions), b(o.UnrollLoops), b(o.ScheduleInsns),
		b(o.LoopOptimize), b(o.GCSE), b(o.StrengthReduce),
		b(o.OmitFramePointer), b(o.ReorderBlocks), b(o.PrefetchLoopArray),
		o.MaxInlineInsnsAuto, o.InlineUnitGrowth, o.InlineCallCost,
		o.MaxUnrollTimes, o.MaxUnrolledInsns)
}
