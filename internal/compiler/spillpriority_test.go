package compiler

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestSpillPriorityNames(t *testing.T) {
	want := map[SpillPriority]string{
		PriorityFrequency: "frequency",
		PrioritySpan:      "span",
		PriorityDensity:   "density",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if NumSpillPriorities != 3 {
		t.Fatal("three priority functions expected")
	}
}

// TestSpillPrioritiesPreserveSemantics runs every workload result under all
// three priority functions — a categorical compiler variable must never
// change results, only performance.
func TestSpillPrioritiesPreserveSemantics(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	var ref int64
	for p := SpillPriority(0); p < NumSpillPriorities; p++ {
		opts := O2()
		opts.UnrollLoops = true // maximize register pressure
		opts.MaxUnrollTimes = 12
		opts.SpillPriority = p
		prog, _, err := Compile(w.Parse(), opts)
		if err != nil {
			t.Fatal(err)
		}
		exe := sim.NewExecutor(prog)
		_, rv, err := exe.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			ref = rv
		} else if rv != ref {
			t.Fatalf("priority %v changed the result: %d != %d", p, rv, ref)
		}
	}
}

// TestSpillPrioritiesChangePerformance confirms the categorical variable has
// a measurable performance effect under pressure (otherwise there is nothing
// to model).
func TestSpillPrioritiesChangePerformance(t *testing.T) {
	w := workloads.MustGet("179.art", workloads.Train)
	cfg := sim.DefaultConfig()
	cycles := map[SpillPriority]int64{}
	for p := SpillPriority(0); p < NumSpillPriorities; p++ {
		opts := O2()
		opts.UnrollLoops = true
		opts.MaxUnrollTimes = 12
		opts.SpillPriority = p
		prog, _, err := Compile(w.Parse(), opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Simulate(prog, cfg, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cycles[p] = st.Cycles
		t.Logf("%-9v: %d cycles", p, st.Cycles)
	}
	if cycles[PriorityFrequency] == cycles[PrioritySpan] &&
		cycles[PrioritySpan] == cycles[PriorityDensity] {
		t.Error("all priority functions produced identical timing; the variable is inert")
	}
}
