package compiler

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/lang"
	"repro/internal/sim"
)

func TestLinkStartStubAndSymbols(t *testing.T) {
	prog, _, err := CompileSource(`
int helper(int x) { return x + 1; }
int main() { return helper(41); }`, O2())
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 0 {
		t.Fatal("entry should be the start stub")
	}
	if prog.Instrs[0].Op != isa.OpCall || prog.Instrs[1].Op != isa.OpHalt {
		t.Fatal("start stub should be call main; halt")
	}
	mainEntry, ok := prog.Symbols["main"]
	if !ok || prog.Instrs[0].Target != mainEntry {
		t.Fatal("start stub must call main")
	}
	if _, ok := prog.Symbols["helper"]; !ok {
		t.Fatal("helper symbol missing")
	}
	exe := sim.NewExecutor(prog)
	if _, rv, err := exe.Run(10_000); err != nil || rv != 42 {
		t.Fatalf("rv=%d err=%v", rv, err)
	}
}

func TestLinkCallToUnknownFunction(t *testing.T) {
	f := ir.NewFunc("main", 0)
	v := f.NewValue()
	f.Entry.Instrs = []ir.Instr{
		{Op: ir.OpCall, Dst: v, Sym: "missing"},
		{Op: ir.OpRet, X: v},
	}
	p := &ir.Program{Funcs: []*ir.Func{f}}
	alloc := Allocate(f, true)
	mf, err := GenFunc(f, alloc, true, map[string]int64{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(p, []*MachineFunc{mf}, O2()); err == nil {
		t.Fatal("expected unknown-function link error")
	}
}

func TestGenFuncRejectsTooManyArgs(t *testing.T) {
	f := ir.NewFunc("main", 0)
	args := make([]ir.Value, isa.NumArgRegs+1)
	for i := range args {
		args[i] = f.NewValue()
		f.Entry.Instrs = append(f.Entry.Instrs, ir.Instr{Op: ir.OpConst, Dst: args[i], Imm: 1})
	}
	dst := f.NewValue()
	f.Entry.Instrs = append(f.Entry.Instrs,
		ir.Instr{Op: ir.OpCall, Dst: dst, Sym: "f", Args: args},
		ir.Instr{Op: ir.OpRet, X: dst},
	)
	alloc := Allocate(f, true)
	if _, err := GenFunc(f, alloc, true, map[string]int64{}); err == nil {
		t.Fatal("expected too-many-args error")
	}
}

func TestLayoutKeepsEntryFirst(t *testing.T) {
	for _, reorder := range []bool{false, true} {
		prog, _, err := CompileSource(`
int main() {
	int s = 0;
	for (int i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
	}
	return s;
}`, Options{ReorderBlocks: reorder})
		if err != nil {
			t.Fatal(err)
		}
		exe := sim.NewExecutor(prog)
		if _, rv, err := exe.Run(10_000); err != nil || rv != 15 {
			t.Fatalf("reorder=%v: rv=%d err=%v", reorder, rv, err)
		}
	}
}

func TestReorderBlocksReducesTakenBranches(t *testing.T) {
	// A loop whose hot path goes through the else-branch: layout should
	// make the hot path the fall-through.
	src := `
int a[4096];
int main() {
	int s = 0;
	for (int i = 0; i < 4096; i = i + 1) {
		if (i % 64 == 0) {
			s = s - 1;
		} else {
			s = s + a[i];
		}
	}
	return s;
}`
	taken := func(reorder bool) int64 {
		opts := O2()
		opts.ReorderBlocks = reorder
		prog, _, err := CompileSource(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Simulate(prog, sim.DefaultConfig(), 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	with, without := taken(true), taken(false)
	// Reordering should never be catastrophically worse and usually wins.
	if with > without*105/100 {
		t.Fatalf("reordered layout much slower: %d vs %d", with, without)
	}
	t.Logf("cycles reorder=%d baseline=%d", with, without)
}

func TestFramePointerCodegenDiffers(t *testing.T) {
	src := `
int f(int a, int b) { return a * b + a - b; }
int main() { return f(6, 7); }`
	withFP := O2()
	withFP.OmitFramePointer = false
	p1, s1, err := CompileSource(src, withFP)
	if err != nil {
		t.Fatal(err)
	}
	p2, s2, err := CompileSource(src, O2())
	if err != nil {
		t.Fatal(err)
	}
	if s1.MachineInstrs <= s2.MachineInstrs {
		t.Fatalf("keeping the frame pointer should cost instructions: %d vs %d",
			s1.MachineInstrs, s2.MachineInstrs)
	}
	for _, p := range []*isa.Program{p1, p2} {
		exe := sim.NewExecutor(p)
		if _, rv, err := exe.Run(10_000); err != nil || rv != 41 {
			t.Fatalf("rv=%d err=%v", rv, err)
		}
	}
}

func TestSpillCodeUsesScratchRegisters(t *testing.T) {
	// Force spills and make sure the executable never writes reserved
	// registers outside scratch/ABI conventions incorrectly — validated
	// behaviorally by running a deep-pressure function.
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	n := 30
	for i := 0; i < n; i++ {
		sb.WriteString(" int v")
		sb.WriteByte(byte('0' + i/10))
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(" = ")
		sb.WriteString(string(rune('1'+i%9)) + ";\n")
	}
	sb.WriteString(" int s = 0;\n for (int r = 0; r < 3; r = r + 1) {\n  s = s")
	for i := 0; i < n; i++ {
		sb.WriteString(" + v")
		sb.WriteByte(byte('0' + i/10))
		sb.WriteByte(byte('0' + i%10))
	}
	sb.WriteString(";\n }\n return s;\n}\n")

	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(1 + i%9)
	}
	want *= 3

	for _, name := range []string{"O0", "O2"} {
		opts := O0()
		if name == "O2" {
			opts = O2()
		}
		prog, stats, err := CompileSource(sb.String(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if name == "O0" && stats.SpillSlots == 0 {
			t.Error("expected spills under pressure at O0")
		}
		exe := sim.NewExecutor(prog)
		if _, rv, err := exe.Run(100_000); err != nil || rv != want {
			t.Fatalf("%s: rv=%d want=%d err=%v", name, rv, want, err)
		}
	}
}

func TestOptimizeIRMatchesCompilePipeline(t *testing.T) {
	src := `
int a[64];
int main() {
	int s = 0;
	for (int i = 0; i < 64; i = i + 1) { s = s + a[i] * 3; }
	return s;
}`
	p, err := Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	opts := O3()
	opts.UnrollLoops = true
	OptimizeIR(p, opts)
	if err := ir.VerifyProgram(p); err != nil {
		t.Fatal(err)
	}
	if p.InstrCount() == 0 {
		t.Fatal("empty after optimization")
	}
}
