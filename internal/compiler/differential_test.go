package compiler

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/sim"
)

// TestDifferentialRandomPrograms generates random MiniC programs and checks
// that every optimization configuration computes the same result as -O0 —
// the strongest end-to-end correctness check we have for the pass pipeline,
// register allocator and code generator.
func TestDifferentialRandomPrograms(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	configs := differentialConfigs()
	for seed := int64(0); seed < int64(count); seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := lang.GenProgram(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generator produced unparseable program: %v\n%s", seed, err, src)
		}
		if err := lang.Check(prog); err != nil {
			t.Fatalf("seed %d: generator produced invalid program: %v\n%s", seed, err, src)
		}
		var ref int64
		for ci, opts := range configs {
			bin, _, err := Compile(lang.MustParse(src), opts)
			if err != nil {
				t.Fatalf("seed %d config %d: compile: %v\n%s", seed, ci, err, src)
			}
			exe := sim.NewExecutor(bin)
			_, rv, err := exe.Run(20_000_000)
			if err != nil {
				t.Fatalf("seed %d config %d: run: %v\n%s", seed, ci, err, src)
			}
			if ci == 0 {
				ref = rv
			} else if rv != ref {
				t.Fatalf("seed %d config %d (%v): result %d != O0 result %d\n%s",
					seed, ci, opts, rv, ref, src)
			}
		}
	}
}

// differentialConfigs covers O0, each flag alone, standard levels, and
// randomized flag/heuristic mixtures.
func differentialConfigs() []Options {
	configs := []Options{O0(), O2(), O3()}
	single := []func(*Options){
		func(o *Options) { o.InlineFunctions = true },
		func(o *Options) { o.UnrollLoops = true },
		func(o *Options) { o.ScheduleInsns = true },
		func(o *Options) { o.LoopOptimize = true },
		func(o *Options) { o.GCSE = true },
		func(o *Options) { o.StrengthReduce = true },
		func(o *Options) { o.OmitFramePointer = true },
		func(o *Options) { o.ReorderBlocks = true },
		func(o *Options) { o.PrefetchLoopArray = true },
	}
	for _, set := range single {
		o := O0()
		set(&o)
		configs = append(configs, o)
	}
	mixRng := rand.New(rand.NewSource(12345))
	for i := 0; i < 5; i++ {
		o := Options{
			InlineFunctions:    mixRng.Intn(2) == 1,
			UnrollLoops:        mixRng.Intn(2) == 1,
			ScheduleInsns:      mixRng.Intn(2) == 1,
			LoopOptimize:       mixRng.Intn(2) == 1,
			GCSE:               mixRng.Intn(2) == 1,
			StrengthReduce:     mixRng.Intn(2) == 1,
			OmitFramePointer:   mixRng.Intn(2) == 1,
			ReorderBlocks:      mixRng.Intn(2) == 1,
			PrefetchLoopArray:  mixRng.Intn(2) == 1,
			MaxInlineInsnsAuto: 50 + mixRng.Intn(101),
			InlineUnitGrowth:   25 + mixRng.Intn(51),
			InlineCallCost:     12 + mixRng.Intn(9),
			MaxUnrollTimes:     4 + mixRng.Intn(9),
			MaxUnrolledInsns:   100 + mixRng.Intn(201),
			TargetIssueWidth:   2 + 2*mixRng.Intn(2),
		}
		configs = append(configs, o)
	}
	return configs
}
