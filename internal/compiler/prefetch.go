package compiler

import "repro/internal/ir"

// prefetchDistanceBytes is how far ahead of a loop load the inserted
// prefetch targets. 256 bytes = 32 words, a handful of iterations for
// unit-stride streams, mirroring gcc's ahead-distance heuristics.
const prefetchDistanceBytes = 256

// maxPrefetchesPerLoop bounds insertion so pathological loops don't drown in
// prefetch traffic.
const maxPrefetchesPerLoop = 8

// variantValues returns the values whose contents actually change across
// loop iterations: multi-defined values (induction variables and
// accumulators), loads and calls, and anything computed from those. A value
// merely *recomputed* inside the loop from invariant inputs (an address
// materialization, say) is not variant.
func variantValues(f *ir.Func, l *ir.Loop) map[ir.Value]bool {
	defsIn := map[ir.Value]int{}
	for b := range l.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoValue {
				defsIn[d]++
			}
		}
	}
	defCounts := f.DefCounts()
	variant := map[ir.Value]bool{}
	for v, n := range defsIn {
		// Defined in the loop and elsewhere (or several times in the
		// loop): loop-carried.
		if n > 1 || defCounts[v] > n {
			variant[v] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range loopBlocksOrdered(l) {
			var buf []ir.Value
			for i := range b.Instrs {
				in := &b.Instrs[i]
				d := in.Def()
				if d == ir.NoValue || variant[d] {
					continue
				}
				isVariant := false
				if !in.Op.IsPure() {
					isVariant = true // loads, calls
				} else {
					for _, u := range in.Uses(buf[:0]) {
						if variant[u] {
							isVariant = true
							break
						}
					}
				}
				if isVariant {
					variant[d] = true
					changed = true
				}
			}
		}
	}
	return variant
}

// InsertPrefetches implements -fprefetch-loop-arrays: for every innermost
// loop, each load whose address varies across iterations (defined inside the
// loop — the signature of an array walk) gets a non-binding prefetch of
// address+distance placed before it. Prefetching costs an address add, a
// memory-unit slot and possible cache pollution; whether it pays off depends
// on the memory latency and cache configuration — exactly the interaction
// the paper's models capture.
func InsertPrefetches(f *ir.Func) {
	f.RemoveUnreachable()
	dom := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dom)
	inner := map[*ir.Loop]bool{}
	for _, l := range loops {
		inner[l] = true
	}
	for _, l := range loops {
		if l.Parent != nil {
			inner[l.Parent] = false
		}
	}
	for _, l := range loops {
		if !inner[l] {
			continue
		}
		vary := variantValues(f, l)
		inserted := 0
		seen := map[ir.Value]bool{}
		for _, b := range loopBlocksOrdered(l) {
			var out []ir.Instr
			for i := range b.Instrs {
				in := b.Instrs[i]
				if in.Op == ir.OpLoad && vary[in.X] && !seen[in.X] &&
					inserted < maxPrefetchesPerLoop {
					seen[in.X] = true
					inserted++
					c := f.NewValue()
					a2 := f.NewValue()
					out = append(out,
						ir.Instr{Op: ir.OpConst, Dst: c, Imm: prefetchDistanceBytes},
						ir.Instr{Op: ir.OpAdd, Dst: a2, X: in.X, Y: c},
						ir.Instr{Op: ir.OpPrefetch, X: a2},
					)
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
}
