package compiler

import "repro/internal/ir"

// ensurePreheader guarantees the loop header has exactly one predecessor
// outside the loop, and that predecessor ends in an unconditional jump to
// the header. Returns the preheader block.
func ensurePreheader(f *ir.Func, l *ir.Loop) *ir.Block {
	var outside []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := outside[0]
		if t := p.Term(); t != nil && t.Op == ir.OpJmp && len(p.Succs) == 1 {
			return p
		}
	}
	ph := f.NewBlock()
	ph.Instrs = []ir.Instr{{Op: ir.OpJmp}}
	ph.Freq = l.Header.Freq / 10
	for _, p := range outside {
		for si, s := range p.Succs {
			if s == l.Header {
				p.Succs[si] = ph
			}
		}
	}
	ph.Succs = []*ir.Block{l.Header}
	f.RecomputePreds()
	return ph
}

// loopDefs returns the set of values defined inside the loop.
func loopDefs(l *ir.Loop) map[ir.Value]bool {
	defs := map[ir.Value]bool{}
	for b := range l.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != ir.NoValue {
				defs[d] = true
			}
		}
	}
	return defs
}

// loopBlocksOrdered returns the loop's blocks sorted by ID for deterministic
// iteration.
func loopBlocksOrdered(l *ir.Loop) []*ir.Block {
	var bs []*ir.Block
	for b := range l.Blocks {
		bs = append(bs, b)
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j-1].ID > bs[j].ID; j-- {
			bs[j-1], bs[j] = bs[j], bs[j-1]
		}
	}
	return bs
}

// LICM hoists loop-invariant pure computations into the loop preheader
// (the -floop-optimize pass). A candidate must be pure, its operands must be
// defined outside the loop (or already hoisted), and its destination must
// have exactly one definition in the whole function, which makes speculative
// hoisting safe (our pure ops cannot fault: division by zero yields 0).
func LICM(f *ir.Func) {
	for iter := 0; iter < 4; iter++ {
		f.RemoveUnreachable()
		dom := ir.ComputeDominators(f)
		loops := ir.FindLoops(f, dom)
		if len(loops) == 0 {
			return
		}
		changed := false
		for _, l := range loops { // innermost first
			if hoistLoop(f, l) {
				changed = true
			}
		}
		if !changed {
			return
		}
		Cleanup(f)
	}
}

func hoistLoop(f *ir.Func, l *ir.Loop) bool {
	defCounts := f.DefCounts()
	inLoop := loopDefs(l)
	// invariant[v] = true if v's value is the same on every loop iteration.
	invariant := func(v ir.Value) bool { return !inLoop[v] }

	var hoisted []ir.Instr
	changedAny := false
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, b := range loopBlocksOrdered(l) {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				ok := false
				switch in.Op {
				case ir.OpConst, ir.OpAddr:
					ok = defCounts[in.Dst] == 1
				case ir.OpCopy:
					ok = defCounts[in.Dst] == 1 && invariant(in.X)
				default:
					ok = in.Op.IsPure() && defCounts[in.Dst] == 1 &&
						invariant(in.X) && invariant(in.Y)
				}
				if ok {
					hoisted = append(hoisted, in)
					delete(inLoop, in.Dst)
					changed = true
					changedAny = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !changed {
			break
		}
	}
	if len(hoisted) == 0 {
		return false
	}
	ph := ensurePreheader(f, l)
	// Insert before the preheader's terminator.
	term := ph.Instrs[len(ph.Instrs)-1]
	ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1], hoisted...)
	ph.Instrs = append(ph.Instrs, term)
	return changedAny
}
