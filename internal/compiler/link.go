package compiler

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// LayoutBlocks orders a machine function's blocks for emission. With
// reorder=false the original (source) order is kept, entry first. With
// reorder=true (-freorder-blocks), blocks are placed in greedy hot-path
// chains: from each chain head, the highest-frequency unplaced successor
// becomes the fall-through, minimizing taken branches on hot paths and
// packing hot code together for the instruction cache.
func LayoutBlocks(mf *MachineFunc, reorder bool) []*MachineBlock {
	if !reorder {
		out := []*MachineBlock{mf.Entry}
		for _, b := range mf.Blocks {
			if b != mf.Entry {
				out = append(out, b)
			}
		}
		return out
	}
	placed := map[*MachineBlock]bool{}
	var order []*MachineBlock
	succsOf := func(b *MachineBlock) []*MachineBlock {
		switch b.Term.Kind {
		case TermBr:
			// Prefer the likelier side as fall-through; False is the
			// natural fall-through so list it first on ties.
			if b.Term.True.Freq > b.Term.False.Freq {
				return []*MachineBlock{b.Term.True, b.Term.False}
			}
			return []*MachineBlock{b.Term.False, b.Term.True}
		case TermJmp:
			return []*MachineBlock{b.Term.True}
		}
		return nil
	}
	place := func(b *MachineBlock) {
		for b != nil && !placed[b] {
			placed[b] = true
			order = append(order, b)
			var next *MachineBlock
			for _, s := range succsOf(b) {
				if !placed[s] {
					next = s
					break
				}
			}
			b = next
		}
	}
	place(mf.Entry)
	// Seed remaining chains hottest-first (stable by ID).
	rest := append([]*MachineBlock{}, mf.Blocks...)
	sort.SliceStable(rest, func(i, j int) bool {
		if rest[i].Freq != rest[j].Freq {
			return rest[i].Freq > rest[j].Freq
		}
		return rest[i].ID < rest[j].ID
	})
	for _, b := range rest {
		place(b)
	}
	return order
}

// scheduleBlockCode post-RA-schedules the instruction runs between calls
// inside one machine block's code.
func scheduleBlockCode(code []MInstr, width int) {
	run := make([]isa.Instr, 0, len(code))
	flush := func(start, end int) {
		if end-start < 2 {
			return
		}
		run = run[:0]
		for i := start; i < end; i++ {
			run = append(run, code[i].In)
		}
		ScheduleMachine(run, width)
		for i := start; i < end; i++ {
			code[i].In = run[i-start]
		}
	}
	runStart := 0
	for i := 0; i <= len(code); i++ {
		if i == len(code) || code[i].Callee != "" {
			flush(runStart, i)
			runStart = i + 1
		}
	}
}

// Link lays out all functions, resolves branch and call targets, prepends
// the startup stub (call main; halt) and produces the final executable
// program. When sched is true, post-register-allocation scheduling runs on
// each block before emission.
func Link(p *ir.Program, mfs []*MachineFunc, opts Options) (*isa.Program, error) {
	prog := &isa.Program{Symbols: map[string]int32{}}

	offsets, dataSize := p.GlobalOffsets()
	prog.DataSize = dataSize
	for _, g := range p.Globals {
		if g.Words == 1 && g.Init != 0 {
			prog.Init = append(prog.Init, isa.DataInit{
				Addr: uint64(isa.GlobalBase + offsets[g.Name]),
				Val:  g.Init,
			})
		}
	}

	// Startup stub.
	prog.Instrs = append(prog.Instrs,
		isa.Instr{Op: isa.OpCall}, // target patched to main
		isa.Instr{Op: isa.OpHalt},
	)
	prog.Entry = 0

	type callFixup struct {
		at   int
		name string
	}
	var callFixups []callFixup
	callFixups = append(callFixups, callFixup{0, "main"})

	for _, mf := range mfs {
		layout := LayoutBlocks(mf, opts.ReorderBlocks)
		prog.Symbols[mf.Name] = int32(len(prog.Instrs))

		blockStart := map[*MachineBlock]int32{}
		type branchFixup struct {
			at     int
			target *MachineBlock
		}
		var branchFixups []branchFixup

		for li, b := range layout {
			if opts.ScheduleInsns {
				scheduleBlockCode(b.Code, opts.TargetIssueWidth)
			}
			blockStart[b] = int32(len(prog.Instrs))
			for _, mi := range b.Code {
				if mi.Callee != "" {
					callFixups = append(callFixups, callFixup{len(prog.Instrs), mi.Callee})
				}
				prog.Instrs = append(prog.Instrs, mi.In)
			}
			var next *MachineBlock
			if li+1 < len(layout) {
				next = layout[li+1]
			}
			switch b.Term.Kind {
			case TermRet:
				prog.Instrs = append(prog.Instrs, mf.Epilog...)
			case TermJmp:
				if b.Term.True != next {
					branchFixups = append(branchFixups, branchFixup{len(prog.Instrs), b.Term.True})
					prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpJump})
				}
			case TermBr:
				t, f := b.Term.True, b.Term.False
				switch {
				case f == next:
					branchFixups = append(branchFixups, branchFixup{len(prog.Instrs), t})
					prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpBne, Rs1: b.Term.Cond, Rs2: isa.RegZero})
				case t == next:
					branchFixups = append(branchFixups, branchFixup{len(prog.Instrs), f})
					prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpBeq, Rs1: b.Term.Cond, Rs2: isa.RegZero})
				default:
					branchFixups = append(branchFixups, branchFixup{len(prog.Instrs), t})
					prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpBne, Rs1: b.Term.Cond, Rs2: isa.RegZero})
					branchFixups = append(branchFixups, branchFixup{len(prog.Instrs), f})
					prog.Instrs = append(prog.Instrs, isa.Instr{Op: isa.OpJump})
				}
			}
		}
		for _, fx := range branchFixups {
			tgt, ok := blockStart[fx.target]
			if !ok {
				return nil, fmt.Errorf("compiler: %s: branch to unplaced block %d", mf.Name, fx.target.ID)
			}
			prog.Instrs[fx.at].Target = tgt
		}
	}

	for _, fx := range callFixups {
		tgt, ok := prog.Symbols[fx.name]
		if !ok {
			return nil, fmt.Errorf("compiler: call to unknown function %q", fx.name)
		}
		prog.Instrs[fx.at].Target = tgt
	}
	return prog, nil
}
