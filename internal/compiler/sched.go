package compiler

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// The -fschedule-insns2 implementation: critical-path list scheduling, run
// once on the IR before register allocation and once on the generated
// machine code after it, with a resource model parameterized by the target
// issue width (the "machine description" the paper rebuilds gcc for, per
// functional-unit configuration).

// schedNode is one schedulable operation in the dependence DAG.
type schedNode struct {
	latency int
	fu      isa.FUClass
	preds   []int32
	succs   []int32
}

// fuQuota returns per-cycle issue quotas per FU class for a given width,
// matching the simulator's functional-unit provisioning.
func fuQuota(width int) [isa.NumFUClasses]int {
	var q [isa.NumFUClasses]int
	q[isa.FUNone] = width
	q[isa.FUIntALU] = width
	q[isa.FUIntMul] = 1
	q[isa.FUMem] = width / 2
	if q[isa.FUMem] < 1 {
		q[isa.FUMem] = 1
	}
	q[isa.FUBranch] = 1
	return q
}

// pressureInfo lets the pre-RA scheduler estimate register pressure while
// scheduling: values opened by defs and closed at their last in-block use.
// When the live estimate exceeds Threshold, the scheduler prefers ready
// nodes that shrink the live set over pure critical-path priority —
// mirroring the pressure heuristics production schedulers use to keep
// -fschedule-insns from drowning the allocator in spills.
type pressureInfo struct {
	defOf     []int32   // per node: defined value id, or -1
	usesOf    [][]int32 // per node: used value ids
	liveOut   map[int32]bool
	threshold int
}

// listSchedule returns an order of node indices minimizing (greedily) the
// schedule length under the latency and resource constraints. Ties break by
// original index, keeping the output deterministic and close to source
// order.
func listSchedule(nodes []schedNode, width int, press *pressureInfo) []int {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	// Remaining in-block uses per value, for pressure tracking.
	var remUses map[int32]int
	live := 0
	if press != nil {
		remUses = map[int32]int{}
		for i := range nodes {
			for _, u := range press.usesOf[i] {
				remUses[u]++
			}
		}
	}
	netClosure := func(i int) int {
		closes := 0
		seen := map[int32]bool{}
		for _, u := range press.usesOf[i] {
			if seen[u] {
				continue
			}
			seen[u] = true
			if remUses[u] == 1 && !press.liveOut[u] {
				closes++
			}
		}
		opens := 0
		if press.defOf[i] >= 0 {
			opens = 1
		}
		return closes - opens
	}
	// Priority: critical-path height (longest latency chain to a sink).
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := nodes[i].latency
		for _, s := range nodes[i].succs {
			if v := nodes[i].latency + height[s]; v > h {
				h = v
			}
		}
		height[i] = h
	}
	indeg := make([]int, n)
	readyAt := make([]int, n)
	for i := range nodes {
		indeg[i] = len(nodes[i].preds)
	}
	quota := fuQuota(width)

	order := make([]int, 0, n)
	scheduled := make([]bool, n)
	cycle := 0
	var avail [isa.NumFUClasses]int
	slots := 0
	resetCycle := func() {
		avail = quota
		slots = width
	}
	resetCycle()
	for len(order) < n {
		// Pick the highest-priority ready node that fits this cycle.
		// Under register pressure, prefer the node that most shrinks the
		// live set instead.
		pressured := press != nil && live >= press.threshold
		best := -1
		bestClosure := 0
		for i := 0; i < n; i++ {
			if scheduled[i] || indeg[i] > 0 || readyAt[i] > cycle {
				continue
			}
			if avail[nodes[i].fu] <= 0 || slots <= 0 {
				continue
			}
			if best == -1 {
				best = i
				if pressured {
					bestClosure = netClosure(i)
				}
				continue
			}
			if pressured {
				if c := netClosure(i); c > bestClosure {
					best, bestClosure = i, c
				}
			} else if height[i] > height[best] {
				best = i
			}
		}
		if best == -1 {
			cycle++
			resetCycle()
			continue
		}
		scheduled[best] = true
		order = append(order, best)
		avail[nodes[best].fu]--
		slots--
		if press != nil {
			for _, u := range press.usesOf[best] {
				remUses[u]--
				if remUses[u] == 0 && !press.liveOut[u] {
					live--
				}
			}
			if press.defOf[best] >= 0 {
				live++
			}
		}
		done := cycle + nodes[best].latency
		for _, s := range nodes[best].succs {
			indeg[s]--
			if done > readyAt[s] {
				readyAt[s] = done
			}
		}
	}
	return order
}

func addEdge(nodes []schedNode, from, to int32) {
	if from == to {
		return
	}
	for _, s := range nodes[from].succs {
		if s == to {
			return
		}
	}
	nodes[from].succs = append(nodes[from].succs, to)
	nodes[to].preds = append(nodes[to].preds, from)
}

// irLatency estimates the IR-level latency used for scheduling priorities.
func irLatency(op ir.Op) int {
	switch op {
	case ir.OpMul:
		return 4
	case ir.OpDiv, ir.OpRem:
		return 12
	case ir.OpLoad:
		return 3 // assume L1 hit
	default:
		return 1
	}
}

func irFU(op ir.Op) isa.FUClass {
	switch op {
	case ir.OpMul, ir.OpDiv, ir.OpRem:
		return isa.FUIntMul
	case ir.OpLoad, ir.OpStore, ir.OpPrefetch:
		return isa.FUMem
	case ir.OpCall:
		return isa.FUBranch
	default:
		return isa.FUIntALU
	}
}

// schedPressureThreshold approximates the allocatable register count; the
// pre-RA scheduler backs off to pressure-reducing choices beyond it.
const schedPressureThreshold = 16

// ScheduleIR reorders the body of every basic block of f by list scheduling
// (pre-register-allocation pass).
func ScheduleIR(f *ir.Func, width int) {
	lv := ir.ComputeLiveness(f)
	for _, b := range f.Blocks {
		body := b.Body()
		if len(body) < 2 {
			continue
		}
		nodes := make([]schedNode, len(body))
		press := &pressureInfo{
			defOf:     make([]int32, len(body)),
			usesOf:    make([][]int32, len(body)),
			liveOut:   map[int32]bool{},
			threshold: schedPressureThreshold,
		}
		for v := 0; v < f.NumValues(); v++ {
			if lv.Out[b].Has(ir.Value(v)) {
				press.liveOut[int32(v)] = true
			}
		}
		lastDef := map[ir.Value]int32{}
		lastUses := map[ir.Value][]int32{}
		memWriters := []int32{} // stores & calls so far
		memReaders := []int32{} // loads & calls so far
		var buf []ir.Value
		for i := range body {
			in := &body[i]
			nodes[i] = schedNode{latency: irLatency(in.Op), fu: irFU(in.Op)}
			idx := int32(i)
			press.defOf[i] = -1
			if d := in.Def(); d != ir.NoValue {
				press.defOf[i] = int32(d)
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				press.usesOf[i] = append(press.usesOf[i], int32(u))
				if d, ok := lastDef[u]; ok {
					addEdge(nodes, d, idx) // RAW
				}
				lastUses[u] = append(lastUses[u], idx)
			}
			if d := in.Def(); d != ir.NoValue {
				if prev, ok := lastDef[d]; ok {
					addEdge(nodes, prev, idx) // WAW
				}
				for _, u := range lastUses[d] {
					addEdge(nodes, u, idx) // WAR
				}
				lastUses[d] = nil
				lastDef[d] = idx
			}
			switch in.Op {
			case ir.OpLoad, ir.OpPrefetch:
				for _, w := range memWriters {
					addEdge(nodes, w, idx)
				}
				if in.Op == ir.OpLoad {
					memReaders = append(memReaders, idx)
				}
			case ir.OpStore, ir.OpCall:
				for _, w := range memWriters {
					addEdge(nodes, w, idx)
				}
				for _, r := range memReaders {
					addEdge(nodes, r, idx)
				}
				memWriters = append(memWriters, idx)
				if in.Op == ir.OpCall {
					memReaders = append(memReaders, idx)
				}
			}
		}
		order := listSchedule(nodes, width, press)
		out := make([]ir.Instr, 0, len(b.Instrs))
		for _, i := range order {
			out = append(out, body[i])
		}
		if t := b.Term(); t != nil {
			out = append(out, *t)
		}
		b.Instrs = out
	}
}

// machineUses/machineDefs describe physical register dependencies of a
// machine instruction for post-RA scheduling.
func machineUses(in *isa.Instr) []uint8 {
	switch in.Op {
	case isa.OpLui, isa.OpNop, isa.OpHalt, isa.OpJump:
		return nil
	case isa.OpAddi, isa.OpLoad, isa.OpPrefetch:
		return []uint8{in.Rs1}
	case isa.OpRet:
		return []uint8{isa.RegRA, isa.RegRV}
	case isa.OpCall:
		return nil // handled as a barrier
	default:
		return []uint8{in.Rs1, in.Rs2}
	}
}

func machineDef(in *isa.Instr) (uint8, bool) {
	if in.Op.WritesReg() {
		if in.Op == isa.OpCall {
			return isa.RegRA, true
		}
		return in.Rd, true
	}
	return 0, false
}

// scheduleMachineRun list-schedules one run of machine instructions that
// contains no control transfers.
func scheduleMachineRun(code []isa.Instr, width int) {
	if len(code) < 2 {
		return
	}
	nodes := make([]schedNode, len(code))
	lastDef := map[uint8]int32{}
	lastUses := map[uint8][]int32{}
	var memOps []int32
	for i := range code {
		in := &code[i]
		lat := in.Op.Latency()
		if in.Op == isa.OpLoad {
			lat = 3
		}
		nodes[i] = schedNode{latency: lat, fu: in.Op.Class()}
		idx := int32(i)
		for _, u := range machineUses(in) {
			if u == isa.RegZero {
				continue
			}
			if d, ok := lastDef[u]; ok {
				addEdge(nodes, d, idx)
			}
			lastUses[u] = append(lastUses[u], idx)
		}
		if d, ok := machineDef(in); ok && d != isa.RegZero {
			if prev, ok := lastDef[d]; ok {
				addEdge(nodes, prev, idx)
			}
			for _, u := range lastUses[d] {
				addEdge(nodes, u, idx)
			}
			lastUses[d] = nil
			lastDef[d] = idx
		}
		// Conservative memory ordering: memory ops stay ordered among
		// themselves (stores may alias loads at unknown addresses).
		if in.Op.IsMem() {
			for _, m := range memOps {
				addEdge(nodes, m, idx)
			}
			memOps = append(memOps, idx)
		}
	}
	order := listSchedule(nodes, width, nil)
	out := make([]isa.Instr, len(code))
	for oi, i := range order {
		out[oi] = code[i]
	}
	copy(code, out)
}

// ScheduleMachine post-RA-schedules the instruction runs between control
// instructions (branches, jumps, calls, returns) in a flat code slice.
func ScheduleMachine(code []isa.Instr, width int) {
	runStart := 0
	for i := 0; i <= len(code); i++ {
		atEnd := i == len(code)
		isBarrier := !atEnd && (code[i].Op.IsControl() || code[i].Op == isa.OpHalt)
		if atEnd || isBarrier {
			scheduleMachineRun(code[runStart:i], width)
			runStart = i + 1
		}
	}
}
