package compiler

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/lang"
)

// Stats reports static properties of a compilation, used by tests and the
// experiment harness to sanity-check that flags actually change the code.
type Stats struct {
	IRInstrs      int // IR instructions after optimization
	MachineInstrs int // final executable length
	SpillSlots    int // total spill slots across functions
}

// Compile runs the full pipeline on a checked MiniC program: lowering,
// the optimization passes selected by opts, register allocation, code
// generation, layout and linking.
func Compile(src *lang.Program, opts Options) (*isa.Program, *Stats, error) {
	opts = opts.withDefaults()

	p, err := Lower(src)
	if err != nil {
		return nil, nil, err
	}
	CleanupProgram(p)

	if opts.InlineFunctions {
		Inline(p, opts)
		CleanupProgram(p)
	}
	for _, f := range p.Funcs {
		if opts.GCSE {
			GCSE(f)
		}
		if opts.LoopOptimize {
			LICM(f)
		}
		if opts.StrengthReduce {
			StrengthReduce(f)
		}
		if opts.UnrollLoops {
			Unroll(f, opts)
			if opts.GCSE {
				GCSE(f) // clean cross-copy redundancy exposed by unrolling
			}
		}
		if opts.PrefetchLoopArray {
			InsertPrefetches(f)
		}
		Cleanup(f)
		// Refresh the static profile for layout and allocation weights.
		f.RemoveUnreachable()
		dom := ir.ComputeDominators(f)
		loops := ir.FindLoops(f, dom)
		ir.EstimateFrequencies(f, loops)
	}
	if err := ir.VerifyProgram(p); err != nil {
		return nil, nil, fmt.Errorf("compiler: optimization broke the IR: %w", err)
	}

	if opts.ScheduleInsns {
		for _, f := range p.Funcs {
			ScheduleIR(f, opts.TargetIssueWidth)
		}
	}

	offsets, _ := p.GlobalOffsets()
	globals := make(map[string]int64, len(offsets))
	for name, off := range offsets {
		globals[name] = isa.GlobalBase + off
	}

	stats := &Stats{IRInstrs: p.InstrCount()}
	var mfs []*MachineFunc
	for _, f := range p.Funcs {
		alloc := AllocateWithPriority(f, opts.OmitFramePointer, opts.SpillPriority)
		stats.SpillSlots += alloc.NumSlots
		mf, err := GenFunc(f, alloc, opts.OmitFramePointer, globals)
		if err != nil {
			return nil, nil, err
		}
		mfs = append(mfs, mf)
	}
	prog, err := Link(p, mfs, opts)
	if err != nil {
		return nil, nil, err
	}
	stats.MachineInstrs = len(prog.Instrs)
	return prog, stats, nil
}

// CompileSource parses, checks and compiles MiniC source text.
func CompileSource(src string, opts Options) (*isa.Program, *Stats, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if err := lang.Check(prog); err != nil {
		return nil, nil, err
	}
	return Compile(prog, opts)
}

// OptimizeIR applies the IR-level passes of opts to an already-lowered
// program, for tests and tools that want to inspect the optimized IR without
// generating code.
func OptimizeIR(p *ir.Program, opts Options) {
	opts = opts.withDefaults()
	CleanupProgram(p)
	if opts.InlineFunctions {
		Inline(p, opts)
		CleanupProgram(p)
	}
	for _, f := range p.Funcs {
		if opts.GCSE {
			GCSE(f)
		}
		if opts.LoopOptimize {
			LICM(f)
		}
		if opts.StrengthReduce {
			StrengthReduce(f)
		}
		if opts.UnrollLoops {
			Unroll(f, opts)
			if opts.GCSE {
				GCSE(f)
			}
		}
		if opts.PrefetchLoopArray {
			InsertPrefetches(f)
		}
		Cleanup(f)
	}
}
